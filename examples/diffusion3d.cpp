// 3-D diffusion across all four platforms with ONE class-library
// composition (the paper's Section 4.1 evaluation app, scaled down).
//
// Shows the multiplatform promise of Figure 2: the same Dif3DSolver /
// DiffusionQuantity components run sequentially on the JVM-analogue, JIT-
// compiled on the CPU, on the simulated GPU, and on 4 MPI ranks, by
// selecting the StencilRunner subclass — and all four agree.
#include <cstdio>
#include <cmath>

#include "fault/checkpoint.h"
#include "fault/fault.h"
#include "interp/interp.h"
#include "jit/jit.h"
#include "minimpi/minimpi.h"
#include "stencil/stencil_lib.h"
#include "support/timer.h"

using namespace wj;
using namespace wj::stencil;

int main() {
    const int nx = 24, ny = 24, nz = 24, steps = 4, seed = 7;
    const auto coeffs = DiffusionCoeffs::forKappa(0.1f, 0.1f, 1.0f);
    const double expect = referenceDiffusion3D(nx, ny, nz, coeffs, seed, steps);
    // WJ_TRANSPORT decides whether the MPI rows below run ranks as threads
    // or as forked processes (`wjrun` sets it; so can you).
    const bool procWorld = minimpi::defaultTransportKind() == minimpi::TransportKind::Proc;

    Program prog = buildProgram();
    Interp in(prog);

    std::printf("3-D diffusion %dx%dx%d, %d steps; reference checksum %.6f; "
                "MPI transport=%s\n\n",
                nx, ny, nz, steps, expect, procWorld ? "proc" : "threads");
    std::printf("%-28s %14s %12s %8s\n", "platform", "checksum", "time", "ok");

    auto report = [&](const char* name, double sum, double sec) {
        std::printf("%-28s %14.6f %9.1f ms %8s\n", name, sum, sec * 1e3,
                    std::abs(sum - expect) < std::abs(expect) * 1e-9 + 1e-9 ? "yes" : "NO");
    };

    {   // "Java": the interpreter executes the same composition directly.
        Value runner = makeCpuRunner(in, nx, ny, nz, coeffs, seed);
        Timer t;
        Value r = in.call(runner, "run", {Value::ofI32(steps)});
        report("Java (interpreter)", r.asF64(), t.seconds());
    }
    {   // WootinJ on one CPU.
        Value runner = makeCpuRunner(in, nx, ny, nz, coeffs, seed);
        JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(steps)});
        Timer t;
        Value r = code.invoke();
        report("WootinJ (CPU)", r.asF64(), t.seconds());
        std::printf("%-28s %40.1f ms compile (Table 3)\n", "", code.totalCompilationSeconds() * 1e3);
    }
    {   // WootinJ on the simulated GPU.
        Value runner = makeGpuRunner(in, nx, ny, nz, coeffs, seed, 64);
        JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(steps)});
        Timer t;
        Value r = code.invoke();
        report("WootinJ (GPU)", r.asF64(), t.seconds());
    }
    {   // WootinJ on 4 MPI ranks (slab decomposition).
        Value runner = makeMpiRunner(in, nx, ny, nz / 4, coeffs, seed);
        JitCode code = WootinJ::jit4mpi(prog, runner, "run", {Value::ofI32(steps)});
        code.set4MPI(4);
        Timer t;
        Value r = code.invoke();
        report("WootinJ (MPI x4)", r.asF64(), t.seconds());
    }
    {   // WootinJ on 2 ranks x 1 GPU each.
        Value runner = makeGpuMpiRunner(in, nx, ny, nz / 2, coeffs, seed, 64);
        JitCode code = WootinJ::jit4mpi(prog, runner, "run", {Value::ofI32(steps)});
        code.set4MPI(2);
        Timer t;
        Value r = code.invoke();
        report("WootinJ (MPI x2 + GPU)", r.asF64(), t.seconds());
    }
    {   // Fault tolerance (src/fault/): a seeded FaultPlan kills rank 2 at
        // its 6th MPI call mid-run; the per-step checkpoints let a re-run
        // resume from the last consistent snapshot and still produce the
        // bitwise-identical checksum. On the proc transport the kill is a
        // REAL SIGKILL of a forked child, so the snapshots must live on
        // disk (fsync + atomic rename) — a killed child's memory is gone.
        auto& ckpt = fault::CheckpointStore::instance();
        if (procWorld) ckpt.armDisk("diffusion3d_ckpt", /*ranks=*/4, /*interval=*/1);
        else ckpt.arm(/*ranks=*/4, /*interval=*/1);
        fault::FaultPlan::instance().configure("seed=42;kill:rank=2,op=6");

        Value runner = makeMpiRunner(in, nx, ny, nz / 4, coeffs, seed);
        JitCode code = WootinJ::jit4mpi(prog, runner, "run", {Value::ofI32(steps)});
        code.set4MPI(4);
        Timer t;
        bool killed = false;
        try {
            code.invoke();
        } catch (const ExecError& e) {
            killed = true;
            std::printf("\n%s\n", e.what());
        }
        // On threads the kill rule is one-shot (spent after firing); on proc
        // it was spent in the DEAD CHILD's memory, and the next fork would
        // re-inherit our unspent copy — disarm before the restart either
        // way. Then freeze the restart generation and run the world again.
        fault::FaultPlan::instance().disarm();
        const long long resume = static_cast<long long>(ckpt.resolve());
        Value r = code.invoke();
        if (procWorld) {
            // Counters live in the (dead) children; the parent's truth is
            // the resolved on-disk generation.
            std::printf("restarted from on-disk checkpoint generation %lld in %s/\n", resume,
                        ckpt.directory().c_str());
        } else {
            std::printf("restarted from checkpointed step %lld (%lld snapshots, %lld restores)\n",
                        resume, static_cast<long long>(ckpt.saves()),
                        static_cast<long long>(ckpt.restores()));
        }
        report("WootinJ (MPI x4, restarted)", r.asF64(), t.seconds());
        fault::FaultPlan::instance().disarm();
        ckpt.disarm();
        if (!killed || std::abs(r.asF64() - expect) > std::abs(expect) * 1e-9 + 1e-9) return 1;
    }
    return 0;
}
