// Listing 1's one-dimensional diffusion solver, animated as ASCII art.
//
// Dif1DSolver is the exact user class of the paper's Listing 1:
//     float value = a * (left.val() + right.val()) + b * self.val();
//     return new ScalarFloat(value);
// Here it smooths a random initial temperature profile; the example runs it
// both on the interpreter and through the JIT and renders the decay.
#include <cstdio>
#include <cmath>
#include <vector>

#include "interp/interp.h"
#include "jit/jit.h"
#include "runtime/rng_hash.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::stencil;

namespace {

void render(const std::vector<float>& v) {
    const int rows = 8;
    for (int r = rows; r > 0; --r) {
        const float level = static_cast<float>(r) / rows;
        std::fputs("  |", stdout);
        for (float x : v) std::fputc(x >= level ? '#' : ' ', stdout);
        std::fputs("|\n", stdout);
    }
}

std::vector<float> simulate(int n, float a, float b, int seed, int steps) {
    std::vector<float> cur(static_cast<size_t>(n)), nxt(cur.size());
    for (int i = 0; i < n; ++i) cur[static_cast<size_t>(i)] = wj_rng_hash_f32(seed, i);
    for (int s = 0; s < steps; ++s) {
        for (int i = 0; i < n; ++i) {
            nxt[static_cast<size_t>(i)] =
                a * (cur[static_cast<size_t>((i - 1 + n) % n)] +
                     cur[static_cast<size_t>((i + 1) % n)]) +
                b * cur[static_cast<size_t>(i)];
        }
        cur.swap(nxt);
    }
    return cur;
}

} // namespace

int main() {
    const int n = 72, seed = 3;
    const float a = 0.25f, b = 0.5f;

    Program prog = buildProgram();
    Interp in(prog);

    for (int steps : {0, 4, 32}) {
        std::printf("t = %d steps\n", steps);
        render(simulate(n, a, b, seed, steps));
    }

    // The same physics through the class library, on both platforms.
    const int steps = 32;
    const double expect = referenceDiffusion1D(n, a, b, seed, steps);
    Value runner = makeCpu1DRunner(in, n, a, b, seed);
    const double java = in.call(runner, "run", {Value::ofI32(steps)}).asF64();
    JitCode code = WootinJ::jit(prog, runner, "run", {Value::ofI32(steps)});
    const double jit = code.invoke().asF64();
    std::printf("\nchecksum after %d steps: reference %.6f, Java %.6f, WootinJ %.6f -> %s\n",
                steps, expect, java, jit,
                (expect == java && expect == jit) ? "all equal" : "MISMATCH");
    return (expect == java && expect == jit) ? 0 : 1;
}
