// Fox's algorithm on a rank grid, with switchable Calculator components —
// the paper's Section 4.2 evaluation app, scaled down.
//
// Demonstrates the Listing 6 composition (MPIThread <-> FoxAlgorithm mutual
// reference) that the paper could not express with C++ templates, plus the
// GPU-tiled calculator swapped in with one line.
#include <cstdio>
#include <cmath>

#include "interp/interp.h"
#include "jit/jit.h"
#include "matmul/matmul_lib.h"
#include "minimpi/minimpi.h"
#include "support/timer.h"

using namespace wj;
using namespace wj::matmul;

int main() {
    const int nGlobal = 48, seed = 11;
    const double expect = referenceMatMulChecksum(nGlobal, seed, seed + 1);

    Program prog = buildProgram();
    Interp in(prog);

    // The MPI rows honor WJ_TRANSPORT: threads (default) or forked
    // processes (`wjrun fox`, or WJ_TRANSPORT=proc) — same checksums.
    std::printf("matmul %dx%d, reference checksum %.4f, MPI transport=%s\n\n", nGlobal,
                nGlobal, expect,
                minimpi::defaultTransportKind() == minimpi::TransportKind::Proc ? "proc"
                                                                               : "threads");
    std::printf("%-40s %14s %10s %5s\n", "composition", "checksum", "time", "ok");

    auto report = [&](const char* name, double sum, double sec) {
        std::printf("%-40s %14.4f %7.1f ms %5s\n", name, sum, sec * 1e3,
                    std::abs(sum - expect) < std::abs(expect) * 1e-4 ? "yes" : "NO");
    };

    {   // CPULoop + SimpleOuterBody + OptimizedCalculator.
        Value app = makeCpuApp(in, Calc::Optimized);
        JitCode code = WootinJ::jit(prog, app, "run", {Value::ofI32(nGlobal), Value::ofI32(seed)});
        Timer t;
        report("CPULoop/SimpleOuterBody/Optimized", code.invoke().asF64(), t.seconds());
    }
    {   // MPIThread + FoxAlgorithm + OptimizedCalculator on a 2x2 grid.
        Value app = makeMpiFoxApp(in, Calc::Optimized, 2);
        JitCode code =
            WootinJ::jit4mpi(prog, app, "run", {Value::ofI32(nGlobal / 2), Value::ofI32(seed)});
        code.set4MPI(4);
        Timer t;
        report("MPIThread(2x2)/Fox/Optimized", code.invoke().asF64(), t.seconds());
    }
    {   // MPIThread + FoxAlgorithm + OptimizedCalculator on a 3x3 grid.
        Value app = makeMpiFoxApp(in, Calc::Optimized, 3);
        JitCode code =
            WootinJ::jit4mpi(prog, app, "run", {Value::ofI32(nGlobal / 3), Value::ofI32(seed)});
        code.set4MPI(9);
        Timer t;
        report("MPIThread(3x3)/Fox/Optimized", code.invoke().asF64(), t.seconds());
    }
    {   // GPUThread + shared-memory tiled kernel.
        Value app = makeGpuApp(in, /*tile=*/8);
        JitCode code = WootinJ::jit(prog, app, "run", {Value::ofI32(nGlobal), Value::ofI32(seed)});
        Timer t;
        report("GPUThread/GpuTiledCalculator", code.invoke().asF64(), t.seconds());
    }
    {   // Fox across 4 ranks, each multiplying on its own GPU.
        Value app = makeMpiFoxGpuApp(in, 2, /*tile=*/8);
        JitCode code =
            WootinJ::jit4mpi(prog, app, "run", {Value::ofI32(nGlobal / 2), Value::ofI32(seed)});
        code.set4MPI(4);
        Timer t;
        report("MPIThread(2x2)/Fox/GpuTiled", code.invoke().asF64(), t.seconds());
    }
    return 0;
}
