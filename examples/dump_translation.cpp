// Shows the paper's core artifact: the Listing 4 -> Listing 5 translation.
//
// Prints (1) the one-point stencil library in Java-like surface syntax (the
// IR printer's view of what the library developer wrote) and (2) the C code
// WootinC generates for it — devirtualized, object-inlined, with the kernel
// turned into a GpuSim launch, and the MPI calls bound directly to wjrt.
//
// Useful for inspecting what the translator does; every line of the output
// is real (the same C is compiled and executed by the quickstart example).
#include <cstdio>

#include "interp/interp.h"
#include "ir/printer.h"
#include "jit/jit.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::dsl;

int main() {
    ProgramBuilder pb;
    stencil::registerLibrary(pb);
    {
        auto& c = pb.cls("PhysDataGen").implements("Generator").finalClass();
        c.method("make", Type::array(Type::f32()))
            .param("length", Type::i32())
            .param("seed", Type::i32())
            .body(blk(decl("a", Type::array(Type::f32()), newArr(Type::f32(), lv("length"))),
                      forRange("i", ci(0), lv("length"),
                               blk(aset(lv("a"), lv("i"),
                                        intr(Intrinsic::RngHashF32, lv("seed"), lv("i"))))),
                      ret(lv("a"))));
    }
    {
        auto& c = pb.cls("PhysSolver").implements("Solver").finalClass();
        c.method("solve", Type::f32())
            .param("selfv", Type::f32())
            .param("index", Type::i32())
            .body(blk(ret(mul(cf(0.5f), lv("selfv")))));
    }
    Program prog = pb.build();

    std::printf("==== the library developer's code (Listing 4 analogue) ====\n\n");
    std::fputs(printClass(*prog.cls("StencilOnGpuAndMPI")).c_str(), stdout);
    std::printf("\n==== the library user's code (Listing 3 analogue) ====\n\n");
    std::fputs(printClass(*prog.cls("PhysDataGen")).c_str(), stdout);
    std::fputs(printClass(*prog.cls("PhysSolver")).c_str(), stdout);

    Interp in(prog);
    Value stencilObj = in.instantiate(
        "StencilOnGpuAndMPI",
        {in.instantiate("PhysSolver", {}), in.instantiate("PhysDataGen", {})});
    JitCode code =
        WootinJ::jit4mpi(prog, stencilObj, "run", {Value::ofI32(8), Value::ofI32(2)});

    std::printf("\n==== the generated C (Listing 5 analogue) ====\n\n");
    std::fputs(code.generatedC().c_str(), stdout);
    std::printf("\n==== compiled with ====\n%s\n", code.compileCommand().c_str());
    return 0;
}
