// Conjugate gradient through the WootinC component library — the paper's
// future-work direction promoted to a fully evaluated workload. One
// CGSolver class runs with a matrix-free operator, a CSR matrix, or a
// row-partitioned MPI operator, switched by composition exactly like the
// stencil runners, and the whole matrix of execution configurations is
// VERIFIED here (this example doubles as a ctest integration test and
// exits non-zero on any divergence):
//
//   * serial jit vs the C++ scalar baseline (referenceCgResidual);
//   * CSR vs matrix-free composition;
//   * WJ_PARALLEL: the dot loops auto-prove ParallelReduce and the axpy
//     loops parallel-for — residuals bitwise-identical at WJ_THREADS
//     1/2/8 (ordered deterministic combine) and within tolerance of the
//     serial fold;
//   * MPI: row-partitioned ranks under real MiniMPI worlds, threaded
//     ranks included;
//   * WJ_FAULT: a transient compile failure is retried, and a killed
//     rank recovers on re-invoke;
//   * WJ_TRACE: the run emits a Perfetto-loadable span timeline.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cg/cg_lib.h"
#include "fault/fault.h"
#include "interp/interp.h"
#include "jit/cache.h"
#include "jit/jit.h"
#include "support/diagnostics.h"
#include "trace/trace.h"

using namespace wj;
using namespace wj::cg;

namespace {

int failures = 0;

void check(const char* what, bool ok) {
    std::printf("  %-58s %s\n", what, ok ? "ok" : "FAIL");
    if (!ok) ++failures;
}

bool bitEq(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

bool near(double a, double b, double relTol) {
    return std::fabs(a - b) <= relTol * std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
}

} // namespace

int main() {
    const int n = 4096, seed = 4, iters = 32;
    setenv("WJ_PARALLEL", "0", 1);
    trace::Tracer::instance().enable("cg_solver.trace.json");

    Program prog = buildProgram();
    Interp in(prog);

    std::printf("CG on the 1-D Dirichlet Laplacian, n=%d, %d iterations\n\n", n, iters);

    auto runCpu = [&](Operator op, int iterCount) {
        Value solver = op == Operator::Csr ? makeCpuCsrSolver(in, n) : makeCpuSolver(in, op);
        JitCode code = WootinJ::jit(prog, solver, "run",
                                    {Value::ofI32(n), Value::ofI32(seed),
                                     Value::ofI32(iterCount)});
        return code.invoke().asF64();
    };

    // ---- serial jit vs the C++ scalar baseline (cg_lib.cpp reference).
    // The raw residual norm is not monotone in f32 arithmetic (the 1-D
    // Laplacian's conditioning grows with n^2), so the contract is
    // agreement with the baseline at every iteration count, plus actual
    // convergence on a small well-conditioned instance: exact-arithmetic
    // CG finishes in n steps, so n=96 after 96 iterations must be tiny.
    std::printf("serial vs scalar baseline\n");
    for (int it : {0, 8, iters}) {
        const double rs = runCpu(Operator::MatrixFree, it);
        const double expect = referenceCgResidual(n, seed, it);
        char what[96];
        std::snprintf(what, sizeof what, "iters=%-3d ||r||^2=%.6e matches baseline", it, rs);
        check(what, near(rs, expect, 1e-10));
    }
    {
        const int ns = 96;
        Value solver = makeCpuSolver(in);
        JitCode code = WootinJ::jit(prog, solver, "run",
                                    {Value::ofI32(ns), Value::ofI32(seed), Value::ofI32(ns)});
        const double rs = code.invoke().asF64();
        check("n=96 converges within n iterations (||r||^2 < 1e-8)", rs < 1e-8);
        check("converged residual matches baseline",
              near(rs, referenceCgResidual(ns, seed, ns), 1e-6));
    }

    // ---- CSR composition computes the same operator.
    std::printf("operator compositions\n");
    check("CsrMatrix == Laplacian1D residual",
          near(runCpu(Operator::Csr, iters), runCpu(Operator::MatrixFree, iters), 1e-12));

    // ---- WJ_PARALLEL: reductions + axpy loops auto-prove; residuals are
    // bitwise-identical across thread counts (ordered combine) and near
    // the serial fold (the fixed chunk grid regroups the f64 dot sums).
    std::printf("intra-rank threading (WJ_PARALLEL=1)\n");
    const double serialRs = runCpu(Operator::MatrixFree, iters);
    std::vector<double> parRs;
    setenv("WJ_PARALLEL", "1", 1);
    for (int t : {1, 2, 8}) {
        setenv("WJ_THREADS", std::to_string(t).c_str(), 1);
        Value solver = makeCpuSolver(in);
        JitCode code = WootinJ::jit(prog, solver, "run",
                                    {Value::ofI32(n), Value::ofI32(seed), Value::ofI32(iters)});
        if (t == 1) {
            check("dot loops auto-prove ParallelReduce", code.reduceLoops() >= 1);
            check("axpy loops auto-prove parallel-for", code.parallelLoops() >= 1);
        }
        parRs.push_back(code.invoke().asF64());
    }
    check("threaded residual within tolerance of serial", near(parRs[0], serialRs, 1e-4));
    check("bitwise-identical at WJ_THREADS 1/2/8",
          bitEq(parRs[0], parRs[1]) && bitEq(parRs[0], parRs[2]));

    // ---- MPI: row-partitioned ranks under real MiniMPI worlds. MpiDot
    // allreduces rank partials, so compare against the global baseline
    // with a reduction tolerance; thread counts must not change the bits.
    std::printf("MPI row partitioning (jit4mpi + MiniMPI)\n");
    const double expectMpi = referenceCgResidual(n, seed, iters);
    auto runMpi = [&](int ranks, int threads) {
        setenv("WJ_THREADS", std::to_string(threads).c_str(), 1);
        Value solver = makeMpiSolver(in, n / ranks);
        JitCode code = WootinJ::jit4mpi(prog, solver, "run",
                                        {Value::ofI32(n / ranks), Value::ofI32(seed),
                                         Value::ofI32(iters)});
        code.set4MPI(ranks);
        return code.invoke().asF64();
    };
    for (int ranks : {2, 4}) {
        char what[96];
        const double rs = runMpi(ranks, 2);
        std::snprintf(what, sizeof what, "x%d threaded ranks ||r||^2=%.6e near baseline",
                      ranks, rs);
        check(what, near(rs, expectMpi, 1e-4));
    }
    {
        const double a = runMpi(2, 1), b = runMpi(2, 2), c = runMpi(2, 8);
        check("x2 ranks bitwise-identical at WJ_THREADS 1/2/8",
              bitEq(a, b) && bitEq(a, c));
    }

    // ---- WJ_FAULT: the robustness layer under this workload.
    std::printf("fault injection (WJ_FAULT)\n");
    {
        // A transient external-compiler failure is retried transparently.
        // Drop the compile cache first so the jit really reaches the
        // external compiler instead of being served a cached module.
        JitCache::instance().clearLoaded();
        JitCache::instance().clearDisk();
        fault::FaultPlan::instance().configure("failcompile:nth=1");
        Value solver = makeCpuSolver(in);
        JitCode code = WootinJ::jit(prog, solver, "run",
                                    {Value::ofI32(n), Value::ofI32(seed), Value::ofI32(iters)});
        check("transient compile failure retried", code.compileAttempts() == 2);
        check("retried code still verifies",
              near(code.invoke().asF64(), expectMpi, 1e-4));
        fault::FaultPlan::instance().disarm();
    }
    {
        // Kill rank 1 mid-solve; the kill consumes itself, so re-invoking
        // the same JitCode recovers and must reproduce the clean residual.
        const double clean = runMpi(2, 2);
        fault::FaultPlan::instance().configure("kill:rank=1,op=3");
        Value solver = makeMpiSolver(in, n / 2);
        JitCode code = WootinJ::jit4mpi(prog, solver, "run",
                                        {Value::ofI32(n / 2), Value::ofI32(seed),
                                         Value::ofI32(iters)});
        code.set4MPI(2);
        bool killed = false;
        try {
            (void)code.invoke();
        } catch (const ExecError&) {
            killed = true;
        }
        check("injected rank kill surfaced as ExecError", killed);
        check("re-invoke recovers bitwise", bitEq(code.invoke().asF64(), clean));
        fault::FaultPlan::instance().disarm();
    }

    const bool traced = trace::Tracer::instance().flush();
    std::printf("\ntrace: %s\n", traced ? "cg_solver.trace.json written" : "not written");
    if (!traced) ++failures;

    std::printf("%s\n", failures == 0 ? "all checks passed" : "CHECKS FAILED");
    return failures == 0 ? 0 : 1;
}
