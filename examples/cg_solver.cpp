// Conjugate gradient through the WootinC component library — the paper's
// future-work direction made concrete. One CGSolver class runs with a
// matrix-free operator, a CSR matrix, or a row-partitioned MPI operator,
// switched by composition exactly like the stencil runners.
#include <cstdio>
#include <cmath>

#include "cg/cg_lib.h"
#include "interp/interp.h"
#include "jit/jit.h"

using namespace wj;
using namespace wj::cg;

int main() {
    const int n = 96, seed = 4;
    Program prog = buildProgram();
    Interp in(prog);

    std::printf("CG on the 1-D Dirichlet Laplacian, n=%d\n\n", n);
    std::printf("%-44s %6s %16s\n", "composition", "iters", "||r||^2");

    auto report = [&](const char* name, int iters, double rs) {
        std::printf("%-44s %6d %16.6e\n", name, iters, rs);
    };

    for (int iters : {0, 8, 32, 96}) {
        Value solver = makeCpuSolver(in);
        JitCode code = WootinJ::jit(prog, solver, "run",
                                    {Value::ofI32(n), Value::ofI32(seed), Value::ofI32(iters)});
        report("CGSolver/Laplacian1D/LocalDot", iters, code.invoke().asF64());
    }
    {
        Value solver = makeCpuCsrSolver(in, n);
        JitCode code = WootinJ::jit(prog, solver, "run",
                                    {Value::ofI32(n), Value::ofI32(seed), Value::ofI32(32)});
        report("CGSolver/CsrMatrix/LocalDot", 32, code.invoke().asF64());
    }
    for (int ranks : {2, 4}) {
        Value solver = makeMpiSolver(in, n / ranks);
        JitCode code = WootinJ::jit4mpi(
            prog, solver, "run",
            {Value::ofI32(n / ranks), Value::ofI32(seed), Value::ofI32(32)});
        code.set4MPI(ranks);
        char name[64];
        std::snprintf(name, sizeof name, "CGSolver/MpiLaplacian1D/MpiDot (x%d)", ranks);
        report(name, 32, code.invoke().asF64());
    }

    const double expect = referenceCgResidual(n, seed, 32);
    std::printf("\nC++ reference at 32 iterations: %.6e\n", expect);
    return 0;
}
