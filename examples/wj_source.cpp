// A complete WootinC application written as WJ SOURCE TEXT — the
// restricted-Java dialect of the paper — parsed by the frontend, composed
// on the interpreter, verified against the coding rules, and JIT-translated
// for 4 MPI ranks. A Monte-Carlo pi estimator: each rank samples its own
// quasi-random points and the estimate is allreduced.
#include <cstdio>
#include <cmath>

#include "frontend/parser.h"
#include "interp/interp.h"
#include "jit/jit.h"

using namespace wj;

namespace {

const char* kSource = R"WJ(
// Sampling strategy is a switchable component.
@WootinJ interface Sampler {
  abstract float coord(int seed, int idx);
}

// Counter-based uniform samples in [0, 1).
@WootinJ final class HashSampler implements Sampler {
  float coord(int seed, int idx) {
    return WootinJ.rngHashF32(seed, idx);
  }
}

@WootinJ class PiEstimator {
  Sampler sampler;
  PiEstimator(Sampler sampler_) {
    this.sampler = sampler_;
  }
  double run(int samples) {
    int rank = MPI.rank();
    int size = MPI.size();
    int inside = 0;
    for (int i = 0; i < samples; i = i + 1) {
      // Decorrelate ranks through the seed; x and y use disjoint streams.
      float x = this.sampler.coord(rank * 2 + 1, i);
      float y = this.sampler.coord(rank * 2 + 2, i);
      if (x * x + y * y < 1.0f) {
        inside = inside + 1;
      }
    }
    double local = ((double) inside) / ((double) samples);
    double mean = local;
    if (size > 1) {
      mean = MPI.allreduceSumF64(local) / ((double) size);
    }
    return 4.0 * mean;
  }
}
)WJ";

} // namespace

int main() {
    Program prog = frontend::parseProgram(kSource);

    Interp in(prog);
    Value sampler = in.instantiate("HashSampler", {});
    Value estimator = in.instantiate("PiEstimator", {sampler});

    const int samples = 200000;
    std::printf("Monte-Carlo pi from WJ source text, %d samples per rank\n\n", samples);

    // On the JVM-analogue (slow, but it runs: no MPI communication at size 1).
    Value ji = in.call(estimator, "run", {Value::ofI32(samples / 10)});
    std::printf("  %-28s %.6f\n", "Java (interpreter, 1 rank):", ji.asF64());

    // Translated for 4 MPI ranks.
    JitCode code = WootinJ::jit4mpi(prog, estimator, "run", {Value::ofI32(samples)});
    code.set4MPI(4);
    const double pi = code.invoke().asF64();
    std::printf("  %-28s %.6f (error %.4f)\n", "WootinJ (4 MPI ranks):", pi,
                std::fabs(pi - 3.14159265358979));
    std::printf("\n  devirtualized calls: %lld, compile: %.1f ms\n",
                static_cast<long long>(code.devirtualizedCalls()),
                code.totalCompilationSeconds() * 1e3);
    return std::fabs(pi - 3.14159265358979) < 0.05 ? 0 : 1;
}
