// Quickstart — the paper's Listings 3 & 4, end to end.
//
// A library USER writes two small @WootinJ classes (PhysDataGen implements
// Generator, PhysSolver implements Solver), composes them with the library's
// StencilOnGpuAndMPI, and JIT-translates the `run` method for GPU + MPI
// execution:
//
//     Stencil stencil = new StencilOnGpuAndMPI(generator, solver);
//     JitCode code = WootinJ.jit4mpi(stencil, "run", length, updateCnt);
//     code.set4MPI(4, "./nodeList");
//     code.invoke();
//
// Everything below is that program, with the Java classes expressed through
// the WJ builder DSL (WootinC's stand-in for javac).
#include <cmath>
#include <cstdio>

#include "interp/interp.h"
#include "jit/jit.h"
#include "runtime/rng_hash.h"
#include "stencil/stencil_lib.h"

using namespace wj;
using namespace wj::dsl;

int main() {
    // ---- the library (what a WootinJ library developer shipped)
    ProgramBuilder pb;
    stencil::registerLibrary(pb);

    // ---- user code: Listing 3's @WootinJ classes
    {
        auto& c = pb.cls("PhysDataGen").implements("Generator").finalClass();
        c.method("make", Type::array(Type::f32()))
            .param("length", Type::i32())
            .param("seed", Type::i32())
            .body(blk(decl("a", Type::array(Type::f32()), newArr(Type::f32(), lv("length"))),
                      forRange("i", ci(0), lv("length"),
                               blk(aset(lv("a"), lv("i"),
                                        intr(Intrinsic::RngHashF32, lv("seed"), lv("i"))))),
                      ret(lv("a"))));
    }
    {
        auto& c = pb.cls("PhysSolver").implements("Solver").finalClass();
        c.field("decay", Type::f32());
        c.ctor().param("decay_", Type::f32()).body(blk(setSelf("decay", lv("decay_"))));
        // One-point stencil: each element decays toward zero.
        c.method("solve", Type::f32())
            .param("selfv", Type::f32())
            .param("index", Type::i32())
            .body(blk(ret(mul(selff("decay"), lv("selfv")))));
    }
    Program prog = pb.build();

    // ---- Listing 3's main: compose, jit4mpi, set4MPI, invoke
    Interp in(prog);
    Value generator = in.instantiate("PhysDataGen", {});
    Value solver = in.instantiate("PhysSolver", {Value::ofF32(0.5f)});
    Value stencilObj = in.instantiate("StencilOnGpuAndMPI", {solver, generator});

    const int length = 256;
    const int updateCnt = 4;
    JitCode code = WootinJ::jit4mpi(prog, stencilObj, "run",
                                    {Value::ofI32(length), Value::ofI32(updateCnt)});
    code.set4MPI(4, "./nodeList");  // 4 MiniMPI ranks, one GpuSim device each

    Value result = code.invoke();
    std::printf("one-point stencil on 4 ranks x 1 GPU each:\n");
    std::printf("  global checksum  = %.6f\n", result.asF64());
    std::printf("  jit codegen      = %.1f ms\n", code.codegenSeconds() * 1e3);
    std::printf("  external cc      = %.1f ms%s\n", code.compileSeconds() * 1e3,
                code.cacheHit() ? " (compile cache hit)" : "");
    std::printf("  devirtualized    = %lld call sites\n",
                static_cast<long long>(code.devirtualizedCalls()));
    std::printf("  kernels          = %lld\n", static_cast<long long>(code.kernels()));

    // Expected value: every rank generates rng data and halves it 4 times.
    double expect = 0;
    for (int rank = 0; rank < 4; ++rank) {
        for (int i = 0; i < length; ++i) {
            float v = wj_rng_hash_f32(rank, i);
            for (int s = 0; s < updateCnt; ++s) v *= 0.5f;
            expect += static_cast<double>(v);
        }
    }
    std::printf("  expected         = %.6f (%s)\n", expect,
                std::abs(expect - result.asF64()) < 1e-9 ? "match" : "MISMATCH");
    return std::abs(expect - result.asF64()) < 1e-9 ? 0 : 1;
}
