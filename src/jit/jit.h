// The public WootinC JIT API, mirroring the paper's client view (Listing 3):
//
//   JitCode code = WootinJ::jit4mpi(prog, stencil, "run", {length, updateCnt});
//   code.set4MPI(128, "./nodeList");
//   Value result = code.invoke();
//
// jit()/jit4mpi() verify the coding rules, translate the entry method and
// everything reachable from it into C (devirtualized, object-inlined),
// compile with the external C compiler, and dlopen the result. invoke()
// deep-copies the recorded array arguments into the translated code's own
// memory space (per rank, for MPI) and calls the generated entry. Modified
// arrays are NOT copied back (paper, Section 3.1) unless the copy-back
// extension is requested.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "interp/value.h"
#include "jit/codegen.h"
#include "jit/compile.h"
#include "ir/program.h"
#include "minimpi/minimpi.h"
#include "runtime/wjrt.h"
#include "trace/metrics.h"

namespace wj {

/// Which engine invoke() drives — the degradation ladder's rungs. Tests and
/// benches assert on this instead of guessing from timings.
enum class ExecMode {
    Native,       ///< freshly compiled by the external C compiler
    NativeCached, ///< served by the compile cache (memory or disk layer)
    Interpreter,  ///< fallback: the C compiler was unavailable
};

class JitCode {
public:
    JitCode(JitCode&&) = default;
    JitCode& operator=(JitCode&&) = default;

    /// Configures MPI execution with `ranks` ranks. `nodeList` is accepted
    /// for interface fidelity with the paper but ignored: MiniMPI ranks are
    /// in-process threads, not hosts.
    void set4MPI(int ranks, const std::string& nodeList = "");

    /// Runs the translated code with the arguments recorded at jit() time.
    /// Under MPI, every rank runs the entry with its own deep copy of the
    /// argument arrays (separate memory spaces); rank 0's return value is
    /// returned.
    Value invoke();

    /// Runs with overriding arguments (same types as recorded).
    Value invokeWith(const std::vector<Value>& args);

    /// EXTENSION beyond the paper: copy the receiver-graph and argument
    /// arrays back into the interpreter heap after a single-rank invoke.
    /// Lets differential tests compare whole arrays, not just return values.
    /// Throws if MPI ranks > 1 (ranks hold divergent copies).
    void enableCopyBack(bool on) { copyBack_ = on; }

    // ---- Table 3 accounting. compileSeconds() is the external-compiler
    // time THIS construction paid: 0 when the compile cache served the
    // module (the shared NativeModule may have cost its first builder more).
    double codegenSeconds() const noexcept { return translation_.codegenSeconds; }
    // ---- bounds-guard accounting (WJ_BOUNDS; see src/analysis/)
    int64_t boundsGuards() const noexcept { return translation_.boundsGuards; }
    int64_t boundsElided() const noexcept { return translation_.boundsElided; }
    double compileSeconds() const noexcept { return compile_.compileSeconds; }
    double totalCompilationSeconds() const noexcept {
        return codegenSeconds() + compileSeconds();
    }

    // ---- compile-cache observability (see jit/cache.h). Warm construction
    // of an already-compiled translation unit skips the external compiler:
    // cacheHit() is true and compileSeconds() is 0.
    bool cacheHit() const noexcept { return compile_.cacheHit; }
    double cacheLookupSeconds() const noexcept { return compile_.lookupSeconds; }

    // ---- robustness observability (see src/fault/). execMode() reports
    // which rung of the degradation ladder this code runs on; Interpreter
    // means the external C compiler was unavailable and WJ_JIT_FALLBACK
    // (default on) allowed graceful degradation. compileAttempts() exceeds
    // 1 when transient compiler failures were retried (0 on a cache hit).
    ExecMode execMode() const noexcept { return mode_; }
    int compileAttempts() const noexcept { return compile_.attempts; }

    // ---- optimization evidence (tests assert on these)
    int64_t specializations() const noexcept { return translation_.specializations; }
    int64_t devirtualizedCalls() const noexcept { return translation_.devirtualizedCalls; }
    int64_t inlinedObjects() const noexcept { return translation_.inlinedObjects; }
    int64_t kernels() const noexcept { return translation_.kernels; }
    /// Loops the analysis proved dependence-free and the translator
    /// dispatched through wjrt_parallel_for (WJ_PARALLEL, WJ_THREADS).
    int64_t parallelLoops() const noexcept { return translation_.parallelLoops; }
    /// Reduction loops (`acc = acc op f(i)`) outlined through
    /// wjrt_parallel_reduce with the ordered deterministic combine.
    int64_t reduceLoops() const noexcept { return translation_.reduceLoops; }
    /// Loops the proveVectors pass cleared for SIMD and the translator
    /// emitted under `#pragma omp simd` (WJ_SIMD) — including vectorized
    /// chunk loops inside parallel-for/reduce outlines.
    int64_t vectorLoops() const noexcept { return translation_.vectorLoops; }
    /// Allocation sites the translator emitted as SoA (wjrt_alloc_soa)
    /// because the proveLayout pass proved the element class Inline and
    /// WJ_SOA=1 was set at translation time.
    int64_t soaArrays() const noexcept { return translation_.soaArrays; }
    /// Element classes actually stored SoA in this translation (sorted;
    /// empty unless WJ_SOA=1 and at least one Inline class is allocated).
    const std::vector<std::string>& layoutClasses() const noexcept {
        return translation_.soaClasses;
    }

    /// MiniMPI traffic of the most recent multi-rank invoke(): total plus
    /// the pooled / zero-copy split (all zeros before the first MPI run).
    minimpi::CommStats commStats() const noexcept { return commStats_; }

    /// Snapshot of the process-wide metrics registry (src/trace/metrics.h):
    /// cache hits, bytes by collective channel, pool dispatches, guard
    /// fallbacks, checkpoint bytes, ... — the same values the WJ_TRACE
    /// sidecar exports, queryable without touching the filesystem. The
    /// registry is process-wide (cumulative across JitCode instances); diff
    /// two snapshots to attribute work to one invoke.
    static std::vector<trace::MetricValue> metrics() {
        return trace::Metrics::instance().snapshot();
    }

    /// The generated C translation unit (Listing 5's analogue).
    const std::string& generatedC() const noexcept { return translation_.cSource; }
    const std::string& compileCommand() const noexcept {
        static const std::string kNone = "(none: interpreter fallback)";
        return compile_.module ? compile_.module->compileCommand() : kNone;
    }

private:
    friend class WootinJ;
    JitCode(const Program& prog, Value receiver, std::string method, std::vector<Value> args,
            bool mpi);
    /// Assembles from a finished translation + compile result (async path).
    JitCode(const Program& prog, Value receiver, std::string method, std::vector<Value> args,
            bool mpi, Translation tr, CompileResult compiled);
    /// Assembles in interpreter-fallback mode (compiler unavailable).
    JitCode(const Program& prog, Value receiver, std::string method, std::vector<Value> args,
            bool mpi, Translation tr);

    Value invokeRank(const std::vector<Value>& args);
    Value invokeInterpreter(const std::vector<Value>& args);

    const Program* prog_;
    Value receiver_;
    std::string method_;
    std::vector<Value> recordedArgs_;
    bool mpi_ = false;
    int ranks_ = 1;
    bool copyBack_ = false;

    Translation translation_;
    minimpi::CommStats commStats_;
    CompileResult compile_;  // module is shared via the module registry
    ExecMode mode_ = ExecMode::Native;
    using EntryFn = int64_t (*)(const int64_t*, ::wj_array**);
    EntryFn entry_ = nullptr;
};

/// Facade named after the paper's framework.
class WootinJ {
public:
    /// Translates `receiver.method(args...)` for single-process execution
    /// (GPU via GpuSim allowed; MPI calls trap at run time).
    static JitCode jit(const Program& prog, const Value& receiver, const std::string& method,
                       std::vector<Value> args);

    /// Translates for MPI execution; call set4MPI() before invoke().
    static JitCode jit4mpi(const Program& prog, const Value& receiver, const std::string& method,
                           std::vector<Value> args);

    /// Asynchronous variants: translation + external compilation run on the
    /// shared compile thread pool, so independent translation units build
    /// in parallel (the all-variants benches overlap their compiles this
    /// way). `prog` must outlive the returned future's completion; the
    /// future rethrows any rule/translation/compile error on get().
    static std::future<JitCode> jitAsync(const Program& prog, Value receiver, std::string method,
                                         std::vector<Value> args);
    static std::future<JitCode> jit4mpiAsync(const Program& prog, Value receiver,
                                             std::string method, std::vector<Value> args);

private:
    static std::future<JitCode> jitAsyncImpl(const Program& prog, Value receiver,
                                             std::string method, std::vector<Value> args,
                                             bool mpi);
};

} // namespace wj
