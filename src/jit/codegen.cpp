#include "jit/codegen.h"

#include <cctype>
#include <functional>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "analysis/analysis.h"
#include "jit/shape.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "support/timer.h"

namespace wj {

namespace {

[[noreturn]] void xerr(const std::string& msg) {
    throw UsageError("translation error: " + msg);
}

/// Formats a primitive literal exactly (hex floats keep bit-identity).
std::string primLiteral(Prim p, int64_t i, double f) {
    switch (p) {
    case Prim::Bool: return i ? "1" : "0";
    case Prim::I32: return format("%d", static_cast<int32_t>(i));
    case Prim::I64: return format("INT64_C(%lld)", static_cast<long long>(i));
    case Prim::F32: {
        const float v = static_cast<float>(f);
        if (std::isnan(v)) return "(0.0f/0.0f)";
        if (std::isinf(v)) return v > 0 ? "(1.0f/0.0f)" : "(-1.0f/0.0f)";
        return format("%af", static_cast<double>(v));
    }
    case Prim::F64:
        if (std::isnan(f)) return "(0.0/0.0)";
        if (std::isinf(f)) return f > 0 ? "(1.0/0.0)" : "(-1.0/0.0)";
        return format("%a", f);
    }
    return "0";
}

std::string primLiteralOf(const Value& v) {
    if (v.isBool()) return v.asBool() ? "1" : "0";
    if (v.isI32()) return primLiteral(Prim::I32, v.asI32(), 0);
    if (v.isI64()) return primLiteral(Prim::I64, v.asI64(), 0);
    if (v.isF32()) return primLiteral(Prim::F32, 0, v.asF32());
    if (v.isF64()) return primLiteral(Prim::F64, 0, v.asF64());
    xerr("non-primitive literal");
}

/// Indented line collector for one C function body.
class Emitter {
public:
    explicit Emitter(int indent = 1) : indent_(indent) {}
    void line(const std::string& s) {
        text_ += std::string(static_cast<size_t>(indent_) * 2, ' ') + s + "\n";
    }
    void open(const std::string& s) { line(s); ++indent_; }
    void close(const std::string& s = "}") { --indent_; line(s); }
    /// Prints at the enclosing level without changing depth ("} else {").
    void mid(const std::string& s) {
        --indent_;
        line(s);
        ++indent_;
    }
    /// Splices pre-formatted text produced by a sub-emitter started at this
    /// emitter's current indent.
    void splice(const Emitter& sub) { text_ += sub.text(); }
    int indent() const noexcept { return indent_; }
    const std::string& text() const noexcept { return text_; }

private:
    std::string text_;
    int indent_ = 1;
};

class CodeGen {
public:
    explicit CodeGen(const Program& prog) : prog_(prog), shapes_(prog) {}

    /// Bounds-guard policy: mode 0 = no guards, 1 = guard accesses the
    /// interval analysis could not prove safe (`safety` holds its verdicts),
    /// 2 = guard everything.
    void setBounds(int mode, const std::map<const void*, analysis::Safety>* safety) {
        boundsMode_ = mode;
        safety_ = safety;
    }

    /// Loop-parallelization verdicts (keyed by ForStmt address). When set,
    /// host loops proven Parallel/CondParallel are outlined into a chunk
    /// function dispatched through wjrt_parallel_for.
    void setParallel(const std::map<const void*, analysis::LoopParallel>* verdicts) {
        parLoops_ = verdicts;
    }

    /// SIMD verdicts of the proveVectors pass (keyed by ForStmt address).
    /// When set (WJ_SIMD=1), innermost host loops proven Vectorizable get
    /// restrict-qualified element pointers and a `#pragma omp simd` line —
    /// inside chunk functions and on the serial path alike; CondVectorizable
    /// loops additionally get a wjrt_ranges_disjoint runtime guard with the
    /// scalar loop as the else branch.
    void setSimd(const std::map<const void*, analysis::LoopVector>* verdicts) {
        vecLoops_ = verdicts;
    }

    /// AoS→SoA layout verdicts of the proveLayout pass (keyed by element
    /// class name). When set (WJ_SOA=1), arrays of Inline-verdict classes
    /// are stored as packed per-field lane regions instead of arrays of
    /// structs: allocation goes through wjrt_alloc_soa, `a[i].f` reads load
    /// straight from field f's region, and whole-element stores `a[i] =
    /// new C(...)` scatter one store per field — the struct element is
    /// never materialized. Boxed (and boundary-crossing) classes keep the
    /// AoS struct layout; the pass guarantees Inline classes have no use
    /// that could observe the difference.
    void setSoa(const std::map<std::string, analysis::ClassLayout>* layouts) {
        soaLayouts_ = layouts;
    }

    Translation run(const Value& receiver, const std::string& method,
                    const std::vector<Value>& args);

private:
    // ---- value being generated: a C expression + exact shape.
    struct CVal {
        std::string text;      // object values: pointer expression
        const Shape* shape = nullptr;
        bool simple = false;   // safe to duplicate textually (no side effects)
    };

    /// One generated C function: a (class, method, shapes, device?) key.
    struct Spec {
        std::string fnName;
        std::string thunkName;       // kernels only
        const ClassDecl* owner = nullptr;
        const Method* method = nullptr;
        const Shape* recv = nullptr; // null for statics
        std::vector<const Shape*> args;
        bool device = false;
        bool usesSync = false;       // kernel/device: reaches syncthreads
        bool done = false;
    };

    struct Env {
        std::map<std::string, CVal> vars;
        CVal self;
        bool hasThis = false;
        bool device = false;
        Spec* spec = nullptr;
        Emitter* em = nullptr;
    };

    // ---- structs / types
    const std::string& structFor(const Shape* s);
    std::string cTypeVal(const Shape* s);   // value position (members, returns)
    std::string cTypeParam(const Shape* s); // parameter position (objects by pointer)

    // ---- specialization
    Spec& specialize(const ClassDecl& owner, const Method& m, const Shape* recv,
                     std::vector<const Shape*> argShapes, bool device);
    void emitBody(Spec& spec);

    // ---- expression / statement generation
    CVal genExpr(Env& env, const Expr& e);
    CVal genNew(Env& env, const NewExpr& n);
    CVal genCall(Env& env, const CallExpr& n);
    CVal genIntrinsic(Env& env, const IntrinsicExpr& n);
    void genLaunch(Env& env, const CallExpr& n, const ClassDecl& owner, const Method& m,
                   const CVal& recv);
    void genStmts(Env& env, const Block& b);
    void genStmt(Env& env, const Stmt& s);
    void genSerialFor(Env& env, const ForStmt& n);
    void genSimdFor(Env& env, const ForStmt& n, const analysis::LoopVector& lv);
    void genParallelFor(Env& env, const ForStmt& n, const analysis::LoopParallel& lp);
    void genParallelReduce(Env& env, const ForStmt& n, const analysis::LoopParallel& lp);
    /// SIMD verdict usable in this emission context, or null. Resolves the
    /// overlap-guard pair names and reduction accumulators against `env`; a
    /// name out of scope means the proof context does not match here.
    const analysis::LoopVector* simdVerdict(Env& env, const ForStmt& n) const;
    /// Hoists `elem* restrict` pointers for the prim-element array locals
    /// the loop body accesses and routes their element accesses through the
    /// pointers (simdPtrs_). Returns the names to erase afterwards.
    std::vector<std::string> hoistSimdPtrs(Env& env, const ForStmt& n);
    void dropSimdPtrs(const std::vector<std::string>& keys) {
        for (const std::string& k : keys) simdPtrs_.erase(k);
    }
    /// Runtime range-disjointness guard for a CondVectorizable loop ("" when
    /// unconditional). Only call after simdVerdict() accepted the context.
    std::string simdGuard(Env& env, const analysis::LoopVector& lv);
    /// `reduction(op:var)` clauses for the pragma ("" when no reductions).
    std::string simdRedClause(Env& env, const analysis::LoopVector& lv);
    void inlineCtor(Env& env, const std::string& var, const ClassDecl& cls,
                    std::vector<CVal> argVals,
                    std::map<std::string, const Shape*>& fieldShapes);
    CVal materialize(Env& env, CVal v);
    std::string freshTmp() { return format("t%d", tmpCount_++); }

    // ---- statics
    std::string staticRef(const std::string& cls, const std::string& field);

    // ---- entry
    void genEntry(const Value& receiver, const std::string& method,
                  const std::vector<Value>& args);
    void emitGraphInit(Emitter& em, const std::string& prefix, const Shape* shape,
                       const Value& v);

    const Program& prog_;
    ShapeTable shapes_;

    std::string structs_, protos_, fns_, entry_;
    std::map<std::string, std::string> structNames_;
    std::map<std::string, Spec> specs_;
    std::set<std::string> staticsEmitted_;
    std::string staticsSection_;
    int structCount_ = 0;
    int tmpCount_ = 0;
    int fnCount_ = 0;
    int boundsMode_ = 0;
    const std::map<const void*, analysis::Safety>* safety_ = nullptr;
    const std::map<const void*, analysis::LoopParallel>* parLoops_ = nullptr;
    const std::map<const void*, analysis::LoopVector>* vecLoops_ = nullptr;
    const std::map<std::string, analysis::ClassLayout>* soaLayouts_ = nullptr;
    /// Element classes whose arrays this translation actually allocated SoA.
    std::set<std::string> soaUsed_;
    /// Active restrict-pointer substitutions: array CVal text -> hoisted
    /// element pointer. Consulted by the ArrayGet/ArraySet emission so simd
    /// loop bodies index through the restrict pointers. SoA field regions
    /// use the key `<array text>#<field>` (prim-element arrays use the bare
    /// text, so the key spaces cannot collide). Vector verdicts only exist
    /// for innermost loops, so substitutions never nest.
    std::map<std::string, std::string> simdPtrs_;
    int pfCount_ = 0;
    Translation out_;

    /// SoA layout for an array shape's element class, or null when the
    /// array must stay AoS (no layouts set, prim/escaping element class).
    /// Only Inline verdicts qualify — CondInline is a lint presentation.
    const analysis::ClassLayout* soaLayoutOfClass(const std::string& cls) const {
        if (!soaLayouts_) return nullptr;
        auto it = soaLayouts_->find(cls);
        if (it == soaLayouts_->end()) return nullptr;
        if (it->second.verdict != analysis::LayoutVerdict::Inline) return nullptr;
        return &it->second;
    }
    const analysis::ClassLayout* soaLayout(const Shape* s) const {
        if (!s->isArray()) return nullptr;
        const Type& elem = s->arrayElem();
        if (!elem.isClass()) return nullptr;
        return soaLayoutOfClass(elem.className());
    }

    /// Lane access for one field of an SoA array: through the hoisted
    /// restrict pointer inside a simd loop, the packed region cast
    /// elsewhere. Field k's region starts len*pre bytes into the payload
    /// (fields are size-sorted upstream, so every region is aligned). The
    /// caller must pass a materialized `a` — the region form names it twice.
    std::string soaAccess(const CVal& a, const analysis::SoaField& f,
                          const std::string& idx) const {
        auto it = simdPtrs_.find(a.text + "#" + f.name);
        if (it != simdPtrs_.end()) return it->second + "[" + idx + "]";
        return "((" + std::string(primCName(f.prim)) + "*)" + soaRegion(a.text, f) + ")[" + idx +
               "]";
    }
    /// The raw `void*`-ish region base expression (no cast) for field f.
    static std::string soaRegion(const std::string& arr, const analysis::SoaField& f) {
        if (f.pre == 0) return "wj_array_data(" + arr + ")";
        return "((char*)wj_array_data(" + arr + ") + (size_t)(" + arr + ")->len * " +
               std::to_string(f.pre) + ")";
    }

    /// Element access for a prim-element array: through the hoisted restrict
    /// pointer inside a simd loop, the raw payload cast elsewhere.
    std::string elemAccess(const CVal& a, Prim elem, const std::string& idx) const {
        auto it = simdPtrs_.find(a.text);
        if (it != simdPtrs_.end()) return it->second + "[" + idx + "]";
        return "((" + std::string(primCName(elem)) + "*)wj_array_data(" + a.text + "))[" + idx +
               "]";
    }

    /// Index expression for an array access, wrapped in a wj_chk guard when
    /// the policy asks for one. Guarding materializes `a` and `i` first:
    /// the guard macro mentions the array twice and must not re-evaluate a
    /// side-effecting operand. Device code is never guarded — wjrt_trap
    /// unwinds with a C++ exception, which must not cross the simulated
    /// kernel's thread boundary.
    std::string indexExpr(Env& env, CVal& a, CVal& i, const void* site) {
        bool guard = false;
        if (!env.device && boundsMode_ > 0) {
            if (boundsMode_ >= 2 || !safety_) {
                guard = true;
            } else {
                auto it = safety_->find(site);
                guard = it == safety_->end() || it->second != analysis::Safety::Safe;
                if (!guard) ++out_.boundsElided;
            }
        }
        if (!guard) return i.text;
        a = materialize(env, a);
        i = materialize(env, i);
        ++out_.boundsGuards;
        return "wj_chk(" + a.text + ", (int64_t)(" + i.text + "))";
    }
};

// ------------------------------------------------------------ types/structs

const std::string& CodeGen::structFor(const Shape* s) {
    auto it = structNames_.find(s->key());
    if (it != structNames_.end()) return it->second;
    // Emit dependencies (nested object members) first.
    for (const auto& [name, fs] : s->fields()) {
        if (fs->isObject()) structFor(fs);
    }
    std::string name = format("S%d_%s", structCount_++, mangle(s->cls().name).c_str());
    std::string def = "/* inlined object: " + s->key() + " */\n";
    def += "typedef struct " + name + " {\n";
    if (s->fields().empty()) {
        def += "  int32_t wj_empty; /* C requires one member */\n";
    }
    for (const auto& [fname, fs] : s->fields()) {
        def += "  " + cTypeVal(fs) + " f_" + fname + ";\n";
    }
    def += "} " + name + ";\n";
    structs_ += def;
    return structNames_.emplace(s->key(), std::move(name)).first->second;
}

std::string CodeGen::cTypeVal(const Shape* s) {
    switch (s->kind()) {
    case Shape::Kind::Prim: return primCName(s->prim());
    case Shape::Kind::Array: return "wj_array*";
    case Shape::Kind::Object: return structFor(s);
    }
    return "void";
}

std::string CodeGen::cTypeParam(const Shape* s) {
    if (s->isObject()) return structFor(s) + "*";
    return cTypeVal(s);
}

// ------------------------------------------------------------ specialization

CodeGen::Spec& CodeGen::specialize(const ClassDecl& owner, const Method& m, const Shape* recv,
                                   std::vector<const Shape*> argShapes, bool device) {
    std::string key = owner.name + "." + m.name + "|" + (recv ? recv->key() : "static") + "|";
    for (const Shape* a : argShapes) key += a->key() + ",";
    key += device ? "D" : "H";

    auto it = specs_.find(key);
    if (it != specs_.end()) {
        if (!it->second.done) {
            // Rule 6 forbids recursion, and requireCodingRules runs before
            // translation, so this is an internal inconsistency.
            xerr("recursive specialization of " + owner.name + "." + m.name);
        }
        return it->second;
    }
    Spec& spec = specs_[key];
    spec.fnName = format("wj_f%d_%s_%s", fnCount_++, mangle(owner.name).c_str(),
                         mangle(m.name).c_str());
    spec.owner = &owner;
    spec.method = &m;
    spec.recv = recv;
    spec.args = std::move(argShapes);
    spec.device = device || m.isGlobal;
    emitBody(spec);
    spec.done = true;
    ++out_.specializations;
    return spec;
}

void CodeGen::emitBody(Spec& spec) {
    const Method& m = *spec.method;
    // @Global: the CudaConfig parameter disappears; the kernel gets the
    // thread context instead (Listing 4 -> Listing 5 in the paper).
    size_t firstParam = m.isGlobal ? 1 : 0;
    if (m.isGlobal && spec.args.size() != m.params.size() - 1) {
        xerr("kernel argument shape count mismatch for " + m.name);
    }
    if (!m.isGlobal && spec.args.size() != m.params.size()) {
        xerr("argument shape count mismatch for " + m.name);
    }

    const Shape* retShape = m.ret.isVoid() ? nullptr : shapes_.ofType(m.ret);
    std::string sig = (retShape ? cTypeVal(retShape) : std::string("void")) + " " + spec.fnName + "(";
    std::vector<std::string> ps;
    if (spec.device) ps.push_back("wjrt_gpu_tctx* __wjt");
    if (spec.recv) ps.push_back(structFor(spec.recv) + "* self");
    for (size_t i = firstParam; i < m.params.size(); ++i) {
        const Shape* as = spec.args[i - firstParam];
        ps.push_back(cTypeParam(as) + " v_" + m.params[i].name);
    }
    if (ps.empty()) ps.push_back("void");
    sig += join(ps, ", ") + ")";

    protos_ += "static " + sig + ";\n";

    Emitter em;
    Env env;
    env.em = &em;
    env.spec = &spec;
    env.device = spec.device;
    if (spec.recv) {
        env.hasThis = true;
        env.self = {"self", spec.recv, true};
    }
    for (size_t i = firstParam; i < m.params.size(); ++i) {
        env.vars["@p:" + m.params[i].name] = {};  // marker: reserved
        env.vars[m.params[i].name] = {"v_" + m.params[i].name, spec.args[i - firstParam], true};
    }
    genStmts(env, m.body);

    fns_ += "static " + sig + " {\n" + em.text();
    if (m.ret.isVoid()) {
        fns_ += "}\n\n";
    } else {
        // Unreachable fallthrough guard (WJ requires a return on all paths;
        // the C compiler cannot always prove it).
        fns_ += "  wjrt_trap(\"missing return in " + m.name + "\");\n";
        const Shape* rs = shapes_.ofType(m.ret);
        if (rs->isObject()) {
            fns_ += "  { " + structFor(rs) + " z; memset(&z, 0, sizeof z); return z; }\n";
        } else if (rs->isArray()) {
            fns_ += "  return 0;\n";
        } else {
            fns_ += "  return 0;\n";
        }
        fns_ += "}\n\n";
    }
}

// ------------------------------------------------------------------- stmts

void CodeGen::genStmts(Env& env, const Block& b) {
    for (const auto& st : b) genStmt(env, *st);
}

void CodeGen::genStmt(Env& env, const Stmt& s) {
    Emitter& em = *env.em;
    switch (s.kind) {
    case StmtKind::Decl: {
        const auto& n = as<DeclStmt>(s);
        const Shape* uShape = shapes_.ofType(n.type);
        if (!n.init) {
            // Uninitialized prim/array local (definite assignment guarantees
            // every read is dominated by a store); zero-init keeps the C
            // well-defined regardless.
            if (uShape->isObject()) xerr("object local '" + n.name + "' lacks an initializer");
            em.line(cTypeVal(uShape) + " v_" + n.name + " = 0;");
            env.vars[n.name] = {"v_" + n.name, uShape, true};
            return;
        }
        CVal v = genExpr(env, *n.init);
        const Shape* declShape = shapes_.ofType(n.type);  // strict-final (rule 2)
        if (declShape->isObject()) {
            if (v.shape != declShape) {
                xerr("object local '" + n.name + "' initialized with shape " + v.shape->key() +
                     " != declared " + declShape->key());
            }
            em.line(structFor(declShape) + "* v_" + n.name + " = " + v.text + ";");
        } else {
            em.line(cTypeVal(declShape) + " v_" + n.name + " = " + v.text + ";");
        }
        env.vars[n.name] = {"v_" + n.name, declShape, true};
        return;
    }
    case StmtKind::AssignLocal: {
        const auto& n = as<AssignLocalStmt>(s);
        auto it = env.vars.find(n.name);
        if (it == env.vars.end()) xerr("undeclared local " + n.name);
        CVal v = genExpr(env, *n.value);
        em.line(it->second.text + " = " + v.text + ";");
        return;
    }
    case StmtKind::FieldSet: {
        const auto& n = as<FieldSetStmt>(s);
        CVal obj = genExpr(env, *n.obj);
        const Field* declF = prog_.resolveField(obj.shape->cls().name, n.field);
        if (declF && declF->isShared) {
            xerr("@Shared field ." + n.field + " cannot be reassigned (it names the block's "
                 "shared memory, not an object slot)");
        }
        const Shape* fs = obj.shape->field(n.field);
        CVal v = genExpr(env, *n.value);
        if (fs->isObject()) {
            em.line(obj.text + "->f_" + n.field + " = *" + v.text + ";");
        } else {
            em.line(obj.text + "->f_" + n.field + " = " + v.text + ";");
        }
        return;
    }
    case StmtKind::ArraySet: {
        const auto& n = as<ArraySetStmt>(s);
        CVal a = genExpr(env, *n.arr);
        if (const analysis::ClassLayout* cl = soaLayout(a.shape)) {
            // SoA store `a[i] = new C(...)`: one scatter per field. The
            // layout pass proved the value is a fresh `new C(...)`, so the
            // inlined constructor object feeds the lanes and dies. Source
            // evaluation order (array, index, value) is preserved, and the
            // index — which may carry a wj_chk guard — is materialized once
            // so the guard cannot re-trap per field.
            a = materialize(env, a);
            CVal i = genExpr(env, *n.idx);
            std::string idx = indexExpr(env, a, i, &n);
            if (!i.simple || idx != i.text) {
                std::string t = freshTmp();
                em.line("int64_t " + t + " = (int64_t)(" + idx + ");");
                idx = t;
            }
            CVal v = materialize(env, genExpr(env, *n.value));
            for (const auto& f : cl->fields) {
                em.line(soaAccess(a, f, idx) + " = " + v.text + "->f_" + f.name + ";");
            }
            return;
        }
        CVal i = genExpr(env, *n.idx);
        const std::string idx = indexExpr(env, a, i, &n);
        CVal v = genExpr(env, *n.value);
        const Type& elem = a.shape->arrayElem();
        if (elem.isClass()) {
            const Shape* es = shapes_.ofType(elem);
            em.line("((" + structFor(es) + "*)wj_array_data(" + a.text + "))[" + idx +
                    "] = *" + v.text + ";");
        } else {
            em.line(elemAccess(a, elem.prim(), idx) + " = " + v.text + ";");
        }
        return;
    }
    case StmtKind::If: {
        const auto& n = as<IfStmt>(s);
        CVal c = genExpr(env, *n.cond);
        auto saved = env.vars;
        em.open("if (" + c.text + ") {");
        genStmts(env, n.thenB);
        env.vars = saved;
        if (!n.elseB.empty()) {
            em.mid("} else {");
            genStmts(env, n.elseB);
            env.vars = saved;
        }
        em.close();
        return;
    }
    case StmtKind::While: {
        const auto& n = as<WhileStmt>(s);
        CVal c = genExpr(env, *n.cond);
        auto saved = env.vars;
        em.open("while (" + c.text + ") {");
        genStmts(env, n.body);
        env.vars = saved;
        em.close();
        return;
    }
    case StmtKind::For: {
        const auto& n = as<ForStmt>(s);
        if (parLoops_ && !env.device) {
            auto it = parLoops_->find(&n);
            if (it != parLoops_->end() && it->second.verdict != analysis::ParVerdict::Serial) {
                if (it->second.verdict == analysis::ParVerdict::ParallelReduce) {
                    genParallelReduce(env, n, it->second);
                } else {
                    genParallelFor(env, n, it->second);
                }
                return;
            }
        }
        if (const analysis::LoopVector* lv = simdVerdict(env, n)) {
            genSimdFor(env, n, *lv);
            return;
        }
        genSerialFor(env, n);
        return;
    }
    case StmtKind::Return: {
        const auto& n = as<ReturnStmt>(s);
        if (!n.value) {
            em.line("return;");
            return;
        }
        CVal v = genExpr(env, *n.value);
        if (v.shape->isObject()) {
            em.line("return *" + v.text + ";");
        } else {
            em.line("return " + v.text + ";");
        }
        return;
    }
    case StmtKind::ExprStmt: {
        CVal v = genExpr(env, *as<ExprStmt>(s).e);
        if (!v.text.empty()) em.line("(void)(" + v.text + ");");
        return;
    }
    case StmtKind::SuperCtor:
        xerr("super(...) outside constructor inlining");
    }
}

void CodeGen::genSerialFor(Env& env, const ForStmt& n) {
    Emitter& em = *env.em;
    auto saved = env.vars;
    CVal init = genExpr(env, *n.init);
    const Shape* vs = shapes_.ofType(n.varType);
    if (vs->isObject()) xerr("object-typed loop variables are not supported");
    env.vars[n.var] = {"v_" + n.var, vs, true};
    CVal cond = genExpr(env, *n.cond);
    CVal step = genExpr(env, *n.step);
    em.open("for (" + cTypeVal(vs) + " v_" + n.var + " = " + init.text + "; " + cond.text +
            "; v_" + n.var + " = " + step.text + ") {");
    genStmts(env, n.body);
    env.vars = saved;
    em.close();
}

namespace {

/// Evaluating an expression twice (or hoisting it out of the loop header)
/// must not duplicate side effects; refuse anything that can emit code.
bool safeToHoist(const Expr& e) {
    switch (e.kind) {
    case ExprKind::Call:
    case ExprKind::StaticCall:
    case ExprKind::IntrinsicCall:
    case ExprKind::New:
    case ExprKind::NewArray: return false;
    case ExprKind::FieldGet: return safeToHoist(*as<FieldGetExpr>(e).obj);
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        return safeToHoist(*n.arr) && safeToHoist(*n.idx);
    }
    case ExprKind::ArrayLen: return safeToHoist(*as<ArrayLenExpr>(e).arr);
    case ExprKind::Unary: return safeToHoist(*as<UnaryExpr>(e).e);
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        return safeToHoist(*n.l) && safeToHoist(*n.r);
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        return safeToHoist(*n.c) && safeToHoist(*n.t) && safeToHoist(*n.f);
    }
    case ExprKind::Cast: return safeToHoist(*as<CastExpr>(e).e);
    default: return true;
    }
}

/// Expressions used as the array operand of an element access anywhere
/// under the node — the restrict-hoisting candidates of a simd loop
/// (locals and stable field-load chains like `this.cur`). Skipping a base
/// here only forgoes its hoist, never correctness: unhoisted accesses keep
/// the wj_array_data form.
void arrayBasesExpr(const Expr& e, std::vector<const Expr*>& out);

void arrayBasesBlock(const Block& b, std::vector<const Expr*>& out) {
    for (const auto& stp : b) {
        const Stmt& s = *stp;
        switch (s.kind) {
        case StmtKind::Decl:
            if (as<DeclStmt>(s).init) arrayBasesExpr(*as<DeclStmt>(s).init, out);
            break;
        case StmtKind::AssignLocal: arrayBasesExpr(*as<AssignLocalStmt>(s).value, out); break;
        case StmtKind::FieldSet: {
            const auto& n = as<FieldSetStmt>(s);
            arrayBasesExpr(*n.obj, out);
            arrayBasesExpr(*n.value, out);
            break;
        }
        case StmtKind::ArraySet: {
            const auto& n = as<ArraySetStmt>(s);
            out.push_back(n.arr.get());
            arrayBasesExpr(*n.arr, out);
            arrayBasesExpr(*n.idx, out);
            arrayBasesExpr(*n.value, out);
            break;
        }
        case StmtKind::If: {
            const auto& n = as<IfStmt>(s);
            arrayBasesExpr(*n.cond, out);
            arrayBasesBlock(n.thenB, out);
            arrayBasesBlock(n.elseB, out);
            break;
        }
        case StmtKind::While: {
            const auto& n = as<WhileStmt>(s);
            arrayBasesExpr(*n.cond, out);
            arrayBasesBlock(n.body, out);
            break;
        }
        case StmtKind::For: {
            const auto& n = as<ForStmt>(s);
            arrayBasesExpr(*n.init, out);
            arrayBasesExpr(*n.cond, out);
            arrayBasesExpr(*n.step, out);
            arrayBasesBlock(n.body, out);
            break;
        }
        case StmtKind::Return:
            if (as<ReturnStmt>(s).value) arrayBasesExpr(*as<ReturnStmt>(s).value, out);
            break;
        case StmtKind::ExprStmt: arrayBasesExpr(*as<ExprStmt>(s).e, out); break;
        case StmtKind::SuperCtor:
            for (const auto& a : as<SuperCtorStmt>(s).args) arrayBasesExpr(*a, out);
            break;
        }
    }
}

void arrayBasesExpr(const Expr& e, std::vector<const Expr*>& out) {
    switch (e.kind) {
    case ExprKind::Const:
    case ExprKind::Local:
    case ExprKind::This:
    case ExprKind::StaticGet: return;
    case ExprKind::FieldGet: arrayBasesExpr(*as<FieldGetExpr>(e).obj, out); return;
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        out.push_back(n.arr.get());
        arrayBasesExpr(*n.arr, out);
        arrayBasesExpr(*n.idx, out);
        return;
    }
    case ExprKind::ArrayLen: arrayBasesExpr(*as<ArrayLenExpr>(e).arr, out); return;
    case ExprKind::Unary: arrayBasesExpr(*as<UnaryExpr>(e).e, out); return;
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        arrayBasesExpr(*n.l, out);
        arrayBasesExpr(*n.r, out);
        return;
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        arrayBasesExpr(*n.c, out);
        arrayBasesExpr(*n.t, out);
        arrayBasesExpr(*n.f, out);
        return;
    }
    case ExprKind::Cast: arrayBasesExpr(*as<CastExpr>(e).e, out); return;
    case ExprKind::New:
        for (const auto& a : as<NewExpr>(e).args) arrayBasesExpr(*a, out);
        return;
    case ExprKind::NewArray: arrayBasesExpr(*as<NewArrayExpr>(e).len, out); return;
    case ExprKind::IntrinsicCall:
        for (const auto& a : as<IntrinsicExpr>(e).args) arrayBasesExpr(*a, out);
        return;
    case ExprKind::Call: {
        const auto& n = as<CallExpr>(e);
        arrayBasesExpr(*n.recv, out);
        for (const auto& a : n.args) arrayBasesExpr(*a, out);
        return;
    }
    case ExprKind::StaticCall:
        for (const auto& a : as<StaticCallExpr>(e).args) arrayBasesExpr(*a, out);
        return;
    }
}

/// Identifier-shaped C text — the only thing the restrict hoist and the
/// range guard may mention (locals and unpacked captures always are).
bool isIdentText(const std::string& s) {
    if (s.empty()) return false;
    for (char c : s) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
    }
    return true;
}

} // namespace

// Outlines a proven loop body into `static void wj_pfbN(lo, hi, ctx)` and
// replaces the loop with a wjrt_parallel_for dispatch over [init, bound).
// Every in-scope local (and `self`) is packed by value into a capture
// struct: the analysis guarantees the body only reads them, and array/object
// captures are pointers into the caller's frame. CondParallel loops get a
// runtime pointer-inequality guard with the serial loop as the else-branch,
// so aliased calls (e.g. multiplyAcc(c, c, c)) keep exact serial semantics.
void CodeGen::genParallelFor(Env& env, const ForStmt& n, const analysis::LoopParallel& lp) {
    Emitter& em = *env.em;
    const Shape* vs = shapes_.ofType(n.varType);

    // Re-derive the bound from the proven shape `for (v = init; v < bound;
    // v = v + 1)`; anything unexpected falls back to the serial loop.
    const auto* condB = n.cond->kind == ExprKind::Binary ? &as<BinaryExpr>(*n.cond) : nullptr;
    if (vs->isObject() || !condB || condB->op != BinOp::Lt ||
        condB->l->kind != ExprKind::Local || as<LocalExpr>(*condB->l).name != n.var ||
        !safeToHoist(*n.init) || !safeToHoist(*condB->r)) {
        genSerialFor(env, n);
        return;
    }
    const Expr& boundE = *condB->r;

    // CondParallel: build the pointer-distinctness guard from the verdict's
    // local-name pairs; a name out of scope means the proof context does not
    // match this emission context, so stay serial.
    std::string guard;
    for (const auto& [a, b] : lp.neqPairs) {
        auto ia = env.vars.find(a);
        auto ib = env.vars.find(b);
        if (ia == env.vars.end() || ib == env.vars.end()) {
            genSerialFor(env, n);
            return;
        }
        if (!guard.empty()) guard += " && ";
        guard += ia->second.text + " != " + ib->second.text;
    }

    const int id = pfCount_++;
    const std::string sname = format("wj_pfc%d", id);
    const std::string fnName = format("wj_pfb%d", id);

    // ---- capture struct: every named local in scope, plus the receiver.
    std::vector<std::pair<std::string, const Shape*>> caps;
    if (env.hasThis) caps.emplace_back(env.self.text, env.self.shape);
    for (const auto& [name, cv] : env.vars) {
        if (name.rfind("@p:", 0) == 0 || cv.text.empty()) continue;
        caps.emplace_back(cv.text, cv.shape);
    }
    std::string def = "/* parallel-for captures (loop over " + n.var + ") */\n";
    def += "typedef struct " + sname + " {\n";
    if (caps.empty()) def += "  int32_t wj_empty;\n";
    for (const auto& [txt, sh] : caps) {
        def += "  " + (sh->isObject() ? structFor(sh) + "*" : cTypeVal(sh)) + " " + txt + ";\n";
    }
    def += "} " + sname + ";\n";
    structs_ += def;

    protos_ += "static void " + fnName + "(int64_t wj_lo, int64_t wj_hi, void* wj_ctx);\n";

    // ---- chunk function: unpack captures under their original names and
    // run the body for [wj_lo, wj_hi). Identical per-iteration code to the
    // serial loop, so any thread count produces bit-identical results.
    Emitter bem;
    bem.line(sname + "* wj_c = (" + sname + "*)wj_ctx;");
    for (const auto& [txt, sh] : caps) {
        bem.line((sh->isObject() ? structFor(sh) + "*" : cTypeVal(sh)) + " " + txt + " = wj_c->" +
                 txt + ";");
    }
    const std::string vct = cTypeVal(vs);
    {
        Env benv = env;
        benv.em = &bem;
        // Under WJ_SIMD a loop that also carries a vector verdict runs its
        // chunk iterations through `#pragma omp simd` — threads across
        // chunks, lanes within one. The range guard re-checks inside the
        // chunk function; the scalar chunk loop is the else-branch.
        const analysis::LoopVector* lv = simdVerdict(benv, n);
        if (lv && !lv->reductions.empty()) lv = nullptr;  // Parallel loops carry no accumulators
        benv.vars[n.var] = {"v_" + n.var, vs, true};
        auto emitChunkLoop = [&](bool simd) {
            std::vector<std::string> keys;
            if (simd) {
                keys = hoistSimdPtrs(benv, n);
                bem.line("#pragma omp simd");
            }
            bem.open("for (" + vct + " v_" + n.var + " = (" + vct + ")wj_lo; v_" + n.var +
                     " < (" + vct + ")wj_hi; ++v_" + n.var + ") {");
            genStmts(benv, n.body);
            bem.close();
            dropSimdPtrs(keys);
        };
        if (!lv) {
            emitChunkLoop(false);
        } else {
            const std::string g = simdGuard(benv, *lv);
            if (g.empty()) {
                emitChunkLoop(true);
            } else {
                bem.open("if (" + g + ") {");
                emitChunkLoop(true);
                bem.mid("} else {");
                bem.line("wjrt_simd_fallback();");
                emitChunkLoop(false);
                bem.close();
            }
            ++out_.vectorLoops;
        }
    }
    fns_ += "static void " + fnName + "(int64_t wj_lo, int64_t wj_hi, void* wj_ctx) {\n" +
            bem.text() + "}\n\n";

    // ---- dispatch site
    auto emitDispatch = [&]() {
        CVal init = genExpr(env, *n.init);
        CVal bound = genExpr(env, boundE);
        const std::string cap = format("wj_cap%d", id);
        em.line(sname + " " + cap + ";");
        for (const auto& [txt, sh] : caps) {
            (void)sh;
            em.line(cap + "." + txt + " = " + txt + ";");
        }
        em.line("wjrt_parallel_for((int64_t)(" + init.text + "), (int64_t)(" + bound.text +
                "), " + fnName + ", &" + cap + ");");
    };
    if (guard.empty()) {
        em.open("{");
        emitDispatch();
        em.close();
    } else {
        em.open("if (" + guard + ") {");
        emitDispatch();
        em.mid("} else {");
        em.line("wjrt_guard_fallback();");
        genSerialFor(env, n);
        em.close();
    }
    ++out_.parallelLoops;
}

// Outlines a ParallelReduce loop into `static void wj_rbN(lo, hi, ctx,
// partial)`: the chunk function folds one contiguous iteration range into
// per-chunk partial accumulators seeded with the operator's exact identity
// (-0.0 for +, 1.0 for *, +/-inf for min/max — chosen so `x op identity`
// is bitwise `x`), dispatched through wjrt_parallel_reduce over a fixed
// thread-count-independent chunk grid, and combined here in chunk order
// 0..K-1 replaying the source's operand order / comparison. See wjrt.h for
// the full determinism contract.
void CodeGen::genParallelReduce(Env& env, const ForStmt& n, const analysis::LoopParallel& lp) {
    Emitter& em = *env.em;
    const Shape* vs = shapes_.ofType(n.varType);

    // Re-derive the proven shape, exactly as genParallelFor does.
    const auto* condB = n.cond->kind == ExprKind::Binary ? &as<BinaryExpr>(*n.cond) : nullptr;
    if (vs->isObject() || !condB || condB->op != BinOp::Lt ||
        condB->l->kind != ExprKind::Local || as<LocalExpr>(*condB->l).name != n.var ||
        !safeToHoist(*n.init) || !safeToHoist(*condB->r) || lp.reductions.empty()) {
        genSerialFor(env, n);
        return;
    }
    const Expr& boundE = *condB->r;

    // Every accumulator must be a live scalar local here; a missing or
    // non-scalar name means the proof context does not match this emission
    // context, so stay serial.
    std::vector<const CVal*> accs;
    for (const auto& r : lp.reductions) {
        auto it = env.vars.find(r.var);
        if (it == env.vars.end() || it->second.shape->isObject() || it->second.text.empty()) {
            genSerialFor(env, n);
            return;
        }
        accs.push_back(&it->second);
    }

    auto identity = [](const analysis::Reduction& r) -> std::string {
        const bool f32 = r.prim == Prim::F32;
        switch (r.op) {
        case analysis::RedOp::Add: return r.prim == Prim::I64 ? "0" : (f32 ? "-0.0f" : "-0.0");
        case analysis::RedOp::Mul: return r.prim == Prim::I64 ? "1" : (f32 ? "1.0f" : "1.0");
        case analysis::RedOp::Min: return r.prim == Prim::I64 ? "INT64_MAX" : "INFINITY";
        case analysis::RedOp::Max: return r.prim == Prim::I64 ? "INT64_MIN" : "-INFINITY";
        }
        return "0";
    };
    auto cmpOp = [](BinOp op) -> const char* {
        switch (op) {
        case BinOp::Lt: return "<";
        case BinOp::Le: return "<=";
        case BinOp::Gt: return ">";
        case BinOp::Ge: return ">=";
        default: return "<";
        }
    };

    const int id = pfCount_++;
    const std::string sname = format("wj_rcc%d", id);  // capture struct
    const std::string pname = format("wj_rp%d", id);   // partials record
    const std::string fnName = format("wj_rb%d", id);

    // ---- capture struct: in-scope locals minus the accumulators (chunks
    // fold from the identity; the caller's running value enters only in the
    // ordered combine below), plus the receiver.
    std::set<std::string> accNames;
    for (const auto& r : lp.reductions) accNames.insert(r.var);
    std::vector<std::pair<std::string, const Shape*>> caps;
    if (env.hasThis) caps.emplace_back(env.self.text, env.self.shape);
    for (const auto& [name, cv] : env.vars) {
        if (name.rfind("@p:", 0) == 0 || cv.text.empty() || accNames.count(name)) continue;
        caps.emplace_back(cv.text, cv.shape);
    }
    std::string def = "/* parallel-reduce partials + captures (loop over " + n.var + ") */\n";
    def += "typedef struct " + pname + " {\n";
    for (const auto& r : lp.reductions) {
        def += "  " + std::string(primCName(r.prim)) + " m_" + r.var + ";\n";
    }
    def += "} " + pname + ";\n";
    def += "typedef struct " + sname + " {\n";
    if (caps.empty()) def += "  int32_t wj_empty;\n";
    for (const auto& [txt, sh] : caps) {
        def += "  " + (sh->isObject() ? structFor(sh) + "*" : cTypeVal(sh)) + " " + txt + ";\n";
    }
    def += "} " + sname + ";\n";
    structs_ += def;

    protos_ += "static void " + fnName +
               "(int64_t wj_lo, int64_t wj_hi, void* wj_ctx, void* wj_part);\n";

    // ---- chunk function: unpack captures, seed the accumulators with the
    // identity, run the body verbatim for [wj_lo, wj_hi), store partials.
    Emitter bem;
    bem.line(sname + "* wj_c = (" + sname + "*)wj_ctx;");
    for (const auto& [txt, sh] : caps) {
        bem.line((sh->isObject() ? structFor(sh) + "*" : cTypeVal(sh)) + " " + txt + " = wj_c->" +
                 txt + ";");
    }
    for (size_t ri = 0; ri < lp.reductions.size(); ++ri) {
        bem.line(cTypeVal(accs[ri]->shape) + " " + accs[ri]->text + " = " +
                 identity(lp.reductions[ri]) + ";");
    }
    const std::string vct = cTypeVal(vs);
    {
        Env benv = env;
        benv.em = &bem;
        // Exact-operator reductions (min/max any prim, i64 +/*) additionally
        // take a simd reduction clause inside the chunk: lane reassociation
        // cannot change their value, so the chunk partials — and therefore
        // the ordered combine — stay bitwise-stable. f32/f64 +/* never get a
        // vector verdict here (exactReductions gate in simdVerdict), keeping
        // the chunk fold serial and the documented determinism contract.
        const analysis::LoopVector* lv = simdVerdict(benv, n);
        if (lv && !lv->overlapPairs.empty()) lv = nullptr;  // reduce loops prove guard-free
        benv.vars[n.var] = {"v_" + n.var, vs, true};
        std::vector<std::string> keys;
        if (lv) {
            keys = hoistSimdPtrs(benv, n);
            bem.line("#pragma omp simd" + simdRedClause(benv, *lv));
            ++out_.vectorLoops;
        }
        bem.open("for (" + vct + " v_" + n.var + " = (" + vct + ")wj_lo; v_" + n.var + " < (" +
                 vct + ")wj_hi; ++v_" + n.var + ") {");
        genStmts(benv, n.body);
        bem.close();
        dropSimdPtrs(keys);
    }
    for (size_t ri = 0; ri < lp.reductions.size(); ++ri) {
        bem.line("((" + pname + "*)wj_part)->m_" + lp.reductions[ri].var + " = " +
                 accs[ri]->text + ";");
    }
    fns_ += "static void " + fnName +
            "(int64_t wj_lo, int64_t wj_hi, void* wj_ctx, void* wj_part) {\n" + bem.text() +
            "}\n\n";

    // ---- dispatch site + ordered combine
    em.open("{");
    CVal init = genExpr(env, *n.init);
    CVal bound = genExpr(env, boundE);
    const std::string cap = format("wj_rcap%d", id);
    em.line(sname + " " + cap + ";");
    for (const auto& [txt, sh] : caps) {
        (void)sh;
        em.line(cap + "." + txt + " = " + txt + ";");
    }
    const std::string parts = format("wj_parts%d", id);
    const std::string k = format("wj_k%d", id);
    const std::string c = format("wj_i%d", id);
    em.line(pname + " " + parts + "[WJRT_REDUCE_MAX_CHUNKS];");
    em.line("int32_t " + k + " = wjrt_parallel_reduce((int64_t)(" + init.text + "), (int64_t)(" +
            bound.text + "), " + fnName + ", &" + cap + ", " + parts + ", (int64_t)sizeof(" +
            pname + "));");
    em.open("for (int32_t " + c + " = 0; " + c + " < " + k + "; ++" + c + ") {");
    for (size_t ri = 0; ri < lp.reductions.size(); ++ri) {
        const analysis::Reduction& r = lp.reductions[ri];
        const std::string accT = accs[ri]->text;
        const std::string p = parts + "[" + c + "].m_" + r.var;
        switch (r.op) {
        case analysis::RedOp::Add:
        case analysis::RedOp::Mul: {
            const std::string op = r.op == analysis::RedOp::Add ? " + " : " * ";
            em.line(accT + " = " + (r.accOnLeft ? accT + op + p : p + op + accT) + ";");
            break;
        }
        case analysis::RedOp::Min:
        case analysis::RedOp::Max: {
            const std::string cond = r.accOnLeft ? accT + " " + cmpOp(r.cmp) + " " + p
                                                 : p + " " + cmpOp(r.cmp) + " " + accT;
            em.line("if (" + cond + ") " + accT + " = " + p + ";");
            break;
        }
        }
    }
    em.close();
    em.close();
    ++out_.reduceLoops;
}

// --------------------------------------------------------------------- simd

// The proveVectors verdict for this loop, or null when the loop must stay
// scalar in THIS emission context: no WJ_SIMD, device code, ScalarOnly,
// inexact (f32/f64 +/*) reductions — which keep the bitwise chunk-serial
// path — or a guard/accumulator name the proof mentions that is not a live
// identifier-shaped local here (proof context mismatch).
const analysis::LoopVector* CodeGen::simdVerdict(Env& env, const ForStmt& n) const {
    if (!vecLoops_ || env.device) return nullptr;
    auto it = vecLoops_->find(static_cast<const void*>(&n));
    if (it == vecLoops_->end()) return nullptr;
    const analysis::LoopVector& lv = it->second;
    if (lv.verdict == analysis::VecVerdict::ScalarOnly) return nullptr;
    if (!lv.exactReductions) return nullptr;
    for (const auto& [a, b] : lv.overlapPairs) {
        auto ia = env.vars.find(a);
        auto ib = env.vars.find(b);
        if (ia == env.vars.end() || ib == env.vars.end() || !isIdentText(ia->second.text) ||
            !isIdentText(ib->second.text)) {
            return nullptr;
        }
    }
    for (const auto& r : lv.reductions) {
        auto ir = env.vars.find(r.var);
        if (ir == env.vars.end() || ir->second.shape->isObject() ||
            !isIdentText(ir->second.text)) {
            return nullptr;
        }
    }
    return &lv;
}

// Byte-range disjointness guard for a CondVectorizable loop; empty for an
// unconditional one. simdVerdict() already resolved every name.
std::string CodeGen::simdGuard(Env& env, const analysis::LoopVector& lv) {
    std::string guard;
    for (const auto& [a, b] : lv.overlapPairs) {
        if (!guard.empty()) guard += " && ";
        guard += "wjrt_ranges_disjoint(" + env.vars.at(a).text + ", " + env.vars.at(b).text + ")";
    }
    return guard;
}

// ` reduction(op:acc)` clauses for the loop's proven reductions. Only exact
// operators reach here (min/max any prim, i64 +/*), so the clause's lane
// reassociation cannot change the result.
std::string CodeGen::simdRedClause(Env& env, const analysis::LoopVector& lv) {
    std::string clause;
    for (const auto& r : lv.reductions) {
        const char* op = "+";
        switch (r.op) {
        case analysis::RedOp::Add: op = "+"; break;
        case analysis::RedOp::Mul: op = "*"; break;
        case analysis::RedOp::Min: op = "min"; break;
        case analysis::RedOp::Max: op = "max"; break;
        }
        clause += std::string(" reduction(") + op + ":" + env.vars.at(r.var).text + ")";
    }
    return clause;
}

namespace {

/// C text mangled into an identifier suffix (`self->f_cur` -> self__f_cur).
std::string identSuffix(const std::string& text) {
    std::string out;
    for (char c : text) {
        out += (std::isalnum(static_cast<unsigned char>(c)) || c == '_') ? c : '_';
    }
    return out;
}

} // namespace

// Hoists `elem* restrict wj_sp_<base> = wj_array_data(<base>)` for every
// prim-element array base the body touches — locals and stable field paths
// alike — and reroutes element accesses through them (elemAccess keys on
// the base's C text). Safe because simdVerdict() established that all
// may-overlapping pairs are covered by the active range guard and everything
// else is statically distinct. Skipping a base (non-simple text, object
// elements) only forgoes its hoist — it keeps the wj_array_data form.
std::vector<std::string> CodeGen::hoistSimdPtrs(Env& env, const ForStmt& n) {
    std::vector<const Expr*> bases;
    arrayBasesBlock(n.body, bases);
    std::vector<std::string> keys;
    // A base qualifies when its genExpr is pure deterministic text (no
    // emitted statements) and its binding cannot change inside a proven-
    // vectorizable body: a live local, `this`, or a field-load chain over
    // those (the prover refuses FieldSet and state-writing callees).
    std::function<bool(const Expr&)> stableBase = [&](const Expr& e) -> bool {
        switch (e.kind) {
        case ExprKind::Local: return env.vars.count(as<LocalExpr>(e).name) != 0;
        case ExprKind::This: return env.hasThis;
        case ExprKind::FieldGet: return stableBase(*as<FieldGetExpr>(e).obj);
        default: return false;
        }
    };
    for (const Expr* be : bases) {
        if (!stableBase(*be)) continue;
        const CVal cv = genExpr(env, *be);
        if (!cv.simple) continue;
        if (!cv.shape->isArray()) continue;
        const Type& elem = cv.shape->arrayElem();
        if (const analysis::ClassLayout* cl = soaLayout(cv.shape)) {
            // SoA array: one restrict pointer per field lane region. The
            // regions of one array never overlap each other (disjoint by
            // construction), and cross-array overlap is covered by the same
            // guard/analysis argument as the prim hoists.
            for (const auto& f : cl->fields) {
                const std::string key = cv.text + "#" + f.name;
                if (simdPtrs_.count(key)) continue;
                const std::string ec = primCName(f.prim);
                const std::string ptr = "wj_sp_" + identSuffix(cv.text) + "_" + f.name;
                env.em->line(ec + "* restrict " + ptr + " = (" + ec + "*)" +
                             soaRegion(cv.text, f) + ";");
                simdPtrs_[key] = ptr;
                keys.push_back(key);
            }
            continue;
        }
        if (elem.isClass()) continue;
        if (simdPtrs_.count(cv.text)) continue;
        const std::string ec = primCName(elem.prim());
        const std::string ptr = "wj_sp_" + identSuffix(cv.text);
        env.em->line(ec + "* restrict " + ptr + " = (" + ec + "*)wj_array_data(" + cv.text +
                     ");");
        simdPtrs_[cv.text] = ptr;
        keys.push_back(cv.text);
    }
    return keys;
}

// Emits a proven-vectorizable loop as `#pragma omp simd` over the serial
// loop shape, with restrict-qualified hoisted element pointers. The pragma
// is only honored under -fopenmp-simd (no OpenMP runtime is linked) and the
// loop never reassociates floats: reduction clauses are restricted to exact
// operators upstream, so the simd body is bitwise-equal to the serial one.
// CondVectorizable loops check the byte-range guard first and fall back to
// the untouched scalar loop (wjrt_simd_fallback feeds the metric).
void CodeGen::genSimdFor(Env& env, const ForStmt& n, const analysis::LoopVector& lv) {
    Emitter& em = *env.em;
    const Shape* vs = shapes_.ofType(n.varType);
    if (vs->isObject()) xerr("object-typed loop variables are not supported");

    // Re-derive the proven shape `for (v = init; v < bound; v = v + 1)`:
    // OpenMP's canonical loop form demands a bare `v < bound; ++v` header
    // (the serial loop's parenthesized cond/step text is rejected under the
    // pragma). Anything unexpected falls back to the serial loop.
    const auto* condB = n.cond->kind == ExprKind::Binary ? &as<BinaryExpr>(*n.cond) : nullptr;
    if (!condB || condB->op != BinOp::Lt || condB->l->kind != ExprKind::Local ||
        as<LocalExpr>(*condB->l).name != n.var) {
        genSerialFor(env, n);
        return;
    }

    const std::string guard = simdGuard(env, lv);
    em.open(guard.empty() ? "{" : "if (" + guard + ") {");
    {
        auto saved = env.vars;
        CVal init = genExpr(env, *n.init);
        env.vars[n.var] = {"v_" + n.var, vs, true};
        CVal bound = genExpr(env, *condB->r);
        // Hoists and header operands are materialized BEFORE the pragma so
        // no emitted line separates it from its for-statement.
        const std::vector<std::string> keys = hoistSimdPtrs(env, n);
        em.line("#pragma omp simd" + simdRedClause(env, lv));
        em.open("for (" + cTypeVal(vs) + " v_" + n.var + " = " + init.text + "; v_" + n.var +
                " < " + bound.text + "; ++v_" + n.var + ") {");
        genStmts(env, n.body);
        em.close();
        dropSimdPtrs(keys);
        env.vars = saved;
    }
    if (!guard.empty()) {
        em.mid("} else {");
        em.line("wjrt_simd_fallback();");
        genSerialFor(env, n);
    }
    em.close();
    ++out_.vectorLoops;
}

// -------------------------------------------------------------------- exprs

CodeGen::CVal CodeGen::materialize(Env& env, CVal v) {
    if (v.simple) return v;
    std::string tmp = freshTmp();
    if (v.shape->isObject()) {
        env.em->line(structFor(v.shape) + "* " + tmp + " = " + v.text + ";");
    } else {
        env.em->line(cTypeVal(v.shape) + " " + tmp + " = " + v.text + ";");
    }
    return {tmp, v.shape, true};
}

CodeGen::CVal CodeGen::genExpr(Env& env, const Expr& e) {
    switch (e.kind) {
    case ExprKind::Const: {
        const auto& n = as<ConstExpr>(e);
        return {primLiteral(n.type.prim(), n.i, n.f), shapes_.ofPrim(n.type.prim()), true};
    }
    case ExprKind::Local: {
        const auto& n = as<LocalExpr>(e);
        auto it = env.vars.find(n.name);
        if (it == env.vars.end()) xerr("undeclared local " + n.name);
        return it->second;
    }
    case ExprKind::This:
        if (!env.hasThis) xerr("'this' in static context");
        return env.self;
    case ExprKind::FieldGet: {
        const auto& n = as<FieldGetExpr>(e);
        CVal obj;
        if (n.obj->kind == ExprKind::ArrayGet) {
            // Element field path `a[i].f` — the one place an SoA element is
            // legally touched. Generate the access here so the SoA case can
            // load straight from field f's lane region without ever forming
            // the struct element; the AoS case reproduces the generic
            // ArrayGet emission below verbatim (same text, same guard site).
            const auto& ag = as<ArrayGetExpr>(*n.obj);
            CVal a = genExpr(env, *ag.arr);
            const analysis::ClassLayout* cl = soaLayout(a.shape);
            if (cl) a = materialize(env, a);
            CVal i = genExpr(env, *ag.idx);
            const std::string idx = indexExpr(env, a, i, &ag);
            if (cl) {
                for (const auto& f : cl->fields) {
                    if (f.name == n.field) {
                        return {soaAccess(a, f, idx), shapes_.ofPrim(f.prim), false};
                    }
                }
                xerr("SoA class " + a.shape->arrayElem().className() + " has no field " +
                     n.field);
            }
            const Type& elem = a.shape->arrayElem();
            if (elem.isClass()) {
                const Shape* es = shapes_.ofType(elem);
                obj = {"(&((" + structFor(es) + "*)wj_array_data(" + a.text + "))[" + idx + "])",
                       es, false};
            } else {
                obj = {elemAccess(a, elem.prim(), idx), shapes_.ofType(elem), false};
            }
        } else {
            obj = genExpr(env, *n.obj);
        }
        const Shape* fs = obj.shape->field(n.field);
        // @Shared fields (paper 3.3, "Other issues"): inside device code the
        // field IS the block's __shared__ buffer; it has no per-object
        // storage and cannot be touched from host code.
        const Field* decl = prog_.resolveField(obj.shape->cls().name, n.field);
        if (decl && decl->isShared) {
            if (!env.device) xerr("@Shared field ." + n.field + " accessed outside device code");
            return {"wjrt_gpu_shared_f32(__wjt)", shapes_.ofArray(decl->type.elem()), false};
        }
        if (fs->isObject()) {
            return {"(&" + obj.text + "->f_" + n.field + ")", fs, obj.simple};
        }
        return {obj.text + "->f_" + n.field, fs, obj.simple};
    }
    case ExprKind::StaticGet: {
        const auto& n = as<StaticGetExpr>(e);
        const StaticField* sf = prog_.resolveStatic(n.cls, n.field);
        if (!sf) xerr(n.cls + " has no static field " + n.field);
        return {staticRef(n.cls, n.field), shapes_.ofType(sf->type), true};
    }
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        CVal a = genExpr(env, *n.arr);
        CVal i = genExpr(env, *n.idx);
        const std::string idx = indexExpr(env, a, i, &n);
        const Type& elem = a.shape->arrayElem();
        if (elem.isClass()) {
            // Bare element reads reach here only outside a field path; for
            // an Inline-verdict class the layout pass proved no such use
            // exists (FieldGet intercepts `a[i].f` before this case).
            if (soaLayout(a.shape)) {
                xerr("whole-element use of SoA-split " + elem.className() +
                     "[] (layout pass inconsistency)");
            }
            const Shape* es = shapes_.ofType(elem);
            return {"(&((" + structFor(es) + "*)wj_array_data(" + a.text + "))[" + idx + "])",
                    es, false};
        }
        return {elemAccess(a, elem.prim(), idx), shapes_.ofType(elem), false};
    }
    case ExprKind::ArrayLen: {
        CVal a = genExpr(env, *as<ArrayLenExpr>(e).arr);
        return {"((int32_t)(" + a.text + ")->len)", shapes_.ofPrim(Prim::I32), a.simple};
    }
    case ExprKind::Unary: {
        const auto& n = as<UnaryExpr>(e);
        CVal v = genExpr(env, *n.e);
        if (n.op == UnOp::Not) return {"(!" + v.text + ")", shapes_.ofPrim(Prim::Bool), v.simple};
        // Space before '-': the operand may itself start with '-' (negative
        // literal), and "--x" is a decrement in C.
        return {"(- " + v.text + ")", v.shape, v.simple};
    }
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        CVal l = genExpr(env, *n.l);
        CVal r = genExpr(env, *n.r);
        const bool simple = l.simple && r.simple;
        const Shape* boolShape = shapes_.ofPrim(Prim::Bool);
        if (isComparison(n.op) || isLogical(n.op)) {
            return {"(" + l.text + " " + binOpName(n.op) + " " + r.text + ")", boolShape, simple};
        }
        if (n.op == BinOp::Rem && l.shape->isPrim() &&
            (l.shape->prim() == Prim::F32 || l.shape->prim() == Prim::F64)) {
            const char* fn = l.shape->prim() == Prim::F32 ? "fmodf" : "fmod";
            return {std::string(fn) + "(" + l.text + ", " + r.text + ")", l.shape, simple};
        }
        if (n.op == BinOp::Shl || n.op == BinOp::Shr) {
            // Java masks the shift count by the operand width.
            const char* mask = l.shape->prim() == Prim::I64 ? "63" : "31";
            return {"(" + l.text + " " + binOpName(n.op) + " (" + r.text + " & " + mask + "))",
                    l.shape, simple};
        }
        return {"(" + l.text + " " + binOpName(n.op) + " " + r.text + ")", l.shape, simple};
    }
    case ExprKind::Cond:
        xerr("conditional operator in translated code (coding rule 7)");
    case ExprKind::Call:
        return genCall(env, as<CallExpr>(e));
    case ExprKind::StaticCall: {
        const auto& n = as<StaticCallExpr>(e);
        const ClassDecl* owner = prog_.methodOwner(n.cls, n.method);
        const Method* m = owner ? owner->ownMethod(n.method) : nullptr;
        if (!m || !m->isStatic) xerr(n.cls + " has no static method " + n.method);
        std::vector<CVal> argVals;
        std::vector<const Shape*> argShapes;
        for (const auto& a : n.args) {
            CVal v = genExpr(env, *a);
            argShapes.push_back(v.shape);
            argVals.push_back(std::move(v));
        }
        Spec& spec = specialize(*owner, *m, nullptr, argShapes, env.device);
        if (env.spec && spec.usesSync) env.spec->usesSync = true;
        std::vector<std::string> texts;
        if (spec.device) texts.push_back("__wjt");
        for (const auto& v : argVals) texts.push_back(v.text);
        std::string callText = spec.fnName + "(" + join(texts, ", ") + ")";
        if (m->ret.isVoid()) {
            env.em->line(callText + ";");
            return {"", nullptr, true};
        }
        const Shape* rs = shapes_.ofType(m->ret);
        if (rs->isObject()) {
            std::string tmp = freshTmp();
            env.em->line(structFor(rs) + " " + tmp + " = " + callText + ";");
            return {"(&" + tmp + ")", rs, true};
        }
        return {callText, rs, false};
    }
    case ExprKind::New:
        return genNew(env, as<NewExpr>(e));
    case ExprKind::NewArray: {
        const auto& n = as<NewArrayExpr>(e);
        CVal len = genExpr(env, *n.len);
        if (n.elem.isClass()) {
            if (const analysis::ClassLayout* cl = soaLayoutOfClass(n.elem.className())) {
                // SoA allocation: elem_size is the PACKED sum of the prim
                // field sizes (no struct padding) — field regions tile the
                // payload exactly, and the zero fill matches the AoS
                // calloc'd default element bit-for-bit.
                ++out_.soaArrays;
                soaUsed_.insert(n.elem.className());
                return {"wjrt_alloc_soa((int64_t)(" + len.text + "), " +
                            format("%d", cl->elemSize) + ")",
                        shapes_.ofArray(n.elem), false};
            }
        }
        std::string elemSize;
        if (n.elem.isClass()) {
            elemSize = "(int32_t)sizeof(" + structFor(shapes_.ofType(n.elem)) + ")";
        } else {
            elemSize = format("%d", primSize(n.elem.prim()));
        }
        return {"wjrt_alloc_array((int64_t)(" + len.text + "), " + elemSize + ")",
                shapes_.ofArray(n.elem), false};
    }
    case ExprKind::Cast: {
        const auto& n = as<CastExpr>(e);
        CVal v = genExpr(env, *n.e);
        if (n.type.isClass()) {
            // Shapes are exact: a cast either trivially succeeds or would
            // always throw; reject the latter at translation time.
            if (!prog_.isSubtypeOf(v.shape->cls().name, n.type.className())) {
                xerr("cast of " + v.shape->cls().name + " to unrelated " + n.type.className());
            }
            return v;
        }
        if (!n.type.isPrim()) return v;
        return {"((" + std::string(primCName(n.type.prim())) + ")" + v.text + ")",
                shapes_.ofPrim(n.type.prim()), v.simple};
    }
    case ExprKind::IntrinsicCall:
        return genIntrinsic(env, as<IntrinsicExpr>(e));
    }
    xerr("unreachable expr kind");
}

CodeGen::CVal CodeGen::genCall(Env& env, const CallExpr& n) {
    CVal recv = genExpr(env, *n.recv);
    if (!recv.shape->isObject()) xerr("call on non-object value");
    const ClassDecl& exact = recv.shape->cls();
    const ClassDecl* owner = prog_.methodOwner(exact.name, n.method);
    const Method* m = owner ? owner->ownMethod(n.method) : nullptr;
    if (!m || m->isAbstract) xerr(exact.name + " has no concrete method " + n.method);

    if (m->isGlobal) {
        recv = materialize(env, recv);
        genLaunch(env, n, *owner, *m, recv);
        return {"", nullptr, true};
    }

    std::vector<CVal> argVals;
    std::vector<const Shape*> argShapes;
    for (const auto& a : n.args) {
        CVal v = genExpr(env, *a);
        argShapes.push_back(v.shape);
        argVals.push_back(std::move(v));
    }
    Spec& spec = specialize(*owner, *m, recv.shape, argShapes, env.device);
    if (env.spec && spec.usesSync) env.spec->usesSync = true;
    ++out_.devirtualizedCalls;

    std::vector<std::string> texts;
    if (spec.device) texts.push_back("__wjt");
    texts.push_back(recv.text);
    for (const auto& v : argVals) texts.push_back(v.text);
    std::string callText = spec.fnName + "(" + join(texts, ", ") + ")";
    if (m->ret.isVoid()) {
        env.em->line(callText + ";");
        return {"", nullptr, true};
    }
    const Shape* rs = shapes_.ofType(m->ret);
    if (rs->isObject()) {
        std::string tmp = freshTmp();
        env.em->line(structFor(rs) + " " + tmp + " = " + callText + ";");
        return {"(&" + tmp + ")", rs, true};
    }
    return {callText, rs, false};
}

void CodeGen::genLaunch(Env& env, const CallExpr& n, const ClassDecl& owner, const Method& m,
                        const CVal& recv) {
    if (env.device) xerr("kernel launch from device code");
    if (n.args.empty()) xerr("@Global call without CudaConfig argument");
    CVal cfg = materialize(env, genExpr(env, *n.args[0]));
    if (!cfg.shape->isObject() || cfg.shape->cls().name != Program::cudaConfigClass()) {
        xerr("@Global first argument must be a CudaConfig");
    }

    // Evaluate kernel arguments (everything after the config).
    std::vector<CVal> argVals;
    std::vector<const Shape*> argShapes;
    for (size_t i = 1; i < n.args.size(); ++i) {
        CVal v = genExpr(env, *n.args[i]);
        argShapes.push_back(v.shape);
        argVals.push_back(std::move(v));
    }

    Spec& kspec = specialize(owner, m, recv.shape, argShapes, /*device=*/true);
    ++out_.kernels;
    ++out_.devirtualizedCalls;

    // Packed-argument struct + thunk, once per kernel specialization.
    if (kspec.thunkName.empty()) {
        kspec.thunkName = "KT_" + kspec.fnName;
        std::string ka = "KA_" + kspec.fnName;
        std::string def = "typedef struct " + ka + " {\n";
        def += "  " + structFor(kspec.recv) + " self; /* deep-copied receiver */\n";
        for (size_t i = 0; i < kspec.args.size(); ++i) {
            def += "  " + cTypeVal(kspec.args[i]) + " a" + std::to_string(i) + ";\n";
        }
        def += "} " + ka + ";\n";
        structs_ += def;

        protos_ += "static void " + kspec.thunkName + "(wjrt_gpu_tctx* t, void* p);\n";
        std::string th = "static void " + kspec.thunkName + "(wjrt_gpu_tctx* t, void* p) {\n";
        th += "  " + ka + "* a = (" + ka + "*)p;\n";
        std::vector<std::string> texts{"t", "(&a->self)"};
        for (size_t i = 0; i < kspec.args.size(); ++i) {
            if (kspec.args[i]->isObject()) {
                texts.push_back("(&a->a" + std::to_string(i) + ")");
            } else {
                texts.push_back("a->a" + std::to_string(i));
            }
        }
        th += "  " + kspec.fnName + "(" + join(texts, ", ") + ");\n}\n\n";
        fns_ += th;
    }

    // Launch site: pack (deep copies of object arguments) and go.
    Emitter& em = *env.em;
    std::string ka = "KA_" + kspec.fnName;
    std::string pk = freshTmp();
    em.open("{");
    em.line(ka + " " + pk + ";");
    em.line(pk + ".self = *" + recv.text + ";");
    for (size_t i = 0; i < argVals.size(); ++i) {
        if (kspec.args[i]->isObject()) {
            em.line(pk + ".a" + std::to_string(i) + " = *" + argVals[i].text + ";");
        } else {
            em.line(pk + ".a" + std::to_string(i) + " = " + argVals[i].text + ";");
        }
    }
    em.line("wjrt_gpu_launch(" + kspec.thunkName + ", &" + pk + ", " + cfg.text +
            "->f_grid.f_x, " + cfg.text + "->f_grid.f_y, " + cfg.text + "->f_grid.f_z, " +
            cfg.text + "->f_block.f_x, " + cfg.text + "->f_block.f_y, " + cfg.text +
            "->f_block.f_z, (int64_t)" + cfg.text + "->f_sharedBytes, " +
            (kspec.usesSync ? "1" : "0") + ");");
    em.close();
}

CodeGen::CVal CodeGen::genNew(Env& env, const NewExpr& n) {
    const ClassDecl& cls = prog_.require(n.cls);
    std::vector<CVal> argVals;
    argVals.reserve(n.args.size());
    for (const auto& a : n.args) {
        // Constructor parameters may be referenced several times in the
        // inlined body; pin each argument to a single evaluation.
        argVals.push_back(materialize(env, genExpr(env, *a)));
    }

    std::string var = freshTmp();
    // Collect init lines into a sub-emitter so the struct declaration (whose
    // type name depends on the field shapes the ctor produces) can precede
    // them in the output.
    Emitter sub(env.em->indent());
    Env subEnv = env;
    subEnv.em = &sub;
    std::map<std::string, const Shape*> fieldShapes;
    inlineCtor(subEnv, var, cls, std::move(argVals), fieldShapes);

    // Assemble the shape: ctor-assigned fields take their assigned shape,
    // untouched fields default to their declared (strict-final) type shape.
    std::vector<std::pair<std::string, const Shape*>> fields;
    for (const Field* f : prog_.allFields(cls.name)) {
        auto it = fieldShapes.find(f->name);
        fields.emplace_back(f->name, it != fieldShapes.end() ? it->second
                                                             : shapes_.ofType(f->type));
    }
    const Shape* shape = shapes_.ofObject(cls, std::move(fields));
    ++out_.inlinedObjects;

    // Aggregate zero-init, not memset: a memset() call inside an
    // `#pragma omp simd` body is a memory clobber that defeats the
    // vectorizer, and fresh objects are built inside the hot loops the
    // SoA layout exists to vectorize. `{0}` zeroes identically and SRAs.
    env.em->line(structFor(shape) + " " + var + "_s = {0};");
    env.em->line(structFor(shape) + "* " + var + " = &" + var + "_s;");
    env.em->splice(sub);  // replay the collected constructor body
    return {var, shape, true};
}

void CodeGen::inlineCtor(Env& env, const std::string& var, const ClassDecl& cls,
                         std::vector<CVal> argVals,
                         std::map<std::string, const Shape*>& fieldShapes) {
    const ClassDecl* super = cls.superName.empty() ? nullptr : &prog_.require(cls.superName);
    if (!cls.ctor) {
        if (!argVals.empty()) xerr(cls.name + ": implicit constructor takes no arguments");
        if (super) inlineCtor(env, var, *super, {}, fieldShapes);
        return;
    }
    if (argVals.size() != cls.ctor->params.size()) {
        xerr(cls.name + ".<init>: argument count mismatch");
    }

    Env ctorEnv = env;
    ctorEnv.vars.clear();
    ctorEnv.hasThis = false;  // rules: `this` unavailable in ctor expressions
    for (size_t i = 0; i < argVals.size(); ++i) {
        ctorEnv.vars[cls.ctor->params[i].name] = argVals[i];
    }

    bool explicitSuper =
        !cls.ctor->body.empty() && cls.ctor->body[0]->kind == StmtKind::SuperCtor;
    if (super && !explicitSuper) inlineCtor(env, var, *super, {}, fieldShapes);

    for (const auto& st : cls.ctor->body) {
        switch (st->kind) {
        case StmtKind::SuperCtor: {
            const auto& sc = as<SuperCtorStmt>(*st);
            if (!super) xerr(cls.name + ": super(...) without superclass");
            std::vector<CVal> superArgs;
            for (const auto& a : sc.args) {
                superArgs.push_back(materialize(ctorEnv, genExpr(ctorEnv, *a)));
            }
            inlineCtor(env, var, *super, std::move(superArgs), fieldShapes);
            break;
        }
        case StmtKind::FieldSet: {
            const auto& n = as<FieldSetStmt>(*st);
            if (n.obj->kind != ExprKind::This) xerr(cls.name + ": ctor stores to foreign object");
            CVal v = genExpr(ctorEnv, *n.value);
            if (v.shape->isObject()) {
                ctorEnv.em->line(var + "_s.f_" + n.field + " = *" + v.text + ";");
            } else {
                ctorEnv.em->line(var + "_s.f_" + n.field + " = " + v.text + ";");
            }
            fieldShapes[n.field] = v.shape;
            break;
        }
        case StmtKind::Decl: {
            const auto& n = as<DeclStmt>(*st);
            if (!n.init) xerr(cls.name + ": constructor locals must be initialized");
            CVal v = materialize(ctorEnv, genExpr(ctorEnv, *n.init));
            ctorEnv.vars[n.name] = v;
            break;
        }
        case StmtKind::Return:
            break;  // bare `return;` permitted
        default:
            xerr(cls.name + ": constructor statement violates the coding rules");
        }
    }
}

std::string CodeGen::staticRef(const std::string& cls, const std::string& field) {
    std::string name = "SC_" + mangle(cls) + "_" + mangle(field);
    if (staticsEmitted_.insert(name).second) {
        const StaticField* sf = prog_.resolveStatic(cls, field);
        // "A static field is translated into a set of global variables ...
        // initialized by copying the values of the static field" (paper).
        staticsSection_ += "static const " + std::string(primCName(sf->type.prim())) + " " +
                           name + " = " + primLiteral(sf->type.prim(), sf->i, sf->f) + ";\n";
    }
    return name;
}

CodeGen::CVal CodeGen::genIntrinsic(Env& env, const IntrinsicExpr& n) {
    const IntrinsicSig& sig = intrinsicSig(n.op);
    if (sig.deviceOnly && !env.device) {
        xerr(std::string(sig.name) + " outside @Global/device code");
    }
    if (sig.hostOnly && env.device) {
        xerr(std::string(sig.name) + " inside @Global/device code");
    }
    std::vector<CVal> a;
    a.reserve(n.args.size());
    for (const auto& arg : n.args) a.push_back(genExpr(env, *arg));
    auto t = [&](size_t i) { return a[i].text; };
    auto i32 = [&](std::string s) { return CVal{std::move(s), shapes_.ofPrim(Prim::I32), false}; };
    auto f64 = [&](std::string s) { return CVal{std::move(s), shapes_.ofPrim(Prim::F64), false}; };
    auto f32 = [&](std::string s) { return CVal{std::move(s), shapes_.ofPrim(Prim::F32), false}; };
    auto voidCall = [&](std::string s) {
        env.em->line(s + ";");
        return CVal{"", nullptr, true};
    };
    auto farr = [&](std::string s) {
        return CVal{std::move(s), shapes_.ofArray(Type::f32()), false};
    };

    switch (n.op) {
    case Intrinsic::MpiRank: return i32("wjrt_mpi_rank()");
    case Intrinsic::MpiSize: return i32("wjrt_mpi_size()");
    case Intrinsic::MpiBarrier: return voidCall("wjrt_mpi_barrier()");
    case Intrinsic::MpiSendF32:
        return voidCall("wjrt_mpi_send_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ", " + t(3) +
                        ", " + t(4) + ")");
    case Intrinsic::MpiRecvF32:
        return voidCall("wjrt_mpi_recv_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ", " + t(3) +
                        ", " + t(4) + ")");
    case Intrinsic::MpiSendRecvF32:
        return voidCall("wjrt_mpi_sendrecv_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ", " + t(3) +
                        ", " + t(4) + ", " + t(5) + ", " + t(6) + ", " + t(7) + ")");
    case Intrinsic::MpiBcastF32:
        return voidCall("wjrt_mpi_bcast_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ", " + t(3) +
                        ")");
    case Intrinsic::MpiAllreduceSumF64: return f64("wjrt_mpi_allreduce_sum_f64(" + t(0) + ")");
    case Intrinsic::MpiAllreduceMaxF64: return f64("wjrt_mpi_allreduce_max_f64(" + t(0) + ")");
    case Intrinsic::MpiIrecvF32:
        return i32("wjrt_mpi_irecv_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ", " + t(3) +
                   ", " + t(4) + ")");
    case Intrinsic::MpiWait: return voidCall("wjrt_mpi_wait(" + t(0) + ")");

    case Intrinsic::CudaThreadIdxX: return i32("wjrt_gpu_tidx_x(__wjt)");
    case Intrinsic::CudaThreadIdxY: return i32("wjrt_gpu_tidx_y(__wjt)");
    case Intrinsic::CudaThreadIdxZ: return i32("wjrt_gpu_tidx_z(__wjt)");
    case Intrinsic::CudaBlockIdxX: return i32("wjrt_gpu_bidx_x(__wjt)");
    case Intrinsic::CudaBlockIdxY: return i32("wjrt_gpu_bidx_y(__wjt)");
    case Intrinsic::CudaBlockIdxZ: return i32("wjrt_gpu_bidx_z(__wjt)");
    case Intrinsic::CudaBlockDimX: return i32("wjrt_gpu_bdim_x(__wjt)");
    case Intrinsic::CudaBlockDimY: return i32("wjrt_gpu_bdim_y(__wjt)");
    case Intrinsic::CudaBlockDimZ: return i32("wjrt_gpu_bdim_z(__wjt)");
    case Intrinsic::CudaGridDimX: return i32("wjrt_gpu_gdim_x(__wjt)");
    case Intrinsic::CudaGridDimY: return i32("wjrt_gpu_gdim_y(__wjt)");
    case Intrinsic::CudaGridDimZ: return i32("wjrt_gpu_gdim_z(__wjt)");
    case Intrinsic::CudaSyncThreads:
        if (env.spec) env.spec->usesSync = true;
        return voidCall("wjrt_gpu_sync(__wjt)");
    case Intrinsic::CudaSharedF32: return farr("wjrt_gpu_shared_f32(__wjt)");

    case Intrinsic::GpuMallocF32: return farr("wjrt_gpu_alloc_f32(" + t(0) + ")");
    case Intrinsic::GpuFree: return voidCall("wjrt_gpu_free(" + t(0) + ")");
    case Intrinsic::GpuMemcpyH2DF32:
        return voidCall("wjrt_gpu_memcpy_h2d_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ")");
    case Intrinsic::GpuMemcpyD2HF32:
        return voidCall("wjrt_gpu_memcpy_d2h_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ")");
    case Intrinsic::GpuMemcpyH2DOffF32:
        return voidCall("wjrt_gpu_memcpy_h2d_off_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ", " +
                        t(3) + ", " + t(4) + ")");
    case Intrinsic::GpuMemcpyD2HOffF32:
        return voidCall("wjrt_gpu_memcpy_d2h_off_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ", " +
                        t(3) + ", " + t(4) + ")");

    case Intrinsic::MathSqrtF64: return f64("sqrt(" + t(0) + ")");
    case Intrinsic::MathFabsF64: return f64("fabs(" + t(0) + ")");
    case Intrinsic::MathExpF64: return f64("exp(" + t(0) + ")");
    case Intrinsic::MathSqrtF32: return f32("sqrtf(" + t(0) + ")");

    case Intrinsic::RngHashF32: return f32("wj_rng_hash_f32(" + t(0) + ", " + t(1) + ")");
    case Intrinsic::FreeArray: return voidCall("wjrt_free_array(" + t(0) + ")");
    case Intrinsic::PrintI64: return voidCall("wjrt_print_i64(" + t(0) + ")");
    case Intrinsic::PrintF64: return voidCall("wjrt_print_f64(" + t(0) + ")");

    case Intrinsic::CkptSaveF32:
        return voidCall("wjrt_ckpt_save_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ", " + t(3) +
                        ")");
    case Intrinsic::CkptLoadF32:
        return i32("wjrt_ckpt_load_f32(" + t(0) + ", " + t(1) + ", " + t(2) + ")");
    }
    xerr("unhandled intrinsic");
}

// -------------------------------------------------------------------- entry

void CodeGen::emitGraphInit(Emitter& em, const std::string& prefix, const Shape* shape,
                            const Value& v) {
    // Depth-first over fields; the invoke() marshaller walks the receiver
    // Value in the same order to fill the arrays table.
    for (const auto& [name, fs] : shape->fields()) {
        const Value& fv = v.asObj()->fields.at(name);
        const std::string member = prefix + ".f_" + name;
        switch (fs->kind()) {
        case Shape::Kind::Prim:
            em.line(member + " = " + primLiteralOf(fv) + ";");
            break;
        case Shape::Kind::Array:
            if (fv.asArr()) {
                em.line(member + " = arrs[" + std::to_string(out_.plan.arraySlots++) + "];");
            } else {
                em.line(member + " = 0; /* null at jit time */");
            }
            break;
        case Shape::Kind::Object:
            emitGraphInit(em, member, fs, fv);
            break;
        }
    }
}

void CodeGen::genEntry(const Value& receiver, const std::string& method,
                       const std::vector<Value>& args) {
    const Shape* recvShape = shapes_.ofValue(receiver);
    if (!recvShape->isObject()) xerr("jit receiver must be an object");
    const ClassDecl& exact = recvShape->cls();
    if (!exact.wootinj) {
        xerr(exact.name + " is not annotated @WootinJ and cannot be translated");
    }
    const ClassDecl* owner = prog_.methodOwner(exact.name, method);
    const Method* m = owner ? owner->ownMethod(method) : nullptr;
    if (!m || m->isAbstract) xerr(exact.name + " has no concrete method " + method);
    if (m->isGlobal) xerr("the jit entry method cannot be @Global");
    if (args.size() != m->params.size()) {
        xerr(method + ": expected " + std::to_string(m->params.size()) + " arguments, got " +
             std::to_string(args.size()));
    }
    if (!m->ret.isVoid() && !m->ret.isPrim()) {
        xerr("entry method must return void or a primitive (got " + m->ret.str() + ")");
    }
    out_.plan.ret = m->ret;

    Emitter em;
    const std::string recvStruct = structFor(recvShape);
    em.line(recvStruct + " self_s;");
    em.line("memset(&self_s, 0, sizeof self_s);");
    emitGraphInit(em, "self_s", recvShape, receiver);

    // Explicit arguments: primitives from the prims[] table (bit-cast), and
    // arrays from the tail of the arrays table. Object arguments are
    // reconstructed from their jit-time snapshot like the receiver.
    std::vector<const Shape*> argShapes;
    std::vector<std::string> argTexts;
    int primIdx = 0;
    for (size_t i = 0; i < args.size(); ++i) {
        const Value& av = args[i];
        const Shape* as = shapes_.ofValue(av);
        argShapes.push_back(as);
        switch (as->kind()) {
        case Shape::Kind::Prim: {
            out_.plan.primSlots.push_back(as->prim());
            std::string slot = "prims[" + std::to_string(primIdx++) + "]";
            switch (as->prim()) {
            case Prim::Bool: argTexts.push_back("((int32_t)(" + slot + " != 0))"); break;
            case Prim::I32: argTexts.push_back("((int32_t)" + slot + ")"); break;
            case Prim::I64: argTexts.push_back(slot); break;
            case Prim::F32: argTexts.push_back("wj_prim_f32(" + slot + ")"); break;
            case Prim::F64: argTexts.push_back("wj_prim_f64(" + slot + ")"); break;
            }
            break;
        }
        case Shape::Kind::Array:
            argTexts.push_back("arrs[" + std::to_string(out_.plan.arraySlots++) + "]");
            break;
        case Shape::Kind::Object: {
            std::string av_s = format("arg%zu_s", i);
            em.line(structFor(as) + " " + av_s + ";");
            em.line("memset(&" + av_s + ", 0, sizeof " + av_s + ");");
            emitGraphInit(em, av_s, as, av);
            argTexts.push_back("(&" + av_s + ")");
            break;
        }
        }
    }

    Spec& spec = specialize(*owner, *m, recvShape, argShapes, /*device=*/false);

    std::vector<std::string> callArgs{"(&self_s)"};
    for (auto& t : argTexts) callArgs.push_back(t);
    std::string call = spec.fnName + "(" + join(callArgs, ", ") + ")";
    if (m->ret.isVoid()) {
        em.line(call + ";");
        em.line("return 0;");
    } else {
        switch (m->ret.prim()) {
        case Prim::Bool:
        case Prim::I32: em.line("return (int64_t)(" + call + ");"); break;
        case Prim::I64: em.line("return " + call + ";"); break;
        case Prim::F32: em.line("return wj_bits_f32(" + call + ");"); break;
        case Prim::F64: em.line("return wj_bits_f64(" + call + ");"); break;
        }
    }

    entry_ = "int64_t wj_entry(const int64_t* prims, wj_array** arrs) {\n";
    entry_ += "  (void)prims; (void)arrs;\n";
    entry_ += em.text();
    entry_ += "}\n";
}

Translation CodeGen::run(const Value& receiver, const std::string& method,
                         const std::vector<Value>& args) {
    Timer timer;
    out_.entrySymbol = "wj_entry";
    genEntry(receiver, method, args);

    std::string src;
    src += "/* Generated by WootinC (WootinJ reproduction). Do not edit. */\n";
    src += "#include <stdint.h>\n#include <string.h>\n#include <math.h>\n";
    src += "#include \"wjrt.h\"\n#include \"rng_hash.h\"\n\n";
    src += "static inline float wj_prim_f32(int64_t b) { union { uint32_t u; float f; } x; "
           "x.u = (uint32_t)b; return x.f; }\n";
    src += "static inline double wj_prim_f64(int64_t b) { union { uint64_t u; double f; } x; "
           "x.u = (uint64_t)b; return x.f; }\n";
    src += "static inline int64_t wj_bits_f32(float f) { union { uint32_t u; float f; } x; "
           "x.f = f; return (int64_t)x.u; }\n";
    src += "static inline int64_t wj_bits_f64(double d) { union { uint64_t u; double f; } x; "
           "x.f = d; return (int64_t)x.u; }\n";
    if (boundsMode_ > 0) {
        src += "static inline int64_t wj_chk(wj_array* a, int64_t i) { "
               "if (i < 0 || i >= (int64_t)a->len) wjrt_trap(\"array index out of bounds\"); "
               "return i; }\n";
    }
    src += "\n";
    src += staticsSection_ + "\n";
    src += structs_ + "\n";
    src += protos_ + "\n";
    src += fns_;
    src += entry_;
    out_.cSource = std::move(src);
    out_.soaClasses.assign(soaUsed_.begin(), soaUsed_.end());
    out_.codegenSeconds = timer.seconds();
    return std::move(out_);
}

} // namespace

int boundsModeFromEnv() {
    const char* env = std::getenv("WJ_BOUNDS");
    if (!env || !*env || std::string(env) == "0") return 0;
    if (std::string(env) == "all" || std::string(env) == "2") return 2;
    return 1;
}

Translation translate(const Program& prog, const Value& receiver, const std::string& method,
                      const std::vector<Value>& args) {
    // The analysis passes are mandatory: translation refuses statically
    // unsound entries (uninit reads, proven out-of-bounds, halo races)
    // regardless of the guard mode. The guard mode only decides what the
    // interval verdicts are *used* for.
    analysis::Result facts = analysis::analyzeEntry(prog, receiver, method, args);
    facts.require();

    const int mode = boundsModeFromEnv();
    CodeGen cg(prog);
    cg.setBounds(mode, mode == 1 ? &facts.accessSafety : nullptr);
    // WJ_PARALLEL=1 turns proven loops into wjrt_parallel_for dispatches
    // (the worker count is a pure runtime decision via WJ_THREADS, so the
    // generated code — and its cache key — is thread-count independent).
    const char* par = std::getenv("WJ_PARALLEL");
    if (par && *par && std::string(par) != "0") cg.setParallel(&facts.loopParallel);
    // WJ_SIMD=1 turns proveVectors verdicts into `#pragma omp simd` loops
    // with restrict-hoisted element pointers (and runtime range guards for
    // CondVectorizable). Like WJ_PARALLEL this is a translation-time choice
    // baked into the generated C, independent of WJ_THREADS, so the cache
    // key stays thread-count independent.
    const char* simd = std::getenv("WJ_SIMD");
    if (simd && *simd && std::string(simd) != "0") cg.setSimd(&facts.loopVector);
    // WJ_SOA=1 stores arrays of Inline-verdict element classes (the
    // proveLayout pass) as packed per-field lane regions instead of arrays
    // of structs. Element field paths become unit-stride loads the simd
    // pass can vectorize; the pass proved no use can observe the split, so
    // results stay bitwise-identical to every other configuration.
    const char* soa = std::getenv("WJ_SOA");
    if (soa && *soa && std::string(soa) != "0") cg.setSoa(&facts.layoutClasses);
    return cg.run(receiver, method, args);
}

} // namespace wj
