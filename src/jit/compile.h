// External compilation and loading of generated C code.
//
// The paper compiles WootinJ's generated C with icc and invokes it through
// JNI; WootinC compiles with the system C compiler (cc, overridable via the
// WJ_CC environment variable) into a shared object and loads it with
// dlopen(). Compilation wall time is reported separately because it is the
// dominant part of the paper's Table 3 — which is exactly why the result is
// cached: compileAndLoad() first consults the persistent compile cache
// (see cache.h) and only shells out to the compiler on a miss. An async
// variant compiles several translation units in parallel on a small
// thread pool (the compile pipeline is I/O + external-process bound, so
// parallel cold compiles of independent TUs scale almost linearly).
#pragma once

#include <future>
#include <memory>
#include <string>

#include "support/diagnostics.h"

namespace wj {

struct CompileResult;

/// The external C compiler cannot run at all (the shell reports "command
/// not found"). Distinct from a compile *error* so jit() can degrade to the
/// interpreter instead of failing — transient failures are retried first.
class CompilerUnavailableError : public UsageError {
public:
    explicit CompilerUnavailableError(const std::string& what) : UsageError(what) {}
};

/// A loaded shared object; closes the handle on destruction. Modules are
/// shared: the in-process registry hands the same instance to every
/// JitCode built from an identical translation unit.
class NativeModule {
public:
    ~NativeModule();
    NativeModule(const NativeModule&) = delete;
    NativeModule& operator=(const NativeModule&) = delete;

    /// Resolves a symbol; throws UsageError if missing.
    void* symbol(const std::string& name) const;

    /// Wall-clock seconds the external compiler took when this module was
    /// actually built (0 if it was loaded from the on-disk cache).
    double compileSeconds() const noexcept { return compileSeconds_; }

    /// Path of the generated .c file (kept for inspection until the module
    /// is destroyed; empty when served from the on-disk cache).
    const std::string& sourcePath() const noexcept { return srcPath_; }

    /// The exact compiler command used (the paper records its options in
    /// Tables 1-2; benches print this). On a cache hit this is the command
    /// that WOULD have run.
    const std::string& compileCommand() const noexcept { return command_; }

    /// The .so this module was actually dlopen()ed from: the published
    /// cache entry, or — when the cache is disabled or store() failed —
    /// the scratch .so (deleted with the scratch dir when the module is
    /// destroyed). wjd reports this, not a guessed cache path, to clients.
    const std::string& loadedPath() const noexcept { return loadedPath_; }

private:
    friend struct CompileResult;
    friend CompileResult compileAndLoad(const std::string&, const std::string&);
    NativeModule() = default;

    void* handle_ = nullptr;
    double compileSeconds_ = 0;
    std::string srcPath_;
    std::string dir_;
    std::string command_;
    std::string loadedPath_;
};

/// The outcome of one compileAndLoad() call. Cache-hit accounting is per
/// CALL, not per module: the registry hands the same NativeModule to many
/// callers, but only the first one paid for the compile.
struct CompileResult {
    std::shared_ptr<NativeModule> module;
    bool cacheHit = false;     ///< this call skipped the external compiler
    double lookupSeconds = 0;  ///< wall time probing registry + disk store
    double compileSeconds = 0; ///< external compiler time paid by THIS call
    int attempts = 0;          ///< compiler invocations (> 1 means retries)
};

/// Returns the module for `cSource`: from the in-process registry, the
/// on-disk compile cache, or — on a cold miss — by writing the source to a
/// fresh temp directory (honoring $TMPDIR), compiling it as C11, dlopening
/// the result, and publishing the .so to the cache. `tag` becomes part of
/// the file name for easier debugging. Transient compiler failures (signal
/// kills, launch failures, injected WJ_FAULT failures) are retried with
/// exponential backoff — WJ_JIT_RETRIES extra attempts (default 2),
/// starting at WJ_JIT_BACKOFF_MS (default 10, doubling). Throws
/// CompilerUnavailableError when the compiler binary cannot be found, and
/// UsageError with the compiler's stderr (and decoded exit status or
/// signal) on a genuine compile error.
CompileResult compileAndLoad(const std::string& cSource, const std::string& tag);

/// Queues compileAndLoad() on the shared compile thread pool. Independent
/// translation units compile in parallel (bench_fig17/18 build all their
/// variants this way); the future rethrows any compile error on get().
std::future<CompileResult> compileAndLoadAsync(const std::string& cSource,
                                               const std::string& tag);

/// The external compiler compileAndLoad will shell out to: $WJ_CC or "cc".
std::string resolvedCompiler();

/// The flags compileAndLoad will pass: $WJ_CFLAGS or the -O2 default.
std::string resolvedFlags();

/// The content-address compileAndLoad uses for `cSource` under the current
/// environment — the key wjd's in-flight dedup joins on and `wjc build`
/// records in bundle manifests (see jit/cache.h for the hash recipe).
uint64_t cacheKeyFor(const std::string& cSource);

} // namespace wj
