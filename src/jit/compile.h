// External compilation and loading of generated C code.
//
// The paper compiles WootinJ's generated C with icc and invokes it through
// JNI; WootinC compiles with the system C compiler (cc, overridable via the
// WJ_CC environment variable) into a shared object and loads it with
// dlopen(). Compilation wall time is reported separately because it is the
// dominant part of the paper's Table 3.
#pragma once

#include <memory>
#include <string>

namespace wj {

/// A loaded shared object; closes the handle on destruction.
class NativeModule {
public:
    ~NativeModule();
    NativeModule(const NativeModule&) = delete;
    NativeModule& operator=(const NativeModule&) = delete;

    /// Resolves a symbol; throws UsageError if missing.
    void* symbol(const std::string& name) const;

    /// Wall-clock seconds the external compiler took.
    double compileSeconds() const noexcept { return compileSeconds_; }

    /// Path of the generated .c file (kept for inspection until the module
    /// is destroyed).
    const std::string& sourcePath() const noexcept { return srcPath_; }

    /// The exact compiler command used (the paper records its options in
    /// Tables 1-2; benches print this).
    const std::string& compileCommand() const noexcept { return command_; }

private:
    friend std::unique_ptr<NativeModule> compileAndLoad(const std::string&, const std::string&);
    NativeModule() = default;

    void* handle_ = nullptr;
    double compileSeconds_ = 0;
    std::string srcPath_;
    std::string dir_;
    std::string command_;
};

/// Writes `cSource` to a fresh temp directory, compiles it as C11 with -O2,
/// and dlopens the result. `tag` becomes part of the file name for easier
/// debugging. Throws UsageError with the compiler's stderr on failure.
std::unique_ptr<NativeModule> compileAndLoad(const std::string& cSource, const std::string& tag);

} // namespace wj
