// Shapes: the exact-type model behind devirtualization and object inlining.
//
// The paper's translator "statically determine[s] the actual type of the
// target object at every object reference" (Section 3.3). A Shape is that
// determination: for a primitive it is the kind; for an array, the (strict-
// final) element type; for an object, the EXACT concrete class plus the
// shape of every field, recursively.
//
// The coding rules make shapes computable everywhere:
//   * strict-final types have a unique shape derivable from the type alone
//     (leaf class + strict-final fields, recursively);
//   * non-strict-final positions (method parameters, fields) get their
//     shape from the actual argument objects given to jit() — legal because
//     semi-immutability freezes the field graph after construction;
//   * `new C(args)` derives its shape by symbolically executing C's
//     constructor, which the rules force to be straight-line code.
//
// Shapes are interned in a ShapeTable; pointer equality == shape equality.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "interp/value.h"
#include "ir/program.h"

namespace wj {

class ShapeTable;

class Shape {
public:
    enum class Kind { Prim, Array, Object };

    Kind kind() const noexcept { return kind_; }
    bool isPrim() const noexcept { return kind_ == Kind::Prim; }
    bool isArray() const noexcept { return kind_ == Kind::Array; }
    bool isObject() const noexcept { return kind_ == Kind::Object; }

    Prim prim() const;                  ///< Kind::Prim
    const Type& arrayElem() const;      ///< Kind::Array — strict-final element type
    const ClassDecl& cls() const;       ///< Kind::Object — the exact class

    /// Object fields in layout order (superclass first). Kind::Object only.
    const std::vector<std::pair<std::string, const Shape*>>& fields() const;

    /// Field shape by name; throws UsageError if absent.
    const Shape* field(const std::string& name) const;

    /// Canonical key, e.g. "Dif3DSolver{a:f32,q:DiffQ{k:f32}}".
    const std::string& key() const noexcept { return key_; }

    /// The WJ static type this shape instantiates.
    Type type() const;

private:
    friend class ShapeTable;
    Shape() = default;

    Kind kind_ = Kind::Prim;
    Prim prim_ = Prim::I32;
    std::unique_ptr<Type> elem_;
    const ClassDecl* cls_ = nullptr;
    std::vector<std::pair<std::string, const Shape*>> fields_;
    std::string key_;
};

/// Interns shapes; owns them for the lifetime of one translation.
class ShapeTable {
public:
    explicit ShapeTable(const Program& prog) : prog_(&prog) {}

    const Shape* ofPrim(Prim p);
    const Shape* ofArray(const Type& elem);

    /// Unique shape of a strict-final type (throws if not strict-final —
    /// the rule verifier should have rejected such code already).
    const Shape* ofType(const Type& t);

    /// Shape of an object with exact class `cls` and the given field shapes
    /// (layout order). Used by the translator after symbolically executing
    /// a constructor.
    const Shape* ofObject(const ClassDecl& cls,
                          std::vector<std::pair<std::string, const Shape*>> fields);

    /// Shape of an actual runtime value (the composed application object
    /// passed to jit()). Object fields must be non-null; array fields may
    /// be null (their shape depends only on the declared element type).
    const Shape* ofValue(const Value& v);

    const Program& program() const noexcept { return *prog_; }

private:
    const Shape* intern(std::unique_ptr<Shape> s);
    const Shape* ofValueAs(const Value& v, const Type& declared);

    const Program* prog_;
    std::map<std::string, std::unique_ptr<Shape>> byKey_;
};

} // namespace wj
