#include "jit/compile.h"

#include <dlfcn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "jit/cache.h"
#include "support/diagnostics.h"
#include "support/scratch.h"
#include "support/strings.h"
#include "support/timer.h"
#include "trace/metrics.h"
#include "trace/trace.h"

#ifndef WJ_RT_INCLUDE_DIR
#define WJ_RT_INCLUDE_DIR "."
#endif

namespace wj {

namespace {

/// A fixed-size worker pool for external compilations. The work is almost
/// entirely "wait for cc", so a handful of threads is enough to keep a
/// multi-TU bench's compile phase fully overlapped.
class CompilePool {
public:
    static CompilePool& instance() {
        static CompilePool p;
        return p;
    }

    std::future<CompileResult> submit(std::string cSource, std::string tag) {
        auto task = std::packaged_task<CompileResult()>(
            [src = std::move(cSource), t = std::move(tag)] { return compileAndLoad(src, t); });
        auto fut = task.get_future();
        {
            std::lock_guard<std::mutex> lock(m_);
            q_.push_back(std::move(task));
        }
        cv_.notify_one();
        return fut;
    }

private:
    CompilePool() {
        // Workers mostly block on the external cc process, so more workers
        // than cores still overlaps useful work; floor of 2 keeps the
        // pipeline parallel even on single-core hosts.
        const unsigned hw = std::thread::hardware_concurrency();
        const unsigned n = std::max(2u, std::min(hw ? hw : 2u, 4u));
        for (unsigned i = 0; i < n; ++i) {
            workers_.emplace_back([this] { workerLoop(); });
        }
    }

    ~CompilePool() {
        {
            std::lock_guard<std::mutex> lock(m_);
            done_ = true;
        }
        cv_.notify_all();
        for (auto& w : workers_) w.join();
    }

    void workerLoop() {
        for (;;) {
            std::packaged_task<CompileResult()> task;
            {
                std::unique_lock<std::mutex> lock(m_);
                cv_.wait(lock, [&] { return done_ || !q_.empty(); });
                if (q_.empty()) return;  // done_ and drained
                task = std::move(q_.front());
                q_.pop_front();
            }
            task();  // exceptions land in the future
        }
    }

    std::mutex m_;
    std::condition_variable cv_;
    std::deque<std::packaged_task<CompileResult()>> q_;
    std::vector<std::thread> workers_;
    bool done_ = false;
};

/// Human-readable decoding of std::system()'s raw wait status.
std::string describeExitStatus(int raw) {
    if (raw == -1) return "could not launch the shell";
    if (WIFEXITED(raw)) {
        const int code = WEXITSTATUS(raw);
        // The shell folds a signal-killed child into exit code 128+N;
        // surface that so "cc segfaulted" reads differently from "cc
        // found an error".
        if (code > 128) {
            return format("exit code %d: compiler killed by signal %d", code, code - 128);
        }
        return format("exit code %d", code);
    }
    if (WIFSIGNALED(raw)) return format("killed by signal %d", WTERMSIG(raw));
    return format("unrecognized wait status 0x%x", static_cast<unsigned>(raw));
}

int envInt(const char* name, int dflt) {
    const char* v = std::getenv(name);
    return (v && *v) ? std::atoi(v) : dflt;
}

std::string slurpFile(const std::string& path) {
    std::ifstream in(path);
    return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

} // namespace

NativeModule::~NativeModule() {
    if (handle_) dlclose(handle_);
    if (!dir_.empty()) {
        // Best-effort cleanup of the temp dir (source, object, module).
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }
}

void* NativeModule::symbol(const std::string& name) const {
    void* s = dlsym(handle_, name.c_str());
    if (!s) throw UsageError("generated module is missing symbol " + name);
    return s;
}

std::string resolvedCompiler() {
    const char* cc = std::getenv("WJ_CC");
    return (cc && *cc) ? std::string(cc) : std::string("cc");
}

std::string resolvedFlags() {
    // -O2 -fPIC -shared: the role icc's "-O3 -ipo" plays in the paper's
    // Tables 1-2. -fopenmp-simd honors the `#pragma omp simd` lines the
    // WJ_SIMD codegen emits (vectorization only — no OpenMP runtime is
    // linked) and is inert for scalar translations. WJ_CFLAGS overrides the
    // optimization flags (used by the compile-cost ablation bench); flags
    // are part of the cache key. rdynamic host exports provide wjrt_*.
    const char* flags = std::getenv("WJ_CFLAGS");
    return (flags && *flags) ? std::string(flags) : std::string("-O2 -fopenmp-simd");
}

uint64_t cacheKeyFor(const std::string& cSource) {
    return JitCache::keyOf(cSource, resolvedCompiler(), resolvedFlags(),
                           JitCache::runtimeHeadersVersion(WJ_RT_INCLUDE_DIR));
}

CompileResult compileAndLoad(const std::string& cSource, const std::string& tag) {
    const std::string cc = resolvedCompiler();
    const std::string flags = resolvedFlags();

    JitCache& cache = JitCache::instance();
    const uint64_t key = cacheKeyFor(cSource);

    static auto& memHits = trace::Metrics::instance().counter("jit.cache.hits.memory");
    static auto& diskHits = trace::Metrics::instance().counter("jit.cache.hits.disk");
    static auto& misses = trace::Metrics::instance().counter("jit.cache.misses");
    static auto& corrupt = trace::Metrics::instance().counter("jit.cache.corrupt");

    CompileResult res;
    trace::Span lookupSpan("jit", "cache.lookup");
    Timer lookupT;
    if (auto hit = cache.findLoaded(key)) {
        cache.noteMemoryHit();
        memHits.inc();
        lookupSpan.arg(0, "hit", 1);
        res.module = std::move(hit);
        res.cacheHit = true;
        res.lookupSeconds = lookupT.seconds();
        return res;
    }

    auto mod = std::shared_ptr<NativeModule>(new NativeModule());
    const std::string cachedSo = cache.lookup(key);
    if (!cachedSo.empty()) {
        trace::Span dlopenSpan("jit", "dlopen");
        mod->handle_ = dlopen(cachedSo.c_str(), RTLD_NOW | RTLD_LOCAL);
        if (mod->handle_) {
            diskHits.inc();
            lookupSpan.arg(0, "hit", 1);
            mod->command_ = format("(cached) %s %s [key %016llx]", cc.c_str(), flags.c_str(),
                                   static_cast<unsigned long long>(key));
            mod->loadedPath_ = cachedSo;
            cache.registerLoaded(key, mod);
            res.module = std::move(mod);
            res.cacheHit = true;
            res.lookupSeconds = lookupT.seconds();
            cache.noteDiskHit(res.lookupSeconds);
            return res;
        }
        // A truncated or stale entry (e.g. written by a crashed process on
        // a filesystem without atomic rename): drop it and recompile.
        cache.noteCorrupt();
        corrupt.inc();
        cache.invalidate(key);
    }
    res.lookupSeconds = lookupT.seconds();
    lookupSpan.arg(0, "hit", 0);
    lookupSpan.end();

    // Cross-process in-flight dedup: exactly one process per key runs cc;
    // everyone else blocks on the leader's lock file and adopts the
    // artifact it publishes (see JitCache::BuildLock). Concurrent threads
    // of ONE process race through here too — the first claims the lock,
    // the rest join exactly like foreign processes.
    JitCache::BuildLock buildLock;
    {
        trace::Span lockSpan("jit", "cache.buildlock");
        Timer lockT;
        buildLock = cache.lockForBuild(key);
        static auto& lockMs =
            trace::Metrics::instance().histogram("jit.cache.lockwait.millis");
        lockMs.observe(static_cast<int64_t>(lockT.seconds() * 1e3));
    }
    // Double-checked: whether we waited out a publish (Published) or won
    // the claim only after a leader came and went (Acquired on retry), the
    // artifact may exist by now — serve it instead of compiling again.
    if (buildLock.state() != JitCache::BuildLock::State::Skipped) {
        if (const std::string joinedSo = cache.lookup(key); !joinedSo.empty()) {
            trace::Span dlopenSpan("jit", "dlopen");
            mod->handle_ = dlopen(joinedSo.c_str(), RTLD_NOW | RTLD_LOCAL);
            if (mod->handle_) {
                buildLock.release();
                static auto& xjoins =
                    trace::Metrics::instance().counter("jit.cache.joins.crossproc");
                xjoins.inc();
                cache.noteCrossJoin();
                cache.noteDiskHit(0);
                diskHits.inc();
                mod->command_ = format("(joined) %s %s [key %016llx]", cc.c_str(),
                                       flags.c_str(), static_cast<unsigned long long>(key));
                mod->loadedPath_ = joinedSo;
                cache.registerLoaded(key, mod);
                res.module = std::move(mod);
                res.cacheHit = true;
                return res;
            }
            cache.noteCorrupt();
            corrupt.inc();
            cache.invalidate(key);
        }
    }
    cache.noteMiss(res.lookupSeconds);
    misses.inc();

    const std::string dir = makeScratchDir("wootinc");
    mod->dir_ = dir;
    mod->srcPath_ = dir + "/" + mangle(tag) + ".c";
    const std::string soPath = dir + "/" + mangle(tag) + ".so";
    const std::string errPath = dir + "/cc.err";

    {
        std::ofstream out(mod->srcPath_);
        if (!out) throw UsageError("cannot write " + mod->srcPath_);
        out << cSource;
    }

    mod->command_ =
        format("%s -std=c11 %s -ffp-contract=off -fPIC -shared -I'%s' -o '%s' '%s' -lm 2> '%s'",
               cc.c_str(), flags.c_str(), WJ_RT_INCLUDE_DIR, soPath.c_str(),
               mod->srcPath_.c_str(), errPath.c_str());

    // Transient failures — the compiler being OOM-killed, the shell failing
    // to launch, or an injected WJ_FAULT failcompile — are retried with
    // exponential backoff, like any robust build farm client. Deterministic
    // compile errors (nonzero exit with diagnostics) are not retried, and a
    // missing compiler (shell exit 127) escalates to CompilerUnavailableError
    // so jit() can fall back to the interpreter.
    const int extraRetries = std::max(0, envInt("WJ_JIT_RETRIES", 2));
    int backoffMs = std::max(1, envInt("WJ_JIT_BACKOFF_MS", 10));
    int attempts = 0;
    for (;;) {
        ++attempts;
        const bool injected = fault::FaultPlan::active() &&
                              fault::FaultPlan::instance().failThisCompile();
        int raw = 0;
        bool ok = false;
        if (!injected) {
            trace::Span ccSpan("jit", "cc", "attempt", attempts);
            Timer t;
            raw = std::system(mod->command_.c_str());
            mod->compileSeconds_ += t.seconds();
            static auto& ccMs = trace::Metrics::instance().histogram("jit.cc.millis");
            ccMs.observe(static_cast<int64_t>(t.seconds() * 1e3));
            // std::system returns a raw wait(2) status, not an exit code:
            // decode it so "cc segfaulted" and "cc exited 1" read
            // differently.
            ok = raw != -1 && WIFEXITED(raw) && WEXITSTATUS(raw) == 0;
        }
        if (ok) break;
        if (!injected && raw != -1 && WIFEXITED(raw) && WEXITSTATUS(raw) == 127) {
            throw CompilerUnavailableError("external C compiler '" + cc +
                                           "' is unavailable (" + describeExitStatus(raw) +
                                           "):\n" + slurpFile(errPath));
        }
        const bool transient = injected || raw == -1 || WIFSIGNALED(raw) ||
                               (WIFEXITED(raw) && WEXITSTATUS(raw) > 128);
        if (transient && attempts <= extraRetries) {
            trace::instant("jit", "cc.retry", "attempt", attempts, "backoff_ms", backoffMs);
            static auto& retries = trace::Metrics::instance().counter("jit.cc.retries");
            retries.inc();
            std::this_thread::sleep_for(std::chrono::milliseconds(backoffMs));
            backoffMs *= 2;
            continue;
        }
        const std::string status =
            injected ? std::string("injected transient failure (WJ_FAULT failcompile)")
                     : describeExitStatus(raw);
        throw UsageError(format("external C compiler failed after %d attempt%s (%s, see %s):\n",
                                attempts, attempts == 1 ? "" : "s", status.c_str(),
                                mod->srcPath_.c_str()) +
                         slurpFile(errPath));
    }
    res.attempts = attempts;

    // Publish to the persistent cache, then load the cached copy so the
    // temp dir is not load-bearing; fall back to the temp .so if the store
    // failed (cache disabled, disk full, ...).
    const std::string published = cache.store(key, soPath, tag);
    buildLock.release();
    const std::string& loadPath = published.empty() ? soPath : published;
    trace::Span dlopenSpan("jit", "dlopen");
    mod->handle_ = dlopen(loadPath.c_str(), RTLD_NOW | RTLD_LOCAL);
    mod->loadedPath_ = loadPath;
    if (!mod->handle_ && loadPath != soPath) {
        // A concurrent LRU sweep (or a byte cap smaller than one entry) can
        // evict the published copy between store() and this dlopen. The
        // temp .so this process just built still exists — load it instead
        // of failing a compile that succeeded.
        mod->handle_ = dlopen(soPath.c_str(), RTLD_NOW | RTLD_LOCAL);
        mod->loadedPath_ = soPath;
    }
    if (!mod->handle_) {
        throw UsageError(std::string("dlopen failed: ") + dlerror());
    }
    cache.registerLoaded(key, mod);
    res.compileSeconds = mod->compileSeconds_;
    res.module = std::move(mod);
    return res;
}

std::future<CompileResult> compileAndLoadAsync(const std::string& cSource,
                                               const std::string& tag) {
    return CompilePool::instance().submit(cSource, tag);
}

} // namespace wj
