#include "jit/compile.h"

#include <dlfcn.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/diagnostics.h"
#include "support/strings.h"
#include "support/timer.h"

#ifndef WJ_RT_INCLUDE_DIR
#define WJ_RT_INCLUDE_DIR "."
#endif

namespace wj {

NativeModule::~NativeModule() {
    if (handle_) dlclose(handle_);
    if (!dir_.empty()) {
        // Best-effort cleanup of the temp dir (source, object, module).
        std::system(("rm -rf '" + dir_ + "'").c_str());
    }
}

void* NativeModule::symbol(const std::string& name) const {
    void* s = dlsym(handle_, name.c_str());
    if (!s) throw UsageError("generated module is missing symbol " + name);
    return s;
}

std::unique_ptr<NativeModule> compileAndLoad(const std::string& cSource, const std::string& tag) {
    char tmpl[] = "/tmp/wootinc.XXXXXX";
    const char* dir = mkdtemp(tmpl);
    if (!dir) throw UsageError("cannot create temp directory for JIT output");

    auto mod = std::unique_ptr<NativeModule>(new NativeModule());
    mod->dir_ = dir;
    mod->srcPath_ = std::string(dir) + "/" + mangle(tag) + ".c";
    const std::string soPath = std::string(dir) + "/" + mangle(tag) + ".so";
    const std::string errPath = std::string(dir) + "/cc.err";

    {
        std::ofstream out(mod->srcPath_);
        if (!out) throw UsageError("cannot write " + mod->srcPath_);
        out << cSource;
    }

    const char* cc = std::getenv("WJ_CC");
    if (!cc || !*cc) cc = "cc";
    // -O2 -fPIC -shared: the role icc's "-O3 -ipo" plays in the paper's
    // Tables 1-2. WJ_CFLAGS overrides the optimization flags (used by the
    // compile-cost ablation bench). rdynamic host exports provide wjrt_*.
    const char* flags = std::getenv("WJ_CFLAGS");
    if (!flags || !*flags) flags = "-O2";
    mod->command_ =
        format("%s -std=c11 %s -ffp-contract=off -fPIC -shared -I'%s' -o '%s' '%s' -lm 2> '%s'",
               cc, flags, WJ_RT_INCLUDE_DIR, soPath.c_str(), mod->srcPath_.c_str(),
               errPath.c_str());

    Timer t;
    const int rc = std::system(mod->command_.c_str());
    mod->compileSeconds_ = t.seconds();
    if (rc != 0) {
        std::ifstream err(errPath);
        std::string msg((std::istreambuf_iterator<char>(err)), std::istreambuf_iterator<char>());
        throw UsageError("external C compiler failed (see " + mod->srcPath_ + "):\n" + msg);
    }

    mod->handle_ = dlopen(soPath.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (!mod->handle_) {
        throw UsageError(std::string("dlopen failed: ") + dlerror());
    }
    return mod;
}

} // namespace wj
