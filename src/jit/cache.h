// Persistent, content-addressed compile cache for the JIT.
//
// The paper's Table 3 shows the external C compiler dominating end-to-end
// compilation time (icc -O3 -ipo takes seconds per translation unit), and
// Figures 13-16 report strong scaling *excluding* compile time for exactly
// this reason. Real JIT stacks amortize the cost with a code cache (cf.
// Clarkson et al., "Boosting Java Performance using GPGPUs", which caches
// generated GPU binaries across runs). WootinC does the same: the compiled
// .so of every translation unit is stored under a key derived from
// everything that influences the binary —
//
//     key = FNV-1a( generated C source
//                 , resolved compiler (WJ_CC)
//                 , resolved flags (WJ_CFLAGS)
//                 , runtime-header version (hash of wjrt.h / rng_hash.h) )
//
// so a source, compiler, flag, or runtime-header change each invalidates
// the entry naturally; no explicit versioning is needed.
//
// Two layers:
//   * an in-process module registry (key -> loaded NativeModule), so
//     repeated WootinJ::jit() of the same translation unit within one
//     process reuses the already-dlopen()ed module;
//   * an on-disk store of .so files under $WJ_CACHE_DIR (default
//     ~/.cache/wootinc), shared across processes. Entries are published
//     with write-to-temp + atomic rename, so concurrent processes (ctest
//     -j) can race on the same key safely. An append-only index.tsv
//     records (key, tag, bytes) per store for inspection. Eviction is
//     LRU by file mtime (touched on every hit) with a byte cap from
//     $WJ_CACHE_MAX_BYTES (default 256 MiB); entries younger than
//     $WJ_CACHE_EVICT_GRACE_MS are exempt, so one process's eviction
//     sweep can never unlink an artifact another process just published
//     but has not yet dlopen()ed (wjd sets a 10 s grace; the default is
//     0 to keep single-process byte caps exact).
//
// Environment:
//   WJ_CACHE=0            disable both layers (every compile is cold)
//   WJ_CACHE_DIR=<path>   override the store location
//   WJ_CACHE_MAX_BYTES=N  LRU size cap for the on-disk store
//   WJ_CACHE_EVICT_GRACE_MS=N  entries younger than N ms survive eviction
//   WJ_CACHE_LOCK=0       disable the cross-process in-flight build dedup
//   WJ_CACHE_LOCK_TIMEOUT_MS / WJ_CACHE_LOCK_STALE_MS  see BuildLock
//
// All env vars are re-read on every call, so tests and benches can
// redirect or disable the cache at run time with setenv().
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace wj {

class NativeModule;

/// Process-lifetime counters for the two cache layers (benches print them;
/// tests assert on deltas).
struct CacheStats {
    int64_t diskHits = 0;     ///< entries served from $WJ_CACHE_DIR
    int64_t memoryHits = 0;   ///< entries served from the in-process registry
    int64_t misses = 0;       ///< external compiler actually ran
    int64_t stores = 0;       ///< entries published to disk
    int64_t evictions = 0;    ///< entries removed by the LRU cap
    int64_t corrupt = 0;      ///< cached .so that failed to dlopen (recompiled)
    int64_t crossJoins = 0;   ///< compiles joined to another process's in-flight build
    double lookupSeconds = 0; ///< total wall time spent in lookups
};

/// FNV-1a 64-bit over a byte string (the content-address hash).
uint64_t fnv1a64(const void* data, size_t n, uint64_t seed = 0xcbf29ce484222325ULL) noexcept;

class JitCache {
public:
    static JitCache& instance();

    /// False when WJ_CACHE is "0"/"off"/"false" (re-read per call).
    bool enabled() const;

    /// Resolved store directory: $WJ_CACHE_DIR, else $XDG_CACHE_HOME/wootinc,
    /// else $HOME/.cache/wootinc, else <tmp>/wootinc-cache.
    std::string dir() const;

    /// LRU byte cap: $WJ_CACHE_MAX_BYTES or 256 MiB.
    uint64_t maxBytes() const;

    /// Cache key over everything that influences the produced binary.
    static uint64_t keyOf(const std::string& cSource, const std::string& cc,
                          const std::string& flags, uint64_t rtVersion) noexcept;

    /// Hash of the runtime headers the generated C #includes (wjrt.h,
    /// rng_hash.h under WJ_RT_INCLUDE_DIR). Computed once per process.
    static uint64_t runtimeHeadersVersion(const std::string& includeDir);

    // ---- on-disk store ------------------------------------------------
    /// Path of the cached .so for `key` if present (mtime is refreshed for
    /// LRU), empty string otherwise. Counts a disk hit / nothing; the miss
    /// is counted by store().
    std::string lookup(uint64_t key);

    /// Atomically publishes the freshly built `soPath` under `key` and
    /// returns the in-cache path; returns "" if the cache is disabled or
    /// the copy failed (caller keeps using soPath). Enforces the LRU cap.
    std::string store(uint64_t key, const std::string& soPath, const std::string& tag);

    /// Removes a cached entry (used when a cached .so fails to dlopen).
    void invalidate(uint64_t key);

    /// Where `key` is (or would be) stored — `<dir>/<16-hex-key>.so`. Pure
    /// path math: no existence check, no stats, no mtime touch (wjd reports
    /// artifact paths to clients with this; lookup() is the stats-bearing
    /// probe).
    std::string entryPath(uint64_t key) const;

    // ---- cross-process in-flight dedup --------------------------------
    /// RAII guard for the cross-process compile singleflight. On a cache
    /// miss, compileAndLoad asks for the build lock of the key before
    /// shelling out to cc: exactly one process per key becomes the leader
    /// (state Acquired, a `<key>.building` lock file holding its pid);
    /// every other process blocks until the leader publishes the artifact
    /// (state Published — the caller re-looks-up and skips its own cc
    /// invocation) or the lock disappears without a publish (the leader
    /// failed; the waiter retries acquisition and becomes the new leader).
    /// Stale locks — holder pid dead, or mtime older than
    /// WJ_CACHE_LOCK_STALE_MS (default 120 s, SIGKILLed holders) — are
    /// stolen. A waiter that exceeds WJ_CACHE_LOCK_TIMEOUT_MS (default
    /// 120 s) gives up with state Skipped and compiles anyway: the atomic
    /// store keeps duplicated compiles correct, just wasteful.
    /// WJ_CACHE_LOCK=0 disables the whole mechanism (every caller gets
    /// Skipped immediately), as does a disabled cache.
    class BuildLock {
    public:
        enum class State {
            Acquired,   ///< we are the leader: compile, store, release
            Published,  ///< another process published while we waited
            Skipped,    ///< locking off / timed out: compile without dedup
        };

        BuildLock() = default;
        BuildLock(BuildLock&& o) noexcept { *this = std::move(o); }
        BuildLock& operator=(BuildLock&& o) noexcept;
        ~BuildLock() { release(); }

        State state() const noexcept { return state_; }
        /// Removes the lock file (leader only; idempotent). Call after the
        /// artifact is stored so waiters always find either the lock or
        /// the published entry.
        void release();

    private:
        friend class JitCache;
        State state_ = State::Skipped;
        std::string path_;  ///< lock file owned when state_ == Acquired
    };

    /// Blocks per the BuildLock contract above. `key` must be the exact
    /// content-address the subsequent store() will publish under.
    BuildLock lockForBuild(uint64_t key);

    /// Deletes every entry and the index (wjc cache clear; benches).
    void clearDisk();

    /// Total bytes currently stored (wjc cache stats).
    uint64_t diskBytes() const;

    // ---- in-process module registry -----------------------------------
    std::shared_ptr<NativeModule> findLoaded(uint64_t key);
    void registerLoaded(uint64_t key, const std::shared_ptr<NativeModule>& mod);
    /// Drops the registry so the next jit() of a known TU exercises the
    /// disk layer (tests; bench_tab3's cold rows).
    void clearLoaded();

    // ---- observability ------------------------------------------------
    CacheStats stats() const;
    void resetStats();

    // Internal: stat accounting shared with compileAndLoad.
    void noteMiss(double lookupSeconds);
    void noteMemoryHit();
    void noteDiskHit(double lookupSeconds);
    void noteCorrupt();
    void noteCrossJoin();

private:
    JitCache() = default;

    /// Evicts oldest-mtime entries until the store fits maxBytes().
    void enforceCap();

    struct Impl;
    Impl& impl() const;
};

} // namespace wj
