// The WootinC translator: WJ IR -> C source, with aggressive
// devirtualization and object inlining (paper, Section 3.3).
//
// Given the composed application object (receiver), an entry method name,
// and the actual arguments — all recorded at jit() time — the translator:
//
//   * resolves the EXACT receiver class of every call site from shapes and
//     emits a direct C call (devirtualization); one WJ method may yield
//     several C functions specialized per argument shape;
//   * turns every object into a C struct of primitive members allocated on
//     the stack; field reads become member reads; constructors are inlined
//     at the `new` site (object inlining). Only arrays stay heap-allocated;
//   * translates @Global methods into GpuSim kernels: a kernel function
//     taking the thread context, a packed-argument struct (arguments are
//     deeply copied at launch, Section 3.1), and a launch thunk;
//   * translates MPI/CUDA intrinsics into direct wjrt_* calls;
//   * bakes the receiver graph's primitive state into the generated entry
//     function as constants ("the arguments ... are recorded and used for
//     optimization during the translation") while arrays are passed in at
//     invoke() through an array table.
//
// The generated translation unit is self-contained C99 except for the
// wjrt.h / rng_hash.h includes; compile.h hands it to the external compiler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "interp/value.h"
#include "ir/program.h"

namespace wj {

/// How invoke() must marshal the recorded (or overriding) arguments.
struct EntryPlan {
    /// Primitive kinds of the explicit entry arguments, in order. Each
    /// occupies one int64 slot (floats bit-cast) in the prims[] table.
    std::vector<Prim> primSlots;
    /// Number of wj_array* slots: receiver-graph arrays first (in depth-
    /// first field order, nulls skipped), then explicit array arguments.
    int arraySlots = 0;
    /// Return type of the entry method (void or primitive).
    Type ret = Type::voidTy();
};

/// A completed translation.
struct Translation {
    std::string cSource;
    std::string entrySymbol;
    EntryPlan plan;

    // ---- optimization accounting (tests + EXPERIMENTS.md evidence)
    int64_t specializations = 0;   ///< C functions generated from WJ methods
    int64_t devirtualizedCalls = 0;///< dynamic dispatches turned into direct calls
    int64_t inlinedObjects = 0;    ///< `new` sites flattened onto the stack
    int64_t kernels = 0;           ///< @Global methods turned into kernels
    int64_t boundsGuards = 0;      ///< array accesses emitted with a wj_chk guard
    int64_t boundsElided = 0;      ///< guards skipped because the interval pass proved safety
    int64_t parallelLoops = 0;     ///< loops outlined through wjrt_parallel_for (WJ_PARALLEL)
    int64_t reduceLoops = 0;       ///< reduction loops outlined through wjrt_parallel_reduce
    int64_t vectorLoops = 0;       ///< loops emitted under `#pragma omp simd` (WJ_SIMD)
    int64_t soaArrays = 0;         ///< allocation sites emitted SoA via wjrt_alloc_soa (WJ_SOA)
    /// Element classes actually stored SoA in this translation (sorted).
    /// A class appears only when proveLayout proved it Inline AND the
    /// translated code allocates an array of it.
    std::vector<std::string> soaClasses;
    double codegenSeconds = 0;     ///< translator time (Table 3 component)
};

/// Translates `method`, called on `receiver` with `args`, plus everything
/// reachable from it. The program must already satisfy the coding rules
/// (the public jit() entry verifies them first). Runs the mandatory
/// dataflow analyses first and throws AnalysisError on a proven defect;
/// with WJ_BOUNDS=1 the interval verdicts elide guards on proven-safe
/// accesses, with WJ_BOUNDS=all every access is guarded.
Translation translate(const Program& prog, const Value& receiver, const std::string& method,
                      const std::vector<Value>& args);

} // namespace wj
