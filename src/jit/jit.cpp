#include "jit/jit.h"

#include <cstdlib>
#include <cstring>
#include <mutex>
#include <unordered_map>

#include "gpusim/gpusim.h"
#include "interp/interp.h"
#include "minimpi/minimpi.h"
#include "rules/rules.h"
#include "runtime/context.h"
#include "runtime/wjrt.h"
#include "support/diagnostics.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace wj {

namespace {

/// Depth-first walk over the receiver graph collecting non-null arrays, in
/// the exact order codegen's emitGraphInit assigned arrs[] indices.
void collectArrays(const Program& prog, const Value& v, std::vector<ArrRef>& out) {
    const ObjRef& o = v.asObj();
    if (!o) throw UsageError("null object in receiver graph at invoke time");
    for (const Field* f : prog.allFields(o->cls->name)) {
        const Value& fv = o->fields.at(f->name);
        if (f->type.isArray()) {
            if (fv.asArr()) out.push_back(fv.asArr());
        } else if (f->type.isClass()) {
            collectArrays(prog, fv, out);
        }
    }
}

/// Deep copy: interpreter array -> native wj_array (the translated code's
/// own memory space, Section 3.1).
wj_array* marshalArray(const Arr& a) {
    if (!a.elem.isPrim()) {
        throw UsageError("arrays crossing the jit boundary must have primitive elements (got " +
                         a.elem.str() + "[])");
    }
    const Prim p = a.elem.prim();
    wj_array* out = wjrt_alloc_array(static_cast<int64_t>(a.data.size()), primSize(p));
    void* data = wj_array_data(out);
    for (size_t i = 0; i < a.data.size(); ++i) {
        switch (p) {
        case Prim::Bool: static_cast<int32_t*>(data)[i] = a.data[i].asBool() ? 1 : 0; break;
        case Prim::I32: static_cast<int32_t*>(data)[i] = a.data[i].asI32(); break;
        case Prim::I64: static_cast<int64_t*>(data)[i] = a.data[i].asI64(); break;
        case Prim::F32: static_cast<float*>(data)[i] = a.data[i].asF32(); break;
        case Prim::F64: static_cast<double*>(data)[i] = a.data[i].asF64(); break;
        }
    }
    return out;
}

/// Copy-back extension: native array -> interpreter array.
void unmarshalArray(const wj_array* in, Arr& a) {
    const void* data = wj_array_data(in);
    const Prim p = a.elem.prim();
    for (size_t i = 0; i < a.data.size(); ++i) {
        switch (p) {
        case Prim::Bool: a.data[i] = Value::ofBool(static_cast<const int32_t*>(data)[i] != 0); break;
        case Prim::I32: a.data[i] = Value::ofI32(static_cast<const int32_t*>(data)[i]); break;
        case Prim::I64: a.data[i] = Value::ofI64(static_cast<const int64_t*>(data)[i]); break;
        case Prim::F32: a.data[i] = Value::ofF32(static_cast<const float*>(data)[i]); break;
        case Prim::F64: a.data[i] = Value::ofF64(static_cast<const double*>(data)[i]); break;
        }
    }
}

/// True unless WJ_JIT_FALLBACK is "0"/"off"/"false"/"no": when the external
/// C compiler is unavailable, degrade to the interpreter instead of failing.
bool fallbackEnabled() {
    const char* v = std::getenv("WJ_JIT_FALLBACK");
    if (!v) return true;
    const std::string s(v);
    return !(s == "0" || s == "off" || s == "false" || s == "no");
}

/// Deep copy of a value graph (objects, arrays, primitives). The
/// interpreter fallback runs on copies so the paper's no-copy-back
/// contract (Section 3.1) holds on every rung of the degradation ladder.
Value deepCopyValue(const Value& v, std::unordered_map<const Obj*, ObjRef>& memo) {
    if (v.isArr()) {
        const ArrRef& a = v.asArr();
        if (!a) return v;
        auto copy = std::make_shared<Arr>();
        copy->elem = a->elem;
        copy->data.reserve(a->data.size());
        for (const Value& e : a->data) copy->data.push_back(deepCopyValue(e, memo));
        return Value::ofArr(std::move(copy));
    }
    if (v.isObj()) {
        const ObjRef& o = v.asObj();
        if (!o) return v;
        if (auto it = memo.find(o.get()); it != memo.end()) return Value::ofObj(it->second);
        auto copy = std::make_shared<Obj>();
        copy->cls = o->cls;
        memo.emplace(o.get(), copy);
        for (const auto& [name, fv] : o->fields) copy->fields[name] = deepCopyValue(fv, memo);
        return Value::ofObj(std::move(copy));
    }
    return v;
}

int64_t primToSlot(const Value& v, Prim expected) {
    switch (expected) {
    case Prim::Bool: return v.asBool() ? 1 : 0;
    case Prim::I32: return v.asI32();
    case Prim::I64: return v.asI64();
    case Prim::F32: {
        uint32_t bits;
        float f = v.asF32();
        std::memcpy(&bits, &f, sizeof bits);
        return static_cast<int64_t>(bits);
    }
    case Prim::F64: {
        uint64_t bits;
        double d = v.asF64();
        std::memcpy(&bits, &d, sizeof bits);
        return static_cast<int64_t>(bits);
    }
    }
    throw UsageError("bad prim slot");
}

Value slotToValue(int64_t slot, const Type& ret) {
    if (ret.isVoid()) return Value();
    switch (ret.prim()) {
    case Prim::Bool: return Value::ofBool(slot != 0);
    case Prim::I32: return Value::ofI32(static_cast<int32_t>(slot));
    case Prim::I64: return Value::ofI64(slot);
    case Prim::F32: {
        uint32_t bits = static_cast<uint32_t>(slot);
        float f;
        std::memcpy(&f, &bits, sizeof f);
        return Value::ofF32(f);
    }
    case Prim::F64: {
        uint64_t bits = static_cast<uint64_t>(slot);
        double d;
        std::memcpy(&d, &bits, sizeof d);
        return Value::ofF64(d);
    }
    }
    return Value();
}

} // namespace

JitCode::JitCode(const Program& prog, Value receiver, std::string method, std::vector<Value> args,
                 bool mpi)
    : prog_(&prog), receiver_(std::move(receiver)), method_(std::move(method)),
      recordedArgs_(std::move(args)), mpi_(mpi) {
    // The translated code must satisfy the coding rules (Section 3.2); the
    // verifier runs before any code generation, like the paper's bytecode
    // checks.
    requireCodingRules(prog);
    {
        // Dynamic span names must be interned; skip the allocation entirely
        // when tracing is off.
        trace::Span span("jit", trace::enabled()
                                    ? trace::intern("translate " + method_)
                                    : "translate");
        translation_ = translate(prog, receiver_, method_, recordedArgs_);
    }
    try {
        trace::Span span("jit", trace::enabled()
                                    ? trace::intern("compile " + method_)
                                    : "compile");
        compile_ = compileAndLoad(translation_.cSource, method_);
    } catch (const CompilerUnavailableError&) {
        if (!fallbackEnabled()) throw;
        static auto& fallbacks =
            trace::Metrics::instance().counter("jit.fallbacks.interpreter");
        fallbacks.inc();
        trace::instant("jit", "fallback.interpreter");
        mode_ = ExecMode::Interpreter;
        return;
    }
    mode_ = compile_.cacheHit ? ExecMode::NativeCached : ExecMode::Native;
    entry_ = reinterpret_cast<EntryFn>(compile_.module->symbol(translation_.entrySymbol));
}

JitCode::JitCode(const Program& prog, Value receiver, std::string method, std::vector<Value> args,
                 bool mpi, Translation tr, CompileResult compiled)
    : prog_(&prog), receiver_(std::move(receiver)), method_(std::move(method)),
      recordedArgs_(std::move(args)), mpi_(mpi), translation_(std::move(tr)),
      compile_(std::move(compiled)) {
    mode_ = compile_.cacheHit ? ExecMode::NativeCached : ExecMode::Native;
    entry_ = reinterpret_cast<EntryFn>(compile_.module->symbol(translation_.entrySymbol));
}

JitCode::JitCode(const Program& prog, Value receiver, std::string method, std::vector<Value> args,
                 bool mpi, Translation tr)
    : prog_(&prog), receiver_(std::move(receiver)), method_(std::move(method)),
      recordedArgs_(std::move(args)), mpi_(mpi), translation_(std::move(tr)),
      mode_(ExecMode::Interpreter) {}

void JitCode::set4MPI(int ranks, const std::string& /*nodeList*/) {
    if (!mpi_) throw UsageError("set4MPI on code translated with jit(); use jit4mpi()");
    if (ranks <= 0) throw UsageError("MPI rank count must be positive");
    ranks_ = ranks;
}

namespace {

// Primitive result <-> (kind, bits) codec for Transport::publishResult.
// JIT entry points return primitive slots only (arrays travel by argument),
// so this covers every legal MPI entry result.
enum ResultKind { kResVoid = 0, kResBool, kResI32, kResI64, kResF32, kResF64 };

void encodeResult(const Value& v, int* kind, int64_t* bits) {
    *bits = 0;
    if (v.isVoid()) {
        *kind = kResVoid;
    } else if (v.isBool()) {
        *kind = kResBool;
        *bits = v.asBool() ? 1 : 0;
    } else if (v.isI32()) {
        *kind = kResI32;
        *bits = v.asI32();
    } else if (v.isI64()) {
        *kind = kResI64;
        *bits = v.asI64();
    } else if (v.isF32()) {
        *kind = kResF32;
        const float f = v.asF32();
        uint32_t u = 0;
        std::memcpy(&u, &f, sizeof f);
        *bits = static_cast<int64_t>(u);
    } else if (v.isF64()) {
        *kind = kResF64;
        const double d = v.asF64();
        std::memcpy(bits, &d, sizeof d);
    } else {
        throw ExecError("MPI entry returned a non-primitive result; only void/bool/int/"
                        "long/float/double can cross the rank boundary");
    }
}

Value decodeResult(int kind, int64_t bits) {
    switch (kind) {
    case kResBool: return Value::ofBool(bits != 0);
    case kResI32: return Value::ofI32(static_cast<int32_t>(bits));
    case kResI64: return Value::ofI64(bits);
    case kResF32: {
        const auto u = static_cast<uint32_t>(bits);
        float f = 0;
        std::memcpy(&f, &u, sizeof f);
        return Value::ofF32(f);
    }
    case kResF64: {
        double d = 0;
        std::memcpy(&d, &bits, sizeof d);
        return Value::ofF64(d);
    }
    default: return Value();
    }
}

} // namespace

Value JitCode::invoke() { return invokeWith(recordedArgs_); }

Value JitCode::invokeWith(const std::vector<Value>& args) {
    if (args.size() != recordedArgs_.size()) {
        throw UsageError("invoke: argument count differs from the jit-time recording");
    }
    trace::Span span("jit",
                     trace::enabled() ? trace::intern("invoke " + method_) : "invoke",
                     "ranks", mpi_ ? ranks_ : 1);
    if (mode_ == ExecMode::Interpreter) return invokeInterpreter(args);
    if (mpi_ && ranks_ > 1) {
        if (copyBack_) {
            throw UsageError("copy-back is only defined for single-rank invocations");
        }
        minimpi::World world(ranks_);
        world.run([&](minimpi::Comm& comm) {
            // One GPU per node (paper Section 4.1): each rank owns a device.
            gpusim::Device dev(comm.rank());
            runtime::RankScope scope(&comm, &dev);
            Value r = invokeRank(args);
            // Rank 0's result leaves the world through the transport's
            // result slot: lambda captures cannot carry it back across a
            // fork boundary on the process transport, and MPI entries
            // return primitives only, so a kind + 64-bit payload suffices.
            if (comm.rank() == 0) {
                int kind = 0;
                int64_t bits = 0;
                encodeResult(r, &kind, &bits);
                comm.publishResult(kind, bits);
            }
        });
        commStats_ = world.stats();
        int kind = 0;
        int64_t bits = 0;
        if (world.takeResult(&kind, &bits)) return decodeResult(kind, bits);
        return Value();
    }
    gpusim::Device dev(0);
    runtime::RankScope scope(nullptr, &dev);
    return invokeRank(args);
}

Value JitCode::invokeInterpreter(const std::vector<Value>& args) {
    // Bottom rung of the degradation ladder: programs written against the
    // class libraries "can run without WootinJ unless they use MPI or GPUs"
    // (paper, Section 4.4) — so single-process code interprets; a multi-rank
    // world cannot degrade and reports why.
    if (mpi_ && ranks_ > 1) {
        throw UsageError("interpreter fallback cannot run an MPI world (" +
                         std::to_string(ranks_) +
                         " ranks requested, and the C compiler is unavailable)");
    }
    Interp interp(*prog_);
    if (copyBack_) {
        // Copy-back semantics are exactly in-place interpretation.
        return interp.call(receiver_, method_, args);
    }
    std::unordered_map<const Obj*, ObjRef> memo;
    Value recvCopy = deepCopyValue(receiver_, memo);
    std::vector<Value> argCopies;
    argCopies.reserve(args.size());
    for (const Value& v : args) argCopies.push_back(deepCopyValue(v, memo));
    return interp.call(recvCopy, method_, std::move(argCopies));
}

Value JitCode::invokeRank(const std::vector<Value>& args) {
    // Deep-copy the argument arrays into this rank's private memory space.
    std::vector<ArrRef> interpArrays;
    collectArrays(*prog_, receiver_, interpArrays);
    for (const Value& v : args) {
        if (v.isArr() && v.asArr()) interpArrays.push_back(v.asArr());
    }
    if (static_cast<int>(interpArrays.size()) != translation_.plan.arraySlots) {
        throw UsageError("invoke: the receiver graph's array layout changed since jit() time (" +
                         std::to_string(interpArrays.size()) + " arrays vs " +
                         std::to_string(translation_.plan.arraySlots) + " recorded)");
    }

    std::vector<wj_array*> nativeArrays;
    nativeArrays.reserve(interpArrays.size());
    for (const ArrRef& a : interpArrays) nativeArrays.push_back(marshalArray(*a));

    std::vector<int64_t> prims;
    size_t slotIdx = 0;
    for (const Value& v : args) {
        if (v.isArr()) continue;
        if (v.isObj()) continue;  // object args were baked in at jit() time
        if (slotIdx >= translation_.plan.primSlots.size()) {
            throw UsageError("invoke: more primitive arguments than recorded");
        }
        prims.push_back(primToSlot(v, translation_.plan.primSlots[slotIdx++]));
    }
    if (slotIdx != translation_.plan.primSlots.size()) {
        throw UsageError("invoke: fewer primitive arguments than recorded");
    }

    int64_t raw;
    {
        static auto& invokes = trace::Metrics::instance().counter("jit.invocations.native");
        invokes.inc();
    }
    trace::Span entrySpan("jit", "entry");
    try {
        // The scope reclaims every array the translated code allocates —
        // entries return only primitives, so none of them escape — and is
        // the only cleanup on the trap path (bounds guard, wjrt_trap).
        runtime::AllocScope allocs;
        raw = entry_(prims.data(), nativeArrays.data());
    } catch (...) {
        for (wj_array* a : nativeArrays) wjrt_free_array(a);
        throw;
    }
    entrySpan.end();

    if (copyBack_) {
        for (size_t i = 0; i < interpArrays.size(); ++i) {
            unmarshalArray(nativeArrays[i], *interpArrays[i]);
        }
    }
    // No copy-back by default (paper Section 3.1); release the private space.
    for (wj_array* a : nativeArrays) wjrt_free_array(a);
    return slotToValue(raw, translation_.plan.ret);
}

JitCode WootinJ::jit(const Program& prog, const Value& receiver, const std::string& method,
                     std::vector<Value> args) {
    return JitCode(prog, receiver, method, std::move(args), /*mpi=*/false);
}

JitCode WootinJ::jit4mpi(const Program& prog, const Value& receiver, const std::string& method,
                         std::vector<Value> args) {
    return JitCode(prog, receiver, method, std::move(args), /*mpi=*/true);
}

/// Shared async pipeline: rule-check + translate on the calling thread
/// (milliseconds), external compilation on the compile pool (the Table 3
/// dominant cost), final assembly deferred to the future's get().
std::future<JitCode> WootinJ::jitAsyncImpl(const Program& prog, Value receiver,
                                           std::string method, std::vector<Value> args,
                                           bool mpi) {
    requireCodingRules(prog);
    Translation tr = translate(prog, receiver, method, args);
    auto modFut = compileAndLoadAsync(tr.cSource, method);
    return std::async(
        std::launch::deferred,
        [&prog, receiver = std::move(receiver), method = std::move(method),
         args = std::move(args), mpi, tr = std::move(tr),
         modFut = std::move(modFut)]() mutable {
            CompileResult compiled;
            try {
                compiled = modFut.get();
            } catch (const CompilerUnavailableError&) {
                if (!fallbackEnabled()) throw;
                return JitCode(prog, std::move(receiver), std::move(method), std::move(args),
                               mpi, std::move(tr));
            }
            return JitCode(prog, std::move(receiver), std::move(method), std::move(args), mpi,
                           std::move(tr), std::move(compiled));
        });
}

std::future<JitCode> WootinJ::jitAsync(const Program& prog, Value receiver, std::string method,
                                       std::vector<Value> args) {
    return jitAsyncImpl(prog, std::move(receiver), std::move(method), std::move(args),
                        /*mpi=*/false);
}

std::future<JitCode> WootinJ::jit4mpiAsync(const Program& prog, Value receiver,
                                           std::string method, std::vector<Value> args) {
    return jitAsyncImpl(prog, std::move(receiver), std::move(method), std::move(args),
                        /*mpi=*/true);
}

} // namespace wj
