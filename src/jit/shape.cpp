#include "jit/shape.h"

#include "support/diagnostics.h"

namespace wj {

Prim Shape::prim() const {
    if (!isPrim()) throw UsageError("Shape::prim() on " + key_);
    return prim_;
}

const Type& Shape::arrayElem() const {
    if (!isArray()) throw UsageError("Shape::arrayElem() on " + key_);
    return *elem_;
}

const ClassDecl& Shape::cls() const {
    if (!isObject()) throw UsageError("Shape::cls() on " + key_);
    return *cls_;
}

const std::vector<std::pair<std::string, const Shape*>>& Shape::fields() const {
    if (!isObject()) throw UsageError("Shape::fields() on " + key_);
    return fields_;
}

const Shape* Shape::field(const std::string& name) const {
    for (const auto& [n, s] : fields()) {
        if (n == name) return s;
    }
    throw UsageError("shape " + key_ + " has no field " + name);
}

Type Shape::type() const {
    switch (kind_) {
    case Kind::Prim: return Type::prim(prim_);
    case Kind::Array: return Type::array(*elem_);
    case Kind::Object: return Type::cls(cls_->name);
    }
    throw UsageError("bad shape");
}

namespace {

const char* primKey(Prim p) {
    switch (p) {
    case Prim::Bool: return "b";
    case Prim::I32: return "i";
    case Prim::I64: return "l";
    case Prim::F32: return "f";
    case Prim::F64: return "d";
    }
    return "?";
}

} // namespace

const Shape* ShapeTable::intern(std::unique_ptr<Shape> s) {
    auto it = byKey_.find(s->key_);
    if (it != byKey_.end()) return it->second.get();
    const std::string key = s->key_;
    return byKey_.emplace(key, std::move(s)).first->second.get();
}

const Shape* ShapeTable::ofPrim(Prim p) {
    auto s = std::unique_ptr<Shape>(new Shape());
    s->kind_ = Shape::Kind::Prim;
    s->prim_ = p;
    s->key_ = primKey(p);
    return intern(std::move(s));
}

const Shape* ShapeTable::ofArray(const Type& elem) {
    auto s = std::unique_ptr<Shape>(new Shape());
    s->kind_ = Shape::Kind::Array;
    s->elem_ = std::make_unique<Type>(elem);
    s->key_ = "[" + elem.str();
    return intern(std::move(s));
}

const Shape* ShapeTable::ofObject(const ClassDecl& cls,
                                  std::vector<std::pair<std::string, const Shape*>> fields) {
    auto s = std::unique_ptr<Shape>(new Shape());
    s->kind_ = Shape::Kind::Object;
    s->cls_ = &cls;
    s->fields_ = std::move(fields);
    std::string key = cls.name + "{";
    for (size_t i = 0; i < s->fields_.size(); ++i) {
        if (i) key += ",";
        key += s->fields_[i].first + ":" + s->fields_[i].second->key();
    }
    key += "}";
    s->key_ = std::move(key);
    return intern(std::move(s));
}

const Shape* ShapeTable::ofType(const Type& t) {
    switch (t.kind()) {
    case Type::Kind::Prim:
        return ofPrim(t.prim());
    case Type::Kind::Array:
        return ofArray(t.elem());
    case Type::Kind::Class: {
        const ClassDecl& c = prog_->require(t.className());
        // Strict-final precondition: every field type determines its shape.
        std::vector<std::pair<std::string, const Shape*>> fields;
        for (const Field* f : prog_->allFields(c.name)) {
            fields.emplace_back(f->name, ofType(f->type));
        }
        return ofObject(c, std::move(fields));
    }
    case Type::Kind::Void:
        break;
    }
    throw UsageError("no shape for type " + t.str());
}

const Shape* ShapeTable::ofValue(const Value& v) {
    if (v.isBool()) return ofPrim(Prim::Bool);
    if (v.isI32()) return ofPrim(Prim::I32);
    if (v.isI64()) return ofPrim(Prim::I64);
    if (v.isF32()) return ofPrim(Prim::F32);
    if (v.isF64()) return ofPrim(Prim::F64);
    if (v.isArr()) {
        const ArrRef& a = v.asArr();
        if (!a) throw UsageError("cannot derive the shape of a null array without a declared type");
        return ofArray(a->elem);
    }
    if (v.isObj()) {
        const ObjRef& o = v.asObj();
        if (!o) {
            throw UsageError("null object in the composed application graph: the translator "
                             "cannot determine its actual type (initialize every object field "
                             "before calling jit)");
        }
        std::vector<std::pair<std::string, const Shape*>> fields;
        for (const Field* f : prog_->allFields(o->cls->name)) {
            const Value& fv = o->fields.at(f->name);
            fields.emplace_back(f->name, ofValueAs(fv, f->type));
        }
        return ofObject(*o->cls, std::move(fields));
    }
    throw UsageError("cannot derive a shape from a void value");
}

const Shape* ShapeTable::ofValueAs(const Value& v, const Type& declared) {
    // Array fields may legally be null at jit time (allocated later by the
    // translated code); their shape is the declared element type.
    if (declared.isArray()) {
        const ArrRef& a = v.asArr();
        if (!a) return ofArray(declared.elem());
        if (a->elem != declared.elem()) {
            throw UsageError("array field holds " + a->elem.str() + "[] but is declared " +
                             declared.str());
        }
        return ofArray(a->elem);
    }
    return ofValue(v);
}

} // namespace wj
