#include "jit/cache.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "support/crc32.h"
#include "support/scratch.h"
#include "support/strings.h"
#include "support/timer.h"

namespace fs = std::filesystem;

namespace wj {

namespace {

constexpr uint64_t kDefaultMaxBytes = 256ull << 20;

bool envFlagOff(const char* name) {
    const char* v = std::getenv(name);
    if (!v) return false;
    const std::string s(v);
    return s == "0" || s == "off" || s == "false" || s == "no";
}

std::string hexKey(uint64_t key) { return format("%016llx", static_cast<unsigned long long>(key)); }

int64_t envMs(const char* name, int64_t dflt) {
    const char* v = std::getenv(name);
    if (!v || !*v) return dflt;
    const long long n = std::atoll(v);
    return n >= 0 ? n : dflt;
}

/// Reads a whole file; returns false if it cannot be opened.
bool slurp(const fs::path& p, std::string& out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
    return true;
}

struct Entry {
    fs::path path;
    uint64_t bytes;
    fs::file_time_type mtime;
};

/// All .so entries in the store, oldest mtime first.
std::vector<Entry> scanEntries(const fs::path& dir) {
    std::vector<Entry> out;
    std::error_code ec;
    for (const auto& de : fs::directory_iterator(dir, ec)) {
        if (de.path().extension() != ".so") continue;
        std::error_code ec2;
        const uint64_t n = de.file_size(ec2);
        const auto mt = de.last_write_time(ec2);
        if (!ec2) out.push_back({de.path(), n, mt});
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
        return a.mtime < b.mtime;
    });
    return out;
}

} // namespace

uint64_t fnv1a64(const void* data, size_t n, uint64_t seed) noexcept {
    uint64_t h = seed;
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

struct JitCache::Impl {
    std::mutex m;  // guards loaded + stats (disk ops rely on atomic rename)
    std::unordered_map<uint64_t, std::weak_ptr<NativeModule>> loaded;
    CacheStats stats;
};

JitCache& JitCache::instance() {
    static JitCache c;
    return c;
}

JitCache::Impl& JitCache::impl() const {
    static Impl i;
    return i;
}

bool JitCache::enabled() const { return !envFlagOff("WJ_CACHE"); }

std::string JitCache::dir() const {
    if (const char* d = std::getenv("WJ_CACHE_DIR"); d && *d) return d;
    if (const char* x = std::getenv("XDG_CACHE_HOME"); x && *x) {
        return std::string(x) + "/wootinc";
    }
    if (const char* h = std::getenv("HOME"); h && *h) {
        return std::string(h) + "/.cache/wootinc";
    }
    return tempRoot() + "/wootinc-cache";
}

uint64_t JitCache::maxBytes() const {
    if (const char* v = std::getenv("WJ_CACHE_MAX_BYTES"); v && *v) {
        const long long n = std::atoll(v);
        if (n > 0) return static_cast<uint64_t>(n);
    }
    return kDefaultMaxBytes;
}

uint64_t JitCache::keyOf(const std::string& cSource, const std::string& cc,
                         const std::string& flags, uint64_t rtVersion) noexcept {
    uint64_t h = fnv1a64(cSource.data(), cSource.size());
    h = fnv1a64(cc.data(), cc.size(), h);
    h = fnv1a64(flags.data(), flags.size(), h);
    h = fnv1a64(&rtVersion, sizeof rtVersion, h);
    return h;
}

uint64_t JitCache::runtimeHeadersVersion(const std::string& includeDir) {
    // The runtime contract of the generated C is exactly these headers; a
    // change to either must invalidate every cached binary. Computed once —
    // the headers cannot change under a running process.
    static std::once_flag once;
    static uint64_t version = 0;
    std::call_once(once, [&] {
        uint64_t h = 0xcbf29ce484222325ULL;
        for (const char* name : {"wjrt.h", "rng_hash.h", "context.h"}) {
            std::string text;
            if (slurp(fs::path(includeDir) / name, text)) {
                h = fnv1a64(text.data(), text.size(), h);
            }
        }
        version = h;
    });
    return version;
}

std::string JitCache::entryPath(uint64_t key) const {
    return (fs::path(dir()) / (hexKey(key) + ".so")).string();
}

std::string JitCache::lookup(uint64_t key) {
    if (!enabled()) return "";
    const fs::path p = fs::path(dir()) / (hexKey(key) + ".so");
    std::error_code ec;
    if (!fs::exists(p, ec) || ec) return "";
    // Integrity check against the CRC sidecar written at store time: a
    // corrupted .so can still dlopen (bit flips in code pages, not ELF
    // headers), so "it loaded" is not proof the entry is intact. A mismatch
    // evicts the entry; the caller recompiles. Entries without a sidecar
    // (pre-CRC stores) keep the old dlopen-only validation.
    std::string want;
    if (slurp(fs::path(p.string() + ".crc"), want)) {
        std::string bytes;
        const unsigned long stored = std::strtoul(want.c_str(), nullptr, 16);
        if (!slurp(p, bytes) ||
            crc32(bytes.data(), bytes.size()) != static_cast<uint32_t>(stored)) {
            noteCorrupt();
            invalidate(key);
            return "";
        }
    }
    // Refresh the LRU stamp so hot entries survive eviction.
    fs::last_write_time(p, fs::file_time_type::clock::now(), ec);
    return p.string();
}

std::string JitCache::store(uint64_t key, const std::string& soPath, const std::string& tag) {
    if (!enabled()) return "";
    const fs::path d(dir());
    std::error_code ec;
    fs::create_directories(d, ec);
    if (ec) return "";

    const fs::path dst = d / (hexKey(key) + ".so");
    // Write-to-temp + rename: readers either see the old entry, no entry,
    // or the complete new one — never a half-copied .so. The temp name is
    // pid-unique so concurrent stores of the same key cannot collide.
    const fs::path tmp = d / format(".tmp-%s-%d", hexKey(key).c_str(),
                                    static_cast<int>(::getpid()));
    fs::copy_file(soPath, tmp, fs::copy_options::overwrite_existing, ec);
    if (ec) return "";
    fs::rename(tmp, dst, ec);
    if (ec) {
        fs::remove(tmp, ec);
        return "";
    }

    {
        // CRC sidecar: lookup() verifies the entry's bytes before serving
        // it, catching corruption that dlopen alone would not.
        std::string bytes;
        if (slurp(dst, bytes)) {
            std::ofstream crcOut(dst.string() + ".crc", std::ios::trunc);
            crcOut << format("%08x", crc32(bytes.data(), bytes.size()));
        }
    }
    {
        std::ofstream idx(d / "index.tsv", std::ios::app);
        std::error_code sec;
        idx << hexKey(key) << '\t' << tag << '\t' << fs::file_size(dst, sec) << '\n';
    }
    {
        std::lock_guard<std::mutex> lock(impl().m);
        ++impl().stats.stores;
    }
    enforceCap();
    // Fault injection happens after the sidecar is written, so an injected
    // corruption is exactly what lookup()'s CRC check is built to catch.
    if (fault::FaultPlan::active()) {
        fault::FaultPlan::instance().maybeCorruptCacheFile(dst.string());
    }
    return dst.string();
}

void JitCache::enforceCap() {
    const fs::path d(dir());
    const uint64_t cap = maxBytes();
    auto entries = scanEntries(d);
    uint64_t total = 0;
    for (const auto& e : entries) total += e.bytes;
    // Multi-process safety: an entry another wjd worker published moments
    // ago has not necessarily been dlopen()ed by its publisher yet, and
    // this process's scan is a stale snapshot. Entries younger than the
    // grace window are never unlinked (their bytes still count toward the
    // running total, so old entries are evicted first and harder).
    const auto grace =
        std::chrono::milliseconds(envMs("WJ_CACHE_EVICT_GRACE_MS", 0));
    const auto now = fs::file_time_type::clock::now();
    int64_t evicted = 0;
    for (const auto& e : entries) {
        if (total <= cap) break;
        if (grace.count() > 0 && e.mtime > now - grace) continue;
        std::error_code ec;
        if (fs::remove(e.path, ec) && !ec) {
            total -= e.bytes;
            ++evicted;
            std::error_code ec2;
            fs::remove(fs::path(e.path.string() + ".crc"), ec2);
        }
    }
    if (evicted) {
        std::lock_guard<std::mutex> lock(impl().m);
        impl().stats.evictions += evicted;
    }
}

JitCache::BuildLock& JitCache::BuildLock::operator=(BuildLock&& o) noexcept {
    if (this != &o) {
        release();
        state_ = o.state_;
        path_ = std::move(o.path_);
        o.state_ = State::Skipped;
        o.path_.clear();
    }
    return *this;
}

void JitCache::BuildLock::release() {
    if (state_ == State::Acquired && !path_.empty()) {
        std::error_code ec;
        fs::remove(fs::path(path_), ec);
    }
    path_.clear();
    if (state_ == State::Acquired) state_ = State::Skipped;
}

JitCache::BuildLock JitCache::lockForBuild(uint64_t key) {
    BuildLock out;
    if (!enabled() || envFlagOff("WJ_CACHE_LOCK")) return out;  // Skipped
    const fs::path d(dir());
    std::error_code ec;
    fs::create_directories(d, ec);
    if (ec) return out;
    const fs::path so = d / (hexKey(key) + ".so");
    const fs::path lockPath = d / (hexKey(key) + ".building");
    const int64_t timeoutMs = envMs("WJ_CACHE_LOCK_TIMEOUT_MS", 120000);
    const int64_t staleMs = envMs("WJ_CACHE_LOCK_STALE_MS", 120000);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
    for (;;) {
        // O_CREAT|O_EXCL is the atomic claim; the body records the holder
        // pid so waiters can detect a dead leader.
        const int fd = ::open(lockPath.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
        if (fd >= 0) {
            const std::string pid = format("%d\n", static_cast<int>(::getpid()));
            (void)!::write(fd, pid.data(), pid.size());
            ::close(fd);
            out.state_ = BuildLock::State::Acquired;
            out.path_ = lockPath.string();
            return out;
        }
        if (errno != EEXIST) return out;  // unusual fs error: Skipped
        // Someone else is building. Wait for the publish, stealing the
        // lock if the holder died (its pid is gone, or the lock is older
        // than the stale window — a SIGKILLed holder never cleans up).
        std::error_code ec2;
        if (fs::exists(so, ec2) && !ec2) {
            out.state_ = BuildLock::State::Published;
            return out;
        }
        std::ifstream in(lockPath);
        long long holderPid = 0;
        if (in >> holderPid; holderPid > 0 && holderPid != ::getpid()) {
            if (::kill(static_cast<pid_t>(holderPid), 0) == -1 && errno == ESRCH) {
                fs::remove(lockPath, ec2);
                continue;  // retry the claim immediately
            }
        }
        const auto mtime = fs::last_write_time(lockPath, ec2);
        if (!ec2 && mtime < fs::file_time_type::clock::now() -
                                std::chrono::milliseconds(staleMs)) {
            fs::remove(lockPath, ec2);
            continue;
        }
        if (std::chrono::steady_clock::now() >= deadline) return out;  // Skipped
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
}

void JitCache::invalidate(uint64_t key) {
    std::error_code ec;
    fs::remove(fs::path(dir()) / (hexKey(key) + ".so"), ec);
    fs::remove(fs::path(dir()) / (hexKey(key) + ".so.crc"), ec);
}

void JitCache::clearDisk() {
    const fs::path d(dir());
    std::error_code ec;
    for (const auto& de : fs::directory_iterator(d, ec)) {
        if (de.path().extension() == ".so" || de.path().extension() == ".crc" ||
            de.path().extension() == ".building" ||
            de.path().filename() == "index.tsv") {
            std::error_code ec2;
            fs::remove(de.path(), ec2);
        }
    }
}

uint64_t JitCache::diskBytes() const {
    uint64_t total = 0;
    for (const auto& e : scanEntries(dir())) total += e.bytes;
    return total;
}

std::shared_ptr<NativeModule> JitCache::findLoaded(uint64_t key) {
    if (!enabled()) return nullptr;
    std::lock_guard<std::mutex> lock(impl().m);
    auto it = impl().loaded.find(key);
    if (it == impl().loaded.end()) return nullptr;
    return it->second.lock();
}

void JitCache::registerLoaded(uint64_t key, const std::shared_ptr<NativeModule>& mod) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(impl().m);
    impl().loaded[key] = mod;
}

void JitCache::clearLoaded() {
    std::lock_guard<std::mutex> lock(impl().m);
    impl().loaded.clear();
}

CacheStats JitCache::stats() const {
    std::lock_guard<std::mutex> lock(impl().m);
    return impl().stats;
}

void JitCache::resetStats() {
    std::lock_guard<std::mutex> lock(impl().m);
    impl().stats = CacheStats{};
}

void JitCache::noteMiss(double lookupSeconds) {
    std::lock_guard<std::mutex> lock(impl().m);
    ++impl().stats.misses;
    impl().stats.lookupSeconds += lookupSeconds;
}

void JitCache::noteMemoryHit() {
    std::lock_guard<std::mutex> lock(impl().m);
    ++impl().stats.memoryHits;
}

void JitCache::noteDiskHit(double lookupSeconds) {
    std::lock_guard<std::mutex> lock(impl().m);
    ++impl().stats.diskHits;
    impl().stats.lookupSeconds += lookupSeconds;
}

void JitCache::noteCorrupt() {
    std::lock_guard<std::mutex> lock(impl().m);
    ++impl().stats.corrupt;
}

void JitCache::noteCrossJoin() {
    std::lock_guard<std::mutex> lock(impl().m);
    ++impl().stats.crossJoins;
}

} // namespace wj
