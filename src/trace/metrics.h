// Process-wide counters and histograms registry (the tracer's sidecar).
//
// Spans answer "where did the time go"; metrics answer "how much work was
// done": cache hits, bytes by collective channel, pool dispatches,
// interpreter fallbacks, checkpoint bytes. Counters are plain atomics and
// always on (same cost class as MiniMPI's existing CommStats fields);
// registration is a one-time name lookup that call sites amortize with a
// static local reference:
//
//     static auto& c = trace::Metrics::instance().counter("comm.bytes.p2p");
//     c.add(bytes);
//
// The registry exports as JSON — written as "<trace>.metrics.json" beside
// every trace flush — and is queryable in-process via snapshot()
// (JitCode::metrics() surfaces it to paper-API clients).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wj::trace {

/// Monotonic event/volume counter.
class Counter {
public:
    void add(int64_t delta) noexcept { v_.fetch_add(delta, std::memory_order_relaxed); }
    void inc() noexcept { add(1); }
    int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
    void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<int64_t> v_{0};
};

/// Power-of-two-bucket histogram of a nonnegative int64 sample (bucket i
/// counts samples in [2^(i-1), 2^i), bucket 0 counts zeros), plus
/// count/sum/min/max. Lock-free; merges races benignly (relaxed atomics).
class Histogram {
public:
    static constexpr int kBuckets = 64;

    void observe(int64_t sample) noexcept;

    int64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
    int64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
    int64_t min() const noexcept;  ///< INT64_MAX when empty
    int64_t max() const noexcept;
    int64_t bucket(int i) const noexcept { return buckets_[i].load(std::memory_order_relaxed); }

    void reset() noexcept;

private:
    std::atomic<int64_t> count_{0};
    std::atomic<int64_t> sum_{0};
    std::atomic<int64_t> min_{INT64_MAX};
    std::atomic<int64_t> max_{INT64_MIN};
    std::atomic<int64_t> buckets_[kBuckets] = {};
};

/// Point-in-time view of one metric (Metrics::snapshot()).
struct MetricValue {
    std::string name;
    int64_t value = 0;        ///< counter value, or histogram count
    bool isHistogram = false;
    int64_t sum = 0, min = 0, max = 0;  ///< histogram-only
};

class Metrics {
public:
    static Metrics& instance();

    /// Finds or creates; the returned reference is stable forever.
    Counter& counter(const std::string& name);
    Histogram& histogram(const std::string& name);

    /// Every registered metric, sorted by name.
    std::vector<MetricValue> snapshot() const;

    /// {"counters": {...}, "histograms": {...}} — the flush sidecar.
    std::string toJson() const;

    /// Zeroes every metric (registrations survive — references stay valid).
    void reset();

private:
    Metrics() = default;
    struct Impl;
    Impl& impl() const;
};

} // namespace wj::trace
