#include "trace/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "trace/metrics.h"

namespace wj::trace {

namespace {

// The global on/off flag checked by every Span constructor. Kept at
// namespace scope (not inside Impl) so enabled() stays a single load with
// no indirection through instance().
std::atomic<bool> g_enabled{false};

// MiniMPI rank tag for the calling thread. Plain thread_local: only the
// owning thread reads/writes it.
thread_local int t_rank = -1;

/// One thread's span storage: a single-writer ring. The owning thread is
/// the only writer; readers (snapshot at quiesced points) acquire `count`
/// to see every slot the release in push() published.
struct ThreadBuf {
    explicit ThreadBuf(int tid) : tid(tid) {}

    void push(const SpanRec& rec) noexcept {
        uint64_t n = count.load(std::memory_order_relaxed);
        slots[n % Tracer::kRingCapacity] = rec;
        count.store(n + 1, std::memory_order_release);
    }

    const int tid;
    std::atomic<uint64_t> count{0};  ///< total ever pushed (wraps the ring)
    std::vector<SpanRec> slots{Tracer::kRingCapacity};
};

} // namespace

struct Tracer::Impl {
    // Buffers are heap-allocated and never freed: a thread may exit while
    // its spans are still waiting to be flushed, and Span::record() must
    // never race with deallocation.
    std::mutex mu;                                     // registry + path + intern
    std::vector<std::unique_ptr<ThreadBuf>> buffers;   // all threads, ever
    std::string path;
    bool armed = false;        // enable() was called with a destination
    bool atExitRegistered = false;
    std::unordered_set<std::string> interned;

    ThreadBuf& bufferForThisThread() {
        thread_local ThreadBuf* t_buf = nullptr;
        if (!t_buf) {
            std::lock_guard<std::mutex> lk(mu);
            buffers.push_back(
                std::make_unique<ThreadBuf>(static_cast<int>(buffers.size())));
            t_buf = buffers.back().get();
        }
        return *t_buf;
    }
};

Tracer::Impl& Tracer::impl() const {
    static Impl* impl = new Impl();  // leaked: usable during at-exit flush
    return *impl;
}

Tracer& Tracer::instance() {
    static Tracer tracer;
    // Arm from the environment exactly once, on first use.
    static const bool envArmed = [&] {
        const char* p = std::getenv("WJ_TRACE");
        if (p && *p) tracer.enable(p);
        return true;
    }();
    (void)envArmed;
    return tracer;
}

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void setThreadRank(int rank) noexcept { t_rank = rank; }
int threadRank() noexcept { return t_rank; }

const char* intern(const std::string& s) {
    Tracer::Impl& im = Tracer::instance().impl();
    std::lock_guard<std::mutex> lk(im.mu);
    return im.interned.insert(s).first->c_str();  // node-stable
}

void Span::record() noexcept {
    // The tracer may have been disabled between construction and now;
    // record anyway — the span was started under an enabled tracer and
    // dropping it here would truncate enclosing timelines mid-run.
    SpanRec rec;
    rec.name = name_;
    rec.cat = cat_;
    rec.startNs = startNs_;
    rec.durNs = nowNs() - startNs_;
    rec.rank = t_rank;
    for (int i = 0; i < 3; ++i) { rec.argKey[i] = k_[i]; rec.argVal[i] = v_[i]; }
    ThreadBuf& buf = Tracer::instance().impl().bufferForThisThread();
    rec.tid = buf.tid;
    buf.push(rec);
}

void instant(const char* cat, const char* name,
             const char* k0, int64_t v0,
             const char* k1, int64_t v1,
             const char* k2, int64_t v2) {
    if (!enabled()) return;
    SpanRec rec;
    rec.name = name;
    rec.cat = cat;
    rec.startNs = nowNs();
    rec.durNs = -1;
    rec.rank = t_rank;
    rec.argKey[0] = k0; rec.argVal[0] = v0;
    rec.argKey[1] = k1; rec.argVal[1] = v1;
    rec.argKey[2] = k2; rec.argVal[2] = v2;
    ThreadBuf& buf = Tracer::instance().impl().bufferForThisThread();
    rec.tid = buf.tid;
    buf.push(rec);
}

void Tracer::enable(const std::string& path) {
    Impl& im = impl();
    {
        std::lock_guard<std::mutex> lk(im.mu);
        im.path = path;
        im.armed = !path.empty();
        if (im.armed && !im.atExitRegistered) {
            im.atExitRegistered = true;
            std::atexit([] { Tracer::instance().flushIfArmed(); });
        }
    }
    g_enabled.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { g_enabled.store(false, std::memory_order_relaxed); }

std::string Tracer::path() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    return im.path;
}

void Tracer::reset() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    for (auto& b : im.buffers) b->count.store(0, std::memory_order_relaxed);
}

int64_t Tracer::spansRecorded() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    int64_t n = 0;
    for (auto& b : im.buffers)
        n += static_cast<int64_t>(b->count.load(std::memory_order_acquire));
    return n;
}

int64_t Tracer::spansDropped() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    int64_t n = 0;
    for (auto& b : im.buffers) {
        uint64_t c = b->count.load(std::memory_order_acquire);
        if (c > kRingCapacity) n += static_cast<int64_t>(c - kRingCapacity);
    }
    return n;
}

int64_t Tracer::buffersCreated() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    return static_cast<int64_t>(im.buffers.size());
}

std::vector<SpanRec> Tracer::snapshot() const {
    Impl& im = impl();
    std::vector<SpanRec> out;
    {
        std::lock_guard<std::mutex> lk(im.mu);
        for (auto& b : im.buffers) {
            uint64_t c = b->count.load(std::memory_order_acquire);
            uint64_t live = std::min<uint64_t>(c, kRingCapacity);
            // Oldest surviving span first: when wrapped, the slot at
            // count % capacity is the oldest.
            uint64_t start = c - live;
            for (uint64_t i = 0; i < live; ++i)
                out.push_back(b->slots[(start + i) % kRingCapacity]);
        }
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SpanRec& a, const SpanRec& b) {
                         return a.startNs < b.startNs;
                     });
    return out;
}

namespace {

void appendJsonEscaped(std::string& out, const char* s) {
    for (; *s; ++s) {
        char c = *s;
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
}

} // namespace

std::string Tracer::toJson() const {
    std::vector<SpanRec> spans = snapshot();

    int64_t epochNs = 0;
    if (!spans.empty()) epochNs = spans.front().startNs;  // sorted by start

    // Which rank pids appear? pid = rank + 1 (host rank -1 -> pid 0).
    std::vector<int> pids;
    for (const SpanRec& s : spans) {
        int pid = s.rank + 1;
        if (std::find(pids.begin(), pids.end(), pid) == pids.end())
            pids.push_back(pid);
    }
    std::sort(pids.begin(), pids.end());

    std::string out;
    out.reserve(spans.size() * 128 + 256);
    out += "{\"traceEvents\":[\n";
    bool first = true;
    for (int pid : pids) {
        if (!first) out += ",\n";
        first = false;
        out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":";
        out += std::to_string(pid);
        out += ",\"tid\":0,\"args\":{\"name\":\"";
        out += pid == 0 ? "host" : "rank " + std::to_string(pid - 1);
        out += "\"}}";
    }
    for (const SpanRec& s : spans) {
        if (!first) out += ",\n";
        first = false;
        // Trace-event timestamps are microseconds; keep sub-µs precision by
        // emitting three decimals.
        int64_t tsNs = s.startNs - epochNs;
        char num[32];
        out += "{\"ph\":\"";
        out += s.durNs < 0 ? 'i' : 'X';
        out += "\",\"name\":\"";
        appendJsonEscaped(out, s.name ? s.name : "?");
        out += "\",\"cat\":\"";
        appendJsonEscaped(out, s.cat ? s.cat : "?");
        out += "\",\"ts\":";
        std::snprintf(num, sizeof num, "%lld.%03d",
                      static_cast<long long>(tsNs / 1000),
                      static_cast<int>(tsNs % 1000));
        out += num;
        if (s.durNs < 0) {
            out += ",\"s\":\"t\"";
        } else {
            out += ",\"dur\":";
            std::snprintf(num, sizeof num, "%lld.%03d",
                          static_cast<long long>(s.durNs / 1000),
                          static_cast<int>(s.durNs % 1000));
            out += num;
        }
        out += ",\"pid\":";
        out += std::to_string(s.rank + 1);
        out += ",\"tid\":";
        out += std::to_string(s.tid);
        bool haveArgs = false;
        for (int i = 0; i < 3; ++i) {
            if (!s.argKey[i]) continue;
            out += haveArgs ? "," : ",\"args\":{";
            haveArgs = true;
            out += '"';
            appendJsonEscaped(out, s.argKey[i]);
            out += "\":";
            out += std::to_string(s.argVal[i]);
        }
        if (haveArgs) out += '}';
        out += '}';
    }
    out += "\n]}\n";
    return out;
}

bool Tracer::flush() const {
    std::string dest = path();
    if (dest.empty()) return false;
    {
        std::ofstream f(dest, std::ios::trunc);
        if (!f) return false;
        f << toJson();
    }
    std::ofstream m(dest + ".metrics.json", std::ios::trunc);
    if (m) m << Metrics::instance().toJson();
    return true;
}

bool Tracer::flushIfArmed() const {
    Impl& im = impl();
    {
        std::lock_guard<std::mutex> lk(im.mu);
        if (!im.armed) return false;
    }
    return flush();
}

namespace {

/// Reads a trace file and returns the bare contents of its traceEvents
/// array (no brackets, no envelope), or empty when absent/empty.
std::string readEventsBody(const std::string& path) {
    std::ifstream f(path);
    if (!f) return "";
    std::string text((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
    const size_t open = text.find('[');
    const size_t close = text.rfind(']');
    if (open == std::string::npos || close == std::string::npos || close <= open) return "";
    std::string body = text.substr(open + 1, close - open - 1);
    const size_t first = body.find_first_not_of(" \t\r\n,");
    if (first == std::string::npos) return "";
    const size_t last = body.find_last_not_of(" \t\r\n,");
    return body.substr(first, last - first + 1);
}

} // namespace

bool mergeProcessTraces(const std::string& dest, const std::vector<std::string>& sources) {
    std::string merged = readEventsBody(dest);
    for (const std::string& src : sources) {
        std::string body = readEventsBody(src);
        if (!body.empty()) {
            if (!merged.empty()) merged += ",\n";
            merged += body;
        }
        std::remove(src.c_str());
    }
    std::ofstream f(dest, std::ios::trunc);
    if (!f) return false;
    f << "{\"traceEvents\":[\n" << merged << "\n]}\n";
    return true;
}

} // namespace wj::trace
