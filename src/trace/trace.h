// Span tracing for every WootinC layer (the observability substrate).
//
// The paper evaluates WootinJ by timing whole runs; the reproduction has
// many more moving parts — async JIT + compile cache, MiniMPI collectives,
// the thread pool, checkpoint/restart — whose costs are invisible inside an
// end-to-end number. The tracer turns a run into an explainable timeline:
// every instrumented operation records a span (name, category, start,
// duration, rank, thread, up to three integer args) and the merged result
// exports as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing.
//
// Cost model (the contract tests/test_trace.cpp enforces):
//   * DISABLED (the default): constructing a Span is ONE relaxed atomic
//     load and a branch. No allocation, no clock read, no buffer touch.
//     Instrumentation can therefore live on real hot paths (every MiniMPI
//     message, every pool dispatch).
//   * ENABLED: each span is two steady_clock reads plus one record written
//     into a per-thread lock-free ring buffer (single writer — the owning
//     thread; no lock, no allocation after the buffer exists). When a ring
//     wraps, the OLDEST spans are overwritten and counted as dropped —
//     tracing never blocks and never grows without bound.
//
// Enabling:
//   * WJ_TRACE=<file> in the environment arms the tracer at first use and
//     registers an at-exit flush to <file> (+ a "<file>.metrics.json"
//     sidecar, see metrics.h);
//   * Tracer::instance().enable(path) does the same programmatically
//     (wjc --trace, bench --trace, tests);
//   * MiniMPI's World::run flushes at exit of every run, so a crashing
//     multi-rank program still leaves a trace of what it did.
//
// Rank attribution: spans carry the MiniMPI rank of the recording thread
// (set by World::run via setThreadRank; -1 = host/untagged). The exporter
// maps rank r to Chrome pid r+1 (pid 0 = host) and emits process_name
// metadata, so Perfetto groups the timeline per rank.
//
// Span names and categories must be string literals or strings interned
// with trace::intern() — records outlive local std::strings.
//
// All span timestamps come from wj::nowNs() (support/timer.h): the same
// steady_clock the bench Timers use, so trace durations and bench numbers
// agree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/timer.h"

namespace wj::trace {

/// Categories used by the built-in instrumentation (any literal works):
///   "jit"    translation, cache lookup, external cc, dlopen, invoke
///   "comm"   MiniMPI sends/recvs/collectives (args: peer, tag, bytes)
///   "pool"   ThreadPool dispatches and per-chunk worker execution
///   "interp" interpreter entry calls
///   "gpu"    GpuSim kernel launches
///   "ckpt"   checkpoint save/load
///   "fault"  injected-fault instants

/// One recorded span (POD — lives in the per-thread ring).
struct SpanRec {
    const char* name = nullptr;  ///< literal or interned
    const char* cat = nullptr;   ///< literal or interned
    int64_t startNs = 0;
    int64_t durNs = 0;           ///< -1 for an instant event
    int32_t rank = -1;           ///< MiniMPI rank; -1 = host
    int32_t tid = 0;             ///< small per-thread id (registration order)
    const char* argKey[3] = {nullptr, nullptr, nullptr};
    int64_t argVal[3] = {0, 0, 0};
};

/// True when spans are being recorded. The ONLY check on the disabled hot
/// path: one relaxed atomic load.
bool enabled() noexcept;

/// Interns a dynamic string (stable for process lifetime) so it can be used
/// as a span name. Literals do not need interning.
const char* intern(const std::string& s);

/// Tags the calling thread's spans with a MiniMPI rank (-1 clears).
void setThreadRank(int rank) noexcept;
int threadRank() noexcept;

/// Records an instant event (a vertical tick in Perfetto).
void instant(const char* cat, const char* name,
             const char* k0 = nullptr, int64_t v0 = 0,
             const char* k1 = nullptr, int64_t v1 = 0,
             const char* k2 = nullptr, int64_t v2 = 0);

/// RAII span: construction stamps the start, destruction records. When the
/// tracer is disabled, construction is a single atomic check and the
/// destructor does nothing.
class Span {
public:
    Span(const char* cat, const char* name,
         const char* k0 = nullptr, int64_t v0 = 0,
         const char* k1 = nullptr, int64_t v1 = 0,
         const char* k2 = nullptr, int64_t v2 = 0) noexcept {
        if (!enabled()) return;
        armed_ = true;
        cat_ = cat;
        name_ = name;
        k_[0] = k0; k_[1] = k1; k_[2] = k2;
        v_[0] = v0; v_[1] = v1; v_[2] = v2;
        startNs_ = nowNs();
    }
    ~Span() { if (armed_) record(); }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Sets/overwrites arg slot `i` (0..2) after construction — for values
    /// only known at completion (e.g. the actual source of an ANY recv).
    void arg(int i, const char* key, int64_t val) noexcept {
        if (armed_ && i >= 0 && i < 3) { k_[i] = key; v_[i] = val; }
    }

    /// Records now instead of at scope exit — for spans whose logical end
    /// precedes the enclosing scope's (e.g. a lookup that falls through to
    /// a compile). Idempotent; the destructor becomes a no-op.
    void end() noexcept {
        if (armed_) { record(); armed_ = false; }
    }

private:
    void record() noexcept;

    bool armed_ = false;
    const char* cat_ = nullptr;
    const char* name_ = nullptr;
    const char* k_[3] = {nullptr, nullptr, nullptr};
    int64_t v_[3] = {0, 0, 0};
    int64_t startNs_ = 0;
};

class Tracer {
public:
    /// Spans each thread's ring can hold before wrapping (oldest dropped).
    static constexpr size_t kRingCapacity = 1 << 14;

    /// Process-wide tracer. First access arms it from $WJ_TRACE (if set).
    static Tracer& instance();

    /// Arms recording and sets the flush destination. Registers an at-exit
    /// flush once per process. Empty path records without a destination
    /// (tests use snapshot()/toJson() directly).
    void enable(const std::string& path);

    /// Stops recording (buffers and their contents are kept).
    void disable();

    bool isEnabled() const noexcept { return enabled(); }
    std::string path() const;

    /// Drops every recorded span and resets the counters (tests).
    void reset();

    // ---- observability (the overhead-guard tests assert on these)
    int64_t spansRecorded() const;   ///< total ever recorded (incl. dropped)
    int64_t spansDropped() const;    ///< overwritten by ring wraparound
    int64_t buffersCreated() const;  ///< per-thread rings ever allocated

    /// Merged snapshot of every thread's ring, sorted by start time.
    /// Callers must quiesce recording threads first (flush points do).
    std::vector<SpanRec> snapshot() const;

    /// Chrome trace-event JSON of snapshot() (+ process_name metadata),
    /// timestamps normalized to the earliest span.
    std::string toJson() const;

    /// Writes toJson() to path() and the metrics registry sidecar to
    /// "<path>.metrics.json". No-op (returns false) without a path.
    bool flush() const;

    /// flush() only when armed by enable()/$WJ_TRACE with a destination —
    /// the World::run-exit hook.
    bool flushIfArmed() const;

private:
    Tracer() = default;
    struct Impl;
    Impl& impl() const;
    friend class Span;
    friend const char* intern(const std::string&);
    friend void instant(const char*, const char*, const char*, int64_t,
                        const char*, int64_t, const char*, int64_t);
};

/// Merges the Chrome trace-event files in `sources` into `dest` (also a
/// trace file, typically the launching process's own flush): event arrays
/// are concatenated into one envelope — the pid fields are already
/// rank-distinct, so Chrome renders one lane per rank. Consumed source
/// files are deleted; their ".metrics.json" sidecars are left in place.
/// Returns false when dest cannot be read or written.
bool mergeProcessTraces(const std::string& dest, const std::vector<std::string>& sources);

} // namespace wj::trace
