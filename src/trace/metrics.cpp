#include "trace/metrics.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>

namespace wj::trace {

void Histogram::observe(int64_t sample) noexcept {
    if (sample < 0) sample = 0;
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    int64_t prev = min_.load(std::memory_order_relaxed);
    while (sample < prev &&
           !min_.compare_exchange_weak(prev, sample, std::memory_order_relaxed)) {
    }
    prev = max_.load(std::memory_order_relaxed);
    while (sample > prev &&
           !max_.compare_exchange_weak(prev, sample, std::memory_order_relaxed)) {
    }
    int b = 0;
    if (sample > 0) b = 64 - __builtin_clzll(static_cast<uint64_t>(sample));
    if (b >= kBuckets) b = kBuckets - 1;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
}

int64_t Histogram::min() const noexcept { return min_.load(std::memory_order_relaxed); }
int64_t Histogram::max() const noexcept { return max_.load(std::memory_order_relaxed); }

void Histogram::reset() noexcept {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(INT64_MAX, std::memory_order_relaxed);
    max_.store(INT64_MIN, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

struct Metrics::Impl {
    // std::map: stable node addresses (references handed out live forever)
    // and already name-sorted for snapshot()/toJson().
    std::mutex mu;
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Metrics::Impl& Metrics::impl() const {
    static Impl* impl = new Impl();  // leaked: usable during at-exit flush
    return *impl;
}

Metrics& Metrics::instance() {
    static Metrics m;
    return m;
}

Counter& Metrics::counter(const std::string& name) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    auto& slot = im.counters[name];
    if (!slot) slot = std::make_unique<Counter>();
    return *slot;
}

Histogram& Metrics::histogram(const std::string& name) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    auto& slot = im.histograms[name];
    if (!slot) slot = std::make_unique<Histogram>();
    return *slot;
}

std::vector<MetricValue> Metrics::snapshot() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    std::vector<MetricValue> out;
    out.reserve(im.counters.size() + im.histograms.size());
    for (const auto& [name, c] : im.counters) {
        MetricValue v;
        v.name = name;
        v.value = c->value();
        out.push_back(std::move(v));
    }
    for (const auto& [name, h] : im.histograms) {
        MetricValue v;
        v.name = name;
        v.isHistogram = true;
        v.value = h->count();
        v.sum = h->sum();
        v.min = h->count() ? h->min() : 0;
        v.max = h->count() ? h->max() : 0;
        out.push_back(std::move(v));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
    return out;
}

std::string Metrics::toJson() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : im.counters) {
        out << (first ? "\n" : ",\n") << "    \"" << name << "\": " << c->value();
        first = false;
    }
    out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : im.histograms) {
        int64_t n = h->count();
        out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": " << n
            << ", \"sum\": " << h->sum() << ", \"min\": " << (n ? h->min() : 0)
            << ", \"max\": " << (n ? h->max() : 0) << ", \"buckets\": [";
        // Trailing zero buckets are noise; stop at the last nonzero one.
        int last = Histogram::kBuckets - 1;
        while (last > 0 && h->bucket(last) == 0) --last;
        for (int i = 0; i <= last; ++i) out << (i ? ", " : "") << h->bucket(i);
        out << "]}";
        first = false;
    }
    out << (first ? "" : "\n  ") << "}\n}\n";
    return out.str();
}

void Metrics::reset() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lk(im.mu);
    for (auto& [name, c] : im.counters) c->reset();
    for (auto& [name, h] : im.histograms) h->reset();
}

} // namespace wj::trace
