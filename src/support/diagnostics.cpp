#include "support/diagnostics.h"

#include <cstdio>
#include <cstdlib>

namespace wj {

std::string RuleViolationError::render(const std::vector<Violation>& vs) {
    std::string out = "coding-rule violations (" + std::to_string(vs.size()) + "):";
    for (const auto& v : vs) {
        out += "\n  " + v.str();
    }
    return out;
}

std::string AnalysisError::render(const std::vector<Violation>& vs) {
    std::string out = "static-analysis errors (" + std::to_string(vs.size()) + "):";
    for (const auto& v : vs) {
        out += "\n  " + v.str();
    }
    return out;
}

void panic(const std::string& msg) {
    std::fprintf(stderr, "wootinc internal error: %s\n", msg.c_str());
    std::abort();
}

} // namespace wj
