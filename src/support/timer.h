// Monotonic (steady_clock) timing utilities used by the JIT
// (compilation-time accounting, Table 3 of the paper), the benchmark
// harnesses, and the span tracer. Durations are immune to wall-clock
// adjustments; absolute values are meaningful only within one process.
#pragma once

#include <chrono>
#include <cstdint>

namespace wj {

/// Nanoseconds on the process's monotonic timeline — THE clock source for
/// every span timestamp (src/trace/) and, via Timer below, for every bench
/// measurement, so traces and bench numbers are directly comparable. The
/// epoch is steady_clock's (usually boot); the tracer normalizes at export.
inline int64_t nowNs() noexcept {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// Monotonic stopwatch. Construction starts it.
class Timer {
public:
    Timer() noexcept : start_(clock::now()) {}

    /// Restart the stopwatch.
    void reset() noexcept { start_ = clock::now(); }

    /// Elapsed seconds since construction or the last reset().
    double seconds() const noexcept {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Elapsed milliseconds.
    double millis() const noexcept { return seconds() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

/// Runs `fn` once and returns the wall time in seconds.
template <typename Fn>
double timeOnce(Fn&& fn) {
    Timer t;
    fn();
    return t.seconds();
}

/// Runs `fn` repeatedly until at least `minSeconds` elapsed (and at least
/// `minIters` iterations ran); returns seconds per iteration. This is the
/// measurement loop used by the figure benches for single-core kernel costs.
template <typename Fn>
double timePerIter(Fn&& fn, double minSeconds = 0.2, int minIters = 3) {
    // Warm-up: touch caches / fault pages once before measuring.
    fn();
    int iters = 0;
    Timer t;
    do {
        fn();
        ++iters;
    } while (t.seconds() < minSeconds || iters < minIters);
    return t.seconds() / iters;
}

} // namespace wj
