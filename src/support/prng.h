// Deterministic pseudo-random number generation.
//
// All workload generators (grids, matrices) seed from explicit values so
// every test and benchmark is reproducible run-to-run — the same discipline
// the paper needs for its Generator components (Listing 3's PhysDataGen
// takes an explicit seed).
#pragma once

#include <cstdint>

namespace wj {

/// SplitMix64: tiny, fast, high-quality 64-bit generator. Used both from
/// host C++ and mirrored by the wjrt_rng_* runtime intrinsics so that
/// interpreted and JIT-translated generators produce identical data.
class SplitMix64 {
public:
    explicit SplitMix64(uint64_t seed) noexcept : state_(seed) {}

    uint64_t next() noexcept {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /// Uniform in [0, 1).
    double nextDouble() noexcept {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /// Uniform float in [0, 1).
    float nextFloat() noexcept {
        return static_cast<float>(next() >> 40) * 0x1.0p-24f;
    }

    /// Uniform in [0, bound).
    uint64_t nextBelow(uint64_t bound) noexcept {
        return bound == 0 ? 0 : next() % bound;
    }

private:
    uint64_t state_;
};

} // namespace wj
