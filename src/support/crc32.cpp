#include "support/crc32.h"

namespace wj {

namespace {

struct Crc32Table {
    uint32_t t[256];
    Crc32Table() noexcept {
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1u) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
            }
            t[i] = c;
        }
    }
};

} // namespace

uint32_t crc32(const void* data, size_t n, uint32_t seed) noexcept {
    static const Crc32Table table;
    uint32_t c = seed ^ 0xffffffffu;
    const auto* p = static_cast<const uint8_t*>(data);
    for (size_t i = 0; i < n; ++i) {
        c = table.t[(c ^ p[i]) & 0xffu] ^ (c >> 8);
    }
    return c ^ 0xffffffffu;
}

} // namespace wj
