#include "support/prng.h"

// Header-only; TU anchors the library.
