#include "support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace wj {

std::string format(const char* fmt, ...) {
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out;
    if (n > 0) {
        out.resize(static_cast<size_t>(n));
        std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    }
    va_end(ap2);
    return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i != 0) out += sep;
        out += parts[i];
    }
    return out;
}

bool isIdentifier(const std::string& s) noexcept {
    if (s.empty()) return false;
    if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_')) return false;
    for (char c : s) {
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
    }
    return true;
}

std::string mangle(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 1);
    for (char c : s) {
        out += (std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
    }
    if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0]))) {
        out.insert(out.begin(), 'n');
    }
    if (out.empty()) out.push_back('_');
    return out;
}

} // namespace wj
