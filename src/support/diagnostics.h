// Diagnostics: structured error reporting used across WootinC.
//
// The framework reports two classes of failure:
//   * UsageError   — the caller violated an API contract (programming error
//                    in the host program composing IR or invoking the JIT).
//   * RuleViolation — the translated code breaks one of the paper's coding
//                    rules (Section 3.2); carries the rule id and location.
//
// Both derive from WjError so call sites can catch the family.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

namespace wj {

/// Base class of all WootinC exceptions.
class WjError : public std::runtime_error {
public:
    explicit WjError(const std::string& what) : std::runtime_error(what) {}
};

/// Caller misused an API (malformed IR, unknown class, bad invoke args...).
class UsageError : public WjError {
public:
    explicit UsageError(const std::string& what) : WjError(what) {}
};

/// Runtime failure inside interpreted or translated code execution.
class ExecError : public WjError {
public:
    explicit ExecError(const std::string& what) : WjError(what) {}
};

/// One violation of the Section 3.2 coding rules, with enough context to fix it.
struct Violation {
    /// Which rule (1..8) or property ("strict-final", "semi-immutable") failed.
    std::string rule;
    /// Class::method (or Class alone) where the violation occurs.
    std::string where;
    /// Human-readable description of the offending construct.
    std::string detail;

    std::string str() const { return "[" + rule + "] " + where + ": " + detail; }
};

/// Thrown by the rule verifier and by the JIT when translated code does not
/// satisfy the coding rules. Aggregates every violation found in one pass.
class RuleViolationError : public WjError {
public:
    explicit RuleViolationError(std::vector<Violation> violations)
        : WjError(render(violations)), violations_(std::move(violations)) {}

    const std::vector<Violation>& violations() const noexcept { return violations_; }

private:
    static std::string render(const std::vector<Violation>& vs);
    std::vector<Violation> violations_;
};

/// Thrown by the dataflow-analysis passes (src/analysis/) when a method body
/// is statically unsound: a read of a possibly-uninitialized local, an array
/// access proven out of bounds, or a communication race. Reuses Violation as
/// the finding record (`rule` holds the pass name: "uninit", "bounds",
/// "halo-race", ...). Both jit() and the interpreter surface analysis
/// failures through this type.
class AnalysisError : public WjError {
public:
    explicit AnalysisError(std::vector<Violation> findings)
        : WjError(render(findings)), findings_(std::move(findings)) {}

    const std::vector<Violation>& findings() const noexcept { return findings_; }

private:
    static std::string render(const std::vector<Violation>& vs);
    std::vector<Violation> findings_;
};

/// Internal invariant check; aborts with a message when the framework itself
/// is inconsistent. Never triggered by user input alone.
[[noreturn]] void panic(const std::string& msg);

} // namespace wj
