#include "support/timer.h"

// Header-only today; the TU anchors the library and keeps the door open for
// non-inline additions (e.g. rdtsc calibration) without touching users.
