#include "support/scratch.h"

#include <cstdlib>
#include <unistd.h>

#include "support/diagnostics.h"

namespace wj {

std::string tempRoot() {
    const char* t = std::getenv("TMPDIR");
    return t && *t ? t : "/tmp";
}

std::string makeScratchDir(const std::string& prefix) {
    std::string tmpl = tempRoot() + "/" + prefix + ".XXXXXX";
    if (!mkdtemp(tmpl.data())) {
        throw UsageError("cannot create scratch directory under " + tempRoot() + " for " + prefix);
    }
    return tmpl;
}

} // namespace wj
