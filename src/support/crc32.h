// CRC-32 (the zlib/IEEE 802.3 polynomial, reflected form).
//
// Used as an end-to-end integrity check on state that survives a failure
// domain: checkpoint snapshots (src/fault/checkpoint.h) and on-disk compile
// cache entries (src/jit/cache.h), where "the bytes came back unchanged" is
// a correctness property, not an optimization.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wj {

/// CRC-32 of `n` bytes. `seed` is the running CRC for incremental use
/// (pass the previous return value to continue a checksum).
uint32_t crc32(const void* data, size_t n, uint32_t seed = 0) noexcept;

} // namespace wj
