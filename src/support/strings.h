// Small string helpers shared by the IR printer and the C code generator.
#pragma once

#include <string>
#include <vector>

namespace wj {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// True if `s` is a valid C identifier (also our IR identifier rule).
bool isIdentifier(const std::string& s) noexcept;

/// Mangles an arbitrary name into a C identifier fragment: non-alnum
/// characters become '_', a leading digit gains an 'n' prefix.
std::string mangle(const std::string& s);

} // namespace wj
