// Scratch / temp directory resolution shared by the JIT compile pipeline
// and the persistent compile cache — one definition of "where does
// WootinC put transient files" instead of per-module copies.
#pragma once

#include <string>

namespace wj {

/// $TMPDIR if set (the paper's clusters put scratch on fast local disks),
/// else /tmp. No trailing slash.
std::string tempRoot();

/// Creates a fresh private directory `<tempRoot()>/<prefix>.XXXXXX` via
/// mkdtemp and returns its path. Throws UsageError on failure.
std::string makeScratchDir(const std::string& prefix);

} // namespace wj
