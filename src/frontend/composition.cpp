#include "frontend/composition.h"

#include <vector>

#include "frontend/lexer.h"
#include "support/diagnostics.h"

namespace wj::frontend {

namespace {

/// Recursive-descent reader over the lexer's token stream: Ident '(' args ')'
/// where args are nested compositions or numeric literals.
class CompositionParser {
public:
    CompositionParser(Interp& in, const std::string& text) : in_(in), toks_(lex(text)) {}

    Value parse() {
        Value v = parseValue();
        if (!at(Tok::Eof)) err("trailing input after composition");
        return v;
    }

private:
    const Token& peek(size_t off = 0) const {
        const size_t i = pos_ + off;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    bool at(Tok k, size_t off = 0) const { return peek(off).kind == k; }
    Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
    [[noreturn]] void err(const std::string& m) const {
        throw UsageError("composition: " + m);
    }

    Value parseValue() {
        // wjd feeds attacker-controlled text through here; bound the
        // recursion so `A(A(A(...` and `----1` get a parse error, not a
        // stack overflow.
        if (++depth_ > 256) {
            --depth_;
            err("composition nesting too deep");
        }
        struct Pop {
            int& d;
            ~Pop() { --d; }
        } pop{depth_};
        if (at(Tok::Minus)) {
            take();
            Value v = parseValue();
            if (v.isI32()) return Value::ofI32(-v.asI32());
            if (v.isI64()) return Value::ofI64(-v.asI64());
            if (v.isF32()) return Value::ofF32(-v.asF32());
            if (v.isF64()) return Value::ofF64(-v.asF64());
            err("cannot negate an object");
        }
        if (at(Tok::IntLit)) return Value::ofI32(static_cast<int32_t>(take().ival));
        if (at(Tok::LongLit)) return Value::ofI64(take().ival);
        if (at(Tok::FloatLit)) return Value::ofF32(static_cast<float>(take().fval));
        if (at(Tok::DoubleLit)) return Value::ofF64(take().fval);
        if (!at(Tok::Ident)) err("expected a class name or literal");
        const std::string cls = take().text;
        if (cls == "true") return Value::ofBool(true);
        if (cls == "false") return Value::ofBool(false);
        if (!at(Tok::LParen)) err("expected '(' after " + cls);
        take();
        std::vector<Value> args;
        if (!at(Tok::RParen)) {
            args.push_back(parseValue());
            while (at(Tok::Comma)) {
                take();
                args.push_back(parseValue());
            }
        }
        if (!at(Tok::RParen)) err("expected ')'");
        take();
        return in_.instantiate(cls, std::move(args));
    }

    Interp& in_;
    std::vector<Token> toks_;
    size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

Value parseComposition(Interp& in, const std::string& text) {
    return CompositionParser(in, text).parse();
}

Value parseArgLiteral(const std::string& text) {
    auto toks = lex(text);
    bool neg = false;
    size_t i = 0;
    if (toks[i].kind == Tok::Minus) {
        neg = true;
        ++i;
    }
    const auto& t = toks[i];
    switch (t.kind) {
    case Tok::IntLit: return Value::ofI32(static_cast<int32_t>(neg ? -t.ival : t.ival));
    case Tok::LongLit: return Value::ofI64(neg ? -t.ival : t.ival);
    case Tok::FloatLit: return Value::ofF32(static_cast<float>(neg ? -t.fval : t.fval));
    case Tok::DoubleLit: return Value::ofF64(neg ? -t.fval : t.fval);
    case Tok::Ident:
        if (t.text == "true") return Value::ofBool(true);
        if (t.text == "false") return Value::ofBool(false);
        [[fallthrough]];
    default: throw UsageError("cannot parse argument literal: " + text);
    }
}

} // namespace wj::frontend
