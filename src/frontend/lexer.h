// Lexer for WJ source — the textual form of the restricted Java the paper's
// developers write. Token granularity follows Java: identifiers, keywords
// (contextual; the parser decides), int/long/float/double literals with
// Java suffixes, punctuation, and '@' annotations. '//' and '/* */'
// comments are skipped.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wj::frontend {

enum class Tok {
    Ident,      // foo  (also keywords; the parser matches by text)
    IntLit,     // 123
    LongLit,    // 123L
    FloatLit,   // 1.5f
    DoubleLit,  // 1.5 / 1e-3
    At,         // @
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi, Dot,
    Assign,     // =
    Plus, Minus, Star, Slash, Percent,
    Lt, Le, Gt, Ge, EqEq, NotEq,
    AndAnd, OrOr, Not,
    Question, Colon,
    Eof,
};

struct Token {
    Tok kind;
    std::string text;   // identifier text / literal spelling
    int64_t ival = 0;   // IntLit / LongLit
    double fval = 0;    // FloatLit / DoubleLit
    int line = 1;
    int col = 1;
};

/// Tokenizes `src`; throws UsageError with line/column on bad input.
std::vector<Token> lex(const std::string& src);

/// Printable token-kind name for diagnostics.
const char* tokName(Tok t) noexcept;

} // namespace wj::frontend
