// Parser for WJ source: the textual, Java-like form of the restricted
// language the paper's developers write (Listings 1, 3, 4). Grammar:
//
//   program     := classdecl*
//   classdecl   := "@WootinJ"? "final"? ("class" | "interface") IDENT
//                  ("extends" IDENT)? ("implements" IDENT ("," IDENT)*)?
//                  "{" member* "}"
//   member      := "static" "final" type IDENT "=" literal ";"
//                | "@Shared"? type IDENT ";"
//                | "@Global"? "static"? "abstract"? type IDENT "(" params ")"
//                  (block | ";")
//                | IDENT "(" params ")" block            -- constructor
//   stmt        := type IDENT "=" expr ";"
//                | lvalue "=" expr ";"                   -- local/field/array
//                | "if" "(" expr ")" block ("else" block)?
//                | "while" "(" expr ")" block
//                | "for" "(" type IDENT "=" expr ";" expr ";"
//                   IDENT "=" expr ")" block
//                | "return" expr? ";" | "super" "(" args ")" ";" | expr ";"
//   expr        := full Java-style precedence incl. ?: (the verifier, not
//                  the parser, rejects rule-breaking constructs)
//
// Intrinsics are written as in the paper: MPI.rank(), cuda.threadIdx.x(),
// Math.sqrt(v), WootinJ.free(a)... — resolved against the intrinsic table.
// `Cls.member` where Cls is a class declared in the same source refers to
// its static finals / static methods. Redeclarations of the builtin dim3 /
// CudaConfig classes are accepted and skipped, so printer output parses.
#pragma once

#include <string>

#include "ir/builder.h"

namespace wj::frontend {

/// Parses WJ source text, adding every class to `pb`.
/// Throws UsageError with line/column on syntax errors.
void parseInto(ProgramBuilder& pb, const std::string& src);

/// Convenience: parse a self-contained program and build it (validated).
Program parseProgram(const std::string& src);

} // namespace wj::frontend
