#include "frontend/lexer.h"

#include <cctype>
#include <cstdlib>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace wj::frontend {

namespace {

[[noreturn]] void lexErr(int line, int col, const std::string& msg) {
    throw UsageError(format("lex error at %d:%d: %s", line, col, msg.c_str()));
}

} // namespace

const char* tokName(Tok t) noexcept {
    switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "int literal";
    case Tok::LongLit: return "long literal";
    case Tok::FloatLit: return "float literal";
    case Tok::DoubleLit: return "double literal";
    case Tok::At: return "'@'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Comma: return "','";
    case Tok::Semi: return "';'";
    case Tok::Dot: return "'.'";
    case Tok::Assign: return "'='";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Star: return "'*'";
    case Tok::Slash: return "'/'";
    case Tok::Percent: return "'%'";
    case Tok::Lt: return "'<'";
    case Tok::Le: return "'<='";
    case Tok::Gt: return "'>'";
    case Tok::Ge: return "'>='";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::Not: return "'!'";
    case Tok::Question: return "'?'";
    case Tok::Colon: return "':'";
    case Tok::Eof: return "end of input";
    }
    return "?";
}

std::vector<Token> lex(const std::string& src) {
    std::vector<Token> out;
    size_t i = 0;
    int line = 1, col = 1;

    auto advance = [&](size_t n = 1) {
        for (size_t k = 0; k < n && i < src.size(); ++k) {
            if (src[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
            ++i;
        }
    };
    auto peek = [&](size_t off = 0) -> char {
        return i + off < src.size() ? src[i + off] : '\0';
    };
    int tokLine = 1, tokCol = 1;
    auto push = [&](Tok k, std::string text = "") {
        Token t;
        t.kind = k;
        t.text = std::move(text);
        t.line = tokLine;
        t.col = tokCol;
        out.push_back(std::move(t));
    };

    while (i < src.size()) {
        const char c = peek();
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }
        tokLine = line;
        tokCol = col;
        if (c == '/' && peek(1) == '/') {
            while (i < src.size() && peek() != '\n') advance();
            continue;
        }
        if (c == '/' && peek(1) == '*') {
            advance(2);
            while (i < src.size() && !(peek() == '*' && peek(1) == '/')) advance();
            if (i >= src.size()) lexErr(line, col, "unterminated comment");
            advance(2);
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string text;
            while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_') {
                text += peek();
                advance();
            }
            push(Tok::Ident, std::move(text));
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
            std::string text;
            bool isFloat = false;
            while (std::isdigit(static_cast<unsigned char>(peek()))) {
                text += peek();
                advance();
            }
            if (peek() == '.') {
                isFloat = true;
                text += '.';
                advance();
                while (std::isdigit(static_cast<unsigned char>(peek()))) {
                    text += peek();
                    advance();
                }
            }
            if (peek() == 'e' || peek() == 'E') {
                isFloat = true;
                text += peek();
                advance();
                if (peek() == '+' || peek() == '-') {
                    text += peek();
                    advance();
                }
                if (!std::isdigit(static_cast<unsigned char>(peek()))) {
                    lexErr(line, col, "malformed exponent");
                }
                while (std::isdigit(static_cast<unsigned char>(peek()))) {
                    text += peek();
                    advance();
                }
            }
            Token t;
            t.line = tokLine;
            t.col = tokCol;
            t.text = text;
            if (peek() == 'f' || peek() == 'F') {
                advance();
                t.kind = Tok::FloatLit;
                t.fval = std::strtod(text.c_str(), nullptr);
            } else if (peek() == 'L' || peek() == 'l') {
                advance();
                if (isFloat) lexErr(line, col, "'L' suffix on a floating literal");
                t.kind = Tok::LongLit;
                t.ival = std::strtoll(text.c_str(), nullptr, 10);
            } else if (isFloat) {
                t.kind = Tok::DoubleLit;
                t.fval = std::strtod(text.c_str(), nullptr);
            } else {
                t.kind = Tok::IntLit;
                t.ival = std::strtoll(text.c_str(), nullptr, 10);
            }
            out.push_back(std::move(t));
            continue;
        }
        switch (c) {
        case '@': push(Tok::At); advance(); continue;
        case '(': push(Tok::LParen); advance(); continue;
        case ')': push(Tok::RParen); advance(); continue;
        case '{': push(Tok::LBrace); advance(); continue;
        case '}': push(Tok::RBrace); advance(); continue;
        case '[': push(Tok::LBracket); advance(); continue;
        case ']': push(Tok::RBracket); advance(); continue;
        case ',': push(Tok::Comma); advance(); continue;
        case ';': push(Tok::Semi); advance(); continue;
        case '.': push(Tok::Dot); advance(); continue;
        case '+': push(Tok::Plus); advance(); continue;
        case '-': push(Tok::Minus); advance(); continue;
        case '*': push(Tok::Star); advance(); continue;
        case '/': push(Tok::Slash); advance(); continue;
        case '%': push(Tok::Percent); advance(); continue;
        case '?': push(Tok::Question); advance(); continue;
        case ':': push(Tok::Colon); advance(); continue;
        case '=':
            if (peek(1) == '=') {
                push(Tok::EqEq);
                advance(2);
            } else {
                push(Tok::Assign);
                advance();
            }
            continue;
        case '<':
            if (peek(1) == '=') {
                push(Tok::Le);
                advance(2);
            } else {
                push(Tok::Lt);
                advance();
            }
            continue;
        case '>':
            if (peek(1) == '=') {
                push(Tok::Ge);
                advance(2);
            } else {
                push(Tok::Gt);
                advance();
            }
            continue;
        case '!':
            if (peek(1) == '=') {
                push(Tok::NotEq);
                advance(2);
            } else {
                push(Tok::Not);
                advance();
            }
            continue;
        case '&':
            if (peek(1) == '&') {
                push(Tok::AndAnd);
                advance(2);
                continue;
            }
            lexErr(line, col, "bitwise '&' is not part of WJ source (use && on booleans)");
        case '|':
            if (peek(1) == '|') {
                push(Tok::OrOr);
                advance(2);
                continue;
            }
            lexErr(line, col, "bitwise '|' is not part of WJ source");
        default:
            lexErr(line, col, format("unexpected character '%c'", c));
        }
    }
    push(Tok::Eof);
    return out;
}

} // namespace wj::frontend
