// Composition expressions: the textual form of Listing 2's main method —
// nested constructor calls with numeric/boolean literal leaves, e.g.
//
//     PiEstimator(HashSampler())
//     StencilCPU3DDblB(Dif3DSolver(), DiffusionQuantity(0.4f, ...),
//                      FloatGridDblB(8,8,8), 42)
//
// wjc's --new flag and wjd's `new=` request field both carry one of these;
// parsing instantiates the object graph through the interpreter so the JIT
// receives a fully constructed receiver. Shared here so the CLI and the
// compile daemon agree on exactly one grammar.
#pragma once

#include <string>

#include "interp/interp.h"

namespace wj::frontend {

/// Parses one composition expression and instantiates it via `in`.
/// Throws UsageError on malformed input or unknown classes.
Value parseComposition(Interp& in, const std::string& text);

/// Parses one argument literal: "12" -> i32, "12L" -> i64, "1.5f" -> f32,
/// "1.5" -> f64, true/false -> bool (optionally '-'-negated).
/// Throws UsageError on anything else.
Value parseArgLiteral(const std::string& text);

} // namespace wj::frontend
