#include "frontend/parser.h"

#include <map>
#include <set>

#include "frontend/lexer.h"
#include "support/diagnostics.h"
#include "support/strings.h"

namespace wj::frontend {

using namespace wj::dsl;

namespace {

const std::set<std::string>& primKeywords() {
    static const std::set<std::string> k = {"boolean", "int", "long", "float", "double", "void"};
    return k;
}

/// Intrinsic surface-name table ("MPI.rank" -> Intrinsic::MpiRank).
const std::map<std::string, Intrinsic>& intrinsicNames() {
    static const std::map<std::string, Intrinsic> m = [] {
        std::map<std::string, Intrinsic> out;
        for (int i = 0; i < intrinsicCount(); ++i) {
            out.emplace(intrinsicSig(static_cast<Intrinsic>(i)).name, static_cast<Intrinsic>(i));
        }
        return out;
    }();
    return m;
}

/// True if some intrinsic name starts with `prefix` + ".".
bool isIntrinsicPrefix(const std::string& prefix) {
    auto it = intrinsicNames().lower_bound(prefix + ".");
    return it != intrinsicNames().end() && it->first.rfind(prefix + ".", 0) == 0;
}

class Parser {
public:
    Parser(ProgramBuilder& pb, const std::string& src) : pb_(pb), toks_(lex(src)) {
        // Pre-scan class names so `Cls.member` static references resolve
        // regardless of declaration order.
        for (size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (toks_[i].kind == Tok::Ident &&
                (toks_[i].text == "class" || toks_[i].text == "interface") &&
                toks_[i + 1].kind == Tok::Ident) {
                classNames_.insert(toks_[i + 1].text);
            }
        }
    }

    void run() {
        while (!at(Tok::Eof)) parseClass();
    }

private:
    // ------------------------------------------------------------- cursor
    const Token& peek(size_t off = 0) const {
        const size_t i = pos_ + off;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    bool at(Tok k, size_t off = 0) const { return peek(off).kind == k; }
    bool atIdent(const char* text, size_t off = 0) const {
        return at(Tok::Ident, off) && peek(off).text == text;
    }
    Token take() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
    [[noreturn]] void err(const std::string& msg) const {
        const Token& t = peek();
        throw UsageError(format("parse error at %d:%d: %s (found %s%s%s)", t.line, t.col,
                                msg.c_str(), tokName(t.kind), t.text.empty() ? "" : " ",
                                t.text.c_str()));
    }
    Token expect(Tok k, const char* what) {
        if (!at(k)) err(std::string("expected ") + what);
        return take();
    }

    // The grammar is parsed by recursive descent, so adversarial input like
    // ten thousand '(' or '-' characters would otherwise translate directly
    // into native stack depth. Every self-recursive entry point (statements,
    // ternary re-entry, unary chains) holds one of these; past the limit the
    // input is rejected with a normal parse error instead of a stack
    // overflow. 256 is far beyond any program the printer round-trips.
    struct DepthGuard {
        explicit DepthGuard(const Parser& p) : p_(p) {
            if (++p_.depth_ > kMaxDepth) {
                --p_.depth_;
                p_.err("expression or block nesting too deep");
            }
        }
        ~DepthGuard() { --p_.depth_; }
        const Parser& p_;
    };
    static constexpr int kMaxDepth = 256;
    void expectIdent(const char* text) {
        if (!atIdent(text)) err(std::string("expected '") + text + "'");
        take();
    }

    // -------------------------------------------------------------- types
    bool atTypeStart() const {
        return at(Tok::Ident) &&
               (primKeywords().count(peek().text) || classNames_.count(peek().text) ||
                knownBuiltinClass(peek().text));
    }
    static bool knownBuiltinClass(const std::string& n) {
        return n == "dim3" || n == "CudaConfig";
    }

    Type parseType() {
        const Token t = expect(Tok::Ident, "a type name");
        Type base = Type::voidTy();
        if (t.text == "boolean") base = Type::boolean();
        else if (t.text == "int") base = Type::i32();
        else if (t.text == "long") base = Type::i64();
        else if (t.text == "float") base = Type::f32();
        else if (t.text == "double") base = Type::f64();
        else if (t.text == "void") base = Type::voidTy();
        else base = Type::cls(t.text);
        while (at(Tok::LBracket) && at(Tok::RBracket, 1)) {
            take();
            take();
            base = Type::array(base);
        }
        return base;
    }

    // ------------------------------------------------------------ classes
    void parseClass() {
        bool wootinj = false;
        bool isFinal = false;
        while (at(Tok::At) || atIdent("final")) {
            if (at(Tok::At)) {
                take();
                const Token a = expect(Tok::Ident, "annotation name");
                if (a.text != "WootinJ") err("unknown class annotation @" + a.text);
                wootinj = true;
            } else {
                take();
                isFinal = true;
            }
        }
        bool isInterface = false;
        if (atIdent("interface")) {
            take();
            isInterface = true;
        } else {
            expectIdent("class");
        }
        const Token name = expect(Tok::Ident, "class name");

        // The printer emits the builtin dim3/CudaConfig declarations; accept
        // and skip them (ProgramBuilder adds its own copies at build()).
        const bool skip = knownBuiltinClass(name.text);

        std::string superName;
        std::vector<std::string> interfaces;
        if (atIdent("extends")) {
            take();
            superName = expect(Tok::Ident, "superclass name").text;
        }
        if (atIdent("implements")) {
            take();
            interfaces.push_back(expect(Tok::Ident, "interface name").text);
            while (at(Tok::Comma)) {
                take();
                interfaces.push_back(expect(Tok::Ident, "interface name").text);
            }
        }
        expect(Tok::LBrace, "'{'");
        if (skip) {
            int depth = 1;
            while (depth > 0 && !at(Tok::Eof)) {
                if (at(Tok::LBrace)) ++depth;
                if (at(Tok::RBrace)) --depth;
                take();
            }
            return;
        }
        ClassBuilder& cb = pb_.cls(name.text);
        if (!wootinj) cb.notWootinJ();
        if (isFinal) cb.finalClass();
        if (isInterface) cb.interfaceClass();
        if (!superName.empty()) cb.extends(superName);
        for (auto& i : interfaces) cb.implements(i);
        className_ = name.text;

        while (!at(Tok::RBrace)) parseMember(cb);
        take();  // '}'
    }

    void parseMember(ClassBuilder& cb) {
        bool global = false, shared = false;
        while (at(Tok::At)) {
            take();
            const Token a = expect(Tok::Ident, "annotation name");
            if (a.text == "Global") global = true;
            else if (a.text == "Shared") shared = true;
            else err("unknown member annotation @" + a.text);
        }
        if (atIdent("static") && atIdent("final", 1)) {
            take();
            take();
            Type t = parseType();
            const Token fname = expect(Tok::Ident, "static field name");
            expect(Tok::Assign, "'='");
            bool negate = false;
            if (at(Tok::Minus)) {
                take();
                negate = true;
            }
            const Token lit = take();
            int64_t i = lit.ival;
            double f = lit.fval;
            if (lit.kind == Tok::IntLit || lit.kind == Tok::LongLit) {
                if (negate) i = -i;
                f = static_cast<double>(i);
            } else if (lit.kind == Tok::FloatLit || lit.kind == Tok::DoubleLit) {
                if (negate) f = -f;
                i = static_cast<int64_t>(f);
            } else if (lit.kind == Tok::Ident && (lit.text == "true" || lit.text == "false")) {
                i = lit.text == "true" ? 1 : 0;
            } else {
                err("expected a literal static initializer");
            }
            if (t.isFloating()) i = 0; else f = 0;
            cb.staticConst(fname.text, t, i, f);
            expect(Tok::Semi, "';'");
            return;
        }
        bool isStatic = false, isAbstract = false;
        while (atIdent("static") || atIdent("abstract")) {
            if (atIdent("static")) isStatic = true;
            else isAbstract = true;
            take();
        }
        // Constructor: ClassName '(' ...
        if (at(Tok::Ident) && peek().text == className_ && at(Tok::LParen, 1)) {
            take();
            MethodBuilder& mb = cb.ctor();
            parseParams(mb);
            mb.body(parseBlock());
            return;
        }
        Type t = parseType();
        const Token mname = expect(Tok::Ident, "member name");
        if (at(Tok::LParen)) {
            MethodBuilder& mb = cb.method(mname.text, t);
            if (global) mb.global();
            if (isStatic) mb.staticMethod();
            parseParams(mb);
            if (isAbstract || at(Tok::Semi)) {
                mb.abstractMethod();
                expect(Tok::Semi, "';'");
            } else {
                mb.body(parseBlock());
            }
            return;
        }
        // Field.
        expect(Tok::Semi, "';' after field");
        if (shared) cb.sharedField(mname.text, t);
        else cb.field(mname.text, t);
    }

    void parseParams(MethodBuilder& mb) {
        expect(Tok::LParen, "'('");
        if (!at(Tok::RParen)) {
            for (;;) {
                Type t = parseType();
                const Token p = expect(Tok::Ident, "parameter name");
                mb.param(p.text, t);
                if (!at(Tok::Comma)) break;
                take();
            }
        }
        expect(Tok::RParen, "')'");
    }

    // --------------------------------------------------------- statements
    Block parseBlock() {
        expect(Tok::LBrace, "'{'");
        Block b;
        while (!at(Tok::RBrace)) b.push_back(parseStmt());
        take();
        return b;
    }

    StmtPtr parseStmt() {
        DepthGuard guard(*this);
        if (atIdent("if")) {
            take();
            expect(Tok::LParen, "'('");
            ExprPtr c = parseExpr();
            expect(Tok::RParen, "')'");
            Block thenB = parseBlock();
            Block elseB;
            if (atIdent("else")) {
                take();
                elseB = parseBlock();
            }
            return ifs(std::move(c), std::move(thenB), std::move(elseB));
        }
        if (atIdent("while")) {
            take();
            expect(Tok::LParen, "'('");
            ExprPtr c = parseExpr();
            expect(Tok::RParen, "')'");
            return whileS(std::move(c), parseBlock());
        }
        if (atIdent("for")) {
            take();
            expect(Tok::LParen, "'('");
            Type t = parseType();
            const Token var = expect(Tok::Ident, "loop variable");
            expect(Tok::Assign, "'='");
            ExprPtr init = parseExpr();
            expect(Tok::Semi, "';'");
            ExprPtr cond = parseExpr();
            expect(Tok::Semi, "';'");
            const Token var2 = expect(Tok::Ident, "loop variable in step");
            if (var2.text != var.text) err("for-step must assign the loop variable");
            expect(Tok::Assign, "'='");
            ExprPtr step = parseExpr();
            expect(Tok::RParen, "')'");
            Block body = parseBlock();
            return std::make_unique<ForStmt>(var.text, std::move(t), std::move(init),
                                             std::move(cond), std::move(step), std::move(body));
        }
        if (atIdent("return")) {
            take();
            if (at(Tok::Semi)) {
                take();
                return retVoid();
            }
            ExprPtr v = parseExpr();
            expect(Tok::Semi, "';'");
            return ret(std::move(v));
        }
        if (atIdent("super") && at(Tok::LParen, 1)) {
            take();
            std::vector<ExprPtr> args = parseArgs();
            expect(Tok::Semi, "';'");
            return superCtorV(std::move(args));
        }
        // Declaration: TYPE IDENT '=' ...  (types are recognizable because
        // all class names were pre-scanned).
        if (atTypeStart()) {
            // Could still be an expression like `cls.method()`: require the
            // TYPE IDENT '=' / TYPE[] shape.
            const bool decl2 =
                (at(Tok::Ident, 1) && (at(Tok::Assign, 2) || at(Tok::Semi, 2))) ||
                (at(Tok::LBracket, 1) && at(Tok::RBracket, 2));
            if (decl2) {
                Type t = parseType();
                const Token n = expect(Tok::Ident, "variable name");
                if (at(Tok::Semi)) {
                    // `T name;` — uninitialized declaration; the definite-
                    // assignment pass polices reads.
                    take();
                    return declUninit(n.text, std::move(t));
                }
                expect(Tok::Assign, "'='");
                ExprPtr init = parseExpr();
                expect(Tok::Semi, "';'");
                return decl(n.text, std::move(t), std::move(init));
            }
        }
        // Assignment or expression statement.
        ExprPtr e = parseExpr();
        if (at(Tok::Assign)) {
            take();
            ExprPtr v = parseExpr();
            expect(Tok::Semi, "';'");
            switch (e->kind) {
            case ExprKind::Local:
                return assign(as<LocalExpr>(*e).name, std::move(v));
            case ExprKind::FieldGet: {
                auto* fg = static_cast<FieldGetExpr*>(e.get());
                return setf(std::move(fg->obj), fg->field, std::move(v));
            }
            case ExprKind::ArrayGet: {
                auto* ag = static_cast<ArrayGetExpr*>(e.get());
                return aset(std::move(ag->arr), std::move(ag->idx), std::move(v));
            }
            default:
                err("left side of '=' must be a variable, field, or array element");
            }
        }
        expect(Tok::Semi, "';'");
        return exprS(std::move(e));
    }

    // -------------------------------------------------------- expressions
    std::vector<ExprPtr> parseArgs() {
        expect(Tok::LParen, "'('");
        std::vector<ExprPtr> args;
        if (!at(Tok::RParen)) {
            args.push_back(parseExpr());
            while (at(Tok::Comma)) {
                take();
                args.push_back(parseExpr());
            }
        }
        expect(Tok::RParen, "')'");
        return args;
    }

    ExprPtr parseExpr() { return parseTernary(); }

    ExprPtr parseTernary() {
        DepthGuard guard(*this);
        ExprPtr c = parseOr();
        if (at(Tok::Question)) {
            take();
            ExprPtr t = parseExpr();
            expect(Tok::Colon, "':'");
            ExprPtr f = parseTernary();
            return ternary(std::move(c), std::move(t), std::move(f));
        }
        return c;
    }

    ExprPtr parseOr() {
        ExprPtr e = parseAnd();
        while (at(Tok::OrOr)) {
            take();
            e = lor(std::move(e), parseAnd());
        }
        return e;
    }

    ExprPtr parseAnd() {
        ExprPtr e = parseEq();
        while (at(Tok::AndAnd)) {
            take();
            e = land(std::move(e), parseEq());
        }
        return e;
    }

    ExprPtr parseEq() {
        ExprPtr e = parseRel();
        while (at(Tok::EqEq) || at(Tok::NotEq)) {
            const bool isEq = take().kind == Tok::EqEq;
            ExprPtr r = parseRel();
            e = isEq ? eq(std::move(e), std::move(r)) : ne(std::move(e), std::move(r));
        }
        return e;
    }

    ExprPtr parseRel() {
        ExprPtr e = parseAdd();
        while (at(Tok::Lt) || at(Tok::Le) || at(Tok::Gt) || at(Tok::Ge)) {
            const Tok op = take().kind;
            ExprPtr r = parseAdd();
            switch (op) {
            case Tok::Lt: e = lt(std::move(e), std::move(r)); break;
            case Tok::Le: e = le(std::move(e), std::move(r)); break;
            case Tok::Gt: e = gt(std::move(e), std::move(r)); break;
            default: e = ge(std::move(e), std::move(r)); break;
            }
        }
        return e;
    }

    ExprPtr parseAdd() {
        ExprPtr e = parseMul();
        while (at(Tok::Plus) || at(Tok::Minus)) {
            const bool plus = take().kind == Tok::Plus;
            ExprPtr r = parseMul();
            e = plus ? add(std::move(e), std::move(r)) : sub(std::move(e), std::move(r));
        }
        return e;
    }

    ExprPtr parseMul() {
        ExprPtr e = parseUnary();
        while (at(Tok::Star) || at(Tok::Slash) || at(Tok::Percent)) {
            const Tok op = take().kind;
            ExprPtr r = parseUnary();
            if (op == Tok::Star) e = mul(std::move(e), std::move(r));
            else if (op == Tok::Slash) e = divE(std::move(e), std::move(r));
            else e = rem(std::move(e), std::move(r));
        }
        return e;
    }

    ExprPtr parseUnary() {
        DepthGuard guard(*this);
        if (at(Tok::Minus)) {
            take();
            // Fold a minus directly into a literal so "-1.0f" round-trips as
            // a negative constant (the printer's form), not neg(const).
            if (at(Tok::IntLit)) return ci(static_cast<int32_t>(-take().ival));
            if (at(Tok::LongLit)) return cl(-take().ival);
            if (at(Tok::FloatLit)) return cf(static_cast<float>(-take().fval));
            if (at(Tok::DoubleLit)) return cd(-take().fval);
            return neg(parseUnary());
        }
        if (at(Tok::Not)) {
            take();
            return lnot(parseUnary());
        }
        return parsePostfix();
    }

    ExprPtr parsePostfix() {
        ExprPtr e = parsePrimary();
        for (;;) {
            if (at(Tok::Dot)) {
                take();
                const Token m = expect(Tok::Ident, "member name");
                if (m.text == "length" && !at(Tok::LParen)) {
                    e = alen(std::move(e));
                } else if (at(Tok::LParen)) {
                    e = callV(std::move(e), m.text, parseArgs());
                } else {
                    e = getf(std::move(e), m.text);
                }
                continue;
            }
            if (at(Tok::LBracket)) {
                take();
                ExprPtr idx = parseExpr();
                expect(Tok::RBracket, "']'");
                e = aget(std::move(e), std::move(idx));
                continue;
            }
            break;
        }
        return e;
    }

    /// Cast heuristic: '(' TYPE ')' followed by something that starts a
    /// unary expression. "(x) + 1" stays a parenthesized expression.
    bool looksLikeCast() const {
        if (!at(Tok::Ident, 1)) return false;
        const std::string& n = peek(1).text;
        const bool typish =
            primKeywords().count(n) || classNames_.count(n) || knownBuiltinClass(n);
        if (!typish) return false;
        size_t off = 2;
        while (at(Tok::LBracket, off) && at(Tok::RBracket, off + 1)) off += 2;
        if (!at(Tok::RParen, off)) return false;
        const Token& next = peek(off + 1);
        switch (next.kind) {
        case Tok::Ident:
        case Tok::IntLit: case Tok::LongLit: case Tok::FloatLit: case Tok::DoubleLit:
        case Tok::LParen: case Tok::Minus: case Tok::Not:
            return true;
        default:
            return false;
        }
    }

    ExprPtr parsePrimary() {
        if (at(Tok::IntLit)) return ci(static_cast<int32_t>(take().ival));
        if (at(Tok::LongLit)) return cl(take().ival);
        if (at(Tok::FloatLit)) return cf(static_cast<float>(take().fval));
        if (at(Tok::DoubleLit)) return cd(take().fval);
        if (at(Tok::LParen)) {
            if (looksLikeCast()) {
                take();
                Type t = parseType();
                expect(Tok::RParen, "')'");
                return cast(std::move(t), parseUnary());
            }
            take();
            ExprPtr e = parseExpr();
            expect(Tok::RParen, "')'");
            return e;
        }
        if (!at(Tok::Ident)) err("expected an expression");
        const Token id = take();
        if (id.text == "true") return cb(true);
        if (id.text == "false") return cb(false);
        if (id.text == "this") return self();
        if (id.text == "new") {
            Type base = parseType();  // consumes empty [] pairs into the type
            if (at(Tok::LBracket)) {
                take();
                ExprPtr len = parseExpr();
                expect(Tok::RBracket, "']'");
                return newArr(std::move(base), std::move(len));
            }
            if (!base.isClass()) err("new of a primitive requires array brackets");
            return newObjV(base.className(), parseArgs());
        }
        // Intrinsic namespaces: greedily extend the dotted name while it
        // remains a prefix of some intrinsic.
        if (isIntrinsicPrefix(id.text)) {
            std::string name = id.text;
            while (at(Tok::Dot) && at(Tok::Ident, 1)) {
                const std::string longer = name + "." + peek(1).text;
                if (intrinsicNames().count(longer) == 0 && !isIntrinsicPrefix(longer)) break;
                take();
                take();
                name = longer;
            }
            auto it = intrinsicNames().find(name);
            if (it == intrinsicNames().end()) err("unknown intrinsic " + name);
            std::vector<ExprPtr> args;
            if (at(Tok::LParen)) args = parseArgs();
            return intrV(it->second, std::move(args));
        }
        // Static reference through a declared class name.
        if (classNames_.count(id.text) && at(Tok::Dot)) {
            take();
            const Token m = expect(Tok::Ident, "static member name");
            if (at(Tok::LParen)) return scallV(id.text, m.text, parseArgs());
            return sget(id.text, m.text);
        }
        return lv(id.text);
    }

    ProgramBuilder& pb_;
    std::vector<Token> toks_;
    size_t pos_ = 0;
    mutable int depth_ = 0;
    std::set<std::string> classNames_;
    std::string className_;
};

} // namespace

void parseInto(ProgramBuilder& pb, const std::string& src) { Parser(pb, src).run(); }

Program parseProgram(const std::string& src) {
    ProgramBuilder pb;
    parseInto(pb, src);
    return pb.build();
}

} // namespace wj::frontend
