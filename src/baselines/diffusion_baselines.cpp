#include "baselines/diffusion_baselines.h"

#include <memory>
#include <vector>

#include "runtime/rng_hash.h"

namespace wj::baselines {

namespace {

double checksum(const std::vector<float>& v) {
    double s = 0;
    for (float x : v) s += static_cast<double>(x);
    return s;
}

void fill(std::vector<float>& v, int seed) {
    for (size_t i = 0; i < v.size(); ++i) v[i] = wj_rng_hash_f32(seed, static_cast<int32_t>(i));
}

} // namespace

// ------------------------------------------------------------------- "C"

double diffusionC(int nx, int ny, int nz, const DiffusionCoeffs& c, int seed, int steps) {
    const size_t total = static_cast<size_t>(nx) * ny * nz;
    std::vector<float> cur(total), nxt(total);
    fill(cur, seed);
    for (int s = 0; s < steps; ++s) {
        for (int z = 0; z < nz; ++z) {
            const int zm = (z - 1 + nz) % nz, zp = (z + 1) % nz;
            for (int y = 0; y < ny; ++y) {
                const int ym = (y - 1 + ny) % ny, yp = (y + 1) % ny;
                const size_t row = (static_cast<size_t>(z) * ny + y) * nx;
                const size_t rowYm = (static_cast<size_t>(z) * ny + ym) * nx;
                const size_t rowYp = (static_cast<size_t>(z) * ny + yp) * nx;
                const size_t rowZm = (static_cast<size_t>(zm) * ny + y) * nx;
                const size_t rowZp = (static_cast<size_t>(zp) * ny + y) * nx;
                for (int x = 0; x < nx; ++x) {
                    const int xm = (x - 1 + nx) % nx, xp = (x + 1) % nx;
                    nxt[row + x] = c.cc * cur[row + x] + c.cw * cur[row + xm] +
                                   c.ce * cur[row + xp] + c.cn * cur[rowYm + x] +
                                   c.cs * cur[rowYp + x] + c.cb * cur[rowZm + x] +
                                   c.ct * cur[rowZp + x];
                }
            }
        }
        cur.swap(nxt);
    }
    return checksum(cur);
}

// ----------------------------------------------------------------- "C++"
// Virtual components mirroring the WJ class library one-to-one.

namespace virt {

struct ScalarFloat {
    float v;
    float val() const { return v; }
};

struct Grid {
    virtual ~Grid() = default;
    virtual float get(int x, int y, int z) const = 0;
    virtual float getWrap(int x, int y, int z) const = 0;
    virtual void set(int x, int y, int z, float v) = 0;
    virtual void swapBuffers() = 0;
    virtual int nx() const = 0;
    virtual int ny() const = 0;
    virtual int nz() const = 0;
    virtual void fill(int seed) = 0;
    virtual double checksum() const = 0;
};

struct FloatGridDblB final : Grid {
    std::vector<float> cur, nxt;
    int nx_, ny_, nz_;
    FloatGridDblB(int nx, int ny, int nz)
        : cur(static_cast<size_t>(nx) * ny * nz), nxt(cur.size()), nx_(nx), ny_(ny), nz_(nz) {}
    size_t idx(int x, int y, int z) const {
        return (static_cast<size_t>(z) * ny_ + y) * nx_ + x;
    }
    float get(int x, int y, int z) const override { return cur[idx(x, y, z)]; }
    float getWrap(int x, int y, int z) const override {
        return cur[idx((x + nx_) % nx_, (y + ny_) % ny_, (z + nz_) % nz_)];
    }
    void set(int x, int y, int z, float v) override { nxt[idx(x, y, z)] = v; }
    void swapBuffers() override { cur.swap(nxt); }
    int nx() const override { return nx_; }
    int ny() const override { return ny_; }
    int nz() const override { return nz_; }
    void fill(int seed) override {
        for (size_t i = 0; i < cur.size(); ++i) {
            cur[i] = wj_rng_hash_f32(seed, static_cast<int32_t>(i));
        }
    }
    double checksum() const override {
        double s = 0;
        for (float v : cur) s += static_cast<double>(v);
        return s;
    }
};

struct Quantity {
    float cc, cw, ce, cn, cs, cb, ct;
};

struct Solver {
    virtual ~Solver() = default;
    virtual ScalarFloat solve(ScalarFloat c, ScalarFloat w, ScalarFloat e, ScalarFloat n,
                              ScalarFloat s, ScalarFloat b, ScalarFloat t,
                              const Quantity& q) const = 0;
};

struct Dif3DSolver final : Solver {
    ScalarFloat solve(ScalarFloat c, ScalarFloat w, ScalarFloat e, ScalarFloat n, ScalarFloat s,
                      ScalarFloat b, ScalarFloat t, const Quantity& q) const override {
        const float value = q.cc * c.val() + q.cw * w.val() + q.ce * e.val() + q.cn * n.val() +
                            q.cs * s.val() + q.cb * b.val() + q.ct * t.val();
        return ScalarFloat{value};
    }
};

struct Runner {
    virtual ~Runner() = default;
    virtual double run(int steps) = 0;
};

struct CpuRunner final : Runner {
    Solver* solver;
    Quantity q;
    Grid* grid;
    int seed;
    CpuRunner(Solver* s, Quantity qq, Grid* g, int sd) : solver(s), q(qq), grid(g), seed(sd) {}
    double run(int steps) override {
        grid->fill(seed);
        for (int s = 0; s < steps; ++s) {
            for (int z = 0; z < grid->nz(); ++z)
                for (int y = 0; y < grid->ny(); ++y)
                    for (int x = 0; x < grid->nx(); ++x) {
                        ScalarFloat r = solver->solve(
                            ScalarFloat{grid->get(x, y, z)},
                            ScalarFloat{grid->getWrap(x - 1, y, z)},
                            ScalarFloat{grid->getWrap(x + 1, y, z)},
                            ScalarFloat{grid->getWrap(x, y - 1, z)},
                            ScalarFloat{grid->getWrap(x, y + 1, z)},
                            ScalarFloat{grid->getWrap(x, y, z - 1)},
                            ScalarFloat{grid->getWrap(x, y, z + 1)}, q);
                        grid->set(x, y, z, r.val());
                    }
            grid->swapBuffers();
        }
        return grid->checksum();
    }
};

} // namespace virt

double diffusionVirtual(int nx, int ny, int nz, const DiffusionCoeffs& c, int seed, int steps) {
    virt::Dif3DSolver solver;
    virt::FloatGridDblB grid(nx, ny, nz);
    virt::Quantity q{c.cc, c.cw, c.ce, c.cn, c.cs, c.cb, c.ct};
    virt::CpuRunner runner(&solver, q, &grid, seed);
    virt::Runner* r = &runner;  // dispatch through the base, like the paper
    return r->run(steps);
}

// ------------------------------------------------------------- "Template"
// Identical component structure; dispatch resolved by template parameters
// and the . operator.

namespace tmpl {

struct ScalarFloat {
    float v;
    float val() const { return v; }
};

struct FloatGridDblB {
    std::vector<float> cur, nxt;
    int nx_, ny_, nz_;
    FloatGridDblB(int nx, int ny, int nz)
        : cur(static_cast<size_t>(nx) * ny * nz), nxt(cur.size()), nx_(nx), ny_(ny), nz_(nz) {}
    size_t idx(int x, int y, int z) const {
        return (static_cast<size_t>(z) * ny_ + y) * nx_ + x;
    }
    float get(int x, int y, int z) const { return cur[idx(x, y, z)]; }
    float getWrap(int x, int y, int z) const {
        return cur[idx((x + nx_) % nx_, (y + ny_) % ny_, (z + nz_) % nz_)];
    }
    void set(int x, int y, int z, float v) { nxt[idx(x, y, z)] = v; }
    void swapBuffers() { cur.swap(nxt); }
    void fill(int seed) {
        for (size_t i = 0; i < cur.size(); ++i) {
            cur[i] = wj_rng_hash_f32(seed, static_cast<int32_t>(i));
        }
    }
    double checksum() const {
        double s = 0;
        for (float v : cur) s += static_cast<double>(v);
        return s;
    }
};

struct Quantity {
    float cc, cw, ce, cn, cs, cb, ct;
};

struct Dif3DSolver {
    ScalarFloat solve(ScalarFloat c, ScalarFloat w, ScalarFloat e, ScalarFloat n, ScalarFloat s,
                      ScalarFloat b, ScalarFloat t, const Quantity& q) const {
        const float value = q.cc * c.val() + q.cw * w.val() + q.ce * e.val() + q.cn * n.val() +
                            q.cs * s.val() + q.cb * b.val() + q.ct * t.val();
        return ScalarFloat{value};
    }
};

template <typename SolverT, typename GridT>
struct CpuRunner {
    SolverT solver;
    Quantity q;
    GridT grid;
    int seed;
    CpuRunner(SolverT s, Quantity qq, GridT g, int sd)
        : solver(s), q(qq), grid(std::move(g)), seed(sd) {}
    double run(int steps) {
        grid.fill(seed);
        for (int s = 0; s < steps; ++s) {
            for (int z = 0; z < grid.nz_; ++z)
                for (int y = 0; y < grid.ny_; ++y)
                    for (int x = 0; x < grid.nx_; ++x) {
                        ScalarFloat r = solver.solve(
                            ScalarFloat{grid.get(x, y, z)}, ScalarFloat{grid.getWrap(x - 1, y, z)},
                            ScalarFloat{grid.getWrap(x + 1, y, z)},
                            ScalarFloat{grid.getWrap(x, y - 1, z)},
                            ScalarFloat{grid.getWrap(x, y + 1, z)},
                            ScalarFloat{grid.getWrap(x, y, z - 1)},
                            ScalarFloat{grid.getWrap(x, y, z + 1)}, q);
                        grid.set(x, y, z, r.val());
                    }
            grid.swapBuffers();
        }
        return grid.checksum();
    }
};

} // namespace tmpl

double diffusionTemplate(int nx, int ny, int nz, const DiffusionCoeffs& c, int seed, int steps) {
    tmpl::Quantity q{c.cc, c.cw, c.ce, c.cn, c.cs, c.cb, c.ct};
    tmpl::CpuRunner<tmpl::Dif3DSolver, tmpl::FloatGridDblB> runner(
        tmpl::Dif3DSolver{}, q, tmpl::FloatGridDblB(nx, ny, nz), seed);
    return runner.run(steps);
}

// ----------------------------------------------------- "Template w/o virt."
// Everything fused into one leaf class — the paper manually copied all
// superclass methods into the subclass body, abandoning reuse.

namespace fused {

struct FusedDiffusion {
    std::vector<float> cur, nxt;
    int nx, ny, nz;
    float cc, cw, ce, cn, cs, cb, ct;
    int seed;

    FusedDiffusion(int nx_, int ny_, int nz_, const DiffusionCoeffs& c, int seed_)
        : cur(static_cast<size_t>(nx_) * ny_ * nz_), nxt(cur.size()), nx(nx_), ny(ny_), nz(nz_),
          cc(c.cc), cw(c.cw), ce(c.ce), cn(c.cn), cs(c.cs), cb(c.cb), ct(c.ct), seed(seed_) {}

    double run(int steps) {
        for (size_t i = 0; i < cur.size(); ++i) {
            cur[i] = wj_rng_hash_f32(seed, static_cast<int32_t>(i));
        }
        for (int s = 0; s < steps; ++s) {
            for (int z = 0; z < nz; ++z)
                for (int y = 0; y < ny; ++y)
                    for (int x = 0; x < nx; ++x) {
                        const size_t i0 =
                            (static_cast<size_t>(z) * ny + y) * nx + static_cast<size_t>(x);
                        const int xm = (x - 1 + nx) % nx, xp = (x + 1) % nx;
                        const int ym = (y - 1 + ny) % ny, yp = (y + 1) % ny;
                        const int zm = (z - 1 + nz) % nz, zp = (z + 1) % nz;
                        auto at = [&](int xx, int yy, int zz) {
                            return cur[(static_cast<size_t>(zz) * ny + yy) * nx + xx];
                        };
                        nxt[i0] = cc * at(x, y, z) + cw * at(xm, y, z) + ce * at(xp, y, z) +
                                  cn * at(x, ym, z) + cs * at(x, yp, z) + cb * at(x, y, zm) +
                                  ct * at(x, y, zp);
                    }
            cur.swap(nxt);
        }
        double s = 0;
        for (float v : cur) s += static_cast<double>(v);
        return s;
    }
};

} // namespace fused

double diffusionTemplateNoVirt(int nx, int ny, int nz, const DiffusionCoeffs& c, int seed,
                               int steps) {
    return fused::FusedDiffusion(nx, ny, nz, c, seed).run(steps);
}

} // namespace wj::baselines
