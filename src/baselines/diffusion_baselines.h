// The paper's comparator programs for the 3-D diffusion solver (Section 4):
//
//   * C                 — hand-written, no abstraction ("without considering
//                         code reuse or modularity");
//   * C++               — naive virtual-function class library ("naively
//                         uses virtual functions for dynamic method
//                         dispatch");
//   * Template          — dynamic dispatch devirtualized by template meta-
//                         programming ("all occurrences of -> replaced by .");
//   * Template w/o virt — no virtual functions at all: superclass methods
//                         manually copied into the leaf class, sacrificing
//                         reuse.
//
// All four compute bit-identical results to the WJ library variants (same
// rng fill, same 7-point operation order), so benches compare time while
// tests compare checksums exactly.
#pragma once

#include "stencil/stencil_lib.h"

namespace wj::baselines {

using stencil::DiffusionCoeffs;

/// The paper's "C": raw arrays, fused loops.
double diffusionC(int nx, int ny, int nz, const DiffusionCoeffs& c, int seed, int steps);

/// The paper's "C++": virtual Solver/Grid components, per-cell dispatch.
double diffusionVirtual(int nx, int ny, int nz, const DiffusionCoeffs& c, int seed, int steps);

/// The paper's "Template": the same component structure devirtualized by
/// template parameters.
double diffusionTemplate(int nx, int ny, int nz, const DiffusionCoeffs& c, int seed, int steps);

/// The paper's "Template w/o virt.": one fused leaf class, methods copied in.
double diffusionTemplateNoVirt(int nx, int ny, int nz, const DiffusionCoeffs& c, int seed,
                               int steps);

} // namespace wj::baselines
