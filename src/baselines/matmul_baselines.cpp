#include "baselines/matmul_baselines.h"

#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/rng_hash.h"

namespace wj::baselines {

namespace {

std::vector<float> filled(int n, int seed) {
    std::vector<float> v(static_cast<size_t>(n) * n);
    for (size_t i = 0; i < v.size(); ++i) v[i] = wj_rng_hash_f32(seed, static_cast<int32_t>(i));
    return v;
}

double checksum(const std::vector<float>& v) {
    double s = 0;
    for (float x : v) s += static_cast<double>(x);
    return s;
}

} // namespace

// ------------------------------------------------------------------- "C"

double matmulC(int n, int seedA, int seedB) {
    const size_t nn = static_cast<size_t>(n);
    std::vector<float> a = filled(n, seedA), b = filled(n, seedB), c(nn * nn, 0.0f);
    for (size_t i = 0; i < nn; ++i)
        for (size_t k = 0; k < nn; ++k) {
            const float av = a[i * nn + k];
            for (size_t j = 0; j < nn; ++j) c[i * nn + j] += av * b[k * nn + j];
        }
    return checksum(c);
}

// ----------------------------------------------------------------- "C++"

namespace virt {

struct Matrix {
    virtual ~Matrix() = default;
    virtual float get(int i, int j) const = 0;
    virtual void set(int i, int j, float v) = 0;
    virtual int rows() const = 0;
};

struct SimpleMatrix final : Matrix {
    std::vector<float> data;
    int n;
    SimpleMatrix(int n_, int seed) : data(static_cast<size_t>(n_) * n_), n(n_) {
        if (seed >= 0) {
            for (size_t i = 0; i < data.size(); ++i) {
                data[i] = wj_rng_hash_f32(seed, static_cast<int32_t>(i));
            }
        }
    }
    float get(int i, int j) const override { return data[static_cast<size_t>(i) * n + j]; }
    void set(int i, int j, float v) override { data[static_cast<size_t>(i) * n + j] = v; }
    int rows() const override { return n; }
};

struct Calculator {
    virtual ~Calculator() = default;
    virtual void multiplyAcc(const Matrix& a, const Matrix& b, Matrix& c) const = 0;
};

struct OptimizedCalculator final : Calculator {
    void multiplyAcc(const Matrix& a, const Matrix& b, Matrix& c) const override {
        const int n = a.rows();
        for (int i = 0; i < n; ++i)
            for (int k = 0; k < n; ++k) {
                const float av = a.get(i, k);
                for (int j = 0; j < n; ++j) c.set(i, j, c.get(i, j) + av * b.get(k, j));
            }
    }
};

// The application object holds its components through base pointers, the
// way the paper's "naive" C++ library does — dispatch stays dynamic.
struct Runner {
    Matrix* a;
    Matrix* b;
    Matrix* c;
    Calculator* calc;
    double run() const {
        calc->multiplyAcc(*a, *b, *c);
        double s = 0;
        const int n = c->rows();
        for (int i = 0; i < n; ++i)
            for (int j = 0; j < n; ++j) s += static_cast<double>(c->get(i, j));
        return s;
    }
};

} // namespace virt

double matmulVirtual(int n, int seedA, int seedB) {
    virt::SimpleMatrix a(n, seedA), b(n, seedB), c(n, -1);
    virt::OptimizedCalculator calcImpl;
    virt::Runner runner{&a, &b, &c, &calcImpl};
    return runner.run();
}

// ------------------------------------------------------------- "Template"

namespace tmpl {

struct SimpleMatrix {
    std::vector<float> data;
    int n;
    SimpleMatrix(int n_, int seed) : data(static_cast<size_t>(n_) * n_), n(n_) {
        if (seed >= 0) {
            for (size_t i = 0; i < data.size(); ++i) {
                data[i] = wj_rng_hash_f32(seed, static_cast<int32_t>(i));
            }
        }
    }
    float get(int i, int j) const { return data[static_cast<size_t>(i) * n + j]; }
    void set(int i, int j, float v) { data[static_cast<size_t>(i) * n + j] = v; }
    int rows() const { return n; }
};

struct OptimizedCalculator {
    template <typename M>
    void multiplyAcc(const M& a, const M& b, M& c) const {
        const int n = a.rows();
        for (int i = 0; i < n; ++i)
            for (int k = 0; k < n; ++k) {
                const float av = a.get(i, k);
                for (int j = 0; j < n; ++j) c.set(i, j, c.get(i, j) + av * b.get(k, j));
            }
    }
};

} // namespace tmpl

double matmulTemplate(int n, int seedA, int seedB) {
    tmpl::SimpleMatrix a(n, seedA), b(n, seedB), c(n, -1);
    tmpl::OptimizedCalculator{}.multiplyAcc(a, b, c);
    double s = 0;
    for (float v : c.data) s += static_cast<double>(v);
    return s;
}

// ----------------------------------------------------- "Template w/o virt."

namespace fused {

struct FusedMatMul {
    int n;
    explicit FusedMatMul(int n_) : n(n_) {}
    double run(int seedA, int seedB) const {
        const size_t nn = static_cast<size_t>(n);
        std::vector<float> a(nn * nn), b(nn * nn), c(nn * nn, 0.0f);
        for (size_t i = 0; i < nn * nn; ++i) {
            a[i] = wj_rng_hash_f32(seedA, static_cast<int32_t>(i));
            b[i] = wj_rng_hash_f32(seedB, static_cast<int32_t>(i));
        }
        for (size_t i = 0; i < nn; ++i)
            for (size_t k = 0; k < nn; ++k) {
                const float av = a[i * nn + k];
                for (size_t j = 0; j < nn; ++j) c[i * nn + j] += av * b[k * nn + j];
            }
        double s = 0;
        for (float v : c) s += static_cast<double>(v);
        return s;
    }
};

} // namespace fused

double matmulTemplateNoVirt(int n, int seedA, int seedB) {
    return fused::FusedMatMul(n).run(seedA, seedB);
}

} // namespace wj::baselines
