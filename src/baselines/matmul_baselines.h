// The paper's comparator programs for matrix multiplication (Section 4.2):
// C / C++ (virtual) / Template / Template w/o virt, computing bit-identical
// checksums to the WJ matmul library (same rng fill, same k-ascending
// accumulation order).
#pragma once

namespace wj::baselines {

/// Hand C: ikj over raw arrays.
double matmulC(int n, int seedA, int seedB);

/// Naive C++ class library: Matrix/Calculator through virtual dispatch.
double matmulVirtual(int n, int seedA, int seedB);

/// Template-devirtualized version of the same component structure.
double matmulTemplate(int n, int seedA, int seedB);

/// Fused single class, methods copied in (no reuse).
double matmulTemplateNoVirt(int n, int seedA, int seedB);

} // namespace wj::baselines
