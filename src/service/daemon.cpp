#include "service/daemon.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <filesystem>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "frontend/composition.h"
#include "frontend/parser.h"
#include "interp/interp.h"
#include "jit/cache.h"
#include "jit/codegen.h"
#include "jit/compile.h"
#include "rules/rules.h"
#include "runtime/wjrt.h"
#include "service/bundle.h"
#include "service/protocol.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "support/timer.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace wj::service {

namespace {

// Artifacts the daemon dlopen()s with RTLD_NOW resolve their wjrt_*
// references from the host executable (CMAKE_ENABLE_EXPORTS). The service
// code never calls the runtime itself, so a static-archive link of a
// daemon binary would otherwise drop wjrt.cpp's objects and every dlopen
// would fail with "undefined symbol". Taking one address forces the TU in.
[[gnu::used]] void* const kKeepRuntimeLinked =
    reinterpret_cast<void*>(&wjrt_alloc_array);

int envInt(const char* name, int dflt) {
    const char* v = std::getenv(name);
    if (!v || !*v) return dflt;
    const int n = std::atoi(v);
    return n > 0 ? n : dflt;
}

/// One client connection. Shared between its reader thread and every
/// worker holding one of its jobs, so a response can be written (or its
/// failure swallowed) after the reader is long gone — a client that
/// disconnects mid-compile never orphans the in-flight entry.
struct Conn {
    int fd = -1;
    std::mutex wmu;                ///< frame-granularity write interleaving
    std::atomic<int> inflight{0};  ///< admission: this client's queued+running compiles

    ~Conn() { closeNow(); }

    /// Releases the fd as soon as the reader is done with it (a long-running
    /// daemon must not hold one fd per disconnected client until shutdown).
    /// Only the owning reader (or the destructor, after the reader is gone)
    /// calls this; in-flight workers replying afterwards see fd == -1.
    void closeNow() noexcept {
        if (fd < 0) return;
        // Unblock a worker mid-write first: a peer that vanished without
        // reading can leave writeFrame blocked while it holds wmu.
        ::shutdown(fd, SHUT_RDWR);
        std::lock_guard<std::mutex> lock(wmu);
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }

    /// Wakes a reader blocked in readFrame() without invalidating the fd.
    /// Lock-free on purpose: taking wmu here could deadlock behind the very
    /// blocked write this shutdown is meant to unblock.
    void shutdownNow() noexcept {
        if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }

    /// Best-effort response: a dead peer is not an error for the daemon.
    void reply(const Frame& f) noexcept {
        std::lock_guard<std::mutex> lock(wmu);
        if (fd < 0) return;  // connection already torn down
        try {
            writeFrame(fd, f);
        } catch (const WjError&) {
        }
    }
};
using ConnPtr = std::shared_ptr<Conn>;

/// What one compile request resolves to — shared verbatim by every joined
/// request, so a typed failure (e.g. COMPILE_ERROR from an injected fault)
/// reaches all waiters, not just the leader.
struct Outcome {
    bool ok = false;
    ErrCode code = ErrCode::Internal;
    std::string message;
    uint64_t key = 0;
    std::string path;
    bool cacheHit = false;
    int attempts = 0;
};

struct Job {
    ConnPtr conn;
    uint64_t reqId = 0;
    std::string body;
    int64_t admittedNs = 0;
};

struct Counters {
    trace::Counter& reqTotal;
    trace::Counter& reqCompile;
    trace::Counter& reqStats;
    trace::Counter& reqPing;
    trace::Counter& reqShutdown;
    trace::Counter& reqBad;
    trace::Counter& compileOk;
    trace::Counter& compileErr;
    trace::Counter& joins;
    trace::Counter& rejectClient;
    trace::Counter& rejectQueue;
    trace::Counter& rejectDraining;
    trace::Counter& inflightNow;
    trace::Histogram& requestMicros;
    trace::Histogram& compileMicros;

    static Counters& instance() {
        auto& m = trace::Metrics::instance();
        static Counters c{
            m.counter("wjd.requests.total"),
            m.counter("wjd.requests.compile"),
            m.counter("wjd.requests.stats"),
            m.counter("wjd.requests.ping"),
            m.counter("wjd.requests.shutdown"),
            m.counter("wjd.requests.bad"),
            m.counter("wjd.compile.ok"),
            m.counter("wjd.compile.errors"),
            m.counter("wjd.compile.joins"),
            m.counter("wjd.admission.rejects.client"),
            m.counter("wjd.admission.rejects.queue"),
            m.counter("wjd.admission.rejects.draining"),
            m.counter("wjd.inflight.current"),
            m.histogram("wjd.request.micros"),
            m.histogram("wjd.compile.micros"),
        };
        return c;
    }
};

} // namespace

struct Daemon::Impl {
    DaemonOptions opts;
    int workers = 4;
    int maxPerClient = 8;
    int queueCap = 64;

    int listenFd = -1;
    std::atomic<bool> stopping{false};
    bool started = false;

    std::thread acceptThread;
    std::vector<std::thread> pool;

    std::mutex mu;  ///< queue, activeJobs, conns, readers
    std::condition_variable cv;       ///< workers: work available / exit
    std::condition_variable drainCv;  ///< wait()/Shutdown: drain progress
    std::deque<Job> queue;
    int activeJobs = 0;
    int shutdownRepliers = 0;  ///< readers still owing a Shutdown Ok
    bool workersExit = false;
    std::vector<ConnPtr> conns;  ///< open connections (erased on reader exit)
    uint64_t nextReaderId = 0;
    std::map<uint64_t, std::thread> readers;  ///< live readers, one per connection
    std::vector<std::thread> deadReaders;     ///< exited readers awaiting join

    /// In-process singleflight: cache key -> the one compile resolving it.
    std::mutex sfMu;
    std::map<uint64_t, std::shared_future<Outcome>> inflightKeys;

    /// Modules whose only on-disk artifact is their scratch .so (cache
    /// disabled or store failed). Pinned so the path= we reported stays
    /// valid for the daemon's lifetime — NativeModule removes its scratch
    /// dir on destruction.
    std::mutex pinMu;
    std::vector<std::shared_ptr<NativeModule>> pinnedModules;

    // ---- request pipeline ---------------------------------------------
    Outcome compileBody(const std::string& rawBody);
    Outcome runPipeline(const Body& req);
    std::string artifactPathFor(uint64_t key, const CompileResult& cr);
    void workerLoop();
    void readerLoop(ConnPtr conn, uint64_t readerId);
    void acceptLoop();
    void reapDeadReaders();
    bool drained() {
        return queue.empty() && activeJobs == 0;
    }
};

// ---------------------------------------------------------------- pipeline

Outcome Daemon::Impl::runPipeline(const Body& req) {
    Outcome out;
    const std::string* newExpr = req.find("new");
    const std::string* method = req.find("method");
    if (!newExpr || !method || newExpr->empty() || method->empty()) {
        out.code = ErrCode::BadRequest;
        out.message = "compile request requires new= and method= kv entries";
        return out;
    }

    Translation tr;
    try {
        trace::Span parseSpan("wjd", "parse");
        Program prog = frontend::parseProgram(req.payload);
        parseSpan.end();

        requireCodingRules(prog);
        Interp in(prog);
        Value receiver = frontend::parseComposition(in, *newExpr);
        std::vector<Value> args;
        if (const std::string* a = req.find("args")) {
            std::istringstream ss(*a);
            std::string tok;
            while (ss >> tok) args.push_back(frontend::parseArgLiteral(tok));
        }
        trace::Span xlSpan("wjd", "translate");
        tr = translate(prog, receiver, *method, args);
    } catch (const UsageError& e) {
        // Thrown by the parser with line/col context; by the composition /
        // argument readers without. The distinction the client cares about
        // is "fix your module" vs "fix your request" — parse errors carry
        // the "parse error at" prefix.
        const bool isParse = std::string(e.what()).find("parse error") != std::string::npos;
        out.code = isParse ? ErrCode::ParseError : ErrCode::SemanticError;
        out.message = e.what();
        return out;
    } catch (const WjError& e) {
        // Coding-rule violations, analysis defects, composition failures.
        out.code = ErrCode::SemanticError;
        out.message = e.what();
        return out;
    } catch (const std::exception& e) {
        // Backstop for anything the frontend throws beyond its typed
        // errors (std::bad_alloc on a pathological module, library
        // exceptions): malformed input is never a daemon crash.
        out.code = ErrCode::Internal;
        out.message = e.what();
        return out;
    }

    // ---- compile with in-process singleflight --------------------------
    const uint64_t key = cacheKeyFor(tr.cSource);
    std::shared_future<Outcome> fut;
    std::promise<Outcome> prom;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(sfMu);
        auto it = inflightKeys.find(key);
        if (it != inflightKeys.end()) {
            fut = it->second;
        } else {
            leader = true;
            fut = prom.get_future().share();
            inflightKeys.emplace(key, fut);
        }
    }
    if (!leader) {
        Counters::instance().joins.inc();
        trace::Span joinSpan("wjd", "compile.join");
        return fut.get();
    }

    Outcome res;
    res.key = key;
    {
        const int64_t t0 = nowNs();
        trace::Span ccSpan("wjd", "compile");
        try {
            CompileResult cr = compileAndLoad(tr.cSource, *method);
            res.ok = true;
            res.code = ErrCode::None;
            res.cacheHit = cr.cacheHit;
            res.attempts = cr.attempts;
            res.path = artifactPathFor(key, cr);
            Counters::instance().compileOk.inc();
        } catch (const CompilerUnavailableError& e) {
            res.code = ErrCode::CompilerUnavailable;
            res.message = e.what();
        } catch (const WjError& e) {
            res.code = ErrCode::CompileError;
            res.message = e.what();
        } catch (const std::exception& e) {
            res.code = ErrCode::Internal;
            res.message = e.what();
        }
        if (!res.ok) Counters::instance().compileErr.inc();
        Counters::instance().compileMicros.observe((nowNs() - t0) / 1000);
    }
    // Publish to joiners, THEN retire the key: a request arriving between
    // set_value and erase still joins a completed future (instant get()),
    // never a dangling one.
    prom.set_value(res);
    {
        std::lock_guard<std::mutex> lock(sfMu);
        inflightKeys.erase(key);
    }
    return res;
}

/// The path= a compile reply may legitimately report: the published cache
/// entry when it exists, else the artifact the module was actually loaded
/// from (WJ_CACHE=0, or store() failed on a full disk) — pinned so the
/// scratch dir outlives the reply. Empty only when no on-disk artifact
/// survives (e.g. an in-memory hit whose cache entry was evicted since).
std::string Daemon::Impl::artifactPathFor(uint64_t key, const CompileResult& cr) {
    std::error_code ec;
    const std::string published = JitCache::instance().entryPath(key);
    if (!published.empty() && std::filesystem::exists(published, ec)) return published;
    if (cr.module) {
        const std::string& loaded = cr.module->loadedPath();
        if (!loaded.empty() && std::filesystem::exists(loaded, ec)) {
            std::lock_guard<std::mutex> lock(pinMu);
            pinnedModules.push_back(cr.module);
            return loaded;
        }
    }
    return std::string();
}

Outcome Daemon::Impl::compileBody(const std::string& rawBody) {
    Body req;
    try {
        req = decodeBody(rawBody);
    } catch (const UsageError& e) {
        Outcome out;
        out.code = ErrCode::BadRequest;
        out.message = e.what();
        return out;
    }
    return runPipeline(req);
}

// ------------------------------------------------------------------ threads

void Daemon::Impl::workerLoop() {
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return workersExit || !queue.empty(); });
            if (queue.empty()) return;  // workersExit and nothing left
            job = std::move(queue.front());
            queue.pop_front();
            ++activeJobs;
        }
        Outcome out = compileBody(job.body);
        if (out.ok) {
            Body b;
            b.set("key", format("%016llx", static_cast<unsigned long long>(out.key)));
            b.set("path", out.path);
            b.set("cacheHit", out.cacheHit ? "1" : "0");
            b.set("attempts", format("%d", out.attempts));
            job.conn->reply(makeOk(job.reqId, std::move(b)));
        } else {
            job.conn->reply(makeError(job.reqId, out.code, out.message));
        }
        job.conn->inflight.fetch_sub(1);
        Counters::instance().inflightNow.add(-1);
        Counters::instance().requestMicros.observe((nowNs() - job.admittedNs) / 1000);
        {
            std::lock_guard<std::mutex> lock(mu);
            --activeJobs;
        }
        drainCv.notify_all();
    }
}

void Daemon::Impl::readerLoop(ConnPtr conn, uint64_t readerId) {
    auto& C = Counters::instance();
    for (;;) {
        Frame f;
        try {
            if (!readFrame(conn->fd, f)) break;  // clean EOF
        } catch (const WjError& e) {
            // Malformed header/frame: answer if the pipe still works, then
            // hang up. The daemon itself never goes down over junk bytes.
            C.reqBad.inc();
            conn->reply(makeError(0, ErrCode::BadRequest, e.what()));
            break;
        }
        C.reqTotal.inc();
        switch (f.type) {
        case MsgType::Ping: {
            C.reqPing.inc();
            Body b;
            b.set("pong", "1");
            conn->reply(makeOk(f.reqId, std::move(b)));
            break;
        }
        case MsgType::Stats: {
            C.reqStats.inc();
            Body b;
            b.payload = trace::Metrics::instance().toJson();
            conn->reply(makeOk(f.reqId, std::move(b)));
            break;
        }
        case MsgType::Shutdown: {
            C.reqShutdown.inc();
            // Register as a pending replier BEFORE flipping stopping, so
            // wait() cannot tear the connections down between our drain
            // wake-up and the Ok write below.
            {
                std::lock_guard<std::mutex> lock(mu);
                ++shutdownRepliers;
            }
            stopping.store(true);
            ::shutdown(listenFd, SHUT_RDWR);
            cv.notify_all();
            // Drain before answering: the Ok is the contract that every
            // admitted compile has completed and responded.
            {
                std::unique_lock<std::mutex> lock(mu);
                drainCv.wait(lock, [&] { return drained(); });
            }
            Body b;
            b.set("drained", "1");
            conn->reply(makeOk(f.reqId, std::move(b)));
            {
                std::lock_guard<std::mutex> lock(mu);
                --shutdownRepliers;
            }
            drainCv.notify_all();
            break;
        }
        case MsgType::Compile: {
            C.reqCompile.inc();
            if (stopping.load()) {
                C.rejectDraining.inc();
                conn->reply(makeError(f.reqId, ErrCode::ShuttingDown,
                                      "daemon is draining; not accepting new work"));
                break;
            }
            if (conn->inflight.load() >= maxPerClient) {
                C.rejectClient.inc();
                conn->reply(makeError(
                    f.reqId, ErrCode::ResourceExhausted,
                    format("client in-flight cap reached (%d); wait for responses",
                           maxPerClient)));
                break;
            }
            bool queued = false;
            {
                std::lock_guard<std::mutex> lock(mu);
                if (static_cast<int>(queue.size()) < queueCap) {
                    conn->inflight.fetch_add(1);
                    Job j;
                    j.conn = conn;
                    j.reqId = f.reqId;
                    j.body = std::move(f.body);
                    j.admittedNs = nowNs();
                    queue.push_back(std::move(j));
                    queued = true;
                }
            }
            if (queued) {
                C.inflightNow.inc();
                cv.notify_one();
            } else {
                C.rejectQueue.inc();
                conn->reply(makeError(f.reqId, ErrCode::ResourceExhausted,
                                      format("compile queue is full (%d)", queueCap)));
            }
            break;
        }
        default:
            C.reqBad.inc();
            conn->reply(makeError(f.reqId, ErrCode::BadRequest,
                                  format("unknown request type %u",
                                         static_cast<unsigned>(f.type))));
            break;
        }
    }
    // Reader exits on EOF/junk. Jobs this client still has queued run to
    // completion (the Conn outlives us via shared_ptr); their responses
    // fail silently in reply(). Release the fd NOW and hand our thread to
    // the reap list — a daemon serving many short-lived clients must not
    // accumulate one fd + one joinable thread per past connection.
    bool ownsConn = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto cit = std::find(conns.begin(), conns.end(), conn);
        if (cit != conns.end()) {
            conns.erase(cit);
            ownsConn = true;  // wait() has not claimed this conn for teardown
        }
        auto rit = readers.find(readerId);
        if (rit != readers.end()) {
            deadReaders.push_back(std::move(rit->second));
            readers.erase(rit);
        }
    }
    // Exactly one side closes: if wait() swapped the containers first, it
    // owns the conn (and joins our thread via its swapped-out map); closing
    // here too would race its shutdownNow() against fd reuse.
    if (ownsConn) conn->closeNow();
}

void Daemon::Impl::reapDeadReaders() {
    std::vector<std::thread> dead;
    {
        std::lock_guard<std::mutex> lock(mu);
        dead.swap(deadReaders);
    }
    // A thread on the list is in (or past) its last statement; these joins
    // return immediately or near enough.
    for (auto& t : dead) t.join();
}

void Daemon::Impl::acceptLoop() {
    for (;;) {
        reapDeadReaders();
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            if (stopping.load()) return;  // listen socket shut down: drain begins
            if (errno == EBADF || errno == EINVAL) return;  // socket gone
            // Transient failures — ECONNABORTED (peer gave up in the
            // backlog), EMFILE/ENFILE fd pressure, ENOBUFS/ENOMEM — must
            // not silently end accepting while the daemon lives on; back
            // off briefly and keep serving.
            if (!opts.quiet) {
                std::fprintf(stderr, "wjd: accept() failed: %s; retrying\n",
                             std::strerror(errno));
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
        }
        if (stopping.load()) {
            ::close(fd);
            continue;
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        // Spawn under mu: the reader's exit epilogue also takes mu, so it
        // cannot race ahead of its own registration in `readers`.
        std::lock_guard<std::mutex> lock(mu);
        const uint64_t id = nextReaderId++;
        conns.push_back(conn);
        readers.emplace(id, std::thread([this, conn, id] { readerLoop(conn, id); }));
    }
}

// ------------------------------------------------------------------- Daemon

namespace {

// Self-pipe: the handler only write()s (async-signal-safe); a watcher
// thread turns the byte into a requestStop() call, which may take locks.
int g_sigPipe[2] = {-1, -1};

// The daemon the watcher acts on. Registered by installSignalDrain and
// cleared by ~Daemon under g_sigMu, so a SIGTERM racing destruction makes
// the watcher see nullptr instead of calling into a destroyed object.
std::mutex g_sigMu;
Daemon* g_sigDaemon = nullptr;

extern "C" void wjdSignalHandler(int) {
    const char b = 1;
    [[maybe_unused]] ssize_t r = ::write(g_sigPipe[1], &b, 1);
}

} // namespace

Daemon::Daemon(DaemonOptions opts) : impl_(new Impl) {
    impl_->opts = std::move(opts);
}

Daemon::~Daemon() {
    {
        std::lock_guard<std::mutex> lock(g_sigMu);
        if (g_sigDaemon == this) g_sigDaemon = nullptr;
    }
    requestStop();
    wait();
}

const std::string& Daemon::socketPath() const { return impl_->opts.socketPath; }

void Daemon::start() {
    Impl& d = *impl_;
    if (d.opts.socketPath.empty()) throw UsageError("wjd: socket path is required");
    if (d.opts.socketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
        throw UsageError("wjd: socket path too long: " + d.opts.socketPath);
    }
    d.workers = d.opts.workers > 0 ? d.opts.workers : envInt("WJD_WORKERS", 4);
    d.maxPerClient =
        d.opts.maxInflightPerClient > 0 ? d.opts.maxInflightPerClient
                                        : envInt("WJD_MAX_INFLIGHT", 8);
    d.queueCap = d.opts.queueCap > 0 ? d.opts.queueCap : envInt("WJD_QUEUE_CAP", 64);

    // Worker threads race their eviction sweeps against each other's
    // publishes; the grace window makes that safe (see jit/cache.h). Only
    // a default — an explicit setting (tests) wins.
    ::setenv("WJ_CACHE_EVICT_GRACE_MS", "10000", /*overwrite=*/0);

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, d.opts.socketPath.c_str(), sizeof(addr.sun_path) - 1);

    d.listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (d.listenFd < 0) throw UsageError("wjd: socket() failed");
    if (::bind(d.listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        if (errno == EADDRINUSE) {
            // A previous daemon's socket file. If nobody answers, it is
            // stale (crashed daemon) — steal it; if a live daemon answers,
            // refuse to fight over the path.
            const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
            const bool live =
                probe >= 0 &&
                ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
            if (probe >= 0) ::close(probe);
            if (live) {
                ::close(d.listenFd);
                d.listenFd = -1;
                throw UsageError("wjd: a daemon is already listening on " + d.opts.socketPath);
            }
            ::unlink(d.opts.socketPath.c_str());
            if (::bind(d.listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
                ::close(d.listenFd);
                d.listenFd = -1;
                throw UsageError("wjd: cannot bind " + d.opts.socketPath + ": " +
                                 std::strerror(errno));
            }
        } else {
            ::close(d.listenFd);
            d.listenFd = -1;
            throw UsageError("wjd: cannot bind " + d.opts.socketPath + ": " +
                             std::strerror(errno));
        }
    }
    if (::listen(d.listenFd, 128) != 0) {
        ::close(d.listenFd);
        d.listenFd = -1;
        throw UsageError(std::string("wjd: listen() failed: ") + std::strerror(errno));
    }

    if (!d.opts.bundleDir.empty()) {
        const int n = loadBundleDir(d.opts.bundleDir, d.opts.quiet);
        if (!d.opts.quiet) {
            std::fprintf(stderr, "wjd: preloaded %d bundle(s) from %s\n", n,
                         d.opts.bundleDir.c_str());
        }
    }

    d.started = true;
    for (int i = 0; i < d.workers; ++i) d.pool.emplace_back([&d] { d.workerLoop(); });
    d.acceptThread = std::thread([&d] { d.acceptLoop(); });
    if (!d.opts.quiet) {
        std::fprintf(stderr, "wjd: listening on %s (%d workers, %d/client, queue %d)\n",
                     d.opts.socketPath.c_str(), d.workers, d.maxPerClient, d.queueCap);
    }
}

void Daemon::requestStop() {
    Impl& d = *impl_;
    d.stopping.store(true);
    if (d.listenFd >= 0) ::shutdown(d.listenFd, SHUT_RDWR);
    d.cv.notify_all();
    d.drainCv.notify_all();
}

void Daemon::wait() {
    Impl& d = *impl_;
    if (!d.started) {
        if (d.listenFd >= 0) {
            ::close(d.listenFd);
            d.listenFd = -1;
        }
        return;
    }
    {
        std::unique_lock<std::mutex> lock(d.mu);
        d.drainCv.wait(lock, [&] {
            return d.stopping.load() && d.drained() && d.shutdownRepliers == 0;
        });
        d.workersExit = true;
    }
    d.cv.notify_all();
    for (auto& t : d.pool) t.join();
    d.pool.clear();
    if (d.acceptThread.joinable()) d.acceptThread.join();
    // Every admitted job has responded; now hang up on idle readers. A
    // reader exiting concurrently either removed its conn from d.conns
    // before the swap (it closed the fd itself, we never see it) or finds
    // the swapped-out containers empty and leaves both its conn and its
    // thread handle to us — never both sides touching one fd.
    std::vector<ConnPtr> conns;
    std::map<uint64_t, std::thread> readers;
    std::vector<std::thread> deadReaders;
    {
        std::lock_guard<std::mutex> lock(d.mu);
        conns.swap(d.conns);
        readers.swap(d.readers);
        deadReaders.swap(d.deadReaders);
    }
    for (auto& c : conns) c->shutdownNow();
    for (auto& kv : readers) kv.second.join();
    for (auto& t : deadReaders) t.join();
    for (auto& c : conns) c->closeNow();
    if (d.listenFd >= 0) {
        ::close(d.listenFd);
        d.listenFd = -1;
        ::unlink(d.opts.socketPath.c_str());
    }
    d.started = false;
    if (!d.opts.quiet) std::fprintf(stderr, "wjd: drained, exiting\n");
}

// ------------------------------------------------------------- signal drain

void installSignalDrain(Daemon& d) {
    if (g_sigPipe[0] >= 0) throw UsageError("wjd: signal drain already installed");
    if (::pipe(g_sigPipe) != 0) throw UsageError("wjd: pipe() failed");
    {
        std::lock_guard<std::mutex> lock(g_sigMu);
        g_sigDaemon = &d;
    }
    // The watcher deliberately does NOT capture the Daemon: it outlives any
    // one daemon (detached, blocked in read) and must consult the registry
    // under the lock each time it fires.
    std::thread([] {
        char b;
        while (::read(g_sigPipe[0], &b, 1) < 0 && errno == EINTR) {
        }
        std::lock_guard<std::mutex> lock(g_sigMu);
        if (g_sigDaemon) g_sigDaemon->requestStop();
    }).detach();
    struct sigaction sa{};
    sa.sa_handler = wjdSignalHandler;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

} // namespace wj::service
