// AOT artifact bundles: `wjc build` output, `wjd --bundles` input.
//
// The compile cache already makes warm starts free, but a fresh host (CI
// runner, new container) starts with an empty cache and pays the external
// compiler once per translation unit. A bundle is the deployable form of
// one translation: the generated C, the compiled .so, and a manifest
// recording the exact cache key the daemon will compute for that source
// under the recorded toolchain — so `wjd --bundles DIR` can publish the
// artifacts straight into the shared cache at startup and serve the first
// request of the day without ever invoking cc (a zero-compile cold start).
//
// Layout of one bundle directory:
//     module.c        the generated C translation unit
//     module.so       the compiled artifact
//     manifest.json   { "key": "16-hex", "cc": ..., "cflags": ...,
//                       "rt_version": "16-hex", "entry_symbol": ...,
//                       "tag": ..., "artifact": "module.so",
//                       "source": "module.c", "so_bytes": N }
//
// The key is only valid for the toolchain it was built with: loadBundleDir
// recomputes the current WJ_CC/WJ_CFLAGS/runtime-header environment and
// skips (with a note) any bundle whose recorded cc/cflags/rt_version
// disagree — publishing it would poison the cache with a .so that does not
// match what the daemon would compile.
#pragma once

#include <cstdint>
#include <string>

namespace wj {
struct Translation;
}

namespace wj::service {

struct BundleInfo {
    uint64_t key = 0;          ///< compile-cache content address
    std::string dir;           ///< bundle directory
    std::string artifactPath;  ///< <dir>/module.so
    std::string manifestPath;  ///< <dir>/manifest.json
    std::string entrySymbol;
};

/// Compiles `tr.cSource` (through the normal cache-aware pipeline — a warm
/// cache makes this free) and writes the bundle into `outDir`, creating it
/// if needed. Throws UsageError / compile errors on failure.
BundleInfo writeBundle(const std::string& outDir, const Translation& tr, const std::string& tag);

/// Publishes every valid bundle under `dir` (the directory itself, or any
/// immediate subdirectory, holding a manifest.json) into the compile cache.
/// Returns the number published; mismatched-toolchain and malformed bundles
/// are skipped with a note on stderr unless `quiet`.
int loadBundleDir(const std::string& dir, bool quiet = false);

} // namespace wj::service
