// The wjd wire protocol: length-prefixed frames over a Unix-domain socket.
//
// The paper's framework is a library the host program links against; wjd
// turns the compile pipeline into a shared multi-tenant service, so many
// short-lived clients amortize one warm daemon (and one compile cache)
// instead of each paying a cold JIT. The wire format is deliberately tiny —
// fixed 20-byte header + opaque body — so clients in any language can speak
// it with a dozen lines of code:
//
//     offset  size  field
//     0       4     magic "WJD1" (0x31444a57 little-endian on the wire:
//                   the bytes 'W' 'J' 'D' '1' in order)
//     4       4     type   (MsgType, little-endian u32)
//     8       8     reqId  (echoed verbatim in the response; clients may
//                   pipeline many requests on one connection and match
//                   responses by id — the daemon can answer out of order)
//     16      4     bodyLen (little-endian u32, max 16 MiB)
//     20      -     body (bodyLen bytes)
//
// Bodies are "kv lines + blank line + payload":
//
//     key=value\n ... \n<free-form payload bytes>
//
// Compile request kv: new= (composition expression), method=, args=
// (whitespace-separated entry-argument literals, optional); payload = the
// WJ source module. Ok response to a compile: key= (16-hex cache key),
// path= (artifact .so in the shared cache dir), cacheHit=, attempts=,
// joined=; Error response: code= (ErrCode number), name= (its enum name);
// payload = human-readable message. Stats Ok payload = the metrics
// registry JSON.
//
// Malformed input (bad magic, oversize body, truncated frame, junk kv) is
// always answered with a typed error or a clean connection close — never a
// crash; tests/test_frontend.cpp and test_service.cpp fuzz this boundary.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace wj::service {

constexpr uint32_t kMagic = 0x31444a57u;  // "WJD1" read as little-endian u32
constexpr uint32_t kMaxBody = 16u << 20;
constexpr size_t kHeaderBytes = 20;

enum class MsgType : uint32_t {
    // requests
    Compile = 1,
    Stats = 2,
    Ping = 3,
    Shutdown = 4,
    // responses
    Ok = 100,
    Error = 101,
};

/// Typed failure classes a response can carry (mirrors wjc's exit-code
/// taxonomy, but finer: the daemon must tell "your module is broken" from
/// "the service is saturated" from "the toolchain is gone").
enum class ErrCode : uint32_t {
    None = 0,
    BadRequest = 1,          ///< malformed frame/body or missing kv
    ParseError = 2,          ///< WJ source failed to parse (UsageError)
    SemanticError = 3,       ///< coding rules / analyses / composition failed
    CompileError = 4,        ///< external cc rejected the generated C
    CompilerUnavailable = 5, ///< cc missing — retries exhausted
    ResourceExhausted = 6,   ///< admission control rejected the request
    ShuttingDown = 7,        ///< daemon is draining; retry elsewhere/later
    Internal = 8,            ///< anything else (daemon-side bug)
};

const char* errName(ErrCode c) noexcept;

struct Frame {
    MsgType type = MsgType::Ping;
    uint64_t reqId = 0;
    std::string body;
};

/// Blocking full read of one frame. Returns false on clean EOF before any
/// header byte; throws UsageError on a malformed header (bad magic,
/// oversize body) or a mid-frame EOF/IO error.
bool readFrame(int fd, Frame& out);

/// Blocking full write (MSG_NOSIGNAL — a dead peer yields UsageError, not
/// SIGPIPE). Throws UsageError when the body exceeds kMaxBody or on IO
/// error.
void writeFrame(int fd, const Frame& f);

// ---- body codec -------------------------------------------------------
struct Body {
    std::vector<std::pair<std::string, std::string>> kv;
    std::string payload;

    /// Last value for `key`, or nullptr.
    const std::string* find(const std::string& key) const noexcept;
    void set(std::string key, std::string value);
};

/// kv lines + blank separator + payload. Throws UsageError if a key or
/// value contains '\n' / '='-in-key.
std::string encodeBody(const Body& b);

/// Inverse of encodeBody. Throws UsageError on a kv line without '='.
Body decodeBody(const std::string& raw);

// ---- convenience constructors -----------------------------------------
Frame makeError(uint64_t reqId, ErrCode code, const std::string& message);
Frame makeOk(uint64_t reqId, Body body);

} // namespace wj::service
