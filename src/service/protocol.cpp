#include "service/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/diagnostics.h"
#include "support/strings.h"

namespace wj::service {

namespace {

// The header is packed by hand (not a struct cast) so the wire format is
// identical regardless of host struct padding.
void putU32(unsigned char* p, uint32_t v) {
    p[0] = static_cast<unsigned char>(v);
    p[1] = static_cast<unsigned char>(v >> 8);
    p[2] = static_cast<unsigned char>(v >> 16);
    p[3] = static_cast<unsigned char>(v >> 24);
}

void putU64(unsigned char* p, uint64_t v) {
    putU32(p, static_cast<uint32_t>(v));
    putU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t getU32(const unsigned char* p) {
    return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t getU64(const unsigned char* p) {
    return static_cast<uint64_t>(getU32(p)) | static_cast<uint64_t>(getU32(p + 4)) << 32;
}

/// Reads exactly n bytes. Returns 0 on immediate EOF, n on success; throws
/// on partial EOF or IO error when `partialIsError`.
size_t readFull(int fd, void* buf, size_t n, bool partialIsError) {
    size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, static_cast<char*>(buf) + got, n - got);
        if (r == 0) {
            if (got == 0 && !partialIsError) return 0;
            throw UsageError(format("wjd protocol: connection closed mid-frame "
                                    "(%zu of %zu bytes)", got, n));
        }
        if (r < 0) {
            if (errno == EINTR) continue;
            throw UsageError(std::string("wjd protocol: read failed: ") + std::strerror(errno));
        }
        got += static_cast<size_t>(r);
    }
    return got;
}

void writeFull(int fd, const void* buf, size_t n) {
    size_t put = 0;
    while (put < n) {
        // MSG_NOSIGNAL: a client that disconnected mid-compile must surface
        // as an error return here, not kill the daemon with SIGPIPE.
        const ssize_t r = ::send(fd, static_cast<const char*>(buf) + put, n - put, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR) continue;
            throw UsageError(std::string("wjd protocol: write failed: ") + std::strerror(errno));
        }
        put += static_cast<size_t>(r);
    }
}

} // namespace

const char* errName(ErrCode c) noexcept {
    switch (c) {
    case ErrCode::None: return "NONE";
    case ErrCode::BadRequest: return "BAD_REQUEST";
    case ErrCode::ParseError: return "PARSE_ERROR";
    case ErrCode::SemanticError: return "SEMANTIC_ERROR";
    case ErrCode::CompileError: return "COMPILE_ERROR";
    case ErrCode::CompilerUnavailable: return "COMPILER_UNAVAILABLE";
    case ErrCode::ResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrCode::ShuttingDown: return "SHUTTING_DOWN";
    case ErrCode::Internal: return "INTERNAL";
    }
    return "UNKNOWN";
}

bool readFrame(int fd, Frame& out) {
    unsigned char hdr[kHeaderBytes];
    if (readFull(fd, hdr, sizeof hdr, /*partialIsError=*/false) == 0) return false;
    const uint32_t magic = getU32(hdr);
    if (magic != kMagic) {
        throw UsageError(format("wjd protocol: bad magic 0x%08x (expected \"WJD1\")", magic));
    }
    const uint32_t type = getU32(hdr + 4);
    const uint64_t reqId = getU64(hdr + 8);
    const uint32_t len = getU32(hdr + 16);
    if (len > kMaxBody) {
        throw UsageError(format("wjd protocol: body of %u bytes exceeds the %u-byte cap",
                                len, kMaxBody));
    }
    out.type = static_cast<MsgType>(type);
    out.reqId = reqId;
    out.body.resize(len);
    if (len > 0) readFull(fd, out.body.data(), len, /*partialIsError=*/true);
    return true;
}

void writeFrame(int fd, const Frame& f) {
    if (f.body.size() > kMaxBody) {
        throw UsageError(format("wjd protocol: refusing to send %zu-byte body (cap %u)",
                                f.body.size(), kMaxBody));
    }
    unsigned char hdr[kHeaderBytes];
    putU32(hdr, kMagic);
    putU32(hdr + 4, static_cast<uint32_t>(f.type));
    putU64(hdr + 8, f.reqId);
    putU32(hdr + 16, static_cast<uint32_t>(f.body.size()));
    // One gathered buffer per frame so concurrent writers interleave at
    // frame granularity under the connection write lock, never mid-frame.
    std::string wire;
    wire.reserve(sizeof hdr + f.body.size());
    wire.append(reinterpret_cast<const char*>(hdr), sizeof hdr);
    wire.append(f.body);
    writeFull(fd, wire.data(), wire.size());
}

const std::string* Body::find(const std::string& key) const noexcept {
    const std::string* hit = nullptr;
    for (const auto& [k, v] : kv) {
        if (k == key) hit = &v;
    }
    return hit;
}

void Body::set(std::string key, std::string value) {
    kv.emplace_back(std::move(key), std::move(value));
}

std::string encodeBody(const Body& b) {
    std::string out;
    for (const auto& [k, v] : b.kv) {
        if (k.empty() || k.find('=') != std::string::npos || k.find('\n') != std::string::npos ||
            v.find('\n') != std::string::npos) {
            throw UsageError("wjd protocol: kv keys/values must be non-empty and newline-free");
        }
        out += k;
        out += '=';
        out += v;
        out += '\n';
    }
    out += '\n';
    out += b.payload;
    return out;
}

Body decodeBody(const std::string& raw) {
    Body b;
    size_t pos = 0;
    for (;;) {
        const size_t nl = raw.find('\n', pos);
        if (nl == std::string::npos) {
            throw UsageError("wjd protocol: body missing the blank kv/payload separator");
        }
        if (nl == pos) {  // blank line: payload follows
            b.payload = raw.substr(nl + 1);
            return b;
        }
        const size_t eq = raw.find('=', pos);
        if (eq == std::string::npos || eq > nl) {
            throw UsageError("wjd protocol: kv line without '='");
        }
        b.kv.emplace_back(raw.substr(pos, eq - pos), raw.substr(eq + 1, nl - eq - 1));
        pos = nl + 1;
    }
}

Frame makeError(uint64_t reqId, ErrCode code, const std::string& message) {
    Body b;
    b.set("code", format("%u", static_cast<unsigned>(code)));
    b.set("name", errName(code));
    // Error text can be multi-line (compiler stderr, violation lists) — it
    // rides in the payload, which is free-form.
    b.payload = message;
    Frame f;
    f.type = MsgType::Error;
    f.reqId = reqId;
    f.body = encodeBody(b);
    return f;
}

Frame makeOk(uint64_t reqId, Body body) {
    Frame f;
    f.type = MsgType::Ok;
    f.reqId = reqId;
    f.body = encodeBody(body);
    return f;
}

} // namespace wj::service
