// Client side of the wjd protocol — used by wjd_client, the load bench,
// and the service tests. One Client is one connection; it is not
// thread-safe (the load bench gives each thread its own).
#pragma once

#include <cstdint>
#include <string>

#include "service/protocol.h"

namespace wj::service {

class Client {
public:
    Client() = default;
    ~Client();
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;
    Client(Client&& o) noexcept;
    Client& operator=(Client&& o) noexcept;

    /// Connects to a listening daemon; throws UsageError on failure.
    void connect(const std::string& socketPath);
    void close();
    bool connected() const noexcept { return fd_ >= 0; }
    int fd() const noexcept { return fd_; }

    /// Every RPC's decoded result. ok==true: the key/path/... fields are
    /// valid. ok==false: code/name/message describe the typed failure.
    struct Reply {
        bool ok = false;
        ErrCode code = ErrCode::None;
        std::string name;     ///< errName(code) as sent by the daemon
        std::string message;  ///< error payload
        // compile success fields
        std::string keyHex;
        std::string path;
        bool cacheHit = false;
        int attempts = 0;
        // stats success field
        std::string statsJson;
    };

    /// Submits a module for compilation and blocks for the response.
    /// `argsLine` is the whitespace-separated entry-argument literals.
    Reply compile(const std::string& wjSource, const std::string& newExpr,
                  const std::string& method, const std::string& argsLine = "");

    Reply ping();
    Reply stats();
    /// Requests a drain; the daemon answers after every in-flight compile
    /// finished.
    Reply shutdown();

    /// Sends raw bytes on the socket (protocol-fuzz tests).
    void sendRaw(const void* data, size_t n);
    /// Reads one response frame (throws UsageError on protocol garbage,
    /// returns false on EOF).
    bool readReply(Frame& out);

private:
    Reply roundTrip(MsgType type, const std::string& body);

    int fd_ = -1;
    uint64_t nextReq_ = 1;
};

} // namespace wj::service
