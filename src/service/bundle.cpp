#include "service/bundle.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "jit/cache.h"
#include "jit/codegen.h"
#include "jit/compile.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "trace/metrics.h"

namespace fs = std::filesystem;

namespace wj::service {

namespace {

std::string jsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (c == '\n') { out += "\\n"; continue; }
        out += c;
    }
    return out;
}

/// Minimal extractor for the flat manifests this module itself writes:
/// finds `"name"` and returns the quoted string after the colon ("" if
/// absent/malformed). Handles \" and \\ escapes, nothing fancier.
std::string jsonStr(const std::string& text, const std::string& name) {
    const std::string needle = "\"" + name + "\"";
    size_t p = text.find(needle);
    if (p == std::string::npos) return "";
    p = text.find(':', p + needle.size());
    if (p == std::string::npos) return "";
    p = text.find('"', p);
    if (p == std::string::npos) return "";
    std::string out;
    for (++p; p < text.size(); ++p) {
        if (text[p] == '\\' && p + 1 < text.size()) {
            out += text[p + 1] == 'n' ? '\n' : text[p + 1];
            ++p;
            continue;
        }
        if (text[p] == '"') return out;
        out += text[p];
    }
    return "";
}

bool slurp(const fs::path& p, std::string& out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/// Publishes one bundle directory. Returns true if the artifact went into
/// the cache.
bool loadOne(const fs::path& dir, bool quiet) {
    const fs::path manifest = dir / "manifest.json";
    std::string text;
    if (!slurp(manifest, text)) return false;
    const std::string keyHex = jsonStr(text, "key");
    const std::string artifact = jsonStr(text, "artifact");
    const std::string source = jsonStr(text, "source");
    const std::string tag = jsonStr(text, "tag");
    auto skip = [&](const char* why) {
        if (!quiet) std::fprintf(stderr, "wjd: skipping bundle %s: %s\n", dir.c_str(), why);
        return false;
    };
    if (keyHex.size() != 16 || artifact.empty() || source.empty()) {
        return skip("malformed manifest");
    }
    const uint64_t key = std::strtoull(keyHex.c_str(), nullptr, 16);
    std::string cSource;
    if (!slurp(dir / source, cSource)) return skip("missing generated source");
    // The recorded key is only meaningful for the toolchain that produced
    // it. Recomputing the content address for the bundled source under the
    // CURRENT WJ_CC/WJ_CFLAGS/runtime headers catches every kind of drift
    // at once: a mismatch means this .so is not what the daemon would
    // build, and publishing it would serve wrong code as a "cache hit".
    if (cacheKeyFor(cSource) != key) {
        return skip("toolchain/runtime drift (recorded key no longer matches)");
    }
    std::error_code ec;
    if (!fs::exists(dir / artifact, ec)) return skip("missing artifact");
    return !JitCache::instance().store(key, (dir / artifact).string(),
                                       tag.empty() ? "bundle" : tag).empty();
}

} // namespace

BundleInfo writeBundle(const std::string& outDir, const Translation& tr, const std::string& tag) {
    JitCache& cache = JitCache::instance();
    if (!cache.enabled()) {
        throw UsageError("wjc build: the compile cache is disabled (WJ_CACHE=0); "
                         "bundles are built through it");
    }
    // Normal cache-aware compile: free when warm, and it publishes the .so
    // we bundle.
    compileAndLoad(tr.cSource, tag);
    const uint64_t key = cacheKeyFor(tr.cSource);
    const std::string published = cache.entryPath(key);
    std::error_code ec;
    if (!fs::exists(published, ec)) {
        throw UsageError("wjc build: compile succeeded but the cache holds no artifact for " +
                         published + " (cache dir unwritable?)");
    }

    fs::create_directories(outDir, ec);
    if (ec) throw UsageError("wjc build: cannot create " + outDir + ": " + ec.message());
    BundleInfo info;
    info.key = key;
    info.dir = outDir;
    info.artifactPath = (fs::path(outDir) / "module.so").string();
    info.manifestPath = (fs::path(outDir) / "manifest.json").string();
    info.entrySymbol = tr.entrySymbol;

    {
        std::ofstream src(fs::path(outDir) / "module.c", std::ios::binary | std::ios::trunc);
        src << tr.cSource;
        if (!src) throw UsageError("wjc build: cannot write module.c");
    }
    fs::copy_file(published, info.artifactPath, fs::copy_options::overwrite_existing, ec);
    if (ec) throw UsageError("wjc build: cannot copy artifact: " + ec.message());

    const uint64_t soBytes = fs::file_size(info.artifactPath, ec);
    std::ofstream mf(info.manifestPath, std::ios::trunc);
    mf << "{\n"
       << "  \"key\": \"" << format("%016llx", static_cast<unsigned long long>(key)) << "\",\n"
       << "  \"cc\": \"" << jsonEscape(resolvedCompiler()) << "\",\n"
       << "  \"cflags\": \"" << jsonEscape(resolvedFlags()) << "\",\n"
       << "  \"entry_symbol\": \"" << jsonEscape(tr.entrySymbol) << "\",\n"
       << "  \"tag\": \"" << jsonEscape(tag) << "\",\n"
       << "  \"artifact\": \"module.so\",\n"
       << "  \"source\": \"module.c\",\n"
       << "  \"so_bytes\": " << soBytes << "\n"
       << "}\n";
    if (!mf) throw UsageError("wjc build: cannot write manifest.json");
    return info;
}

int loadBundleDir(const std::string& dir, bool quiet) {
    static auto& preloaded = trace::Metrics::instance().counter("wjd.bundles.preloaded");
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        throw UsageError("wjd: bundle path is not a directory: " + dir);
    }
    int n = 0;
    if (fs::exists(fs::path(dir) / "manifest.json", ec)) {
        if (loadOne(dir, quiet)) ++n;
    }
    for (const auto& de : fs::directory_iterator(dir, ec)) {
        if (!de.is_directory()) continue;
        if (fs::exists(de.path() / "manifest.json", ec) && loadOne(de.path(), quiet)) ++n;
    }
    preloaded.add(n);
    return n;
}

} // namespace wj::service
