// wjd — the multi-tenant JIT compile daemon.
//
// One warm daemon owns the parse→rules→translate→compile pipeline and the
// shared compile cache; many clients submit WJ modules over a Unix-domain
// socket (protocol.h) and get back the artifact path. What the daemon adds
// over "every client runs wjc":
//
//   * in-flight dedup (singleflight): concurrent Compile requests that
//     resolve to the same cache key join ONE external cc invocation —
//     in-process via a key→future map, cross-process via the cache's
//     BuildLock — so a thundering herd of N identical cold requests costs
//     one compile, not N;
//   * admission control: per-connection in-flight cap (WJD_MAX_INFLIGHT,
//     default 8) and a global compile-queue cap (WJD_QUEUE_CAP, default
//     64). Past either, the request is REJECTED immediately with
//     RESOURCE_EXHAUSTED — a saturated daemon stays responsive (Ping/Stats
//     never queue behind compiles) instead of accumulating unbounded work;
//   * a bounded worker pool (WJD_WORKERS, default 4) running the compile
//     pipeline, which already carries the retry/backoff ladder
//     (WJ_JIT_RETRIES) and typed fault taxonomy;
//   * graceful drain: SIGTERM or a Shutdown request stops admission
//     (new Compiles get SHUTTING_DOWN), finishes every in-flight compile,
//     answers the shutdown, and exits — no orphaned cc children, no
//     half-written artifacts (the cache's atomic publish guarantees the
//     latter even on SIGKILL);
//   * observability: per-stage spans (category "wjd") and a metrics
//     registry any client can dump with a Stats request —
//     wjd.requests.*, wjd.compile.{ok,errors,joins}, wjd.admission.
//     rejects.{client,queue}, histograms wjd.{request,compile}.micros.
//
// Client disconnect mid-compile does NOT cancel or orphan the work: the
// compile completes (other clients may be joined to it and the artifact
// warms the cache either way), the response write fails silently, and the
// in-flight entry is reaped normally.
//
// Unless the caller set it, the daemon exports WJ_CACHE_EVICT_GRACE_MS=10000
// at start: concurrent eviction sweeps from N worker threads must never
// unlink an artifact another request just published but has not yet
// reported to its client.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace wj::service {

struct DaemonOptions {
    std::string socketPath;    ///< required: where to listen
    std::string bundleDir;     ///< optional: preload bundles at start
    int workers = 0;           ///< 0 = $WJD_WORKERS or 4
    int maxInflightPerClient = 0;  ///< 0 = $WJD_MAX_INFLIGHT or 8
    int queueCap = 0;          ///< 0 = $WJD_QUEUE_CAP or 64
    bool quiet = false;        ///< suppress stderr chatter (tests/benches)
};

class Daemon {
public:
    explicit Daemon(DaemonOptions opts);
    ~Daemon();  ///< requestStop() + wait()

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// Binds the socket (stealing it from a dead previous daemon, refusing
    /// a live one), preloads bundles, starts the accept thread and worker
    /// pool. Throws UsageError on bind failure.
    void start();

    /// Begins the drain: stop accepting connections, reject new Compiles
    /// with SHUTTING_DOWN, let in-flight work finish. Idempotent, callable
    /// from a signal-forwarding thread.
    void requestStop();

    /// Blocks until the drain completes and every thread has joined.
    void wait();

    const std::string& socketPath() const;

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/// Installs SIGTERM/SIGINT handlers that requestStop() `d` (the wjd main
/// uses this; tests drive requestStop directly). Only one daemon per
/// process can be signal-managed.
void installSignalDrain(Daemon& d);

} // namespace wj::service
