#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/diagnostics.h"

namespace wj::service {

Client::~Client() { close(); }

Client::Client(Client&& o) noexcept : fd_(o.fd_), nextReq_(o.nextReq_) { o.fd_ = -1; }

Client& Client::operator=(Client&& o) noexcept {
    if (this != &o) {
        close();
        fd_ = std::exchange(o.fd_, -1);
        nextReq_ = o.nextReq_;
    }
    return *this;
}

void Client::connect(const std::string& socketPath) {
    close();
    if (socketPath.size() >= sizeof(sockaddr_un{}.sun_path)) {
        throw UsageError("wjd client: socket path too long: " + socketPath);
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw UsageError("wjd client: socket() failed");
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        throw UsageError("wjd client: cannot connect to " + socketPath + ": " +
                         std::strerror(err));
    }
}

void Client::close() {
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Client::sendRaw(const void* data, size_t n) {
    size_t put = 0;
    while (put < n) {
        const ssize_t r =
            ::send(fd_, static_cast<const char*>(data) + put, n - put, MSG_NOSIGNAL);
        if (r < 0) {
            if (errno == EINTR) continue;
            throw UsageError(std::string("wjd client: send failed: ") + std::strerror(errno));
        }
        put += static_cast<size_t>(r);
    }
}

bool Client::readReply(Frame& out) { return readFrame(fd_, out); }

Client::Reply Client::roundTrip(MsgType type, const std::string& body) {
    if (fd_ < 0) throw UsageError("wjd client: not connected");
    Frame req;
    req.type = type;
    req.reqId = nextReq_++;
    req.body = body;
    writeFrame(fd_, req);
    Frame resp;
    if (!readFrame(fd_, resp)) {
        throw UsageError("wjd client: daemon closed the connection before responding");
    }
    if (resp.reqId != req.reqId) {
        throw UsageError("wjd client: response id mismatch (single in-flight request)");
    }
    Reply r;
    const Body b = decodeBody(resp.body);
    if (resp.type == MsgType::Ok) {
        r.ok = true;
        if (const std::string* v = b.find("key")) r.keyHex = *v;
        if (const std::string* v = b.find("path")) r.path = *v;
        if (const std::string* v = b.find("cacheHit")) r.cacheHit = *v == "1";
        if (const std::string* v = b.find("attempts")) r.attempts = std::atoi(v->c_str());
        r.statsJson = b.payload;
        return r;
    }
    if (resp.type == MsgType::Error) {
        if (const std::string* v = b.find("code")) {
            r.code = static_cast<ErrCode>(std::strtoul(v->c_str(), nullptr, 10));
        }
        if (const std::string* v = b.find("name")) r.name = *v;
        r.message = b.payload;
        return r;
    }
    throw UsageError("wjd client: unexpected response frame type");
}

Client::Reply Client::compile(const std::string& wjSource, const std::string& newExpr,
                              const std::string& method, const std::string& argsLine) {
    Body b;
    b.set("new", newExpr);
    b.set("method", method);
    if (!argsLine.empty()) b.set("args", argsLine);
    b.payload = wjSource;
    return roundTrip(MsgType::Compile, encodeBody(b));
}

Client::Reply Client::ping() { return roundTrip(MsgType::Ping, encodeBody(Body{})); }

Client::Reply Client::stats() { return roundTrip(MsgType::Stats, encodeBody(Body{})); }

Client::Reply Client::shutdown() { return roundTrip(MsgType::Shutdown, encodeBody(Body{})); }

} // namespace wj::service
