// In-memory coordinated checkpoint store for checkpoint/restart.
//
// Real MPI applications on failure-prone machines checkpoint their field
// arrays every K iterations so a rank kill costs at most K steps of rework.
// WootinC's translated code runs in per-rank private memory that is
// deliberately NOT copied back to the host (paper Section 3.1), so recovery
// state must leave the world through a dedicated channel: the
// WootinJ.ckptSaveF32 / ckptLoadF32 intrinsics call into this host-side
// store, which outlives any single World::run.
//
// Consistency model (what coordinated checkpointing gives real MPI codes):
// every rank saves snapshots tagged with its iteration counter; a kill can
// land between two ranks' saves of the same generation, so the store keeps
// the last `keep` generations per (rank, slot) (default two) and restart
// uses the newest generation that EVERY rank completed ("last consistent
// checkpoint"). Ranks drift apart by up to one step per neighbour hop, so
// deeply skewed worlds (e.g. ring halo exchanges with a fast rank several
// steps ahead) should arm with a deeper window to guarantee an overlap.
// Snapshots are CRC-checked; a corrupt snapshot disqualifies its
// generation, falling back to the previous one (or a from-scratch run).
//
// Driver protocol:
//   store.arm(ranks, interval);      // before the first run
//   try { code.invoke(); }           // saves happen inside the world
//   catch (ExecError&) {
//       store.resolve();             // freeze the restart generation
//       code.invoke();               // loads resume from it
//   }
//
// Saves are ignored while the store is disarmed, so checkpoint-aware
// kernels cost one no-op call per iteration in normal runs.
#pragma once

#include <cstdint>
#include <string>

namespace wj::fault {

class CheckpointStore {
public:
    static CheckpointStore& instance();

    /// Enables the store for a `ranks`-rank world, saving every `interval`
    /// iterations (interval <= 1 keeps every save) and retaining the last
    /// `keep` generations per (rank, slot). Clears previous state.
    void arm(int ranks, int interval, int keep = 2);

    /// Like arm(), but snapshots live as files in `dir` (created if needed)
    /// instead of process memory — the mode the process transport needs,
    /// where each rank is a forked child whose memory vanishes at exit (or
    /// at SIGKILL). Each save is crash-durable: the snapshot is written to
    /// a temp file, fsync'ed, atomically renamed to its generation name,
    /// and the directory fsync'ed — so a SIGKILL at ANY point leaves either
    /// the previous generation or the complete new one, never a torn file.
    /// With `preserve` false any existing snapshots in `dir` are removed
    /// (fresh run); true keeps them (the `wjrun --restart` path).
    void armDisk(const std::string& dir, int ranks, int interval, int keep = 2,
                 bool preserve = false);

    /// True when armed in disk mode.
    bool diskMode() const;

    /// Snapshot directory when in disk mode, "" otherwise.
    std::string directory() const;

    /// Disables the store, drops all snapshots, and zeroes the counters.
    void disarm();

    bool armed() const;
    int interval() const;
    int keep() const;

    // ---- world-side (wjrt intrinsics) ---------------------------------
    /// Records a snapshot of `n` floats for (rank, slot) at iteration
    /// `iter`. No-op when disarmed or when `iter` is off the interval.
    /// Keeps the last `keep` generations per (rank, slot).
    void save(int rank, int slot, int64_t iter, const float* data, int64_t n);

    /// Restores (rank, slot) from the resolved generation into `data`.
    /// Returns the restored iteration, or -1 when there is nothing to
    /// restore (disarmed, unresolved, missing snapshot, size mismatch, or
    /// CRC failure).
    int64_t load(int rank, int slot, float* data, int64_t n);

    // ---- driver-side ---------------------------------------------------
    /// Freezes the restart generation: the newest iteration for which every
    /// rank holds a CRC-valid snapshot of every slot it ever saved. Returns
    /// that iteration, or -1 if no consistent generation exists (subsequent
    /// loads then return -1 and kernels restart from scratch).
    int64_t resolve();

    // ---- observability -------------------------------------------------
    int64_t saves() const;     ///< snapshots actually recorded
    int64_t restores() const;  ///< successful load() calls
    int64_t crcFailures() const;
    /// Latest snapshot iteration held for (rank, slot); -1 if none.
    int64_t latestIter(int rank, int slot) const;
    /// Flips one payload byte of the newest (rank, slot) snapshot without
    /// updating its CRC (tests exercise the corruption path with this).
    void corruptSnapshot(int rank, int slot);

private:
    CheckpointStore() = default;

    struct Impl;
    Impl& impl() const;
};

} // namespace wj::fault
