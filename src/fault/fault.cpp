#include "fault/fault.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>

#include <unistd.h>

#include "support/diagnostics.h"
#include "support/prng.h"
#include "support/strings.h"
#include "trace/trace.h"

namespace wj::fault {

namespace {

enum class Action { Kill, Drop, Dup, Corrupt, Delay, FailCompile, CorruptCache };

constexpr int kAny = -1;

const char* actionName(Action a) {
    switch (a) {
    case Action::Kill: return "kill";
    case Action::Drop: return "drop";
    case Action::Dup: return "dup";
    case Action::Corrupt: return "corrupt";
    case Action::Delay: return "delay";
    case Action::FailCompile: return "failcompile";
    case Action::CorruptCache: return "corruptcache";
    }
    return "?";
}

struct Rule {
    Action act;
    int rank = kAny;   // kill
    int src = kAny;    // message filters
    int dest = kAny;
    int tag = kAny;
    int64_t nth = 1;   // 1-based trigger index among matching events
    int64_t count = 1; // how many consecutive matches to affect
    double prob = -1;  // >= 0 replaces nth/count with a seeded coin flip
    int ms = 10;       // delay duration

    // Mutable firing state (guarded by the plan mutex).
    int64_t matched = 0;
    // Per-rank op counters for kill rules (index = rank, grown on demand).
    std::vector<int64_t> ops;
};

std::vector<std::string> splitOn(const std::string& s, char sep) {
    std::vector<std::string> out;
    size_t start = 0;
    for (;;) {
        const size_t p = s.find(sep, start);
        if (p == std::string::npos) {
            out.push_back(s.substr(start));
            return out;
        }
        out.push_back(s.substr(start, p - start));
        start = p + 1;
    }
}

std::string trim(const std::string& s) {
    size_t b = s.find_first_not_of(" \t");
    if (b == std::string::npos) return "";
    size_t e = s.find_last_not_of(" \t");
    return s.substr(b, e - b + 1);
}

int64_t parseI64(const std::string& seg, const std::string& v) {
    try {
        size_t pos = 0;
        const long long n = std::stoll(v, &pos);
        if (pos != v.size()) throw std::invalid_argument(v);
        return n;
    } catch (const std::exception&) {
        throw UsageError("WJ_FAULT: bad integer '" + v + "' in '" + seg + "'");
    }
}

double parseProb(const std::string& seg, const std::string& v) {
    try {
        size_t pos = 0;
        const double p = std::stod(v, &pos);
        if (pos != v.size() || p < 0 || p > 1) throw std::invalid_argument(v);
        return p;
    } catch (const std::exception&) {
        throw UsageError("WJ_FAULT: bad probability '" + v + "' in '" + seg + "' (want 0..1)");
    }
}

} // namespace

std::atomic<bool> FaultPlan::active_{false};
std::atomic<bool> FaultPlan::sigkillMode_{false};

struct FaultPlan::Impl {
    mutable std::mutex m;
    uint64_t seed = 1;
    std::vector<Rule> rules;
    int64_t compileAttempts = 0;
    int64_t cacheStores = 0;
    Stats stats;
};

FaultPlan::Impl& FaultPlan::impl() const {
    static Impl i;
    return i;
}

FaultPlan& FaultPlan::instance() {
    static FaultPlan plan;
    static std::once_flag once;
    std::call_once(once, [] {
        if (const char* spec = std::getenv("WJ_FAULT"); spec && *spec) {
            plan.configure(spec);
        }
    });
    return plan;
}

void FaultPlan::configure(const std::string& spec) {
    uint64_t seed = 1;
    std::vector<Rule> rules;
    for (const std::string& rawSeg : splitOn(spec, ';')) {
        const std::string seg = trim(rawSeg);
        if (seg.empty()) continue;
        const size_t colon = seg.find(':');
        const std::string head = trim(seg.substr(0, colon));
        if (head.rfind("seed=", 0) == 0) {
            if (colon != std::string::npos) {
                throw UsageError("WJ_FAULT: seed takes no ':' arguments in '" + seg + "'");
            }
            seed = static_cast<uint64_t>(parseI64(seg, head.substr(5)));
            continue;
        }
        Rule r;
        if (head == "kill") r.act = Action::Kill;
        else if (head == "drop") r.act = Action::Drop;
        else if (head == "dup") r.act = Action::Dup;
        else if (head == "corrupt") r.act = Action::Corrupt;
        else if (head == "delay") r.act = Action::Delay;
        else if (head == "failcompile") r.act = Action::FailCompile;
        else if (head == "corruptcache") r.act = Action::CorruptCache;
        else throw UsageError("WJ_FAULT: unknown action '" + head + "' in '" + seg + "'");

        if (colon != std::string::npos) {
            for (const std::string& rawKv : splitOn(seg.substr(colon + 1), ',')) {
                const std::string kv = trim(rawKv);
                if (kv.empty()) continue;
                const size_t eq = kv.find('=');
                if (eq == std::string::npos) {
                    throw UsageError("WJ_FAULT: expected key=value, got '" + kv + "' in '" + seg +
                                     "'");
                }
                const std::string k = trim(kv.substr(0, eq));
                const std::string v = trim(kv.substr(eq + 1));
                if (k == "rank") r.rank = static_cast<int>(parseI64(seg, v));
                else if (k == "src") r.src = static_cast<int>(parseI64(seg, v));
                else if (k == "dest") r.dest = static_cast<int>(parseI64(seg, v));
                else if (k == "tag") r.tag = static_cast<int>(parseI64(seg, v));
                else if (k == "op" || k == "nth") r.nth = parseI64(seg, v);
                else if (k == "count") r.count = parseI64(seg, v);
                else if (k == "prob") r.prob = parseProb(seg, v);
                else if (k == "ms") r.ms = static_cast<int>(parseI64(seg, v));
                else throw UsageError("WJ_FAULT: unknown key '" + k + "' in '" + seg + "'");
            }
        }
        if (r.act == Action::Kill && r.rank < 0) {
            throw UsageError("WJ_FAULT: kill requires rank=<r> in '" + seg + "'");
        }
        if (r.nth < 1) throw UsageError("WJ_FAULT: nth/op must be >= 1 in '" + seg + "'");
        if (r.count < 1) throw UsageError("WJ_FAULT: count must be >= 1 in '" + seg + "'");
        rules.push_back(std::move(r));
    }

    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    im.seed = seed;
    im.rules = std::move(rules);
    im.compileAttempts = 0;
    im.cacheStores = 0;
    active_.store(!im.rules.empty(), std::memory_order_relaxed);
}

void FaultPlan::disarm() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    im.rules.clear();
    im.compileAttempts = 0;
    im.cacheStores = 0;
    active_.store(false, std::memory_order_relaxed);
}

std::string FaultPlan::describe() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    std::string out = format("seed=%llu", static_cast<unsigned long long>(im.seed));
    for (const Rule& r : im.rules) {
        out += format(";%s", actionName(r.act));
        std::string kv;
        auto add = [&](const char* k, int64_t v) {
            kv += kv.empty() ? ":" : ",";
            kv += format("%s=%lld", k, static_cast<long long>(v));
        };
        if (r.rank != kAny) add("rank", r.rank);
        if (r.src != kAny) add("src", r.src);
        if (r.dest != kAny) add("dest", r.dest);
        if (r.tag != kAny) add("tag", r.tag);
        if (r.prob >= 0) {
            kv += kv.empty() ? ":" : ",";
            kv += format("prob=%g", r.prob);
        } else {
            add(r.act == Action::Kill ? "op" : "nth", r.nth);
            if (r.count != 1) add("count", r.count);
        }
        if (r.act == Action::Delay) add("ms", r.ms);
        out += kv;
    }
    return out;
}

namespace {

/// Counter-window or seeded-coin trigger decision for one matching event.
/// `matched` has already been incremented for this event.
bool fires(const Rule& r, uint64_t planSeed) {
    if (r.prob >= 0) {
        // Deterministic per-event draw: hash (seed, event index) so replay
        // with the same schedule reproduces the same verdicts.
        SplitMix64 g(planSeed ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(r.matched)));
        return g.nextDouble() < r.prob;
    }
    return r.matched >= r.nth && r.matched < r.nth + r.count;
}

} // namespace

void FaultPlan::onCommOp(int rank) {
    Impl& im = impl();
    std::string killMsg;
    {
        std::lock_guard<std::mutex> lock(im.m);
        for (Rule& r : im.rules) {
            if (r.act != Action::Kill) continue;
            if (r.rank != rank) continue;
            if (r.ops.size() <= static_cast<size_t>(rank)) {
                r.ops.resize(static_cast<size_t>(rank) + 1, 0);
            }
            const int64_t op = ++r.ops[static_cast<size_t>(rank)];
            if (op >= r.nth && op < r.nth + r.count) {
                ++im.stats.kills;
                killMsg = format("injected fault: rank %d killed at comm op %lld (WJ_FAULT)",
                                 rank, static_cast<long long>(op));
                break;
            }
        }
    }
    if (!killMsg.empty()) {
        trace::instant("fault", "kill", "rank", rank);
        if (killsWithSigkill()) {
            std::fprintf(stderr, "%s — delivering SIGKILL to pid %d\n", killMsg.c_str(),
                         static_cast<int>(::getpid()));
            std::fflush(stderr);
            ::raise(SIGKILL);
        }
        throw ExecError(killMsg);
    }
}

MsgFate FaultPlan::onMessage(int src, int dest, int tag, std::vector<uint8_t>& payload) {
    Impl& im = impl();
    MsgFate fate = MsgFate::Deliver;
    int delayMs = 0;
    {
        std::lock_guard<std::mutex> lock(im.m);
        for (Rule& r : im.rules) {
            if (r.act == Action::Kill || r.act == Action::FailCompile ||
                r.act == Action::CorruptCache) {
                continue;
            }
            if (r.src != kAny && r.src != src) continue;
            if (r.dest != kAny && r.dest != dest) continue;
            if (r.tag != kAny && r.tag != tag) continue;
            ++r.matched;
            if (!fires(r, im.seed)) continue;
            switch (r.act) {
            case Action::Drop:
                ++im.stats.drops;
                trace::instant("fault", "drop", "src", src, "dest", dest, "tag", tag);
                return MsgFate::Drop;
            case Action::Dup:
                ++im.stats.duplicates;
                trace::instant("fault", "dup", "src", src, "dest", dest, "tag", tag);
                fate = MsgFate::Duplicate;
                break;
            case Action::Corrupt:
                if (!payload.empty()) {
                    // Deterministic position and mask from the plan seed and
                    // the rule's match index.
                    SplitMix64 g(im.seed ^ static_cast<uint64_t>(r.matched));
                    const size_t at = static_cast<size_t>(g.nextBelow(payload.size()));
                    payload[at] ^= static_cast<uint8_t>(g.next() | 1);
                    ++im.stats.corruptions;
                    trace::instant("fault", "corrupt", "src", src, "dest", dest, "tag", tag);
                }
                break;
            case Action::Delay:
                delayMs = std::max(delayMs, r.ms);
                ++im.stats.delays;
                break;
            default:
                break;
            }
        }
    }
    // Sleep outside the plan lock so a delayed sender stalls only itself.
    if (delayMs > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delayMs));
    return fate;
}

bool FaultPlan::failThisCompile() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    const int64_t attempt = ++im.compileAttempts;
    for (Rule& r : im.rules) {
        if (r.act != Action::FailCompile) continue;
        r.matched = attempt;
        if (fires(r, im.seed)) {
            ++im.stats.compileFailures;
            return true;
        }
    }
    return false;
}

bool FaultPlan::maybeCorruptCacheFile(const std::string& path) {
    Impl& im = impl();
    bool corrupt = false;
    {
        std::lock_guard<std::mutex> lock(im.m);
        const int64_t store = ++im.cacheStores;
        for (Rule& r : im.rules) {
            if (r.act != Action::CorruptCache) continue;
            r.matched = store;
            if (fires(r, im.seed)) {
                corrupt = true;
                break;
            }
        }
    }
    if (!corrupt) return false;
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    if (!f) return false;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    if (size > 0) {
        std::fseek(f, size / 2, SEEK_SET);
        int c = std::fgetc(f);
        if (c != EOF) {
            std::fseek(f, size / 2, SEEK_SET);
            std::fputc((c ^ 0x5a) & 0xff, f);
        }
    }
    std::fclose(f);
    {
        std::lock_guard<std::mutex> lock(im.m);
        ++im.stats.cacheCorruptions;
    }
    return true;
}

FaultPlan::Stats FaultPlan::stats() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.stats;
}

void FaultPlan::resetStats() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    im.stats = Stats{};
}

} // namespace wj::fault
