#include "fault/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "support/crc32.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace wj::fault {

namespace {

struct Snapshot {
    int64_t iter = -1;
    std::vector<float> data;
    uint32_t crc = 0;

    bool intact() const noexcept {
        return crc32(data.data(), data.size() * sizeof(float)) == crc;
    }
};

struct SlotKey {
    int rank;
    int slot;
    bool operator<(const SlotKey& o) const noexcept {
        return rank != o.rank ? rank < o.rank : slot < o.slot;
    }
};

} // namespace

struct CheckpointStore::Impl {
    mutable std::mutex m;
    bool armed = false;
    int ranks = 0;
    int interval = 1;
    int keep = 2;
    // Last `keep` generations per (rank, slot), oldest first.
    std::map<SlotKey, std::vector<Snapshot>> gens;
    bool resolved = false;
    int64_t resolvedIter = -1;
    int64_t saves = 0;
    int64_t restores = 0;
    int64_t crcFailures = 0;
};

CheckpointStore& CheckpointStore::instance() {
    static CheckpointStore s;
    return s;
}

CheckpointStore::Impl& CheckpointStore::impl() const {
    static Impl i;
    return i;
}

void CheckpointStore::arm(int ranks, int interval, int keep) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    im.armed = true;
    im.ranks = std::max(ranks, 1);
    im.interval = std::max(interval, 1);
    im.keep = std::max(keep, 1);
    im.gens.clear();
    im.resolved = false;
    im.resolvedIter = -1;
    im.saves = im.restores = im.crcFailures = 0;
}

void CheckpointStore::disarm() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    im.armed = false;
    im.gens.clear();
    im.resolved = false;
    im.resolvedIter = -1;
    im.saves = 0;
    im.restores = 0;
    im.crcFailures = 0;
}

bool CheckpointStore::armed() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.armed;
}

int CheckpointStore::interval() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.interval;
}

int CheckpointStore::keep() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.keep;
}

void CheckpointStore::save(int rank, int slot, int64_t iter, const float* data, int64_t n) {
    if (n < 0) return;
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    if (!im.armed || iter <= 0 || iter % im.interval != 0) return;
    trace::Span span("ckpt", "save", "slot", slot, "iter", iter,
                     "bytes", n * static_cast<int64_t>(sizeof(float)));
    static auto& bytes = trace::Metrics::instance().counter("ckpt.bytes.saved");
    bytes.add(n * static_cast<int64_t>(sizeof(float)));
    Snapshot snap;
    snap.iter = iter;
    snap.data.assign(data, data + n);
    snap.crc = crc32(snap.data.data(), snap.data.size() * sizeof(float));
    auto& slots = im.gens[{rank, slot}];
    // Re-saving an iteration (a restarted rank passing its old save points)
    // overwrites in place; otherwise append and prune to the keep window.
    auto it = std::find_if(slots.begin(), slots.end(),
                           [&](const Snapshot& s) { return s.iter == iter; });
    if (it != slots.end()) {
        *it = std::move(snap);
    } else {
        slots.push_back(std::move(snap));
        std::sort(slots.begin(), slots.end(),
                  [](const Snapshot& a, const Snapshot& b) { return a.iter < b.iter; });
        const auto keep = static_cast<size_t>(im.keep);
        if (slots.size() > keep) slots.erase(slots.begin(), slots.end() - keep);
    }
    ++im.saves;
}

int64_t CheckpointStore::load(int rank, int slot, float* data, int64_t n) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    if (!im.armed || !im.resolved || im.resolvedIter < 0) return -1;
    auto it = im.gens.find({rank, slot});
    if (it == im.gens.end()) return -1;
    for (const Snapshot& s : it->second) {
        if (s.iter != im.resolvedIter) continue;
        if (static_cast<int64_t>(s.data.size()) != n) return -1;
        if (!s.intact()) {
            ++im.crcFailures;
            return -1;
        }
        std::memcpy(data, s.data.data(), s.data.size() * sizeof(float));
        ++im.restores;
        trace::instant("ckpt", "load", "slot", slot, "iter", s.iter,
                       "bytes", static_cast<int64_t>(s.data.size() * sizeof(float)));
        static auto& bytes = trace::Metrics::instance().counter("ckpt.bytes.restored");
        bytes.add(static_cast<int64_t>(s.data.size() * sizeof(float)));
        return s.iter;
    }
    return -1;
}

int64_t CheckpointStore::resolve() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    im.resolved = true;
    im.resolvedIter = -1;
    if (!im.armed) return -1;

    // Which slots must a generation cover? Every slot each rank ever saved.
    std::map<int, std::set<int>> slotsOf;
    std::set<int64_t> candidates;
    for (const auto& [key, slots] : im.gens) {
        slotsOf[key.rank].insert(key.slot);
        for (const Snapshot& s : slots) candidates.insert(s.iter);
    }
    // A rank with no snapshots at all means no generation is complete.
    for (int r = 0; r < im.ranks; ++r) {
        if (slotsOf.find(r) == slotsOf.end()) return -1;
    }

    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
        const int64_t iter = *it;
        bool complete = true;
        for (int r = 0; r < im.ranks && complete; ++r) {
            for (int slot : slotsOf[r]) {
                const auto& slots = im.gens[{r, slot}];
                const auto snap = std::find_if(slots.begin(), slots.end(),
                                               [&](const Snapshot& s) { return s.iter == iter; });
                if (snap == slots.end()) {
                    complete = false;
                    break;
                }
                if (!snap->intact()) {
                    ++im.crcFailures;
                    complete = false;
                    break;
                }
            }
        }
        if (complete) {
            im.resolvedIter = iter;
            return iter;
        }
    }
    return -1;
}

int64_t CheckpointStore::saves() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.saves;
}

int64_t CheckpointStore::restores() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.restores;
}

int64_t CheckpointStore::crcFailures() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.crcFailures;
}

int64_t CheckpointStore::latestIter(int rank, int slot) const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    auto it = im.gens.find({rank, slot});
    if (it == im.gens.end() || it->second.empty()) return -1;
    return it->second.back().iter;
}

void CheckpointStore::corruptSnapshot(int rank, int slot) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    auto it = im.gens.find({rank, slot});
    if (it == im.gens.end() || it->second.empty()) return;
    Snapshot& s = it->second.back();
    if (s.data.empty()) return;
    // Flip a mantissa bit without touching the recorded CRC.
    auto* bytes = reinterpret_cast<uint8_t*>(s.data.data());
    bytes[s.data.size() * sizeof(float) / 2] ^= 0x01;
}

} // namespace wj::fault
