#include "fault/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "support/crc32.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace wj::fault {

namespace {

struct Snapshot {
    int64_t iter = -1;
    std::vector<float> data;
    uint32_t crc = 0;

    bool intact() const noexcept {
        return crc32(data.data(), data.size() * sizeof(float)) == crc;
    }
};

struct SlotKey {
    int rank;
    int slot;
    bool operator<(const SlotKey& o) const noexcept {
        return rank != o.rank ? rank < o.rank : slot < o.slot;
    }
};

// ---- disk mode -----------------------------------------------------------
// On-disk snapshot layout: a fixed header followed by the raw floats. The
// CRC covers the payload only; name and header must agree, so a file that
// was renamed into place is self-describing and self-validating.

constexpr uint32_t kDiskMagic = 0x4B434A57;  // "WJCK" little-endian
constexpr uint32_t kDiskVersion = 1;

struct DiskHeader {
    uint32_t magic = kDiskMagic;
    uint32_t version = kDiskVersion;
    int32_t rank = 0;
    int32_t slot = 0;
    int64_t iter = 0;
    int64_t count = 0;  // number of floats
    uint32_t crc = 0;
    uint32_t reserved = 0;
};

std::string diskName(int rank, int slot, int64_t iter) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "ck_r%d_s%d_g%lld", rank, slot,
                  static_cast<long long>(iter));
    return buf;
}

bool parseDiskName(const char* name, int* rank, int* slot, int64_t* iter) {
    long long g = 0;
    if (std::sscanf(name, "ck_r%d_s%d_g%lld", rank, slot, &g) != 3) return false;
    *iter = g;
    return true;
}

struct DiskEntry {
    int rank;
    int slot;
    int64_t iter;
};

std::vector<DiskEntry> listDisk(const std::string& dir) {
    std::vector<DiskEntry> out;
    DIR* d = ::opendir(dir.c_str());
    if (!d) return out;
    while (dirent* e = ::readdir(d)) {
        DiskEntry de{};
        if (parseDiskName(e->d_name, &de.rank, &de.slot, &de.iter)) out.push_back(de);
    }
    ::closedir(d);
    return out;
}

/// Reads and validates one on-disk snapshot. Returns true and fills `data`
/// (when non-null) only if the header is coherent and the payload CRC
/// matches. `expectCount < 0` accepts any size.
bool readDiskSnapshot(const std::string& dir, int rank, int slot, int64_t iter,
                      int64_t expectCount, std::vector<float>* data) {
    const std::string path = dir + "/" + diskName(rank, slot, iter);
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return false;
    DiskHeader h;
    bool ok = ::read(fd, &h, sizeof h) == static_cast<ssize_t>(sizeof h) &&
              h.magic == kDiskMagic && h.version == kDiskVersion && h.rank == rank &&
              h.slot == slot && h.iter == iter && h.count >= 0 &&
              (expectCount < 0 || h.count == expectCount);
    std::vector<float> payload;
    if (ok) {
        payload.resize(static_cast<size_t>(h.count));
        const size_t bytes = payload.size() * sizeof(float);
        ok = ::read(fd, payload.data(), bytes) == static_cast<ssize_t>(bytes) &&
             crc32(payload.data(), bytes) == h.crc;
    }
    ::close(fd);
    if (ok && data) *data = std::move(payload);
    return ok;
}

/// Crash-durable publish: temp file -> write -> fsync -> rename -> fsync of
/// the directory. A SIGKILL at any point leaves either no generation file
/// or a complete, CRC-valid one.
bool writeDiskSnapshot(const std::string& dir, int rank, int slot, int64_t iter,
                       const float* data, int64_t n) {
    const std::string tmp =
        dir + "/.tmp." + diskName(rank, slot, iter) + "." + std::to_string(::getpid());
    const std::string final = dir + "/" + diskName(rank, slot, iter);
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    DiskHeader h;
    h.rank = rank;
    h.slot = slot;
    h.iter = iter;
    h.count = n;
    h.crc = crc32(data, static_cast<size_t>(n) * sizeof(float));
    const size_t bytes = static_cast<size_t>(n) * sizeof(float);
    bool ok = ::write(fd, &h, sizeof h) == static_cast<ssize_t>(sizeof h) &&
              ::write(fd, data, bytes) == static_cast<ssize_t>(bytes) && ::fsync(fd) == 0;
    ::close(fd);
    if (!ok || ::rename(tmp.c_str(), final.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    // fsync the directory so the rename itself survives a crash of the
    // whole machine, not just of this process.
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
    return true;
}

void pruneDisk(const std::string& dir, int rank, int slot, int keep) {
    std::vector<int64_t> iters;
    for (const DiskEntry& e : listDisk(dir)) {
        if (e.rank == rank && e.slot == slot) iters.push_back(e.iter);
    }
    if (static_cast<int>(iters.size()) <= keep) return;
    std::sort(iters.begin(), iters.end());
    for (size_t i = 0; i + static_cast<size_t>(keep) < iters.size(); ++i) {
        ::unlink((dir + "/" + diskName(rank, slot, iters[i])).c_str());
    }
}

} // namespace

struct CheckpointStore::Impl {
    mutable std::mutex m;
    bool armed = false;
    int ranks = 0;
    int interval = 1;
    int keep = 2;
    // Last `keep` generations per (rank, slot), oldest first.
    std::map<SlotKey, std::vector<Snapshot>> gens;
    // Disk mode (armDisk): snapshots are files in `dir`, `gens` stays empty.
    bool disk = false;
    std::string dir;
    bool resolved = false;
    int64_t resolvedIter = -1;
    int64_t saves = 0;
    int64_t restores = 0;
    int64_t crcFailures = 0;
};

CheckpointStore& CheckpointStore::instance() {
    static CheckpointStore s;
    return s;
}

CheckpointStore::Impl& CheckpointStore::impl() const {
    static Impl i;
    return i;
}

void CheckpointStore::arm(int ranks, int interval, int keep) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    im.armed = true;
    im.disk = false;
    im.dir.clear();
    im.ranks = std::max(ranks, 1);
    im.interval = std::max(interval, 1);
    im.keep = std::max(keep, 1);
    im.gens.clear();
    im.resolved = false;
    im.resolvedIter = -1;
    im.saves = im.restores = im.crcFailures = 0;
}

void CheckpointStore::armDisk(const std::string& dir, int ranks, int interval, int keep,
                              bool preserve) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    im.armed = true;
    im.disk = true;
    im.dir = dir;
    im.ranks = std::max(ranks, 1);
    im.interval = std::max(interval, 1);
    im.keep = std::max(keep, 1);
    im.gens.clear();
    im.resolved = false;
    im.resolvedIter = -1;
    im.saves = im.restores = im.crcFailures = 0;
    ::mkdir(dir.c_str(), 0755);  // single level; EEXIST is fine
    if (!preserve) {
        for (const DiskEntry& e : listDisk(dir)) {
            ::unlink((dir + "/" + diskName(e.rank, e.slot, e.iter)).c_str());
        }
    }
}

bool CheckpointStore::diskMode() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.armed && im.disk;
}

std::string CheckpointStore::directory() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.disk ? im.dir : std::string();
}

void CheckpointStore::disarm() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    im.armed = false;
    im.disk = false;
    im.dir.clear();
    im.gens.clear();
    im.resolved = false;
    im.resolvedIter = -1;
    im.saves = 0;
    im.restores = 0;
    im.crcFailures = 0;
}

bool CheckpointStore::armed() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.armed;
}

int CheckpointStore::interval() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.interval;
}

int CheckpointStore::keep() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.keep;
}

void CheckpointStore::save(int rank, int slot, int64_t iter, const float* data, int64_t n) {
    if (n < 0) return;
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    if (!im.armed || iter <= 0 || iter % im.interval != 0) return;
    trace::Span span("ckpt", "save", "slot", slot, "iter", iter,
                     "bytes", n * static_cast<int64_t>(sizeof(float)));
    static auto& bytes = trace::Metrics::instance().counter("ckpt.bytes.saved");
    bytes.add(n * static_cast<int64_t>(sizeof(float)));
    if (im.disk) {
        if (writeDiskSnapshot(im.dir, rank, slot, iter, data, n)) {
            pruneDisk(im.dir, rank, slot, im.keep);
            ++im.saves;
        }
        return;
    }
    Snapshot snap;
    snap.iter = iter;
    snap.data.assign(data, data + n);
    snap.crc = crc32(snap.data.data(), snap.data.size() * sizeof(float));
    auto& slots = im.gens[{rank, slot}];
    // Re-saving an iteration (a restarted rank passing its old save points)
    // overwrites in place; otherwise append and prune to the keep window.
    auto it = std::find_if(slots.begin(), slots.end(),
                           [&](const Snapshot& s) { return s.iter == iter; });
    if (it != slots.end()) {
        *it = std::move(snap);
    } else {
        slots.push_back(std::move(snap));
        std::sort(slots.begin(), slots.end(),
                  [](const Snapshot& a, const Snapshot& b) { return a.iter < b.iter; });
        const auto keep = static_cast<size_t>(im.keep);
        if (slots.size() > keep) slots.erase(slots.begin(), slots.end() - keep);
    }
    ++im.saves;
}

int64_t CheckpointStore::load(int rank, int slot, float* data, int64_t n) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    if (!im.armed || !im.resolved || im.resolvedIter < 0) return -1;
    if (im.disk) {
        std::vector<float> payload;
        if (!readDiskSnapshot(im.dir, rank, slot, im.resolvedIter, n, &payload)) {
            ++im.crcFailures;  // missing/torn/mismatched file all count here
            return -1;
        }
        std::memcpy(data, payload.data(), payload.size() * sizeof(float));
        ++im.restores;
        trace::instant("ckpt", "load", "slot", slot, "iter", im.resolvedIter,
                       "bytes", static_cast<int64_t>(payload.size() * sizeof(float)));
        static auto& dbytes = trace::Metrics::instance().counter("ckpt.bytes.restored");
        dbytes.add(static_cast<int64_t>(payload.size() * sizeof(float)));
        return im.resolvedIter;
    }
    auto it = im.gens.find({rank, slot});
    if (it == im.gens.end()) return -1;
    for (const Snapshot& s : it->second) {
        if (s.iter != im.resolvedIter) continue;
        if (static_cast<int64_t>(s.data.size()) != n) return -1;
        if (!s.intact()) {
            ++im.crcFailures;
            return -1;
        }
        std::memcpy(data, s.data.data(), s.data.size() * sizeof(float));
        ++im.restores;
        trace::instant("ckpt", "load", "slot", slot, "iter", s.iter,
                       "bytes", static_cast<int64_t>(s.data.size() * sizeof(float)));
        static auto& bytes = trace::Metrics::instance().counter("ckpt.bytes.restored");
        bytes.add(static_cast<int64_t>(s.data.size() * sizeof(float)));
        return s.iter;
    }
    return -1;
}

int64_t CheckpointStore::resolve() {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    im.resolved = true;
    im.resolvedIter = -1;
    if (!im.armed) return -1;

    if (im.disk) {
        // Same consistency rule as the in-memory store, against the files
        // on disk: newest iteration where every rank holds a CRC-valid
        // snapshot of every slot it ever published.
        std::map<int, std::set<int>> slotsOf;
        std::set<int64_t> candidates;
        for (const DiskEntry& e : listDisk(im.dir)) {
            slotsOf[e.rank].insert(e.slot);
            candidates.insert(e.iter);
        }
        for (int r = 0; r < im.ranks; ++r) {
            if (slotsOf.find(r) == slotsOf.end()) return -1;
        }
        for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
            bool complete = true;
            for (int r = 0; r < im.ranks && complete; ++r) {
                for (int slot : slotsOf[r]) {
                    struct stat st;
                    if (::stat((im.dir + "/" + diskName(r, slot, *it)).c_str(), &st) != 0) {
                        complete = false;  // generation simply not saved here
                        break;
                    }
                    if (!readDiskSnapshot(im.dir, r, slot, *it, -1, nullptr)) {
                        ++im.crcFailures;  // present but torn/corrupt
                        complete = false;
                        break;
                    }
                }
            }
            if (complete) {
                im.resolvedIter = *it;
                return *it;
            }
        }
        return -1;
    }

    // Which slots must a generation cover? Every slot each rank ever saved.
    std::map<int, std::set<int>> slotsOf;
    std::set<int64_t> candidates;
    for (const auto& [key, slots] : im.gens) {
        slotsOf[key.rank].insert(key.slot);
        for (const Snapshot& s : slots) candidates.insert(s.iter);
    }
    // A rank with no snapshots at all means no generation is complete.
    for (int r = 0; r < im.ranks; ++r) {
        if (slotsOf.find(r) == slotsOf.end()) return -1;
    }

    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
        const int64_t iter = *it;
        bool complete = true;
        for (int r = 0; r < im.ranks && complete; ++r) {
            for (int slot : slotsOf[r]) {
                const auto& slots = im.gens[{r, slot}];
                const auto snap = std::find_if(slots.begin(), slots.end(),
                                               [&](const Snapshot& s) { return s.iter == iter; });
                if (snap == slots.end()) {
                    complete = false;
                    break;
                }
                if (!snap->intact()) {
                    ++im.crcFailures;
                    complete = false;
                    break;
                }
            }
        }
        if (complete) {
            im.resolvedIter = iter;
            return iter;
        }
    }
    return -1;
}

int64_t CheckpointStore::saves() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.saves;
}

int64_t CheckpointStore::restores() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.restores;
}

int64_t CheckpointStore::crcFailures() const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    return im.crcFailures;
}

int64_t CheckpointStore::latestIter(int rank, int slot) const {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    if (im.disk) {
        int64_t latest = -1;
        for (const DiskEntry& e : listDisk(im.dir)) {
            if (e.rank == rank && e.slot == slot) latest = std::max(latest, e.iter);
        }
        return latest;
    }
    auto it = im.gens.find({rank, slot});
    if (it == im.gens.end() || it->second.empty()) return -1;
    return it->second.back().iter;
}

void CheckpointStore::corruptSnapshot(int rank, int slot) {
    Impl& im = impl();
    std::lock_guard<std::mutex> lock(im.m);
    if (im.disk) {
        int64_t latest = -1;
        for (const DiskEntry& e : listDisk(im.dir)) {
            if (e.rank == rank && e.slot == slot) latest = std::max(latest, e.iter);
        }
        if (latest < 0) return;
        const std::string path = im.dir + "/" + diskName(rank, slot, latest);
        const int fd = ::open(path.c_str(), O_RDWR);
        if (fd < 0) return;
        struct stat st;
        if (::fstat(fd, &st) == 0 && st.st_size > static_cast<off_t>(sizeof(DiskHeader))) {
            const off_t payload = st.st_size - static_cast<off_t>(sizeof(DiskHeader));
            const off_t at = static_cast<off_t>(sizeof(DiskHeader)) + payload / 2;
            uint8_t b = 0;
            if (::pread(fd, &b, 1, at) == 1) {
                b ^= 0x01;
                ::pwrite(fd, &b, 1, at);
            }
        }
        ::close(fd);
        return;
    }
    auto it = im.gens.find({rank, slot});
    if (it == im.gens.end() || it->second.empty()) return;
    Snapshot& s = it->second.back();
    if (s.data.empty()) return;
    // Flip a mantissa bit without touching the recorded CRC.
    auto* bytes = reinterpret_cast<uint8_t*>(s.data.data());
    bytes[s.data.size() * sizeof(float) / 2] ^= 0x01;
}

} // namespace wj::fault
