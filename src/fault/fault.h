// FaultPlan: deterministic fault injection for MiniMPI and the JIT pipeline.
//
// Real WootinJ runs under mpirun on a shared cluster where ranks die,
// messages are lost or corrupted by flaky links, and the external compiler
// occasionally fails for reasons that have nothing to do with the source
// (filesystem hiccups, OOM kills). MiniMPI's abort propagation already
// models MPI_Abort; this module adds the *injector*: a seeded plan,
// configured from the WJ_FAULT environment variable or programmatically,
// whose hooks the substrates consult at well-defined points. Every action
// is reproducible from the spec alone — counters are deterministic, and
// probabilistic rules draw from a SplitMix64 stream seeded by the plan.
//
// Spec grammar (segments joined with ';'):
//
//   WJ_FAULT   := segment (';' segment)*
//   segment    := 'seed=' <u64>                      global PRNG seed
//               | action [':' kv (',' kv)*]
//   action     := 'kill' | 'drop' | 'dup' | 'corrupt' | 'delay'
//               | 'failcompile' | 'corruptcache'
//   kv         := key '=' value
//
// Rule keys:
//   kill         rank=<r> (required)  op=<n>   kill rank r by throwing from
//                                              its n-th Comm operation
//                                              (send/recv/collective entry)
//   drop         src= dest= tag=  nth= count= prob=   message verdicts,
//   dup          src= dest= tag=  nth= count= prob=   counted over messages
//   corrupt      src= dest= tag=  nth= count= prob=   matching the filters
//   delay        src= dest= tag=  nth= count= prob= ms=<millis>
//   failcompile  nth= count=    fail the n-th (and count-1 following)
//                               external-compiler invocation
//   corruptcache nth= count=    flip a byte in the n-th published cache .so
//
// Filters default to "any"; nth is 1-based and defaults to 1; count
// defaults to 1; prob (0..1) replaces nth/count with a seeded coin flip.
// Counter-based rules are exact-replay deterministic; prob rules are
// deterministic only for deterministic schedules (documented in README).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wj::fault {

/// What World::post should do with a message after injection.
enum class MsgFate { Deliver, Drop, Duplicate };

class FaultPlan {
public:
    /// Process-wide plan. First access seeds it from $WJ_FAULT (if set).
    static FaultPlan& instance();

    /// True when at least one rule is armed — hooks are cheap to skip when
    /// false, so hot paths guard with this before calling instance().
    static bool active() noexcept { return active_.load(std::memory_order_relaxed); }

    /// When true, a firing kill rule delivers a REAL SIGKILL to the calling
    /// process (after printing the injected-fault message to stderr) instead
    /// of throwing. Set by the proc transport inside each forked rank, so a
    /// "killed" rank actually dies mid-instruction the way a cluster node
    /// does — no stack unwinding, no destructors, no cooperative cleanup.
    static void killWithSigkill(bool enable) noexcept {
        sigkillMode_.store(enable, std::memory_order_relaxed);
    }
    static bool killsWithSigkill() noexcept {
        return sigkillMode_.load(std::memory_order_relaxed);
    }

    /// Replaces the plan with `spec` (grammar above). Empty spec disarms.
    /// Throws UsageError on malformed specs.
    void configure(const std::string& spec);

    /// Removes every rule and resets all counters.
    void disarm();

    /// Normalized one-line rendering of the armed rules (wjc, tests).
    std::string describe() const;

    // ---- hooks ---------------------------------------------------------
    /// Called by Comm entry points. Throws ExecError("injected fault: ...")
    /// when a kill rule fires for this rank's n-th operation.
    void onCommOp(int rank);

    /// Called by World::post before enqueueing. May corrupt `payload` in
    /// place, sleep (delay), and returns the message's fate.
    MsgFate onMessage(int src, int dest, int tag, std::vector<uint8_t>& payload);

    /// Called by compileAndLoad before each external-compiler attempt.
    /// True means "this attempt fails" (the caller simulates a transient
    /// compiler failure without running cc).
    bool failThisCompile();

    /// Called after a .so is published to the on-disk cache. Flips a byte
    /// in the file when a corruptcache rule fires; returns true if it did.
    bool maybeCorruptCacheFile(const std::string& path);

    // ---- observability -------------------------------------------------
    struct Stats {
        int64_t kills = 0;
        int64_t drops = 0;
        int64_t duplicates = 0;
        int64_t corruptions = 0;
        int64_t delays = 0;
        int64_t compileFailures = 0;
        int64_t cacheCorruptions = 0;
    };
    Stats stats() const;
    void resetStats();

private:
    FaultPlan() = default;

    static std::atomic<bool> active_;
    static std::atomic<bool> sigkillMode_;

    struct Impl;
    Impl& impl() const;
};

} // namespace wj::fault
