// Tree-walking interpreter for WJ IR — WootinC's stand-in for the JVM.
//
// Programs written against the @WootinJ class libraries "can run without
// WootinJ unless they use MPI or GPUs" (paper, Section 4.4). Accordingly the
// interpreter executes everything except MPI intrinsics, and executes CUDA
// intrinsics only when device emulation is enabled (used for differential
// testing of the JIT): a kernel launch then runs every logical GPU thread
// sequentially.
//
// Execution cost is intentionally representative of unoptimized OO code:
// every call is a dynamic dispatch through the class table, every object a
// heap allocation, every array access bounds-checked.
#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "interp/value.h"
#include "ir/program.h"

namespace wj {

class Interp {
public:
    struct Options {
        /// Execute CUDA intrinsics by sequential emulation. Kernels using
        /// syncthreads or shared memory are rejected even in this mode.
        bool deviceEmulation = false;
    };

    explicit Interp(const Program& prog);
    Interp(const Program& prog, Options opts);

    /// `new cls(args...)` — runs the constructor chain.
    Value instantiate(const std::string& cls, std::vector<Value> args);

    /// Dynamic dispatch of `method` on `recv` (an object value).
    Value call(const Value& recv, const std::string& method, std::vector<Value> args);

    /// Static method call.
    Value callStatic(const std::string& cls, const std::string& method, std::vector<Value> args);

    /// Allocates an interpreter array of `elem` with `len` default elements.
    Value newArray(const Type& elem, int32_t len);

    const Program& program() const noexcept { return prog_; }

    // ---- instrumentation (tests assert optimization effects against these)
    int64_t dynamicDispatches() const noexcept { return dispatches_; }
    int64_t objectAllocations() const noexcept { return allocs_; }

private:
    struct Frame;
    struct Flow;
    struct GpuEmuCtx;

    Value evalExpr(Frame& f, const Expr& e);
    Flow execStmt(Frame& f, const Stmt& s);
    Flow execBlock(Frame& f, const Block& b);
    Value invokeMethod(const ObjRef& self, const ClassDecl& implCls, const Method& m,
                       std::vector<Value> args);
    void runCtor(const ObjRef& obj, const ClassDecl& cls, std::vector<Value> args);
    Value evalIntrinsic(Frame& f, const IntrinsicExpr& e);
    Value launchEmulated(const ObjRef& self, const ClassDecl& implCls, const Method& kernel,
                         std::vector<Value> args);

    const Program& prog_;
    Options opts_;
    GpuEmuCtx* gpu_ = nullptr;  // non-null only while emulating a kernel
    /// First-invoke definite-assignment check (the JVM analogue: bytecode
    /// verification happens once per method, not per call). Throws
    /// AnalysisError before executing an unsound body.
    void verifyAssigned(const ClassDecl& implCls, const Method& m);

    int64_t dispatches_ = 0;
    int64_t allocs_ = 0;
    int depth_ = 0;
    std::set<const Method*> daChecked_;
};

} // namespace wj
