#include "interp/value.h"

#include "support/strings.h"

namespace wj {

Value Value::defaultOf(const Type& t) {
    switch (t.kind()) {
    case Type::Kind::Void:
        return Value();
    case Type::Kind::Prim:
        switch (t.prim()) {
        case Prim::Bool: return ofBool(false);
        case Prim::I32: return ofI32(0);
        case Prim::I64: return ofI64(0);
        case Prim::F32: return ofF32(0.0f);
        case Prim::F64: return ofF64(0.0);
        }
        return Value();
    case Type::Kind::Array:
        return ofArr(nullptr);  // Java null
    case Type::Kind::Class:
        return ofObj(nullptr);  // Java null
    }
    return Value();
}

std::string Value::str() const {
    if (isVoid()) return "void";
    if (isBool()) return asBool() ? "true" : "false";
    if (isI32()) return std::to_string(asI32());
    if (isI64()) return std::to_string(asI64()) + "L";
    if (isF32()) return format("%gf", static_cast<double>(asF32()));
    if (isF64()) return format("%g", asF64());
    if (isObj()) {
        const ObjRef& o = asObj();
        return o ? o->cls->name + "@obj" : "null";
    }
    const ArrRef& a = asArr();
    return a ? a->elem.str() + "[" + std::to_string(a->data.size()) + "]" : "null";
}

} // namespace wj
