#include "interp/interp.h"

#include <cmath>
#include <cstdio>

#include "analysis/analysis.h"
#include "fault/checkpoint.h"
#include "runtime/rng_hash.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace wj {

namespace {
constexpr int kMaxDepth = 4096;
} // namespace

struct Interp::Flow {
    bool returned = false;
    Value ret;
    static Flow normal() { return {}; }
    static Flow returning(Value v) { return {true, std::move(v)}; }
};

struct Interp::Frame {
    ObjRef self;                 ///< null in static methods
    const ClassDecl* implCls;    ///< class providing the executing body
    const Method* method;
    std::vector<std::map<std::string, Value>> scopes;

    Value* find(const std::string& name) {
        for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end()) return &f->second;
        }
        return nullptr;
    }
};

/// Emulated CUDA thread coordinates (device emulation mode only).
struct Interp::GpuEmuCtx {
    int tx = 0, ty = 0, tz = 0;
    int bx = 0, by = 0, bz = 0;
    int bdx = 1, bdy = 1, bdz = 1;
    int gdx = 1, gdy = 1, gdz = 1;
};

Interp::Interp(const Program& prog) : prog_(prog) {}

Interp::Interp(const Program& prog, Options opts) : prog_(prog), opts_(opts) {}

Value Interp::newArray(const Type& elem, int32_t len) {
    if (len < 0) throw ExecError("NegativeArraySizeException: " + std::to_string(len));
    auto arr = std::make_shared<Arr>();
    arr->elem = elem;
    arr->data.assign(static_cast<size_t>(len), Value::defaultOf(elem));
    return Value::ofArr(std::move(arr));
}

Value Interp::instantiate(const std::string& clsName, std::vector<Value> args) {
    const ClassDecl& cls = prog_.require(clsName);
    if (cls.isInterface) throw ExecError("cannot instantiate interface " + clsName);
    ++allocs_;
    auto obj = std::make_shared<Obj>();
    obj->cls = &cls;
    for (const Field* f : prog_.allFields(clsName)) {
        obj->fields.emplace(f->name, Value::defaultOf(f->type));
    }
    runCtor(obj, cls, std::move(args));
    return Value::ofObj(std::move(obj));
}

void Interp::runCtor(const ObjRef& obj, const ClassDecl& cls, std::vector<Value> args) {
    const ClassDecl* super = cls.superName.empty() ? nullptr : &prog_.require(cls.superName);
    const bool explicitSuper =
        cls.ctor && !cls.ctor->body.empty() && cls.ctor->body[0]->kind == StmtKind::SuperCtor;
    if (super && !explicitSuper) runCtor(obj, *super, {});
    if (!cls.ctor) {
        if (!args.empty()) throw ExecError(cls.name + ": implicit constructor takes no arguments");
        return;
    }
    if (args.size() != cls.ctor->params.size()) {
        throw ExecError(cls.name + ".<init>: expected " + std::to_string(cls.ctor->params.size()) +
                        " arguments, got " + std::to_string(args.size()));
    }
    verifyAssigned(cls, *cls.ctor);
    Frame f;
    f.self = obj;
    f.implCls = &cls;
    f.method = cls.ctor.get();
    f.scopes.emplace_back();
    for (size_t i = 0; i < args.size(); ++i) {
        f.scopes.back().emplace(cls.ctor->params[i].name, std::move(args[i]));
    }
    if (++depth_ > kMaxDepth) throw ExecError("interpreter stack overflow");
    execBlock(f, cls.ctor->body);
    --depth_;
}

Value Interp::call(const Value& recv, const std::string& method, std::vector<Value> args) {
    trace::Span span("interp",
                     trace::enabled() ? trace::intern("call " + method) : "call");
    {
        static auto& calls = trace::Metrics::instance().counter("interp.calls");
        calls.inc();
    }
    const ObjRef& obj = recv.asObj();
    if (!obj) throw ExecError("NullPointerException: call ." + method + "() on null");
    const Method* m = prog_.resolveMethod(obj->cls->name, method);
    if (!m || m->isAbstract) {
        throw ExecError(obj->cls->name + " has no concrete method " + method);
    }
    if (m->isGlobal) return launchEmulated(obj, *prog_.methodOwner(obj->cls->name, method), *m,
                                           std::move(args));
    ++dispatches_;
    return invokeMethod(obj, *prog_.methodOwner(obj->cls->name, method), *m, std::move(args));
}

Value Interp::callStatic(const std::string& cls, const std::string& method,
                         std::vector<Value> args) {
    const Method* m = prog_.resolveMethod(cls, method);
    if (!m || !m->isStatic) throw ExecError(cls + " has no static method " + method);
    return invokeMethod(nullptr, *prog_.methodOwner(cls, method), *m, std::move(args));
}

void Interp::verifyAssigned(const ClassDecl& implCls, const Method& m) {
    if (!daChecked_.insert(&m).second) return;
    auto errs = analysis::checkDefiniteAssignment(prog_, implCls, m);
    if (!errs.empty()) throw AnalysisError(std::move(errs));
}

Value Interp::invokeMethod(const ObjRef& self, const ClassDecl& implCls, const Method& m,
                           std::vector<Value> args) {
    verifyAssigned(implCls, m);
    if (args.size() != m.params.size()) {
        throw ExecError(implCls.name + "." + m.name + ": expected " +
                        std::to_string(m.params.size()) + " arguments, got " +
                        std::to_string(args.size()));
    }
    Frame f;
    f.self = self;
    f.implCls = &implCls;
    f.method = &m;
    f.scopes.emplace_back();
    for (size_t i = 0; i < args.size(); ++i) {
        f.scopes.back().emplace(m.params[i].name, std::move(args[i]));
    }
    if (++depth_ > kMaxDepth) throw ExecError("interpreter stack overflow (recursion?)");
    Flow flow = execBlock(f, m.body);
    --depth_;
    if (!m.ret.isVoid() && !flow.returned) {
        throw ExecError(implCls.name + "." + m.name + ": fell off the end without returning");
    }
    return std::move(flow.ret);
}

Value Interp::launchEmulated(const ObjRef& self, const ClassDecl& implCls, const Method& kernel,
                             std::vector<Value> args) {
    if (!opts_.deviceEmulation) {
        throw ExecError("the JVM cannot execute @Global (GPU) method " + implCls.name + "." +
                        kernel.name + "; translate it with WootinJ.jit()");
    }
    if (gpu_) throw ExecError("nested kernel launch");
    if (args.empty()) throw ExecError("@Global call without CudaConfig");
    const ObjRef& conf = args[0].asObj();
    if (!conf || conf->cls->name != Program::cudaConfigClass()) {
        throw ExecError("@Global first argument must be a CudaConfig");
    }
    auto d3 = [&](const char* field, int out[3]) {
        const ObjRef& d = conf->fields.at(field).asObj();
        if (!d) throw ExecError("CudaConfig." + std::string(field) + " is null");
        out[0] = d->fields.at("x").asI32();
        out[1] = d->fields.at("y").asI32();
        out[2] = d->fields.at("z").asI32();
    };
    int grid[3], block[3];
    d3("grid", grid);
    d3("block", block);

    GpuEmuCtx ctx;
    ctx.gdx = grid[0];
    ctx.gdy = grid[1];
    ctx.gdz = grid[2];
    ctx.bdx = block[0];
    ctx.bdy = block[1];
    ctx.bdz = block[2];
    gpu_ = &ctx;
    // Sequential SIMT emulation: every logical thread runs the whole kernel.
    for (ctx.bz = 0; ctx.bz < ctx.gdz; ++ctx.bz)
        for (ctx.by = 0; ctx.by < ctx.gdy; ++ctx.by)
            for (ctx.bx = 0; ctx.bx < ctx.gdx; ++ctx.bx)
                for (ctx.tz = 0; ctx.tz < ctx.bdz; ++ctx.tz)
                    for (ctx.ty = 0; ctx.ty < ctx.bdy; ++ctx.ty)
                        for (ctx.tx = 0; ctx.tx < ctx.bdx; ++ctx.tx) {
                            std::vector<Value> copy = args;
                            invokeMethod(self, implCls, kernel, std::move(copy));
                        }
    gpu_ = nullptr;
    return Value();
}

// ----------------------------------------------------------------- execution

Interp::Flow Interp::execBlock(Frame& f, const Block& b) {
    for (const auto& st : b) {
        Flow flow = execStmt(f, *st);
        if (flow.returned) return flow;
    }
    return Flow::normal();
}

Interp::Flow Interp::execStmt(Frame& f, const Stmt& s) {
    switch (s.kind) {
    case StmtKind::Decl: {
        const auto& n = as<DeclStmt>(s);
        f.scopes.back().insert_or_assign(n.name,
                                         n.init ? evalExpr(f, *n.init) : Value::defaultOf(n.type));
        return Flow::normal();
    }
    case StmtKind::AssignLocal: {
        const auto& n = as<AssignLocalStmt>(s);
        Value* slot = f.find(n.name);
        if (!slot) throw ExecError("undeclared local " + n.name);
        *slot = evalExpr(f, *n.value);
        return Flow::normal();
    }
    case StmtKind::FieldSet: {
        const auto& n = as<FieldSetStmt>(s);
        Value ov = evalExpr(f, *n.obj);
        const ObjRef& obj = ov.asObj();
        if (!obj) throw ExecError("NullPointerException: store to ." + n.field);
        auto it = obj->fields.find(n.field);
        if (it == obj->fields.end()) {
            throw ExecError(obj->cls->name + " has no field " + n.field);
        }
        it->second = evalExpr(f, *n.value);
        return Flow::normal();
    }
    case StmtKind::ArraySet: {
        const auto& n = as<ArraySetStmt>(s);
        Value av = evalExpr(f, *n.arr);
        const ArrRef& arr = av.asArr();
        if (!arr) throw ExecError("NullPointerException: array store");
        int32_t idx = evalExpr(f, *n.idx).asI32();
        if (idx < 0 || static_cast<size_t>(idx) >= arr->data.size()) {
            throw ExecError("ArrayIndexOutOfBoundsException: " + std::to_string(idx) + " of " +
                            std::to_string(arr->data.size()));
        }
        arr->data[static_cast<size_t>(idx)] = evalExpr(f, *n.value);
        return Flow::normal();
    }
    case StmtKind::If: {
        const auto& n = as<IfStmt>(s);
        const bool c = evalExpr(f, *n.cond).asBool();
        f.scopes.emplace_back();
        Flow flow = execBlock(f, c ? n.thenB : n.elseB);
        f.scopes.pop_back();
        return flow;
    }
    case StmtKind::While: {
        const auto& n = as<WhileStmt>(s);
        while (evalExpr(f, *n.cond).asBool()) {
            f.scopes.emplace_back();
            Flow flow = execBlock(f, n.body);
            f.scopes.pop_back();
            if (flow.returned) return flow;
        }
        return Flow::normal();
    }
    case StmtKind::For: {
        const auto& n = as<ForStmt>(s);
        f.scopes.emplace_back();
        f.scopes.back().insert_or_assign(n.var, evalExpr(f, *n.init));
        while (evalExpr(f, *n.cond).asBool()) {
            f.scopes.emplace_back();
            Flow flow = execBlock(f, n.body);
            f.scopes.pop_back();
            if (flow.returned) {
                f.scopes.pop_back();
                return flow;
            }
            Value next = evalExpr(f, *n.step);
            *f.find(n.var) = std::move(next);
        }
        f.scopes.pop_back();
        return Flow::normal();
    }
    case StmtKind::Return: {
        const auto& n = as<ReturnStmt>(s);
        return Flow::returning(n.value ? evalExpr(f, *n.value) : Value());
    }
    case StmtKind::ExprStmt:
        evalExpr(f, *as<ExprStmt>(s).e);
        return Flow::normal();
    case StmtKind::SuperCtor: {
        const auto& n = as<SuperCtorStmt>(s);
        std::vector<Value> args;
        args.reserve(n.args.size());
        for (const auto& a : n.args) args.push_back(evalExpr(f, *a));
        runCtor(f.self, prog_.require(f.implCls->superName), std::move(args));
        return Flow::normal();
    }
    }
    panic("unreachable stmt kind in interp");
}

namespace {

template <typename T>
Value arith(BinOp op, T a, T b) {
    switch (op) {
    case BinOp::Add: a = a + b; break;
    case BinOp::Sub: a = a - b; break;
    case BinOp::Mul: a = a * b; break;
    case BinOp::Div:
        if constexpr (std::is_integral_v<T>) {
            if (b == 0) throw ExecError("ArithmeticException: / by zero");
        }
        a = a / b;
        break;
    case BinOp::Rem:
        if constexpr (std::is_integral_v<T>) {
            if (b == 0) throw ExecError("ArithmeticException: % by zero");
            a = a % b;
        } else {
            a = static_cast<T>(std::fmod(a, b));
        }
        break;
    case BinOp::Lt: return Value::ofBool(a < b);
    case BinOp::Le: return Value::ofBool(a <= b);
    case BinOp::Gt: return Value::ofBool(a > b);
    case BinOp::Ge: return Value::ofBool(a >= b);
    case BinOp::Eq: return Value::ofBool(a == b);
    case BinOp::Ne: return Value::ofBool(a != b);
    default:
        if constexpr (std::is_integral_v<T>) {
            using U = std::make_unsigned_t<T>;
            const int mask = sizeof(T) == 4 ? 31 : 63;
            switch (op) {
            case BinOp::Shl: a = static_cast<T>(static_cast<U>(a) << (b & mask)); break;
            case BinOp::Shr: a = a >> (b & mask); break;
            case BinOp::BitAnd: a = a & b; break;
            case BinOp::BitOr: a = a | b; break;
            case BinOp::BitXor: a = a ^ b; break;
            default: throw ExecError("bad integral op");
            }
        } else {
            throw ExecError("bitwise op on floating value");
        }
    }
    if constexpr (std::is_same_v<T, int32_t>) return Value::ofI32(a);
    else if constexpr (std::is_same_v<T, int64_t>) return Value::ofI64(a);
    else if constexpr (std::is_same_v<T, float>) return Value::ofF32(a);
    else return Value::ofF64(a);
}

} // namespace

Value Interp::evalExpr(Frame& f, const Expr& e) {
    switch (e.kind) {
    case ExprKind::Const: {
        const auto& n = as<ConstExpr>(e);
        switch (n.type.prim()) {
        case Prim::Bool: return Value::ofBool(n.i != 0);
        case Prim::I32: return Value::ofI32(static_cast<int32_t>(n.i));
        case Prim::I64: return Value::ofI64(n.i);
        case Prim::F32: return Value::ofF32(static_cast<float>(n.f));
        case Prim::F64: return Value::ofF64(n.f);
        }
        return Value();
    }
    case ExprKind::Local: {
        Value* slot = f.find(as<LocalExpr>(e).name);
        if (!slot) throw ExecError("undeclared local " + as<LocalExpr>(e).name);
        return *slot;
    }
    case ExprKind::This:
        if (!f.self) throw ExecError("'this' in static context");
        return Value::ofObj(f.self);
    case ExprKind::FieldGet: {
        const auto& n = as<FieldGetExpr>(e);
        Value ov = evalExpr(f, *n.obj);
        const ObjRef& obj = ov.asObj();
        if (!obj) throw ExecError("NullPointerException: read of ." + n.field);
        auto it = obj->fields.find(n.field);
        if (it == obj->fields.end()) throw ExecError(obj->cls->name + " has no field " + n.field);
        return it->second;
    }
    case ExprKind::StaticGet: {
        const auto& n = as<StaticGetExpr>(e);
        const StaticField* sf = prog_.resolveStatic(n.cls, n.field);
        if (!sf) throw ExecError(n.cls + " has no static field " + n.field);
        switch (sf->type.prim()) {
        case Prim::Bool: return Value::ofBool(sf->i != 0);
        case Prim::I32: return Value::ofI32(static_cast<int32_t>(sf->i));
        case Prim::I64: return Value::ofI64(sf->i);
        case Prim::F32: return Value::ofF32(static_cast<float>(sf->f));
        case Prim::F64: return Value::ofF64(sf->f);
        }
        return Value();
    }
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        Value av = evalExpr(f, *n.arr);
        const ArrRef& arr = av.asArr();
        if (!arr) throw ExecError("NullPointerException: array read");
        int32_t idx = evalExpr(f, *n.idx).asI32();
        if (idx < 0 || static_cast<size_t>(idx) >= arr->data.size()) {
            throw ExecError("ArrayIndexOutOfBoundsException: " + std::to_string(idx) + " of " +
                            std::to_string(arr->data.size()));
        }
        return arr->data[static_cast<size_t>(idx)];
    }
    case ExprKind::ArrayLen: {
        Value av = evalExpr(f, *as<ArrayLenExpr>(e).arr);
        const ArrRef& arr = av.asArr();
        if (!arr) throw ExecError("NullPointerException: .length");
        return Value::ofI32(static_cast<int32_t>(arr->data.size()));
    }
    case ExprKind::Unary: {
        const auto& n = as<UnaryExpr>(e);
        Value v = evalExpr(f, *n.e);
        if (n.op == UnOp::Not) return Value::ofBool(!v.asBool());
        if (v.isI32()) return Value::ofI32(-v.asI32());
        if (v.isI64()) return Value::ofI64(-v.asI64());
        if (v.isF32()) return Value::ofF32(-v.asF32());
        return Value::ofF64(-v.asF64());
    }
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        if (isLogical(n.op)) {
            const bool l = evalExpr(f, *n.l).asBool();
            if (n.op == BinOp::LAnd) return Value::ofBool(l && evalExpr(f, *n.r).asBool());
            return Value::ofBool(l || evalExpr(f, *n.r).asBool());
        }
        Value l = evalExpr(f, *n.l);
        Value r = evalExpr(f, *n.r);
        if (l.isObj() || l.isArr()) {
            // Reference equality (untranslated code may use it).
            const bool same = l.isObj() ? l.asObj() == r.asObj() : l.asArr() == r.asArr();
            if (n.op == BinOp::Eq) return Value::ofBool(same);
            if (n.op == BinOp::Ne) return Value::ofBool(!same);
            throw ExecError("arithmetic on references");
        }
        if (l.isBool()) {
            if (n.op == BinOp::Eq) return Value::ofBool(l.asBool() == r.asBool());
            if (n.op == BinOp::Ne) return Value::ofBool(l.asBool() != r.asBool());
            throw ExecError("arithmetic on booleans");
        }
        if (l.isI32()) return arith(n.op, l.asI32(), r.asI32());
        if (l.isI64()) return arith(n.op, l.asI64(), r.asI64());
        if (l.isF32()) return arith(n.op, l.asF32(), r.asF32());
        return arith(n.op, l.asF64(), r.asF64());
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        return evalExpr(f, evalExpr(f, *n.c).asBool() ? *n.t : *n.f);
    }
    case ExprKind::Call: {
        const auto& n = as<CallExpr>(e);
        Value recv = evalExpr(f, *n.recv);
        std::vector<Value> args;
        args.reserve(n.args.size());
        for (const auto& a : n.args) args.push_back(evalExpr(f, *a));
        return call(recv, n.method, std::move(args));
    }
    case ExprKind::StaticCall: {
        const auto& n = as<StaticCallExpr>(e);
        std::vector<Value> args;
        args.reserve(n.args.size());
        for (const auto& a : n.args) args.push_back(evalExpr(f, *a));
        return callStatic(n.cls, n.method, std::move(args));
    }
    case ExprKind::New: {
        const auto& n = as<NewExpr>(e);
        std::vector<Value> args;
        args.reserve(n.args.size());
        for (const auto& a : n.args) args.push_back(evalExpr(f, *a));
        return instantiate(n.cls, std::move(args));
    }
    case ExprKind::NewArray: {
        const auto& n = as<NewArrayExpr>(e);
        return newArray(n.elem, evalExpr(f, *n.len).asI32());
    }
    case ExprKind::Cast: {
        const auto& n = as<CastExpr>(e);
        Value v = evalExpr(f, *n.e);
        if (n.type.isClass()) {
            const ObjRef& obj = v.asObj();
            if (obj && !prog_.isSubtypeOf(obj->cls->name, n.type.className())) {
                throw ExecError("ClassCastException: " + obj->cls->name + " to " +
                                n.type.className());
            }
            return v;
        }
        if (!n.type.isPrim()) return v;
        double d = 0;
        int64_t i = 0;
        bool fromFloat = false;
        if (v.isI32()) i = v.asI32();
        else if (v.isI64()) i = v.asI64();
        else if (v.isF32()) { d = v.asF32(); fromFloat = true; }
        else if (v.isF64()) { d = v.asF64(); fromFloat = true; }
        else throw ExecError("bad numeric cast source");
        switch (n.type.prim()) {
        case Prim::I32: return Value::ofI32(fromFloat ? static_cast<int32_t>(d) : static_cast<int32_t>(i));
        case Prim::I64: return Value::ofI64(fromFloat ? static_cast<int64_t>(d) : i);
        case Prim::F32: return Value::ofF32(fromFloat ? static_cast<float>(d) : static_cast<float>(i));
        case Prim::F64: return Value::ofF64(fromFloat ? d : static_cast<double>(i));
        case Prim::Bool: throw ExecError("cannot cast number to boolean");
        }
        return v;
    }
    case ExprKind::IntrinsicCall:
        return evalIntrinsic(f, as<IntrinsicExpr>(e));
    }
    panic("unreachable expr kind in interp");
}

Value Interp::evalIntrinsic(Frame& f, const IntrinsicExpr& e) {
    auto arg = [&](size_t i) { return evalExpr(f, *e.args[i]); };
    switch (e.op) {
    // Like the wjrt runtime without a bound world: a JVM process is a
    // 1-rank world. Rank/size queries succeed; communication still traps.
    case Intrinsic::MpiRank: return Value::ofI32(0);
    case Intrinsic::MpiSize: return Value::ofI32(1);

    case Intrinsic::MathSqrtF64: return Value::ofF64(std::sqrt(arg(0).asF64()));
    case Intrinsic::MathFabsF64: return Value::ofF64(std::fabs(arg(0).asF64()));
    case Intrinsic::MathExpF64: return Value::ofF64(std::exp(arg(0).asF64()));
    case Intrinsic::MathSqrtF32: return Value::ofF32(std::sqrt(arg(0).asF32()));
    case Intrinsic::RngHashF32:
        return Value::ofF32(wj_rng_hash_f32(arg(0).asI32(), arg(1).asI32()));
    case Intrinsic::FreeArray:
        arg(0);  // evaluated for effect; the interpreter heap is GC'd
        return Value();
    case Intrinsic::PrintI64:
        std::printf("%lld\n", static_cast<long long>(arg(0).asI64()));
        return Value();
    case Intrinsic::PrintF64:
        std::printf("%.9g\n", arg(0).asF64());
        return Value();

    case Intrinsic::CudaThreadIdxX: case Intrinsic::CudaThreadIdxY: case Intrinsic::CudaThreadIdxZ:
    case Intrinsic::CudaBlockIdxX: case Intrinsic::CudaBlockIdxY: case Intrinsic::CudaBlockIdxZ:
    case Intrinsic::CudaBlockDimX: case Intrinsic::CudaBlockDimY: case Intrinsic::CudaBlockDimZ:
    case Intrinsic::CudaGridDimX: case Intrinsic::CudaGridDimY: case Intrinsic::CudaGridDimZ: {
        if (!gpu_) {
            throw ExecError(std::string(intrinsicSig(e.op).name) +
                            " outside a kernel (enable device emulation and call via @Global)");
        }
        switch (e.op) {
        case Intrinsic::CudaThreadIdxX: return Value::ofI32(gpu_->tx);
        case Intrinsic::CudaThreadIdxY: return Value::ofI32(gpu_->ty);
        case Intrinsic::CudaThreadIdxZ: return Value::ofI32(gpu_->tz);
        case Intrinsic::CudaBlockIdxX: return Value::ofI32(gpu_->bx);
        case Intrinsic::CudaBlockIdxY: return Value::ofI32(gpu_->by);
        case Intrinsic::CudaBlockIdxZ: return Value::ofI32(gpu_->bz);
        case Intrinsic::CudaBlockDimX: return Value::ofI32(gpu_->bdx);
        case Intrinsic::CudaBlockDimY: return Value::ofI32(gpu_->bdy);
        case Intrinsic::CudaBlockDimZ: return Value::ofI32(gpu_->bdz);
        case Intrinsic::CudaGridDimX: return Value::ofI32(gpu_->gdx);
        case Intrinsic::CudaGridDimY: return Value::ofI32(gpu_->gdy);
        default: return Value::ofI32(gpu_->gdz);
        }
    }
    case Intrinsic::CudaSyncThreads:
    case Intrinsic::CudaSharedF32:
        throw ExecError("sequential device emulation cannot execute syncthreads/shared memory; "
                        "use the JIT + GpuSim");

    case Intrinsic::GpuMallocF32:
        if (!opts_.deviceEmulation) break;
        return newArray(Type::f32(), arg(0).asI32());
    case Intrinsic::GpuFree:
        if (!opts_.deviceEmulation) break;
        arg(0);
        return Value();
    case Intrinsic::GpuMemcpyH2DOffF32:
    case Intrinsic::GpuMemcpyD2HOffF32: {
        if (!opts_.deviceEmulation) break;
        Value dst = arg(0);
        int32_t dstOff = arg(1).asI32();
        Value src = arg(2);
        int32_t srcOff = arg(3).asI32();
        int32_t n = arg(4).asI32();
        const ArrRef& d = dst.asArr();
        const ArrRef& s2 = src.asArr();
        if (!d || !s2) throw ExecError("NullPointerException: memcpy");
        if (dstOff < 0 || srcOff < 0 || n < 0 ||
            static_cast<size_t>(dstOff) + static_cast<size_t>(n) > d->data.size() ||
            static_cast<size_t>(srcOff) + static_cast<size_t>(n) > s2->data.size()) {
            throw ExecError("memcpy range out of bounds");
        }
        for (int32_t i = 0; i < n; ++i) {
            d->data[static_cast<size_t>(dstOff + i)] = s2->data[static_cast<size_t>(srcOff + i)];
        }
        return Value();
    }
    case Intrinsic::GpuMemcpyH2DF32:
    case Intrinsic::GpuMemcpyD2HF32: {
        if (!opts_.deviceEmulation) break;
        Value dst = arg(0);
        Value src = arg(1);
        int32_t n = arg(2).asI32();
        const ArrRef& d = dst.asArr();
        const ArrRef& s = src.asArr();
        if (!d || !s) throw ExecError("NullPointerException: memcpy");
        if (n < 0 || static_cast<size_t>(n) > d->data.size() ||
            static_cast<size_t>(n) > s->data.size()) {
            throw ExecError("memcpy length out of range");
        }
        for (int32_t i = 0; i < n; ++i) d->data[static_cast<size_t>(i)] = s->data[static_cast<size_t>(i)];
        return Value();
    }

    // Checkpoint/restart: the interpreter is a 1-rank world, so the store is
    // keyed with rank 0 — matching wjrt_ckpt_*_f32 without a bound world.
    case Intrinsic::CkptSaveF32: {
        Value buf = arg(0);
        int32_t n = arg(1).asI32();
        int32_t slot = arg(2).asI32();
        int32_t iter = arg(3).asI32();
        const ArrRef& a = buf.asArr();
        if (!a) throw ExecError("NullPointerException: ckptSaveF32");
        if (n < 0 || static_cast<size_t>(n) > a->data.size()) {
            throw ExecError("ckptSaveF32 length out of range");
        }
        std::vector<float> raw(static_cast<size_t>(n));
        for (int32_t i = 0; i < n; ++i) raw[static_cast<size_t>(i)] = a->data[static_cast<size_t>(i)].asF32();
        fault::CheckpointStore::instance().save(0, slot, iter, raw.data(), raw.size());
        return Value();
    }
    case Intrinsic::CkptLoadF32: {
        Value buf = arg(0);
        int32_t n = arg(1).asI32();
        int32_t slot = arg(2).asI32();
        const ArrRef& a = buf.asArr();
        if (!a) throw ExecError("NullPointerException: ckptLoadF32");
        if (n < 0 || static_cast<size_t>(n) > a->data.size()) {
            throw ExecError("ckptLoadF32 length out of range");
        }
        std::vector<float> raw(static_cast<size_t>(n));
        int32_t got = fault::CheckpointStore::instance().load(0, slot, raw.data(), raw.size());
        if (got >= 0) {
            for (int32_t i = 0; i < n; ++i) a->data[static_cast<size_t>(i)] = Value::ofF32(raw[static_cast<size_t>(i)]);
        }
        return Value::ofI32(got);
    }

    default:
        break;
    }
    throw ExecError(std::string("the JVM cannot execute ") + intrinsicSig(e.op).name +
                    "; translate the code with WootinJ.jit()/jit4mpi()");
}

} // namespace wj
