// Runtime values for the WJ interpreter ("the JVM").
//
// Objects are heap-allocated with a field map and arrays are heap vectors of
// boxed values — deliberately the expensive representation. The paper's
// Figure 3/17/18 "Java" bars exist because unoptimized object-oriented
// execution pays for dispatch, boxing, and indirection; this representation
// reproduces that cost profile. The JIT path never touches these types
// except to snapshot the composed application object at translation time.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "ir/decl.h"
#include "support/diagnostics.h"

namespace wj {

struct Obj;
struct Arr;
using ObjRef = std::shared_ptr<Obj>;
using ArrRef = std::shared_ptr<Arr>;

/// A runtime value: void (monostate), a primitive, or a reference.
class Value {
public:
    Value() = default;
    static Value ofBool(bool b) { return Value(Rep(b)); }
    static Value ofI32(int32_t v) { return Value(Rep(v)); }
    static Value ofI64(int64_t v) { return Value(Rep(v)); }
    static Value ofF32(float v) { return Value(Rep(v)); }
    static Value ofF64(double v) { return Value(Rep(v)); }
    static Value ofObj(ObjRef o) { return Value(Rep(std::move(o))); }
    static Value ofArr(ArrRef a) { return Value(Rep(std::move(a))); }

    bool isVoid() const noexcept { return std::holds_alternative<std::monostate>(v_); }
    bool isBool() const noexcept { return std::holds_alternative<bool>(v_); }
    bool isI32() const noexcept { return std::holds_alternative<int32_t>(v_); }
    bool isI64() const noexcept { return std::holds_alternative<int64_t>(v_); }
    bool isF32() const noexcept { return std::holds_alternative<float>(v_); }
    bool isF64() const noexcept { return std::holds_alternative<double>(v_); }
    bool isObj() const noexcept { return std::holds_alternative<ObjRef>(v_); }
    bool isArr() const noexcept { return std::holds_alternative<ArrRef>(v_); }

    bool asBool() const { return get<bool>("boolean"); }
    int32_t asI32() const { return get<int32_t>("int"); }
    int64_t asI64() const { return get<int64_t>("long"); }
    float asF32() const { return get<float>("float"); }
    double asF64() const { return get<double>("double"); }
    const ObjRef& asObj() const { return get<ObjRef>("object"); }
    const ArrRef& asArr() const { return get<ArrRef>("array"); }

    /// Default (zero / null) value for a declared type.
    static Value defaultOf(const Type& t);

    std::string str() const;

private:
    using Rep = std::variant<std::monostate, bool, int32_t, int64_t, float, double, ObjRef, ArrRef>;
    explicit Value(Rep r) : v_(std::move(r)) {}

    template <typename T>
    const T& get(const char* what) const {
        const T* p = std::get_if<T>(&v_);
        if (!p) throw ExecError(std::string("value is not a ") + what + ": " + str());
        return *p;
    }

    Rep v_;
};

/// A heap object: exact class plus one boxed value per field (inherited
/// fields included), keyed by name.
struct Obj {
    const ClassDecl* cls = nullptr;
    std::map<std::string, Value> fields;
};

/// A heap array of boxed values.
struct Arr {
    Type elem = Type::i32();
    std::vector<Value> data;
};

} // namespace wj
