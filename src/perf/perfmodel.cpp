#include "perf/perfmodel.h"

#include <algorithm>
#include <cmath>

namespace wj::perf {

double GpuModel::kernelTime(double bytes, double flops) const noexcept {
    return launchOverhead + std::max(bytes / memBandwidth, flops / peakFlops);
}

NetModel fitAlphaBeta(const std::vector<LinkSample>& samples) noexcept {
    // Ordinary least squares on t = a + b*bytes; alpha = a, beta = 1/b.
    double sx = 0, st = 0;
    for (const LinkSample& s : samples) {
        sx += s.bytes;
        st += s.seconds;
    }
    const double n = static_cast<double>(samples.size());
    double varX = 0, covXT = 0;
    if (n >= 2) {
        const double mx = sx / n, mt = st / n;
        for (const LinkSample& s : samples) {
            varX += (s.bytes - mx) * (s.bytes - mx);
            covXT += (s.bytes - mx) * (s.seconds - mt);
        }
    }
    if (!(varX > 0)) return MachineProfile::tsubame2().net;
    // Clamp away non-physical fits (noise can tilt the slope negative on a
    // machine where latency dwarfs the per-byte cost): a non-positive slope
    // becomes an effectively infinite-bandwidth link, a negative intercept
    // a zero-latency one.
    const double slope = std::max(covXT / varX, 1e-15);
    const double alpha = std::max(st / n - slope * (sx / n), 0.0);
    return NetModel{alpha, 1.0 / slope};
}

MachineProfile MachineProfile::tsubame2() noexcept {
    MachineProfile m;
    m.net.latency = 2e-6;
    m.net.bandwidth = 3.2e9;
    m.gpu.peakFlops = 515e9;
    m.gpu.memBandwidth = 148e9;
    m.gpu.pciBandwidth = 6e9;
    m.gpu.launchOverhead = 7e-6;
    return m;
}

// ------------------------------------------------------------ StencilScaling

double StencilScaling::computeCpu(int64_t nzLocal) const noexcept {
    return static_cast<double>(nx * ny * nzLocal) * secondsPerCell;
}

double StencilScaling::computeGpu(const MachineProfile& m, int64_t nzLocal) const noexcept {
    const double cells = static_cast<double>(nx * ny * nzLocal);
    return m.gpu.kernelTime(cells * bytesPerCell, cells * flopsPerCell) * gpuVariantFactor;
}

double StencilScaling::haloTime(const MachineProfile& m, int P, bool gpu) const noexcept {
    if (P <= 1) return 0.0;
    const double faceBytes = static_cast<double>(nx * ny) * 4.0;  // one float plane
    // Two neighbors (periodic ring), exchanged via sendrecv: the paper's
    // runner overlaps nothing, so both directions serialize.
    double t = 2.0 * m.net.transferTime(faceBytes);
    if (gpu) {
        // GPU+MPI must stage the boundary planes through host memory:
        // D2H before the exchange and H2D after, both directions.
        t += 4.0 * m.gpu.pciTime(faceBytes);
    }
    return t;
}

double StencilScaling::weakStepCpu(const MachineProfile& m, int P) const noexcept {
    return computeCpu(nzPerNodeOrGlobal) + haloTime(m, P, false);
}

double StencilScaling::strongStepCpu(const MachineProfile& m, int P) const noexcept {
    const int64_t nzLocal = std::max<int64_t>(1, nzPerNodeOrGlobal / P);
    return computeCpu(nzLocal) + haloTime(m, P, false);
}

double StencilScaling::weakStepGpu(const MachineProfile& m, int P) const noexcept {
    return computeGpu(m, nzPerNodeOrGlobal) + haloTime(m, P, true);
}

double StencilScaling::strongStepGpu(const MachineProfile& m, int P) const noexcept {
    const int64_t nzLocal = std::max<int64_t>(1, nzPerNodeOrGlobal / P);
    return computeGpu(m, nzLocal) + haloTime(m, P, true);
}

double StencilScaling::weakStepCpuOverlap(const MachineProfile& m, int P) const noexcept {
    const int64_t nzLocal = nzPerNodeOrGlobal;
    const double boundary = computeCpu(std::min<int64_t>(2, nzLocal));
    const double interior = computeCpu(std::max<int64_t>(0, nzLocal - 2));
    return std::max(haloTime(m, P, false), interior) + boundary;
}

// ---------------------------------------------------------------- FoxScaling

int squareSide(int P) noexcept {
    int q = static_cast<int>(std::sqrt(static_cast<double>(P)));
    while ((q + 1) * (q + 1) <= P) ++q;
    while (q > 1 && q * q > P) --q;
    return std::max(q, 1);
}

double FoxScaling::totalCpu(const MachineProfile& m, int P, bool weak) const noexcept {
    const int q = squareSide(P);
    // Weak scaling keeps n^3 work per node constant: global n = nPer * q^(2/3)
    // would keep flops/node constant, but the paper scales the problem as
    // "2048^3 per node", i.e. the local block stays 2048 — global n = 2048*q.
    const double n = weak ? static_cast<double>(nPerNodeOrGlobal) * q
                          : static_cast<double>(nPerNodeOrGlobal);
    const double blockDim = n / q;
    const double blockBytes = blockDim * blockDim * 4.0;
    const double compute = n * n * n / (static_cast<double>(q) * q) * secondsPerFma;
    double comm = 0.0;
    if (q > 1) {
        // Per iteration: tree broadcast of the A block along the row
        // (ceil(log2 q) stages) + column shift of the B block. q iterations.
        const double stages = std::ceil(std::log2(static_cast<double>(q)));
        comm = q * (stages * m.net.transferTime(blockBytes) + m.net.transferTime(blockBytes));
    }
    return compute + comm;
}

double FoxScaling::totalGpu(const MachineProfile& m, int P, bool weak) const noexcept {
    const int q = squareSide(P);
    const double n = weak ? static_cast<double>(nPerNodeOrGlobal) * q
                          : static_cast<double>(nPerNodeOrGlobal);
    const double blockDim = n / q;
    const double blockBytes = blockDim * blockDim * 4.0;
    // Per iteration the local multiply reads two blocks and writes one;
    // with shared-memory tiling each element of A/B is read ~blockDim/TILE
    // times from DRAM — model the classic tiled kernel at TILE=16.
    const double tile = 16.0;
    const double flops = 2.0 * blockDim * blockDim * blockDim;
    const double bytes = (2.0 * blockDim * blockDim * blockDim / tile + blockDim * blockDim) * 4.0;
    const double kernel = m.gpu.kernelTime(bytes, flops) * gpuVariantFactor;
    double comm = 0.0;
    if (q > 1) {
        const double stages = std::ceil(std::log2(static_cast<double>(q)));
        comm = stages * m.net.transferTime(blockBytes) + m.net.transferTime(blockBytes) +
               2.0 * m.gpu.pciTime(blockBytes);  // stage blocks through the host
    }
    return static_cast<double>(q) * (kernel + comm);
}

} // namespace wj::perf
