// Analytic performance model for cluster-scale figures.
//
// This machine has one CPU core and no GPU or interconnect, so the weak/
// strong scaling axes of the paper's Figures 4-16 cannot be measured
// directly. Per DESIGN.md's substitution table, the benches MEASURE each
// variant's real single-node kernel cost (interpreter, JIT output, C++/
// template baselines, hand C) and feed it into this module, which models:
//
//   * point-to-point communication with the standard alpha-beta (latency +
//     bytes/bandwidth) model, with TSUBAME-2.0-era constants (QDR
//     InfiniBand) as the default profile;
//   * GPU kernels with a roofline over the M2050's memory bandwidth and
//     peak flops, plus PCIe transfers for the halo planes the paper's
//     GPU+MPI runner must stage through host memory;
//   * the two communication patterns the paper's libraries use: 1-D slab
//     halo exchange (3-D diffusion, Section 4.1) and the Fox algorithm's
//     row-broadcast + column-shift (matrix multiplication, Section 4.2).
//
// All quantities are seconds and bytes; sizes are element counts.
#pragma once

#include <cstdint>
#include <vector>

namespace wj::perf {

/// alpha-beta link model.
struct NetModel {
    double latency;    ///< seconds per message
    double bandwidth;  ///< bytes per second

    double transferTime(double bytes) const noexcept {
        return latency + bytes / bandwidth;
    }
};

/// One measured link point: a `bytes`-byte message cost `seconds` one-way.
struct LinkSample {
    double bytes;
    double seconds;
};

/// Least-squares fit of the alpha-beta model t = alpha + bytes/beta over
/// measured link samples (e.g. the threads-vs-proc ping-pong medians the
/// micro bench persists; a round trip is two messages). The intercept is
/// clamped to >= 0 and the slope to > 0, so the result is always a usable
/// NetModel; with fewer than two distinct message sizes there is nothing
/// to fit and the TSUBAME-2.0 default link is returned instead.
NetModel fitAlphaBeta(const std::vector<LinkSample>& samples) noexcept;

/// Roofline-style GPU model.
struct GpuModel {
    double peakFlops;       ///< flop/s (fused ops counted as 2)
    double memBandwidth;    ///< device memory, bytes/s
    double pciBandwidth;    ///< host<->device, bytes/s
    double launchOverhead;  ///< seconds per kernel launch

    /// Time for a kernel moving `bytes` and computing `flops`, as the
    /// roofline max of the two plus launch cost.
    double kernelTime(double bytes, double flops) const noexcept;

    double pciTime(double bytes) const noexcept {
        return bytes / pciBandwidth;
    }
};

struct MachineProfile {
    NetModel net;
    GpuModel gpu;

    /// TSUBAME-2.0-like constants: QDR InfiniBand (~2 us, ~3.2 GB/s
    /// effective per rail), NVIDIA M2050 (515 GF/s DP peak, 148 GB/s,
    /// PCIe 2.0 x16 ~6 GB/s effective).
    static MachineProfile tsubame2() noexcept;
};

/// 3-D diffusion with 1-D slab decomposition along z (the paper's stencil
/// library). `secondsPerCell` is the measured per-grid-point update cost of
/// the variant being modeled (on CPU: measured directly; on GPU: derived
/// from the roofline and the variant's measured relative factor).
struct StencilScaling {
    int64_t nx, ny;
    int64_t nzPerNodeOrGlobal;  ///< weak: per node; strong: global
    double secondsPerCell;      ///< CPU variants; ignored for GPU
    double bytesPerCell = 8;    ///< one float read + one write per update
    double flopsPerCell = 13;   ///< 7-point stencil: 6 adds + 7 muls
    double gpuVariantFactor = 1.0;  ///< measured slowdown vs the C kernel

    /// Seconds per simulation step on P CPU nodes, weak scaling
    /// (nzPerNodeOrGlobal is per node).
    double weakStepCpu(const MachineProfile& m, int P) const noexcept;
    /// Seconds per step on P CPU nodes, strong scaling (global nz).
    double strongStepCpu(const MachineProfile& m, int P) const noexcept;
    /// GPU versions: compute from the roofline; halo planes cross PCIe.
    double weakStepGpu(const MachineProfile& m, int P) const noexcept;
    double strongStepGpu(const MachineProfile& m, int P) const noexcept;

    /// EXTENSION: halo exchange overlapped with the interior sweep —
    /// max(comm, interior compute) + boundary-plane compute.
    double weakStepCpuOverlap(const MachineProfile& m, int P) const noexcept;

private:
    double haloTime(const MachineProfile& m, int P, bool gpu) const noexcept;
    double computeCpu(int64_t nzLocal) const noexcept;
    double computeGpu(const MachineProfile& m, int64_t nzLocal) const noexcept;
};

/// Fox's algorithm on a q x q process grid (the paper's matmul library).
struct FoxScaling {
    int64_t nPerNodeOrGlobal;  ///< matrix dimension; weak: per node
    double secondsPerFma;      ///< measured per multiply-add of the variant
    double gpuVariantFactor = 1.0;

    /// Seconds for the whole multiplication on P = q*q CPU nodes.
    double totalCpu(const MachineProfile& m, int P, bool weak) const noexcept;
    double totalGpu(const MachineProfile& m, int P, bool weak) const noexcept;
};

/// Largest q with q*q <= P (Fox needs a square grid).
int squareSide(int P) noexcept;

} // namespace wj::perf
