#include "cg/cg_lib.h"

#include <vector>

#include "runtime/rng_hash.h"
#include "support/diagnostics.h"

namespace wj::cg {

using namespace wj::dsl;

namespace {

Type f32() { return Type::f32(); }
Type f32arr() { return Type::array(Type::f32()); }
Type i32() { return Type::i32(); }
Type i32arr() { return Type::array(Type::i32()); }
Type f64() { return Type::f64(); }

void buildOperators(ProgramBuilder& pb) {
    pb.cls("LinearOperator").interfaceClass()
        .method("apply", Type::voidTy())
        .param("x", f32arr()).param("y", f32arr())
        .abstractMethod();

    // Matrix-free 1-D Dirichlet Laplacian: y = (2, -1) tridiagonal * x.
    {
        auto& c = pb.cls("Laplacian1D").implements("LinearOperator").finalClass();
        c.method("apply", Type::voidTy())
            .param("x", f32arr()).param("y", f32arr())
            .body(blk(
                decl("n", i32(), alen(lv("x"))),
                forRange("i", ci(0), lv("n"), blk(
                    decl("acc", f32(), mul(cf(2.0f), aget(lv("x"), lv("i")))),
                    ifs(gt(lv("i"), ci(0)),
                        blk(assign("acc", sub(lv("acc"), aget(lv("x"), sub(lv("i"), ci(1))))))),
                    ifs(lt(lv("i"), sub(lv("n"), ci(1))),
                        blk(assign("acc", sub(lv("acc"), aget(lv("x"), add(lv("i"), ci(1))))))),
                    aset(lv("y"), lv("i"), lv("acc")))),
                retVoid()));
    }

    // The same operator materialized in CSR form. The index/value arrays are
    // allocated in the constructor (rule-compliant) and filled by
    // buildLaplacian(), which the host runs on the interpreter before jit —
    // after that the instance never changes (semi-immutable discipline).
    {
        auto& c = pb.cls("CsrMatrix").implements("LinearOperator").finalClass();
        c.field("vals", f32arr()).field("cols", i32arr()).field("rowPtr", i32arr());
        c.field("n", i32());
        c.ctor().param("n_", i32())
            .body(blk(setSelf("n", lv("n_")),
                      setSelf("vals", newArr(f32(), sub(mul(ci(3), lv("n_")), ci(2)))),
                      setSelf("cols", newArr(i32(), sub(mul(ci(3), lv("n_")), ci(2)))),
                      setSelf("rowPtr", newArr(i32(), add(lv("n_"), ci(1))))));
        c.method("buildLaplacian", Type::voidTy())
            .body(blk(
                decl("n", i32(), selff("n")),
                decl("k", i32(), ci(0)),
                forRange("i", ci(0), lv("n"), blk(
                    aset(selff("rowPtr"), lv("i"), lv("k")),
                    ifs(gt(lv("i"), ci(0)), blk(
                        aset(selff("vals"), lv("k"), cf(-1.0f)),
                        aset(selff("cols"), lv("k"), sub(lv("i"), ci(1))),
                        assign("k", add(lv("k"), ci(1))))),
                    aset(selff("vals"), lv("k"), cf(2.0f)),
                    aset(selff("cols"), lv("k"), lv("i")),
                    assign("k", add(lv("k"), ci(1))),
                    ifs(lt(lv("i"), sub(lv("n"), ci(1))), blk(
                        aset(selff("vals"), lv("k"), cf(-1.0f)),
                        aset(selff("cols"), lv("k"), add(lv("i"), ci(1))),
                        assign("k", add(lv("k"), ci(1))))))),
                aset(selff("rowPtr"), lv("n"), lv("k")),
                retVoid()));
        c.method("apply", Type::voidTy())
            .param("x", f32arr()).param("y", f32arr())
            .body(blk(
                forRange("i", ci(0), selff("n"), blk(
                    decl("acc", f32(), cf(0.0f)),
                    forRange("k", aget(selff("rowPtr"), lv("i")),
                             aget(selff("rowPtr"), add(lv("i"), ci(1))),
                             blk(assign("acc",
                                        add(lv("acc"),
                                            mul(aget(selff("vals"), lv("k")),
                                                aget(lv("x"), aget(selff("cols"), lv("k")))))))),
                    aset(lv("y"), lv("i"), lv("acc")))),
                retVoid()));
    }

    // Row-slab MPI Laplacian: each rank owns n contiguous rows of the global
    // operator and exchanges one boundary value with each neighbor per apply
    // (non-periodic: the outermost ghosts stay 0 — Dirichlet).
    {
        auto& c = pb.cls("MpiLaplacian1D").implements("LinearOperator").finalClass();
        c.field("scratch", f32arr());
        c.ctor().param("nLocal", i32())
            .body(blk(setSelf("scratch", newArr(f32(), add(lv("nLocal"), ci(2))))));
        c.method("apply", Type::voidTy())
            .param("x", f32arr()).param("y", f32arr())
            .body(blk(
                decl("n", i32(), alen(lv("x"))),
                decl("s", f32arr(), selff("scratch")),
                aset(lv("s"), ci(0), cf(0.0f)),
                aset(lv("s"), add(lv("n"), ci(1)), cf(0.0f)),
                forRange("i", ci(0), lv("n"),
                         blk(aset(lv("s"), add(lv("i"), ci(1)), aget(lv("x"), lv("i"))))),
                decl("rank", i32(), mpiRank()),
                decl("size", i32(), mpiSize()),
                ifs(gt(lv("rank"), ci(0)), blk(
                    // left neighbor: send my first element, receive its last.
                    exprS(intr(Intrinsic::MpiSendRecvF32, lv("x"), ci(0), ci(1),
                               sub(lv("rank"), ci(1)), lv("s"), ci(0),
                               sub(lv("rank"), ci(1)), ci(41))))),
                ifs(lt(lv("rank"), sub(lv("size"), ci(1))), blk(
                    exprS(intr(Intrinsic::MpiSendRecvF32, lv("x"), sub(lv("n"), ci(1)), ci(1),
                               add(lv("rank"), ci(1)), lv("s"), add(lv("n"), ci(1)),
                               add(lv("rank"), ci(1)), ci(41))))),
                forRange("i", ci(0), lv("n"), blk(
                    aset(lv("y"), lv("i"),
                         sub(sub(mul(cf(2.0f), aget(lv("s"), add(lv("i"), ci(1)))),
                                 aget(lv("s"), lv("i"))),
                             aget(lv("s"), add(lv("i"), ci(2))))))),
                retVoid()));
    }
}

void buildDots(ProgramBuilder& pb) {
    pb.cls("DotProduct").interfaceClass()
        .method("dot", f64()).param("a", f32arr()).param("b", f32arr())
        .abstractMethod();
    {
        auto& c = pb.cls("LocalDot").implements("DotProduct").finalClass();
        c.method("dot", f64())
            .param("a", f32arr()).param("b", f32arr())
            .body(blk(decl("s", f64(), cd(0)),
                      forRange("i", ci(0), alen(lv("a")),
                               blk(assign("s", add(lv("s"),
                                                   mul(cast(f64(), aget(lv("a"), lv("i"))),
                                                       cast(f64(), aget(lv("b"), lv("i"))))))) ),
                      ret(lv("s"))));
    }
    {
        auto& c = pb.cls("MpiDot").implements("DotProduct").finalClass();
        c.method("dot", f64())
            .param("a", f32arr()).param("b", f32arr())
            .body(blk(decl("s", f64(), cd(0)),
                      forRange("i", ci(0), alen(lv("a")),
                               blk(assign("s", add(lv("s"),
                                                   mul(cast(f64(), aget(lv("a"), lv("i"))),
                                                       cast(f64(), aget(lv("b"), lv("i"))))))) ),
                      decl("g", f64(), lv("s")),
                      ifs(gt(mpiSize(), ci(1)),
                          blk(assign("g", intr(Intrinsic::MpiAllreduceSumF64, lv("s"))))),
                      ret(lv("g"))));
    }
}

void buildSolver(ProgramBuilder& pb) {
    auto& c = pb.cls("CGSolver");
    c.field("op", Type::cls("LinearOperator"));
    c.field("dots", Type::cls("DotProduct"));
    c.ctor()
        .param("op_", Type::cls("LinearOperator"))
        .param("dots_", Type::cls("DotProduct"))
        .body(blk(setSelf("op", lv("op_")), setSelf("dots", lv("dots_"))));

    // Textbook CG on the rank's row slab; returns ||r||^2 after `iters`.
    c.method("run", f64())
        .param("n", i32())
        .param("seed", i32())
        .param("iters", i32())
        .body(blk(
            decl("rank", i32(), mpiRank()),
            decl("x", f32arr(), newArr(f32(), lv("n"))),
            decl("r", f32arr(), newArr(f32(), lv("n"))),
            decl("p", f32arr(), newArr(f32(), lv("n"))),
            decl("ap", f32arr(), newArr(f32(), lv("n"))),
            // b = rng over GLOBAL row indices; x0 = 0 so r0 = b, p0 = b.
            forRange("i", ci(0), lv("n"), blk(
                decl("bi", f32(), intr(Intrinsic::RngHashF32, lv("seed"),
                                       add(mul(lv("rank"), lv("n")), lv("i")))),
                aset(lv("r"), lv("i"), lv("bi")),
                aset(lv("p"), lv("i"), lv("bi")))),
            decl("rs", f64(), call(selff("dots"), "dot", lv("r"), lv("r"))),
            forRange("it", ci(0), lv("iters"), blk(
                exprS(call(selff("op"), "apply", lv("p"), lv("ap"))),
                decl("pap", f64(), call(selff("dots"), "dot", lv("p"), lv("ap"))),
                decl("alpha", f32(), cast(f32(), divE(lv("rs"), lv("pap")))),
                forRange("i", ci(0), lv("n"), blk(
                    aset(lv("x"), lv("i"),
                         add(aget(lv("x"), lv("i")), mul(lv("alpha"), aget(lv("p"), lv("i"))))),
                    aset(lv("r"), lv("i"),
                         sub(aget(lv("r"), lv("i")), mul(lv("alpha"), aget(lv("ap"), lv("i"))))))),
                decl("rsNew", f64(), call(selff("dots"), "dot", lv("r"), lv("r"))),
                decl("beta", f32(), cast(f32(), divE(lv("rsNew"), lv("rs")))),
                forRange("i", ci(0), lv("n"), blk(
                    aset(lv("p"), lv("i"),
                         add(aget(lv("r"), lv("i")), mul(lv("beta"), aget(lv("p"), lv("i"))))))),
                assign("rs", lv("rsNew")))),
            exprS(intr(Intrinsic::FreeArray, lv("x"))),
            exprS(intr(Intrinsic::FreeArray, lv("r"))),
            exprS(intr(Intrinsic::FreeArray, lv("p"))),
            exprS(intr(Intrinsic::FreeArray, lv("ap"))),
            ret(lv("rs"))));
}

} // namespace

void registerLibrary(ProgramBuilder& pb) {
    buildOperators(pb);
    buildDots(pb);
    buildSolver(pb);
}

Program buildProgram() {
    ProgramBuilder pb;
    registerLibrary(pb);
    return pb.build();
}

Value makeCpuSolver(Interp& in, Operator op) {
    Value opv;
    if (op == Operator::MatrixFree) {
        opv = in.instantiate("Laplacian1D", {});
    } else {
        throw UsageError("CSR solver needs the matrix dimension; use makeCpuCsrSolver");
    }
    return in.instantiate("CGSolver", {opv, in.instantiate("LocalDot", {})});
}

Value makeCpuCsrSolver(Interp& in, int n) {
    Value csr = in.instantiate("CsrMatrix", {Value::ofI32(n)});
    in.call(csr, "buildLaplacian", {});  // fill on the JVM-analogue, then freeze
    return in.instantiate("CGSolver", {csr, in.instantiate("LocalDot", {})});
}

Value makeMpiSolver(Interp& in, int nLocal) {
    Value opv = in.instantiate("MpiLaplacian1D", {Value::ofI32(nLocal)});
    return in.instantiate("CGSolver", {opv, in.instantiate("MpiDot", {})});
}

double referenceCgResidual(int n, int seed, int iters) {
    std::vector<float> x(static_cast<size_t>(n), 0.0f), r(static_cast<size_t>(n)),
        p(static_cast<size_t>(n)), ap(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        r[static_cast<size_t>(i)] = wj_rng_hash_f32(seed, i);
        p[static_cast<size_t>(i)] = r[static_cast<size_t>(i)];
    }
    auto dot = [&](const std::vector<float>& a, const std::vector<float>& b) {
        double s = 0;
        for (size_t i = 0; i < a.size(); ++i) {
            s += static_cast<double>(a[i]) * static_cast<double>(b[i]);
        }
        return s;
    };
    auto apply = [&](const std::vector<float>& in_, std::vector<float>& out) {
        for (int i = 0; i < n; ++i) {
            float acc = 2.0f * in_[static_cast<size_t>(i)];
            if (i > 0) acc -= in_[static_cast<size_t>(i - 1)];
            if (i < n - 1) acc -= in_[static_cast<size_t>(i + 1)];
            out[static_cast<size_t>(i)] = acc;
        }
    };
    double rs = dot(r, r);
    for (int it = 0; it < iters; ++it) {
        apply(p, ap);
        const double pap = dot(p, ap);
        const float alpha = static_cast<float>(rs / pap);
        for (int i = 0; i < n; ++i) {
            x[static_cast<size_t>(i)] += alpha * p[static_cast<size_t>(i)];
            r[static_cast<size_t>(i)] -= alpha * ap[static_cast<size_t>(i)];
        }
        const double rsNew = dot(r, r);
        const float beta = static_cast<float>(rsNew / rs);
        for (int i = 0; i < n; ++i) {
            p[static_cast<size_t>(i)] =
                r[static_cast<size_t>(i)] + beta * p[static_cast<size_t>(i)];
        }
        rs = rsNew;
    }
    return rs;
}

} // namespace wj::cg
