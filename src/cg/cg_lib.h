// A conjugate-gradient class library on WootinC — the paper's stated future
// work ("develop larger class libraries in the HPC domain and evaluate the
// practicality of our framework", Section 6).
//
// Components, in the same composition style as the stencil/matmul libraries:
//   * LinearOperator (interface): y = A x for a symmetric positive-definite
//     operator, with two interchangeable implementations —
//       - Laplacian1D: matrix-free tridiagonal (2, -1) operator;
//       - CsrMatrix:   the same operator materialized in CSR form (exercises
//                      int arrays through the translator);
//   * DotProduct (interface): local or MPI-allreduced reductions, so the
//     SAME CGSolver runs sequentially or with the solution vector
//     row-partitioned across ranks —
//       - LocalDot:    plain f64 accumulation;
//       - MpiDot:      local partial + MPI.allreduceSumF64;
//   * CGSolver: textbook conjugate gradient; run(n, seed, iters) builds a
//     deterministic rhs, iterates, and returns the final residual norm^2 —
//     a scalar observable every platform must agree on.
//
// The CG recurrence itself is rule-compliant WJ code: all state lives in
// float arrays (mutable), scalars are locals, components are immutable.
#pragma once

#include "interp/interp.h"
#include "ir/builder.h"

namespace wj::cg {

/// Registers the CG library classes.
void registerLibrary(ProgramBuilder& pb);

/// Validated program with just this library.
Program buildProgram();

enum class Operator { MatrixFree, Csr };

/// new CGSolver(new Laplacian1D(), new LocalDot()) — sequential,
/// matrix-free composition.
Value makeCpuSolver(Interp& in, Operator op = Operator::MatrixFree);

/// new CGSolver(csr, new LocalDot()) — the CSR operator, materialized for
/// dimension n and filled on the interpreter before translation.
Value makeCpuCsrSolver(Interp& in, int n);

/// new CGSolver(new MpiLaplacian1D(nLocal), new MpiDot()) — each rank owns
/// nLocal rows; invoke under jit4mpi.
Value makeMpiSolver(Interp& in, int nLocal);

/// Plain C++ reference of the same iteration; returns ||r||^2 after iters.
double referenceCgResidual(int n, int seed, int iters);

} // namespace wj::cg
