// The matrix-multiplication class library (paper Section 4.2, Figure 8),
// written in WJ IR through the builder DSL.
//
// Components, mirroring the class diagram:
//   * Matrix (interface) / SimpleMatrix — the data-structure feature;
//   * Calculator (interface) with SimpleCalculator (naive ijk),
//     OptimizedCalculator (ikj over raw arrays), and GpuTiledCalculator
//     (shared-memory tiled CUDA kernel — exercises @Shared + syncthreads);
//   * OuterThread (interface) with CPULoop / MPIThread / GPUThread — how
//     to run the kernel in parallel;
//   * OuterThreadBody (interface) with SimpleOuterBody and FoxAlgorithm —
//     the parallel algorithm. MPIThread and FoxAlgorithm reproduce the
//     paper's Listing 6 MUTUAL TYPE REFERENCE (MPIThread holds an
//     OuterThreadBody and passes `this` to run(OuterThread, ...)), the
//     structure the paper could not express with C++ templates;
//   * MatMulApp — the composed application whose run(nLocal, seed) is the
//     jit entry; returns the global checksum of C.
//
// Fox's algorithm runs on a q x q rank grid: at step s, rank (i, j)
// receives A(i, (i+s) mod q) by row broadcast, multiplies into its C block,
// and shifts its B block upward along the column.
#pragma once

#include "interp/interp.h"
#include "ir/builder.h"

namespace wj::matmul {

/// Registers every library class listed above.
void registerLibrary(ProgramBuilder& pb);

/// Validated program containing just this library (+ builtins).
Program buildProgram();

// ---- composition helpers --------------------------------------------------

enum class Calc { Simple, Optimized, GpuTiled };

/// new MatMulApp(new CPULoop(new SimpleOuterBody(calc)))
Value makeCpuApp(Interp& in, Calc calc);

/// new MatMulApp(new GPUThread(new SimpleOuterBody(new GpuTiledCalculator(tile))))
Value makeGpuApp(Interp& in, int tile = 8);

/// new MatMulApp(new MPIThread(new FoxAlgorithm(calc), q))
Value makeMpiFoxApp(Interp& in, Calc calc, int q);

/// new MatMulApp(new MPIThread(new FoxAlgorithm(GpuTiled)), q) — GPU+MPI.
Value makeMpiFoxGpuApp(Interp& in, int q, int tile = 8);

/// Host-side reference: C = A*B with the same rng fill; returns checksum(C).
/// `n` is the GLOBAL dimension.
double referenceMatMulChecksum(int n, int seedA, int seedB);

} // namespace wj::matmul
