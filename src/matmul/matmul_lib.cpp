#include "matmul/matmul_lib.h"

#include <vector>

#include "runtime/rng_hash.h"
#include "support/diagnostics.h"

namespace wj::matmul {

using namespace wj::dsl;

namespace {

Type f32() { return Type::f32(); }
Type f32arr() { return Type::array(Type::f32()); }
Type i32() { return Type::i32(); }
Type f64() { return Type::f64(); }
Type mtx() { return Type::cls("Matrix"); }

void buildMatrix(ProgramBuilder& pb) {
    {
        auto& c = pb.cls("Matrix").interfaceClass();
        c.method("get", f32()).param("i", i32()).param("j", i32()).abstractMethod();
        c.method("set", Type::voidTy()).param("i", i32()).param("j", i32()).param("v", f32())
            .abstractMethod();
        c.method("rows", i32()).abstractMethod();
        c.method("cols", i32()).abstractMethod();
        c.method("raw", f32arr()).abstractMethod();
    }
    {
        auto& c = pb.cls("SimpleMatrix").implements("Matrix").finalClass();
        c.field("data", f32arr()).field("nr", i32()).field("nc", i32());
        c.ctor()
            .param("nr_", i32())
            .param("nc_", i32())
            .body(blk(setSelf("nr", lv("nr_")), setSelf("nc", lv("nc_")),
                      setSelf("data", newArr(f32(), mul(lv("nr_"), lv("nc_"))))));
        c.method("get", f32())
            .param("i", i32())
            .param("j", i32())
            .body(blk(ret(aget(selff("data"), add(mul(lv("i"), selff("nc")), lv("j"))))));
        c.method("set", Type::voidTy())
            .param("i", i32())
            .param("j", i32())
            .param("v", f32())
            .body(blk(aset(selff("data"), add(mul(lv("i"), selff("nc")), lv("j")), lv("v")),
                      retVoid()));
        c.method("rows", i32()).body(blk(ret(selff("nr"))));
        c.method("cols", i32()).body(blk(ret(selff("nc"))));
        c.method("raw", f32arr()).body(blk(ret(selff("data"))));
        // Fill from GLOBAL element coordinates so a q x q decomposition of
        // the same seed reproduces the q=1 matrix exactly.
        c.method("fillGlobal", Type::voidTy())
            .param("seed", i32())
            .param("rowOff", i32())
            .param("colOff", i32())
            .param("stride", i32())
            .body(blk(forRange("i", ci(0), selff("nr"),
                      blk(forRange("j", ci(0), selff("nc"),
                      blk(aset(selff("data"), add(mul(lv("i"), selff("nc")), lv("j")),
                               intr(Intrinsic::RngHashF32, lv("seed"),
                                    add(mul(add(lv("rowOff"), lv("i")), lv("stride")),
                                        add(lv("colOff"), lv("j"))))))))),
                      retVoid()));
        c.method("copyFrom", Type::voidTy())
            .param("src", mtx())
            .body(blk(decl("s", f32arr(), call(lv("src"), "raw")),
                      forRange("i", ci(0), alen(selff("data")),
                               blk(aset(selff("data"), lv("i"), aget(lv("s"), lv("i"))))),
                      retVoid()));
        c.method("checksum", f64())
            .body(blk(decl("sum", f64(), cd(0.0)),
                      forRange("i", ci(0), alen(selff("data")),
                               blk(assign("sum", add(lv("sum"),
                                                     cast(f64(), aget(selff("data"), lv("i"))))))),
                      ret(lv("sum"))));
    }
}

void buildCalculators(ProgramBuilder& pb) {
    pb.cls("Calculator").interfaceClass()
        .method("multiplyAcc", Type::voidTy())
        .param("a", mtx()).param("b", mtx()).param("c", mtx())
        .abstractMethod();

    // Naive ijk through the Matrix interface — every element access is a
    // dynamic dispatch until the JIT devirtualizes it.
    {
        auto& c = pb.cls("SimpleCalculator").implements("Calculator").finalClass();
        c.method("multiplyAcc", Type::voidTy())
            .param("a", mtx()).param("b", mtx()).param("c", mtx())
            .body(blk(decl("n", i32(), call(lv("a"), "rows")),
                      forRange("i", ci(0), lv("n"),
                      blk(forRange("j", ci(0), lv("n"),
                      blk(forRange("k", ci(0), lv("n"),
                      blk(exprS(call(lv("c"), "set", lv("i"), lv("j"),
                                     add(call(lv("c"), "get", lv("i"), lv("j")),
                                         mul(call(lv("a"), "get", lv("i"), lv("k")),
                                             call(lv("b"), "get", lv("k"), lv("j")))))))))))),
                      retVoid()));
    }

    // ikj over the raw arrays (the paper's OptimizedCalculator).
    {
        auto& c = pb.cls("OptimizedCalculator").implements("Calculator").finalClass();
        c.method("multiplyAcc", Type::voidTy())
            .param("a", mtx()).param("b", mtx()).param("c", mtx())
            .body(blk(decl("n", i32(), call(lv("a"), "rows")),
                      decl("ar", f32arr(), call(lv("a"), "raw")),
                      decl("br", f32arr(), call(lv("b"), "raw")),
                      decl("cr", f32arr(), call(lv("c"), "raw")),
                      forRange("i", ci(0), lv("n"),
                      blk(forRange("k", ci(0), lv("n"),
                      blk(decl("av", f32(), aget(lv("ar"), add(mul(lv("i"), lv("n")), lv("k")))),
                          forRange("j", ci(0), lv("n"),
                          blk(aset(lv("cr"), add(mul(lv("i"), lv("n")), lv("j")),
                                   add(aget(lv("cr"), add(mul(lv("i"), lv("n")), lv("j"))),
                                       mul(lv("av"),
                                           aget(lv("br"), add(mul(lv("k"), lv("n")), lv("j")))))))))))),
                      retVoid()));
    }

    // Shared-memory tiled GPU multiply (@Shared + syncthreads: the fibered
    // GpuSim path). Requires n % tile == 0 and tile*tile <= 1024.
    {
        auto& c = pb.cls("GpuTiledCalculator").implements("Calculator").finalClass();
        c.field("tile", i32());
        c.ctor().param("tile_", i32()).body(blk(setSelf("tile", lv("tile_"))));

        auto& k = c.method("mmKernel", Type::voidTy()).global();
        k.param("conf", Type::cls(Program::cudaConfigClass()));
        k.param("a", f32arr()).param("b", f32arr()).param("cM", f32arr()).param("n", i32());
        k.body(blk(
            decl("tile", i32(), selff("tile")),
            decl("sh", f32arr(), intr(Intrinsic::CudaSharedF32)),
            decl("tx", i32(), tidxX()),
            decl("ty", i32(), tidxY()),
            decl("rowIdx", i32(), add(mul(bidxY(), lv("tile")), lv("ty"))),
            decl("colIdx", i32(), add(mul(bidxX(), lv("tile")), lv("tx"))),
            decl("acc", f32(), cf(0.0f)),
            forRange("m", ci(0), divE(lv("n"), lv("tile")), blk(
                // Stage one A tile and one B tile into shared memory.
                aset(lv("sh"), add(mul(lv("ty"), lv("tile")), lv("tx")),
                     aget(lv("a"), add(mul(lv("rowIdx"), lv("n")),
                                       add(mul(lv("m"), lv("tile")), lv("tx"))))),
                aset(lv("sh"), add(mul(lv("tile"), lv("tile")),
                                   add(mul(lv("ty"), lv("tile")), lv("tx"))),
                     aget(lv("b"), add(mul(add(mul(lv("m"), lv("tile")), lv("ty")), lv("n")),
                                       lv("colIdx")))),
                exprS(intr(Intrinsic::CudaSyncThreads)),
                forRange("k2", ci(0), lv("tile"),
                blk(assign("acc", add(lv("acc"),
                                      mul(aget(lv("sh"), add(mul(lv("ty"), lv("tile")), lv("k2"))),
                                          aget(lv("sh"),
                                               add(mul(lv("tile"), lv("tile")),
                                                   add(mul(lv("k2"), lv("tile")), lv("tx"))))))))),
                exprS(intr(Intrinsic::CudaSyncThreads)))),
            aset(lv("cM"), add(mul(lv("rowIdx"), lv("n")), lv("colIdx")),
                 add(aget(lv("cM"), add(mul(lv("rowIdx"), lv("n")), lv("colIdx"))), lv("acc"))),
            retVoid()));

        c.method("multiplyAcc", Type::voidTy())
            .param("a", mtx()).param("b", mtx()).param("c", mtx())
            .body(blk(
                decl("n", i32(), call(lv("a"), "rows")),
                decl("sz", i32(), mul(lv("n"), lv("n"))),
                decl("tile", i32(), selff("tile")),
                decl("da", f32arr(), intr(Intrinsic::GpuMallocF32, lv("sz"))),
                decl("db", f32arr(), intr(Intrinsic::GpuMallocF32, lv("sz"))),
                decl("dc", f32arr(), intr(Intrinsic::GpuMallocF32, lv("sz"))),
                exprS(intr(Intrinsic::GpuMemcpyH2DF32, lv("da"), call(lv("a"), "raw"), lv("sz"))),
                exprS(intr(Intrinsic::GpuMemcpyH2DF32, lv("db"), call(lv("b"), "raw"), lv("sz"))),
                exprS(intr(Intrinsic::GpuMemcpyH2DF32, lv("dc"), call(lv("c"), "raw"), lv("sz"))),
                decl("conf", Type::cls(Program::cudaConfigClass()),
                     cudaConfig(dim3of(divE(lv("n"), lv("tile")), divE(lv("n"), lv("tile"))),
                                dim3of(lv("tile"), lv("tile")),
                                mul(mul(ci(8), lv("tile")), lv("tile")))),
                exprS(call(self(), "mmKernel", lv("conf"), lv("da"), lv("db"), lv("dc"), lv("n"))),
                exprS(intr(Intrinsic::GpuMemcpyD2HF32, call(lv("c"), "raw"), lv("dc"), lv("sz"))),
                exprS(intr(Intrinsic::GpuFree, lv("da"))),
                exprS(intr(Intrinsic::GpuFree, lv("db"))),
                exprS(intr(Intrinsic::GpuFree, lv("dc"))),
                retVoid()));
    }
}

void buildThreads(ProgramBuilder& pb) {
    {
        auto& c = pb.cls("OuterThread").interfaceClass();
        c.method("start", Type::voidTy()).param("a", mtx()).param("b", mtx()).param("c", mtx())
            .abstractMethod();
        c.method("rank", i32()).abstractMethod();
        c.method("gridSide", i32()).abstractMethod();
    }
    pb.cls("OuterThreadBody").interfaceClass()
        .method("run", Type::voidTy())
        .param("thread", Type::cls("OuterThread"))
        .param("a", mtx()).param("b", mtx()).param("c", mtx())
        .abstractMethod();

    // Listing 6: MPIThread holds an OuterThreadBody and hands `this` back
    // into run() — the mutual type reference templates could not express.
    {
        auto& c = pb.cls("MPIThread").implements("OuterThread").finalClass();
        c.field("body", Type::cls("OuterThreadBody"));
        c.field("q", i32());
        c.ctor()
            .param("body_", Type::cls("OuterThreadBody"))
            .param("q_", i32())
            .body(blk(setSelf("body", lv("body_")), setSelf("q", lv("q_"))));
        c.method("start", Type::voidTy())
            .param("a", mtx()).param("b", mtx()).param("c", mtx())
            .body(blk(exprS(call(selff("body"), "run", self(), lv("a"), lv("b"), lv("c"))),
                      retVoid()));
        c.method("rank", i32()).body(blk(ret(mpiRank())));
        c.method("gridSide", i32()).body(blk(ret(selff("q"))));
    }
    for (const char* name : {"CPULoop", "GPUThread"}) {
        auto& c = pb.cls(name).implements("OuterThread").finalClass();
        c.field("body", Type::cls("OuterThreadBody"));
        c.ctor()
            .param("body_", Type::cls("OuterThreadBody"))
            .body(blk(setSelf("body", lv("body_"))));
        c.method("start", Type::voidTy())
            .param("a", mtx()).param("b", mtx()).param("c", mtx())
            .body(blk(exprS(call(selff("body"), "run", self(), lv("a"), lv("b"), lv("c"))),
                      retVoid()));
        c.method("rank", i32()).body(blk(ret(ci(0))));
        c.method("gridSide", i32()).body(blk(ret(ci(1))));
    }
}

void buildBodies(ProgramBuilder& pb) {
    {
        auto& c = pb.cls("SimpleOuterBody").implements("OuterThreadBody").finalClass();
        c.field("calc", Type::cls("Calculator"));
        c.ctor().param("calc_", Type::cls("Calculator")).body(blk(setSelf("calc", lv("calc_"))));
        c.method("run", Type::voidTy())
            .param("thread", Type::cls("OuterThread"))
            .param("a", mtx()).param("b", mtx()).param("c", mtx())
            .body(blk(exprS(call(selff("calc"), "multiplyAcc", lv("a"), lv("b"), lv("c"))),
                      retVoid()));
    }
    {
        auto& c = pb.cls("FoxAlgorithm").implements("OuterThreadBody").finalClass();
        c.field("calc", Type::cls("Calculator"));
        c.ctor().param("calc_", Type::cls("Calculator")).body(blk(setSelf("calc", lv("calc_"))));
        c.method("run", Type::voidTy())
            .param("thread", Type::cls("OuterThread"))
            .param("a", mtx()).param("b", mtx()).param("c", mtx())
            .body(blk(
                decl("q", i32(), call(lv("thread"), "gridSide")),
                decl("rank", i32(), call(lv("thread"), "rank")),
                decl("row", i32(), divE(lv("rank"), lv("q"))),
                decl("col", i32(), rem(lv("rank"), lv("q"))),
                decl("nb", i32(), call(lv("a"), "rows")),
                decl("sz", i32(), mul(lv("nb"), lv("nb"))),
                decl("atmp", Type::cls("SimpleMatrix"),
                     newObj("SimpleMatrix", lv("nb"), lv("nb"))),
                decl("btmp", f32arr(), newArr(f32(), lv("sz"))),
                // Checkpoint/restart: the per-stage state is the C accumulator
                // (slot 0) and the shifting B block (slot 1); A is rebroadcast
                // from the caller's immutable block each stage. No-ops unless
                // the host armed the CheckpointStore.
                decl("start", i32(),
                     intr(Intrinsic::CkptLoadF32, call(lv("c"), "raw"), lv("sz"), ci(0))),
                ifs(lt(lv("start"), ci(0)),
                    blk(assign("start", ci(0))),
                    blk(decl("bIter", i32(),
                             intr(Intrinsic::CkptLoadF32, call(lv("b"), "raw"),
                                  lv("sz"), ci(1))))),
                forRange("s", lv("start"), lv("q"), blk(
                    decl("root", i32(), rem(add(lv("row"), lv("s")), lv("q"))),
                    ifs(eq(lv("col"), lv("root")),
                        blk(exprS(call(lv("atmp"), "copyFrom", lv("a"))))),
                    ifs(gt(lv("q"), ci(1)), blk(
                        ifs(eq(lv("col"), lv("root")),
                            // Row broadcast of the A block from `root`.
                            blk(forRange("cc", ci(0), lv("q"),
                                blk(ifs(ne(lv("cc"), lv("col")),
                                        blk(exprS(intr(Intrinsic::MpiSendF32,
                                                       call(lv("atmp"), "raw"), ci(0), lv("sz"),
                                                       add(mul(lv("row"), lv("q")), lv("cc")),
                                                       ci(31)))))))),
                            blk(exprS(intr(Intrinsic::MpiRecvF32, call(lv("atmp"), "raw"),
                                           ci(0), lv("sz"),
                                           add(mul(lv("row"), lv("q")), lv("root")), ci(31))))))),
                    exprS(call(selff("calc"), "multiplyAcc", lv("atmp"), lv("b"), lv("c"))),
                    ifs(gt(lv("q"), ci(1)), blk(
                        // Shift B one block upward along the column.
                        decl("upRow", i32(), rem(add(sub(lv("row"), ci(1)), lv("q")), lv("q"))),
                        decl("downRow", i32(), rem(add(lv("row"), ci(1)), lv("q"))),
                        exprS(intr(Intrinsic::MpiSendRecvF32, call(lv("b"), "raw"), ci(0),
                                   lv("sz"), add(mul(lv("upRow"), lv("q")), lv("col")),
                                   lv("btmp"), ci(0),
                                   add(mul(lv("downRow"), lv("q")), lv("col")), ci(32))),
                        decl("braw", f32arr(), call(lv("b"), "raw")),
                        forRange("i2", ci(0), lv("sz"),
                                 blk(aset(lv("braw"), lv("i2"), aget(lv("btmp"), lv("i2"))))))),
                    exprS(intr(Intrinsic::CkptSaveF32, call(lv("c"), "raw"), lv("sz"),
                               ci(0), add(lv("s"), ci(1)))),
                    exprS(intr(Intrinsic::CkptSaveF32, call(lv("b"), "raw"), lv("sz"),
                               ci(1), add(lv("s"), ci(1)))))),
                exprS(intr(Intrinsic::FreeArray, lv("btmp"))),
                retVoid()));
    }
}

void buildApp(ProgramBuilder& pb) {
    auto& c = pb.cls("MatMulApp");
    c.field("thread", Type::cls("OuterThread"));
    c.ctor().param("thread_", Type::cls("OuterThread")).body(blk(setSelf("thread", lv("thread_"))));
    c.method("run", f64())
        .param("nLocal", i32())
        .param("seed", i32())
        .body(blk(
            decl("q", i32(), call(selff("thread"), "gridSide")),
            decl("rank", i32(), call(selff("thread"), "rank")),
            decl("row", i32(), divE(lv("rank"), lv("q"))),
            decl("col", i32(), rem(lv("rank"), lv("q"))),
            decl("stride", i32(), mul(lv("q"), lv("nLocal"))),
            decl("a", Type::cls("SimpleMatrix"), newObj("SimpleMatrix", lv("nLocal"), lv("nLocal"))),
            decl("b", Type::cls("SimpleMatrix"), newObj("SimpleMatrix", lv("nLocal"), lv("nLocal"))),
            decl("cM", Type::cls("SimpleMatrix"), newObj("SimpleMatrix", lv("nLocal"), lv("nLocal"))),
            exprS(call(lv("a"), "fillGlobal", lv("seed"), mul(lv("row"), lv("nLocal")),
                       mul(lv("col"), lv("nLocal")), lv("stride"))),
            exprS(call(lv("b"), "fillGlobal", add(lv("seed"), ci(1)), mul(lv("row"), lv("nLocal")),
                       mul(lv("col"), lv("nLocal")), lv("stride"))),
            exprS(call(selff("thread"), "start", lv("a"), lv("b"), lv("cM"))),
            decl("local", f64(), call(lv("cM"), "checksum")),
            decl("sum", f64(), lv("local")),
            ifs(gt(mpiSize(), ci(1)),
                blk(assign("sum", intr(Intrinsic::MpiAllreduceSumF64, lv("local"))))),
            ret(lv("sum"))));
}

} // namespace

void registerLibrary(ProgramBuilder& pb) {
    buildMatrix(pb);
    buildCalculators(pb);
    buildThreads(pb);
    buildBodies(pb);
    buildApp(pb);
}

Program buildProgram() {
    ProgramBuilder pb;
    registerLibrary(pb);
    return pb.build();
}

// -------------------------------------------------------------- composition

namespace {

Value makeCalc(Interp& in, Calc calc, int tile) {
    switch (calc) {
    case Calc::Simple: return in.instantiate("SimpleCalculator", {});
    case Calc::Optimized: return in.instantiate("OptimizedCalculator", {});
    case Calc::GpuTiled: return in.instantiate("GpuTiledCalculator", {Value::ofI32(tile)});
    }
    throw UsageError("bad Calc");
}

} // namespace

Value makeCpuApp(Interp& in, Calc calc) {
    Value body = in.instantiate("SimpleOuterBody", {makeCalc(in, calc, 8)});
    Value thread = in.instantiate("CPULoop", {body});
    return in.instantiate("MatMulApp", {thread});
}

Value makeGpuApp(Interp& in, int tile) {
    Value body = in.instantiate("SimpleOuterBody", {makeCalc(in, Calc::GpuTiled, tile)});
    Value thread = in.instantiate("GPUThread", {body});
    return in.instantiate("MatMulApp", {thread});
}

Value makeMpiFoxApp(Interp& in, Calc calc, int q) {
    Value body = in.instantiate("FoxAlgorithm", {makeCalc(in, calc, 8)});
    Value thread = in.instantiate("MPIThread", {body, Value::ofI32(q)});
    return in.instantiate("MatMulApp", {thread});
}

Value makeMpiFoxGpuApp(Interp& in, int q, int tile) {
    Value body = in.instantiate("FoxAlgorithm", {makeCalc(in, Calc::GpuTiled, tile)});
    Value thread = in.instantiate("MPIThread", {body, Value::ofI32(q)});
    return in.instantiate("MatMulApp", {thread});
}

// --------------------------------------------------------------- reference

double referenceMatMulChecksum(int n, int seedA, int seedB) {
    const size_t nn = static_cast<size_t>(n);
    std::vector<float> a(nn * nn), b(nn * nn), c(nn * nn, 0.0f);
    for (size_t i = 0; i < nn * nn; ++i) {
        a[i] = wj_rng_hash_f32(seedA, static_cast<int32_t>(i));
        b[i] = wj_rng_hash_f32(seedB, static_cast<int32_t>(i));
    }
    for (size_t i = 0; i < nn; ++i)
        for (size_t k = 0; k < nn; ++k) {
            const float av = a[i * nn + k];
            for (size_t j = 0; j < nn; ++j) c[i * nn + j] += av * b[k * nn + j];
        }
    double sum = 0;
    for (float v : c) sum += static_cast<double>(v);
    return sum;
}

} // namespace wj::matmul
