// proveLayout — the object-inlining AoS→SoA data-layout pass (seventh
// analysis pass; ROADMAP item 1, the paper's abstraction-penalty claim
// pushed one level further).
//
// For every class used as an array element anywhere in the program, decide
// whether an array `C[]` can be legally stored as parallel per-field arrays
// (structure-of-arrays) instead of an array of structs:
//
//   * structure — every instance field of C is primitive, C is a leaf
//     (no subclasses: the element type must be exact) and not an interface;
//   * access discipline — every `a[i]` whose element type is C is consumed
//     IMMEDIATELY by a field read (`a[i].f`). An element that is bound to a
//     local, passed as an argument, returned, cast, stored into another
//     array slot or field, compared with ==/!=, or used as a call receiver
//     has escaped: its address (or its whole-struct identity) becomes
//     observable, which a split layout cannot preserve;
//   * stores — every `a[i] = v` into a `C[]` must store a freshly
//     constructed `new C(...)`; a whole-object copy of an existing element
//     would observe struct identity.
//
// Verdicts join across every method and call context (one bad use anywhere
// boxes the class — the layout of an allocation site must be a whole-
// program property because arrays flow freely between methods). The entry
// driver additionally boxes classes whose arrays cross the jit() boundary
// (invoke() marshals AoS payloads); the lint driver has no boundary, so a
// clean class is CondInline: inline-eligible provided no boundary crossing.
//
// The translator consumes Inline verdicts under WJ_SOA=1 (see
// jit/codegen.cpp); the vector prover consumes Inline/CondInline to flip
// gather-bound element loops to unit-stride Vectorizable.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "ir/program.h"
#include "ir/type.h"

namespace wj::analysis {

enum class LayoutVerdict {
    Inline,      ///< all uses field-path-only; SoA split is observationally safe
    CondInline,  ///< lint verdict: safe provided no C[] crosses the jit() boundary
    Boxed,       ///< an escaping / identity-observing use exists — `reason` names it
};

/// One primitive field of an SoA-split class, with its packed region offset:
/// field k's lane array starts at data + len * pre bytes. Fields are ordered
/// by descending element size (then declaration order), so every region is
/// naturally aligned for any len.
struct SoaField {
    std::string name;
    Prim prim = Prim::F32;
    int32_t pre = 0;  ///< packed byte offset factor: region = data + len*pre
};

struct ClassLayout {
    LayoutVerdict verdict = LayoutVerdict::Boxed;
    std::string reason;
    std::vector<SoaField> fields;  ///< empty unless Inline/CondInline
    int32_t elemSize = 0;          ///< packed per-element byte count (sum of prim sizes)
};

/// Runs the pass over every @WootinJ method and constructor. `boundary`
/// names classes whose arrays cross the jit() boundary in the analyzed
/// entry's receiver graph or arguments (always Boxed); pass an empty set
/// from lint. `lint` selects the CondInline presentation for clean classes.
/// The returned map has one entry per class used as an array element.
std::map<std::string, ClassLayout> proveLayout(const Program& prog,
                                               const std::set<std::string>& boundary,
                                               bool lint);

} // namespace wj::analysis
