// The static call graph over WJ method bodies.
//
// One shared implementation serves two clients: the rule verifier's
// recursion check (Section 3.2 rule 6 — the graph must be acyclic over
// @WootinJ code) and the effect analysis, which propagates read/write/comm
// summaries bottom-up over the same edges. Virtual calls are resolved
// conservatively: every concrete subtype's implementation is a possible
// callee.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ir/program.h"

namespace wj::analysis {

struct CallGraph {
    /// Adjacency: "OwnerClass.method" -> possible callee bodies, where the
    /// owner is the class DECLARING the executing body (so one node per
    /// body, however many receivers dispatch into it).
    std::map<std::string, std::set<std::string>> edges;
};

/// Builds the call graph. `wootinjOnly` restricts roots to @WootinJ classes
/// (the rule checker's view); the effect analysis passes false and covers
/// every method body in the program.
CallGraph buildCallGraph(const Program& prog, bool wootinjOnly);

/// The possible executing bodies of a virtual call `recv.method(...)` where
/// recv's static class is `className`: one (owner, method) per concrete
/// subtype whose resolution provides a non-abstract body.
std::vector<std::pair<const ClassDecl*, const Method*>>
resolveVirtual(const Program& prog, const std::string& className, const std::string& method);

} // namespace wj::analysis
