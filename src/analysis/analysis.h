// The WJ static-analysis passes built on the dataflow engine (cfg.h /
// dataflow.h / interval.h):
//
//   * definite assignment — every read of a local is dominated by a store
//     (DeclStmt.init may be null since the IR grew uninitialized locals);
//     runs forward over the CFG. A backward liveness pass piggybacks to
//     warn about dead stores.
//   * interval/shape bounds analysis — abstract interpretation of method
//     bodies over integer intervals plus array length/alias facts,
//     interprocedural by context-sensitive inlining (memoized; rule 6
//     keeps the call graph acyclic). Classifies every ArrayGet/ArraySet
//     as proven-safe, proven-out-of-bounds (hard error), or unknown. The
//     translator consumes the per-node classification to elide bounds
//     guards (WJ_BOUNDS=1 guards only unproven accesses).
//   * communication race check — structural walk using the effect
//     summaries (effects.h) to flag writes that can overlap a posted
//     nonblocking receive of the same buffer region.
//
// Two drivers: lintProgram() analyzes every method with unknown
// parameters ("wjc lint" — only *proven* defects are errors), and
// analyzeEntry() analyzes one jit() call with the concrete receiver
// graph, where field constants and exact array lengths make most
// accesses provable.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "analysis/layout.h"
#include "interp/value.h"
#include "ir/program.h"
#include "support/diagnostics.h"

namespace wj::analysis {

enum class Safety {
    Safe,         ///< in bounds for every execution reaching the access
    Unknown,      ///< not provable either way — needs a runtime guard
    OutOfBounds,  ///< out of bounds whenever a reaching execution gets there
};

/// Loop-parallelization verdict for one counted For loop (see the
/// dependence prover in analysis.cpp). Parallel: iterations provably
/// independent for every aliasing. CondParallel: independent provided the
/// listed local array pairs refer to distinct wj_array objects — the
/// translator emits a pointer-inequality runtime guard and keeps a serial
/// fallback. ParallelReduce: independent except for `acc = acc op f(i)`
/// chains over recognized reduction operators; the translator outlines the
/// body with per-chunk partial accumulators and combines the partials in
/// fixed chunk-index order (deterministic at every WJ_THREADS). Serial: a
/// loop-carried dependence (or an effect that must stay on the rank's main
/// thread) was found or could not be excluded.
enum class ParVerdict { Parallel, CondParallel, ParallelReduce, Serial };

/// Recognized reduction operator over an accumulator local.
enum class RedOp {
    Add,  ///< acc = acc + f(i)   (either operand order)
    Mul,  ///< acc = acc * f(i)   (either operand order)
    Min,  ///< if (f(i) cmp acc) acc = f(i);  selecting the smaller value
    Max,  ///< same shape selecting the larger value
};

/// One accumulator of a ParallelReduce loop. The translator re-derives the
/// update expressions from the loop body; this record carries what it needs
/// to pick the identity element and to replay the source's exact combine
/// structure (operand order / comparison op), so single-update chunks stay
/// bitwise-faithful to the serial fold.
struct Reduction {
    std::string var;          ///< accumulator local, declared outside the loop
    Prim prim = Prim::F64;    ///< F32, F64, or I64
    RedOp op = RedOp::Add;
    bool accOnLeft = true;    ///< Add/Mul: acc is the left operand of the binop
                              ///< Min/Max: acc is the left operand of the compare
    BinOp cmp = BinOp::Lt;    ///< Min/Max only: the comparison as written
};

struct LoopParallel {
    ParVerdict verdict = ParVerdict::Serial;
    std::string reason;  ///< human-readable justification ("wjc lint" report)
    /// Local-variable name pairs that must be pointer-distinct for the
    /// parallel version to be valid (CondParallel only).
    std::vector<std::pair<std::string, std::string>> neqPairs;
    /// Accumulators, in first-update order (ParallelReduce only).
    std::vector<Reduction> reductions;
};

/// SIMD-legality verdict for one innermost counted loop (the `proveVectors`
/// pass). Vectorizable: every array reference is unit-stride (or loop-
/// invariant read), the body is lane-independent for every aliasing, and
/// the only cross-lane scalar dependences are recognized reduction
/// accumulators. CondVectorizable: lane-independent provided the listed
/// array pairs occupy disjoint memory ranges — the translator emits a
/// wjrt_ranges_disjoint runtime guard with the scalar loop as the else
/// branch. ScalarOnly: `reason` names the offending access or statement.
enum class VecVerdict { Vectorizable, CondVectorizable, ScalarOnly };

struct LoopVector {
    VecVerdict verdict = VecVerdict::ScalarOnly;
    std::string reason;  ///< justification ("wjc lint" vectorization table)
    /// Local array pairs whose data ranges must be disjoint for the SIMD
    /// version to be valid (CondVectorizable only). Wider than neqPairs:
    /// restrict-qualified pointer hoisting needs every written array to be
    /// disjoint from every other array it may alias, colliding or not.
    std::vector<std::pair<std::string, std::string>> overlapPairs;
    /// Reduction accumulators crossing lanes (same records as LoopParallel).
    std::vector<Reduction> reductions;
    /// True when every reduction op is exact under reassociation (min/max
    /// of any type; i64 +/* which wrap mod 2^64). The translator only emits
    /// `reduction(...)` clauses when exact — f32/f64 +/* stay on the
    /// bitwise chunk-serial path.
    bool exactReductions = true;
    /// Element classes this verdict depends on being laid out SoA (the
    /// proveLayout pass): the loop reads/writes `C[]` elements through
    /// field paths, which is unit-stride only after the AoS→SoA split.
    /// Non-empty only when the verdict was issued under WJ_SOA=1; without
    /// it the loop reports ScalarOnly with a "vectorizable under --soa"
    /// reason. Joined across contexts by set union.
    std::vector<std::string> soaClasses;

    bool needsSoa() const { return !soaClasses.empty(); }
};

struct Result {
    std::vector<Violation> errors;    ///< uninit reads, proven OOB, halo races
    std::vector<Violation> warnings;  ///< dead stores, receives left in flight
    /// Per-access classification, keyed by the ArrayGetExpr / ArraySetStmt
    /// node address; accesses never reached by the analysis are absent
    /// (treated as Unknown by consumers). Joined across call contexts: an
    /// access is Safe only if it is safe in every analyzed context.
    std::map<const void*, Safety> accessSafety;
    int safeAccesses = 0;
    int unknownAccesses = 0;
    /// Parallelization verdicts keyed by the ForStmt node address, joined
    /// across call contexts (Serial in any context poisons the loop; the
    /// guard-pair sets union). Only outermost counted loops of candidate
    /// shape appear; absent loops are serial.
    std::map<const void*, LoopParallel> loopParallel;
    /// One line per candidate loop explaining its verdict ("wjc lint
    /// --parallel" report). Filled by both drivers.
    std::vector<std::string> parallelReport;
    /// SIMD verdicts keyed by the ForStmt node address, joined across call
    /// contexts (ScalarOnly poisons; overlap-pair sets union). Only
    /// innermost counted loops of candidate shape appear; absent loops are
    /// scalar.
    std::map<const void*, LoopVector> loopVector;
    /// One line per innermost loop explaining its SIMD verdict (the
    /// "wjc lint" vectorization table). Filled by both drivers.
    std::vector<std::string> vectorReport;
    /// AoS→SoA layout verdicts from the proveLayout pass, one entry per
    /// class used as an array element (see analysis/layout.h). The entry
    /// driver boxes classes whose arrays cross the jit() boundary; lint
    /// reports clean classes CondInline. The translator consumes Inline
    /// verdicts under WJ_SOA=1.
    std::map<std::string, ClassLayout> layoutClasses;
    /// One line per element class explaining its layout verdict (the
    /// "wjc lint" layout table). Filled by both drivers.
    std::vector<std::string> layoutReport;

    bool clean() const { return errors.empty(); }
    /// Throws AnalysisError if any error-level finding was recorded.
    void require() const;
};

/// Definite assignment (+ dead-store warnings appended to `warnings` when
/// non-null) for one method body. Cheap enough for the interpreter to run
/// memoized on first invoke of each method.
std::vector<Violation> checkDefiniteAssignment(const Program& prog, const ClassDecl& cls,
                                               const Method& m,
                                               std::vector<Violation>* warnings = nullptr);

/// Whole-program lint: every pass over every concrete method, with unknown
/// receiver/arguments. Distinct array parameters are assumed non-aliasing
/// (documented lint assumption); only proven defects become errors.
Result lintProgram(const Program& prog);

/// Analysis of one jit() entry: `method` invoked on the concrete composed
/// `receiver` with `args`, covering everything reachable. Field primitives
/// and array lengths from the receiver graph are treated as constants —
/// exactly the specialization contract the translator itself uses.
Result analyzeEntry(const Program& prog, const Value& receiver, const std::string& method,
                    const std::vector<Value>& args);

} // namespace wj::analysis
