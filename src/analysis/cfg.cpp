#include "analysis/cfg.h"

#include <algorithm>

namespace wj::analysis {

namespace {

/// A dangling edge waiting for its target node: the CFG builder threads a
/// set of these through the stmt tree (think "where can control be right
/// now, and under which branch assumption did it get there").
struct Hang {
    int from;
    const Expr* guard;
    bool sense;
};

class Builder {
public:
    Cfg build(const Method& m) {
        cfg_.nodes.push_back(node(CfgNode::Kind::Entry));
        cfg_.nodes.push_back(node(CfgNode::Kind::Exit));
        auto out = genBlock(m.body, {{cfg_.entry, nullptr, true}});
        attach(out, cfg_.exit, /*back=*/false);
        return std::move(cfg_);
    }

private:
    static CfgNode node(CfgNode::Kind k) {
        CfgNode n;
        n.kind = k;
        return n;
    }

    int addNode(CfgNode n) {
        cfg_.nodes.push_back(std::move(n));
        return static_cast<int>(cfg_.nodes.size()) - 1;
    }

    void addEdge(const Hang& h, int to, bool back) {
        const int id = static_cast<int>(cfg_.edges.size());
        cfg_.edges.push_back({h.from, to, h.guard, h.sense, back});
        cfg_.nodes[h.from].succ.push_back(id);
        cfg_.nodes[to].pred.push_back(id);
    }

    void attach(const std::vector<Hang>& hs, int to, bool back) {
        for (const Hang& h : hs) addEdge(h, to, back);
    }

    std::vector<Hang> genBlock(const Block& b, std::vector<Hang> in) {
        for (const auto& st : b) in = genStmt(*st, std::move(in));
        return in;
    }

    std::vector<Hang> genStmt(const Stmt& s, std::vector<Hang> in) {
        switch (s.kind) {
        case StmtKind::If: {
            const auto& n = as<IfStmt>(s);
            CfgNode bn = node(CfgNode::Kind::Branch);
            bn.cond = n.cond.get();
            const int br = addNode(std::move(bn));
            attach(in, br, false);
            auto thenOut = genBlock(n.thenB, {{br, n.cond.get(), true}});
            auto elseOut = genBlock(n.elseB, {{br, n.cond.get(), false}});
            thenOut.insert(thenOut.end(), elseOut.begin(), elseOut.end());
            return thenOut;
        }
        case StmtKind::While: {
            const auto& n = as<WhileStmt>(s);
            CfgNode bn = node(CfgNode::Kind::Branch);
            bn.cond = n.cond.get();
            const int br = addNode(std::move(bn));
            attach(in, br, false);
            auto bodyOut = genBlock(n.body, {{br, n.cond.get(), true}});
            attach(bodyOut, br, /*back=*/true);
            return {{br, n.cond.get(), false}};
        }
        case StmtKind::For: {
            const auto& n = as<ForStmt>(s);
            CfgNode init = node(CfgNode::Kind::ForInit);
            init.forS = &n;
            const int fi = addNode(std::move(init));
            attach(in, fi, false);
            CfgNode bn = node(CfgNode::Kind::Branch);
            bn.cond = n.cond.get();
            const int br = addNode(std::move(bn));
            addEdge({fi, nullptr, true}, br, false);
            auto bodyOut = genBlock(n.body, {{br, n.cond.get(), true}});
            CfgNode step = node(CfgNode::Kind::ForStep);
            step.forS = &n;
            const int fs = addNode(std::move(step));
            attach(bodyOut, fs, false);
            addEdge({fs, nullptr, true}, br, /*back=*/true);
            return {{br, n.cond.get(), false}};
        }
        case StmtKind::Return: {
            CfgNode rn = node(CfgNode::Kind::Stmt);
            rn.stmt = &s;
            const int r = addNode(std::move(rn));
            attach(in, r, false);
            addEdge({r, nullptr, true}, cfg_.exit, false);
            return {};  // nothing falls through a return
        }
        default: {
            CfgNode sn = node(CfgNode::Kind::Stmt);
            sn.stmt = &s;
            const int id = addNode(std::move(sn));
            attach(in, id, false);
            return {{id, nullptr, true}};
        }
        }
    }

    Cfg cfg_;
};

} // namespace

Cfg Cfg::build(const Method& m) { return Builder().build(m); }

std::vector<int> Cfg::rpo() const {
    std::vector<int> order;
    std::vector<char> seen(nodes.size(), 0);
    // Iterative postorder DFS, then reverse.
    std::vector<std::pair<int, size_t>> stack{{entry, 0}};
    seen[entry] = 1;
    while (!stack.empty()) {
        auto& [n, i] = stack.back();
        if (i < nodes[n].succ.size()) {
            const int to = edges[nodes[n].succ[i++]].to;
            if (!seen[to]) {
                seen[to] = 1;
                stack.push_back({to, 0});
            }
        } else {
            order.push_back(n);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

} // namespace wj::analysis
