// The reusable fixed-point dataflow engine: a worklist solver over a CFG,
// parameterized by an analysis client (the lattice + transfer functions).
//
// A client D provides:
//
//   using State = ...;                       // a lattice element
//   State boundary();                        // state at entry (exit, if backward)
//   State transfer(int node, State in);      // flow through one node
//   void refine(const CfgEdge& e, State& s); // assume e.guard (forward only)
//   bool join(State& into, const State& from);   // returns true if `into` grew
//   void widen(State& s, const State& prev);     // accelerate at loop heads
//
// The solver iterates to a fixed point. Monotone clients on finite-height
// lattices terminate unaided; infinite-height domains (intervals) rely on
// widen(), which the solver invokes at back-edge targets once a node has
// been re-joined more than kWidenAfter times.
#pragma once

#include <deque>
#include <vector>

#include "analysis/cfg.h"

namespace wj::analysis {

enum class Direction { Forward, Backward };

inline constexpr int kWidenAfter = 3;

template <typename D>
std::vector<typename D::State> solve(const Cfg& cfg, D& d,
                                     Direction dir = Direction::Forward) {
    const size_t n = cfg.nodes.size();
    std::vector<typename D::State> in(n);
    std::vector<int> joins(n, 0);
    const int boundaryNode = dir == Direction::Forward ? cfg.entry : cfg.exit;
    in[boundaryNode] = d.boundary();

    std::vector<char> queued(n, 0);
    std::deque<int> work;
    for (int node : cfg.rpo()) {
        work.push_back(node);
        queued[node] = 1;
    }
    if (dir == Direction::Backward) std::reverse(work.begin(), work.end());

    while (!work.empty()) {
        const int node = work.front();
        work.pop_front();
        queued[node] = 0;

        typename D::State out = d.transfer(node, in[node]);

        const auto& outEdges =
            dir == Direction::Forward ? cfg.nodes[node].succ : cfg.nodes[node].pred;
        for (int ei : outEdges) {
            const CfgEdge& e = cfg.edges[ei];
            const int to = dir == Direction::Forward ? e.to : e.from;
            typename D::State s = out;
            if (dir == Direction::Forward) d.refine(e, s);
            typename D::State prev = in[to];
            if (d.join(in[to], s)) {
                if (e.backEdge && ++joins[to] > kWidenAfter) d.widen(in[to], prev);
                if (!queued[to]) {
                    queued[to] = 1;
                    work.push_back(to);
                }
            }
        }
    }
    return in;
}

} // namespace wj::analysis
