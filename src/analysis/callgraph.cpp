#include "analysis/callgraph.h"

#include "ir/typecheck.h"

namespace wj::analysis {

namespace {

class GraphWalker {
public:
    GraphWalker(const Program& prog) : prog_(prog) {}

    void collect(const ClassDecl& c, const Method& m, std::set<std::string>& out) {
        TypeScope scope(prog_, m.isStatic ? nullptr : &c, m);
        walkBlock(scope, m.body, out);
    }

private:
    void walkBlock(TypeScope& s, const Block& b, std::set<std::string>& out) {
        for (const auto& st : b) walkStmt(s, *st, out);
    }

    void addVirtualTargets(TypeScope& s, const CallExpr& n, std::set<std::string>& out) {
        Type rt = typeOf(s, *n.recv);
        if (!rt.isClass()) return;
        for (const auto& [owner, m] : resolveVirtual(prog_, rt.className(), n.method)) {
            (void)m;
            out.insert(owner->name + "." + n.method);
        }
    }

    void walkExpr(TypeScope& s, const Expr& e, std::set<std::string>& out) {
        switch (e.kind) {
        case ExprKind::Call: {
            const auto& n = as<CallExpr>(e);
            addVirtualTargets(s, n, out);
            walkExpr(s, *n.recv, out);
            for (const auto& a : n.args) walkExpr(s, *a, out);
            return;
        }
        case ExprKind::StaticCall: {
            const auto& n = as<StaticCallExpr>(e);
            const ClassDecl* owner = prog_.methodOwner(n.cls, n.method);
            if (owner) out.insert(owner->name + "." + n.method);
            for (const auto& a : n.args) walkExpr(s, *a, out);
            return;
        }
        case ExprKind::FieldGet: walkExpr(s, *as<FieldGetExpr>(e).obj, out); return;
        case ExprKind::ArrayGet: {
            const auto& n = as<ArrayGetExpr>(e);
            walkExpr(s, *n.arr, out);
            walkExpr(s, *n.idx, out);
            return;
        }
        case ExprKind::ArrayLen: walkExpr(s, *as<ArrayLenExpr>(e).arr, out); return;
        case ExprKind::Unary: walkExpr(s, *as<UnaryExpr>(e).e, out); return;
        case ExprKind::Binary: {
            const auto& n = as<BinaryExpr>(e);
            walkExpr(s, *n.l, out);
            walkExpr(s, *n.r, out);
            return;
        }
        case ExprKind::Cond: {
            const auto& n = as<CondExpr>(e);
            walkExpr(s, *n.c, out);
            walkExpr(s, *n.t, out);
            walkExpr(s, *n.f, out);
            return;
        }
        case ExprKind::New: {
            // A `new` runs the callee constructor; rule 6 treats ctors as
            // call-free (definition 3(d)), so only the arguments matter.
            for (const auto& a : as<NewExpr>(e).args) walkExpr(s, *a, out);
            return;
        }
        case ExprKind::NewArray: walkExpr(s, *as<NewArrayExpr>(e).len, out); return;
        case ExprKind::Cast: walkExpr(s, *as<CastExpr>(e).e, out); return;
        case ExprKind::IntrinsicCall:
            for (const auto& a : as<IntrinsicExpr>(e).args) walkExpr(s, *a, out);
            return;
        case ExprKind::Const: case ExprKind::Local: case ExprKind::This:
        case ExprKind::StaticGet:
            return;
        }
    }

    void walkStmt(TypeScope& s, const Stmt& st, std::set<std::string>& out) {
        switch (st.kind) {
        case StmtKind::Decl: {
            const auto& n = as<DeclStmt>(st);
            if (n.init) walkExpr(s, *n.init, out);
            s.declare(n.name, n.type);
            return;
        }
        case StmtKind::AssignLocal:
            walkExpr(s, *as<AssignLocalStmt>(st).value, out);
            return;
        case StmtKind::FieldSet: {
            const auto& n = as<FieldSetStmt>(st);
            walkExpr(s, *n.obj, out);
            walkExpr(s, *n.value, out);
            return;
        }
        case StmtKind::ArraySet: {
            const auto& n = as<ArraySetStmt>(st);
            walkExpr(s, *n.arr, out);
            walkExpr(s, *n.idx, out);
            walkExpr(s, *n.value, out);
            return;
        }
        case StmtKind::If: {
            const auto& n = as<IfStmt>(st);
            walkExpr(s, *n.cond, out);
            s.push();
            walkBlock(s, n.thenB, out);
            s.pop();
            s.push();
            walkBlock(s, n.elseB, out);
            s.pop();
            return;
        }
        case StmtKind::While: {
            const auto& n = as<WhileStmt>(st);
            walkExpr(s, *n.cond, out);
            s.push();
            walkBlock(s, n.body, out);
            s.pop();
            return;
        }
        case StmtKind::For: {
            const auto& n = as<ForStmt>(st);
            s.push();
            walkExpr(s, *n.init, out);
            s.declare(n.var, n.varType);
            walkExpr(s, *n.cond, out);
            walkExpr(s, *n.step, out);
            s.push();
            walkBlock(s, n.body, out);
            s.pop();
            s.pop();
            return;
        }
        case StmtKind::Return:
            if (const auto& n = as<ReturnStmt>(st); n.value) walkExpr(s, *n.value, out);
            return;
        case StmtKind::ExprStmt: walkExpr(s, *as<ExprStmt>(st).e, out); return;
        case StmtKind::SuperCtor:
            for (const auto& a : as<SuperCtorStmt>(st).args) walkExpr(s, *a, out);
            return;
        }
    }

    const Program& prog_;
};

} // namespace

std::vector<std::pair<const ClassDecl*, const Method*>>
resolveVirtual(const Program& prog, const std::string& className, const std::string& method) {
    std::vector<std::pair<const ClassDecl*, const Method*>> out;
    std::set<const ClassDecl*> seen;
    for (const ClassDecl* impl : prog.concreteSubtypes(className)) {
        const ClassDecl* owner = prog.methodOwner(impl->name, method);
        if (!owner || seen.count(owner)) continue;
        const Method* m = owner->ownMethod(method);
        if (m && !m->isAbstract) {
            seen.insert(owner);
            out.push_back({owner, m});
        }
    }
    return out;
}

CallGraph buildCallGraph(const Program& prog, bool wootinjOnly) {
    CallGraph cg;
    GraphWalker w(prog);
    for (const ClassDecl* c : prog.classes()) {
        if (wootinjOnly && !c->wootinj) continue;
        for (const auto& m : c->methods) {
            if (m->isAbstract) continue;
            w.collect(*c, *m, cg.edges[c->name + "." + m->name]);
        }
    }
    return cg;
}

} // namespace wj::analysis
