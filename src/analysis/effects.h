// Effect analysis: per-method read/write/communication summaries.
//
// For every method body the analysis computes which arrays reachable from
// the caller the method may READ or WRITE — identified either as a
// parameter index (array or object parameter) or as a class-qualified
// array field ("FloatGridDblB.cur") — plus which MiniMPI operations it may
// perform. Summaries are propagated bottom-up over the shared call graph
// (src/analysis/callgraph.h); virtual calls join the summaries of every
// concrete subtype's implementation. The communication race check consumes
// the write sets to decide whether a callee may touch a halo buffer while
// a nonblocking receive into it is in flight.
#pragma once

#include <map>
#include <set>
#include <string>

#include "ir/program.h"

namespace wj::analysis {

struct Effects {
    /// Parameter indices (0-based, receiver excluded) whose reachable
    /// arrays may be read / written. Object parameters appear here when a
    /// callee touches arrays behind their fields.
    std::set<int> readsParams, writesParams;
    /// Class-qualified array fields ("Cls.field", keyed by the declaring
    /// class) that may be read / written, through any receiver.
    std::set<std::string> readsFields, writesFields;
    /// Writes through an alias the classifier could not root (callee
    /// results, array-of-array elements, ...): treat as "may write
    /// anything".
    bool writesUnknown = false;

    // ---- communication
    bool sends = false;        ///< MPI send / sendrecv / bcast contribution
    bool receives = false;     ///< blocking recv / sendrecv
    bool postsIrecv = false;   ///< posts a nonblocking receive
    bool waits = false;        ///< MPI wait
    bool collectives = false;  ///< barrier / allreduce / bcast
    bool usesComm() const {
        return sends || receives || postsIrecv || waits || collectives;
    }

    // ---- additional side channels (consumed by the loop parallelizer,
    // which must keep comm/ckpt/alloc/IO on the rank's main thread)
    bool ckpt = false;       ///< checkpoint save / load
    bool gpu = false;        ///< any GPU intrinsic or @Global kernel launch
    bool allocates = false;  ///< NewArray / device allocation
    bool frees = false;      ///< WootinJ.free / cuda.free
    bool prints = false;     ///< printI64 / printF64

    bool operator==(const Effects& o) const {
        return readsParams == o.readsParams && writesParams == o.writesParams &&
               readsFields == o.readsFields && writesFields == o.writesFields &&
               writesUnknown == o.writesUnknown && sends == o.sends &&
               receives == o.receives && postsIrecv == o.postsIrecv && waits == o.waits &&
               collectives == o.collectives && ckpt == o.ckpt && gpu == o.gpu &&
               allocates == o.allocates && frees == o.frees && prints == o.prints;
    }

    /// Merges `o` into this; true if anything grew.
    bool merge(const Effects& o);

    std::string str() const;
};

/// Computes summaries for every concrete method and constructor in the
/// program, iterating over the call graph to a fixed point (cycles — which
/// rule 6 forbids but lint inputs may contain — converge because the
/// domain is finite).
std::map<const Method*, Effects> computeEffects(const Program& prog);

} // namespace wj::analysis
