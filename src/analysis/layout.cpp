#include "analysis/layout.h"

#include <algorithm>

#include "ir/ast.h"
#include "ir/typecheck.h"
#include "support/diagnostics.h"

namespace wj::analysis {

namespace {

/// Whole-program use scan. A class stays inline-eligible only while every
/// `a[i]` of its arrays is the immediate base of a field read and every
/// `a[i] = v` stores a fresh `new C(...)`. The walk mirrors the typechecker's
/// scoping so static types of array bases are available at every access.
class LayoutScan {
public:
    explicit LayoutScan(const Program& prog) : prog_(prog) {}

    void run() {
        collectCandidates();
        for (const ClassDecl* c : prog_.classes()) {
            if (!c->wootinj || c->isInterface) continue;
            if (c->ctor) scanMethod(*c, *c->ctor);
            for (const auto& m : c->methods) {
                if (!m->isAbstract) scanMethod(*c, *m);
            }
        }
    }

    std::map<std::string, ClassLayout> finish(const std::set<std::string>& boundary, bool lint) {
        std::map<std::string, ClassLayout> out;
        for (const std::string& c : candidates_) {
            ClassLayout cl;
            const std::string structural = structuralReason(c);
            if (!structural.empty()) {
                cl.reason = structural;
            } else if (auto it = boxed_.find(c); it != boxed_.end()) {
                cl.reason = it->second;
            } else if (boundary.count(c)) {
                cl.reason = "a '" + c + "[]' crosses the jit() boundary (invoke() marshals " +
                            "array-of-struct payloads)";
            } else {
                cl.verdict = lint ? LayoutVerdict::CondInline : LayoutVerdict::Inline;
                cl.reason = lint ? "every element access is a provable field path; inline-"
                                   "eligible provided no '" + c + "[]' crosses the jit() boundary"
                                 : "every element access is a provable field path; no escape, "
                                   "address identity, or whole-object copy observed";
                buildFields(c, cl);
            }
            out.emplace(c, std::move(cl));
        }
        return out;
    }

private:
    const Program& prog_;
    std::set<std::string> candidates_;
    std::map<std::string, std::string> boxed_;  ///< class -> first demotion reason
    TypeScope* scope_ = nullptr;

    // ---------------------------------------------------------- candidates

    void addTypes(const Type& t) {
        if (!t.isArray()) return;
        if (t.elem().isClass()) candidates_.insert(t.elem().className());
        addTypes(t.elem());
    }

    void collectTypesExpr(const Expr& e) {
        switch (e.kind) {
        case ExprKind::NewArray: {
            const auto& n = as<NewArrayExpr>(e);
            addTypes(Type::array(n.elem));
            collectTypesExpr(*n.len);
            return;
        }
        case ExprKind::Cast: {
            const auto& n = as<CastExpr>(e);
            addTypes(n.type);
            collectTypesExpr(*n.e);
            return;
        }
        case ExprKind::FieldGet: collectTypesExpr(*as<FieldGetExpr>(e).obj); return;
        case ExprKind::ArrayGet: {
            const auto& n = as<ArrayGetExpr>(e);
            collectTypesExpr(*n.arr);
            collectTypesExpr(*n.idx);
            return;
        }
        case ExprKind::ArrayLen: collectTypesExpr(*as<ArrayLenExpr>(e).arr); return;
        case ExprKind::Unary: collectTypesExpr(*as<UnaryExpr>(e).e); return;
        case ExprKind::Binary: {
            const auto& n = as<BinaryExpr>(e);
            collectTypesExpr(*n.l);
            collectTypesExpr(*n.r);
            return;
        }
        case ExprKind::Cond: {
            const auto& n = as<CondExpr>(e);
            collectTypesExpr(*n.c);
            collectTypesExpr(*n.t);
            collectTypesExpr(*n.f);
            return;
        }
        case ExprKind::Call: {
            const auto& n = as<CallExpr>(e);
            collectTypesExpr(*n.recv);
            for (const auto& a : n.args) collectTypesExpr(*a);
            return;
        }
        case ExprKind::StaticCall:
            for (const auto& a : as<StaticCallExpr>(e).args) collectTypesExpr(*a);
            return;
        case ExprKind::New:
            for (const auto& a : as<NewExpr>(e).args) collectTypesExpr(*a);
            return;
        case ExprKind::IntrinsicCall:
            for (const auto& a : as<IntrinsicExpr>(e).args) collectTypesExpr(*a);
            return;
        default: return;
        }
    }

    void collectTypesBlock(const Block& b) {
        for (const auto& s : b) {
            switch (s->kind) {
            case StmtKind::Decl: {
                const auto& n = as<DeclStmt>(*s);
                addTypes(n.type);
                if (n.init) collectTypesExpr(*n.init);
                break;
            }
            case StmtKind::AssignLocal: collectTypesExpr(*as<AssignLocalStmt>(*s).value); break;
            case StmtKind::FieldSet: {
                const auto& n = as<FieldSetStmt>(*s);
                collectTypesExpr(*n.obj);
                collectTypesExpr(*n.value);
                break;
            }
            case StmtKind::ArraySet: {
                const auto& n = as<ArraySetStmt>(*s);
                collectTypesExpr(*n.arr);
                collectTypesExpr(*n.idx);
                collectTypesExpr(*n.value);
                break;
            }
            case StmtKind::If: {
                const auto& n = as<IfStmt>(*s);
                collectTypesExpr(*n.cond);
                collectTypesBlock(n.thenB);
                collectTypesBlock(n.elseB);
                break;
            }
            case StmtKind::While: {
                const auto& n = as<WhileStmt>(*s);
                collectTypesExpr(*n.cond);
                collectTypesBlock(n.body);
                break;
            }
            case StmtKind::For: {
                const auto& n = as<ForStmt>(*s);
                addTypes(n.varType);
                collectTypesExpr(*n.init);
                collectTypesExpr(*n.cond);
                collectTypesExpr(*n.step);
                collectTypesBlock(n.body);
                break;
            }
            case StmtKind::Return:
                if (as<ReturnStmt>(*s).value) collectTypesExpr(*as<ReturnStmt>(*s).value);
                break;
            case StmtKind::ExprStmt: collectTypesExpr(*as<ExprStmt>(*s).e); break;
            case StmtKind::SuperCtor:
                for (const auto& a : as<SuperCtorStmt>(*s).args) collectTypesExpr(*a);
                break;
            }
        }
    }

    void collectCandidates() {
        for (const ClassDecl* c : prog_.classes()) {
            for (const Field& f : c->fields) addTypes(f.type);
            auto scanSig = [&](const Method& m) {
                for (const Param& p : m.params) addTypes(p.type);
                addTypes(m.ret);
                collectTypesBlock(m.body);
            };
            if (c->ctor) scanSig(*c->ctor);
            for (const auto& m : c->methods) scanSig(*m);
        }
    }

    // ------------------------------------------------------------ verdicts

    void demote(const std::string& cls, const std::string& reason) {
        boxed_.emplace(cls, reason);  // first reason wins: the report stays stable
    }

    std::string structuralReason(const std::string& name) const {
        const ClassDecl* c = prog_.cls(name);
        if (!c) return "unknown class";
        if (!c->wootinj) return "not @WootinJ (host-only class, never translated)";
        if (c->isInterface) {
            return "interface-typed elements have no exact layout (virtual dispatch)";
        }
        if (!prog_.isLeaf(name)) {
            return "has subclasses; the element layout cannot be exact";
        }
        const auto fields = prog_.allFields(name);
        if (fields.empty()) return "has no instance fields to split";
        for (const Field* f : fields) {
            if (!f->type.isPrim()) {
                return "field '" + f->name + "' is not primitive (" + f->type.str() + ")";
            }
            if (f->isShared) return "field '" + f->name + "' is @Shared";
        }
        return "";
    }

    void buildFields(const std::string& name, ClassLayout& cl) const {
        for (const Field* f : prog_.allFields(name)) {
            cl.fields.push_back({f->name, f->type.prim(), 0});
        }
        // Descending element size (stable: declaration order within a size
        // class), so each packed region is naturally aligned for any len.
        std::stable_sort(cl.fields.begin(), cl.fields.end(),
                         [](const SoaField& a, const SoaField& b) {
                             return primSize(a.prim) > primSize(b.prim);
                         });
        int32_t off = 0;
        for (SoaField& f : cl.fields) {
            f.pre = off;
            off += primSize(f.prim);
        }
        cl.elemSize = off;
    }

    // ------------------------------------------------------------ use scan

    /// Element class of `e` when it is an `a[i]` whose static element type
    /// is a class; "" otherwise (or when the base cannot be typed).
    std::string agetElemClass(const Expr& e) {
        if (e.kind != ExprKind::ArrayGet) return "";
        try {
            const Type at = typeOf(*scope_, *as<ArrayGetExpr>(e).arr);
            if (at.isArray() && at.elem().isClass()) {
                const std::string c = at.elem().className();
                candidates_.insert(c);
                return c;
            }
        } catch (const UsageError&) {
            // Untypeable base: the program cannot pass the typechecker, so
            // it will never reach the translator either.
        }
        return "";
    }

    /// Scans one child expression. `how` describes the consuming context
    /// when an element access there would escape; nullptr marks the one
    /// legal context (the base of a field read).
    void child(const Expr& e, const char* how) {
        if (how) {
            const std::string c = agetElemClass(e);
            if (!c.empty()) {
                demote(c, std::string("an element of '") + c + "[]' is " + how);
            }
        }
        scanExpr(e);
    }

    void scanExpr(const Expr& e) {
        switch (e.kind) {
        case ExprKind::Const:
        case ExprKind::Local:
        case ExprKind::This:
        case ExprKind::StaticGet: return;
        case ExprKind::FieldGet:
            // `a[i].f` — the legal consumption: the element never
            // materializes, only one lane of one field is touched.
            child(*as<FieldGetExpr>(e).obj, nullptr);
            return;
        case ExprKind::ArrayGet: {
            const auto& n = as<ArrayGetExpr>(e);
            child(*n.arr, "indexed like an array");
            child(*n.idx, "used as an index");
            return;
        }
        case ExprKind::ArrayLen: child(*as<ArrayLenExpr>(e).arr, nullptr); return;
        case ExprKind::Unary: child(*as<UnaryExpr>(e).e, "used as an operand"); return;
        case ExprKind::Binary: {
            const auto& n = as<BinaryExpr>(e);
            const char* how = (n.op == BinOp::Eq || n.op == BinOp::Ne)
                                  ? "compared by reference identity (==/!= observes the address)"
                                  : "used as an operand";
            child(*n.l, how);
            child(*n.r, how);
            return;
        }
        case ExprKind::Cond: {
            const auto& n = as<CondExpr>(e);
            child(*n.c, "used as a condition");
            child(*n.t, "selected by a conditional");
            child(*n.f, "selected by a conditional");
            return;
        }
        case ExprKind::Call: {
            const auto& n = as<CallExpr>(e);
            child(*n.recv, "the receiver of a method call (dispatch needs a materialized object)");
            for (const auto& a : n.args) child(*a, "passed as a call argument");
            return;
        }
        case ExprKind::StaticCall:
            for (const auto& a : as<StaticCallExpr>(e).args) {
                child(*a, "passed as a call argument");
            }
            return;
        case ExprKind::New:
            for (const auto& a : as<NewExpr>(e).args) {
                child(*a, "passed as a constructor argument");
            }
            return;
        case ExprKind::NewArray: child(*as<NewArrayExpr>(e).len, "used as a length"); return;
        case ExprKind::Cast: child(*as<CastExpr>(e).e, "cast (the reference escapes)"); return;
        case ExprKind::IntrinsicCall:
            for (const auto& a : as<IntrinsicExpr>(e).args) {
                child(*a, "passed to an intrinsic");
            }
            return;
        }
    }

    void declareQuiet(const std::string& name, const Type& t) {
        try {
            scope_->declare(name, t);
        } catch (const UsageError&) {
            // Shadowing — rejected by the typechecker; ignore here.
        }
    }

    void scanStmt(const Stmt& s) {
        switch (s.kind) {
        case StmtKind::Decl: {
            const auto& n = as<DeclStmt>(s);
            if (n.init) child(*n.init, "bound to a local variable");
            declareQuiet(n.name, n.type);
            return;
        }
        case StmtKind::AssignLocal:
            child(*as<AssignLocalStmt>(s).value, "bound to a local variable");
            return;
        case StmtKind::FieldSet: {
            const auto& n = as<FieldSetStmt>(s);
            child(*n.obj, "the target of a field store");
            child(*n.value, "stored into an object field");
            return;
        }
        case StmtKind::ArraySet: {
            const auto& n = as<ArraySetStmt>(s);
            child(*n.arr, "indexed like an array");
            child(*n.idx, "used as an index");
            // A whole-element store must build the element fresh: copying
            // an existing object into the slot would observe its identity
            // (the slot and the source would have to stay bit-coupled).
            try {
                const Type at = typeOf(*scope_, *n.arr);
                if (at.isArray() && at.elem().isClass()) {
                    const std::string c = at.elem().className();
                    candidates_.insert(c);
                    if (n.value->kind != ExprKind::New) {
                        demote(c, "a '" + c + "[]' slot is assigned something other than a "
                                  "fresh 'new " + c + "(...)' (whole-object copy)");
                    }
                }
            } catch (const UsageError&) {
            }
            child(*n.value, "stored whole into an array slot");
            return;
        }
        case StmtKind::If: {
            const auto& n = as<IfStmt>(s);
            child(*n.cond, "used as a condition");
            scanBlock(n.thenB);
            scanBlock(n.elseB);
            return;
        }
        case StmtKind::While: {
            const auto& n = as<WhileStmt>(s);
            child(*n.cond, "used as a condition");
            scanBlock(n.body);
            return;
        }
        case StmtKind::For: {
            const auto& n = as<ForStmt>(s);
            scope_->push();
            child(*n.init, "bound to a local variable");
            declareQuiet(n.var, n.varType);
            child(*n.cond, "used as a condition");
            child(*n.step, "bound to a local variable");
            scanBlock(n.body);
            scope_->pop();
            return;
        }
        case StmtKind::Return:
            if (as<ReturnStmt>(s).value) {
                child(*as<ReturnStmt>(s).value, "returned from a method");
            }
            return;
        case StmtKind::ExprStmt:
            child(*as<ExprStmt>(s).e, "evaluated for effect only");
            return;
        case StmtKind::SuperCtor:
            for (const auto& a : as<SuperCtorStmt>(s).args) {
                child(*a, "passed as a constructor argument");
            }
            return;
        }
    }

    void scanBlock(const Block& b) {
        scope_->push();
        for (const auto& s : b) scanStmt(*s);
        scope_->pop();
    }

    void scanMethod(const ClassDecl& cls, const Method& m) {
        try {
            TypeScope scope(prog_, m.isStatic ? nullptr : &cls, m);
            scope_ = &scope;
            scanBlock(m.body);
            scope_ = nullptr;
        } catch (const UsageError&) {
            // The method cannot be typed at all; the typechecker rejects the
            // program before any consumer of layout verdicts runs. Box every
            // candidate so an impossible Inline never leaks out regardless.
            scope_ = nullptr;
            for (const std::string& c : candidates_) {
                demote(c, "method '" + cls.name + "." + m.name + "' could not be typed");
            }
        }
    }
};

} // namespace

std::map<std::string, ClassLayout> proveLayout(const Program& prog,
                                               const std::set<std::string>& boundary,
                                               bool lint) {
    LayoutScan scan(prog);
    scan.run();
    return scan.finish(boundary, lint);
}

} // namespace wj::analysis
