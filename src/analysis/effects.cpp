#include "analysis/effects.h"

#include <vector>

#include "analysis/callgraph.h"
#include "ir/typecheck.h"
#include "support/diagnostics.h"

namespace wj::analysis {

namespace {

/// Where an array-valued expression is rooted, from the caller's point of
/// view. This is the syntactic classifier the summaries are keyed by; the
/// precise per-site alias facts the race check uses come from the interval
/// engine instead.
struct SRoot {
    enum class K { Param, Field, Alloc, This, Unknown } k = K::Unknown;
    int paramIdx = -1;
    std::string fieldKey;

    static SRoot param(int i) { return {K::Param, i, {}}; }
    static SRoot field(std::string key) { return {K::Field, -1, std::move(key)}; }
    static SRoot alloc() { return {K::Alloc, -1, {}}; }
    static SRoot thisRoot() { return {K::This, -1, {}}; }
    static SRoot unknown() { return {K::Unknown, -1, {}}; }
};

/// "DeclaringClass.field" — all stores/loads of one field agree on the key
/// regardless of the receiver's static type.
std::string fieldKeyOf(const Program& prog, const std::string& cls, const std::string& field) {
    for (const ClassDecl* c = prog.cls(cls); c;
         c = c->superName.empty() ? nullptr : prog.cls(c->superName)) {
        if (c->ownField(field)) return c->name + "." + field;
    }
    return cls + "." + field;
}

class MethodWalker {
public:
    MethodWalker(const Program& prog, const std::map<const Method*, Effects>& summaries)
        : prog_(prog), summaries_(summaries) {}

    Effects walk(const ClassDecl& c, const Method& m) {
        eff_ = Effects{};
        TypeScope scope(prog_, m.isStatic ? nullptr : &c, m);
        roots_.clear();
        roots_.push_back({});
        for (size_t i = 0; i < m.params.size(); ++i) {
            roots_.back()[m.params[i].name] = SRoot::param(static_cast<int>(i));
        }
        walkBlock(scope, m.body);
        return eff_;
    }

private:
    SRoot lookupRoot(const std::string& name) const {
        for (auto it = roots_.rbegin(); it != roots_.rend(); ++it) {
            auto f = it->find(name);
            if (f != it->end()) return f->second;
        }
        return SRoot::unknown();
    }

    void bind(const std::string& name, SRoot r) { roots_.back()[name] = std::move(r); }

    SRoot classify(TypeScope& s, const Expr& e) {
        switch (e.kind) {
        case ExprKind::Local: return lookupRoot(as<LocalExpr>(e).name);
        case ExprKind::This: return SRoot::thisRoot();
        case ExprKind::FieldGet: {
            const auto& n = as<FieldGetExpr>(e);
            Type ot = typeOf(s, *n.obj);
            if (!ot.isClass()) return SRoot::unknown();
            return SRoot::field(fieldKeyOf(prog_, ot.className(), n.field));
        }
        case ExprKind::NewArray: return SRoot::alloc();
        case ExprKind::Cast: return classify(s, *as<CastExpr>(e).e);
        default: return SRoot::unknown();
        }
    }

    void read(const SRoot& r) {
        switch (r.k) {
        case SRoot::K::Param: eff_.readsParams.insert(r.paramIdx); break;
        case SRoot::K::Field: eff_.readsFields.insert(r.fieldKey); break;
        default: break;  // fresh allocations / unknown reads carry no caller-visible effect
        }
    }

    void write(const SRoot& r) {
        switch (r.k) {
        case SRoot::K::Param: eff_.writesParams.insert(r.paramIdx); break;
        case SRoot::K::Field: eff_.writesFields.insert(r.fieldKey); break;
        case SRoot::K::Alloc: case SRoot::K::This: break;
        case SRoot::K::Unknown: eff_.writesUnknown = true; break;
        }
    }

    void mergeCallee(TypeScope& s, const Effects& ce, const Expr* recv,
                     const std::vector<ExprPtr>& args) {
        for (int j : ce.readsParams) {
            if (j >= 0 && j < static_cast<int>(args.size())) read(classify(s, *args[j]));
        }
        for (int j : ce.writesParams) {
            if (j >= 0 && j < static_cast<int>(args.size())) write(classify(s, *args[j]));
        }
        eff_.readsFields.insert(ce.readsFields.begin(), ce.readsFields.end());
        eff_.writesFields.insert(ce.writesFields.begin(), ce.writesFields.end());
        // A callee touching its receiver's fields touches arrays reachable
        // from whatever the caller passed as the receiver.
        if (recv) {
            const SRoot rr = classify(s, *recv);
            if (rr.k == SRoot::K::Param) {
                if (!ce.readsFields.empty()) eff_.readsParams.insert(rr.paramIdx);
                if (!ce.writesFields.empty()) eff_.writesParams.insert(rr.paramIdx);
            }
        }
        eff_.writesUnknown |= ce.writesUnknown;
        eff_.sends |= ce.sends;
        eff_.receives |= ce.receives;
        eff_.postsIrecv |= ce.postsIrecv;
        eff_.waits |= ce.waits;
        eff_.collectives |= ce.collectives;
        eff_.ckpt |= ce.ckpt;
        eff_.gpu |= ce.gpu;
        eff_.allocates |= ce.allocates;
        eff_.frees |= ce.frees;
        eff_.prints |= ce.prints;
    }

    void walkIntrinsic(TypeScope& s, const IntrinsicExpr& n) {
        auto arg = [&](size_t i) -> SRoot { return classify(s, *n.args[i]); };
        switch (n.op) {
        case Intrinsic::MpiSendF32: eff_.sends = true; read(arg(0)); break;
        case Intrinsic::MpiRecvF32: eff_.receives = true; write(arg(0)); break;
        case Intrinsic::MpiSendRecvF32:
            eff_.sends = eff_.receives = true;
            read(arg(0));
            write(arg(4));
            break;
        case Intrinsic::MpiBcastF32:
            eff_.collectives = true;
            read(arg(0));
            write(arg(0));
            break;
        case Intrinsic::MpiIrecvF32: eff_.postsIrecv = true; write(arg(0)); break;
        case Intrinsic::MpiWait: eff_.waits = true; break;
        case Intrinsic::MpiBarrier: case Intrinsic::MpiAllreduceSumF64:
        case Intrinsic::MpiAllreduceMaxF64:
            eff_.collectives = true;
            break;
        case Intrinsic::GpuMemcpyH2DF32: eff_.gpu = true; write(arg(0)); read(arg(1)); break;
        case Intrinsic::GpuMemcpyD2HF32: eff_.gpu = true; write(arg(0)); read(arg(1)); break;
        case Intrinsic::GpuMemcpyH2DOffF32: eff_.gpu = true; write(arg(0)); read(arg(2)); break;
        case Intrinsic::GpuMemcpyD2HOffF32: eff_.gpu = true; write(arg(0)); read(arg(2)); break;
        case Intrinsic::GpuMallocF32: eff_.gpu = eff_.allocates = true; break;
        case Intrinsic::GpuFree: eff_.gpu = eff_.frees = true; break;
        case Intrinsic::CudaSharedF32: eff_.gpu = true; break;
        case Intrinsic::CkptSaveF32: eff_.ckpt = true; read(arg(0)); break;
        case Intrinsic::CkptLoadF32: eff_.ckpt = true; write(arg(0)); break;
        case Intrinsic::FreeArray: eff_.frees = true; break;
        case Intrinsic::PrintI64: case Intrinsic::PrintF64: eff_.prints = true; break;
        default: break;
        }
    }

    void walkExpr(TypeScope& s, const Expr& e) {
        switch (e.kind) {
        case ExprKind::Call: {
            const auto& n = as<CallExpr>(e);
            walkExpr(s, *n.recv);
            for (const auto& a : n.args) walkExpr(s, *a);
            Type rt = typeOf(s, *n.recv);
            if (rt.isClass()) {
                for (const auto& [owner, m] : resolveVirtual(prog_, rt.className(), n.method)) {
                    (void)owner;
                    auto it = summaries_.find(m);
                    if (it != summaries_.end()) mergeCallee(s, it->second, n.recv.get(), n.args);
                }
            }
            return;
        }
        case ExprKind::StaticCall: {
            const auto& n = as<StaticCallExpr>(e);
            for (const auto& a : n.args) walkExpr(s, *a);
            if (const ClassDecl* owner = prog_.methodOwner(n.cls, n.method)) {
                if (const Method* m = owner->ownMethod(n.method)) {
                    auto it = summaries_.find(m);
                    if (it != summaries_.end()) mergeCallee(s, it->second, nullptr, n.args);
                }
            }
            return;
        }
        case ExprKind::IntrinsicCall: {
            const auto& n = as<IntrinsicExpr>(e);
            for (const auto& a : n.args) walkExpr(s, *a);
            walkIntrinsic(s, n);
            return;
        }
        case ExprKind::ArrayGet: {
            const auto& n = as<ArrayGetExpr>(e);
            walkExpr(s, *n.arr);
            walkExpr(s, *n.idx);
            read(classify(s, *n.arr));
            return;
        }
        case ExprKind::FieldGet: walkExpr(s, *as<FieldGetExpr>(e).obj); return;
        case ExprKind::ArrayLen: walkExpr(s, *as<ArrayLenExpr>(e).arr); return;
        case ExprKind::Unary: walkExpr(s, *as<UnaryExpr>(e).e); return;
        case ExprKind::Binary: {
            const auto& n = as<BinaryExpr>(e);
            walkExpr(s, *n.l);
            walkExpr(s, *n.r);
            return;
        }
        case ExprKind::Cond: {
            const auto& n = as<CondExpr>(e);
            walkExpr(s, *n.c);
            walkExpr(s, *n.t);
            walkExpr(s, *n.f);
            return;
        }
        case ExprKind::New:
            for (const auto& a : as<NewExpr>(e).args) walkExpr(s, *a);
            return;
        case ExprKind::NewArray:
            eff_.allocates = true;
            walkExpr(s, *as<NewArrayExpr>(e).len);
            return;
        case ExprKind::Cast: walkExpr(s, *as<CastExpr>(e).e); return;
        case ExprKind::Const: case ExprKind::Local: case ExprKind::This:
        case ExprKind::StaticGet:
            return;
        }
    }

    void walkBlock(TypeScope& s, const Block& b) {
        for (const auto& st : b) walkStmt(s, *st);
    }

    void walkStmt(TypeScope& s, const Stmt& st) {
        switch (st.kind) {
        case StmtKind::Decl: {
            const auto& n = as<DeclStmt>(st);
            if (n.init) {
                walkExpr(s, *n.init);
                bind(n.name, classify(s, *n.init));
            } else {
                bind(n.name, SRoot::unknown());
            }
            s.declare(n.name, n.type);
            return;
        }
        case StmtKind::AssignLocal: {
            const auto& n = as<AssignLocalStmt>(st);
            walkExpr(s, *n.value);
            bind(n.name, classify(s, *n.value));
            return;
        }
        case StmtKind::FieldSet: {
            const auto& n = as<FieldSetStmt>(st);
            walkExpr(s, *n.obj);
            walkExpr(s, *n.value);
            return;
        }
        case StmtKind::ArraySet: {
            const auto& n = as<ArraySetStmt>(st);
            walkExpr(s, *n.arr);
            walkExpr(s, *n.idx);
            walkExpr(s, *n.value);
            write(classify(s, *n.arr));
            return;
        }
        case StmtKind::If: {
            const auto& n = as<IfStmt>(st);
            walkExpr(s, *n.cond);
            s.push();
            roots_.push_back({});
            walkBlock(s, n.thenB);
            roots_.pop_back();
            s.pop();
            s.push();
            roots_.push_back({});
            walkBlock(s, n.elseB);
            roots_.pop_back();
            s.pop();
            return;
        }
        case StmtKind::While: {
            const auto& n = as<WhileStmt>(st);
            walkExpr(s, *n.cond);
            s.push();
            roots_.push_back({});
            walkBlock(s, n.body);
            roots_.pop_back();
            s.pop();
            return;
        }
        case StmtKind::For: {
            const auto& n = as<ForStmt>(st);
            s.push();
            roots_.push_back({});
            walkExpr(s, *n.init);
            s.declare(n.var, n.varType);
            walkExpr(s, *n.cond);
            walkExpr(s, *n.step);
            s.push();
            roots_.push_back({});
            walkBlock(s, n.body);
            roots_.pop_back();
            s.pop();
            roots_.pop_back();
            s.pop();
            return;
        }
        case StmtKind::Return:
            if (const auto& n = as<ReturnStmt>(st); n.value) walkExpr(s, *n.value);
            return;
        case StmtKind::ExprStmt: walkExpr(s, *as<ExprStmt>(st).e); return;
        case StmtKind::SuperCtor:
            for (const auto& a : as<SuperCtorStmt>(st).args) walkExpr(s, *a);
            return;
        }
    }

    const Program& prog_;
    const std::map<const Method*, Effects>& summaries_;
    Effects eff_;
    std::vector<std::map<std::string, SRoot>> roots_;
};

} // namespace

bool Effects::merge(const Effects& o) {
    const Effects before = *this;
    readsParams.insert(o.readsParams.begin(), o.readsParams.end());
    writesParams.insert(o.writesParams.begin(), o.writesParams.end());
    readsFields.insert(o.readsFields.begin(), o.readsFields.end());
    writesFields.insert(o.writesFields.begin(), o.writesFields.end());
    writesUnknown |= o.writesUnknown;
    sends |= o.sends;
    receives |= o.receives;
    postsIrecv |= o.postsIrecv;
    waits |= o.waits;
    collectives |= o.collectives;
    ckpt |= o.ckpt;
    gpu |= o.gpu;
    allocates |= o.allocates;
    frees |= o.frees;
    prints |= o.prints;
    return !(*this == before);
}

std::string Effects::str() const {
    std::string out = "reads{";
    for (int i : readsParams) out += "p" + std::to_string(i) + ",";
    for (const auto& f : readsFields) out += f + ",";
    out += "} writes{";
    for (int i : writesParams) out += "p" + std::to_string(i) + ",";
    for (const auto& f : writesFields) out += f + ",";
    if (writesUnknown) out += "?";
    out += "}";
    if (usesComm()) {
        out += " comm{";
        if (sends) out += "send,";
        if (receives) out += "recv,";
        if (postsIrecv) out += "irecv,";
        if (waits) out += "wait,";
        if (collectives) out += "coll,";
        out += "}";
    }
    if (ckpt || gpu || allocates || frees || prints) {
        out += " side{";
        if (ckpt) out += "ckpt,";
        if (gpu) out += "gpu,";
        if (allocates) out += "alloc,";
        if (frees) out += "free,";
        if (prints) out += "print,";
        out += "}";
    }
    return out;
}

std::map<const Method*, Effects> computeEffects(const Program& prog) {
    std::map<const Method*, Effects> summaries;
    std::vector<std::pair<const ClassDecl*, const Method*>> bodies;
    for (const ClassDecl* c : prog.classes()) {
        for (const auto& m : c->methods) {
            if (m->isAbstract) continue;
            bodies.push_back({c, m.get()});
            summaries[m.get()] = Effects{};
        }
    }
    // Bottom-up fixed point over the call graph. Rule-compliant programs
    // have an acyclic graph and converge in depth(graph) rounds; the cap
    // guards lint inputs that violate rule 6.
    for (int round = 0; round < 32; ++round) {
        bool changed = false;
        for (const auto& [c, m] : bodies) {
            MethodWalker w(prog, summaries);
            try {
                Effects next = w.walk(*c, *m);
                changed |= summaries[m].merge(next);
            } catch (const WjError&) {
                // Ill-typed body (lint input): no summary, stays empty.
            }
        }
        if (!changed) break;
    }
    return summaries;
}

} // namespace wj::analysis
