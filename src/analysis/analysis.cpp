#include "analysis/analysis.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "analysis/callgraph.h"
#include "analysis/cfg.h"
#include "analysis/dataflow.h"
#include "analysis/effects.h"
#include "analysis/interval.h"
#include "ir/intrinsics.h"
#include "ir/printer.h"
#include "ir/typecheck.h"

namespace wj::analysis {

namespace {

// ---------------------------------------------------------------- utilities

std::string strBound(int64_t v) {
    if (v == Itv::kNegInf) return "-inf";
    if (v == Itv::kPosInf) return "+inf";
    return std::to_string(v);
}

std::string strItv(const Itv& v) {
    return "[" + strBound(v.lo) + ", " + strBound(v.hi) + "]";
}

/// "Cls.field" keyed by the class in `cls`'s superclass chain that declares
/// the field (so FloatGrid.cur and a subclass's view of it share one key).
std::string fieldKeyOf(const Program& prog, const std::string& cls, const std::string& field) {
    const ClassDecl* c = prog.cls(cls);
    while (c) {
        if (c->ownField(field)) return c->name + "." + field;
        c = c->superName.empty() ? nullptr : prog.cls(c->superName);
    }
    return cls + "." + field;  // unresolvable: private key, still deterministic
}

/// Collects every local name read by an expression tree.
void collectReads(const Expr& e, std::vector<std::string>& out) {
    switch (e.kind) {
    case ExprKind::Const:
    case ExprKind::This:
    case ExprKind::StaticGet: return;
    case ExprKind::Local: out.push_back(as<LocalExpr>(e).name); return;
    case ExprKind::FieldGet: collectReads(*as<FieldGetExpr>(e).obj, out); return;
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        collectReads(*n.arr, out);
        collectReads(*n.idx, out);
        return;
    }
    case ExprKind::ArrayLen: collectReads(*as<ArrayLenExpr>(e).arr, out); return;
    case ExprKind::Unary: collectReads(*as<UnaryExpr>(e).e, out); return;
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        collectReads(*n.l, out);
        collectReads(*n.r, out);
        return;
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        collectReads(*n.c, out);
        collectReads(*n.t, out);
        collectReads(*n.f, out);
        return;
    }
    case ExprKind::Call: {
        const auto& n = as<CallExpr>(e);
        collectReads(*n.recv, out);
        for (const auto& a : n.args) collectReads(*a, out);
        return;
    }
    case ExprKind::StaticCall:
        for (const auto& a : as<StaticCallExpr>(e).args) collectReads(*a, out);
        return;
    case ExprKind::New:
        for (const auto& a : as<NewExpr>(e).args) collectReads(*a, out);
        return;
    case ExprKind::NewArray: collectReads(*as<NewArrayExpr>(e).len, out); return;
    case ExprKind::Cast: collectReads(*as<CastExpr>(e).e, out); return;
    case ExprKind::IntrinsicCall:
        for (const auto& a : as<IntrinsicExpr>(e).args) collectReads(*a, out);
        return;
    }
}

/// Local names a CFG node reads (in its expressions, before its own defs).
std::vector<std::string> nodeReads(const CfgNode& nd) {
    std::vector<std::string> out;
    switch (nd.kind) {
    case CfgNode::Kind::Entry:
    case CfgNode::Kind::Exit: break;
    case CfgNode::Kind::Branch: collectReads(*nd.cond, out); break;
    case CfgNode::Kind::ForInit: collectReads(*nd.forS->init, out); break;
    case CfgNode::Kind::ForStep: collectReads(*nd.forS->step, out); break;
    case CfgNode::Kind::Stmt:
        switch (nd.stmt->kind) {
        case StmtKind::Decl: {
            const auto& n = as<DeclStmt>(*nd.stmt);
            if (n.init) collectReads(*n.init, out);
            break;
        }
        case StmtKind::AssignLocal: collectReads(*as<AssignLocalStmt>(*nd.stmt).value, out); break;
        case StmtKind::FieldSet: {
            const auto& n = as<FieldSetStmt>(*nd.stmt);
            collectReads(*n.obj, out);
            collectReads(*n.value, out);
            break;
        }
        case StmtKind::ArraySet: {
            const auto& n = as<ArraySetStmt>(*nd.stmt);
            collectReads(*n.arr, out);
            collectReads(*n.idx, out);
            collectReads(*n.value, out);
            break;
        }
        case StmtKind::Return: {
            const auto& n = as<ReturnStmt>(*nd.stmt);
            if (n.value) collectReads(*n.value, out);
            break;
        }
        case StmtKind::ExprStmt: collectReads(*as<ExprStmt>(*nd.stmt).e, out); break;
        case StmtKind::SuperCtor:
            for (const auto& a : as<SuperCtorStmt>(*nd.stmt).args) collectReads(*a, out);
            break;
        default: break;
        }
        break;
    }
    return out;
}

/// Local name a node defines, if any; `uninit` is set for a Decl without an
/// initializer (which *revokes* definite assignment of the name — the IR
/// reuses names across sibling scopes).
const std::string* nodeDef(const CfgNode& nd, bool& uninit) {
    uninit = false;
    switch (nd.kind) {
    case CfgNode::Kind::ForInit:
    case CfgNode::Kind::ForStep: return &nd.forS->var;
    case CfgNode::Kind::Stmt:
        if (nd.stmt->kind == StmtKind::Decl) {
            const auto& n = as<DeclStmt>(*nd.stmt);
            uninit = n.init == nullptr;
            return &n.name;
        }
        if (nd.stmt->kind == StmtKind::AssignLocal) return &as<AssignLocalStmt>(*nd.stmt).name;
        return nullptr;
    default: return nullptr;
    }
}

bool exprHasEffects(const Expr& e) {
    switch (e.kind) {
    case ExprKind::Call:
    case ExprKind::StaticCall:
    case ExprKind::IntrinsicCall:
    case ExprKind::New:
    case ExprKind::NewArray: return true;
    case ExprKind::FieldGet: return exprHasEffects(*as<FieldGetExpr>(e).obj);
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        return exprHasEffects(*n.arr) || exprHasEffects(*n.idx);
    }
    case ExprKind::ArrayLen: return exprHasEffects(*as<ArrayLenExpr>(e).arr);
    case ExprKind::Unary: return exprHasEffects(*as<UnaryExpr>(e).e);
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        return exprHasEffects(*n.l) || exprHasEffects(*n.r);
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        return exprHasEffects(*n.c) || exprHasEffects(*n.t) || exprHasEffects(*n.f);
    }
    case ExprKind::Cast: return exprHasEffects(*as<CastExpr>(e).e);
    default: return false;
    }
}

// ------------------------------------------------------- definite assignment

/// Forward must-analysis: the set of locals definitely assigned on every
/// path into a node. Join is set intersection; `reach` distinguishes the
/// bottom element (no path yet) from "reached with nothing assigned".
struct DaState {
    bool reach = false;
    std::set<std::string> assigned;
};

struct DaDomain {
    const Cfg& cfg;
    DaState entryState;

    using State = DaState;
    State boundary() { return entryState; }

    State transfer(int node, State s) {
        if (!s.reach) return s;
        bool uninit = false;
        if (const std::string* def = nodeDef(cfg.nodes[node], uninit)) {
            if (uninit) {
                s.assigned.erase(*def);
            } else {
                s.assigned.insert(*def);
            }
        }
        return s;
    }

    void refine(const CfgEdge&, State&) {}

    bool join(State& into, const State& from) {
        if (!from.reach) return false;
        if (!into.reach) {
            into = from;
            return true;
        }
        std::set<std::string> meet;
        std::set_intersection(into.assigned.begin(), into.assigned.end(), from.assigned.begin(),
                              from.assigned.end(), std::inserter(meet, meet.begin()));
        if (meet == into.assigned) return false;
        into.assigned = std::move(meet);
        return true;
    }

    void widen(State&, const State&) {}  // finite lattice
};

// ------------------------------------------------------------ live variables

/// Backward may-analysis for the dead-store warning. The solver's in[] for a
/// backward direction holds the state at the node's OUT edge — i.e. live-out.
struct LiveDomain {
    const Cfg& cfg;

    using State = std::set<std::string>;
    State boundary() { return {}; }

    State transfer(int node, State s) {
        bool uninit = false;
        if (const std::string* def = nodeDef(cfg.nodes[node], uninit)) s.erase(*def);
        for (const std::string& r : nodeReads(cfg.nodes[node])) s.insert(r);
        return s;
    }

    void refine(const CfgEdge&, State&) {}

    bool join(State& into, const State& from) {
        bool changed = false;
        for (const std::string& v : from) changed |= into.insert(v).second;
        return changed;
    }

    void widen(State&, const State&) {}
};

} // namespace

std::vector<Violation> checkDefiniteAssignment(const Program& prog, const ClassDecl& cls,
                                               const Method& m,
                                               std::vector<Violation>* warnings) {
    (void)prog;
    std::vector<Violation> errors;
    if (m.isAbstract) return errors;
    const std::string where = cls.name + "." + (m.isCtor() ? "<init>" : m.name);

    const Cfg cfg = Cfg::build(m);

    DaDomain da{cfg, {}};
    da.entryState.reach = true;
    for (const Param& p : m.params) da.entryState.assigned.insert(p.name);
    const auto states = solve(cfg, da, Direction::Forward);

    std::set<std::string> reported;
    for (int node : cfg.rpo()) {
        const DaState& in = states[node];
        if (!in.reach) continue;  // unreachable code: nothing to report
        for (const std::string& name : nodeReads(cfg.nodes[node])) {
            if (in.assigned.count(name)) continue;
            if (!reported.insert(name).second) continue;
            errors.push_back({"uninit", where,
                              "local '" + name + "' may be read before it is assigned"});
        }
    }

    if (warnings) {
        LiveDomain live{cfg};
        const auto liveOut = solve(cfg, live, Direction::Backward);
        for (size_t node = 0; node < cfg.nodes.size(); ++node) {
            const CfgNode& nd = cfg.nodes[node];
            if (nd.kind != CfgNode::Kind::Stmt || nd.stmt->kind != StmtKind::AssignLocal) continue;
            const auto& st = as<AssignLocalStmt>(*nd.stmt);
            if (liveOut[node].count(st.name)) continue;
            if (exprHasEffects(*st.value)) continue;  // keep the computation's effects
            warnings->push_back({"dead-store", where,
                                 "value stored to '" + st.name + "' is never read"});
        }
    }
    return errors;
}

// ======================================================== interval analysis

namespace {

struct AbsObj;
using AbsObjPtr = std::shared_ptr<AbsObj>;

/// One abstract value covering every WJ type:
///   numerics  — `num` (floats are always top; only the *type* matters)
///   arrays    — `len` interval + `roots` allocation-site set (empty set =
///               unknown provenance, may alias anything)
///   objects   — `objs` points-to set (empty = unknown object)
///   requests  — `tokens`, the MpiIrecvF32 sites an `int` request may carry
struct AVal {
    Type type = Type::voidTy();
    Itv num = Itv::top();
    Itv len = Itv::top();
    std::set<int> roots;
    std::vector<AbsObjPtr> objs;
    std::set<const void*> tokens;
};

/// An abstract object: exact class plus per-field abstract values. Produced
/// either from a concrete interpreter Obj (jit entry analysis) or by
/// abstractly executing a constructor at a `new` site.
struct AbsObj {
    const ClassDecl* cls = nullptr;
    std::map<std::string, AVal> fields;
};

constexpr size_t kMaxRoots = 8;
constexpr size_t kMaxObjs = 4;
constexpr size_t kMaxTokens = 8;
constexpr int kMaxInlineDepth = 48;

bool joinAVal(AVal& a, const AVal& b) {
    bool changed = false;
    if (a.type.isVoid() && !b.type.isVoid()) {
        a.type = b.type;
        changed = true;
    }
    const Itv n = a.num.join(b.num);
    if (n != a.num) {
        a.num = n;
        changed = true;
    }
    const Itv l = a.len.join(b.len);
    if (l != a.len) {
        a.len = l;
        changed = true;
    }
    // Roots: empty means "unknown, intersects everything" — absorbing.
    if (!a.roots.empty()) {
        if (b.roots.empty()) {
            a.roots.clear();
            changed = true;
        } else {
            for (int r : b.roots) changed |= a.roots.insert(r).second;
            if (a.roots.size() > kMaxRoots) {
                a.roots.clear();
                changed = true;
            }
        }
    }
    if (!a.objs.empty()) {
        if (b.objs.empty() && b.type.isClass()) {
            a.objs.clear();
            changed = true;
        } else {
            for (const AbsObjPtr& o : b.objs) {
                if (std::find(a.objs.begin(), a.objs.end(), o) == a.objs.end()) {
                    a.objs.push_back(o);
                    changed = true;
                }
            }
            if (a.objs.size() > kMaxObjs) {
                a.objs.clear();
                changed = true;
            }
        }
    }
    if (!a.tokens.empty() || !b.tokens.empty()) {
        for (const void* t : b.tokens) changed |= a.tokens.insert(t).second;
        if (a.tokens.size() > kMaxTokens) a.tokens.clear();
    }
    return changed;
}

/// The abstract environment at a program point.
struct Env {
    bool reach = false;  // default-constructed = bottom
    std::map<std::string, AVal> vars;
};

bool joinEnv(Env& a, const Env& b) {
    if (!b.reach) return false;
    if (!a.reach) {
        a = b;
        return true;
    }
    bool changed = false;
    for (const auto& [k, v] : b.vars) {
        auto it = a.vars.find(k);
        if (it == a.vars.end()) {
            a.vars.emplace(k, v);
            changed = true;
        } else {
            changed |= joinAVal(it->second, v);
        }
    }
    return changed;
}

void widenEnv(Env& s, const Env& prev) {
    if (!s.reach || !prev.reach) return;
    for (auto& [k, v] : s.vars) {
        auto it = prev.vars.find(k);
        if (it == prev.vars.end()) continue;
        v.num = v.num.widen(it->second.num);
        v.len = v.len.widen(it->second.len);
    }
}

// ----------------------------------------------------- mutated field groups

/// Which array fields are reassigned after construction, and which fields
/// can alias each other through those reassignments (the double-buffer swap
/// `t = cur; cur = nxt; nxt = t` puts cur and nxt in one group). A read of a
/// mutated field on a known object is the join of that object's values over
/// its whole group; a group is "open" (unknown) when some store's source
/// could not be traced to a same-object field.
class FieldGroups {
public:
    void build(const Program& prog) {
        for (const ClassDecl* cls : prog.classes()) {
            if (cls->ctor) scanMethod(prog, *cls, *cls->ctor, /*inCtor=*/true);
            for (const auto& m : cls->methods) {
                if (!m->isAbstract) scanMethod(prog, *cls, *m, /*inCtor=*/false);
            }
        }
    }

    bool isMutated(const std::string& key) const { return mutated_.count(key) > 0; }
    bool isOpen(const std::string& key) const { return open_.count(find(key)) > 0; }

    /// Every key in `key`'s group (including itself).
    std::vector<std::string> groupOf(const std::string& key) const {
        const std::string leader = find(key);
        std::vector<std::string> out;
        for (const auto& [k, _] : parent_) {
            if (find(k) == leader) out.push_back(k);
        }
        if (out.empty()) out.push_back(key);
        return out;
    }

private:
    // Union-find over field keys.
    std::string find(const std::string& k) const {
        auto it = parent_.find(k);
        if (it == parent_.end() || it->second == k) return k;
        return find(it->second);
    }
    void ensure(const std::string& k) {
        if (!parent_.count(k)) parent_[k] = k;
    }
    void unite(const std::string& a, const std::string& b) {
        ensure(a);
        ensure(b);
        const std::string ra = find(a), rb = find(b);
        if (ra == rb) return;
        const bool openUnion = open_.count(ra) || open_.count(rb);
        parent_[ra] = rb;
        if (openUnion) open_.insert(rb);
    }
    void markOpen(const std::string& k) {
        ensure(k);
        open_.insert(find(k));
    }

    void scanMethod(const Program& prog, const ClassDecl& cls, const Method& m, bool inCtor) {
        // Per-method syntactic bindings: array local -> traced source field
        // keys, or nullopt meaning "untraceable".
        std::map<std::string, std::optional<std::set<std::string>>> localSrc;

        auto traceExpr = [&](const Expr& e) -> std::optional<std::set<std::string>> {
            if (e.kind == ExprKind::FieldGet) {
                const auto& fg = as<FieldGetExpr>(e);
                if (fg.obj->kind == ExprKind::This) {
                    return std::set<std::string>{fieldKeyOf(prog, cls.name, fg.field)};
                }
                return std::nullopt;
            }
            if (e.kind == ExprKind::Local) {
                auto it = localSrc.find(as<LocalExpr>(e).name);
                if (it != localSrc.end()) return it->second;
                return std::nullopt;
            }
            return std::nullopt;  // NewArray, calls, ... — not a same-object field
        };

        std::function<void(const Block&)> walk = [&](const Block& b) {
            for (const auto& stp : b) {
                const Stmt& st = *stp;
                switch (st.kind) {
                case StmtKind::Decl: {
                    const auto& n = as<DeclStmt>(st);
                    if (n.type.isArray()) localSrc[n.name] = n.init ? traceExpr(*n.init) : std::nullopt;
                    break;
                }
                case StmtKind::AssignLocal: {
                    const auto& n = as<AssignLocalStmt>(st);
                    if (localSrc.count(n.name)) localSrc[n.name] = traceExpr(*n.value);
                    break;
                }
                case StmtKind::FieldSet: {
                    const auto& n = as<FieldSetStmt>(st);
                    const bool selfStore = n.obj->kind == ExprKind::This;
                    if (inCtor && selfStore) break;  // construction, not mutation
                    // Which field? Only array fields matter (rule: post-ctor
                    // stores are legal only for arrays anyway).
                    const std::string key = fieldKeyOf(
                        prog, selfStore ? cls.name : staticClassOf(prog, cls, m, *n.obj), n.field);
                    mutated_.insert(key);
                    ensure(key);
                    if (!selfStore) {
                        markOpen(key);
                        break;
                    }
                    auto src = traceExpr(*n.value);
                    if (!src) {
                        markOpen(key);
                    } else {
                        for (const std::string& s : *src) unite(key, s);
                    }
                    break;
                }
                case StmtKind::If: {
                    const auto& n = as<IfStmt>(st);
                    walk(n.thenB);
                    walk(n.elseB);
                    break;
                }
                case StmtKind::While: walk(as<WhileStmt>(st).body); break;
                case StmtKind::For: walk(as<ForStmt>(st).body); break;
                default: break;
                }
            }
        };
        try {
            walk(m.body);
        } catch (const WjError&) {
            // Ill-typed lint input; the typechecker reports it separately.
        }
    }

    /// Static class of a FieldSet receiver for keying; best effort (falls
    /// back to a per-class private key when untypeable).
    static std::string staticClassOf(const Program& prog, const ClassDecl& cls, const Method& m,
                                     const Expr& obj) {
        try {
            TypeScope scope(prog, &cls, m);
            const Type t = typeOf(scope, obj);
            if (t.isClass()) return t.className();
        } catch (const WjError&) {
        }
        return cls.name;
    }

    std::map<std::string, std::string> parent_;
    std::set<std::string> mutated_;
    std::set<std::string> open_;  // group leaders with untraceable stores
};

// ------------------------------------------------------------------ engine

struct Pending;  // race-walk state, defined below

class Engine {
public:
    Engine(const Program& prog, Result& out, bool lint)
        : prog_(prog), out_(out), lint_(lint) {
        groups_.build(prog);
        effects_ = computeEffects(prog);
        // The SIMD verdict for element loops depends on the data layout the
        // translator will actually emit, so the prover reads the same switch
        // codegen reads (see translate() in jit/codegen.cpp).
        const char* soa = std::getenv("WJ_SOA");
        soaOn_ = soa && *soa && std::string(soa) != "0";
    }

    void runEntry(const Value& receiver, const std::string& method, const std::vector<Value>& args);
    void runLint();

    // -- shared helpers used by the dataflow domain (public for the local
    //    domain struct; everything lives in an anonymous namespace anyway).
    AVal evalExpr(Env& env, const Expr& e);
    void stmtTransfer(Env& env, const Stmt& st, AVal* retJoin, bool* retSet);
    void refineGuard(Env& env, const Expr& cond, bool sense);

private:
    // ---- identity of abstract array allocations
    int rootOf(const void* site) {
        auto it = rootIds_.find(site);
        if (it != rootIds_.end()) return it->second;
        const int id = nextRoot_++;
        rootIds_.emplace(site, id);
        return id;
    }

    AVal unknownOf(const Type& t) {
        AVal v;
        v.type = t;
        if (t.isArray()) v.len = Itv::atLeast(0);
        if (t.isPrim(Prim::Bool)) v.num = Itv::range(0, 1);
        return v;
    }

    // ---- conversion of concrete interpreter values (jit-entry analysis)
    AVal absOfValue(const Value& v, const Type& declared);
    AbsObjPtr absOfObj(const ObjRef& ref);

    /// Re-joins mutated-group array fields of a freshly built object so
    /// every later read already sees the over-approximation (cur/nxt swap).
    void normalizeMutatedFields(const AbsObjPtr& o);

    // ---- context-sensitive interprocedural core
    std::string keyOfAVal(const AVal& v) const;
    AVal analyzeCall(const ClassDecl& owner, const Method& m, const AVal* self,
                     const std::vector<AVal>& args);
    AVal evalNew(Env& env, const NewExpr& n);
    void execCtor(const ClassDecl& cls, const AbsObjPtr& obj, const std::vector<AVal>& args);

    AVal readField(const AVal& obj, const std::string& field);
    const Effects& effectsOf(const Method& m) const;
    AVal evalCall(Env& env, const CallExpr& n);
    AVal evalStaticCall(Env& env, const StaticCallExpr& n);
    AVal evalIntrinsic(Env& env, const IntrinsicExpr& n);
    AVal evalBinary(const BinaryExpr& n, const AVal& l, const AVal& r);

    void recordAccess(const void* site, const AVal& arr, const AVal& idx, bool reachable);

    // ---- loop-parallelization prover (wjrt_parallel_for outlining + lint)
    /// index = k * v + w, where v is the candidate loop variable and w is an
    /// interval covering the iteration-dependent remainder. The fallback for
    /// any expression the structural rules cannot decompose is (k = 0,
    /// w = its node-state interval), which is always sound: the widened
    /// interval covers the value in every iteration, and k = 0 pairs use the
    /// full-footprint overlap test.
    struct LinForm {
        int64_t k = 0;
        Itv w = Itv::top();
    };
    void proveLoops(const std::string& label, const Method& m, const Cfg& cfg,
                    const std::vector<Env>& states);
    /// `vectorOnly` switches the prover into the SIMD-legality mode of the
    /// proveVectors pass: verdicts flow to noteVector instead of noteLoop,
    /// accesses must additionally be unit-stride, and the alias pairs widen
    /// to every may-aliasing written/other pair (restrict soundness).
    ParVerdict proveLoop(const std::string& label, const ForStmt& fs, const Cfg& cfg,
                         const std::vector<Env>& states, bool vectorOnly = false);
    bool ctorAllowsParallel(const ClassDecl* cls);
    void noteLoop(const ForStmt* fs, const std::string& label, ParVerdict v, std::string reason,
                  std::vector<std::pair<std::string, std::string>> pairs,
                  std::vector<Reduction> reds = {});
    void noteVector(const ForStmt* fs, const std::string& label, VecVerdict v,
                    std::string reason, std::vector<std::pair<std::string, std::string>> pairs,
                    std::vector<Reduction> reds = {}, bool exact = true,
                    std::vector<std::string> soaClasses = {});
    void finishParallelReport();
    void finishVectorReport();
    void finishLayoutReport();

    // ---- communication race walk (structural, per unique method body)
    void raceWalk(const Method& m, Env env);
    void raceBlock(Env& env, const Block& b, std::vector<Pending>& p);
    void raceStmt(Env& env, const Stmt& st, std::vector<Pending>& p);
    void raceExpr(Env& env, const Expr& e, std::vector<Pending>& p);
    void checkWrite(const std::vector<Pending>& p, const std::set<int>& roots, const Itv& region,
                    const void* wsite, const std::string& what);

    std::string where() const {
        return whereStack_.empty() ? std::string("?") : whereStack_.back();
    }

    const Program& prog_;
    Result& out_;
    bool lint_;
    bool soaOn_ = false;  ///< WJ_SOA=1: the translator will split Inline classes
    FieldGroups groups_;
    std::map<const Method*, Effects> effects_;

    std::map<const void*, int> rootIds_;
    int nextRoot_ = 1;
    std::map<const Obj*, AbsObjPtr> absMemo_;
    std::map<std::string, AbsObjPtr> newMemo_;
    std::map<std::string, AVal> callMemo_;
    std::set<std::string> inProgress_;
    int depth_ = 0;

    std::set<const Method*> daDone_;
    std::set<const Method*> raceDone_;
    std::set<std::pair<const void*, const void*>> raceReported_;
    std::set<const void*> oobReported_;
    std::set<const void*> loopWarned_;
    std::vector<std::string> whereStack_;

    std::map<const ClassDecl*, bool> ctorParOk_;
    std::vector<const void*> loopOrder_;            ///< report order (first proof)
    std::map<const void*, std::string> loopLabel_;  ///< "Cls.method: for (v)"
    std::vector<const void*> vecOrder_;             ///< vector-report order
    std::map<const void*, std::string> vecLabel_;

    friend struct IntervalDomain;
};

AVal Engine::absOfValue(const Value& v, const Type& declared) {
    if (v.isBool()) {
        AVal r = unknownOf(Type::boolean());
        r.num = Itv::of(v.asBool() ? 1 : 0);
        return r;
    }
    if (v.isI32()) {
        AVal r = unknownOf(Type::i32());
        r.num = Itv::of(v.asI32());
        return r;
    }
    if (v.isI64()) {
        AVal r = unknownOf(Type::i64());
        r.num = Itv::of(v.asI64());
        return r;
    }
    if (v.isF32()) return unknownOf(Type::f32());
    if (v.isF64()) return unknownOf(Type::f64());
    if (v.isArr()) {
        const ArrRef& a = v.asArr();
        if (!a) return unknownOf(declared);
        AVal r;
        r.type = Type::array(a->elem);
        r.len = Itv::of(static_cast<int64_t>(a->data.size()));
        r.roots = {rootOf(a.get())};
        return r;
    }
    if (v.isObj()) {
        const ObjRef& o = v.asObj();
        if (!o) return unknownOf(declared);
        AVal r;
        r.type = Type::cls(o->cls->name);
        r.objs = {absOfObj(o)};
        return r;
    }
    return unknownOf(declared);
}

AbsObjPtr Engine::absOfObj(const ObjRef& ref) {
    auto it = absMemo_.find(ref.get());
    if (it != absMemo_.end()) return it->second;
    AbsObjPtr o = std::make_shared<AbsObj>();
    o->cls = ref->cls;
    absMemo_.emplace(ref.get(), o);  // insert first: object graphs may be cyclic
    for (const auto& [name, val] : ref->fields) {
        const Field* fd = prog_.resolveField(ref->cls->name, name);
        const Type declared = fd ? fd->type : Type::voidTy();
        o->fields.emplace(name, absOfValue(val, declared));
    }
    normalizeMutatedFields(o);
    return o;
}

void Engine::normalizeMutatedFields(const AbsObjPtr& o) {
    if (!o->cls) return;
    for (const Field* fd : prog_.allFields(o->cls->name)) {
        if (!fd->type.isArray()) continue;
        const std::string key = fieldKeyOf(prog_, o->cls->name, fd->name);
        if (!groups_.isMutated(key)) continue;
        if (groups_.isOpen(key)) {
            o->fields[fd->name] = unknownOf(fd->type);
            continue;
        }
        // Closed group: join this object's values across all member fields
        // this object actually has, then assign the join to each of them.
        AVal joined;
        bool first = true;
        std::vector<std::string> members;
        for (const std::string& k : groups_.groupOf(key)) {
            const std::string fname = k.substr(k.find('.') + 1);
            auto fit = o->fields.find(fname);
            if (fit == o->fields.end()) continue;
            members.push_back(fname);
            if (first) {
                joined = fit->second;
                first = false;
            } else {
                joinAVal(joined, fit->second);
            }
        }
        for (const std::string& fname : members) o->fields[fname] = joined;
    }
}

AVal Engine::readField(const AVal& obj, const std::string& field) {
    std::string scls;
    if (!obj.objs.empty()) {
        scls = obj.objs[0]->cls->name;
    } else if (obj.type.isClass()) {
        scls = obj.type.className();
    }
    const Field* fd = scls.empty() ? nullptr : prog_.resolveField(scls, field);
    const Type ft = fd ? fd->type : Type::voidTy();
    if (obj.objs.empty()) return unknownOf(ft);
    AVal r;
    bool first = true;
    for (const AbsObjPtr& o : obj.objs) {
        auto it = o->fields.find(field);
        const AVal v = it != o->fields.end() ? it->second : unknownOf(ft);
        if (first) {
            r = v;
            first = false;
        } else {
            joinAVal(r, v);
        }
    }
    if (r.type.isVoid()) r.type = ft;
    return r;
}

std::string Engine::keyOfAVal(const AVal& v) const {
    std::ostringstream os;
    os << v.type.str() << '/' << v.num.lo << ':' << v.num.hi << '/' << v.len.lo << ':' << v.len.hi
       << "/r";
    for (int r : v.roots) os << r << ',';
    os << "/o";
    for (const AbsObjPtr& o : v.objs) os << o.get() << ',';
    os << "/t" << v.tokens.size();
    return os.str();
}

/// The dataflow client for one method body at one calling context.
struct IntervalDomain {
    Engine& eng;
    const Cfg& cfg;
    Env entryEnv;
    AVal ret;
    bool retSet = false;

    using State = Env;
    State boundary() { return entryEnv; }

    State transfer(int node, State s) {
        if (!s.reach) return s;
        const CfgNode& nd = cfg.nodes[node];
        switch (nd.kind) {
        case CfgNode::Kind::Entry:
        case CfgNode::Kind::Exit: break;
        case CfgNode::Kind::Branch: eng.evalExpr(s, *nd.cond); break;
        case CfgNode::Kind::ForInit: {
            AVal v = eng.evalExpr(s, *nd.forS->init);
            v.type = nd.forS->varType;
            s.vars[nd.forS->var] = std::move(v);
            break;
        }
        case CfgNode::Kind::ForStep: {
            AVal v = eng.evalExpr(s, *nd.forS->step);
            v.type = nd.forS->varType;
            s.vars[nd.forS->var] = std::move(v);
            break;
        }
        case CfgNode::Kind::Stmt: eng.stmtTransfer(s, *nd.stmt, &ret, &retSet); break;
        }
        return s;
    }

    void refine(const CfgEdge& e, State& s) {
        if (e.guard && s.reach) eng.refineGuard(s, *e.guard, e.sense);
    }

    bool join(State& into, const State& from) { return joinEnv(into, from); }
    void widen(State& s, const State& prev) { widenEnv(s, prev); }
};

AVal Engine::analyzeCall(const ClassDecl& owner, const Method& m, const AVal* self,
                         const std::vector<AVal>& args) {
    if (m.isAbstract) return unknownOf(m.ret);

    if (daDone_.insert(&m).second) {
        auto errs = checkDefiniteAssignment(prog_, owner, m, &out_.warnings);
        out_.errors.insert(out_.errors.end(), errs.begin(), errs.end());
    }

    std::ostringstream ks;
    ks << &m << '|';
    if (self) ks << keyOfAVal(*self);
    ks << '|';
    for (const AVal& a : args) ks << keyOfAVal(a) << ';';
    const std::string key = ks.str();

    auto memo = callMemo_.find(key);
    if (memo != callMemo_.end()) return memo->second;
    if (inProgress_.count(key) || depth_ > kMaxInlineDepth) {
        // Recursive context (rule 6 forbids it for @WootinJ code, but lint
        // inputs may contain it) or pathological depth: give up soundly.
        return unknownOf(m.ret);
    }
    inProgress_.insert(key);
    ++depth_;
    whereStack_.push_back(owner.name + "." + m.name);

    Env entry;
    entry.reach = true;
    if (self) entry.vars.emplace("@this", *self);
    for (size_t i = 0; i < m.params.size(); ++i) {
        AVal v = i < args.size() ? args[i] : unknownOf(m.params[i].type);
        if (v.type.isVoid()) v.type = m.params[i].type;
        entry.vars.emplace(m.params[i].name, std::move(v));
    }

    const Cfg cfg = Cfg::build(m);
    IntervalDomain dom{*this, cfg, entry, unknownOf(m.ret), false};
    const auto nodeStates = solve(cfg, dom, Direction::Forward);

    AVal ret = dom.retSet || m.ret.isVoid() ? dom.ret : unknownOf(m.ret);
    if (ret.type.isVoid() && !m.ret.isVoid()) ret.type = m.ret;

    // Race walk: once per unique body, in the first context that reaches it.
    if (effectsOf(m).usesComm() && raceDone_.insert(&m).second) {
        raceWalk(m, entry);
    }

    // Loop-parallelization proof in this context; verdicts join across
    // contexts (memoized contexts were already folded in the first time).
    if (!m.isGlobal) proveLoops(owner.name + "." + m.name, m, cfg, nodeStates);

    whereStack_.pop_back();
    --depth_;
    inProgress_.erase(key);
    callMemo_.emplace(std::move(key), ret);
    return ret;
}

AVal Engine::evalNew(Env& env, const NewExpr& n) {
    std::vector<AVal> args;
    args.reserve(n.args.size());
    for (const auto& a : n.args) args.push_back(evalExpr(env, *a));

    const ClassDecl* cls = prog_.cls(n.cls);
    if (!cls) return unknownOf(Type::cls(n.cls));

    std::ostringstream ks;
    ks << &n << '|';
    for (const AVal& a : args) ks << keyOfAVal(a) << ';';
    const std::string key = ks.str();
    auto memo = newMemo_.find(key);
    if (memo != newMemo_.end()) {
        AVal r;
        r.type = Type::cls(cls->name);
        r.objs = {memo->second};
        return r;
    }

    AbsObjPtr o = std::make_shared<AbsObj>();
    o->cls = cls;
    execCtor(*cls, o, args);
    normalizeMutatedFields(o);
    newMemo_.emplace(std::move(key), o);

    AVal r;
    r.type = Type::cls(cls->name);
    r.objs = {o};
    return r;
}

void Engine::execCtor(const ClassDecl& cls, const AbsObjPtr& obj, const std::vector<AVal>& args) {
    auto allUnknown = [&] {
        obj->fields.clear();
        if (!obj->cls) return;
        for (const Field* fd : prog_.allFields(obj->cls->name)) {
            obj->fields[fd->name] = unknownOf(fd->type);
        }
    };

    if (!cls.ctor) {
        // Implicit no-arg ctor: Java default values. Walk the chain so
        // inherited fields are covered too.
        for (const Field* fd : prog_.allFields(cls.name)) {
            if (obj->fields.count(fd->name)) continue;
            AVal v = unknownOf(fd->type);
            if (fd->type.isPrim() && !fd->type.isFloating()) v.num = Itv::of(0);
            obj->fields[fd->name] = std::move(v);
        }
        return;
    }

    const Method& ctor = *cls.ctor;
    if (daDone_.insert(&ctor).second) {
        auto errs = checkDefiniteAssignment(prog_, cls, ctor, &out_.warnings);
        out_.errors.insert(out_.errors.end(), errs.begin(), errs.end());
    }
    if (depth_ > kMaxInlineDepth) {
        allUnknown();
        return;
    }
    ++depth_;
    whereStack_.push_back(cls.name + ".<init>");

    Env env;
    env.reach = true;
    {
        AVal selfV;
        selfV.type = Type::cls(obj->cls ? obj->cls->name : cls.name);
        selfV.objs = {obj};
        env.vars.emplace("@this", std::move(selfV));
    }
    for (size_t i = 0; i < ctor.params.size(); ++i) {
        AVal v = i < args.size() ? args[i] : unknownOf(ctor.params[i].type);
        if (v.type.isVoid()) v.type = ctor.params[i].type;
        env.vars.emplace(ctor.params[i].name, std::move(v));
    }

    // Abstract ctor execution is straight-line only; any control flow bails
    // to all-unknown fields (none of the paper's library ctors branch).
    bool bailed = false;
    for (const auto& stp : ctor.body) {
        const Stmt& st = *stp;
        if (st.kind == StmtKind::If || st.kind == StmtKind::While || st.kind == StmtKind::For) {
            bailed = true;
            break;
        }
        switch (st.kind) {
        case StmtKind::Decl: {
            const auto& n = as<DeclStmt>(st);
            env.vars[n.name] = n.init ? evalExpr(env, *n.init) : unknownOf(n.type);
            break;
        }
        case StmtKind::AssignLocal: {
            const auto& n = as<AssignLocalStmt>(st);
            env.vars[n.name] = evalExpr(env, *n.value);
            break;
        }
        case StmtKind::FieldSet: {
            const auto& n = as<FieldSetStmt>(st);
            AVal v = evalExpr(env, *n.value);
            if (n.obj->kind == ExprKind::This) {
                obj->fields[n.field] = std::move(v);
            } else {
                evalExpr(env, *n.obj);  // cross-object ctor store: rare; evaluate only
            }
            break;
        }
        case StmtKind::SuperCtor: {
            const auto& n = as<SuperCtorStmt>(st);
            std::vector<AVal> superArgs;
            superArgs.reserve(n.args.size());
            for (const auto& a : n.args) superArgs.push_back(evalExpr(env, *a));
            if (const ClassDecl* sup = cls.superName.empty() ? nullptr : prog_.cls(cls.superName)) {
                execCtor(*sup, obj, superArgs);
            }
            break;
        }
        case StmtKind::ArraySet: {
            const auto& n = as<ArraySetStmt>(st);
            const AVal a = evalExpr(env, *n.arr);
            const AVal i = evalExpr(env, *n.idx);
            evalExpr(env, *n.value);
            recordAccess(&st, a, i, env.reach);
            break;
        }
        case StmtKind::ExprStmt: evalExpr(env, *as<ExprStmt>(st).e); break;
        case StmtKind::Return: break;
        default: break;
        }
        if (st.kind == StmtKind::Return) break;
    }
    if (bailed) allUnknown();

    whereStack_.pop_back();
    --depth_;
}

const Effects& Engine::effectsOf(const Method& m) const {
    static const Effects kNone{};
    auto it = effects_.find(&m);
    return it != effects_.end() ? it->second : kNone;
}

AVal Engine::evalExpr(Env& env, const Expr& e) {
    switch (e.kind) {
    case ExprKind::Const: {
        const auto& n = as<ConstExpr>(e);
        AVal r = unknownOf(n.type);
        if (n.type.isPrim() && !n.type.isFloating()) r.num = Itv::of(n.i);
        return r;
    }
    case ExprKind::Local: {
        const auto& n = as<LocalExpr>(e);
        auto it = env.vars.find(n.name);
        return it != env.vars.end() ? it->second : AVal{};
    }
    case ExprKind::This: {
        auto it = env.vars.find("@this");
        return it != env.vars.end() ? it->second : AVal{};
    }
    case ExprKind::FieldGet: {
        const auto& n = as<FieldGetExpr>(e);
        return readField(evalExpr(env, *n.obj), n.field);
    }
    case ExprKind::StaticGet: {
        const auto& n = as<StaticGetExpr>(e);
        const StaticField* sf = prog_.resolveStatic(n.cls, n.field);
        if (!sf) return AVal{};
        AVal r = unknownOf(sf->type);
        if (sf->type.isPrim() && !sf->type.isFloating()) r.num = Itv::of(sf->i);
        return r;
    }
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        const AVal a = evalExpr(env, *n.arr);
        const AVal i = evalExpr(env, *n.idx);
        recordAccess(&n, a, i, env.reach);
        // Element contents are not tracked.
        return unknownOf(a.type.isArray() ? a.type.elem() : Type::voidTy());
    }
    case ExprKind::ArrayLen: {
        const auto& n = as<ArrayLenExpr>(e);
        const AVal a = evalExpr(env, *n.arr);
        AVal r = unknownOf(Type::i32());
        r.num = a.len.meetGe(0);
        if (r.num.hi > INT32_MAX) r.num.hi = INT32_MAX;  // wj_array.len is int32
        if (r.num.empty()) r.num = Itv::range(0, INT32_MAX);
        return r;
    }
    case ExprKind::Unary: {
        const auto& n = as<UnaryExpr>(e);
        const AVal v = evalExpr(env, *n.e);
        AVal r = unknownOf(v.type);
        if (n.op == UnOp::Neg && v.type.isIntegral()) {
            r.num = v.num.neg();
            if (v.type.isPrim(Prim::I32) && !r.num.fitsI32()) r.num = Itv::top();
        } else if (n.op == UnOp::Not) {
            r.type = Type::boolean();
            if (v.num == Itv::of(0)) {
                r.num = Itv::of(1);
            } else if (v.num == Itv::of(1)) {
                r.num = Itv::of(0);
            } else {
                r.num = Itv::range(0, 1);
            }
        }
        return r;
    }
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        const AVal l = evalExpr(env, *n.l);
        const AVal r = evalExpr(env, *n.r);
        return evalBinary(n, l, r);
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        evalExpr(env, *n.c);
        AVal t = evalExpr(env, *n.t);
        const AVal f = evalExpr(env, *n.f);
        joinAVal(t, f);
        return t;
    }
    case ExprKind::Call: return evalCall(env, as<CallExpr>(e));
    case ExprKind::StaticCall: return evalStaticCall(env, as<StaticCallExpr>(e));
    case ExprKind::New: return evalNew(env, as<NewExpr>(e));
    case ExprKind::NewArray: {
        const auto& n = as<NewArrayExpr>(e);
        const AVal lv = evalExpr(env, *n.len);
        AVal r;
        r.type = Type::array(n.elem);
        r.roots = {rootOf(&n)};
        const Itv len = lv.num.meetGe(0);
        r.len = len.empty() ? Itv::atLeast(0) : len;
        return r;
    }
    case ExprKind::Cast: {
        const auto& n = as<CastExpr>(e);
        AVal v = evalExpr(env, *n.e);
        v.type = n.type;
        if (n.type.isPrim()) {
            v.objs.clear();
            v.roots.clear();
            v.len = Itv::top();
            switch (n.type.prim()) {
            case Prim::I32:
                if (!v.num.fitsI32()) v.num = Itv::top();
                break;
            case Prim::I64: break;  // widening from i32/bool keeps the interval
            case Prim::F32:
            case Prim::F64: v.num = Itv::top(); break;
            case Prim::Bool: break;
            }
        }
        return v;
    }
    case ExprKind::IntrinsicCall: return evalIntrinsic(env, as<IntrinsicExpr>(e));
    }
    return AVal{};
}

AVal Engine::evalBinary(const BinaryExpr& n, const AVal& l, const AVal& r) {
    // Result type: comparisons/logicals are bool; arithmetic follows the
    // wider operand (matches the typechecker's promotion).
    if (isComparison(n.op) || isLogical(n.op)) {
        AVal b = unknownOf(Type::boolean());
        if (l.type.isIntegral() && r.type.isIntegral()) {
            // Decide constant outcomes when the intervals are disjoint.
            const Itv& a = l.num;
            const Itv& c = r.num;
            auto always = [&](bool v) { b.num = Itv::of(v ? 1 : 0); };
            switch (n.op) {
            case BinOp::Lt:
                if (a.hiFinite() && c.loFinite() && a.hi < c.lo) always(true);
                else if (a.loFinite() && c.hiFinite() && a.lo >= c.hi) always(false);
                break;
            case BinOp::Le:
                if (a.hiFinite() && c.loFinite() && a.hi <= c.lo) always(true);
                else if (a.loFinite() && c.hiFinite() && a.lo > c.hi) always(false);
                break;
            case BinOp::Gt:
                if (a.loFinite() && c.hiFinite() && a.lo > c.hi) always(true);
                else if (a.hiFinite() && c.loFinite() && a.hi <= c.lo) always(false);
                break;
            case BinOp::Ge:
                if (a.loFinite() && c.hiFinite() && a.lo >= c.hi) always(true);
                else if (a.hiFinite() && c.loFinite() && a.hi < c.lo) always(false);
                break;
            case BinOp::Eq:
                if (a.isConst() && c.isConst() && a.lo == c.lo) always(true);
                else if ((a.hiFinite() && c.loFinite() && a.hi < c.lo) ||
                         (a.loFinite() && c.hiFinite() && a.lo > c.hi)) always(false);
                break;
            case BinOp::Ne:
                if (a.isConst() && c.isConst() && a.lo == c.lo) always(false);
                else if ((a.hiFinite() && c.loFinite() && a.hi < c.lo) ||
                         (a.loFinite() && c.hiFinite() && a.lo > c.hi)) always(true);
                break;
            default: break;
            }
        }
        return b;
    }

    const Type ty = l.type.isPrim(Prim::I64) || r.type.isPrim(Prim::I64)
                        ? Type::i64()
                        : (l.type.isIntegral() && r.type.isIntegral() ? Type::i32() : l.type);
    AVal out = unknownOf(ty);
    if (!ty.isIntegral()) return out;  // float arithmetic: top

    const Itv& a = l.num;
    const Itv& b = r.num;
    Itv res = Itv::top();
    switch (n.op) {
    case BinOp::Add: res = a.add(b); break;
    case BinOp::Sub: res = a.sub(b); break;
    case BinOp::Mul: res = a.mul(b); break;
    case BinOp::Rem: res = a.rem(b); break;
    case BinOp::Div: {
        // Only when the divisor's sign is definite and excludes zero.
        if (b.loFinite() && b.lo >= 1 && b.hiFinite()) {
            if (a.loFinite() && a.hiFinite()) {
                const int64_t c[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi};
                res = {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
            } else if (a.loFinite() && a.lo >= 0) {
                res = Itv::atLeast(0);
            }
        }
        break;
    }
    case BinOp::BitAnd:
        if (a.loFinite() && a.lo >= 0 && b.loFinite() && b.lo >= 0) {
            res = Itv::range(0, std::min(a.hi, b.hi));
        }
        break;
    default: break;  // shifts, BitOr, BitXor: top
    }

    if (ty.isPrim(Prim::I32)) {
        if (!res.fitsI32()) res = Itv::top();  // C i32 wraps; don't trust partial bounds
    } else if (res != Itv::top()) {
        // i64: a saturated bound computed from fully finite operands means a
        // real overflow happened — the C result wrapped, so give up.
        const bool finiteIn = a.loFinite() && a.hiFinite() && b.loFinite() && b.hiFinite();
        if (finiteIn && (!res.loFinite() || !res.hiFinite())) res = Itv::top();
    }
    out.num = res;
    return out;
}

AVal Engine::evalCall(Env& env, const CallExpr& n) {
    const AVal recv = evalExpr(env, *n.recv);
    std::vector<AVal> args;
    args.reserve(n.args.size());
    for (const auto& a : n.args) args.push_back(evalExpr(env, *a));

    AVal ret;
    bool first = true;
    auto accumulate = [&](const ClassDecl& owner, const Method& m, const AVal* self) {
        const AVal r = analyzeCall(owner, m, self, args);
        if (first) {
            ret = r;
            first = false;
        } else {
            joinAVal(ret, r);
        }
    };

    if (!recv.objs.empty()) {
        // Devirtualized through the points-to set.
        for (const AbsObjPtr& o : recv.objs) {
            const ClassDecl* owner = prog_.methodOwner(o->cls->name, n.method);
            const Method* m = owner ? owner->ownMethod(n.method) : nullptr;
            if (!owner || !m) continue;
            AVal self;
            self.type = Type::cls(o->cls->name);
            self.objs = {o};
            accumulate(*owner, *m, &self);
        }
    } else if (recv.type.isClass()) {
        for (const auto& [owner, m] : resolveVirtual(prog_, recv.type.className(), n.method)) {
            AVal self = unknownOf(Type::cls(owner->name));
            accumulate(*owner, *m, &self);
        }
    }
    if (first) {
        // No resolvable target (interface with no impls, ill-typed input).
        const Method* m =
            recv.type.isClass() ? prog_.resolveMethod(recv.type.className(), n.method) : nullptr;
        return unknownOf(m ? m->ret : Type::voidTy());
    }
    return ret;
}

AVal Engine::evalStaticCall(Env& env, const StaticCallExpr& n) {
    std::vector<AVal> args;
    args.reserve(n.args.size());
    for (const auto& a : n.args) args.push_back(evalExpr(env, *a));
    const ClassDecl* owner = prog_.methodOwner(n.cls, n.method);
    const Method* m = owner ? owner->ownMethod(n.method) : nullptr;
    if (!owner || !m) return AVal{};
    return analyzeCall(*owner, *m, nullptr, args);
}

AVal Engine::evalIntrinsic(Env& env, const IntrinsicExpr& n) {
    std::vector<AVal> args;
    args.reserve(n.args.size());
    for (const auto& a : n.args) args.push_back(evalExpr(env, *a));

    AVal r = unknownOf(intrinsicSig(n.op).ret);
    switch (n.op) {
    case Intrinsic::MpiRank:
    case Intrinsic::CudaThreadIdxX:
    case Intrinsic::CudaThreadIdxY:
    case Intrinsic::CudaThreadIdxZ:
    case Intrinsic::CudaBlockIdxX:
    case Intrinsic::CudaBlockIdxY:
    case Intrinsic::CudaBlockIdxZ: r.num = Itv::atLeast(0); break;
    case Intrinsic::MpiSize:
    case Intrinsic::CudaBlockDimX:
    case Intrinsic::CudaBlockDimY:
    case Intrinsic::CudaBlockDimZ:
    case Intrinsic::CudaGridDimX:
    case Intrinsic::CudaGridDimY:
    case Intrinsic::CudaGridDimZ: r.num = Itv::atLeast(1); break;
    case Intrinsic::MpiIrecvF32:
        r.num = Itv::atLeast(0);
        r.tokens = {&n};
        break;
    case Intrinsic::GpuMallocF32: {
        r.roots = {rootOf(&n)};
        const Itv len = args.empty() ? Itv::atLeast(0) : args[0].num.meetGe(0);
        r.len = len.empty() ? Itv::atLeast(0) : len;
        break;
    }
    case Intrinsic::CudaSharedF32:
        r.roots = {rootOf(&n)};
        r.len = Itv::atLeast(0);
        break;
    default: break;
    }
    return r;
}

void Engine::stmtTransfer(Env& env, const Stmt& st, AVal* retJoin, bool* retSet) {
    switch (st.kind) {
    case StmtKind::Decl: {
        const auto& n = as<DeclStmt>(st);
        env.vars[n.name] = n.init ? evalExpr(env, *n.init) : unknownOf(n.type);
        break;
    }
    case StmtKind::AssignLocal: {
        const auto& n = as<AssignLocalStmt>(st);
        AVal v = evalExpr(env, *n.value);
        auto it = env.vars.find(n.name);
        if (v.type.isVoid() && it != env.vars.end()) v.type = it->second.type;
        env.vars[n.name] = std::move(v);
        break;
    }
    case StmtKind::FieldSet: {
        const auto& n = as<FieldSetStmt>(st);
        evalExpr(env, *n.obj);
        evalExpr(env, *n.value);
        // The store itself is modeled by the mutated-field groups: reads of
        // the field already see the group join, so no strong update here.
        break;
    }
    case StmtKind::ArraySet: {
        const auto& n = as<ArraySetStmt>(st);
        const AVal a = evalExpr(env, *n.arr);
        const AVal i = evalExpr(env, *n.idx);
        evalExpr(env, *n.value);
        recordAccess(&n, a, i, env.reach);
        break;
    }
    case StmtKind::Return: {
        const auto& n = as<ReturnStmt>(st);
        if (n.value) {
            const AVal v = evalExpr(env, *n.value);
            if (retJoin) {
                if (*retSet) {
                    joinAVal(*retJoin, v);
                } else {
                    *retJoin = v;
                    *retSet = true;
                }
            }
        }
        break;
    }
    case StmtKind::ExprStmt: evalExpr(env, *as<ExprStmt>(st).e); break;
    default: break;  // If/While/For are CFG structure; SuperCtor only in ctors
    }
}

void Engine::refineGuard(Env& env, const Expr& cond, bool sense) {
    if (!env.reach) return;
    switch (cond.kind) {
    case ExprKind::Unary: {
        const auto& n = as<UnaryExpr>(cond);
        if (n.op == UnOp::Not) refineGuard(env, *n.e, !sense);
        return;
    }
    case ExprKind::Local: {
        const auto& n = as<LocalExpr>(cond);
        auto it = env.vars.find(n.name);
        if (it == env.vars.end() || !it->second.type.isPrim(Prim::Bool)) return;
        const Itv want = Itv::of(sense ? 1 : 0);
        Itv m = it->second.num;
        m.lo = std::max(m.lo, want.lo);
        m.hi = std::min(m.hi, want.hi);
        if (m.empty()) {
            env.reach = false;
        } else {
            it->second.num = m;
        }
        return;
    }
    case ExprKind::Binary: break;
    default: return;
    }

    const auto& n = as<BinaryExpr>(cond);
    if (n.op == BinOp::LAnd) {
        if (sense) {  // both true
            refineGuard(env, *n.l, true);
            refineGuard(env, *n.r, true);
        }
        return;  // !(a && b) gives no conjunctive fact
    }
    if (n.op == BinOp::LOr) {
        if (!sense) {  // both false
            refineGuard(env, *n.l, false);
            refineGuard(env, *n.r, false);
        }
        return;
    }
    if (!isComparison(n.op)) return;

    // Normalize to the op that holds on this edge.
    BinOp op = n.op;
    if (!sense) {
        switch (n.op) {
        case BinOp::Lt: op = BinOp::Ge; break;
        case BinOp::Le: op = BinOp::Gt; break;
        case BinOp::Gt: op = BinOp::Le; break;
        case BinOp::Ge: op = BinOp::Lt; break;
        case BinOp::Eq: op = BinOp::Ne; break;
        case BinOp::Ne: op = BinOp::Eq; break;
        default: return;
        }
    }

    const AVal lv = evalExpr(env, *n.l);
    const AVal rv = evalExpr(env, *n.r);
    if (!lv.type.isIntegral() || !rv.type.isIntegral()) return;

    auto meet = [&](const Expr& side, int64_t lo, int64_t hi) {
        if (side.kind != ExprKind::Local) return;
        auto it = env.vars.find(as<LocalExpr>(side).name);
        if (it == env.vars.end() || !it->second.type.isIntegral()) return;
        Itv m = it->second.num;
        m.lo = std::max(m.lo, lo);
        m.hi = std::min(m.hi, hi);
        if (m.empty()) {
            env.reach = false;
        } else {
            it->second.num = m;
        }
    };
    const int64_t NI = Itv::kNegInf, PI = Itv::kPosInf;
    auto dec = [](int64_t v) { return v == Itv::kPosInf ? v : v - 1; };
    auto inc = [](int64_t v) { return v == Itv::kNegInf ? v : v + 1; };

    switch (op) {
    case BinOp::Lt:  // l < r
        meet(*n.l, NI, dec(rv.num.hi));
        meet(*n.r, inc(lv.num.lo), PI);
        break;
    case BinOp::Le:
        meet(*n.l, NI, rv.num.hi);
        meet(*n.r, lv.num.lo, PI);
        break;
    case BinOp::Gt:  // l > r
        meet(*n.l, inc(rv.num.lo), PI);
        meet(*n.r, NI, dec(lv.num.hi));
        break;
    case BinOp::Ge:
        meet(*n.l, rv.num.lo, PI);
        meet(*n.r, NI, lv.num.hi);
        break;
    case BinOp::Eq:
        meet(*n.l, rv.num.lo, rv.num.hi);
        meet(*n.r, lv.num.lo, lv.num.hi);
        break;
    case BinOp::Ne:
        // Only useful against a constant at an interval endpoint.
        if (rv.num.isConst()) {
            auto it = n.l->kind == ExprKind::Local ? env.vars.find(as<LocalExpr>(*n.l).name)
                                                  : env.vars.end();
            if (it != env.vars.end() && it->second.type.isIntegral()) {
                Itv& m = it->second.num;
                if (m.lo == rv.num.lo && m.loFinite()) m.lo = inc(m.lo);
                if (m.hi == rv.num.lo && m.hiFinite()) m.hi = dec(m.hi);
                if (m.empty()) env.reach = false;
            }
        }
        break;
    default: break;
    }
}

void Engine::recordAccess(const void* site, const AVal& arr, const AVal& idx, bool reachable) {
    if (!reachable) return;
    const Itv& i = idx.num;
    const Itv& len = arr.len;

    Safety s = Safety::Unknown;
    if (i.loFinite() && i.lo >= 0 && i.hiFinite() && len.loFinite() && i.hi < len.lo) {
        s = Safety::Safe;
    } else if (i.hiFinite() && i.hi < 0) {
        s = Safety::OutOfBounds;
    } else if (i.loFinite() && len.hiFinite() && i.lo >= len.hi) {
        s = Safety::OutOfBounds;
    }

    auto [it, inserted] = out_.accessSafety.emplace(site, s);
    if (!inserted && static_cast<int>(s) > static_cast<int>(it->second)) it->second = s;

    if (s == Safety::OutOfBounds && oobReported_.insert(site).second) {
        out_.errors.push_back({"bounds", where(),
                               "array index " + strItv(i) + " is provably outside length " +
                                   strItv(len)});
    }
}

// ------------------------------------------------------ communication races

/// A posted nonblocking receive whose completion has not been awaited.
struct Pending {
    const void* site = nullptr;   ///< the MpiIrecvF32 expression node
    std::set<int> roots;          ///< buffer allocation sites; empty = unknown
    Itv region = Itv::top();      ///< element range [off, off+n-1] being filled
    bool exact = false;           ///< off and n were compile-time constants
};

namespace {

bool rootsMayIntersect(const std::set<int>& a, const std::set<int>& b) {
    if (a.empty() || b.empty()) return true;  // unknown provenance
    for (int r : a) {
        if (b.count(r)) return true;
    }
    return false;
}

bool regionsMayOverlap(const Itv& a, const Itv& b) {
    if (a.empty() || b.empty()) return false;
    const bool aBelow = a.hiFinite() && b.loFinite() && a.hi < b.lo;
    const bool bBelow = b.hiFinite() && a.loFinite() && b.hi < a.lo;
    return !(aBelow || bBelow);
}

Itv regionOf(const Itv& off, const Itv& n) {
    return {off.lo, Itv::satAdd(off.hi, Itv::satAdd(n.hi, -1))};
}

} // namespace

void Engine::checkWrite(const std::vector<Pending>& p, const std::set<int>& roots,
                        const Itv& region, const void* wsite, const std::string& what) {
    for (const Pending& q : p) {
        if (!rootsMayIntersect(q.roots, roots)) continue;
        if (!regionsMayOverlap(q.region, region)) continue;
        if (!raceReported_.insert({q.site, wsite}).second) continue;
        out_.errors.push_back({"halo-race", where(),
                               what + " may overlap a nonblocking receive still in flight "
                                      "(region " + strItv(q.region) + ")"});
    }
}

void Engine::raceWalk(const Method& m, Env env) {
    std::vector<Pending> pending;
    raceBlock(env, m.body, pending);
    if (!pending.empty()) {
        out_.warnings.push_back({"halo-race", where(),
                                 "nonblocking receive still in flight when the method returns"});
    }
}

void Engine::raceBlock(Env& env, const Block& b, std::vector<Pending>& p) {
    for (const auto& stp : b) {
        raceStmt(env, *stp, p);
        if (stp->kind == StmtKind::Return) break;
    }
}

void Engine::raceStmt(Env& env, const Stmt& st, std::vector<Pending>& p) {
    switch (st.kind) {
    case StmtKind::If: {
        const auto& n = as<IfStmt>(st);
        raceExpr(env, *n.cond, p);
        Env envT = env, envF = env;
        std::vector<Pending> pT = p, pF = p;
        raceBlock(envT, n.thenB, pT);
        raceBlock(envF, n.elseB, pF);
        joinEnv(envT, envF);
        env = std::move(envT);
        // Union of the two outcomes (entries already in pT keep their slot).
        for (const Pending& q : pF) {
            const bool dup = std::any_of(pT.begin(), pT.end(),
                                         [&](const Pending& r) { return r.site == q.site; });
            if (!dup) pT.push_back(q);
        }
        p = std::move(pT);
        break;
    }
    case StmtKind::While:
    case StmtKind::For: {
        // Walk the body twice sequentially: double-buffered halo exchanges
        // rotate their buffer aliases once per iteration, and two passes
        // cover both phases without joining the aliases together. Receives
        // must not stay in flight across an iteration boundary.
        const Block* body;
        const ForStmt* fs = nullptr;
        if (st.kind == StmtKind::For) {
            fs = &as<ForStmt>(st);
            body = &fs->body;
            raceExpr(env, *fs->init, p);
            AVal v = evalExpr(env, *fs->init);
            v.type = fs->varType;
            env.vars[fs->var] = std::move(v);
        } else {
            body = &as<WhileStmt>(st).body;
        }
        const Expr& cond = st.kind == StmtKind::For ? *fs->cond : *as<WhileStmt>(st).cond;

        const Env preEnv = env;
        std::set<const void*> entrySites;
        for (const Pending& q : p) entrySites.insert(q.site);

        for (int iter = 0; iter < 2; ++iter) {
            raceExpr(env, cond, p);
            raceBlock(env, *body, p);
            if (fs) {
                raceExpr(env, *fs->step, p);
                AVal v = evalExpr(env, *fs->step);
                v.type = fs->varType;
                env.vars[fs->var] = std::move(v);
            }
            std::vector<Pending> kept;
            bool leaked = false;
            for (Pending& q : p) {
                if (entrySites.count(q.site)) {
                    kept.push_back(std::move(q));
                } else {
                    leaked = true;
                }
            }
            if (leaked && loopWarned_.insert(&st).second) {
                out_.warnings.push_back(
                    {"halo-race", where(),
                     "nonblocking receive posted in a loop body is still in flight at the "
                     "end of the iteration"});
            }
            p = std::move(kept);
        }
        Env joined = preEnv;
        joinEnv(joined, env);
        env = std::move(joined);
        break;
    }
    case StmtKind::Decl: {
        const auto& n = as<DeclStmt>(st);
        if (n.init) raceExpr(env, *n.init, p);
        break;
    }
    case StmtKind::AssignLocal: raceExpr(env, *as<AssignLocalStmt>(st).value, p); break;
    case StmtKind::FieldSet: {
        const auto& n = as<FieldSetStmt>(st);
        raceExpr(env, *n.obj, p);
        raceExpr(env, *n.value, p);
        break;
    }
    case StmtKind::ArraySet: {
        const auto& n = as<ArraySetStmt>(st);
        raceExpr(env, *n.arr, p);
        raceExpr(env, *n.idx, p);
        raceExpr(env, *n.value, p);
        const AVal a = evalExpr(env, *n.arr);
        const AVal i = evalExpr(env, *n.idx);
        checkWrite(p, a.roots, i.num, &st, "array store");
        break;
    }
    case StmtKind::Return: {
        const auto& n = as<ReturnStmt>(st);
        if (n.value) raceExpr(env, *n.value, p);
        break;
    }
    case StmtKind::ExprStmt: raceExpr(env, *as<ExprStmt>(st).e, p); break;
    default: break;
    }
    // Keep the abstract environment in sync for Decl/Assign (strong update).
    if (st.kind == StmtKind::Decl || st.kind == StmtKind::AssignLocal) {
        stmtTransfer(env, st, nullptr, nullptr);
    }
}

void Engine::raceExpr(Env& env, const Expr& e, std::vector<Pending>& p) {
    switch (e.kind) {
    case ExprKind::Const:
    case ExprKind::Local:
    case ExprKind::This:
    case ExprKind::StaticGet: return;
    case ExprKind::FieldGet: raceExpr(env, *as<FieldGetExpr>(e).obj, p); return;
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        raceExpr(env, *n.arr, p);
        raceExpr(env, *n.idx, p);
        return;  // reads of an in-flight buffer are not flagged (see DESIGN.md)
    }
    case ExprKind::ArrayLen: raceExpr(env, *as<ArrayLenExpr>(e).arr, p); return;
    case ExprKind::Unary: raceExpr(env, *as<UnaryExpr>(e).e, p); return;
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        raceExpr(env, *n.l, p);
        raceExpr(env, *n.r, p);
        return;
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        raceExpr(env, *n.c, p);
        raceExpr(env, *n.t, p);
        raceExpr(env, *n.f, p);
        return;
    }
    case ExprKind::Cast: raceExpr(env, *as<CastExpr>(e).e, p); return;
    case ExprKind::New:
        for (const auto& a : as<NewExpr>(e).args) raceExpr(env, *a, p);
        return;  // rule-compliant ctors neither communicate nor write arrays
    case ExprKind::NewArray: raceExpr(env, *as<NewArrayExpr>(e).len, p); return;
    case ExprKind::IntrinsicCall: {
        const auto& n = as<IntrinsicExpr>(e);
        for (const auto& a : n.args) raceExpr(env, *a, p);
        auto argVal = [&](size_t i) {
            return i < n.args.size() ? evalExpr(env, *n.args[i]) : AVal{};
        };
        switch (n.op) {
        case Intrinsic::MpiIrecvF32: {
            const AVal buf = argVal(0);
            const Itv off = argVal(1).num, cnt = argVal(2).num;
            Pending np;
            np.site = &n;
            np.roots = buf.roots;
            np.region = regionOf(off, cnt);
            np.exact = off.isConst() && cnt.isConst();
            // Two receives into provably the same region of provably the
            // same buffer: flagged outright.
            for (const Pending& q : p) {
                if (q.roots.size() == 1 && np.roots.size() == 1 && q.roots == np.roots &&
                    q.exact && np.exact && regionsMayOverlap(q.region, np.region) &&
                    raceReported_.insert({q.site, np.site}).second) {
                    out_.errors.push_back({"halo-race", where(),
                                           "two nonblocking receives into overlapping region " +
                                               strItv(np.region) + " of the same buffer"});
                }
            }
            p.push_back(std::move(np));
            return;
        }
        case Intrinsic::MpiRecvF32: {
            const AVal buf = argVal(0);
            checkWrite(p, buf.roots, regionOf(argVal(1).num, argVal(2).num), &n,
                       "blocking receive");
            return;
        }
        case Intrinsic::MpiSendRecvF32: {
            const AVal rbuf = argVal(4);
            checkWrite(p, rbuf.roots, regionOf(argVal(5).num, argVal(2).num), &n,
                       "sendrecv receive half");
            return;
        }
        case Intrinsic::MpiBcastF32: {
            const AVal buf = argVal(0);
            checkWrite(p, buf.roots, regionOf(argVal(1).num, argVal(2).num), &n, "broadcast");
            return;
        }
        case Intrinsic::MpiWait: {
            const AVal req = argVal(0);
            if (req.tokens.empty()) {
                p.clear();  // unknown request: assume it completes everything
            } else {
                p.erase(std::remove_if(p.begin(), p.end(),
                                       [&](const Pending& q) { return req.tokens.count(q.site); }),
                        p.end());
            }
            return;
        }
        case Intrinsic::GpuMemcpyD2HF32:
            checkWrite(p, argVal(0).roots, regionOf(Itv::of(0), argVal(2).num), &n,
                       "device-to-host copy");
            return;
        case Intrinsic::GpuMemcpyD2HOffF32:
            checkWrite(p, argVal(0).roots, regionOf(argVal(1).num, argVal(4).num), &n,
                       "device-to-host copy");
            return;
        case Intrinsic::GpuMemcpyH2DF32:
            checkWrite(p, argVal(0).roots, regionOf(Itv::of(0), argVal(2).num), &n,
                       "host-to-device copy");
            return;
        case Intrinsic::GpuMemcpyH2DOffF32:
            checkWrite(p, argVal(0).roots, regionOf(argVal(1).num, argVal(4).num), &n,
                       "host-to-device copy");
            return;
        default: return;
        }
    }
    case ExprKind::Call:
    case ExprKind::StaticCall: {
        const CallExpr* vc = e.kind == ExprKind::Call ? &as<CallExpr>(e) : nullptr;
        const StaticCallExpr* sc = vc ? nullptr : &as<StaticCallExpr>(e);
        AVal recv;
        if (vc) {
            raceExpr(env, *vc->recv, p);
            recv = evalExpr(env, *vc->recv);
        }
        const auto& argExprs = vc ? vc->args : sc->args;
        for (const auto& a : argExprs) raceExpr(env, *a, p);

        std::vector<const Method*> targets;
        if (vc) {
            if (!recv.objs.empty()) {
                for (const AbsObjPtr& o : recv.objs) {
                    if (const Method* m = prog_.resolveMethod(o->cls->name, vc->method)) {
                        targets.push_back(m);
                    }
                }
            } else if (recv.type.isClass()) {
                for (const auto& [owner, m] :
                     resolveVirtual(prog_, recv.type.className(), vc->method)) {
                    (void)owner;
                    targets.push_back(m);
                }
            }
        } else {
            const ClassDecl* owner = prog_.methodOwner(sc->cls, sc->method);
            if (const Method* m = owner ? owner->ownMethod(sc->method) : nullptr) {
                targets.push_back(m);
            }
        }

        for (const Method* m : targets) {
            const Effects& eff = effectsOf(*m);
            for (int j : eff.writesParams) {
                if (j < 0 || static_cast<size_t>(j) >= argExprs.size()) continue;
                const AVal buf = evalExpr(env, *argExprs[j]);
                // Object params: the callee writes arrays *behind* the
                // object; root through its array fields when known.
                std::set<int> roots = buf.roots;
                if (buf.type.isClass()) {
                    roots.clear();
                    bool known = !buf.objs.empty();
                    for (const AbsObjPtr& o : buf.objs) {
                        for (const auto& [fname, fv] : o->fields) {
                            if (!fv.type.isArray()) continue;
                            if (fv.roots.empty()) known = false;
                            roots.insert(fv.roots.begin(), fv.roots.end());
                        }
                    }
                    if (!known) roots.clear();
                }
                checkWrite(p, roots, Itv::top(), &e, "call to " + m->name + " writing argument");
            }
            if (!eff.writesFields.empty()) {
                std::set<int> roots;
                bool known = vc && !recv.objs.empty();
                if (known) {
                    for (const std::string& key : eff.writesFields) {
                        const std::string fname = key.substr(key.find('.') + 1);
                        for (const AbsObjPtr& o : recv.objs) {
                            auto it = o->fields.find(fname);
                            if (it == o->fields.end()) continue;
                            if (it->second.roots.empty()) known = false;
                            roots.insert(it->second.roots.begin(), it->second.roots.end());
                        }
                    }
                }
                if (!known) roots.clear();
                checkWrite(p, roots, Itv::top(), &e, "call to " + m->name + " writing fields");
            }
            if (eff.writesUnknown) {
                checkWrite(p, {}, Itv::top(), &e, "call to " + m->name);
            }
            if (eff.postsIrecv && !eff.waits) {
                out_.warnings.push_back({"halo-race", where(),
                                         "call to " + m->name +
                                             " posts a nonblocking receive it never awaits"});
                Pending np;
                np.site = &e;
                p.push_back(std::move(np));
            } else if (eff.waits) {
                p.clear();  // callee may complete any request
            }
        }
        return;
    }
    }
}

// ------------------------------------------------ loop parallelization

namespace {

/// Syntactic index of one candidate loop body, built in a single recursive
/// walk: the statements/nested-loop pieces whose CFG nodes belong to the
/// body, plus every name (re)bound inside it. `kills` holds names that can
/// never carry a linear form (reassigned, shadow-declared, or nested loop
/// variables); `declCount` finds the shadow declarations.
struct ParBodyIndex {
    std::set<const Stmt*> stmts;
    std::set<const ForStmt*> fors;
    std::set<const Expr*> conds;
    std::set<std::string> defined;
    std::set<std::string> kills;
    std::map<std::string, int> declCount;
};

void indexParBody(const Block& b, ParBodyIndex& ix) {
    for (const auto& stp : b) {
        const Stmt& st = *stp;
        ix.stmts.insert(&st);
        switch (st.kind) {
        case StmtKind::Decl: {
            const auto& n = as<DeclStmt>(st);
            ix.defined.insert(n.name);
            if (++ix.declCount[n.name] > 1) ix.kills.insert(n.name);
            break;
        }
        case StmtKind::AssignLocal:
            ix.kills.insert(as<AssignLocalStmt>(st).name);
            break;
        case StmtKind::If: {
            const auto& n = as<IfStmt>(st);
            ix.conds.insert(n.cond.get());
            indexParBody(n.thenB, ix);
            indexParBody(n.elseB, ix);
            break;
        }
        case StmtKind::While: {
            const auto& n = as<WhileStmt>(st);
            ix.conds.insert(n.cond.get());
            indexParBody(n.body, ix);
            break;
        }
        case StmtKind::For: {
            const auto& n = as<ForStmt>(st);
            ix.fors.insert(&n);
            ix.conds.insert(n.cond.get());
            ix.defined.insert(n.var);
            ix.kills.insert(n.var);
            indexParBody(n.body, ix);
            break;
        }
        default: break;
        }
    }
}

/// Any ArrayGet in the tree? (Loop bounds must not read array elements the
/// body could write — the parallel dispatch evaluates the bound once.)
bool exprReadsArray(const Expr& e) {
    switch (e.kind) {
    case ExprKind::ArrayGet: return true;
    case ExprKind::FieldGet: return exprReadsArray(*as<FieldGetExpr>(e).obj);
    case ExprKind::ArrayLen: return exprReadsArray(*as<ArrayLenExpr>(e).arr);
    case ExprKind::Unary: return exprReadsArray(*as<UnaryExpr>(e).e);
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        return exprReadsArray(*n.l) || exprReadsArray(*n.r);
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        return exprReadsArray(*n.c) || exprReadsArray(*n.t) || exprReadsArray(*n.f);
    }
    case ExprKind::Cast: return exprReadsArray(*as<CastExpr>(e).e);
    default: return false;
    }
}

bool rangesIntersect(int64_t lo1, int64_t hi1, int64_t lo2, int64_t hi2) {
    return lo1 <= hi2 && lo2 <= hi1;
}

// --------------------------------------------------- reduction recognition
//
// Structural matcher for the two sanctioned `acc = acc op f(i)` shapes
// behind ParVerdict::ParallelReduce (see analysis.h):
//
//   Form A:  acc = acc + e;   acc = e + acc;    (likewise for *)
//   Form B:  if (e cmp acc) acc = e;            (min/max; cmp in < <= > >=)
//
// where `acc` is a local declared outside the loop and `e` never reads
// `acc`. Any other write to an outside local remains a refusal, and
// proveLoop audits that `acc` appears nowhere else in the body, so the
// sanctioned updates are the loop's only cross-iteration scalar flow.

struct RedUpdate {
    std::string var;
    RedOp op = RedOp::Add;
    bool accOnLeft = true;  ///< see analysis.h Reduction
    BinOp cmp = BinOp::Lt;  ///< Min/Max only
};

/// Number of `Local(name)` reads in an expression tree.
int countLocalReads(const Expr& e, const std::string& name) {
    switch (e.kind) {
    case ExprKind::Local: return as<LocalExpr>(e).name == name ? 1 : 0;
    case ExprKind::FieldGet: return countLocalReads(*as<FieldGetExpr>(e).obj, name);
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        return countLocalReads(*n.arr, name) + countLocalReads(*n.idx, name);
    }
    case ExprKind::ArrayLen: return countLocalReads(*as<ArrayLenExpr>(e).arr, name);
    case ExprKind::Unary: return countLocalReads(*as<UnaryExpr>(e).e, name);
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        return countLocalReads(*n.l, name) + countLocalReads(*n.r, name);
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        return countLocalReads(*n.c, name) + countLocalReads(*n.t, name) +
               countLocalReads(*n.f, name);
    }
    case ExprKind::Cast: return countLocalReads(*as<CastExpr>(e).e, name);
    case ExprKind::Call: {
        const auto& n = as<CallExpr>(e);
        int c = countLocalReads(*n.recv, name);
        for (const auto& a : n.args) c += countLocalReads(*a, name);
        return c;
    }
    case ExprKind::StaticCall: {
        const auto& n = as<StaticCallExpr>(e);
        int c = 0;
        for (const auto& a : n.args) c += countLocalReads(*a, name);
        return c;
    }
    case ExprKind::New: {
        const auto& n = as<NewExpr>(e);
        int c = 0;
        for (const auto& a : n.args) c += countLocalReads(*a, name);
        return c;
    }
    case ExprKind::NewArray: return countLocalReads(*as<NewArrayExpr>(e).len, name);
    case ExprKind::IntrinsicCall: {
        const auto& n = as<IntrinsicExpr>(e);
        int c = 0;
        for (const auto& a : n.args) c += countLocalReads(*a, name);
        return c;
    }
    default: return 0;  // Const, This, StaticGet
    }
}

int countLocalReadsBlock(const Block& b, const std::string& name);

/// Reads of `name` across every expression of one statement, including
/// nested control flow (the proveLoop read audit).
int countLocalReadsStmt(const Stmt& st, const std::string& name) {
    switch (st.kind) {
    case StmtKind::Decl: {
        const auto& n = as<DeclStmt>(st);
        return n.init ? countLocalReads(*n.init, name) : 0;
    }
    case StmtKind::AssignLocal: return countLocalReads(*as<AssignLocalStmt>(st).value, name);
    case StmtKind::FieldSet: {
        const auto& n = as<FieldSetStmt>(st);
        return countLocalReads(*n.obj, name) + countLocalReads(*n.value, name);
    }
    case StmtKind::ArraySet: {
        const auto& n = as<ArraySetStmt>(st);
        return countLocalReads(*n.arr, name) + countLocalReads(*n.idx, name) +
               countLocalReads(*n.value, name);
    }
    case StmtKind::If: {
        const auto& n = as<IfStmt>(st);
        return countLocalReads(*n.cond, name) + countLocalReadsBlock(n.thenB, name) +
               countLocalReadsBlock(n.elseB, name);
    }
    case StmtKind::While: {
        const auto& n = as<WhileStmt>(st);
        return countLocalReads(*n.cond, name) + countLocalReadsBlock(n.body, name);
    }
    case StmtKind::For: {
        const auto& n = as<ForStmt>(st);
        return countLocalReads(*n.init, name) + countLocalReads(*n.cond, name) +
               countLocalReads(*n.step, name) + countLocalReadsBlock(n.body, name);
    }
    case StmtKind::Return: {
        const auto& n = as<ReturnStmt>(st);
        return n.value ? countLocalReads(*n.value, name) : 0;
    }
    case StmtKind::ExprStmt: return countLocalReads(*as<ExprStmt>(st).e, name);
    case StmtKind::SuperCtor: {
        const auto& n = as<SuperCtorStmt>(st);
        int c = 0;
        for (const auto& a : n.args) c += countLocalReads(*a, name);
        return c;
    }
    }
    return 0;
}

int countLocalReadsBlock(const Block& b, const std::string& name) {
    int c = 0;
    for (const auto& st : b) c += countLocalReadsStmt(*st, name);
    return c;
}

/// One statement rendered on a single line for diagnostics.
std::string stmtOneLine(const Stmt& st) {
    const std::string s = printStmt(st);
    std::string out;
    bool ws = false;
    for (char ch : s) {
        if (ch == '\n' || ch == ' ' || ch == '\t') {
            ws = !out.empty();
            continue;
        }
        if (ws) out += ' ';
        ws = false;
        out += ch;
    }
    return out;
}

const char* redOpName(RedOp op) {
    switch (op) {
    case RedOp::Add: return "+";
    case RedOp::Mul: return "*";
    case RedOp::Min: return "min";
    case RedOp::Max: return "max";
    }
    return "?";
}

/// Form A on one assignment to an outside local.
bool matchFormA(const AssignLocalStmt& n, RedUpdate& u) {
    if (n.value->kind != ExprKind::Binary) return false;
    const auto& b = as<BinaryExpr>(*n.value);
    if (b.op != BinOp::Add && b.op != BinOp::Mul) return false;
    const bool lAcc = b.l->kind == ExprKind::Local && as<LocalExpr>(*b.l).name == n.name;
    const bool rAcc = b.r->kind == ExprKind::Local && as<LocalExpr>(*b.r).name == n.name;
    if (lAcc == rAcc) return false;  // exactly one operand is the accumulator
    if (countLocalReads(lAcc ? *b.r : *b.l, n.name) != 0) return false;
    u.var = n.name;
    u.op = b.op == BinOp::Add ? RedOp::Add : RedOp::Mul;
    u.accOnLeft = lAcc;
    return true;
}

/// Form B on one if-statement; on success `upd` is the sanctioned inner
/// assignment.
bool matchFormB(const IfStmt& n, const ParBodyIndex& ix, const std::string& loopVar,
                const AssignLocalStmt** upd, RedUpdate& u) {
    if (!n.elseB.empty() || n.thenB.size() != 1) return false;
    if (n.thenB[0]->kind != StmtKind::AssignLocal) return false;
    const auto& a = as<AssignLocalStmt>(*n.thenB[0]);
    if (ix.defined.count(a.name) || a.name == loopVar) return false;
    if (n.cond->kind != ExprKind::Binary) return false;
    const auto& c = as<BinaryExpr>(*n.cond);
    if (c.op != BinOp::Lt && c.op != BinOp::Le && c.op != BinOp::Gt && c.op != BinOp::Ge) {
        return false;
    }
    const bool lAcc = c.l->kind == ExprKind::Local && as<LocalExpr>(*c.l).name == a.name;
    const bool rAcc = c.r->kind == ExprKind::Local && as<LocalExpr>(*c.r).name == a.name;
    if (lAcc == rAcc) return false;
    // The compared value must be the stored value, and must not read acc.
    if (printExpr(lAcc ? *c.r : *c.l) != printExpr(*a.value)) return false;
    if (countLocalReads(*a.value, a.name) != 0) return false;
    const bool less = c.op == BinOp::Lt || c.op == BinOp::Le;
    // `acc := e` fires when the comparison holds: `e < acc` keeps the
    // smaller value (Min); `acc < e` keeps the larger (Max).
    u.var = a.name;
    u.op = (lAcc ? !less : less) ? RedOp::Min : RedOp::Max;
    u.accOnLeft = lAcc;
    u.cmp = c.op;
    *upd = &a;
    return true;
}

/// Collects every sanctioned reduction update in `body`, keyed by the
/// update statement. `vars` gets one entry per accumulator in first-update
/// order. Accumulators whose updates mix operators are dropped again —
/// their updates then refuse the loop with the scalar-dependence
/// diagnostic (`acc = (acc + a) * b` split over two statements is an
/// affine recurrence, not a combinable reduction).
void matchRedUpdates(const Block& body, const ParBodyIndex& ix, const std::string& loopVar,
                     std::map<const Stmt*, RedUpdate>& out, std::vector<RedUpdate>& vars) {
    std::vector<std::pair<const Stmt*, RedUpdate>> found;
    std::function<void(const Block&)> walk = [&](const Block& b) {
        for (const auto& stp : b) {
            const Stmt& st = *stp;
            switch (st.kind) {
            case StmtKind::AssignLocal: {
                const auto& n = as<AssignLocalStmt>(st);
                if (ix.defined.count(n.name) || n.name == loopVar) break;
                RedUpdate u;
                if (matchFormA(n, u)) found.emplace_back(&st, std::move(u));
                break;
            }
            case StmtKind::If: {
                const auto& n = as<IfStmt>(st);
                const AssignLocalStmt* upd = nullptr;
                RedUpdate u;
                if (matchFormB(n, ix, loopVar, &upd, u)) {
                    found.emplace_back(upd, std::move(u));
                } else {
                    walk(n.thenB);
                    walk(n.elseB);
                }
                break;
            }
            case StmtKind::While: walk(as<WhileStmt>(st).body); break;
            case StmtKind::For: walk(as<ForStmt>(st).body); break;
            default: break;
            }
        }
    };
    walk(body);

    std::map<std::string, RedOp> opOf;
    std::set<std::string> poisoned;
    for (const auto& [st, u] : found) {
        (void)st;
        auto it = opOf.find(u.var);
        if (it == opOf.end()) {
            opOf.emplace(u.var, u.op);
        } else if (it->second != u.op) {
            poisoned.insert(u.var);
        }
    }
    std::set<std::string> seen;
    for (auto& [st, u] : found) {
        if (poisoned.count(u.var)) continue;
        if (seen.insert(u.var).second) vars.push_back(u);
        out.emplace(st, std::move(u));
    }
}

} // namespace

// Constructors are not covered by the effect summaries (computeEffects
// walks methods only), so `new` inside a parallel body is proven safe
// structurally: the ctor chain must take only primitive parameters and be
// straight-line code that initializes locals and own fields from call-free,
// array-free expressions. That makes every constructed object private to
// its iteration — exactly the wrapper-object pattern (ScalarFloat) the
// translator flattens onto the stack anyway.
bool Engine::ctorAllowsParallel(const ClassDecl* cls) {
    if (!cls) return false;
    auto it = ctorParOk_.find(cls);
    if (it != ctorParOk_.end()) return it->second;
    ctorParOk_[cls] = false;  // refuse cyclic ctor chains while in progress

    std::function<bool(const Expr&)> pure = [&](const Expr& e) -> bool {
        switch (e.kind) {
        case ExprKind::Const:
        case ExprKind::Local:
        case ExprKind::This:
        case ExprKind::StaticGet: return true;
        case ExprKind::FieldGet: return pure(*as<FieldGetExpr>(e).obj);
        case ExprKind::Unary: return pure(*as<UnaryExpr>(e).e);
        case ExprKind::Binary: {
            const auto& n = as<BinaryExpr>(e);
            return pure(*n.l) && pure(*n.r);
        }
        case ExprKind::Cond: {
            const auto& n = as<CondExpr>(e);
            return pure(*n.c) && pure(*n.t) && pure(*n.f);
        }
        case ExprKind::Cast: return pure(*as<CastExpr>(e).e);
        case ExprKind::New: {
            const auto& n = as<NewExpr>(e);
            if (!ctorAllowsParallel(prog_.cls(n.cls))) return false;
            for (const auto& a : n.args) {
                if (!pure(*a)) return false;
            }
            return true;
        }
        default: return false;  // calls, intrinsics, array traffic, allocation
        }
    };

    bool ok = true;
    if (cls->ctor) {
        for (const Param& p : cls->ctor->params) ok = ok && p.type.isPrim();
        if (ok) {
            for (const auto& stp : cls->ctor->body) {
                const Stmt& st = *stp;
                switch (st.kind) {
                case StmtKind::Decl: {
                    const auto& n = as<DeclStmt>(st);
                    if (n.init && !pure(*n.init)) ok = false;
                    break;
                }
                case StmtKind::AssignLocal:
                    if (!pure(*as<AssignLocalStmt>(st).value)) ok = false;
                    break;
                case StmtKind::FieldSet: {
                    const auto& n = as<FieldSetStmt>(st);
                    if (n.obj->kind != ExprKind::This || !pure(*n.value)) ok = false;
                    break;
                }
                case StmtKind::SuperCtor: {
                    const auto& n = as<SuperCtorStmt>(st);
                    for (const auto& a : n.args) {
                        if (!pure(*a)) ok = false;
                    }
                    const ClassDecl* sup =
                        cls->superName.empty() ? nullptr : prog_.cls(cls->superName);
                    if (sup && !ctorAllowsParallel(sup)) ok = false;
                    break;
                }
                case StmtKind::Return: break;
                default: ok = false; break;  // control flow, array stores, calls
                }
                if (!ok) break;
            }
        }
    }
    ctorParOk_[cls] = ok;
    return ok;
}

void Engine::noteLoop(const ForStmt* fs, const std::string& label, ParVerdict v,
                      std::string reason, std::vector<std::pair<std::string, std::string>> pairs,
                      std::vector<Reduction> reds) {
    auto it = out_.loopParallel.find(fs);
    if (it == out_.loopParallel.end()) {
        LoopParallel lp;
        lp.verdict = v;
        lp.reason = std::move(reason);
        lp.neqPairs = std::move(pairs);
        lp.reductions = std::move(reds);
        out_.loopParallel.emplace(fs, std::move(lp));
        loopOrder_.push_back(fs);
        loopLabel_.emplace(fs, label + ": for (" + fs->var + ")");
        return;
    }
    // Join with earlier contexts: Serial anywhere poisons the loop; a
    // conditional proof weakens an unconditional one; guard pairs union.
    LoopParallel& lp = it->second;
    if (lp.verdict == ParVerdict::Serial) return;
    if (v == ParVerdict::Serial) {
        lp.verdict = v;
        lp.reason = std::move(reason);
        lp.neqPairs.clear();
        lp.reductions.clear();
        return;
    }
    // A reduction proof joins only with itself. Recognition is structural
    // (same loop, same updates in every context), so a mixed join means a
    // context disagreed about the loop's nature — poison to serial.
    if ((v == ParVerdict::ParallelReduce) != (lp.verdict == ParVerdict::ParallelReduce)) {
        lp.verdict = ParVerdict::Serial;
        lp.reason = "verdict differs across call contexts";
        lp.neqPairs.clear();
        lp.reductions.clear();
        return;
    }
    if (v == ParVerdict::ParallelReduce) return;  // identical structural reductions
    for (auto& pr : pairs) {
        if (std::find(lp.neqPairs.begin(), lp.neqPairs.end(), pr) == lp.neqPairs.end()) {
            lp.neqPairs.push_back(std::move(pr));
        }
    }
    if (v == ParVerdict::CondParallel && lp.verdict == ParVerdict::Parallel) {
        lp.verdict = v;
        lp.reason = std::move(reason);
    }
}

void Engine::finishParallelReport() {
    for (const void* fs : loopOrder_) {
        const LoopParallel& lp = out_.loopParallel.at(fs);
        std::string line = loopLabel_.at(fs) + ": ";
        switch (lp.verdict) {
        case ParVerdict::Parallel: line += "parallel"; break;
        case ParVerdict::CondParallel: line += "parallel (guarded)"; break;
        case ParVerdict::ParallelReduce: line += "parallel (reduction)"; break;
        case ParVerdict::Serial: line += "serial"; break;
        }
        line += " -- " + lp.reason;
        out_.parallelReport.push_back(std::move(line));
    }
}

void Engine::noteVector(const ForStmt* fs, const std::string& label, VecVerdict v,
                        std::string reason,
                        std::vector<std::pair<std::string, std::string>> pairs,
                        std::vector<Reduction> reds, bool exact,
                        std::vector<std::string> soaClasses) {
    auto it = out_.loopVector.find(fs);
    if (it == out_.loopVector.end()) {
        LoopVector lv;
        lv.verdict = v;
        lv.reason = std::move(reason);
        lv.overlapPairs = std::move(pairs);
        lv.reductions = std::move(reds);
        lv.exactReductions = exact;
        lv.soaClasses = std::move(soaClasses);
        out_.loopVector.emplace(fs, std::move(lv));
        vecOrder_.push_back(fs);
        vecLabel_.emplace(fs, label + ": for (" + fs->var + ")");
        return;
    }
    // Join with earlier contexts, mirroring noteLoop: ScalarOnly anywhere
    // poisons the loop; a conditional proof weakens an unconditional one;
    // overlap-pair sets union; exactness is the AND over contexts.
    LoopVector& lv = it->second;
    if (lv.verdict == VecVerdict::ScalarOnly) return;
    if (v == VecVerdict::ScalarOnly) {
        lv.verdict = v;
        lv.reason = std::move(reason);
        lv.overlapPairs.clear();
        lv.reductions.clear();
        lv.soaClasses.clear();
        return;
    }
    // Reduction recognition is structural, so a context disagreeing about
    // whether the loop reduces means the proofs are incomparable — poison.
    if (reds.empty() != lv.reductions.empty()) {
        lv.verdict = VecVerdict::ScalarOnly;
        lv.reason = "verdict differs across call contexts";
        lv.overlapPairs.clear();
        lv.reductions.clear();
        lv.soaClasses.clear();
        return;
    }
    lv.exactReductions = lv.exactReductions && exact;
    for (auto& pr : pairs) {
        if (std::find(lv.overlapPairs.begin(), lv.overlapPairs.end(), pr) ==
            lv.overlapPairs.end()) {
            lv.overlapPairs.push_back(std::move(pr));
        }
    }
    for (auto& sc : soaClasses) {
        if (std::find(lv.soaClasses.begin(), lv.soaClasses.end(), sc) == lv.soaClasses.end()) {
            lv.soaClasses.push_back(std::move(sc));
        }
    }
    if (v == VecVerdict::CondVectorizable && lv.verdict == VecVerdict::Vectorizable) {
        lv.verdict = v;
        lv.reason = std::move(reason);
    }
}

void Engine::finishVectorReport() {
    for (const void* fs : vecOrder_) {
        const LoopVector& lv = out_.loopVector.at(fs);
        std::string line = vecLabel_.at(fs) + ": ";
        switch (lv.verdict) {
        case VecVerdict::Vectorizable: line += "vectorizable"; break;
        case VecVerdict::CondVectorizable: line += "vectorizable (guarded)"; break;
        case VecVerdict::ScalarOnly: line += "scalar"; break;
        }
        line += " -- " + lv.reason;
        out_.vectorReport.push_back(std::move(line));
    }
}

void Engine::finishLayoutReport() {
    for (const auto& [cls, cl] : out_.layoutClasses) {
        std::string line = cls + ": ";
        switch (cl.verdict) {
        case LayoutVerdict::Inline: line += "inline"; break;
        case LayoutVerdict::CondInline: line += "inline (boundary-guarded)"; break;
        case LayoutVerdict::Boxed: line += "boxed"; break;
        }
        line += " -- " + cl.reason;
        out_.layoutReport.push_back(std::move(line));
    }
}

namespace {
/// Does the block contain a loop anywhere (through ifs)? Innermost counted
/// loops — the proveVectors candidates — are exactly the For loops whose
/// bodies answer no.
bool blockHasLoop(const Block& b) {
    for (const auto& stp : b) {
        switch (stp->kind) {
        case StmtKind::For:
        case StmtKind::While: return true;
        case StmtKind::If:
            if (blockHasLoop(as<IfStmt>(*stp).thenB) || blockHasLoop(as<IfStmt>(*stp).elseB)) {
                return true;
            }
            break;
        default: break;
        }
    }
    return false;
}
} // namespace

/// Scans `m`'s body for outermost counted loops and attempts a dependence
/// proof for each. A refused loop's nested loops are tried instead, so a
/// serial driver loop still gets its compute-heavy inner loops outlined.
void Engine::proveLoops(const std::string& label, const Method& m, const Cfg& cfg,
                        const std::vector<Env>& states) {
    std::function<void(const Block&)> scan = [&](const Block& b) {
        for (const auto& stp : b) {
            switch (stp->kind) {
            case StmtKind::For: {
                const auto& fs = as<ForStmt>(*stp);
                if (proveLoop(label, fs, cfg, states) == ParVerdict::Serial) {
                    scan(fs.body);
                }
                break;
            }
            case StmtKind::If:
                scan(as<IfStmt>(*stp).thenB);
                scan(as<IfStmt>(*stp).elseB);
                break;
            case StmtKind::While: scan(as<WhileStmt>(*stp).body); break;
            default: break;
            }
        }
    };
    scan(m.body);

    // The proveVectors pass: SIMD legality for every innermost counted loop,
    // including those nested inside proven-parallel outer loops — their
    // chunk bodies are where the simd codegen consumes the verdicts.
    std::function<void(const Block&)> vscan = [&](const Block& b) {
        for (const auto& stp : b) {
            switch (stp->kind) {
            case StmtKind::For: {
                const auto& fsn = as<ForStmt>(*stp);
                if (blockHasLoop(fsn.body)) vscan(fsn.body);
                else proveLoop(label, fsn, cfg, states, /*vectorOnly=*/true);
                break;
            }
            case StmtKind::If:
                vscan(as<IfStmt>(*stp).thenB);
                vscan(as<IfStmt>(*stp).elseB);
                break;
            case StmtKind::While: vscan(as<WhileStmt>(*stp).body); break;
            default: break;
            }
        }
    };
    vscan(m.body);
}

ParVerdict Engine::proveLoop(const std::string& label, const ForStmt& fs, const Cfg& cfg,
                             const std::vector<Env>& states, bool vectorOnly) {
    auto refuse = [&](std::string why) {
        if (vectorOnly) noteVector(&fs, label, VecVerdict::ScalarOnly, std::move(why), {});
        else noteLoop(&fs, label, ParVerdict::Serial, std::move(why), {});
        return ParVerdict::Serial;
    };

    // ---- candidate shape: `for (v = init; v < bound; v = v + 1)` over an
    //      integral variable — exactly what the forRange/forI32 builders emit.
    if (!fs.varType.isIntegral()) return refuse("loop variable is not integral");
    const auto* condB = fs.cond->kind == ExprKind::Binary ? &as<BinaryExpr>(*fs.cond) : nullptr;
    if (!condB || condB->op != BinOp::Lt || condB->l->kind != ExprKind::Local ||
        as<LocalExpr>(*condB->l).name != fs.var) {
        return refuse("condition is not `" + fs.var + " < bound`");
    }
    const Expr& bound = *condB->r;
    const auto* stepB = fs.step->kind == ExprKind::Binary ? &as<BinaryExpr>(*fs.step) : nullptr;
    const bool unitStep = stepB && stepB->op == BinOp::Add &&
                          stepB->l->kind == ExprKind::Local &&
                          as<LocalExpr>(*stepB->l).name == fs.var &&
                          stepB->r->kind == ExprKind::Const && as<ConstExpr>(*stepB->r).i == 1;
    if (!unitStep) return refuse("step is not `" + fs.var + " + 1`");

    ParBodyIndex ix;
    indexParBody(fs.body, ix);
    if (ix.defined.count(fs.var)) return refuse("body rebinds the loop variable");

    // Sanctioned reduction updates (`acc = acc op f(i)`; see analysis.h).
    // Updates of outside locals not in this map refuse the loop below.
    std::map<const Stmt*, RedUpdate> redUpd;
    std::vector<RedUpdate> redVars;
    matchRedUpdates(fs.body, ix, fs.var, redUpd, redVars);

    // The bound is hoisted and evaluated once by the parallel dispatch, so
    // it must be effect-free, independent of any name the body assigns
    // (including reduction accumulators), and must not read array elements
    // the body could write.
    if (exprHasEffects(bound) || exprReadsArray(bound)) {
        return refuse("bound is not a pure expression");
    }
    {
        std::vector<std::string> reads;
        collectReads(bound, reads);
        for (const std::string& r : reads) {
            if (r == fs.var || ix.defined.count(r) || ix.kills.count(r)) {
                return refuse("bound depends on values computed in the body");
            }
        }
    }

    // ---- locate this loop's CFG pieces and its pre-loop state
    int initNode = -1;
    std::map<const Stmt*, int> stmtNode;
    std::map<const ForStmt*, int> forInitNode, forStepNode;
    std::map<const Expr*, int> condNode;
    for (size_t i = 0; i < cfg.nodes.size(); ++i) {
        const CfgNode& nd = cfg.nodes[i];
        switch (nd.kind) {
        case CfgNode::Kind::Stmt:
            if (ix.stmts.count(nd.stmt)) stmtNode[nd.stmt] = static_cast<int>(i);
            break;
        case CfgNode::Kind::Branch:
            if (ix.conds.count(nd.cond)) condNode[nd.cond] = static_cast<int>(i);
            break;
        case CfgNode::Kind::ForInit:
            if (nd.forS == &fs) initNode = static_cast<int>(i);
            if (ix.fors.count(nd.forS)) forInitNode[nd.forS] = static_cast<int>(i);
            break;
        case CfgNode::Kind::ForStep:
            if (ix.fors.count(nd.forS)) forStepNode[nd.forS] = static_cast<int>(i);
            break;
        default: break;
        }
    }
    if (initNode < 0 || !states[static_cast<size_t>(initNode)].reach) {
        return refuse("loop is unreachable in this context");
    }

    Env preEnv = states[static_cast<size_t>(initNode)];
    const Itv initV = evalExpr(preEnv, *fs.init).num;
    const Itv boundV = evalExpr(preEnv, bound).num;
    const Itv V{initV.lo, Itv::satAdd(boundV.hi, -1)};
    if (V.empty()) return refuse("trip count is zero in every analyzed execution");
    // Largest possible |i - j| between two iterations; 0 means a single
    // iteration, which cannot carry a dependence.
    const int64_t span =
        (V.lo != Itv::kNegInf && V.hi != Itv::kPosInf) ? V.hi - V.lo : Itv::kPosInf;

    // ---- one pass over the body's CFG nodes in reverse postorder:
    //      legality checks, linear-form building, and access collection,
    //      each against that node's fixed-point IN state.
    std::map<std::string, LinForm> lfMap;
    struct PAcc {
        bool isWrite = false;
        std::string name;     ///< local (or dotted field path) the array flows through
        std::set<int> roots;  ///< abstract allocation roots (may be empty)
        int64_t k = 0;
        Itv w = Itv::top();
        Itv foot = Itv::top();   ///< footprint over the whole iteration space
        std::string idxKey;      ///< canonical syntactic form of the index expr
        bool idxStable = false;  ///< idxKey mentions only the loop var + invariant locals
    };
    std::vector<PAcc> accs;
    std::string why;

    // ---- AoS→SoA layout gate (SIMD mode only; the parallel prover is
    // layout-agnostic). An element access `a[i].f` over a class-element
    // array is struct-strided under AoS — each lane's field loads sit
    // sizeof(struct) bytes apart — so it only vectorizes after the
    // proveLayout split, and only for classes the pass cleared. The classes
    // a verdict leans on are carried in LoopVector::soaClasses so the
    // translator and the verdict can never disagree about the layout.
    std::set<std::string> soaNeeded;
    auto classElemOk = [&](Env& env, const Expr& arrE, bool isWrite) -> bool {
        if (!vectorOnly) return true;
        const Type at = evalExpr(env, arrE).type;
        if (!at.isArray() || !at.elem().isClass()) return true;
        const std::string cls = at.elem().className();
        auto it = out_.layoutClasses.find(cls);
        if (it == out_.layoutClasses.end() || it->second.verdict == LayoutVerdict::Boxed) {
            why = std::string(isWrite ? "stores" : "reads") + " '" + cls +
                  "[]' elements that must stay AoS (" +
                  (it == out_.layoutClasses.end() ? "no layout verdict"
                                                  : "layout: " + it->second.reason) +
                  ")";
            return false;
        }
        soaNeeded.insert(cls);
        return true;
    };
    auto soaJoin = [&]() {
        std::string s;
        bool first = true;
        for (const std::string& c : soaNeeded) {
            if (!first) s += ", ";
            s += "'" + c + "[]'";
            first = false;
        }
        return s;
    };
    auto soaList = [&]() {
        return std::vector<std::string>(soaNeeded.begin(), soaNeeded.end());
    };

    // Linear form of an index expression in the candidate variable. Never
    // fails: the fallback (k = 0, node interval) is sound by construction.
    std::function<LinForm(Env&, const Expr&)> linOf = [&](Env& env, const Expr& e) -> LinForm {
        auto fall = [&]() -> LinForm { return {0, evalExpr(env, e).num}; };
        switch (e.kind) {
        case ExprKind::Const: {
            const auto& n = as<ConstExpr>(e);
            if (n.type.isIntegral()) return {0, Itv::of(n.i)};
            return fall();
        }
        case ExprKind::Local: {
            const std::string& nm = as<LocalExpr>(e).name;
            if (nm == fs.var) return {1, Itv::of(0)};
            auto lf = lfMap.find(nm);
            if (lf != lfMap.end()) return lf->second;
            return fall();
        }
        case ExprKind::Binary: {
            const auto& n = as<BinaryExpr>(e);
            if (n.op == BinOp::Add || n.op == BinOp::Sub) {
                const LinForm l = linOf(env, *n.l);
                const LinForm r = linOf(env, *n.r);
                int64_t k = 0;
                if (__builtin_add_overflow(l.k, n.op == BinOp::Add ? r.k : -r.k, &k)) {
                    return fall();
                }
                return {k, n.op == BinOp::Add ? l.w.add(r.w) : l.w.sub(r.w)};
            }
            if (n.op == BinOp::Mul) {
                LinForm l = linOf(env, *n.l);
                LinForm r = linOf(env, *n.r);
                if (l.k != 0 && r.k == 0 && r.w.isConst()) std::swap(l, r);
                if (l.k == 0 && l.w.isConst() && l.w.lo != Itv::kNegInf) {
                    int64_t k = 0;
                    if (__builtin_mul_overflow(l.w.lo, r.k, &k)) return fall();
                    return {k, r.w.mul(l.w)};
                }
                if (l.k == 0 && r.k == 0) return {0, l.w.mul(r.w)};
                return fall();
            }
            return fall();
        }
        default: return fall();
        }
    };

    // A local name is loop-invariant when the body neither declares nor
    // assigns it; index expressions over only such names (plus the loop var
    // itself) evaluate identically in every iteration up to the k*i term.
    auto invariantLocal = [&](const std::string& nm) {
        return nm != fs.var && !ix.defined.count(nm) && !ix.kills.count(nm);
    };

    // SIMD mode additionally follows arrays reached through a *stable path*
    // of field loads (`this.cur`, `m.data`): the body cannot contain a
    // FieldSet (refused outright) and every callee that writes state is
    // refused too, so the binding named by the path is the same array in
    // every iteration. Returns the canonical dotted path, or "" when the
    // base is not such a chain (non-invariant root, computed receiver).
    std::function<std::string(const Expr&)> stablePath = [&](const Expr& e) -> std::string {
        switch (e.kind) {
        case ExprKind::This: return "this";
        case ExprKind::Local: {
            const std::string& nm = as<LocalExpr>(e).name;
            return invariantLocal(nm) ? nm : "";
        }
        case ExprKind::FieldGet: {
            const auto& n = as<FieldGetExpr>(e);
            const std::string base = stablePath(*n.obj);
            return base.empty() ? "" : base + "." + n.field;
        }
        default: return "";
        }
    };

    // True when `e` is built purely from constants, the loop variable,
    // invariant locals and stable field loads under arithmetic — then
    // printExpr(e) is a faithful cross-iteration key: two accesses with
    // equal keys touch the SAME address in the same iteration, so with
    // stride k != 0 they can never collide across distinct iterations.
    std::function<bool(const Expr&)> idxIsStable = [&](const Expr& e) -> bool {
        switch (e.kind) {
        case ExprKind::Const: return true;
        case ExprKind::Local: {
            const std::string& nm = as<LocalExpr>(e).name;
            return nm == fs.var || invariantLocal(nm);
        }
        case ExprKind::FieldGet: return !stablePath(e).empty();
        case ExprKind::Unary: return idxIsStable(*as<UnaryExpr>(e).e);
        case ExprKind::Binary: {
            const auto& n = as<BinaryExpr>(e);
            return idxIsStable(*n.l) && idxIsStable(*n.r);
        }
        case ExprKind::Cast: return idxIsStable(*as<CastExpr>(e).e);
        default: return false;
        }
    };

    auto fillPAcc = [&](Env& env, PAcc& a, bool isWrite, const std::string& name,
                        const Expr& idx) {
        a.isWrite = isWrite;
        a.name = name;
        const LinForm lf = linOf(env, idx);
        a.k = lf.k;
        a.w = lf.w;
        a.foot = Itv::of(lf.k).mul(V).add(lf.w);
        a.idxKey = printExpr(idx);
        a.idxStable = idxIsStable(idx);
    };

    auto recordPAcc = [&](Env& env, bool isWrite, const std::string& name, const Expr& idx) {
        PAcc a;
        auto vit = env.vars.find(name);
        if (vit != env.vars.end()) a.roots = vit->second.roots;
        fillPAcc(env, a, isWrite, name, idx);
        accs.push_back(std::move(a));
    };

    auto recordPathPAcc = [&](Env& env, bool isWrite, const std::string& path,
                              const Expr& arr, const Expr& idx) {
        PAcc a;
        a.roots = evalExpr(env, arr).roots;  // alias facts come from the abstract heap
        fillPAcc(env, a, isWrite, path, idx);
        accs.push_back(std::move(a));
    };

    // Legality + access collection over one expression tree. Returns false
    // (with `why` set) on the first construct that cannot run off the
    // rank's main thread or whose memory behaviour cannot be bounded.
    std::function<bool(Env&, const Expr&)> checkExpr = [&](Env& env, const Expr& e) -> bool {
        switch (e.kind) {
        case ExprKind::Const:
        case ExprKind::Local:
        case ExprKind::This:
        case ExprKind::StaticGet: return true;
        case ExprKind::FieldGet: return checkExpr(env, *as<FieldGetExpr>(e).obj);
        case ExprKind::ArrayLen: return checkExpr(env, *as<ArrayLenExpr>(e).arr);
        case ExprKind::Unary: return checkExpr(env, *as<UnaryExpr>(e).e);
        case ExprKind::Binary: {
            const auto& n = as<BinaryExpr>(e);
            return checkExpr(env, *n.l) && checkExpr(env, *n.r);
        }
        case ExprKind::Cond: {
            const auto& n = as<CondExpr>(e);
            return checkExpr(env, *n.c) && checkExpr(env, *n.t) && checkExpr(env, *n.f);
        }
        case ExprKind::Cast: return checkExpr(env, *as<CastExpr>(e).e);
        case ExprKind::ArrayGet: {
            const auto& n = as<ArrayGetExpr>(e);
            if (!checkExpr(env, *n.arr) || !checkExpr(env, *n.idx)) return false;
            if (!classElemOk(env, *n.arr, /*isWrite=*/false)) return false;
            if (n.arr->kind == ExprKind::Local) {
                recordPAcc(env, false, as<LocalExpr>(*n.arr).name, *n.idx);
                return true;
            }
            if (vectorOnly) {
                const std::string path = stablePath(*n.arr);
                if (!path.empty()) {
                    recordPathPAcc(env, false, path, *n.arr, *n.idx);
                    return true;
                }
            }
            why = "reads an array through a non-local expression";
            return false;
        }
        case ExprKind::New: {
            const auto& n = as<NewExpr>(e);
            for (const auto& a : n.args) {
                if (!checkExpr(env, *a)) return false;
            }
            if (!ctorAllowsParallel(prog_.cls(n.cls))) {
                why = "constructs '" + n.cls + "', whose constructor is not provably iteration-private";
                return false;
            }
            return true;
        }
        case ExprKind::NewArray:
            why = "allocates an array inside the loop";
            return false;
        case ExprKind::IntrinsicCall: {
            const auto& n = as<IntrinsicExpr>(e);
            for (const auto& a : n.args) {
                if (!checkExpr(env, *a)) return false;
            }
            switch (n.op) {
            case Intrinsic::MathExpF64:
                // sqrt/fabs are correctly rounded in SIMD too; exp is a libm
                // call with no bit-exact vector variant, so the lane body
                // would stay a serialized call anyway.
                if (vectorOnly) {
                    why = std::string("calls intrinsic '") + intrinsicSig(n.op).name +
                          "', which has no bit-exact vector variant";
                    return false;
                }
                return true;
            case Intrinsic::MathSqrtF64:
            case Intrinsic::MathFabsF64:
            case Intrinsic::MathSqrtF32:
            case Intrinsic::RngHashF32: return true;
            default:
                why = std::string("calls intrinsic '") + intrinsicSig(n.op).name +
                      "', which must stay on the rank's main thread";
                return false;
            }
        }
        case ExprKind::Call:
        case ExprKind::StaticCall: {
            const CallExpr* vc = e.kind == ExprKind::Call ? &as<CallExpr>(e) : nullptr;
            const StaticCallExpr* sc = vc ? nullptr : &as<StaticCallExpr>(e);
            AVal recv;
            if (vc) {
                if (!checkExpr(env, *vc->recv)) return false;
                recv = evalExpr(env, *vc->recv);
            }
            const auto& argExprs = vc ? vc->args : sc->args;
            for (const auto& a : argExprs) {
                if (!checkExpr(env, *a)) return false;
            }

            std::vector<const Method*> targets;
            if (vc) {
                if (!recv.objs.empty()) {
                    for (const AbsObjPtr& o : recv.objs) {
                        if (const Method* t = prog_.resolveMethod(o->cls->name, vc->method)) {
                            targets.push_back(t);
                        }
                    }
                } else if (recv.type.isClass()) {
                    for (const auto& [owner, t] :
                         resolveVirtual(prog_, recv.type.className(), vc->method)) {
                        (void)owner;
                        targets.push_back(t);
                    }
                }
            } else {
                const ClassDecl* owner = prog_.methodOwner(sc->cls, sc->method);
                if (const Method* t = owner ? owner->ownMethod(sc->method) : nullptr) {
                    targets.push_back(t);
                }
            }
            const std::string callee = vc ? vc->method : sc->method;
            if (targets.empty()) {
                why = "calls '" + callee + "', which could not be resolved";
                return false;
            }
            for (const Method* t : targets) {
                if (t->isGlobal) {
                    why = "launches kernel '" + t->name + "'";
                    return false;
                }
                const Effects& eff = effectsOf(*t);
                if (!eff.writesParams.empty() || !eff.writesFields.empty() || eff.writesUnknown) {
                    why = "calls '" + t->name + "', which may write shared state";
                    return false;
                }
                if (eff.usesComm() || eff.ckpt) {
                    why = "calls '" + t->name + "', which communicates or checkpoints";
                    return false;
                }
                if (eff.gpu || eff.allocates || eff.frees || eff.prints) {
                    why = "calls '" + t->name + "', which has device/alloc/IO effects";
                    return false;
                }
                for (const Param& p : t->params) {
                    if (p.type.isArray()) {
                        why = "calls '" + t->name + "' with an array parameter";
                        return false;
                    }
                }
                // A read of an array *field* inside the callee escapes the
                // index analysis; any element it reads could be written by a
                // collected store. Scalar field reads are fine.
                for (const std::string& fk : eff.readsFields) {
                    const auto dot = fk.find('.');
                    const Field* fd =
                        prog_.resolveField(fk.substr(0, dot), fk.substr(dot + 1));
                    if (!fd || fd->type.isArray()) {
                        why = "calls '" + t->name + "', which reads array field " + fk;
                        return false;
                    }
                }
            }
            return true;
        }
        }
        return true;
    };

    bool legal = true;
    for (int node : cfg.rpo()) {
        const CfgNode& nd = cfg.nodes[static_cast<size_t>(node)];
        int mapped = -1;
        const ForStmt* innerInit = nullptr;
        const ForStmt* innerStep = nullptr;
        const Expr* branchCond = nullptr;
        const Stmt* bodyStmt = nullptr;
        switch (nd.kind) {
        case CfgNode::Kind::Stmt: {
            auto it = stmtNode.find(nd.stmt);
            if (it != stmtNode.end() && it->second == node) bodyStmt = nd.stmt, mapped = node;
            break;
        }
        case CfgNode::Kind::Branch: {
            auto it = condNode.find(nd.cond);
            if (it != condNode.end() && it->second == node) branchCond = nd.cond, mapped = node;
            break;
        }
        case CfgNode::Kind::ForInit: {
            auto it = forInitNode.find(nd.forS);
            if (it != forInitNode.end() && it->second == node) innerInit = nd.forS, mapped = node;
            break;
        }
        case CfgNode::Kind::ForStep: {
            auto it = forStepNode.find(nd.forS);
            if (it != forStepNode.end() && it->second == node) innerStep = nd.forS, mapped = node;
            break;
        }
        default: break;
        }
        if (mapped < 0) continue;
        if (!states[static_cast<size_t>(node)].reach) continue;  // dead body code
        Env env = states[static_cast<size_t>(node)];

        if (branchCond) {
            legal = checkExpr(env, *branchCond);
        } else if (innerInit) {
            legal = checkExpr(env, *innerInit->init);
        } else if (innerStep) {
            legal = checkExpr(env, *innerStep->step);
        } else {
            const Stmt& st = *bodyStmt;
            switch (st.kind) {
            case StmtKind::Decl: {
                const auto& n = as<DeclStmt>(st);
                legal = !n.init || checkExpr(env, *n.init);
                // Single-assignment integral locals carry a linear form so
                // hoisted index bases (`base = z*plane + y*nx`) stay affine.
                if (legal && n.init && n.type.isIntegral() && !ix.kills.count(n.name)) {
                    lfMap[n.name] = linOf(env, *n.init);
                }
                break;
            }
            case StmtKind::AssignLocal: {
                const auto& n = as<AssignLocalStmt>(st);
                if (!ix.defined.count(n.name)) {
                    if (redUpd.count(&st)) {
                        // Sanctioned reduction update: only the rhs needs
                        // the legality walk here; the accumulator itself is
                        // audited after the walk (type + read count).
                        legal = checkExpr(env, *n.value);
                        break;
                    }
                    why = "updates '" + n.name +
                          "' declared outside the loop (loop-carried scalar dependence): `" +
                          stmtOneLine(st) +
                          "` is not a recognized reduction (acc = acc op f(i) over +, *, "
                          "min, max)";
                    legal = false;
                    break;
                }
                legal = checkExpr(env, *n.value);
                break;
            }
            case StmtKind::ArraySet: {
                const auto& n = as<ArraySetStmt>(st);
                legal = checkExpr(env, *n.arr) && checkExpr(env, *n.idx) &&
                        checkExpr(env, *n.value);
                if (!legal) break;
                if (!classElemOk(env, *n.arr, /*isWrite=*/true)) {
                    legal = false;
                    break;
                }
                if (n.arr->kind == ExprKind::Local) {
                    recordPAcc(env, true, as<LocalExpr>(*n.arr).name, *n.idx);
                    break;
                }
                if (vectorOnly) {
                    const std::string path = stablePath(*n.arr);
                    if (!path.empty()) {
                        recordPathPAcc(env, true, path, *n.arr, *n.idx);
                        break;
                    }
                }
                why = "stores to an array through a non-local expression";
                legal = false;
                break;
            }
            case StmtKind::FieldSet:
                why = "stores to an object field";
                legal = false;
                break;
            case StmtKind::Return:
                why = "returns from inside the loop";
                legal = false;
                break;
            case StmtKind::ExprStmt: legal = checkExpr(env, *as<ExprStmt>(st).e); break;
            default:
                why = "unsupported statement";
                legal = false;
                break;
            }
        }
        if (!legal) break;
    }
    if (!legal) return refuse(why.empty() ? "body has unsupported constructs" : why);

    // A tiny outer trip count cannot amortize a parallel dispatch over
    // nested loops; refuse it (after legality, so real defects keep their
    // actionable reason) and proveLoops proves the larger inner loops
    // instead of pinning the whole collapse on the outer one.
    if (!vectorOnly && !ix.fors.empty() && span != Itv::kPosInf && span <= 2) {
        return refuse("outer trip count is at most " + std::to_string(span + 1) +
                      " -- collapsed in favor of its inner loops");
    }

    // ---- SIMD stride audit: lanes pack contiguously only when every store
    // walks the array at unit stride; reads may additionally be loop-
    // invariant (a broadcast). Anything else names the offending access.
    if (vectorOnly) {
        for (const PAcc& a : accs) {
            if (a.k == 1) continue;
            if (a.k == 0 && !a.isWrite) continue;
            return refuse(std::string(a.isWrite ? "store to '" : "read of '") + a.name +
                          "' is not unit-stride in '" + fs.var + "' (stride " +
                          std::to_string(a.k) + ")");
        }
    }

    // ---- reduction audit. Each sanctioned update contributes exactly one
    // read of its accumulator (Form A: the binop operand; Form B: the
    // comparison operand), so the body-wide read count must equal the
    // update count — a mismatch means the accumulator's running value
    // leaks into the body somewhere else, which chunked partials cannot
    // reproduce. The accumulator must be a float/double/long local live
    // before the loop (i32 wrap-around under reassociation is excluded).
    std::vector<Reduction> reds;
    for (const RedUpdate& u : redVars) {
        int sanctioned = 0;
        for (const auto& kv : redUpd) {
            if (kv.second.var == u.var) ++sanctioned;
        }
        if (countLocalReadsBlock(fs.body, u.var) != sanctioned) {
            return refuse("'" + u.var +
                          "' is read outside its reduction update (loop-carried scalar "
                          "dependence)");
        }
        auto vit = preEnv.vars.find(u.var);
        const Type accT = vit == preEnv.vars.end() ? Type::voidTy() : vit->second.type;
        if (!accT.isPrim(Prim::F32) && !accT.isPrim(Prim::F64) && !accT.isPrim(Prim::I64)) {
            return refuse("reduction accumulator '" + u.var + "' has unsupported type '" +
                          (accT.isPrim() ? primName(accT.prim()) : "non-primitive") +
                          "' (supported: long, float, double)");
        }
        Reduction r;
        r.var = u.var;
        r.prim = accT.prim();
        r.op = u.op;
        r.accOnLeft = u.accOnLeft;
        r.cmp = u.cmp;
        reds.push_back(std::move(r));
    }

    // ---- pairwise dependence test over the collected accesses. Two
    // accesses with equal coefficient k collide across iterations i != j
    // exactly when (w2 - w1) can land in ±[|k|, |k|*span]; unequal or
    // unknown coefficients fall back to whole-footprint overlap.
    auto collides = [&](const PAcc& a, const PAcc& b) -> bool {
        if (span <= 0) return false;  // at most one iteration
        // Syntactically identical stable indices address the same element in
        // the same iteration; with a nonzero stride, iterations i != j are
        // then k*(i-j) apart — never a cross-lane collision. This is what
        // lets `cr[i*n+j] = cr[i*n+j] + ...` prove: the interval for the
        // invariant i*n term is wide, but the symbolic difference is 0.
        if (vectorOnly && a.k == b.k && a.k != 0 && a.idxStable && b.idxStable &&
            a.idxKey == b.idxKey) {
            return false;
        }
        if (a.k == b.k) {
            if (a.k == 0) return regionsMayOverlap(a.w, b.w);
            const int64_t mag = a.k < 0 ? Itv::satNeg(a.k) : a.k;
            const int64_t magSpan = Itv::satMul(mag, span);
            const Itv diff = b.w.sub(a.w);
            if (diff.empty()) return false;
            return rangesIntersect(diff.lo, diff.hi, mag, magSpan) ||
                   rangesIntersect(diff.lo, diff.hi, Itv::satNeg(magSpan), Itv::satNeg(mag));
        }
        return regionsMayOverlap(a.foot, b.foot);
    };

    std::set<std::pair<std::string, std::string>> guards;
    for (size_t i = 0; i < accs.size(); ++i) {
        for (size_t j = i; j < accs.size(); ++j) {
            const PAcc& a = accs[i];
            const PAcc& b = accs[j];
            if (!a.isWrite && !b.isWrite) continue;
            if (i == j && !a.isWrite) continue;
            if (a.name == b.name) {
                if (collides(a, b)) {
                    return refuse("accesses to '" + a.name + "' may collide across iterations");
                }
            } else {
                if (!rootsMayIntersect(a.roots, b.roots)) continue;  // provably distinct
                // SIMD mode needs the wider test: hoisting restrict-qualified
                // pointers requires every written array to occupy memory
                // disjoint from every other array it may alias — a same-index
                // store through a second name violates restrict without ever
                // colliding across iterations.
                if (vectorOnly || collides(a, b)) {
                    guards.insert(a.name < b.name ? std::make_pair(a.name, b.name)
                                                  : std::make_pair(b.name, a.name));
                }
            }
        }
    }

    if (!reds.empty()) {
        if (!guards.empty()) {
            return refuse("reduction over '" + reds[0].var +
                          "' would also need alias guards -- unsupported combination");
        }
        std::string desc = "reduction over ";
        bool first = true;
        for (const Reduction& r : reds) {
            if (!first) desc += ", ";
            desc += "'" + r.var + "' (" + redOpName(r.op) + ", " + primName(r.prim) + ")";
            first = false;
        }
        if (vectorOnly) {
            // min/max select one operand bit-for-bit, and i64 +/* wrap mod
            // 2^64 — both exact under any reassociation, so the lanes may
            // carry a simd reduction clause. f32/f64 +/* are inexact: the
            // loop still vectorizes elementwise, but the accumulator stays
            // on the bitwise chunk-serial combine.
            bool exact = true;
            for (const Reduction& r : reds) {
                if ((r.op == RedOp::Add || r.op == RedOp::Mul) && r.prim != Prim::I64) {
                    exact = false;
                }
            }
            desc += exact ? " -- exact under reassociation (simd reduction clause)"
                          : " -- f32/f64 reassociation is inexact; accumulator stays "
                            "chunk-serial";
            if (!soaNeeded.empty()) {
                if (!soaOn_) {
                    return refuse("element accesses through " + soaJoin() +
                                  " are struct-strided under AoS -- vectorizable under --soa "
                                  "(WJ_SOA=1)");
                }
                desc += "; unit-stride via the SoA layout of " + soaJoin();
            }
            noteVector(&fs, label, VecVerdict::Vectorizable, std::move(desc), {},
                       std::move(reds), exact, soaList());
            return ParVerdict::Parallel;
        }
        if (lint_) {
            // Without an entry context the interval/alias facts backing the
            // outlined dispatch are too weak; report the recognition so the
            // lint output stays actionable, but degrade to serial — never
            // to an unsound parallel verdict.
            return refuse(desc + " recognized; parallelized when jitted with an entry context");
        }
        desc += "; per-chunk partials combined in fixed chunk order";
        noteLoop(&fs, label, ParVerdict::ParallelReduce, std::move(desc), {}, std::move(reds));
        return ParVerdict::ParallelReduce;
    }

    if (!guards.empty()) {
        std::vector<std::pair<std::string, std::string>> pairs(guards.begin(), guards.end());
        if (vectorOnly) {
            std::string desc = "lanes are independent provided the data ranges of ";
            bool first = true;
            for (const auto& [a, b] : guards) {
                if (!first) desc += ", ";
                desc += "'" + a + "'/'" + b + "'";
                first = false;
            }
            desc += " are disjoint (runtime overlap guard)";
            if (!soaNeeded.empty()) {
                if (!soaOn_) {
                    return refuse("element accesses through " + soaJoin() +
                                  " are struct-strided under AoS -- vectorizable under --soa "
                                  "(WJ_SOA=1)");
                }
                desc += "; unit-stride via the SoA layout of " + soaJoin();
            }
            noteVector(&fs, label, VecVerdict::CondVectorizable, std::move(desc),
                       std::move(pairs), {}, true, soaList());
            return ParVerdict::CondParallel;
        }
        std::string desc = "iterations are independent provided ";
        bool first = true;
        for (const auto& [a, b] : guards) {
            if (!first) desc += ", ";
            desc += "'" + a + "' != '" + b + "'";
            first = false;
        }
        desc += " (runtime pointer guard)";
        noteLoop(&fs, label, ParVerdict::CondParallel, std::move(desc), std::move(pairs));
        return ParVerdict::CondParallel;
    }
    if (vectorOnly) {
        if (!soaNeeded.empty()) {
            if (!soaOn_) {
                return refuse("element accesses through " + soaJoin() +
                              " are struct-strided under AoS -- vectorizable under --soa "
                              "(WJ_SOA=1)");
            }
            noteVector(&fs, label, VecVerdict::Vectorizable,
                       "unit-stride accesses via the SoA layout of " + soaJoin() +
                       "; no cross-lane dependence",
                       {}, {}, true, soaList());
            return ParVerdict::Parallel;
        }
        noteVector(&fs, label, VecVerdict::Vectorizable,
                   "unit-stride accesses; no cross-lane dependence", {});
        return ParVerdict::Parallel;
    }
    noteLoop(&fs, label, ParVerdict::Parallel, "no loop-carried dependence", {});
    return ParVerdict::Parallel;
}

// ----------------------------------------------------------------- drivers

namespace {

/// Classes whose arrays cross the jit() boundary in the entry's receiver
/// graph or arguments: invoke() marshals those payloads AoS (in fact it
/// refuses non-primitive elements outright), so proveLayout boxes them.
void collectBoundaryClasses(const Value& v, std::set<const Obj*>& seen,
                            std::set<std::string>& out) {
    if (v.isArr()) {
        const ArrRef& a = v.asArr();
        if (!a) return;
        if (a->elem.isClass()) out.insert(a->elem.className());
        if (a->elem.isClass() || a->elem.isArray()) {
            for (const Value& e : a->data) collectBoundaryClasses(e, seen, out);
        }
        return;
    }
    if (v.isObj()) {
        const ObjRef& o = v.asObj();
        if (!o || !seen.insert(o.get()).second) return;
        for (const auto& [name, fv] : o->fields) {
            (void)name;
            collectBoundaryClasses(fv, seen, out);
        }
    }
}

} // namespace

void Engine::runEntry(const Value& receiver, const std::string& method,
                      const std::vector<Value>& args) {
    {
        std::set<const Obj*> seen;
        std::set<std::string> boundary;
        collectBoundaryClasses(receiver, seen, boundary);
        for (const Value& a : args) collectBoundaryClasses(a, seen, boundary);
        out_.layoutClasses = proveLayout(prog_, boundary, /*lint=*/false);
    }
    const AVal self = absOfValue(receiver, Type::voidTy());
    if (self.objs.empty()) return;  // jit() rejects non-object receivers itself
    const std::string clsName = self.objs[0]->cls->name;
    const ClassDecl* owner = prog_.methodOwner(clsName, method);
    const Method* m = owner ? owner->ownMethod(method) : nullptr;
    if (!owner || !m) return;
    std::vector<AVal> argVals;
    argVals.reserve(args.size());
    for (size_t i = 0; i < args.size(); ++i) {
        const Type declared = i < m->params.size() ? m->params[i].type : Type::voidTy();
        argVals.push_back(absOfValue(args[i], declared));
    }
    analyzeCall(*owner, *m, &self, argVals);
    finishParallelReport();
    finishVectorReport();
    finishLayoutReport();
}

void Engine::runLint() {
    out_.layoutClasses = proveLayout(prog_, {}, /*lint=*/true);
    for (const ClassDecl* cls : prog_.classes()) {
        if (cls->isInterface) continue;
        if (cls->ctor && daDone_.insert(cls->ctor.get()).second) {
            auto errs = checkDefiniteAssignment(prog_, *cls, *cls->ctor, &out_.warnings);
            out_.errors.insert(out_.errors.end(), errs.begin(), errs.end());
        }
        for (const auto& m : cls->methods) {
            if (m->isAbstract) continue;
            AVal self = unknownOf(Type::cls(cls->name));
            std::vector<AVal> args;
            args.reserve(m->params.size());
            for (const Param& prm : m->params) {
                AVal v = unknownOf(prm.type);
                // Lint assumption: distinct array parameters do not alias.
                if (prm.type.isArray()) v.roots = {rootOf(&prm)};
                args.push_back(std::move(v));
            }
            try {
                analyzeCall(*cls, *m, m->isStatic ? nullptr : &self, args);
            } catch (const WjError&) {
                // Ill-typed lint input; reported by the typechecker instead.
            }
        }
    }
    finishParallelReport();
    finishVectorReport();
    finishLayoutReport();
}

} // namespace

void Result::require() const {
    if (!errors.empty()) throw AnalysisError(errors);
}

namespace {

void tally(Result& r) {
    r.safeAccesses = 0;
    r.unknownAccesses = 0;
    for (const auto& [site, s] : r.accessSafety) {
        (void)site;
        if (s == Safety::Safe) {
            ++r.safeAccesses;
        } else {
            ++r.unknownAccesses;
        }
    }
}

} // namespace

Result lintProgram(const Program& prog) {
    Result out;
    Engine eng(prog, out, /*lint=*/true);
    eng.runLint();
    tally(out);
    return out;
}

Result analyzeEntry(const Program& prog, const Value& receiver, const std::string& method,
                    const std::vector<Value>& args) {
    Result out;
    Engine eng(prog, out, /*lint=*/false);
    eng.runEntry(receiver, method, args);
    tally(out);
    return out;
}

} // namespace wj::analysis
