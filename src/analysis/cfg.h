// Control-flow graph construction over WJ IR method bodies.
//
// WJ statements are structured (If/While/For only — no goto, break, or
// continue), so the CFG is built by one recursive pass over the stmt tree.
// Loops contribute the only back edges, and every edge out of a Branch node
// carries the branch condition plus the taken sense, which is what lets the
// interval pass assume `i < n` inside a `for (i ...; i < n; ...)` body.
//
// Node granularity: one node per simple statement, plus synthetic nodes for
// the pieces of a For (init assignment, condition, step assignment) so each
// gets its own transfer function.
#pragma once

#include <vector>

#include "ir/ast.h"
#include "ir/decl.h"

namespace wj::analysis {

struct CfgNode {
    enum class Kind {
        Entry,    ///< method entry (parameters assigned)
        Exit,     ///< all returns / fallthrough join here
        Stmt,     ///< a simple statement (`stmt` set)
        Branch,   ///< an If/While/For condition (`cond` set)
        ForInit,  ///< `var = init` of a For (`forS` set)
        ForStep,  ///< `var = step` of a For (`forS` set)
    };
    Kind kind = Kind::Entry;
    const Stmt* stmt = nullptr;
    const Expr* cond = nullptr;
    const ForStmt* forS = nullptr;
    std::vector<int> succ;  ///< outgoing edge indices
    std::vector<int> pred;  ///< incoming edge indices
};

struct CfgEdge {
    int from = -1, to = -1;
    /// Branch condition this edge assumes (null for unconditional edges).
    const Expr* guard = nullptr;
    /// Sense of the assumption: true = condition held, false = it did not.
    bool sense = true;
    /// Loop back edge (target dominates source) — the solver widens here.
    bool backEdge = false;
};

struct Cfg {
    std::vector<CfgNode> nodes;
    std::vector<CfgEdge> edges;
    int entry = 0;
    int exit = 1;

    /// Builds the CFG of `m`'s body (empty body: entry -> exit).
    static Cfg build(const Method& m);

    /// Reverse postorder over forward edges — the efficient worklist seed
    /// for forward analyses (reverse it for backward ones).
    std::vector<int> rpo() const;
};

} // namespace wj::analysis
