// The integer interval lattice used by the bounds/shape analysis.
//
// Values are int64 intervals [lo, hi] where INT64_MIN / INT64_MAX act as
// -inf / +inf. All arithmetic saturates into the sentinels, so a chain of
// transfer functions can never wrap around and "prove" a bound it does not
// have. Because translated WJ arithmetic is C `int32_t` arithmetic (which
// wraps), results of i32 operations that leave the i32 range must be
// widened to top by the caller — see Itv::fitsI32.
#pragma once

#include <algorithm>
#include <cstdint>

namespace wj::analysis {

struct Itv {
    static constexpr int64_t kNegInf = INT64_MIN;
    static constexpr int64_t kPosInf = INT64_MAX;

    int64_t lo = kNegInf;
    int64_t hi = kPosInf;

    static Itv top() { return {}; }
    static Itv of(int64_t v) { return {v, v}; }
    static Itv range(int64_t lo, int64_t hi) { return {lo, hi}; }
    /// [lo, +inf)
    static Itv atLeast(int64_t lo) { return {lo, kPosInf}; }

    bool isTop() const { return lo == kNegInf && hi == kPosInf; }
    bool isConst() const { return lo == hi && lo != kNegInf && lo != kPosInf; }
    bool loFinite() const { return lo != kNegInf; }
    bool hiFinite() const { return hi != kPosInf; }
    bool fitsI32() const {
        return lo >= INT32_MIN && hi <= INT32_MAX && loFinite() && hiFinite();
    }

    bool operator==(const Itv& o) const { return lo == o.lo && hi == o.hi; }
    bool operator!=(const Itv& o) const { return !(*this == o); }

    Itv join(const Itv& o) const { return {std::min(lo, o.lo), std::max(hi, o.hi)}; }

    /// Standard widening: any bound that moved since `prev` goes to infinity.
    Itv widen(const Itv& prev) const {
        return {lo < prev.lo ? kNegInf : lo, hi > prev.hi ? kPosInf : hi};
    }

    /// Meet with `(-inf, v]` / `[v, +inf)`. May produce an empty interval
    /// (lo > hi) — callers treat that as an unreachable branch.
    Itv meetLe(int64_t v) const { return {lo, std::min(hi, v)}; }
    Itv meetGe(int64_t v) const { return {std::max(lo, v), hi}; }
    bool empty() const { return lo > hi; }

    // ---- saturating arithmetic (sentinels behave as infinities)

    static int64_t satAdd(int64_t a, int64_t b) {
        if (a == kNegInf || b == kNegInf) return kNegInf;
        if (a == kPosInf || b == kPosInf) return kPosInf;
        int64_t r;
        if (__builtin_add_overflow(a, b, &r)) return b > 0 ? kPosInf : kNegInf;
        return r;
    }
    static int64_t satNeg(int64_t a) {
        if (a == kNegInf) return kPosInf;
        if (a == kPosInf) return kNegInf;
        return -a;
    }
    static int64_t satMul(int64_t a, int64_t b) {
        if (a == 0 || b == 0) return 0;
        const bool neg = (a < 0) != (b < 0);
        if (a == kNegInf || a == kPosInf || b == kNegInf || b == kPosInf) {
            return neg ? kNegInf : kPosInf;
        }
        int64_t r;
        if (__builtin_mul_overflow(a, b, &r)) return neg ? kNegInf : kPosInf;
        return r;
    }

    Itv add(const Itv& o) const { return {satAdd(lo, o.lo), satAdd(hi, o.hi)}; }
    Itv sub(const Itv& o) const { return {satAdd(lo, satNeg(o.hi)), satAdd(hi, satNeg(o.lo))}; }
    Itv neg() const { return {satNeg(hi), satNeg(lo)}; }

    Itv mul(const Itv& o) const {
        const int64_t c[4] = {satMul(lo, o.lo), satMul(lo, o.hi), satMul(hi, o.lo),
                              satMul(hi, o.hi)};
        return {*std::min_element(c, c + 4), *std::max_element(c, c + 4)};
    }

    /// C truncated remainder `a % m`. Precise only for the common wrap idiom
    /// (a >= 0, m >= 1 with a finite upper bound on |m|): result in
    /// [0, maxM - 1]; otherwise bounded by |m| - 1 when m's magnitude is
    /// known, else top.
    Itv rem(const Itv& m) const {
        const int64_t magHi = std::max(std::llabs(m.lo == kNegInf ? kPosInf : m.lo),
                                       std::llabs(m.hi == kPosInf ? kPosInf : m.hi));
        if (magHi == kPosInf || magHi == 0) return top();
        if (lo >= 0) return {0, magHi - 1};
        return {-(magHi - 1), magHi - 1};
    }
};

} // namespace wj::analysis
