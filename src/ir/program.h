// Program: the class table plus hierarchy queries.
//
// A Program is the unit the rule verifier, interpreter, and JIT operate on —
// the analogue of the set of class files loaded into the JVM. It is built
// once by a ProgramBuilder (which also registers the built-in dim3 and
// CudaConfig classes, Section 3.1) and immutable afterwards, which is what
// lets the JIT treat "leaf class" (no subclasses) as a stable property.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/decl.h"

namespace wj {

class Program {
public:
    /// Built by ProgramBuilder; takes ownership of all class declarations.
    explicit Program(std::vector<std::unique_ptr<ClassDecl>> classes);

    Program(const Program&) = delete;
    Program& operator=(const Program&) = delete;
    Program(Program&&) = default;

    /// Class by name; nullptr if absent.
    const ClassDecl* cls(const std::string& name) const noexcept;

    /// Class by name; throws UsageError if absent.
    const ClassDecl& require(const std::string& name) const;

    /// All classes, in registration order.
    const std::vector<const ClassDecl*>& classes() const noexcept { return order_; }

    /// True if `name` equals `ancestor` or transitively extends/implements it.
    bool isSubtypeOf(const std::string& name, const std::string& ancestor) const;

    /// Is `from` assignable to a variable of type `to`?
    /// Primitives: exact kind match. Arrays: invariant. Classes: subtype.
    bool assignable(const Type& to, const Type& from) const;

    /// Concrete (non-interface, non-abstract-only) classes that are `name`
    /// or subtypes of it.
    std::vector<const ClassDecl*> concreteSubtypes(const std::string& name) const;

    /// True if no other class in the table extends or implements `name`.
    bool isLeaf(const std::string& name) const;

    /// Method lookup: walks `cls` then its superclass chain; interfaces carry
    /// only abstract methods, so resolution on a concrete class never lands
    /// on one. Returns nullptr if not found.
    const Method* resolveMethod(const std::string& cls, const std::string& method) const;

    /// Class in the superclass chain of `cls` (inclusive) that declares
    /// `method`; nullptr if none.
    const ClassDecl* methodOwner(const std::string& cls, const std::string& method) const;

    /// Field lookup across the superclass chain (fields live on classes, not
    /// interfaces). Returns nullptr if not found.
    const Field* resolveField(const std::string& cls, const std::string& field) const;

    /// All fields of `cls` in layout order: superclass fields first, then own.
    std::vector<const Field*> allFields(const std::string& cls) const;

    /// Static field lookup on exactly `cls`.
    const StaticField* resolveStatic(const std::string& cls, const std::string& field) const;

    /// Structural well-formedness: supers exist, no inheritance cycles, field
    /// and method types name known classes, interface methods abstract,
    /// abstract methods of supers are implemented in concrete classes.
    /// Throws UsageError on the first problem. Called by ProgramBuilder.
    void validate() const;

    /// Names of the built-in classes every program carries.
    static const char* dim3Class() noexcept { return "dim3"; }
    static const char* cudaConfigClass() noexcept { return "CudaConfig"; }

private:
    void checkTypeKnown(const Type& t, const std::string& where) const;

    std::map<std::string, std::unique_ptr<ClassDecl>> byName_;
    std::vector<const ClassDecl*> order_;
};

} // namespace wj
