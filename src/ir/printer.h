// Pretty-printer for WJ IR — renders programs in a Java-like surface syntax.
// Used by tests (golden comparisons), by error messages, and for inspecting
// the class libraries the way the paper's listings show them.
#pragma once

#include <string>

#include "ir/program.h"

namespace wj {

std::string printExpr(const Expr& e);
std::string printStmt(const Stmt& s, int indent = 0);
std::string printMethod(const Method& m, int indent = 0,
                        const std::string& ctorName = "<init>");
std::string printClass(const ClassDecl& c);
std::string printProgram(const Program& p);

} // namespace wj
