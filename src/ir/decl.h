// WJ IR declarations: fields, methods, classes.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/ast.h"
#include "ir/type.h"

namespace wj {

/// An instance field.
struct Field {
    std::string name;
    Type type;
    bool isShared = false;  ///< @Shared (CUDA block-shared memory)
};

/// A static field. Coding rule 5: static fields are final and not arrays, so
/// the value is a compile-time primitive constant carried here directly.
struct StaticField {
    std::string name;
    Type type;    ///< always primitive for rule-compliant programs
    int64_t i = 0;
    double f = 0;
};

struct Param {
    std::string name;
    Type type;
};

/// A method, constructor (`name == "<init>"`), or interface method
/// (`isAbstract`, empty body).
struct Method {
    std::string name;
    std::vector<Param> params;
    Type ret = Type::voidTy();
    Block body;

    bool isAbstract = false;  ///< declared on an interface / abstract class
    bool isStatic = false;
    bool isGlobal = false;    ///< @Global — translated to a CUDA kernel

    bool isCtor() const noexcept { return name == "<init>"; }
};

/// A class or interface declaration.
///
/// `wootinj` marks the class as annotated @WootinJ: it claims to satisfy the
/// coding rules and is eligible for translation. Untranslated host-side
/// classes may set it false; the verifier skips them and the JIT refuses to
/// translate into them.
struct ClassDecl {
    std::string name;
    std::string superName;                 ///< empty means Object
    std::vector<std::string> interfaces;
    bool isInterface = false;
    bool declaredFinal = false;
    bool wootinj = true;

    std::vector<Field> fields;             ///< declared here (not inherited)
    std::vector<StaticField> statics;
    std::unique_ptr<Method> ctor;          ///< null: implicit no-arg ctor
    std::vector<std::unique_ptr<Method>> methods;

    /// Declared (non-inherited) method by name, or nullptr.
    const Method* ownMethod(const std::string& m) const noexcept {
        for (const auto& mm : methods) {
            if (mm->name == m) return mm.get();
        }
        return nullptr;
    }

    /// Declared field by name, or nullptr.
    const Field* ownField(const std::string& f) const noexcept {
        for (const auto& ff : fields) {
            if (ff.name == f) return &ff;
        }
        return nullptr;
    }

    const StaticField* ownStatic(const std::string& f) const noexcept {
        for (const auto& sf : statics) {
            if (sf.name == f) return &sf;
        }
        return nullptr;
    }
};

} // namespace wj
