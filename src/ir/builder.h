// Builder DSL for constructing WJ IR programs.
//
// This layer is WootinC's substitute for `javac`: library and application
// classes are written as fluent builder calls plus expression/statement
// helper functions (namespace wj::dsl). The result is a validated Program.
//
//   ProgramBuilder pb;
//   auto& c = pb.cls("Dif1DSolver").extends("OneDSolver").finalClass();
//   c.method("solve", Type::f32())
//       .param("left", Type::f32())
//       .param("right", Type::f32())
//       .body(blk(ret(mul(cf(0.5f), add(lv("left"), lv("right"))))));
//   Program p = pb.build();
//
// build() registers the built-in dim3 and CudaConfig classes (Section 3.1)
// and runs structural validation.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "ir/program.h"

namespace wj {

class ClassBuilder;

class MethodBuilder {
public:
    MethodBuilder& param(std::string name, Type t);
    MethodBuilder& abstractMethod();
    MethodBuilder& staticMethod();
    /// Marks @Global (CUDA kernel). The first parameter must be a CudaConfig.
    MethodBuilder& global();
    /// Installs the body statements. May be called once.
    MethodBuilder& body(Block b);

private:
    friend class ClassBuilder;
    explicit MethodBuilder(Method& m) : m_(m) {}
    Method& m_;
};

class ClassBuilder {
public:
    ClassBuilder& extends(std::string superName);
    ClassBuilder& implements(std::string interfaceName);
    ClassBuilder& interfaceClass();
    ClassBuilder& finalClass();
    /// Marks the class as NOT annotated @WootinJ (host-only, untranslatable).
    ClassBuilder& notWootinJ();

    ClassBuilder& field(std::string name, Type t);
    /// @Shared array field (CUDA block-shared memory).
    ClassBuilder& sharedField(std::string name, Type t);
    ClassBuilder& staticConstI32(std::string name, int32_t v);
    ClassBuilder& staticConstF64(std::string name, double v);
    /// Generic form (any primitive type; value in `i` or `f` per the type).
    ClassBuilder& staticConst(std::string name, Type t, int64_t i, double f);

    /// Begins the constructor; parameters and body via the returned builder.
    MethodBuilder& ctor();
    /// Begins a method.
    MethodBuilder& method(std::string name, Type ret);

private:
    friend class ProgramBuilder;
    explicit ClassBuilder(ClassDecl& c) : c_(c) {}
    ClassDecl& c_;
    std::deque<MethodBuilder> methodBuilders_;
};

class ProgramBuilder {
public:
    ProgramBuilder();

    /// Starts a new class. The returned builder stays valid until build().
    ClassBuilder& cls(std::string name);

    /// Finalizes: adds builtins, validates, and returns the Program.
    /// The builder must not be reused afterwards.
    Program build();

private:
    void addBuiltins();
    std::vector<std::unique_ptr<ClassDecl>> classes_;
    std::deque<ClassBuilder> classBuilders_;
    bool built_ = false;
};

// --------------------------------------------------------------------------
// Expression / statement construction helpers.
// --------------------------------------------------------------------------
namespace dsl {

// ----- constants
ExprPtr cb(bool v);
ExprPtr ci(int32_t v);
ExprPtr cl(int64_t v);
ExprPtr cf(float v);
ExprPtr cd(double v);

// ----- references
ExprPtr lv(std::string name);                    ///< local / parameter
ExprPtr self();                                  ///< this
ExprPtr getf(ExprPtr obj, std::string field);    ///< obj.field
ExprPtr selff(std::string field);                ///< this.field
ExprPtr sget(std::string cls, std::string field);///< Cls.FIELD
ExprPtr aget(ExprPtr arr, ExprPtr idx);
ExprPtr alen(ExprPtr arr);

// ----- operators
ExprPtr neg(ExprPtr e);
ExprPtr lnot(ExprPtr e);
ExprPtr add(ExprPtr a, ExprPtr b);
ExprPtr sub(ExprPtr a, ExprPtr b);
ExprPtr mul(ExprPtr a, ExprPtr b);
ExprPtr divE(ExprPtr a, ExprPtr b);
ExprPtr rem(ExprPtr a, ExprPtr b);
ExprPtr lt(ExprPtr a, ExprPtr b);
ExprPtr le(ExprPtr a, ExprPtr b);
ExprPtr gt(ExprPtr a, ExprPtr b);
ExprPtr ge(ExprPtr a, ExprPtr b);
ExprPtr eq(ExprPtr a, ExprPtr b);
ExprPtr ne(ExprPtr a, ExprPtr b);
ExprPtr land(ExprPtr a, ExprPtr b);
ExprPtr lor(ExprPtr a, ExprPtr b);
ExprPtr ternary(ExprPtr c, ExprPtr t, ExprPtr f);  ///< forbidden by rule 7; exists for the verifier

// ----- calls / allocation
std::vector<ExprPtr> exprVec();
template <typename... Es>
std::vector<ExprPtr> exprVec(ExprPtr first, Es... rest) {
    std::vector<ExprPtr> v = exprVec(std::move(rest)...);
    v.insert(v.begin(), std::move(first));
    return v;
}

ExprPtr callV(ExprPtr recv, std::string method, std::vector<ExprPtr> args);
template <typename... Es>
ExprPtr call(ExprPtr recv, std::string method, Es... args) {
    return callV(std::move(recv), std::move(method), exprVec(std::move(args)...));
}

ExprPtr scallV(std::string cls, std::string method, std::vector<ExprPtr> args);
template <typename... Es>
ExprPtr scall(std::string cls, std::string method, Es... args) {
    return scallV(std::move(cls), std::move(method), exprVec(std::move(args)...));
}

ExprPtr newObjV(std::string cls, std::vector<ExprPtr> args);
template <typename... Es>
ExprPtr newObj(std::string cls, Es... args) {
    return newObjV(std::move(cls), exprVec(std::move(args)...));
}

ExprPtr newArr(Type elem, ExprPtr len);
ExprPtr cast(Type t, ExprPtr e);

ExprPtr intrV(Intrinsic op, std::vector<ExprPtr> args);
template <typename... Es>
ExprPtr intr(Intrinsic op, Es... args) {
    return intrV(op, exprVec(std::move(args)...));
}

// ----- intrinsic sugar
ExprPtr mpiRank();
ExprPtr mpiSize();
ExprPtr tidxX();
ExprPtr tidxY();
ExprPtr bidxX();
ExprPtr bidxY();
ExprPtr bdimX();
ExprPtr bdimY();
ExprPtr gdimX();
/// new dim3(x, 1, 1)
ExprPtr dim3of(ExprPtr x);
ExprPtr dim3of(ExprPtr x, ExprPtr y);
/// new CudaConfig(grid, block, sharedBytes)
ExprPtr cudaConfig(ExprPtr grid, ExprPtr block, ExprPtr sharedBytes);

// ----- statements
Block blk();
template <typename... Ss>
Block blk(StmtPtr first, Ss... rest) {
    Block b = blk(std::move(rest)...);
    b.insert(b.begin(), std::move(first));
    return b;
}

StmtPtr decl(std::string name, Type t, ExprPtr init);
/// `T name;` — declaration without initializer (primitive/array types only).
StmtPtr declUninit(std::string name, Type t);
StmtPtr assign(std::string name, ExprPtr v);
StmtPtr setf(ExprPtr obj, std::string field, ExprPtr v);
StmtPtr setSelf(std::string field, ExprPtr v);   ///< this.field = v
StmtPtr aset(ExprPtr arr, ExprPtr idx, ExprPtr v);
StmtPtr ifs(ExprPtr cond, Block thenB, Block elseB = {});
StmtPtr whileS(ExprPtr cond, Block body);
/// for (int v = init; cond; v = step) body  — `cond`/`step` see `v` via lv(v).
StmtPtr forI32(std::string var, ExprPtr init, ExprPtr cond, ExprPtr step, Block body);
/// Canonical counted loop: for (int v = lo; v < hi; v = v + 1) body.
StmtPtr forRange(std::string var, ExprPtr lo, ExprPtr hi, Block body);
StmtPtr ret(ExprPtr v);
StmtPtr retVoid();
StmtPtr exprS(ExprPtr e);
StmtPtr superCtorV(std::vector<ExprPtr> args);
template <typename... Es>
StmtPtr superCtor(Es... args) {
    return superCtorV(exprVec(std::move(args)...));
}

} // namespace dsl
} // namespace wj
