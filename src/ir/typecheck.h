// Static type computation and checking for WJ IR.
//
// The rule verifier, the interpreter, and the JIT all need the static type
// of expressions; this module provides a single implementation. Types are
// strict (no implicit numeric widening — conversions must be explicit Cast
// nodes), which mirrors how the paper's translator can rely on declared
// types matching runtime representations exactly.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "ir/program.h"

namespace wj {

/// Lexical scope for typing one method body.
class TypeScope {
public:
    /// Scope for a method or constructor of `cls` (nullptr thisClass for
    /// static methods). Parameters are entered as locals.
    TypeScope(const Program& prog, const ClassDecl* thisClass, const Method& m);

    const Program& prog() const noexcept { return *prog_; }
    const ClassDecl* thisClass() const noexcept { return thisClass_; }
    const Method& method() const noexcept { return *method_; }

    /// Declares a local; throws UsageError on shadowing/duplicates.
    void declare(const std::string& name, const Type& t);
    /// Type of a local/param; throws UsageError if undeclared.
    const Type& lookup(const std::string& name) const;
    bool isDeclared(const std::string& name) const noexcept;
    /// True if `name` is one of the method's parameters (rule 3 checks).
    bool isParam(const std::string& name) const noexcept;

    void push();
    void pop();

private:
    const Program* prog_;
    const ClassDecl* thisClass_;
    const Method* method_;
    std::vector<std::map<std::string, Type>> scopes_;
};

/// Computes the static type of `e` in `scope`; throws UsageError on any
/// type error (unknown names, arity mismatch, non-assignable arguments...).
Type typeOf(TypeScope& scope, const Expr& e);

/// Type-checks one method body completely (statements + expressions,
/// return-type agreement, definite declaration of locals).
void checkMethodBody(const Program& prog, const ClassDecl& cls, const Method& m);

/// Type-checks every method body of every class in the program.
void checkProgramTypes(const Program& prog);

} // namespace wj
