#include "ir/type.h"

#include "support/diagnostics.h"

namespace wj {

const char* primName(Prim p) noexcept {
    switch (p) {
    case Prim::Bool: return "boolean";
    case Prim::I32: return "int";
    case Prim::I64: return "long";
    case Prim::F32: return "float";
    case Prim::F64: return "double";
    }
    return "?";
}

const char* primCName(Prim p) noexcept {
    switch (p) {
    case Prim::Bool: return "int32_t";
    case Prim::I32: return "int32_t";
    case Prim::I64: return "int64_t";
    case Prim::F32: return "float";
    case Prim::F64: return "double";
    }
    return "?";
}

int primSize(Prim p) noexcept {
    switch (p) {
    case Prim::Bool: return 4; // stored as int32 both in arrays and locals
    case Prim::I32: return 4;
    case Prim::I64: return 8;
    case Prim::F32: return 4;
    case Prim::F64: return 8;
    }
    return 0;
}

Type Type::array(const Type& elem) {
    if (elem.isVoid()) throw UsageError("array of void is not a type");
    Type t(Kind::Array);
    t.elem_ = std::make_shared<const Type>(elem);
    return t;
}

Type Type::cls(std::string name) {
    if (name.empty()) throw UsageError("class type requires a name");
    Type t(Kind::Class);
    t.cls_ = std::move(name);
    return t;
}

Prim Type::prim() const {
    if (!isPrim()) throw UsageError("Type::prim() on non-primitive " + str());
    return prim_;
}

const Type& Type::elem() const {
    if (!isArray()) throw UsageError("Type::elem() on non-array " + str());
    return *elem_;
}

const std::string& Type::className() const {
    if (!isClass()) throw UsageError("Type::className() on non-class " + str());
    return cls_;
}

bool Type::operator==(const Type& o) const noexcept {
    if (kind_ != o.kind_) return false;
    switch (kind_) {
    case Kind::Void: return true;
    case Kind::Prim: return prim_ == o.prim_;
    case Kind::Array: return *elem_ == *o.elem_;
    case Kind::Class: return cls_ == o.cls_;
    }
    return false;
}

std::string Type::str() const {
    switch (kind_) {
    case Kind::Void: return "void";
    case Kind::Prim: return primName(prim_);
    case Kind::Array: return elem_->str() + "[]";
    case Kind::Class: return cls_;
    }
    return "?";
}

} // namespace wj
