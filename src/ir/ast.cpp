#include "ir/ast.h"

namespace wj {

bool isComparison(BinOp op) noexcept {
    switch (op) {
    case BinOp::Lt: case BinOp::Le: case BinOp::Gt:
    case BinOp::Ge: case BinOp::Eq: case BinOp::Ne:
        return true;
    default:
        return false;
    }
}

bool isLogical(BinOp op) noexcept {
    return op == BinOp::LAnd || op == BinOp::LOr;
}

const char* binOpName(BinOp op) noexcept {
    switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Rem: return "%";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::LAnd: return "&&";
    case BinOp::LOr: return "||";
    case BinOp::Shl: return "<<";
    case BinOp::Shr: return ">>";
    case BinOp::BitAnd: return "&";
    case BinOp::BitOr: return "|";
    case BinOp::BitXor: return "^";
    }
    return "?";
}

} // namespace wj
