#include "ir/printer.h"

#include "support/diagnostics.h"
#include "support/strings.h"

namespace wj {

namespace {

std::string ind(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

std::string printArgs(const std::vector<ExprPtr>& args) {
    std::vector<std::string> parts;
    parts.reserve(args.size());
    for (const auto& a : args) parts.push_back(printExpr(*a));
    return join(parts, ", ");
}

void printBlock(std::string& out, const Block& b, int indent) {
    for (const auto& s : b) out += printStmt(*s, indent);
}

} // namespace

std::string printExpr(const Expr& e) {
    switch (e.kind) {
    case ExprKind::Const: {
        const auto& n = as<ConstExpr>(e);
        if (n.type.isPrim(Prim::Bool)) return n.i ? "true" : "false";
        if (n.type.isPrim(Prim::I32)) return std::to_string(n.i);
        if (n.type.isPrim(Prim::I64)) return std::to_string(n.i) + "L";
        // Keep floating literals lexically floating ("2" would re-parse as
        // an int): ensure a '.', exponent, or suffix is present.
        auto floaty = [](std::string t) {
            if (t.find_first_of(".eE") == std::string::npos &&
                t.find_first_of("0123456789") != std::string::npos) {
                t += ".0";
            }
            return t;
        };
        if (n.type.isPrim(Prim::F32)) return floaty(format("%g", n.f)) + "f";
        return floaty(format("%g", n.f));
    }
    case ExprKind::Local:
        return as<LocalExpr>(e).name;
    case ExprKind::This:
        return "this";
    case ExprKind::FieldGet: {
        const auto& n = as<FieldGetExpr>(e);
        return printExpr(*n.obj) + "." + n.field;
    }
    case ExprKind::StaticGet: {
        const auto& n = as<StaticGetExpr>(e);
        return n.cls + "." + n.field;
    }
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        return printExpr(*n.arr) + "[" + printExpr(*n.idx) + "]";
    }
    case ExprKind::ArrayLen:
        return printExpr(*as<ArrayLenExpr>(e).arr) + ".length";
    case ExprKind::Unary: {
        const auto& n = as<UnaryExpr>(e);
        return std::string(n.op == UnOp::Neg ? "-" : "!") + "(" + printExpr(*n.e) + ")";
    }
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        return "(" + printExpr(*n.l) + " " + binOpName(n.op) + " " + printExpr(*n.r) + ")";
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        return "(" + printExpr(*n.c) + " ? " + printExpr(*n.t) + " : " + printExpr(*n.f) + ")";
    }
    case ExprKind::Call: {
        const auto& n = as<CallExpr>(e);
        return printExpr(*n.recv) + "." + n.method + "(" + printArgs(n.args) + ")";
    }
    case ExprKind::StaticCall: {
        const auto& n = as<StaticCallExpr>(e);
        return n.cls + "." + n.method + "(" + printArgs(n.args) + ")";
    }
    case ExprKind::New: {
        const auto& n = as<NewExpr>(e);
        return "new " + n.cls + "(" + printArgs(n.args) + ")";
    }
    case ExprKind::NewArray: {
        const auto& n = as<NewArrayExpr>(e);
        return "new " + n.elem.str() + "[" + printExpr(*n.len) + "]";
    }
    case ExprKind::Cast: {
        const auto& n = as<CastExpr>(e);
        return "((" + n.type.str() + ") " + printExpr(*n.e) + ")";
    }
    case ExprKind::IntrinsicCall: {
        const auto& n = as<IntrinsicExpr>(e);
        return std::string(intrinsicSig(n.op).name) + "(" + printArgs(n.args) + ")";
    }
    }
    panic("unreachable expr kind in printer");
}

std::string printStmt(const Stmt& s, int indent) {
    std::string out;
    switch (s.kind) {
    case StmtKind::Decl: {
        const auto& n = as<DeclStmt>(s);
        out = ind(indent) + n.type.str() + " " + n.name +
              (n.init ? " = " + printExpr(*n.init) : "") + ";\n";
        return out;
    }
    case StmtKind::AssignLocal: {
        const auto& n = as<AssignLocalStmt>(s);
        return ind(indent) + n.name + " = " + printExpr(*n.value) + ";\n";
    }
    case StmtKind::FieldSet: {
        const auto& n = as<FieldSetStmt>(s);
        return ind(indent) + printExpr(*n.obj) + "." + n.field + " = " + printExpr(*n.value) + ";\n";
    }
    case StmtKind::ArraySet: {
        const auto& n = as<ArraySetStmt>(s);
        return ind(indent) + printExpr(*n.arr) + "[" + printExpr(*n.idx) + "] = " +
               printExpr(*n.value) + ";\n";
    }
    case StmtKind::If: {
        const auto& n = as<IfStmt>(s);
        out = ind(indent) + "if (" + printExpr(*n.cond) + ") {\n";
        printBlock(out, n.thenB, indent + 1);
        if (!n.elseB.empty()) {
            out += ind(indent) + "} else {\n";
            printBlock(out, n.elseB, indent + 1);
        }
        out += ind(indent) + "}\n";
        return out;
    }
    case StmtKind::While: {
        const auto& n = as<WhileStmt>(s);
        out = ind(indent) + "while (" + printExpr(*n.cond) + ") {\n";
        printBlock(out, n.body, indent + 1);
        out += ind(indent) + "}\n";
        return out;
    }
    case StmtKind::For: {
        const auto& n = as<ForStmt>(s);
        out = ind(indent) + "for (" + n.varType.str() + " " + n.var + " = " + printExpr(*n.init) +
              "; " + printExpr(*n.cond) + "; " + n.var + " = " + printExpr(*n.step) + ") {\n";
        printBlock(out, n.body, indent + 1);
        out += ind(indent) + "}\n";
        return out;
    }
    case StmtKind::Return: {
        const auto& n = as<ReturnStmt>(s);
        return ind(indent) + (n.value ? "return " + printExpr(*n.value) + ";\n" : "return;\n");
    }
    case StmtKind::ExprStmt:
        return ind(indent) + printExpr(*as<ExprStmt>(s).e) + ";\n";
    case StmtKind::SuperCtor: {
        const auto& n = as<SuperCtorStmt>(s);
        return ind(indent) + "super(" + printArgs(n.args) + ");\n";
    }
    }
    panic("unreachable stmt kind in printer");
}

std::string printMethod(const Method& m, int indent, const std::string& ctorName) {
    std::string out = ind(indent);
    if (m.isGlobal) out += "@Global ";
    if (m.isStatic) out += "static ";
    if (m.isAbstract) out += "abstract ";
    // Constructors render Java-style: the class name, no return type.
    out += m.isCtor() ? ctorName : m.ret.str() + " " + m.name;
    out += "(";
    std::vector<std::string> ps;
    ps.reserve(m.params.size());
    for (const auto& p : m.params) ps.push_back(p.type.str() + " " + p.name);
    out += join(ps, ", ") + ")";
    if (m.isAbstract) return out + ";\n";
    out += " {\n";
    printBlock(out, m.body, indent + 1);
    out += ind(indent) + "}\n";
    return out;
}

std::string printClass(const ClassDecl& c) {
    std::string out;
    if (c.wootinj) out += "@WootinJ ";
    out += c.isInterface ? "interface " : (c.declaredFinal ? "final class " : "class ");
    out += c.name;
    if (!c.superName.empty()) out += " extends " + c.superName;
    if (!c.interfaces.empty()) out += " implements " + join(c.interfaces, ", ");
    out += " {\n";
    for (const auto& sf : c.statics) {
        std::string lit = sf.type.isFloating() ? format("%g", sf.f) : std::to_string(sf.i);
        if (sf.type.isFloating() && lit.find_first_of(".eE") == std::string::npos) lit += ".0";
        if (sf.type.isPrim(Prim::F32)) lit += "f";
        if (sf.type.isPrim(Prim::I64)) lit += "L";
        out += ind(1) + "static final " + sf.type.str() + " " + sf.name + " = " + lit + ";\n";
    }
    for (const auto& f : c.fields) {
        out += ind(1) + (f.isShared ? "@Shared " : "") + f.type.str() + " " + f.name + ";\n";
    }
    if (c.ctor) out += printMethod(*c.ctor, 1, c.name);
    for (const auto& m : c.methods) out += printMethod(*m, 1);
    out += "}\n";
    return out;
}

std::string printProgram(const Program& p) {
    std::string out;
    for (const ClassDecl* c : p.classes()) {
        out += printClass(*c);
        out += "\n";
    }
    return out;
}

} // namespace wj
