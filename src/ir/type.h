// The WJ IR type system.
//
// Mirrors the Java type system fragment the paper's coding rules talk about:
// primitive types, array types (with strict-final element types), and class
// types (classes or interfaces registered in a Program). `void` exists only
// as a method return type.
#pragma once

#include <memory>
#include <string>

namespace wj {

/// Primitive kinds; Java's numeric tower minus char/short/byte, which the
/// paper's libraries never use.
enum class Prim {
    Bool,
    I32,
    I64,
    F32,
    F64,
};

/// Name of a primitive kind as it appears in printed IR ("int", "float", ...).
const char* primName(Prim p) noexcept;

/// C spelling of a primitive kind ("int32_t", "float", ...), used by codegen.
const char* primCName(Prim p) noexcept;

/// Size in bytes of a primitive kind.
int primSize(Prim p) noexcept;

/// An immutable value type describing a WJ IR type.
///
/// Cheap to copy: array element types are shared. Class types are referenced
/// by name; resolution happens against a Program.
class Type {
public:
    enum class Kind { Void, Prim, Array, Class };

    /// The `void` return type.
    static Type voidTy() { return Type(Kind::Void); }
    static Type boolean() { return Type(Prim::Bool); }
    static Type i32() { return Type(Prim::I32); }
    static Type i64() { return Type(Prim::I64); }
    static Type f32() { return Type(Prim::F32); }
    static Type f64() { return Type(Prim::F64); }
    static Type prim(Prim p) { return Type(p); }

    /// Array of `elem` (Java `elem[]`).
    static Type array(const Type& elem);

    /// Class or interface type, by name.
    static Type cls(std::string name);

    Kind kind() const noexcept { return kind_; }
    bool isVoid() const noexcept { return kind_ == Kind::Void; }
    bool isPrim() const noexcept { return kind_ == Kind::Prim; }
    bool isPrim(Prim p) const noexcept { return kind_ == Kind::Prim && prim_ == p; }
    bool isArray() const noexcept { return kind_ == Kind::Array; }
    bool isClass() const noexcept { return kind_ == Kind::Class; }
    bool isNumeric() const noexcept {
        return isPrim() && prim_ != Prim::Bool;
    }
    bool isIntegral() const noexcept {
        return isPrim() && (prim_ == Prim::I32 || prim_ == Prim::I64);
    }
    bool isFloating() const noexcept {
        return isPrim() && (prim_ == Prim::F32 || prim_ == Prim::F64);
    }

    /// Primitive kind; only valid when isPrim().
    Prim prim() const;

    /// Array element type; only valid when isArray().
    const Type& elem() const;

    /// Class name; only valid when isClass().
    const std::string& className() const;

    bool operator==(const Type& o) const noexcept;
    bool operator!=(const Type& o) const noexcept { return !(*this == o); }

    /// Java-ish rendering: "float[]", "Solver", "int".
    std::string str() const;

private:
    explicit Type(Kind k) : kind_(k) {}
    explicit Type(Prim p) : kind_(Kind::Prim), prim_(p) {}

    Kind kind_ = Kind::Void;
    Prim prim_ = Prim::I32;
    std::shared_ptr<const Type> elem_;  // Array
    std::string cls_;                   // Class
};

} // namespace wj
