#include "ir/builder.h"

#include "support/diagnostics.h"
#include "support/strings.h"

namespace wj {

// ------------------------------------------------------------ MethodBuilder

MethodBuilder& MethodBuilder::param(std::string name, Type t) {
    if (!isIdentifier(name)) throw UsageError("bad parameter name: " + name);
    m_.params.push_back({std::move(name), std::move(t)});
    return *this;
}

MethodBuilder& MethodBuilder::abstractMethod() {
    m_.isAbstract = true;
    return *this;
}

MethodBuilder& MethodBuilder::staticMethod() {
    m_.isStatic = true;
    return *this;
}

MethodBuilder& MethodBuilder::global() {
    m_.isGlobal = true;
    return *this;
}

MethodBuilder& MethodBuilder::body(Block b) {
    if (m_.isAbstract) throw UsageError(m_.name + ": abstract method cannot have a body");
    if (!m_.body.empty()) throw UsageError(m_.name + ": body already set");
    m_.body = std::move(b);
    return *this;
}

// ------------------------------------------------------------- ClassBuilder

ClassBuilder& ClassBuilder::extends(std::string superName) {
    if (!c_.superName.empty()) throw UsageError(c_.name + ": superclass already set");
    c_.superName = std::move(superName);
    return *this;
}

ClassBuilder& ClassBuilder::implements(std::string interfaceName) {
    c_.interfaces.push_back(std::move(interfaceName));
    return *this;
}

ClassBuilder& ClassBuilder::interfaceClass() {
    c_.isInterface = true;
    return *this;
}

ClassBuilder& ClassBuilder::finalClass() {
    c_.declaredFinal = true;
    return *this;
}

ClassBuilder& ClassBuilder::notWootinJ() {
    c_.wootinj = false;
    return *this;
}

ClassBuilder& ClassBuilder::field(std::string name, Type t) {
    if (!isIdentifier(name)) throw UsageError("bad field name: " + name);
    c_.fields.push_back({std::move(name), std::move(t), false});
    return *this;
}

ClassBuilder& ClassBuilder::sharedField(std::string name, Type t) {
    if (!t.isArray()) throw UsageError(c_.name + "." + name + ": @Shared requires an array type");
    c_.fields.push_back({std::move(name), std::move(t), true});
    return *this;
}

ClassBuilder& ClassBuilder::staticConstI32(std::string name, int32_t v) {
    c_.statics.push_back({std::move(name), Type::i32(), v, 0});
    return *this;
}

ClassBuilder& ClassBuilder::staticConstF64(std::string name, double v) {
    c_.statics.push_back({std::move(name), Type::f64(), 0, v});
    return *this;
}

ClassBuilder& ClassBuilder::staticConst(std::string name, Type t, int64_t i, double f) {
    if (!t.isPrim()) throw UsageError(c_.name + "." + name + ": static fields must be primitive");
    c_.statics.push_back({std::move(name), std::move(t), i, f});
    return *this;
}

MethodBuilder& ClassBuilder::ctor() {
    if (c_.ctor) throw UsageError(c_.name + ": constructor already defined");
    c_.ctor = std::make_unique<Method>();
    c_.ctor->name = "<init>";
    methodBuilders_.emplace_back(MethodBuilder(*c_.ctor));
    return methodBuilders_.back();
}

MethodBuilder& ClassBuilder::method(std::string name, Type ret) {
    if (!isIdentifier(name)) throw UsageError("bad method name: " + name);
    if (c_.ownMethod(name)) throw UsageError(c_.name + "." + name + ": duplicate method (no overloading in WJ IR)");
    auto m = std::make_unique<Method>();
    m->name = std::move(name);
    m->ret = std::move(ret);
    c_.methods.push_back(std::move(m));
    methodBuilders_.emplace_back(MethodBuilder(*c_.methods.back()));
    return methodBuilders_.back();
}

// ----------------------------------------------------------- ProgramBuilder

ProgramBuilder::ProgramBuilder() = default;

ClassBuilder& ProgramBuilder::cls(std::string name) {
    if (built_) throw UsageError("ProgramBuilder reused after build()");
    if (!isIdentifier(name)) throw UsageError("bad class name: " + name);
    auto c = std::make_unique<ClassDecl>();
    c->name = std::move(name);
    classes_.push_back(std::move(c));
    classBuilders_.emplace_back(ClassBuilder(*classes_.back()));
    return classBuilders_.back();
}

void ProgramBuilder::addBuiltins() {
    using namespace dsl;

    // dim3: the CUDA dim3 type (Section 3.1). Strict-final, semi-immutable.
    {
        auto& b = cls(Program::dim3Class()).finalClass();
        b.field("x", Type::i32()).field("y", Type::i32()).field("z", Type::i32());
        b.ctor()
            .param("x_", Type::i32())
            .param("y_", Type::i32())
            .param("z_", Type::i32())
            .body(blk(setSelf("x", lv("x_")), setSelf("y", lv("y_")), setSelf("z", lv("z_"))));
    }
    // CudaConfig: carries the <<<grid, block, sharedBytes>>> launch
    // configuration that a @Global method receives as its first parameter.
    {
        auto& b = cls(Program::cudaConfigClass()).finalClass();
        b.field("grid", Type::cls(Program::dim3Class()));
        b.field("block", Type::cls(Program::dim3Class()));
        b.field("sharedBytes", Type::i32());
        b.ctor()
            .param("grid_", Type::cls(Program::dim3Class()))
            .param("block_", Type::cls(Program::dim3Class()))
            .param("sharedBytes_", Type::i32())
            .body(blk(setSelf("grid", lv("grid_")), setSelf("block", lv("block_")),
                      setSelf("sharedBytes", lv("sharedBytes_"))));
    }
}

Program ProgramBuilder::build() {
    if (built_) throw UsageError("ProgramBuilder reused after build()");
    addBuiltins();
    built_ = true;
    Program p(std::move(classes_));
    p.validate();
    return p;
}

// ------------------------------------------------------------------- dsl

namespace dsl {

ExprPtr cb(bool v) { return std::make_unique<ConstExpr>(Type::boolean(), v ? 1 : 0, 0.0); }
ExprPtr ci(int32_t v) { return std::make_unique<ConstExpr>(Type::i32(), v, 0.0); }
ExprPtr cl(int64_t v) { return std::make_unique<ConstExpr>(Type::i64(), v, 0.0); }
ExprPtr cf(float v) { return std::make_unique<ConstExpr>(Type::f32(), 0, v); }
ExprPtr cd(double v) { return std::make_unique<ConstExpr>(Type::f64(), 0, v); }

ExprPtr lv(std::string name) { return std::make_unique<LocalExpr>(std::move(name)); }
ExprPtr self() { return std::make_unique<ThisExpr>(); }
ExprPtr getf(ExprPtr obj, std::string field) {
    return std::make_unique<FieldGetExpr>(std::move(obj), std::move(field));
}
ExprPtr selff(std::string field) { return getf(self(), std::move(field)); }
ExprPtr sget(std::string cls, std::string field) {
    return std::make_unique<StaticGetExpr>(std::move(cls), std::move(field));
}
ExprPtr aget(ExprPtr arr, ExprPtr idx) {
    return std::make_unique<ArrayGetExpr>(std::move(arr), std::move(idx));
}
ExprPtr alen(ExprPtr arr) { return std::make_unique<ArrayLenExpr>(std::move(arr)); }

ExprPtr neg(ExprPtr e) { return std::make_unique<UnaryExpr>(UnOp::Neg, std::move(e)); }
ExprPtr lnot(ExprPtr e) { return std::make_unique<UnaryExpr>(UnOp::Not, std::move(e)); }

namespace {
ExprPtr bin(BinOp op, ExprPtr a, ExprPtr b) {
    return std::make_unique<BinaryExpr>(op, std::move(a), std::move(b));
}
} // namespace

ExprPtr add(ExprPtr a, ExprPtr b) { return bin(BinOp::Add, std::move(a), std::move(b)); }
ExprPtr sub(ExprPtr a, ExprPtr b) { return bin(BinOp::Sub, std::move(a), std::move(b)); }
ExprPtr mul(ExprPtr a, ExprPtr b) { return bin(BinOp::Mul, std::move(a), std::move(b)); }
ExprPtr divE(ExprPtr a, ExprPtr b) { return bin(BinOp::Div, std::move(a), std::move(b)); }
ExprPtr rem(ExprPtr a, ExprPtr b) { return bin(BinOp::Rem, std::move(a), std::move(b)); }
ExprPtr lt(ExprPtr a, ExprPtr b) { return bin(BinOp::Lt, std::move(a), std::move(b)); }
ExprPtr le(ExprPtr a, ExprPtr b) { return bin(BinOp::Le, std::move(a), std::move(b)); }
ExprPtr gt(ExprPtr a, ExprPtr b) { return bin(BinOp::Gt, std::move(a), std::move(b)); }
ExprPtr ge(ExprPtr a, ExprPtr b) { return bin(BinOp::Ge, std::move(a), std::move(b)); }
ExprPtr eq(ExprPtr a, ExprPtr b) { return bin(BinOp::Eq, std::move(a), std::move(b)); }
ExprPtr ne(ExprPtr a, ExprPtr b) { return bin(BinOp::Ne, std::move(a), std::move(b)); }
ExprPtr land(ExprPtr a, ExprPtr b) { return bin(BinOp::LAnd, std::move(a), std::move(b)); }
ExprPtr lor(ExprPtr a, ExprPtr b) { return bin(BinOp::LOr, std::move(a), std::move(b)); }
ExprPtr ternary(ExprPtr c, ExprPtr t, ExprPtr f) {
    return std::make_unique<CondExpr>(std::move(c), std::move(t), std::move(f));
}

std::vector<ExprPtr> exprVec() { return {}; }

ExprPtr callV(ExprPtr recv, std::string method, std::vector<ExprPtr> args) {
    return std::make_unique<CallExpr>(std::move(recv), std::move(method), std::move(args));
}

ExprPtr scallV(std::string cls, std::string method, std::vector<ExprPtr> args) {
    return std::make_unique<StaticCallExpr>(std::move(cls), std::move(method), std::move(args));
}

ExprPtr newObjV(std::string cls, std::vector<ExprPtr> args) {
    return std::make_unique<NewExpr>(std::move(cls), std::move(args));
}

ExprPtr newArr(Type elem, ExprPtr len) {
    return std::make_unique<NewArrayExpr>(std::move(elem), std::move(len));
}

ExprPtr cast(Type t, ExprPtr e) { return std::make_unique<CastExpr>(std::move(t), std::move(e)); }

ExprPtr intrV(Intrinsic op, std::vector<ExprPtr> args) {
    return std::make_unique<IntrinsicExpr>(op, std::move(args));
}

ExprPtr mpiRank() { return intrV(Intrinsic::MpiRank, {}); }
ExprPtr mpiSize() { return intrV(Intrinsic::MpiSize, {}); }
ExprPtr tidxX() { return intrV(Intrinsic::CudaThreadIdxX, {}); }
ExprPtr tidxY() { return intrV(Intrinsic::CudaThreadIdxY, {}); }
ExprPtr bidxX() { return intrV(Intrinsic::CudaBlockIdxX, {}); }
ExprPtr bidxY() { return intrV(Intrinsic::CudaBlockIdxY, {}); }
ExprPtr bdimX() { return intrV(Intrinsic::CudaBlockDimX, {}); }
ExprPtr bdimY() { return intrV(Intrinsic::CudaBlockDimY, {}); }
ExprPtr gdimX() { return intrV(Intrinsic::CudaGridDimX, {}); }

ExprPtr dim3of(ExprPtr x) { return newObj(Program::dim3Class(), std::move(x), ci(1), ci(1)); }
ExprPtr dim3of(ExprPtr x, ExprPtr y) {
    return newObj(Program::dim3Class(), std::move(x), std::move(y), ci(1));
}
ExprPtr cudaConfig(ExprPtr grid, ExprPtr block, ExprPtr sharedBytes) {
    return newObj(Program::cudaConfigClass(), std::move(grid), std::move(block), std::move(sharedBytes));
}

Block blk() { return {}; }

StmtPtr decl(std::string name, Type t, ExprPtr init) {
    return std::make_unique<DeclStmt>(std::move(name), std::move(t), std::move(init));
}
StmtPtr declUninit(std::string name, Type t) {
    return std::make_unique<DeclStmt>(std::move(name), std::move(t), nullptr);
}
StmtPtr assign(std::string name, ExprPtr v) {
    return std::make_unique<AssignLocalStmt>(std::move(name), std::move(v));
}
StmtPtr setf(ExprPtr obj, std::string field, ExprPtr v) {
    return std::make_unique<FieldSetStmt>(std::move(obj), std::move(field), std::move(v));
}
StmtPtr setSelf(std::string field, ExprPtr v) {
    return setf(self(), std::move(field), std::move(v));
}
StmtPtr aset(ExprPtr arr, ExprPtr idx, ExprPtr v) {
    return std::make_unique<ArraySetStmt>(std::move(arr), std::move(idx), std::move(v));
}
StmtPtr ifs(ExprPtr cond, Block thenB, Block elseB) {
    return std::make_unique<IfStmt>(std::move(cond), std::move(thenB), std::move(elseB));
}
StmtPtr whileS(ExprPtr cond, Block body) {
    return std::make_unique<WhileStmt>(std::move(cond), std::move(body));
}
StmtPtr forI32(std::string var, ExprPtr init, ExprPtr cond, ExprPtr step, Block body) {
    return std::make_unique<ForStmt>(std::move(var), Type::i32(), std::move(init),
                                     std::move(cond), std::move(step), std::move(body));
}
StmtPtr forRange(std::string var, ExprPtr lo, ExprPtr hi, Block body) {
    ExprPtr cond = lt(lv(var), std::move(hi));
    ExprPtr step = add(lv(var), ci(1));
    return forI32(var, std::move(lo), std::move(cond), std::move(step), std::move(body));
}
StmtPtr ret(ExprPtr v) { return std::make_unique<ReturnStmt>(std::move(v)); }
StmtPtr retVoid() { return std::make_unique<ReturnStmt>(nullptr); }
StmtPtr exprS(ExprPtr e) { return std::make_unique<ExprStmt>(std::move(e)); }
StmtPtr superCtorV(std::vector<ExprPtr> args) {
    return std::make_unique<SuperCtorStmt>(std::move(args));
}

} // namespace dsl
} // namespace wj
