#include "ir/typecheck.h"

#include "support/diagnostics.h"

namespace wj {

namespace {

[[noreturn]] void typeErr(const TypeScope& s, const std::string& msg) {
    const std::string cls = s.thisClass() ? s.thisClass()->name : "<static>";
    throw UsageError("type error in " + cls + "." + s.method().name + ": " + msg);
}

} // namespace

TypeScope::TypeScope(const Program& prog, const ClassDecl* thisClass, const Method& m)
    : prog_(&prog), thisClass_(thisClass), method_(&m) {
    scopes_.emplace_back();
    for (const auto& p : m.params) declare(p.name, p.type);
}

void TypeScope::declare(const std::string& name, const Type& t) {
    if (isDeclared(name)) {
        throw UsageError("duplicate local '" + name + "' in " + method_->name);
    }
    scopes_.back().emplace(name, t);
}

const Type& TypeScope::lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        auto f = it->find(name);
        if (f != it->end()) return f->second;
    }
    throw UsageError("undeclared local '" + name + "' in " + method_->name);
}

bool TypeScope::isDeclared(const std::string& name) const noexcept {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        if (it->count(name)) return true;
    }
    return false;
}

bool TypeScope::isParam(const std::string& name) const noexcept {
    for (const auto& p : method_->params) {
        if (p.name == name) return true;
    }
    return false;
}

void TypeScope::push() { scopes_.emplace_back(); }

void TypeScope::pop() { scopes_.pop_back(); }

namespace {

void checkArgs(TypeScope& s, const std::string& what, const std::vector<Param>& params,
               const std::vector<ExprPtr>& args) {
    if (params.size() != args.size()) {
        typeErr(s, what + ": expected " + std::to_string(params.size()) + " arguments, got " +
                       std::to_string(args.size()));
    }
    for (size_t i = 0; i < args.size(); ++i) {
        Type at = typeOf(s, *args[i]);
        if (!s.prog().assignable(params[i].type, at)) {
            typeErr(s, what + ": argument " + std::to_string(i + 1) + " has type " + at.str() +
                           ", expected " + params[i].type.str());
        }
    }
}

} // namespace

Type typeOf(TypeScope& s, const Expr& e) {
    const Program& prog = s.prog();
    switch (e.kind) {
    case ExprKind::Const:
        return as<ConstExpr>(e).type;

    case ExprKind::Local:
        return s.lookup(as<LocalExpr>(e).name);

    case ExprKind::This:
        if (!s.thisClass()) typeErr(s, "'this' in static context");
        return Type::cls(s.thisClass()->name);

    case ExprKind::FieldGet: {
        const auto& n = as<FieldGetExpr>(e);
        Type ot = typeOf(s, *n.obj);
        if (!ot.isClass()) typeErr(s, "field access ." + n.field + " on non-object " + ot.str());
        const Field* f = prog.resolveField(ot.className(), n.field);
        if (!f) typeErr(s, ot.className() + " has no field " + n.field);
        return f->type;
    }

    case ExprKind::StaticGet: {
        const auto& n = as<StaticGetExpr>(e);
        const StaticField* f = prog.resolveStatic(n.cls, n.field);
        if (!f) typeErr(s, n.cls + " has no static field " + n.field);
        return f->type;
    }

    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        Type at = typeOf(s, *n.arr);
        if (!at.isArray()) typeErr(s, "indexing non-array " + at.str());
        Type it = typeOf(s, *n.idx);
        if (!it.isPrim(Prim::I32)) typeErr(s, "array index must be int, got " + it.str());
        return at.elem();
    }

    case ExprKind::ArrayLen: {
        Type at = typeOf(s, *as<ArrayLenExpr>(e).arr);
        if (!at.isArray()) typeErr(s, ".length on non-array " + at.str());
        return Type::i32();
    }

    case ExprKind::Unary: {
        const auto& n = as<UnaryExpr>(e);
        Type t = typeOf(s, *n.e);
        if (n.op == UnOp::Neg) {
            if (!t.isNumeric()) typeErr(s, "negation of " + t.str());
            return t;
        }
        if (!t.isPrim(Prim::Bool)) typeErr(s, "logical not of " + t.str());
        return t;
    }

    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        Type l = typeOf(s, *n.l);
        Type r = typeOf(s, *n.r);
        if (isLogical(n.op)) {
            if (!l.isPrim(Prim::Bool) || !r.isPrim(Prim::Bool)) {
                typeErr(s, std::string(binOpName(n.op)) + " on " + l.str() + ", " + r.str());
            }
            return Type::boolean();
        }
        if (n.op == BinOp::Eq || n.op == BinOp::Ne) {
            // Reference equality type-checks (rule 7 rejects it separately).
            if (l != r) typeErr(s, "==/!= on mismatched types " + l.str() + ", " + r.str());
            return Type::boolean();
        }
        if (isComparison(n.op)) {
            if (!l.isNumeric() || l != r) {
                typeErr(s, std::string(binOpName(n.op)) + " on " + l.str() + ", " + r.str());
            }
            return Type::boolean();
        }
        switch (n.op) {
        case BinOp::Shl: case BinOp::Shr: case BinOp::BitAnd:
        case BinOp::BitOr: case BinOp::BitXor:
            if (!l.isIntegral() || l != r) {
                typeErr(s, std::string(binOpName(n.op)) + " on " + l.str() + ", " + r.str());
            }
            return l;
        default:
            if (!l.isNumeric() || l != r) {
                typeErr(s, std::string(binOpName(n.op)) + " on " + l.str() + ", " + r.str() +
                               " (insert explicit casts; WJ has no implicit widening)");
            }
            return l;
        }
    }

    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        Type c = typeOf(s, *n.c);
        if (!c.isPrim(Prim::Bool)) typeErr(s, "?: condition must be boolean");
        Type t = typeOf(s, *n.t);
        Type f = typeOf(s, *n.f);
        if (t != f) typeErr(s, "?: branches have different types " + t.str() + ", " + f.str());
        return t;
    }

    case ExprKind::Call: {
        const auto& n = as<CallExpr>(e);
        Type rt = typeOf(s, *n.recv);
        if (!rt.isClass()) typeErr(s, "call ." + n.method + "() on non-object " + rt.str());
        const Method* m = prog.resolveMethod(rt.className(), n.method);
        if (!m) typeErr(s, rt.className() + " has no method " + n.method);
        if (m->isStatic) typeErr(s, rt.className() + "." + n.method + " is static; use a static call");
        checkArgs(s, rt.className() + "." + n.method, m->params, n.args);
        return m->ret;
    }

    case ExprKind::StaticCall: {
        const auto& n = as<StaticCallExpr>(e);
        const Method* m = prog.resolveMethod(n.cls, n.method);
        if (!m) typeErr(s, n.cls + " has no method " + n.method);
        if (!m->isStatic) typeErr(s, n.cls + "." + n.method + " is not static");
        checkArgs(s, n.cls + "." + n.method, m->params, n.args);
        return m->ret;
    }

    case ExprKind::New: {
        const auto& n = as<NewExpr>(e);
        const ClassDecl& c = prog.require(n.cls);
        if (c.isInterface) typeErr(s, "cannot instantiate interface " + n.cls);
        bool isAbstract = false;
        for (const auto& m : c.methods) {
            if (m->isAbstract) isAbstract = true;
        }
        if (isAbstract) typeErr(s, "cannot instantiate abstract class " + n.cls);
        if (c.ctor) {
            checkArgs(s, "new " + n.cls, c.ctor->params, n.args);
        } else if (!n.args.empty()) {
            typeErr(s, n.cls + " has no explicit constructor but arguments were passed");
        }
        return Type::cls(n.cls);
    }

    case ExprKind::NewArray: {
        const auto& n = as<NewArrayExpr>(e);
        Type lt = typeOf(s, *n.len);
        if (!lt.isPrim(Prim::I32)) typeErr(s, "array length must be int, got " + lt.str());
        return Type::array(n.elem);
    }

    case ExprKind::Cast: {
        const auto& n = as<CastExpr>(e);
        Type st = typeOf(s, *n.e);
        const Type& tt = n.type;
        if (st.isNumeric() && tt.isNumeric()) return tt;
        if (st.isClass() && tt.isClass()) {
            if (!prog.assignable(tt, st) && !prog.assignable(st, tt)) {
                typeErr(s, "cast between unrelated classes " + st.str() + " -> " + tt.str());
            }
            return tt;
        }
        if (st == tt) return tt;
        typeErr(s, "invalid cast " + st.str() + " -> " + tt.str());
    }

    case ExprKind::IntrinsicCall: {
        const auto& n = as<IntrinsicExpr>(e);
        const IntrinsicSig& sig = intrinsicSig(n.op);
        if (sig.params.size() != n.args.size()) {
            typeErr(s, std::string(sig.name) + ": expected " + std::to_string(sig.params.size()) +
                           " arguments, got " + std::to_string(n.args.size()));
        }
        for (size_t i = 0; i < n.args.size(); ++i) {
            Type at = typeOf(s, *n.args[i]);
            if (at != sig.params[i]) {
                typeErr(s, std::string(sig.name) + ": argument " + std::to_string(i + 1) +
                               " has type " + at.str() + ", expected " + sig.params[i].str());
            }
        }
        return sig.ret;
    }
    }
    panic("unreachable expr kind");
}

namespace {

void checkBlock(TypeScope& s, const Block& b);

void checkStmt(TypeScope& s, const Stmt& st) {
    const Program& prog = s.prog();
    switch (st.kind) {
    case StmtKind::Decl: {
        const auto& n = as<DeclStmt>(st);
        if (!n.init) {
            // Uninitialized declarations are restricted to primitives and
            // arrays: object locals carry an exact shape that only an
            // initializer can establish (strict-final, rule 2).
            if (n.type.isClass()) {
                typeErr(s, "object local '" + n.name + "' must be declared with an initializer");
            }
            s.declare(n.name, n.type);
            return;
        }
        Type it = typeOf(s, *n.init);
        if (!prog.assignable(n.type, it)) {
            typeErr(s, "initializer of '" + n.name + "' has type " + it.str() + ", expected " +
                           n.type.str());
        }
        s.declare(n.name, n.type);
        return;
    }
    case StmtKind::AssignLocal: {
        const auto& n = as<AssignLocalStmt>(st);
        const Type& lt = s.lookup(n.name);
        Type vt = typeOf(s, *n.value);
        if (!prog.assignable(lt, vt)) {
            typeErr(s, "assignment to '" + n.name + "': " + vt.str() + " not assignable to " +
                           lt.str());
        }
        return;
    }
    case StmtKind::FieldSet: {
        const auto& n = as<FieldSetStmt>(st);
        Type ot = typeOf(s, *n.obj);
        if (!ot.isClass()) typeErr(s, "field store ." + n.field + " on non-object " + ot.str());
        const Field* f = prog.resolveField(ot.className(), n.field);
        if (!f) typeErr(s, ot.className() + " has no field " + n.field);
        Type vt = typeOf(s, *n.value);
        if (!prog.assignable(f->type, vt)) {
            typeErr(s, "store to " + ot.className() + "." + n.field + ": " + vt.str() +
                           " not assignable to " + f->type.str());
        }
        return;
    }
    case StmtKind::ArraySet: {
        const auto& n = as<ArraySetStmt>(st);
        Type at = typeOf(s, *n.arr);
        if (!at.isArray()) typeErr(s, "indexing non-array " + at.str());
        Type it = typeOf(s, *n.idx);
        if (!it.isPrim(Prim::I32)) typeErr(s, "array index must be int");
        Type vt = typeOf(s, *n.value);
        if (!prog.assignable(at.elem(), vt)) {
            typeErr(s, "array store: " + vt.str() + " not assignable to " + at.elem().str());
        }
        return;
    }
    case StmtKind::If: {
        const auto& n = as<IfStmt>(st);
        Type ct = typeOf(s, *n.cond);
        if (!ct.isPrim(Prim::Bool)) typeErr(s, "if condition must be boolean, got " + ct.str());
        s.push();
        checkBlock(s, n.thenB);
        s.pop();
        s.push();
        checkBlock(s, n.elseB);
        s.pop();
        return;
    }
    case StmtKind::While: {
        const auto& n = as<WhileStmt>(st);
        Type ct = typeOf(s, *n.cond);
        if (!ct.isPrim(Prim::Bool)) typeErr(s, "while condition must be boolean");
        s.push();
        checkBlock(s, n.body);
        s.pop();
        return;
    }
    case StmtKind::For: {
        const auto& n = as<ForStmt>(st);
        s.push();
        Type it = typeOf(s, *n.init);
        if (!prog.assignable(n.varType, it)) {
            typeErr(s, "for-init of '" + n.var + "' has type " + it.str());
        }
        s.declare(n.var, n.varType);
        Type ct = typeOf(s, *n.cond);
        if (!ct.isPrim(Prim::Bool)) typeErr(s, "for condition must be boolean");
        Type stp = typeOf(s, *n.step);
        if (!prog.assignable(n.varType, stp)) {
            typeErr(s, "for-step of '" + n.var + "' has type " + stp.str());
        }
        s.push();
        checkBlock(s, n.body);
        s.pop();
        s.pop();
        return;
    }
    case StmtKind::Return: {
        const auto& n = as<ReturnStmt>(st);
        const Type& rt = s.method().ret;
        if (!n.value) {
            if (!rt.isVoid()) typeErr(s, "return without value in non-void method");
            return;
        }
        Type vt = typeOf(s, *n.value);
        if (!prog.assignable(rt, vt)) {
            typeErr(s, "return type " + vt.str() + " not assignable to " + rt.str());
        }
        return;
    }
    case StmtKind::ExprStmt:
        typeOf(s, *as<ExprStmt>(st).e);
        return;
    case StmtKind::SuperCtor: {
        const auto& n = as<SuperCtorStmt>(st);
        if (!s.method().isCtor()) typeErr(s, "super(...) outside a constructor");
        if (!s.thisClass() || s.thisClass()->superName.empty()) {
            typeErr(s, "super(...) but class has no superclass");
        }
        const ClassDecl& sup = prog.require(s.thisClass()->superName);
        if (sup.ctor) {
            checkArgs(s, "super " + sup.name, sup.ctor->params, n.args);
        } else if (!n.args.empty()) {
            typeErr(s, sup.name + " has no explicit constructor");
        }
        return;
    }
    }
    panic("unreachable stmt kind");
}

void checkBlock(TypeScope& s, const Block& b) {
    for (const auto& st : b) checkStmt(s, *st);
}

} // namespace

void checkMethodBody(const Program& prog, const ClassDecl& cls, const Method& m) {
    if (m.isAbstract) return;
    const ClassDecl* thisCls = m.isStatic ? nullptr : &cls;
    TypeScope s(prog, thisCls, m);
    checkBlock(s, m.body);
}

void checkProgramTypes(const Program& prog) {
    for (const ClassDecl* c : prog.classes()) {
        if (c->ctor) checkMethodBody(prog, *c, *c->ctor);
        for (const auto& m : c->methods) checkMethodBody(prog, *c, *m);
    }
}

} // namespace wj
