// WJ IR abstract syntax: expressions and statements.
//
// The IR plays the role Java bytecode plays for WootinJ: a typed,
// object-oriented method representation that the rule verifier, the
// interpreter ("the JVM"), and the JIT translator all consume. Nodes are
// immutable after construction and owned uniquely by their parent.
//
// The node set deliberately includes constructs the coding rules *reject*
// (the conditional operator, reference equality) so the verifier has
// something to verify; the JIT refuses programs the verifier rejects.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/intrinsics.h"
#include "ir/type.h"

namespace wj {

// ---------------------------------------------------------------- operators

enum class UnOp {
    Neg,  ///< arithmetic negation
    Not,  ///< boolean negation
};

enum class BinOp {
    Add, Sub, Mul, Div, Rem,
    Lt, Le, Gt, Ge, Eq, Ne,     // Eq/Ne on references violates coding rule 7
    LAnd, LOr,                  // short-circuit boolean
    Shl, Shr, BitAnd, BitOr, BitXor,
};

/// True for operators producing boolean from numeric or boolean operands.
bool isComparison(BinOp op) noexcept;
bool isLogical(BinOp op) noexcept;
const char* binOpName(BinOp op) noexcept;

// -------------------------------------------------------------- expressions

enum class ExprKind {
    Const, Local, This,
    FieldGet, StaticGet, ArrayGet, ArrayLen,
    Unary, Binary, Cond,
    Call, StaticCall, New, NewArray, Cast, IntrinsicCall,
};

struct Expr {
    const ExprKind kind;
    virtual ~Expr() = default;

protected:
    explicit Expr(ExprKind k) : kind(k) {}
};

using ExprPtr = std::unique_ptr<Expr>;

/// Primitive literal. The value lives in the member matching `type`.
struct ConstExpr final : Expr {
    Type type;
    int64_t i = 0;   // Bool (0/1), I32, I64
    double f = 0;    // F32, F64

    ConstExpr(Type t, int64_t iv, double fv)
        : Expr(ExprKind::Const), type(std::move(t)), i(iv), f(fv) {}
};

/// Read of a local variable or method parameter, by name.
struct LocalExpr final : Expr {
    std::string name;
    explicit LocalExpr(std::string n) : Expr(ExprKind::Local), name(std::move(n)) {}
};

/// The `this` reference.
struct ThisExpr final : Expr {
    ThisExpr() : Expr(ExprKind::This) {}
};

/// `obj.field`
struct FieldGetExpr final : Expr {
    ExprPtr obj;
    std::string field;
    FieldGetExpr(ExprPtr o, std::string f)
        : Expr(ExprKind::FieldGet), obj(std::move(o)), field(std::move(f)) {}
};

/// `Cls.staticField` — coding rule 5 requires these to be final primitives.
struct StaticGetExpr final : Expr {
    std::string cls;
    std::string field;
    StaticGetExpr(std::string c, std::string f)
        : Expr(ExprKind::StaticGet), cls(std::move(c)), field(std::move(f)) {}
};

/// `arr[idx]`
struct ArrayGetExpr final : Expr {
    ExprPtr arr, idx;
    ArrayGetExpr(ExprPtr a, ExprPtr i)
        : Expr(ExprKind::ArrayGet), arr(std::move(a)), idx(std::move(i)) {}
};

/// `arr.length`
struct ArrayLenExpr final : Expr {
    ExprPtr arr;
    explicit ArrayLenExpr(ExprPtr a) : Expr(ExprKind::ArrayLen), arr(std::move(a)) {}
};

struct UnaryExpr final : Expr {
    UnOp op;
    ExprPtr e;
    UnaryExpr(UnOp o, ExprPtr x) : Expr(ExprKind::Unary), op(o), e(std::move(x)) {}
};

struct BinaryExpr final : Expr {
    BinOp op;
    ExprPtr l, r;
    BinaryExpr(BinOp o, ExprPtr a, ExprPtr b)
        : Expr(ExprKind::Binary), op(o), l(std::move(a)), r(std::move(b)) {}
};

/// The conditional operator `c ? t : f`. Forbidden by coding rule 7 in
/// translated code; the interpreter still executes it so untranslated code
/// can use it freely (only @WootinJ code is subject to the rules).
struct CondExpr final : Expr {
    ExprPtr c, t, f;
    CondExpr(ExprPtr cc, ExprPtr tt, ExprPtr ff)
        : Expr(ExprKind::Cond), c(std::move(cc)), t(std::move(tt)), f(std::move(ff)) {}
};

/// Virtual call `recv.method(args...)`. If the resolved method is @Global,
/// the first argument must be a CudaConfig and the call launches a kernel.
struct CallExpr final : Expr {
    ExprPtr recv;
    std::string method;
    std::vector<ExprPtr> args;
    CallExpr(ExprPtr r, std::string m, std::vector<ExprPtr> a)
        : Expr(ExprKind::Call), recv(std::move(r)), method(std::move(m)), args(std::move(a)) {}
};

/// Static call `Cls.method(args...)`.
struct StaticCallExpr final : Expr {
    std::string cls;
    std::string method;
    std::vector<ExprPtr> args;
    StaticCallExpr(std::string c, std::string m, std::vector<ExprPtr> a)
        : Expr(ExprKind::StaticCall), cls(std::move(c)), method(std::move(m)), args(std::move(a)) {}
};

/// `new Cls(args...)`
struct NewExpr final : Expr {
    std::string cls;
    std::vector<ExprPtr> args;
    NewExpr(std::string c, std::vector<ExprPtr> a)
        : Expr(ExprKind::New), cls(std::move(c)), args(std::move(a)) {}
};

/// `new Elem[len]`
struct NewArrayExpr final : Expr {
    Type elem;
    ExprPtr len;
    NewArrayExpr(Type e, ExprPtr l)
        : Expr(ExprKind::NewArray), elem(std::move(e)), len(std::move(l)) {}
};

/// `(T) e` — numeric conversion or reference downcast. Coding rule 2
/// requires reference cast targets to be strict-final.
struct CastExpr final : Expr {
    Type type;
    ExprPtr e;
    CastExpr(Type t, ExprPtr x) : Expr(ExprKind::Cast), type(std::move(t)), e(std::move(x)) {}
};

/// Call to one of the MPI/CUDA/math intrinsics (see ir/intrinsics.h).
struct IntrinsicExpr final : Expr {
    Intrinsic op;
    std::vector<ExprPtr> args;
    IntrinsicExpr(Intrinsic o, std::vector<ExprPtr> a)
        : Expr(ExprKind::IntrinsicCall), op(o), args(std::move(a)) {}
};

// --------------------------------------------------------------- statements

enum class StmtKind {
    Decl, AssignLocal, FieldSet, ArraySet,
    If, While, For, Return, ExprStmt, SuperCtor,
};

struct Stmt {
    const StmtKind kind;
    virtual ~Stmt() = default;

protected:
    explicit Stmt(StmtKind k) : kind(k) {}
};

using StmtPtr = std::unique_ptr<Stmt>;
using Block = std::vector<StmtPtr>;

/// `T name = init;` or `T name;` — `init` may be null for primitive and
/// array locals (object locals must be initialized: the translator needs
/// an exact shape at the declaration). Reads of a possibly-uninitialized
/// local are rejected by the definite-assignment pass (src/analysis/)
/// before the interpreter or the translator sees them.
struct DeclStmt final : Stmt {
    std::string name;
    Type type;
    ExprPtr init;
    DeclStmt(std::string n, Type t, ExprPtr i)
        : Stmt(StmtKind::Decl), name(std::move(n)), type(std::move(t)), init(std::move(i)) {}
};

/// `name = value;` — assignment to a local. Assigning a method parameter
/// violates coding rule 3 and is caught by the verifier.
struct AssignLocalStmt final : Stmt {
    std::string name;
    ExprPtr value;
    AssignLocalStmt(std::string n, ExprPtr v)
        : Stmt(StmtKind::AssignLocal), name(std::move(n)), value(std::move(v)) {}
};

/// `obj.field = value;` — outside constructors this is only legal for
/// array-typed fields (semi-immutable, Section 3.2 definition 3(c)).
struct FieldSetStmt final : Stmt {
    ExprPtr obj;
    std::string field;
    ExprPtr value;
    FieldSetStmt(ExprPtr o, std::string f, ExprPtr v)
        : Stmt(StmtKind::FieldSet), obj(std::move(o)), field(std::move(f)), value(std::move(v)) {}
};

/// `arr[idx] = value;`
struct ArraySetStmt final : Stmt {
    ExprPtr arr, idx, value;
    ArraySetStmt(ExprPtr a, ExprPtr i, ExprPtr v)
        : Stmt(StmtKind::ArraySet), arr(std::move(a)), idx(std::move(i)), value(std::move(v)) {}
};

struct IfStmt final : Stmt {
    ExprPtr cond;
    Block thenB, elseB;
    IfStmt(ExprPtr c, Block t, Block e)
        : Stmt(StmtKind::If), cond(std::move(c)), thenB(std::move(t)), elseB(std::move(e)) {}
};

struct WhileStmt final : Stmt {
    ExprPtr cond;
    Block body;
    WhileStmt(ExprPtr c, Block b) : Stmt(StmtKind::While), cond(std::move(c)), body(std::move(b)) {}
};

/// `for (T i = init; cond; i = step) { body }` — the induction variable is a
/// fresh local scoped to the loop.
struct ForStmt final : Stmt {
    std::string var;
    Type varType;
    ExprPtr init;
    ExprPtr cond;
    ExprPtr step;  ///< new value of `var` each iteration
    Block body;
    ForStmt(std::string v, Type t, ExprPtr i, ExprPtr c, ExprPtr s, Block b)
        : Stmt(StmtKind::For), var(std::move(v)), varType(std::move(t)), init(std::move(i)),
          cond(std::move(c)), step(std::move(s)), body(std::move(b)) {}
};

struct ReturnStmt final : Stmt {
    ExprPtr value;  ///< null for `return;`
    explicit ReturnStmt(ExprPtr v) : Stmt(StmtKind::Return), value(std::move(v)) {}
};

struct ExprStmt final : Stmt {
    ExprPtr e;
    explicit ExprStmt(ExprPtr x) : Stmt(StmtKind::ExprStmt), e(std::move(x)) {}
};

/// `super(args...)` — only legal as the first statement of a constructor.
struct SuperCtorStmt final : Stmt {
    std::vector<ExprPtr> args;
    explicit SuperCtorStmt(std::vector<ExprPtr> a) : Stmt(StmtKind::SuperCtor), args(std::move(a)) {}
};

// ------------------------------------------------------------------ casting

/// Checked downcast for nodes: aborts on kind mismatch (internal invariant).
template <typename T>
const T& as(const Expr& e) {
    return static_cast<const T&>(e);
}
template <typename T>
const T& as(const Stmt& s) {
    return static_cast<const T&>(s);
}

} // namespace wj
