#include "ir/program.h"

#include <set>

#include "support/diagnostics.h"

namespace wj {

Program::Program(std::vector<std::unique_ptr<ClassDecl>> classes) {
    for (auto& c : classes) {
        if (!c) throw UsageError("null class declaration");
        const std::string name = c->name;
        const ClassDecl* raw = c.get();
        auto [it, inserted] = byName_.emplace(name, std::move(c));
        if (!inserted) throw UsageError("duplicate class: " + name);
        order_.push_back(raw);
    }
}

const ClassDecl* Program::cls(const std::string& name) const noexcept {
    auto it = byName_.find(name);
    return it == byName_.end() ? nullptr : it->second.get();
}

const ClassDecl& Program::require(const std::string& name) const {
    const ClassDecl* c = cls(name);
    if (!c) throw UsageError("unknown class: " + name);
    return *c;
}

bool Program::isSubtypeOf(const std::string& name, const std::string& ancestor) const {
    if (name == ancestor) return true;
    const ClassDecl* c = cls(name);
    if (!c) return false;
    if (!c->superName.empty() && isSubtypeOf(c->superName, ancestor)) return true;
    for (const auto& itf : c->interfaces) {
        if (isSubtypeOf(itf, ancestor)) return true;
    }
    return false;
}

bool Program::assignable(const Type& to, const Type& from) const {
    if (to == from) return true;
    if (to.isClass() && from.isClass()) {
        return isSubtypeOf(from.className(), to.className());
    }
    return false;
}

std::vector<const ClassDecl*> Program::concreteSubtypes(const std::string& name) const {
    std::vector<const ClassDecl*> out;
    for (const ClassDecl* c : order_) {
        if (c->isInterface) continue;
        if (isSubtypeOf(c->name, name)) out.push_back(c);
    }
    return out;
}

bool Program::isLeaf(const std::string& name) const {
    for (const ClassDecl* c : order_) {
        if (c->name == name) continue;
        if (c->superName == name) return false;
        for (const auto& itf : c->interfaces) {
            if (itf == name) return false;
        }
    }
    return true;
}

const Method* Program::resolveMethod(const std::string& clsName, const std::string& method) const {
    const ClassDecl* owner = methodOwner(clsName, method);
    return owner ? owner->ownMethod(method) : nullptr;
}

const ClassDecl* Program::methodOwner(const std::string& clsName, const std::string& method) const {
    for (const ClassDecl* c = cls(clsName); c; c = c->superName.empty() ? nullptr : cls(c->superName)) {
        if (c->ownMethod(method)) return c;
    }
    // Interfaces: abstract declarations only; still useful to type-check
    // calls through interface-typed values.
    const ClassDecl* c = cls(clsName);
    if (c) {
        for (const auto& itf : c->interfaces) {
            if (const ClassDecl* o = methodOwner(itf, method)) return o;
        }
        if (!c->superName.empty()) {
            // superclass interfaces
            if (const ClassDecl* o = methodOwner(c->superName, method)) return o;
        }
    }
    return nullptr;
}

const Field* Program::resolveField(const std::string& clsName, const std::string& field) const {
    for (const ClassDecl* c = cls(clsName); c; c = c->superName.empty() ? nullptr : cls(c->superName)) {
        if (const Field* f = c->ownField(field)) return f;
    }
    return nullptr;
}

std::vector<const Field*> Program::allFields(const std::string& clsName) const {
    std::vector<const Field*> out;
    const ClassDecl* c = cls(clsName);
    if (!c) return out;
    if (!c->superName.empty()) out = allFields(c->superName);
    for (const auto& f : c->fields) out.push_back(&f);
    return out;
}

const StaticField* Program::resolveStatic(const std::string& clsName, const std::string& field) const {
    for (const ClassDecl* c = cls(clsName); c; c = c->superName.empty() ? nullptr : cls(c->superName)) {
        if (const StaticField* f = c->ownStatic(field)) return f;
    }
    return nullptr;
}

void Program::checkTypeKnown(const Type& t, const std::string& where) const {
    if (t.isArray()) {
        checkTypeKnown(t.elem(), where);
    } else if (t.isClass() && !cls(t.className())) {
        throw UsageError(where + ": references unknown class " + t.className());
    }
}

void Program::validate() const {
    for (const ClassDecl* c : order_) {
        // Super chain exists and is acyclic.
        std::set<std::string> seen{c->name};
        for (const ClassDecl* s = c; !s->superName.empty();) {
            const ClassDecl* sup = cls(s->superName);
            if (!sup) throw UsageError(c->name + ": unknown superclass " + s->superName);
            if (sup->isInterface) throw UsageError(c->name + ": extends interface " + sup->name);
            if (!seen.insert(sup->name).second) {
                throw UsageError(c->name + ": inheritance cycle through " + sup->name);
            }
            s = sup;
        }
        for (const auto& itf : c->interfaces) {
            const ClassDecl* i = cls(itf);
            if (!i) throw UsageError(c->name + ": unknown interface " + itf);
            if (!i->isInterface) throw UsageError(c->name + ": implements non-interface " + itf);
        }
        if (c->isInterface) {
            if (!c->fields.empty()) throw UsageError(c->name + ": interface with instance fields");
            if (c->ctor) throw UsageError(c->name + ": interface with constructor");
            for (const auto& m : c->methods) {
                if (!m->isAbstract) throw UsageError(c->name + "." + m->name + ": interface method with body");
            }
        }
        for (const auto& f : c->fields) checkTypeKnown(f.type, c->name + "." + f.name);
        for (const auto& m : c->methods) {
            checkTypeKnown(m->ret, c->name + "." + m->name);
            for (const auto& p : m->params) checkTypeKnown(p.type, c->name + "." + m->name);
            if (m->isGlobal) {
                if (m->params.empty() || m->params[0].type != Type::cls(cudaConfigClass())) {
                    throw UsageError(c->name + "." + m->name +
                                     ": @Global method must take CudaConfig as its first parameter");
                }
                if (!m->ret.isVoid()) {
                    throw UsageError(c->name + "." + m->name + ": @Global method must return void");
                }
            }
        }
        if (c->ctor) {
            for (const auto& p : c->ctor->params) checkTypeKnown(p.type, c->name + ".<init>");
        }
        // Concrete classes implement every abstract method visible to them.
        // A class declaring any abstract method of its own is itself abstract
        // and exempt (it cannot be instantiated).
        bool isAbstractClass = false;
        for (const auto& m : c->methods) {
            if (m->isAbstract) isAbstractClass = true;
        }
        if (!c->isInterface && !isAbstractClass) {
            std::vector<const ClassDecl*> sources;
            // Gather all transitive interfaces and abstract supers.
            std::vector<std::string> work = c->interfaces;
            for (const ClassDecl* s = c; !s->superName.empty();) {
                s = cls(s->superName);
                sources.push_back(s);
                for (const auto& i : s->interfaces) work.push_back(i);
            }
            std::set<std::string> visited;
            while (!work.empty()) {
                std::string n = work.back();
                work.pop_back();
                if (!visited.insert(n).second) continue;
                const ClassDecl* i = cls(n);
                if (!i) continue;  // already reported above
                sources.push_back(i);
                for (const auto& sup : i->interfaces) work.push_back(sup);
            }
            for (const ClassDecl* src : sources) {
                for (const auto& m : src->methods) {
                    if (!m->isAbstract) continue;
                    const Method* impl = resolveMethod(c->name, m->name);
                    if (!impl || impl->isAbstract) {
                        throw UsageError(c->name + ": does not implement abstract method " +
                                         src->name + "." + m->name);
                    }
                    if (impl->params.size() != m->params.size()) {
                        throw UsageError(c->name + "." + m->name +
                                         ": parameter count differs from overridden declaration");
                    }
                }
            }
        }
    }
}

} // namespace wj
