// Intrinsic operations available to translated code.
//
// In the paper, the MPI and CUDA classes are "not wrapper classes that access
// the MPI functions in C through JNI; ... a call in Java to a method in the
// MPI class is translated by WootinJ into a direct call in C to the
// corresponding MPI function" (Section 3). WootinC models those classes as
// intrinsic operations in the IR: the interpreter either emulates or rejects
// them (a JVM cannot run MPI/GPU code, Section 4.4), and the JIT translates
// each one into a direct call to the wjrt_* C runtime, which binds to the
// MiniMPI and GpuSim substrates with no per-call wrapper overhead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace wj {

enum class Intrinsic : uint16_t {
    // ---- MPI (paper's MPI class) ----
    MpiRank,          // int rank()
    MpiSize,          // int size()
    MpiBarrier,       // void barrier()
    MpiSendF32,       // void sendF32(float[] buf, int off, int n, int dest, int tag)
    MpiRecvF32,       // void recvF32(float[] buf, int off, int n, int src, int tag)
    MpiSendRecvF32,   // void sendRecvF32(float[] sbuf,int soff,int n,int dest, float[] rbuf,int roff,int src,int tag)
    MpiBcastF32,      // void bcastF32(float[] buf, int off, int n, int root)
    MpiAllreduceSumF64, // double allreduceSumF64(double v)
    MpiAllreduceMaxF64, // double allreduceMaxF64(double v)
    MpiIrecvF32,      // int irecvF32(float[] buf, int off, int n, int src, int tag)
    MpiWait,          // void wait(int request)

    // ---- CUDA device context (paper's cuda.threadIdx etc.) ----
    CudaThreadIdxX, CudaThreadIdxY, CudaThreadIdxZ,
    CudaBlockIdxX, CudaBlockIdxY, CudaBlockIdxZ,
    CudaBlockDimX, CudaBlockDimY, CudaBlockDimZ,
    CudaGridDimX, CudaGridDimY, CudaGridDimZ,
    CudaSyncThreads,  // void syncthreads()
    CudaSharedF32,    // float[] sharedF32() — the block's dynamic shared buffer
                      // (paper's @Shared field, exposed extern-__shared__ style)

    // ---- CUDA host API (paper's CUDA class: copyToGPU etc.) ----
    GpuMallocF32,     // float[] gpuMallocF32(int n) — device-space array
    GpuFree,          // void gpuFree(float[] a)
    GpuMemcpyH2DF32,  // void gpuH2D(float[] dev, float[] host, int n)
    GpuMemcpyD2HF32,  // void gpuD2H(float[] host, float[] dev, int n)
    GpuMemcpyH2DOffF32, // void gpuH2DOff(float[] dev, int devOff, float[] host, int hostOff, int n)
    GpuMemcpyD2HOffF32, // void gpuD2HOff(float[] host, int hostOff, float[] dev, int devOff, int n)

    // ---- math (translated to libm calls) ----
    MathSqrtF64,      // double sqrt(double)
    MathFabsF64,      // double fabs(double)
    MathExpF64,       // double exp(double)
    MathSqrtF32,      // float sqrtf(float)

    // ---- misc runtime ----
    RngHashF32,       // float rngHashF32(int seed, int idx) — stateless generator
    FreeArray,        // void free(anyarray) — the paper's explicit free
    PrintI64,         // void printI64(long) — debugging aid in examples
    PrintF64,         // void printF64(double)

    // ---- checkpoint/restart (src/fault/checkpoint.h) ----
    CkptSaveF32,      // void ckptSaveF32(float[] buf, int n, int slot, int iter)
                      //   snapshot buf[0..n) for this rank; no-op unless the
                      //   host armed the CheckpointStore
    CkptLoadF32,      // int ckptLoadF32(float[] buf, int n, int slot)
                      //   restore the resolved snapshot into buf; returns the
                      //   checkpointed iteration, or -1 when starting fresh
};

/// Static signature of an intrinsic.
struct IntrinsicSig {
    const char* name;            ///< surface name used by the builder/printer
    Type ret;
    std::vector<Type> params;
    bool deviceOnly;             ///< only legal inside @Global/device code
    bool hostOnly;               ///< never legal inside device code
    bool jvmRunnable;            ///< the interpreter can execute it (Section 4.4:
                                 ///< programs run on the JVM *unless* they use MPI/GPU)
};

/// Signature for `op`; stable reference into an internal table.
const IntrinsicSig& intrinsicSig(Intrinsic op);

/// Total number of intrinsics (for exhaustive tests).
int intrinsicCount() noexcept;

} // namespace wj
