#include "ir/intrinsics.h"

#include <array>

#include "support/diagnostics.h"

namespace wj {

namespace {

Type f32arr() { return Type::array(Type::f32()); }

// The table is order-sensitive: it must match the enum declaration order.
const std::vector<IntrinsicSig>& table() {
    static const std::vector<IntrinsicSig> t = {
        // MPI — host only, not runnable on the plain interpreter.
        {"MPI.rank", Type::i32(), {}, false, true, false},
        {"MPI.size", Type::i32(), {}, false, true, false},
        {"MPI.barrier", Type::voidTy(), {}, false, true, false},
        {"MPI.sendF32", Type::voidTy(),
         {f32arr(), Type::i32(), Type::i32(), Type::i32(), Type::i32()}, false, true, false},
        {"MPI.recvF32", Type::voidTy(),
         {f32arr(), Type::i32(), Type::i32(), Type::i32(), Type::i32()}, false, true, false},
        {"MPI.sendRecvF32", Type::voidTy(),
         {f32arr(), Type::i32(), Type::i32(), Type::i32(),
          f32arr(), Type::i32(), Type::i32(), Type::i32()}, false, true, false},
        {"MPI.bcastF32", Type::voidTy(),
         {f32arr(), Type::i32(), Type::i32(), Type::i32()}, false, true, false},
        {"MPI.allreduceSumF64", Type::f64(), {Type::f64()}, false, true, false},
        {"MPI.allreduceMaxF64", Type::f64(), {Type::f64()}, false, true, false},
        {"MPI.irecvF32", Type::i32(),
         {f32arr(), Type::i32(), Type::i32(), Type::i32(), Type::i32()}, false, true, false},
        {"MPI.wait", Type::voidTy(), {Type::i32()}, false, true, false},

        // CUDA device context — device only. The interpreter *can* evaluate
        // them when device emulation is enabled (used by differential tests).
        {"cuda.threadIdx.x", Type::i32(), {}, true, false, false},
        {"cuda.threadIdx.y", Type::i32(), {}, true, false, false},
        {"cuda.threadIdx.z", Type::i32(), {}, true, false, false},
        {"cuda.blockIdx.x", Type::i32(), {}, true, false, false},
        {"cuda.blockIdx.y", Type::i32(), {}, true, false, false},
        {"cuda.blockIdx.z", Type::i32(), {}, true, false, false},
        {"cuda.blockDim.x", Type::i32(), {}, true, false, false},
        {"cuda.blockDim.y", Type::i32(), {}, true, false, false},
        {"cuda.blockDim.z", Type::i32(), {}, true, false, false},
        {"cuda.gridDim.x", Type::i32(), {}, true, false, false},
        {"cuda.gridDim.y", Type::i32(), {}, true, false, false},
        {"cuda.gridDim.z", Type::i32(), {}, true, false, false},
        {"cuda.syncthreads", Type::voidTy(), {}, true, false, false},
        {"cuda.sharedF32", f32arr(), {}, true, false, false},

        // CUDA host API — host only.
        {"cuda.mallocF32", f32arr(), {Type::i32()}, false, true, false},
        {"cuda.free", Type::voidTy(), {f32arr()}, false, true, false},
        {"cuda.memcpyH2DF32", Type::voidTy(), {f32arr(), f32arr(), Type::i32()}, false, true, false},
        {"cuda.memcpyD2HF32", Type::voidTy(), {f32arr(), f32arr(), Type::i32()}, false, true, false},
        {"cuda.memcpyH2DOffF32", Type::voidTy(),
         {f32arr(), Type::i32(), f32arr(), Type::i32(), Type::i32()}, false, true, false},
        {"cuda.memcpyD2HOffF32", Type::voidTy(),
         {f32arr(), Type::i32(), f32arr(), Type::i32(), Type::i32()}, false, true, false},

        // Math — runnable anywhere, including the interpreter.
        {"Math.sqrt", Type::f64(), {Type::f64()}, false, false, true},
        {"Math.fabs", Type::f64(), {Type::f64()}, false, false, true},
        {"Math.exp", Type::f64(), {Type::f64()}, false, false, true},
        {"Math.sqrtf", Type::f32(), {Type::f32()}, false, false, true},

        // Misc runtime.
        {"WootinJ.rngHashF32", Type::f32(), {Type::i32(), Type::i32()}, false, false, true},
        {"WootinJ.free", Type::voidTy(), {f32arr()}, false, true, true},
        {"WootinJ.printI64", Type::voidTy(), {Type::i64()}, false, true, true},
        {"WootinJ.printF64", Type::voidTy(), {Type::f64()}, false, true, true},

        // Checkpoint/restart — host only (the snapshot leaves the rank's
        // private memory space through the host-side CheckpointStore), and
        // runnable on the interpreter (rank 0 semantics).
        {"WootinJ.ckptSaveF32", Type::voidTy(),
         {f32arr(), Type::i32(), Type::i32(), Type::i32()}, false, true, true},
        {"WootinJ.ckptLoadF32", Type::i32(),
         {f32arr(), Type::i32(), Type::i32()}, false, true, true},
    };
    return t;
}

} // namespace

const IntrinsicSig& intrinsicSig(Intrinsic op) {
    const auto& t = table();
    const auto i = static_cast<size_t>(op);
    if (i >= t.size()) panic("intrinsic table out of sync with enum");
    return t[i];
}

int intrinsicCount() noexcept { return static_cast<int>(table().size()); }

} // namespace wj
