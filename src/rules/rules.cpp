#include "rules/rules.h"

#include <functional>
#include <set>

#include "analysis/callgraph.h"
#include "ir/typecheck.h"

namespace wj {

// ------------------------------------------------------------ TypeProperties

bool TypeProperties::strictFinalType(const Type& t, std::string* why) {
    switch (t.kind()) {
    case Type::Kind::Void:
    case Type::Kind::Prim:
        return true;
    case Type::Kind::Array:
        return strictFinalType(t.elem(), why);
    case Type::Kind::Class:
        return strictFinalClass(t.className(), why);
    }
    return false;
}

bool TypeProperties::strictFinalClass(const std::string& name, std::string* why) {
    auto it = sfCache_.find(name);
    if (it != sfCache_.end()) {
        if (it->second == Tri::InProgress) {
            // Field chain reaches back to this class: recursive, cannot be a
            // finite set of inlined primitives.
            if (why) *why = name + " is a recursive type";
            return false;
        }
        return it->second == Tri::Yes;
    }
    sfCache_[name] = Tri::InProgress;

    auto fail = [&](const std::string& reason) {
        sfCache_[name] = Tri::No;
        if (why) *why = reason;
        return false;
    };

    const ClassDecl* c = prog_->cls(name);
    if (!c) return fail("unknown class " + name);
    if (c->isInterface) return fail(name + " is an interface (not a leaf class)");
    for (const auto& m : c->methods) {
        if (m->isAbstract) return fail(name + " is abstract (not instantiable)");
    }
    if (!prog_->isLeaf(name)) return fail(name + " has subclasses (not a leaf class)");
    for (const Field* f : prog_->allFields(name)) {
        std::string sub;
        if (!strictFinalType(f->type, &sub)) {
            return fail(name + "." + f->name + " is not of a strict-final type (" + sub + ")");
        }
    }
    sfCache_[name] = Tri::Yes;
    return true;
}

bool TypeProperties::semiImmutableType(const Type& t, std::string* why) {
    switch (t.kind()) {
    case Type::Kind::Void:
    case Type::Kind::Prim:
        return true;
    case Type::Kind::Array: {
        std::string sub;
        if (!semiImmutableType(t.elem(), &sub)) {
            if (why) *why = "array element not semi-immutable: " + sub;
            return false;
        }
        if (!strictFinalType(t.elem(), &sub)) {
            if (why) *why = "array element not strict-final: " + sub;
            return false;
        }
        return true;
    }
    case Type::Kind::Class:
        return semiImmutableClass(t.className(), why);
    }
    return false;
}

namespace {

/// True if `e` contains a ThisExpr anywhere.
bool usesThis(const Expr& e);

bool anyArg(const std::vector<ExprPtr>& args, bool (*pred)(const Expr&)) {
    for (const auto& a : args) {
        if (pred(*a)) return true;
    }
    return false;
}

bool usesThis(const Expr& e) {
    switch (e.kind) {
    case ExprKind::This: return true;
    case ExprKind::Const: case ExprKind::Local: case ExprKind::StaticGet: return false;
    case ExprKind::FieldGet: return usesThis(*as<FieldGetExpr>(e).obj);
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        return usesThis(*n.arr) || usesThis(*n.idx);
    }
    case ExprKind::ArrayLen: return usesThis(*as<ArrayLenExpr>(e).arr);
    case ExprKind::Unary: return usesThis(*as<UnaryExpr>(e).e);
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        return usesThis(*n.l) || usesThis(*n.r);
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        return usesThis(*n.c) || usesThis(*n.t) || usesThis(*n.f);
    }
    case ExprKind::Call: {
        const auto& n = as<CallExpr>(e);
        return usesThis(*n.recv) || anyArg(n.args, usesThis);
    }
    case ExprKind::StaticCall: return anyArg(as<StaticCallExpr>(e).args, usesThis);
    case ExprKind::New: return anyArg(as<NewExpr>(e).args, usesThis);
    case ExprKind::NewArray: return usesThis(*as<NewArrayExpr>(e).len);
    case ExprKind::Cast: return usesThis(*as<CastExpr>(e).e);
    case ExprKind::IntrinsicCall: return anyArg(as<IntrinsicExpr>(e).args, usesThis);
    }
    return false;
}

/// True if `e` contains any call (method, static, or intrinsic).
bool containsCall(const Expr& e) {
    switch (e.kind) {
    case ExprKind::Call: case ExprKind::StaticCall: case ExprKind::IntrinsicCall:
        return true;
    case ExprKind::Const: case ExprKind::Local: case ExprKind::This:
    case ExprKind::StaticGet:
        return false;
    case ExprKind::FieldGet: return containsCall(*as<FieldGetExpr>(e).obj);
    case ExprKind::ArrayGet: {
        const auto& n = as<ArrayGetExpr>(e);
        return containsCall(*n.arr) || containsCall(*n.idx);
    }
    case ExprKind::ArrayLen: return containsCall(*as<ArrayLenExpr>(e).arr);
    case ExprKind::Unary: return containsCall(*as<UnaryExpr>(e).e);
    case ExprKind::Binary: {
        const auto& n = as<BinaryExpr>(e);
        return containsCall(*n.l) || containsCall(*n.r);
    }
    case ExprKind::Cond: {
        const auto& n = as<CondExpr>(e);
        return containsCall(*n.c) || containsCall(*n.t) || containsCall(*n.f);
    }
    case ExprKind::New: return anyArg(as<NewExpr>(e).args, containsCall);
    case ExprKind::NewArray: return containsCall(*as<NewArrayExpr>(e).len);
    case ExprKind::Cast: return containsCall(*as<CastExpr>(e).e);
    }
    return false;
}

/// Constructor restrictions of semi-immutable definition 3(d): straight-line
/// field initialization only. `new` of other (semi-immutable) classes is
/// permitted — their constructors are equally restricted, so the composed
/// initialization is still branch-free. Returns a reason or "".
std::string ctorViolation(const Method& ctor) {
    bool first = true;
    for (const auto& st : ctor.body) {
        switch (st->kind) {
        case StmtKind::SuperCtor: {
            if (!first) return "super(...) is not the first statement";
            const auto& n = as<SuperCtorStmt>(*st);
            for (const auto& a : n.args) {
                if (usesThis(*a)) return "constructor uses `this` in super(...) arguments";
                if (containsCall(*a)) return "constructor calls a method in super(...) arguments";
            }
            break;
        }
        case StmtKind::FieldSet: {
            const auto& n = as<FieldSetStmt>(*st);
            if (n.obj->kind != ExprKind::This) {
                return "constructor stores to a field of another object";
            }
            if (usesThis(*n.value)) return "constructor uses `this` in an initializer";
            if (containsCall(*n.value)) return "constructor calls a method";
            break;
        }
        case StmtKind::Decl: {
            const auto& n = as<DeclStmt>(*st);
            if (n.init && usesThis(*n.init)) return "constructor uses `this` in a local initializer";
            if (n.init && containsCall(*n.init)) return "constructor calls a method";
            break;
        }
        case StmtKind::Return:
            if (as<ReturnStmt>(*st).value) return "constructor returns a value";
            break;
        case StmtKind::If: case StmtKind::While: case StmtKind::For:
            return "constructor contains a conditional branch or loop";
        default:
            return "constructor contains a disallowed statement";
        }
        first = false;
    }
    // No ?: anywhere (covered by branch rule — Cond may hide in exprs).
    return "";
}

/// Name of the class in `cls`'s superclass chain (inclusive) declaring `field`.
std::string fieldOwnerName(const Program& prog, const std::string& cls, const std::string& field) {
    for (const ClassDecl* c = prog.cls(cls); c;
         c = c->superName.empty() ? nullptr : prog.cls(c->superName)) {
        if (c->ownField(field)) return c->name;
    }
    return "";
}

} // namespace

bool TypeProperties::semiImmutableClass(const std::string& name, std::string* why) {
    auto it = siCache_.find(name);
    if (it != siCache_.end()) {
        if (it->second == Tri::InProgress) {
            if (why) *why = name + " is a recursive type";  // definition 3(e)
            return false;
        }
        return it->second == Tri::Yes;
    }
    siCache_[name] = Tri::InProgress;

    auto fail = [&](const std::string& reason) {
        siCache_[name] = Tri::No;
        if (why) *why = reason;
        return false;
    };

    const ClassDecl* c = prog_->cls(name);
    if (!c) return fail("unknown class " + name);

    // (b) superclasses semi-immutable.
    if (!c->superName.empty()) {
        std::string sub;
        if (!semiImmutableClass(c->superName, &sub)) {
            return fail("superclass not semi-immutable: " + sub);
        }
    }
    // (a) + (e) fields of semi-immutable types; recursion detected via cache.
    for (const auto& f : c->fields) {
        std::string sub;
        if (!semiImmutableType(f.type, &sub)) {
            return fail(name + "." + f.name + " not of a semi-immutable type (" + sub + ")");
        }
    }
    // (d) constructor restrictions.
    if (c->ctor) {
        std::string v = ctorViolation(*c->ctor);
        if (!v.empty()) return fail(name + ": " + v);
    }
    // (c) — constancy of non-array fields is a whole-program property over
    // method bodies; verifyCodingRules performs that scan. Here we certify
    // the per-type structure.
    siCache_[name] = Tri::Yes;
    return true;
}

bool TypeProperties::isStrictFinal(const Type& t) { return strictFinalType(t, nullptr); }
bool TypeProperties::isSemiImmutable(const Type& t) { return semiImmutableType(t, nullptr); }

std::string TypeProperties::explainStrictFinal(const Type& t) {
    // Bypass the cache for classes so the explanation is regenerated.
    sfCache_.clear();
    std::string why;
    return strictFinalType(t, &why) ? std::string() : why;
}

std::string TypeProperties::explainSemiImmutable(const Type& t) {
    siCache_.clear();
    sfCache_.clear();
    std::string why;
    return semiImmutableType(t, &why) ? std::string() : why;
}

// --------------------------------------------------------- verifyCodingRules

namespace {

class RuleChecker {
public:
    explicit RuleChecker(const Program& prog) : prog_(prog), props_(prog) {}

    std::vector<Violation> run() {
        for (const ClassDecl* c : prog_.classes()) {
            if (!c->wootinj) continue;
            checkClass(*c);
        }
        checkRecursion();
        return std::move(violations_);
    }

private:
    void report(const std::string& rule, const std::string& where, const std::string& detail) {
        violations_.push_back({rule, where, detail});
    }

    void requireSemiImmutable(const Type& t, const std::string& where) {
        if (t.isVoid()) return;
        std::string key = t.str();
        if (!checkedSI_.insert(key + "@" + where).second) return;
        if (!props_.isSemiImmutable(t)) {
            report("rule-1", where, t.str() + " is not semi-immutable: " +
                                        props_.explainSemiImmutable(t));
        }
    }

    void requireStrictFinal(const Type& t, const std::string& where, const std::string& what) {
        if (t.isVoid()) return;
        if (!props_.isStrictFinal(t)) {
            report("rule-2", where,
                   what + " type " + t.str() + " is not strict-final: " +
                       props_.explainStrictFinal(t));
        }
    }

    void checkClass(const ClassDecl& c) {
        const std::string where = c.name;
        // Rule 1 on field/static types; the class's own type.
        requireSemiImmutable(Type::cls(c.name), where);
        for (const auto& f : c.fields) requireSemiImmutable(f.type, where + "." + f.name);
        // Rule 5: statics final primitives (IR can only hold final statics;
        // still reject non-primitive types defensively).
        for (const auto& sf : c.statics) {
            if (!sf.type.isPrim()) {
                report("rule-5", where + "." + sf.name, "static field of non-primitive type " +
                                                            sf.type.str());
            }
        }
        if (c.ctor) checkMethod(c, *c.ctor);
        for (const auto& m : c.methods) checkMethod(c, *m);
    }

    void checkMethod(const ClassDecl& c, const Method& m) {
        const std::string where = c.name + "." + (m.isCtor() ? "<init>" : m.name);
        // Rule 1 on parameter and return types; rule 2 exempts parameters
        // and fields but *not* return types.
        for (const auto& p : m.params) requireSemiImmutable(p.type, where);
        requireSemiImmutable(m.ret, where);
        if (!m.isCtor()) requireStrictFinal(m.ret, where, "return");
        if (m.isAbstract) return;

        TypeScope scope(prog_, m.isStatic ? nullptr : &c, m);
        inCtor_ = m.isCtor();
        checkBlock(scope, m.body, where);
        inCtor_ = false;
    }

    void checkBlock(TypeScope& s, const Block& b, const std::string& where) {
        for (const auto& st : b) checkStmt(s, *st, where);
    }

    void checkStmt(TypeScope& s, const Stmt& st, const std::string& where) {
        switch (st.kind) {
        case StmtKind::Decl: {
            const auto& n = as<DeclStmt>(st);
            requireStrictFinal(n.type, where, "local '" + n.name + "'");
            requireSemiImmutable(n.type, where);
            if (n.init) checkExpr(s, *n.init, where);
            s.declare(n.name, n.type);
            return;
        }
        case StmtKind::AssignLocal: {
            const auto& n = as<AssignLocalStmt>(st);
            if (s.isParam(n.name)) {
                report("rule-3", where, "assignment to method parameter '" + n.name + "'");
            }
            checkExpr(s, *n.value, where);
            return;
        }
        case StmtKind::FieldSet: {
            const auto& n = as<FieldSetStmt>(st);
            checkExpr(s, *n.obj, where);
            checkExpr(s, *n.value, where);
            // Semi-immutability (c): outside constructors, only array-typed
            // fields may be stored.
            if (!inCtor_) {
                Type ot = typeOf(s, *n.obj);
                if (ot.isClass()) {
                    const Field* f = prog_.resolveField(ot.className(), n.field);
                    if (f && !f->type.isArray()) {
                        report("semi-immutable", where,
                               "store to non-array field " +
                                   fieldOwnerName(prog_, ot.className(), n.field) + "." + n.field +
                                   " outside a constructor");
                    }
                }
            }
            return;
        }
        case StmtKind::ArraySet: {
            const auto& n = as<ArraySetStmt>(st);
            checkExpr(s, *n.arr, where);
            checkExpr(s, *n.idx, where);
            checkExpr(s, *n.value, where);
            return;
        }
        case StmtKind::If: {
            const auto& n = as<IfStmt>(st);
            checkExpr(s, *n.cond, where);
            s.push();
            checkBlock(s, n.thenB, where);
            s.pop();
            s.push();
            checkBlock(s, n.elseB, where);
            s.pop();
            return;
        }
        case StmtKind::While: {
            const auto& n = as<WhileStmt>(st);
            checkExpr(s, *n.cond, where);
            s.push();
            checkBlock(s, n.body, where);
            s.pop();
            return;
        }
        case StmtKind::For: {
            const auto& n = as<ForStmt>(st);
            requireStrictFinal(n.varType, where, "loop variable '" + n.var + "'");
            s.push();
            checkExpr(s, *n.init, where);
            s.declare(n.var, n.varType);
            checkExpr(s, *n.cond, where);
            checkExpr(s, *n.step, where);
            s.push();
            checkBlock(s, n.body, where);
            s.pop();
            s.pop();
            return;
        }
        case StmtKind::Return: {
            const auto& n = as<ReturnStmt>(st);
            if (n.value) checkExpr(s, *n.value, where);
            return;
        }
        case StmtKind::ExprStmt:
            checkExpr(s, *as<ExprStmt>(st).e, where);
            return;
        case StmtKind::SuperCtor: {
            const auto& n = as<SuperCtorStmt>(st);
            for (const auto& a : n.args) checkExpr(s, *a, where);
            return;
        }
        }
    }

    void checkExpr(TypeScope& s, const Expr& e, const std::string& where) {
        switch (e.kind) {
        case ExprKind::Const: case ExprKind::Local: case ExprKind::This:
        case ExprKind::StaticGet:
            return;
        case ExprKind::FieldGet:
            checkExpr(s, *as<FieldGetExpr>(e).obj, where);
            return;
        case ExprKind::ArrayGet: {
            const auto& n = as<ArrayGetExpr>(e);
            checkExpr(s, *n.arr, where);
            checkExpr(s, *n.idx, where);
            return;
        }
        case ExprKind::ArrayLen:
            checkExpr(s, *as<ArrayLenExpr>(e).arr, where);
            return;
        case ExprKind::Unary:
            checkExpr(s, *as<UnaryExpr>(e).e, where);
            return;
        case ExprKind::Binary: {
            const auto& n = as<BinaryExpr>(e);
            if (n.op == BinOp::Eq || n.op == BinOp::Ne) {
                Type lt = typeOf(s, *n.l);
                if (!lt.isPrim()) {
                    report("rule-7", where, "reference equality (" +
                                                std::string(binOpName(n.op)) + ") on " + lt.str());
                }
            }
            checkExpr(s, *n.l, where);
            checkExpr(s, *n.r, where);
            return;
        }
        case ExprKind::Cond: {
            const auto& n = as<CondExpr>(e);
            report("rule-7", where, "conditional operator (?:)");
            checkExpr(s, *n.c, where);
            checkExpr(s, *n.t, where);
            checkExpr(s, *n.f, where);
            return;
        }
        case ExprKind::Call: {
            const auto& n = as<CallExpr>(e);
            checkExpr(s, *n.recv, where);
            for (const auto& a : n.args) checkExpr(s, *a, where);
            return;
        }
        case ExprKind::StaticCall: {
            const auto& n = as<StaticCallExpr>(e);
            for (const auto& a : n.args) checkExpr(s, *a, where);
            return;
        }
        case ExprKind::New: {
            const auto& n = as<NewExpr>(e);
            requireSemiImmutable(Type::cls(n.cls), where);
            for (const auto& a : n.args) checkExpr(s, *a, where);
            return;
        }
        case ExprKind::NewArray: {
            const auto& n = as<NewArrayExpr>(e);
            requireStrictFinal(n.elem, where, "array element");
            checkExpr(s, *n.len, where);
            return;
        }
        case ExprKind::Cast: {
            const auto& n = as<CastExpr>(e);
            if (n.type.isClass()) requireStrictFinal(n.type, where, "cast");
            checkExpr(s, *n.e, where);
            return;
        }
        case ExprKind::IntrinsicCall: {
            const auto& n = as<IntrinsicExpr>(e);
            for (const auto& a : n.args) checkExpr(s, *a, where);
            return;
        }
        }
    }

    // ---- rule 6: the static call graph over @WootinJ methods is acyclic.
    void checkRecursion() {
        // Node = ownerClass + "." + method (the declaring class of the body);
        // the graph itself is shared with the effect analysis (src/analysis/).
        std::map<std::string, std::set<std::string>> edges =
            analysis::buildCallGraph(prog_, /*wootinjOnly=*/true).edges;
        // DFS cycle detection.
        std::set<std::string> done;
        std::vector<std::string> stack;
        std::set<std::string> onStack;
        std::function<void(const std::string&)> dfs = [&](const std::string& node) {
            if (done.count(node)) return;
            if (onStack.count(node)) {
                std::string cycle;
                bool in = false;
                for (const auto& n : stack) {
                    if (n == node) in = true;
                    if (in) cycle += n + " -> ";
                }
                report("rule-6", node, "recursive call cycle: " + cycle + node);
                return;
            }
            onStack.insert(node);
            stack.push_back(node);
            for (const auto& next : edges[node]) dfs(next);
            stack.pop_back();
            onStack.erase(node);
            done.insert(node);
        };
        for (const auto& [node, _] : edges) dfs(node);
    }

    const Program& prog_;
    TypeProperties props_;
    std::vector<Violation> violations_;
    std::set<std::string> checkedSI_;
    bool inCtor_ = false;
};

} // namespace

std::vector<Violation> verifyCodingRules(const Program& prog) {
    // Type-check first so the rule passes can rely on well-typed bodies.
    checkProgramTypes(prog);
    return RuleChecker(prog).run();
}

void requireCodingRules(const Program& prog) {
    auto vs = verifyCodingRules(prog);
    if (!vs.empty()) throw RuleViolationError(std::move(vs));
}

} // namespace wj
