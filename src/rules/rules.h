// The paper's Section 3.2: strict-final, semi-immutable, and the coding
// rules that make aggressive devirtualization and object inlining safe.
//
// A type T is STRICT-FINAL iff
//   1. T is a primitive type, or
//   2. T is an array type whose element type is strict-final, or
//   3. T is a final (leaf) class whose fields — including inherited ones —
//      are all of strict-final types.
//
// A type S is SEMI-IMMUTABLE iff
//   1. S is a primitive type, or
//   2. S is an array type whose element type is semi-immutable AND
//      strict-final, or
//   3. S is a class type where
//      (a) all fields are of semi-immutable types,
//      (b) all superclasses are semi-immutable (Object is),
//      (c) non-array fields are constant once the constructor finishes,
//      (d) constructors contain no conditional branches, no method calls
//          (except super(...)), and do not use `this` in expressions,
//      (e) S is not a recursive type.
//
// Coding rules for @WootinJ code (numbered as in the paper):
//   1. every type appearing in the code is semi-immutable;
//   2. every type is strict-final except method parameter and field types
//      (local-variable, return, and cast types are strict-final);
//   3. method parameters are constant (never assigned);
//   4. (type parameters — WJ IR has no generics; interfaces + rule 2 play
//      that role, so this rule has no checkable surface here);
//   5. static fields are final and not arrays (enforced structurally: the
//      IR only represents constant primitive statics);
//   6. no recursive calls (the static call graph is acyclic);
//   7. no conditional operator (?:) and no reference ==/!=;
//   8. no exceptions/reflection/threads/IO/.class/instanceof/null (the IR
//      cannot express most of these; null literals do not exist).
//
// Only classes marked @WootinJ are checked — "the rest of the program does
// not have to follow the rules" (Section 3).
#pragma once

#include <string>
#include <vector>

#include "ir/program.h"
#include "support/diagnostics.h"

namespace wj {

/// Answers strict-final / semi-immutable queries against one Program,
/// memoizing results. The Program must outlive the analysis.
class TypeProperties {
public:
    explicit TypeProperties(const Program& prog) : prog_(&prog) {}

    /// Is `t` strict-final? (Definition above.)
    bool isStrictFinal(const Type& t);

    /// Is `t` semi-immutable? Collects reasons when not.
    bool isSemiImmutable(const Type& t);

    /// Human-readable explanation of why `t` fails the given property;
    /// empty when it holds.
    std::string explainStrictFinal(const Type& t);
    std::string explainSemiImmutable(const Type& t);

private:
    enum class Tri { Unknown, InProgress, Yes, No };
    bool strictFinalClass(const std::string& name, std::string* why);
    bool semiImmutableClass(const std::string& name, std::string* why);
    bool strictFinalType(const Type& t, std::string* why);
    bool semiImmutableType(const Type& t, std::string* why);

    const Program* prog_;
    std::map<std::string, Tri> sfCache_;
    std::map<std::string, Tri> siCache_;
};

/// Verifies the coding rules over every @WootinJ class of `prog`.
/// Returns all violations found (empty = compliant).
std::vector<Violation> verifyCodingRules(const Program& prog);

/// Convenience: throws RuleViolationError if verifyCodingRules is non-empty.
void requireCodingRules(const Program& prog);

} // namespace wj
