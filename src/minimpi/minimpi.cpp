#include "minimpi/minimpi.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "support/diagnostics.h"

namespace wj::minimpi {

namespace {
// Collective operations use distinct tags on the system channel so that
// overlapping collectives (e.g. bcast inside allreduce) cannot cross-match.
constexpr int kTagBcast = 1;
constexpr int kTagReduceUp = 2;
constexpr int kTagReduceDown = 3;
} // namespace

int Comm::size() const noexcept { return world_->size(); }

World::World(int size) : size_(size), boxes_(static_cast<size_t>(std::max(size, 1))) {
    if (size <= 0) throw UsageError("MPI world size must be positive");
}

void World::post(int dest, Message msg) {
    if (dest < 0 || dest >= size_) {
        throw ExecError("MPI send to invalid rank " + std::to_string(dest));
    }
    // Traffic accounting lives here, not in Comm::send, so collective
    // internals (bcast/allreduce via sendSys) count toward bytesSent() —
    // the perf model's communication-volume input — exactly like user
    // point-to-point traffic.
    messages_ += 1;
    bytes_ += static_cast<int64_t>(msg.data.size());
    Mailbox& box = boxes_[static_cast<size_t>(dest)];
    {
        std::lock_guard<std::mutex> lock(box.m);
        box.q.push_back(std::move(msg));
    }
    // Notifying after the unlock is safe: a receiver can only be between
    // its predicate check and its wait while holding box.m, which the
    // enqueue above also required — so the message is either seen by the
    // check or the wakeup arrives after the wait began.
    box.cv.notify_all();
}

World::Message World::take(int me, int src, int tag, int channel) {
    if (src != kAnySource && (src < 0 || src >= size_)) {
        throw ExecError("MPI recv from invalid rank " + std::to_string(src));
    }
    Mailbox& box = boxes_[static_cast<size_t>(me)];
    std::unique_lock<std::mutex> lock(box.m);
    for (;;) {
        if (aborted_.load()) throw ExecError("MPI world aborted by another rank");
        auto it = std::find_if(box.q.begin(), box.q.end(), [&](const Message& m) {
            return m.channel == channel && m.tag == tag && (src == kAnySource || m.src == src);
        });
        if (it != box.q.end()) {
            Message msg = std::move(*it);
            box.q.erase(it);
            return msg;
        }
        box.cv.wait(lock);
    }
}

void World::abort() noexcept {
    aborted_.store(true);
    // Every notification below is issued while holding the mutex its
    // waiters wait under. Without the lock, a rank that has just evaluated
    // its wait predicate (seeing aborted_ == false) but not yet blocked
    // would miss the wakeup and hang forever — the notifier must serialize
    // with the check-then-wait step, which only the mutex provides.
    for (auto& box : boxes_) {
        std::lock_guard<std::mutex> lock(box.m);
        box.cv.notify_all();
    }
    {
        std::lock_guard<std::mutex> lock(barrierM_);
        barrierCv_.notify_all();
    }
}

void World::run(const std::function<void(Comm&)>& fn) {
    aborted_.store(false);
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(size_));
    std::mutex errM;
    std::exception_ptr firstErr;

    for (int r = 0; r < size_; ++r) {
        threads.emplace_back([&, r] {
            Comm comm(this, r);
            try {
                fn(comm);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(errM);
                    if (!firstErr) firstErr = std::current_exception();
                }
                abort();
            }
        });
    }
    for (auto& t : threads) t.join();
    // Drain undelivered messages so a reused World starts clean.
    for (auto& box : boxes_) {
        std::lock_guard<std::mutex> lock(box.m);
        box.q.clear();
    }
    {
        std::lock_guard<std::mutex> lock(barrierM_);
        barrierCount_ = 0;
    }
    if (firstErr) std::rethrow_exception(firstErr);
}

void Comm::send(const void* buf, size_t bytes, int dest, int tag) {
    World::Message msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.channel = 0;
    msg.data.assign(static_cast<const uint8_t*>(buf), static_cast<const uint8_t*>(buf) + bytes);
    world_->post(dest, std::move(msg));
}

int Comm::recv(void* buf, size_t bytes, int src, int tag) {
    World::Message msg = world_->take(rank_, src, tag, 0);
    if (msg.data.size() != bytes) {
        throw ExecError("MPI recv size mismatch: expected " + std::to_string(bytes) + " bytes, got " +
                        std::to_string(msg.data.size()));
    }
    std::memcpy(buf, msg.data.data(), bytes);
    return msg.src;
}

int Comm::sendrecv(const void* sbuf, size_t sbytes, int dest,
                   void* rbuf, size_t rbytes, int src, int tag) {
    send(sbuf, sbytes, dest, tag);
    return recv(rbuf, rbytes, src, tag);
}

void Comm::barrier() {
    std::unique_lock<std::mutex> lock(world_->barrierM_);
    const int64_t gen = world_->barrierGen_;
    if (++world_->barrierCount_ == world_->size_) {
        world_->barrierCount_ = 0;
        ++world_->barrierGen_;
        world_->barrierCv_.notify_all();
        return;
    }
    world_->barrierCv_.wait(lock, [&] {
        return world_->barrierGen_ != gen || world_->aborted_.load();
    });
    if (world_->aborted_.load()) throw ExecError("MPI world aborted by another rank");
}

void World::sendSys(int me, const void* buf, size_t bytes, int dest, int tag) {
    Message msg;
    msg.src = me;
    msg.tag = tag;
    msg.channel = 1;
    msg.data.assign(static_cast<const uint8_t*>(buf), static_cast<const uint8_t*>(buf) + bytes);
    post(dest, std::move(msg));
}

void World::recvSys(int me, void* buf, size_t bytes, int src, int tag) {
    Message msg = take(me, src, tag, 1);
    if (msg.data.size() != bytes) throw ExecError("MPI collective size mismatch");
    std::memcpy(buf, msg.data.data(), bytes);
}

void Comm::bcast(void* buf, size_t bytes, int root) {
    if (root < 0 || root >= world_->size_) throw ExecError("bcast: invalid root");
    if (rank_ == root) {
        for (int r = 0; r < world_->size_; ++r) {
            if (r != root) world_->sendSys(rank_, buf, bytes, r, kTagBcast);
        }
    } else {
        world_->recvSys(rank_, buf, bytes, root, kTagBcast);
    }
    barrier();  // keep successive collectives from overtaking each other
}

double Comm::allreduce(double v, bool isMax) {
    // Gather to rank 0 in rank order (deterministic floating-point result),
    // reduce, broadcast back — the textbook layering over point-to-point.
    double acc = v;
    if (rank_ == 0) {
        for (int r = 1; r < world_->size_; ++r) {
            double other = 0;
            world_->recvSys(0, &other, sizeof(other), r, kTagReduceUp);
            acc = isMax ? std::max(acc, other) : acc + other;
        }
        for (int r = 1; r < world_->size_; ++r) {
            world_->sendSys(0, &acc, sizeof(acc), r, kTagReduceDown);
        }
    } else {
        world_->sendSys(rank_, &v, sizeof(v), 0, kTagReduceUp);
        world_->recvSys(rank_, &acc, sizeof(acc), 0, kTagReduceDown);
    }
    barrier();
    return acc;
}

double Comm::allreduceSum(double v) { return allreduce(v, false); }

double Comm::allreduceMax(double v) { return allreduce(v, true); }

} // namespace wj::minimpi
