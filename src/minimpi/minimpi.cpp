// Transport-agnostic MiniMPI semantics: the Comm surface (tag matching
// delegated to the transport, collectives layered on point-to-point, fault
// hooks) and the World facade. Everything address-space-specific lives in
// thread_transport.cpp / proc_transport.cpp behind transport.h.
#include "minimpi/minimpi.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "fault/fault.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "trace/trace.h"

namespace wj::minimpi {

namespace {
// Collective operations use distinct tags on the system channel so that
// overlapping collectives (e.g. bcast inside allreduce) cannot cross-match.
constexpr int kTagBcast = 1;
constexpr int kTagReduceUp = 2;
constexpr int kTagReduceDown = 3;

constexpr int kDefaultWatchdogMs = 30000;

int watchdogDefaultMs() {
    if (const char* v = std::getenv("WJ_WATCHDOG_MS"); v && *v) {
        return std::atoi(v);
    }
    return kDefaultWatchdogMs;
}

} // namespace

TransportKind defaultTransportKind() {
    if (const char* v = std::getenv("WJ_TRANSPORT"); v && *v) {
        if (std::strcmp(v, "proc") == 0) return TransportKind::Proc;
        if (std::strcmp(v, "threads") == 0) return TransportKind::Threads;
        throw UsageError(std::string("WJ_TRANSPORT must be 'threads' or 'proc', got '") + v +
                         "'");
    }
    return TransportKind::Threads;
}

int configuredRanks(int fallback) {
    if (const char* v = std::getenv("WJ_NP"); v && *v) {
        const int n = std::atoi(v);
        if (n > 0) return n;
    }
    return fallback;
}

// ------------------------------------------------------------------ World

World::World(int size, TransportKind kind)
    : size_(size), watchdogMs_(watchdogDefaultMs()) {
    if (size <= 0) throw UsageError("MPI world size must be positive");
    transport_ = kind == TransportKind::Proc ? makeProcTransport(size)
                                             : makeThreadTransport(size);
}

void World::run(const std::function<void(Comm&)>& fn) {
    std::exception_ptr err;
    try {
        transport_->run(
            [&](int r) {
                Comm comm(this, r);
                trace::setThreadRank(r);
                try {
                    fn(comm);
                } catch (...) {
                    trace::setThreadRank(-1);
                    throw;
                }
                trace::setThreadRank(-1);
            },
            watchdogMs_);
    } catch (...) {
        err = std::current_exception();
    }
    // All ranks are joined/reaped (quiesced), so this is a safe point to
    // merge their rings — and it runs even when a rank threw or died, so a
    // crashing multi-rank program still leaves a trace of what it did.
    trace::Tracer::instance().flushIfArmed();
    transport_->finishRun();
    if (err) std::rethrow_exception(err);
}

// ------------------------------------------------------------------- Comm

int Comm::size() const noexcept { return world_->size(); }

void Comm::faultHook() {
    if (fault::FaultPlan::active()) fault::FaultPlan::instance().onCommOp(rank_);
}

void Comm::send(const void* buf, size_t bytes, int dest, int tag) {
    trace::Span span("comm", "send", "peer", dest, "tag", tag,
                     "bytes", static_cast<int64_t>(bytes));
    faultHook();
    Message msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.channel = 0;
    world_->transport_->fillPayload(&msg, buf, bytes);
    world_->transport_->post(dest, std::move(msg));
}

void Comm::send(std::vector<uint8_t>&& data, int dest, int tag) {
    trace::Span span("comm", "send", "peer", dest, "tag", tag,
                     "bytes", static_cast<int64_t>(data.size()));
    faultHook();
    Message msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.channel = 0;
    msg.origin = kOriginMoved;
    msg.data = std::move(data);
    world_->transport_->post(dest, std::move(msg));
}

int Comm::recv(void* buf, size_t bytes, int src, int tag) {
    trace::Span span("comm", "recv", "peer", src, "tag", tag,
                     "bytes", static_cast<int64_t>(bytes));
    faultHook();
    Message msg = world_->transport_->take(rank_, src, tag, 0, -1);
    span.arg(0, "peer", msg.src);  // resolve ANY to the actual source
    if (msg.data.size() != bytes) {
        throw ExecError(format(
            "MPI recv size mismatch at rank %d (src %d, tag %d, transport=%s): expected %zu "
            "bytes, got %zu",
            rank_, msg.src, tag, world_->transportName(), bytes, msg.data.size()));
    }
    std::memcpy(buf, msg.data.data(), bytes);
    world_->transport_->recycle(std::move(msg.data));
    return msg.src;
}

int Comm::recvTimeout(void* buf, size_t bytes, int src, int tag, int timeoutMs) {
    if (timeoutMs < 0) throw UsageError("recvTimeout: timeout must be >= 0 ms");
    trace::Span span("comm", "recvTimeout", "peer", src, "tag", tag,
                     "bytes", static_cast<int64_t>(bytes));
    faultHook();
    Message msg = world_->transport_->take(rank_, src, tag, 0, timeoutMs);
    span.arg(0, "peer", msg.src);
    if (msg.data.size() != bytes) {
        throw ExecError(format(
            "MPI recv size mismatch at rank %d (src %d, tag %d, transport=%s): expected %zu "
            "bytes, got %zu",
            rank_, msg.src, tag, world_->transportName(), bytes, msg.data.size()));
    }
    std::memcpy(buf, msg.data.data(), bytes);
    world_->transport_->recycle(std::move(msg.data));
    return msg.src;
}

int Comm::sendrecv(const void* sbuf, size_t sbytes, int dest,
                   void* rbuf, size_t rbytes, int src, int tag) {
    send(sbuf, sbytes, dest, tag);
    return recv(rbuf, rbytes, src, tag);
}

int Comm::sendrecv(std::vector<uint8_t>&& sbuf, int dest,
                   void* rbuf, size_t rbytes, int src, int tag) {
    send(std::move(sbuf), dest, tag);
    return recv(rbuf, rbytes, src, tag);
}

void Comm::barrier() {
    trace::Span span("comm", "barrier");
    faultHook();
    world_->transport_->barrier(rank_);
}

void Comm::publishResult(int kind, int64_t bits) {
    world_->transport_->publishResult(kind, bits);
}

namespace {

/// Collective-internal send/recv on the system channel (channel 1).
void sendSys(Transport& t, int me, const void* buf, size_t bytes, int dest, int tag) {
    Message msg;
    msg.src = me;
    msg.tag = tag;
    msg.channel = 1;
    t.fillPayload(&msg, buf, bytes);
    t.post(dest, std::move(msg));
}

void recvSys(Transport& t, int me, void* buf, size_t bytes, int src, int tag) {
    Message msg = t.take(me, src, tag, 1, -1);
    if (msg.data.size() != bytes) {
        throw ExecError(format(
            "MPI collective size mismatch at rank %d (src %d, tag %d, transport=%s): expected "
            "%zu bytes, got %zu",
            me, msg.src, tag, t.kind(), bytes, msg.data.size()));
    }
    std::memcpy(buf, msg.data.data(), bytes);
    t.recycle(std::move(msg.data));
}

} // namespace

/// Binomial-tree fan-out from `root` (MPICH's bcast shape): relabel ranks
/// so the root is virtual rank 0, receive from the parent (clear the
/// lowest set bit of the virtual rank), then forward down the remaining
/// subtrees. size-1 messages in ceil(log2(size)) rounds instead of the
/// root pushing size-1 sends serially.
void Comm::treeBcast(void* buf, size_t bytes, int root, int tag) {
    Transport& t = *world_->transport_;
    const int size = world_->size_;
    const int vrank = (rank_ - root + size) % size;
    int mask = 1;
    while (mask < size) {
        if (vrank & mask) {
            const int parent = ((vrank & ~mask) + root) % size;
            recvSys(t, rank_, buf, bytes, parent, tag);
            break;
        }
        mask <<= 1;
    }
    // `mask` is now the lowest set bit of vrank (past the top for the
    // root); everything below it is this node's subtree to forward to.
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < size) {
            const int child = ((vrank + mask) + root) % size;
            sendSys(t, rank_, buf, bytes, child, tag);
        }
        mask >>= 1;
    }
}

void Comm::bcast(void* buf, size_t bytes, int root) {
    trace::Span span("comm", "bcast", "peer", root, "bytes",
                     static_cast<int64_t>(bytes));
    faultHook();
    if (root < 0 || root >= world_->size_) {
        throw ExecError(format("bcast: invalid root %d at rank %d", root, rank_));
    }
    treeBcast(buf, bytes, root, kTagBcast);
    world_->transport_->barrier(rank_);  // keep successive collectives from overtaking
}

void Comm::allreduceF64(double* buf, int n, bool isMax) {
    trace::Span span(
        "comm", isMax ? "allreduceMax" : "allreduceSum", "bytes",
        static_cast<int64_t>(sizeof(double)) * std::max(n, 0));
    faultHook();
    if (n < 0) throw ExecError(format("allreduce: negative count %d at rank %d", n, rank_));
    Transport& t = *world_->transport_;
    const size_t bytes = sizeof(double) * static_cast<size_t>(n);
    // Gather to rank 0 in rank order (deterministic floating-point result),
    // reduce element-wise, then binomial-tree broadcast of the reduced
    // buffer — the textbook layering over point-to-point.
    if (rank_ == 0) {
        std::vector<double> other(static_cast<size_t>(n));
        for (int r = 1; r < world_->size_; ++r) {
            recvSys(t, 0, other.data(), bytes, r, kTagReduceUp);
            for (int i = 0; i < n; ++i) {
                buf[i] = isMax ? std::max(buf[i], other[static_cast<size_t>(i)])
                               : buf[i] + other[static_cast<size_t>(i)];
            }
        }
    } else {
        sendSys(t, rank_, buf, bytes, 0, kTagReduceUp);
    }
    treeBcast(buf, bytes, 0, kTagReduceDown);
    world_->transport_->barrier(rank_);
}

void Comm::allreduceSumF64(double* buf, int n) { allreduceF64(buf, n, false); }

void Comm::allreduceMaxF64(double* buf, int n) { allreduceF64(buf, n, true); }

double Comm::allreduceSum(double v) {
    allreduceF64(&v, 1, false);
    return v;
}

double Comm::allreduceMax(double v) {
    allreduceF64(&v, 1, true);
    return v;
}

} // namespace wj::minimpi
