#include "minimpi/minimpi.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "fault/fault.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace wj::minimpi {

namespace {
// Collective operations use distinct tags on the system channel so that
// overlapping collectives (e.g. bcast inside allreduce) cannot cross-match.
constexpr int kTagBcast = 1;
constexpr int kTagReduceUp = 2;
constexpr int kTagReduceDown = 3;

constexpr int kDefaultWatchdogMs = 30000;

int watchdogDefaultMs() {
    if (const char* v = std::getenv("WJ_WATCHDOG_MS"); v && *v) {
        return std::atoi(v);
    }
    return kDefaultWatchdogMs;
}

std::string srcName(int src) {
    return src == kAnySource ? std::string("ANY") : std::to_string(src);
}

} // namespace

int Comm::size() const noexcept { return world_->size(); }

// ------------------------------------------------------------- buffer pool

std::vector<uint8_t> World::BufferPool::acquire(size_t bytes) {
    {
        std::lock_guard<std::mutex> lock(m_);
        // Smallest cached buffer that fits, searched from the back so the
        // most recently released (cache-warm) candidates win ties.
        size_t best = free_.size();
        for (size_t i = free_.size(); i-- > 0;) {
            if (free_[i].capacity() < bytes) continue;
            if (best == free_.size() || free_[i].capacity() < free_[best].capacity()) best = i;
        }
        if (best != free_.size()) {
            std::vector<uint8_t> buf = std::move(free_[best]);
            free_.erase(free_.begin() + static_cast<ptrdiff_t>(best));
            cachedBytes_ -= buf.capacity();
            buf.clear();
            return buf;
        }
    }
    std::vector<uint8_t> buf;
    // Round capacity up to the next power of two so repeated traffic at
    // nearby sizes lands in the same size class.
    size_t cap = kPooledThreshold;
    while (cap < bytes) cap *= 2;
    buf.reserve(cap);
    return buf;
}

void World::BufferPool::release(std::vector<uint8_t>&& buf) {
    if (buf.capacity() < kPooledThreshold) return;
    std::lock_guard<std::mutex> lock(m_);
    if (cachedBytes_ + buf.capacity() > kMaxCachedBytes) return;  // drop: bounded cache
    cachedBytes_ += buf.capacity();
    free_.push_back(std::move(buf));
}

World::World(int size)
    : size_(size), boxes_(static_cast<size_t>(std::max(size, 1))),
      waits_(static_cast<size_t>(std::max(size, 1))), watchdogMs_(watchdogDefaultMs()) {
    if (size <= 0) throw UsageError("MPI world size must be positive");
}

void World::post(int dest, Message msg) {
    if (dest < 0 || dest >= size_) {
        throw ExecError(format("MPI send to invalid rank %d (from rank %d, tag %d)", dest,
                               msg.src, msg.tag));
    }
    // Traffic accounting lives here, not in Comm::send, so collective
    // internals (bcast/allreduce via sendSys) count toward bytesSent() —
    // the perf model's communication-volume input — exactly like user
    // point-to-point traffic.
    messages_ += 1;
    bytes_ += static_cast<int64_t>(msg.data.size());
    {
        static auto& userBytes = trace::Metrics::instance().counter("comm.bytes.user");
        static auto& sysBytes = trace::Metrics::instance().counter("comm.bytes.collective");
        static auto& msgs = trace::Metrics::instance().counter("comm.messages");
        (msg.channel == 0 ? userBytes : sysBytes).add(static_cast<int64_t>(msg.data.size()));
        msgs.inc();
    }
    if (msg.origin == kOriginPooled) {
        pooledMessages_ += 1;
        pooledBytes_ += static_cast<int64_t>(msg.data.size());
    } else if (msg.origin == kOriginMoved) {
        zeroCopyMessages_ += 1;
        zeroCopyBytes_ += static_cast<int64_t>(msg.data.size());
    }
    bool duplicate = false;
    if (fault::FaultPlan::active()) {
        // The injector models the link: it may corrupt or delay the payload
        // in flight, deliver it twice, or lose it entirely.
        switch (fault::FaultPlan::instance().onMessage(msg.src, dest, msg.tag, msg.data)) {
        case fault::MsgFate::Drop: return;
        case fault::MsgFate::Duplicate: duplicate = true; break;
        case fault::MsgFate::Deliver: break;
        }
    }
    Mailbox& box = boxes_[static_cast<size_t>(dest)];
    {
        std::lock_guard<std::mutex> lock(box.m);
        box.q.push_back(msg);
        if (duplicate) box.q.push_back(std::move(msg));
    }
    progress_.fetch_add(1, std::memory_order_relaxed);
    // Notifying after the unlock is safe: a receiver can only be between
    // its predicate check and its wait while holding box.m, which the
    // enqueue above also required — so the message is either seen by the
    // check or the wakeup arrives after the wait began.
    box.cv.notify_all();
}

World::Message World::take(int me, int src, int tag, int channel, int timeoutMs) {
    if (src != kAnySource && (src < 0 || src >= size_)) {
        throw ExecError(format("rank %d: MPI recv from invalid rank %d (tag %d)", me, src, tag));
    }
    Mailbox& box = boxes_[static_cast<size_t>(me)];
    RankWait& w = waits_[static_cast<size_t>(me)];
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
    bool timedOut = false;
    std::unique_lock<std::mutex> lock(box.m);
    for (;;) {
        if (aborted_.load()) {
            throw ExecError(format(
                "MPI world aborted by another rank (rank %d was in recv src=%s tag=%d)", me,
                srcName(src).c_str(), tag));
        }
        auto it = std::find_if(box.q.begin(), box.q.end(), [&](const Message& m) {
            return m.channel == channel && m.tag == tag && (src == kAnySource || m.src == src);
        });
        if (it != box.q.end()) {
            Message msg = std::move(*it);
            box.q.erase(it);
            progress_.fetch_add(1, std::memory_order_relaxed);
            return msg;
        }
        if (timedOut) {
            throw ExecError(format("MPI recv timeout at rank %d after %d ms (src=%s, tag=%d)",
                                   me, timeoutMs, srcName(src).c_str(), tag));
        }
        // Publish what this rank is waiting for, then block: the watchdog
        // reads these fields to build its per-rank stall dump.
        w.src.store(src, std::memory_order_relaxed);
        w.tag.store(tag, std::memory_order_relaxed);
        w.channel.store(channel, std::memory_order_relaxed);
        w.state.store(kBlockedRecv, std::memory_order_release);
        if (timeoutMs < 0) {
            box.cv.wait(lock);
        } else if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
            timedOut = true;  // one more pass over the queue before throwing
        }
        w.state.store(kRunning, std::memory_order_release);
    }
}

void World::abort() noexcept {
    aborted_.store(true);
    progress_.fetch_add(1, std::memory_order_relaxed);
    // Every notification below is issued while holding the mutex its
    // waiters wait under. Without the lock, a rank that has just evaluated
    // its wait predicate (seeing aborted_ == false) but not yet blocked
    // would miss the wakeup and hang forever — the notifier must serialize
    // with the check-then-wait step, which only the mutex provides.
    for (auto& box : boxes_) {
        std::lock_guard<std::mutex> lock(box.m);
        box.cv.notify_all();
    }
    {
        std::lock_guard<std::mutex> lock(barrierM_);
        barrierCv_.notify_all();
    }
}

std::string World::stallReport(int quantumMs) {
    std::string out = format(
        "MiniMPI watchdog: global stall — no progress for ~%d ms with every live rank blocked; "
        "aborting world. Per-rank wait state:",
        quantumMs);
    for (int r = 0; r < size_; ++r) {
        RankWait& w = waits_[static_cast<size_t>(r)];
        size_t depth;
        {
            std::lock_guard<std::mutex> lock(boxes_[static_cast<size_t>(r)].m);
            depth = boxes_[static_cast<size_t>(r)].q.size();
        }
        switch (w.state.load(std::memory_order_acquire)) {
        case kBlockedRecv:
            out += format("\n  rank %d: blocked in recv(src=%s, tag=%d, %s channel), "
                          "mailbox depth %zu",
                          r, srcName(w.src.load()).c_str(), w.tag.load(),
                          w.channel.load() == 0 ? "user" : "collective", depth);
            break;
        case kBlockedBarrier:
            out += format("\n  rank %d: blocked in barrier, mailbox depth %zu", r, depth);
            break;
        case kDone:
            out += format("\n  rank %d: finished", r);
            break;
        default:
            out += format("\n  rank %d: running, mailbox depth %zu", r, depth);
            break;
        }
    }
    return out;
}

void World::run(const std::function<void(Comm&)>& fn) {
    // Reset per-run state FIRST: an aborted previous run leaves undelivered
    // messages in the mailboxes and possibly a partial barrier count; a
    // reused World must not let this run consume the dead run's state.
    for (auto& box : boxes_) {
        std::lock_guard<std::mutex> lock(box.m);
        box.q.clear();
    }
    {
        std::lock_guard<std::mutex> lock(barrierM_);
        barrierCount_ = 0;
    }
    for (auto& w : waits_) w.state.store(kRunning, std::memory_order_relaxed);
    progress_.store(0, std::memory_order_relaxed);
    watchdogFired_.store(false);
    aborted_.store(false);

    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(size_));
    std::mutex errM;
    std::exception_ptr firstErr;

    for (int r = 0; r < size_; ++r) {
        threads.emplace_back([&, r] {
            Comm comm(this, r);
            trace::setThreadRank(r);
            try {
                fn(comm);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(errM);
                    if (!firstErr) firstErr = std::current_exception();
                }
                abort();
            }
            waits_[static_cast<size_t>(r)].state.store(kDone, std::memory_order_release);
            trace::setThreadRank(-1);
        });
    }

    // Stall watchdog: samples twice per quantum; fires only after two
    // consecutive samples in which the progress counter stood still and
    // every rank was blocked (or finished) — i.e. the world cannot advance
    // on its own. Disabled with quantum 0.
    std::thread watchdog;
    std::mutex wdM;
    std::condition_variable wdCv;
    bool wdStop = false;
    const int quantum = watchdogMs_;
    if (quantum > 0) {
        watchdog = std::thread([&] {
            std::unique_lock<std::mutex> lk(wdM);
            uint64_t lastProgress = ~uint64_t{0};
            bool stalledOnce = false;
            const auto tick = std::chrono::milliseconds(std::max(1, quantum / 2));
            for (;;) {
                if (wdCv.wait_for(lk, tick, [&] { return wdStop; })) return;
                if (aborted_.load()) return;
                const uint64_t p = progress_.load(std::memory_order_relaxed);
                bool anyBlocked = false, allQuiet = true;
                for (int r = 0; r < size_; ++r) {
                    const int s = waits_[static_cast<size_t>(r)].state.load(
                        std::memory_order_acquire);
                    if (s == kBlockedRecv || s == kBlockedBarrier) anyBlocked = true;
                    else if (s != kDone) allQuiet = false;
                }
                const bool stalled = anyBlocked && allQuiet && p == lastProgress;
                if (stalled && stalledOnce) {
                    watchdogFired_.store(true);
                    auto err = std::make_exception_ptr(ExecError(stallReport(quantum)));
                    {
                        std::lock_guard<std::mutex> lock(errM);
                        if (!firstErr) firstErr = std::move(err);
                    }
                    abort();
                    return;
                }
                stalledOnce = stalled;
                lastProgress = p;
            }
        });
    }

    for (auto& t : threads) t.join();
    if (watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> lock(wdM);
            wdStop = true;
        }
        wdCv.notify_all();
        watchdog.join();
    }
    // All rank threads are joined (quiesced), so this is a safe point to
    // merge their rings — and it runs even when a rank threw, so a crashing
    // multi-rank program still leaves a trace of what it did.
    trace::Tracer::instance().flushIfArmed();
    if (firstErr) std::rethrow_exception(firstErr);
}

void Comm::faultHook() {
    if (fault::FaultPlan::active()) fault::FaultPlan::instance().onCommOp(rank_);
}

/// Fills a Message payload from a raw region: large payloads ride a
/// recycled pool buffer (no allocation on the steady state), small ones a
/// plain fresh vector.
void World::fillPayload(Message* msg, const void* buf, size_t bytes) {
    if (bytes >= kPooledThreshold) {
        msg->data = pool_.acquire(bytes);
        msg->data.resize(bytes);
        std::memcpy(msg->data.data(), buf, bytes);
        msg->origin = kOriginPooled;
    } else {
        msg->data.assign(static_cast<const uint8_t*>(buf),
                         static_cast<const uint8_t*>(buf) + bytes);
    }
}

void Comm::send(const void* buf, size_t bytes, int dest, int tag) {
    trace::Span span("comm", "send", "peer", dest, "tag", tag,
                     "bytes", static_cast<int64_t>(bytes));
    faultHook();
    World::Message msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.channel = 0;
    world_->fillPayload(&msg, buf, bytes);
    world_->post(dest, std::move(msg));
}

void Comm::send(std::vector<uint8_t>&& data, int dest, int tag) {
    trace::Span span("comm", "send", "peer", dest, "tag", tag,
                     "bytes", static_cast<int64_t>(data.size()));
    faultHook();
    World::Message msg;
    msg.src = rank_;
    msg.tag = tag;
    msg.channel = 0;
    msg.origin = World::kOriginMoved;
    msg.data = std::move(data);
    world_->post(dest, std::move(msg));
}

int Comm::recv(void* buf, size_t bytes, int src, int tag) {
    trace::Span span("comm", "recv", "peer", src, "tag", tag,
                     "bytes", static_cast<int64_t>(bytes));
    faultHook();
    World::Message msg = world_->take(rank_, src, tag, 0);
    span.arg(0, "peer", msg.src);  // resolve ANY to the actual source
    if (msg.data.size() != bytes) {
        throw ExecError(format(
            "MPI recv size mismatch at rank %d (src %d, tag %d): expected %zu bytes, got %zu",
            rank_, msg.src, tag, bytes, msg.data.size()));
    }
    std::memcpy(buf, msg.data.data(), bytes);
    world_->pool_.release(std::move(msg.data));
    return msg.src;
}

int Comm::recvTimeout(void* buf, size_t bytes, int src, int tag, int timeoutMs) {
    if (timeoutMs < 0) throw UsageError("recvTimeout: timeout must be >= 0 ms");
    trace::Span span("comm", "recvTimeout", "peer", src, "tag", tag,
                     "bytes", static_cast<int64_t>(bytes));
    faultHook();
    World::Message msg = world_->take(rank_, src, tag, 0, timeoutMs);
    span.arg(0, "peer", msg.src);
    if (msg.data.size() != bytes) {
        throw ExecError(format(
            "MPI recv size mismatch at rank %d (src %d, tag %d): expected %zu bytes, got %zu",
            rank_, msg.src, tag, bytes, msg.data.size()));
    }
    std::memcpy(buf, msg.data.data(), bytes);
    world_->pool_.release(std::move(msg.data));
    return msg.src;
}

int Comm::sendrecv(const void* sbuf, size_t sbytes, int dest,
                   void* rbuf, size_t rbytes, int src, int tag) {
    send(sbuf, sbytes, dest, tag);
    return recv(rbuf, rbytes, src, tag);
}

int Comm::sendrecv(std::vector<uint8_t>&& sbuf, int dest,
                   void* rbuf, size_t rbytes, int src, int tag) {
    send(std::move(sbuf), dest, tag);
    return recv(rbuf, rbytes, src, tag);
}

void Comm::barrier() {
    trace::Span span("comm", "barrier");
    faultHook();
    std::unique_lock<std::mutex> lock(world_->barrierM_);
    const int64_t gen = world_->barrierGen_;
    if (++world_->barrierCount_ == world_->size_) {
        world_->barrierCount_ = 0;
        ++world_->barrierGen_;
        world_->progress_.fetch_add(1, std::memory_order_relaxed);
        world_->barrierCv_.notify_all();
        return;
    }
    World::RankWait& w = world_->waits_[static_cast<size_t>(rank_)];
    w.state.store(World::kBlockedBarrier, std::memory_order_release);
    world_->barrierCv_.wait(lock, [&] {
        return world_->barrierGen_ != gen || world_->aborted_.load();
    });
    w.state.store(World::kRunning, std::memory_order_release);
    if (world_->aborted_.load()) {
        throw ExecError(format("MPI world aborted by another rank (rank %d was in barrier)",
                               rank_));
    }
}

void World::sendSys(int me, const void* buf, size_t bytes, int dest, int tag) {
    Message msg;
    msg.src = me;
    msg.tag = tag;
    msg.channel = 1;
    fillPayload(&msg, buf, bytes);
    post(dest, std::move(msg));
}

void World::recvSys(int me, void* buf, size_t bytes, int src, int tag) {
    Message msg = take(me, src, tag, 1);
    if (msg.data.size() != bytes) {
        throw ExecError(format(
            "MPI collective size mismatch at rank %d (src %d, tag %d): expected %zu bytes, "
            "got %zu",
            me, msg.src, tag, bytes, msg.data.size()));
    }
    std::memcpy(buf, msg.data.data(), bytes);
    pool_.release(std::move(msg.data));
}

/// Binomial-tree fan-out from `root` (MPICH's bcast shape): relabel ranks
/// so the root is virtual rank 0, receive from the parent (clear the
/// lowest set bit of the virtual rank), then forward down the remaining
/// subtrees. size-1 messages in ceil(log2(size)) rounds instead of the
/// root pushing size-1 sends serially.
void Comm::treeBcast(void* buf, size_t bytes, int root, int tag) {
    const int size = world_->size_;
    const int vrank = (rank_ - root + size) % size;
    int mask = 1;
    while (mask < size) {
        if (vrank & mask) {
            const int parent = ((vrank & ~mask) + root) % size;
            world_->recvSys(rank_, buf, bytes, parent, tag);
            break;
        }
        mask <<= 1;
    }
    // `mask` is now the lowest set bit of vrank (past the top for the
    // root); everything below it is this node's subtree to forward to.
    mask >>= 1;
    while (mask > 0) {
        if (vrank + mask < size) {
            const int child = ((vrank + mask) + root) % size;
            world_->sendSys(rank_, buf, bytes, child, tag);
        }
        mask >>= 1;
    }
}

void Comm::bcast(void* buf, size_t bytes, int root) {
    trace::Span span("comm", "bcast", "peer", root, "bytes",
                     static_cast<int64_t>(bytes));
    faultHook();
    if (root < 0 || root >= world_->size_) {
        throw ExecError(format("bcast: invalid root %d at rank %d", root, rank_));
    }
    treeBcast(buf, bytes, root, kTagBcast);
    barrier();  // keep successive collectives from overtaking each other
}

void Comm::allreduceF64(double* buf, int n, bool isMax) {
    trace::Span span(
        "comm", isMax ? "allreduceMax" : "allreduceSum", "bytes",
        static_cast<int64_t>(sizeof(double)) * std::max(n, 0));
    faultHook();
    if (n < 0) throw ExecError(format("allreduce: negative count %d at rank %d", n, rank_));
    const size_t bytes = sizeof(double) * static_cast<size_t>(n);
    // Gather to rank 0 in rank order (deterministic floating-point result),
    // reduce element-wise, then binomial-tree broadcast of the reduced
    // buffer — the textbook layering over point-to-point.
    if (rank_ == 0) {
        std::vector<double> other(static_cast<size_t>(n));
        for (int r = 1; r < world_->size_; ++r) {
            world_->recvSys(0, other.data(), bytes, r, kTagReduceUp);
            for (int i = 0; i < n; ++i) {
                buf[i] = isMax ? std::max(buf[i], other[static_cast<size_t>(i)])
                               : buf[i] + other[static_cast<size_t>(i)];
            }
        }
    } else {
        world_->sendSys(rank_, buf, bytes, 0, kTagReduceUp);
    }
    treeBcast(buf, bytes, 0, kTagReduceDown);
    barrier();
}

void Comm::allreduceSumF64(double* buf, int n) { allreduceF64(buf, n, false); }

void Comm::allreduceMaxF64(double* buf, int n) { allreduceF64(buf, n, true); }

double Comm::allreduceSum(double v) {
    allreduceF64(&v, 1, false);
    return v;
}

double Comm::allreduceMax(double v) {
    allreduceF64(&v, 1, true);
    return v;
}

} // namespace wj::minimpi
