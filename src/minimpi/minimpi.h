// MiniMPI: an in-process MPI substrate.
//
// The paper runs translated code under `mpirun` on TSUBAME 2.0. This machine
// has no interconnect, so WootinC provides a functional MPI implementation
// where ranks are OS threads inside one process, point-to-point messages
// travel through tag-matched mailboxes, and the collectives the class
// libraries need (barrier / bcast / allreduce) are built on top of the
// point-to-point layer, the way an MPI library layers them.
//
// Semantics implemented (the subset the paper's libraries use):
//   * send is buffered and never blocks (unbounded mailboxes);
//   * recv blocks until a message matching (src, tag) arrives; messages from
//     the same source are delivered in send order; ANY_SOURCE is supported;
//   * sendrecv = buffered send then recv (deadlock-free for halo exchange);
//   * an uncaught exception in any rank aborts the world: every blocked rank
//     is woken with an error, and World::run rethrows the first exception —
//     mirroring MPI_Abort. Tests use this for failure injection.
//
// Robustness layer (src/fault/):
//   * every Comm operation consults the process FaultPlan, so a seeded
//     WJ_FAULT spec can kill a rank at its Nth operation or drop /
//     duplicate / corrupt / delay a message in post();
//   * each run() is monitored by a watchdog thread: when every live rank
//     has been blocked in recv/barrier with no global progress for a
//     configurable quantum (WJ_WATCHDOG_MS or setWatchdogMillis, default
//     30 s, 0 disables), the world is aborted with a per-rank wait dump
//     instead of hanging forever — the moral equivalent of a batch
//     scheduler's stuck-job killer;
//   * recvTimeout() gives opt-in per-receive deadlines.
//
// Timing of a *cluster* is not simulated here; the perf module models
// communication cost analytically (see src/perf/).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <atomic>
#include <mutex>
#include <vector>

namespace wj::minimpi {

/// Matches any source rank in recv().
inline constexpr int kAnySource = -1;

/// Traffic accounting snapshot (World::stats()). `bytes` counts every
/// payload byte posted; the pooled/zeroCopy splits say how those bytes
/// travelled, so benches can report how much was actually memcpy'd:
///   copied      = plain assign into a fresh vector (small messages),
///   pooled      = one memcpy into a recycled pool buffer (large messages:
///                 no allocation, and the buffer returns to the pool at
///                 recv), and
///   zero-copy   = the caller's vector moved straight into the mailbox.
struct CommStats {
    int64_t messages = 0;
    int64_t bytes = 0;
    int64_t pooledMessages = 0;
    int64_t pooledBytes = 0;
    int64_t zeroCopyMessages = 0;
    int64_t zeroCopyBytes = 0;
    /// Bytes that crossed the mailbox via at least one send-side memcpy.
    int64_t copiedBytes() const noexcept { return bytes - zeroCopyBytes; }
};

class World;

/// Per-rank communicator handle, valid only inside World::run's callback on
/// its own rank thread (like an MPI rank's COMM_WORLD view).
class Comm {
public:
    int rank() const noexcept { return rank_; }
    int size() const noexcept;

    /// Buffered send of `bytes` bytes to `dest` with `tag`. Payloads of
    /// kPooledThreshold bytes or more travel in recycled pool buffers.
    void send(const void* buf, size_t bytes, int dest, int tag);

    /// Zero-copy send: the caller's buffer is moved into the mailbox with
    /// no payload copy (its size is the message size).
    void send(std::vector<uint8_t>&& data, int dest, int tag);

    /// Blocking receive of exactly `bytes` bytes from `src` (or kAnySource)
    /// with matching `tag`. Throws ExecError on size mismatch or abort.
    /// Returns the actual source rank.
    int recv(void* buf, size_t bytes, int src, int tag);

    /// recv() with a deadline: throws ExecError (with rank/src/tag context)
    /// if no matching message arrives within `timeoutMs` milliseconds.
    int recvTimeout(void* buf, size_t bytes, int src, int tag, int timeoutMs);

    /// Combined exchange: buffered send to `dest`, then receive from `src`.
    int sendrecv(const void* sbuf, size_t sbytes, int dest,
                 void* rbuf, size_t rbytes, int src, int tag);

    /// Combined exchange posting the send as a move (zero-copy) when the
    /// caller hands over an rvalue buffer.
    int sendrecv(std::vector<uint8_t>&& sbuf, int dest,
                 void* rbuf, size_t rbytes, int src, int tag);

    /// Collective barrier over all ranks.
    void barrier();

    /// Broadcast `bytes` from `root`'s buffer into every rank's buffer
    /// along a binomial tree (ceil(log2(size)) rounds, size-1 messages).
    void bcast(void* buf, size_t bytes, int root);

    /// Element-wise all-reduce of buf[0..n): gather to rank 0 in rank
    /// order (deterministic floating point), reduce, binomial-tree
    /// broadcast of the result. The scalar overloads route through this.
    void allreduceSumF64(double* buf, int n);
    void allreduceMaxF64(double* buf, int n);

    /// All-reduce of one double.
    double allreduceSum(double v);
    double allreduceMax(double v);

private:
    void allreduceF64(double* buf, int n, bool isMax);

    /// Binomial-tree fan-out of `bytes` from `root` on the system channel;
    /// shared by bcast and the allreduce down-phase (distinct tags).
    void treeBcast(void* buf, size_t bytes, int root, int tag);

    /// FaultPlan hook: one "comm op" per public operation entry.
    void faultHook();

public:

    /// Convenience float-array wrappers (what the IR intrinsics bind to).
    void sendF32(const float* buf, int n, int dest, int tag) {
        send(buf, sizeof(float) * static_cast<size_t>(n), dest, tag);
    }
    void recvF32(float* buf, int n, int src, int tag) {
        recv(buf, sizeof(float) * static_cast<size_t>(n), src, tag);
    }

private:
    friend class World;
    Comm(World* w, int rank) : world_(w), rank_(rank) {}
    World* world_;
    int rank_;
};

/// A fixed-size group of ranks. Construct, then call run() any number of
/// times; each run spawns `size` rank threads and joins them.
class World {
public:
    explicit World(int size);
    World(const World&) = delete;
    World& operator=(const World&) = delete;

    int size() const noexcept { return size_; }

    /// Runs `fn` once per rank on its own thread. If any rank throws, the
    /// world aborts: all blocked ranks are released with an error and the
    /// first exception is rethrown here after all threads joined.
    void run(const std::function<void(Comm&)>& fn);

    /// Overrides the stall-watchdog quantum for this world (milliseconds;
    /// 0 disables). Default: $WJ_WATCHDOG_MS, else 30000.
    void setWatchdogMillis(int ms) { watchdogMs_ = ms; }
    int watchdogMillis() const noexcept { return watchdogMs_; }

    /// True when the last run() was aborted by the stall watchdog.
    bool watchdogFired() const noexcept { return watchdogFired_.load(); }

    /// Total messages/bytes posted since construction (instrumentation for
    /// tests and the perf model's communication-volume accounting). Counted
    /// at post() time, so collective-internal traffic (bcast / allreduce
    /// fan-out) is included alongside user point-to-point sends.
    int64_t messagesSent() const noexcept { return messages_; }
    int64_t bytesSent() const noexcept { return bytes_; }

    /// Full traffic snapshot including the pooled / zero-copy split.
    CommStats stats() const noexcept {
        CommStats s;
        s.messages = messages_;
        s.bytes = bytes_;
        s.pooledMessages = pooledMessages_;
        s.pooledBytes = pooledBytes_;
        s.zeroCopyMessages = zeroCopyMessages_;
        s.zeroCopyBytes = zeroCopyBytes_;
        return s;
    }

    /// Messages at or above this size ride in recycled pool buffers; the
    /// buffer returns to the pool when the receiver drains it.
    static constexpr size_t kPooledThreshold = 256;

private:
    friend class Comm;

    enum Origin : uint8_t { kOriginCopied = 0, kOriginPooled = 1, kOriginMoved = 2 };

    struct Message {
        int src;
        int tag;
        int channel;  // 0 = user point-to-point, 1 = collective internals
        uint8_t origin = kOriginCopied;
        std::vector<uint8_t> data;
    };

    /// Size-bucketed freelist of payload vectors. Bounded: at most
    /// kMaxCachedBytes of capacity is retained; oversize or surplus
    /// buffers are simply dropped (freed).
    class BufferPool {
    public:
        std::vector<uint8_t> acquire(size_t bytes);
        void release(std::vector<uint8_t>&& buf);

    private:
        static constexpr size_t kMaxCachedBytes = 64u << 20;
        std::mutex m_;
        std::vector<std::vector<uint8_t>> free_;
        size_t cachedBytes_ = 0;
    };

    struct Mailbox {
        std::mutex m;
        std::condition_variable cv;
        std::deque<Message> q;
    };

    /// Watchdog-visible wait state of one rank thread. All fields are
    /// atomics because the watchdog samples them from its own thread.
    struct RankWait {
        std::atomic<int> state{kRunning};
        std::atomic<int> src{0};
        std::atomic<int> tag{0};
        std::atomic<int> channel{0};
    };
    static constexpr int kRunning = 0;
    static constexpr int kBlockedRecv = 1;
    static constexpr int kBlockedBarrier = 2;
    static constexpr int kDone = 3;

    void post(int dest, Message msg);
    /// Payload setup for raw-region sends: pool buffer at or above
    /// kPooledThreshold, plain vector below.
    void fillPayload(Message* msg, const void* buf, size_t bytes);
    /// Blocks until a matching message arrives; `timeoutMs < 0` waits
    /// forever, otherwise throws ExecError after the deadline.
    Message take(int me, int src, int tag, int channel, int timeoutMs = -1);
    void abort() noexcept;

    /// Per-rank diagnostic dump for the watchdog's abort error.
    std::string stallReport(int quantumMs);

    // Collective internals (channel 1).
    void sendSys(int me, const void* buf, size_t bytes, int dest, int tag);
    void recvSys(int me, void* buf, size_t bytes, int src, int tag);

    int size_;
    std::vector<Mailbox> boxes_;
    std::vector<RankWait> waits_;

    std::mutex barrierM_;
    std::condition_variable barrierCv_;
    int barrierCount_ = 0;
    int64_t barrierGen_ = 0;

    int watchdogMs_;
    std::atomic<bool> watchdogFired_{false};
    /// Bumped by every post, successful take, and barrier release; the
    /// watchdog declares a stall only when this stands still for a quantum
    /// while every live rank is blocked.
    std::atomic<uint64_t> progress_{0};

    std::atomic<bool> aborted_{false};
    std::atomic<int64_t> messages_{0};
    std::atomic<int64_t> bytes_{0};
    std::atomic<int64_t> pooledMessages_{0};
    std::atomic<int64_t> pooledBytes_{0};
    std::atomic<int64_t> zeroCopyMessages_{0};
    std::atomic<int64_t> zeroCopyBytes_{0};
    BufferPool pool_;
};

} // namespace wj::minimpi
