// MiniMPI: an MPI substrate with pluggable address-space transports.
//
// The paper runs translated code under `mpirun` on TSUBAME 2.0. This machine
// has no interconnect, so WootinC provides a functional MPI implementation
// with two transports behind one Transport interface (transport.h):
//
//   * threads (default): ranks are OS threads inside one process,
//     point-to-point messages travel through tag-matched mailboxes with
//     zero-copy/pooled payloads — the in-process fast path;
//   * proc (WJ_TRANSPORT=proc, or `wjrun`): ranks are forked child
//     processes communicating over shared-memory SPSC rings with a
//     Unix-socket fallback for large payloads — real address-space
//     isolation, real process death.
//
// Semantics implemented (the subset the paper's libraries use), identical
// across transports:
//   * send is buffered and never blocks indefinitely on a live world;
//   * recv blocks until a message matching (src, tag) arrives; messages from
//     the same source are delivered in send order; ANY_SOURCE is supported;
//   * sendrecv = buffered send then recv (deadlock-free for halo exchange);
//   * an uncaught exception in any rank aborts the world: every blocked rank
//     is woken with an error, and World::run rethrows the first exception —
//     mirroring MPI_Abort. On the proc transport a rank that dies by a real
//     signal (SIGKILL and friends) aborts the world the same way, and the
//     error names the dead child's pid and signal.
//
// Robustness layer (src/fault/):
//   * every Comm operation consults the process FaultPlan, so a seeded
//     WJ_FAULT spec can kill a rank at its Nth operation (a throw on the
//     threads transport, a real SIGKILL on the proc transport) or drop /
//     duplicate / corrupt / delay a message in post();
//   * each run() is monitored by a watchdog: when every live rank has been
//     blocked in recv/barrier with no global progress for a configurable
//     quantum (WJ_WATCHDOG_MS or setWatchdogMillis, default 30 s, 0
//     disables), the world is aborted with a per-rank wait dump instead of
//     hanging forever — the moral equivalent of a batch scheduler's
//     stuck-job killer;
//   * recvTimeout() gives opt-in per-receive deadlines.
//
// Timing of a *cluster* is not simulated here; the perf module models
// communication cost analytically (see src/perf/).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "minimpi/transport.h"

namespace wj::minimpi {

class World;

/// Per-rank communicator handle, valid only inside World::run's callback on
/// its own rank thread/process (like an MPI rank's COMM_WORLD view).
class Comm {
public:
    int rank() const noexcept { return rank_; }
    int size() const noexcept;

    /// Buffered send of `bytes` bytes to `dest` with `tag`. On the threads
    /// transport, payloads of kPooledThreshold bytes or more travel in
    /// recycled pool buffers.
    void send(const void* buf, size_t bytes, int dest, int tag);

    /// Zero-copy send: the caller's buffer is moved into the mailbox with
    /// no payload copy (its size is the message size). The proc transport
    /// still copies once through the ring/socket — that is its nature.
    void send(std::vector<uint8_t>&& data, int dest, int tag);

    /// Blocking receive of exactly `bytes` bytes from `src` (or kAnySource)
    /// with matching `tag`. Throws ExecError on size mismatch or abort.
    /// Returns the actual source rank.
    int recv(void* buf, size_t bytes, int src, int tag);

    /// recv() with a deadline: throws ExecError (with rank/src/tag and
    /// transport context) if no matching message arrives within `timeoutMs`
    /// milliseconds.
    int recvTimeout(void* buf, size_t bytes, int src, int tag, int timeoutMs);

    /// Combined exchange: buffered send to `dest`, then receive from `src`.
    int sendrecv(const void* sbuf, size_t sbytes, int dest,
                 void* rbuf, size_t rbytes, int src, int tag);

    /// Combined exchange posting the send as a move (zero-copy) when the
    /// caller hands over an rvalue buffer.
    int sendrecv(std::vector<uint8_t>&& sbuf, int dest,
                 void* rbuf, size_t rbytes, int src, int tag);

    /// Collective barrier over all ranks.
    void barrier();

    /// Broadcast `bytes` from `root`'s buffer into every rank's buffer
    /// along a binomial tree (ceil(log2(size)) rounds, size-1 messages).
    void bcast(void* buf, size_t bytes, int root);

    /// Element-wise all-reduce of buf[0..n): gather to rank 0 in rank
    /// order (deterministic floating point), reduce, binomial-tree
    /// broadcast of the result. The scalar overloads route through this.
    void allreduceSumF64(double* buf, int n);
    void allreduceMaxF64(double* buf, int n);

    /// All-reduce of one double.
    double allreduceSum(double v);
    double allreduceMax(double v);

    /// Publishes this rank's primitive result for World::takeResult —
    /// the only sanctioned way for a value to leave the world on the proc
    /// transport, where lambda captures cannot cross the fork boundary.
    void publishResult(int kind, int64_t bits);

private:
    void allreduceF64(double* buf, int n, bool isMax);

    /// Binomial-tree fan-out of `bytes` from `root` on the system channel;
    /// shared by bcast and the allreduce down-phase (distinct tags).
    void treeBcast(void* buf, size_t bytes, int root, int tag);

    /// FaultPlan hook: one "comm op" per public operation entry.
    void faultHook();

public:

    /// Convenience float-array wrappers (what the IR intrinsics bind to).
    void sendF32(const float* buf, int n, int dest, int tag) {
        send(buf, sizeof(float) * static_cast<size_t>(n), dest, tag);
    }
    void recvF32(float* buf, int n, int src, int tag) {
        recv(buf, sizeof(float) * static_cast<size_t>(n), src, tag);
    }

private:
    friend class World;
    Comm(World* w, int rank) : world_(w), rank_(rank) {}
    World* world_;
    int rank_;
};

/// A fixed-size group of ranks over one transport. Construct, then call
/// run() any number of times; each run spawns `size` rank threads (or
/// forked child processes) and joins/reaps them.
class World {
public:
    explicit World(int size, TransportKind kind = defaultTransportKind());
    World(const World&) = delete;
    World& operator=(const World&) = delete;

    int size() const noexcept { return size_; }

    TransportKind transportKind() const noexcept { return transport_->kindId(); }
    const char* transportName() const noexcept { return transport_->kind(); }

    /// Runs `fn` once per rank on its own thread/process. If any rank
    /// throws (or, on the proc transport, dies), the world aborts: all
    /// blocked ranks are released with an error and the first exception is
    /// rethrown here after all ranks joined.
    void run(const std::function<void(Comm&)>& fn);

    /// Overrides the stall-watchdog quantum for this world (milliseconds;
    /// 0 disables). Default: $WJ_WATCHDOG_MS, else 30000.
    void setWatchdogMillis(int ms) { watchdogMs_ = ms; }
    int watchdogMillis() const noexcept { return watchdogMs_; }

    /// True when the last run() was aborted by the stall watchdog.
    bool watchdogFired() const noexcept { return transport_->watchdogFired(); }

    /// Total messages/bytes posted since construction (instrumentation for
    /// tests and the perf model's communication-volume accounting). Counted
    /// at post() time, so collective-internal traffic (bcast / allreduce
    /// fan-out) is included alongside user point-to-point sends.
    int64_t messagesSent() const noexcept { return transport_->stats().messages; }
    int64_t bytesSent() const noexcept { return transport_->stats().bytes; }

    /// Full traffic snapshot including the pooled / zero-copy split.
    CommStats stats() const noexcept { return transport_->stats(); }

    /// Reads and clears the result published by Comm::publishResult during
    /// the last run(); false when no rank published one.
    bool takeResult(int* kind, int64_t* bits) { return transport_->takeResult(kind, bits); }

    /// Messages at or above this size ride in recycled pool buffers on the
    /// threads transport; the buffer returns to the pool when the receiver
    /// drains it.
    static constexpr size_t kPooledThreshold = 256;

private:
    friend class Comm;

    int size_;
    int watchdogMs_;
    std::unique_ptr<Transport> transport_;
};

} // namespace wj::minimpi
