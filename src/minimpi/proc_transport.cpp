// ProcTransport: MiniMPI ranks as real processes.
//
// Each rank is a forked child of the launching process. The data plane is
// a matrix of single-producer/single-consumer byte rings in anonymous
// MAP_SHARED memory — one ring per ordered (src, dest) pair, condvar-free
// (acquire/release atomics + bounded spin with backoff on both ends).
// Payloads too large for a ring travel over per-rank Unix-domain stream
// sockets instead; a per-child drainer thread multiplexes both sources
// into a local tag-matched mailbox so recv semantics (FIFO per source,
// ANY_SOURCE, timeouts) are identical to the threads transport.
//
// The control plane is a socketpair per child to the parent: READY before
// the world starts (every child has bound its listener first, so large
// sends never race the listener), DONE or an error report at the end. The
// parent supervises: it reaps children with waitpid — a rank that dies by
// a real signal (SIGKILL from a WJ_FAULT kill rule, an external `kill`, a
// crash) aborts the world with an error naming the child's pid and signal
// plus the same per-rank wait dump the watchdog produces — and runs the
// two-sample stall watchdog against the shared-memory wait states.
//
// Determinism contract (tested across transports): tag matching, FIFO per
// source, collective shapes and reduction order are byte-identical to the
// threads transport. The barrier is the only structural difference — a
// dissemination barrier built on system-channel messages (a condvar can't
// cross address spaces) — and its messages are exempt from fault-plan
// message rules so WJ_FAULT drop/dup/corrupt/delay counting replays
// identically on both transports.
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#ifdef __GLIBC__
#include <stdio_ext.h>
#endif
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "fault/fault.h"
#include "minimpi/minimpi.h"
#include "minimpi/transport.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace wj::minimpi {

namespace {

// Dissemination-barrier rounds use system-channel tags from this base so
// they can never cross-match collective traffic (tags 1..3).
constexpr int kTagBarrierBase = 1000;

// Control-protocol opcodes (child -> parent over the socketpair).
constexpr uint8_t kCtlReady = 'R';
constexpr uint8_t kCtlDone = 'D';
constexpr uint8_t kCtlExecError = 'E';
constexpr uint8_t kCtlUsageError = 'U';

// Grace period between the abort flag rising and the parent SIGKILLing
// children that have not exited on their own.
constexpr auto kAbortGrace = std::chrono::seconds(5);

std::string srcName(int src) {
    return src == kAnySource ? std::string("ANY") : std::to_string(src);
}

size_t alignUp(size_t v, size_t a) { return (v + a - 1) & ~(a - 1); }

/// Per-rank shared cell: watchdog-visible wait state + identity.
struct alignas(64) RankCell {
    std::atomic<int32_t> state{kRankRunning};
    std::atomic<int32_t> src{0};
    std::atomic<int32_t> tag{0};
    std::atomic<int32_t> channel{0};
    std::atomic<int32_t> depth{0};  // local mailbox depth (for dumps)
    std::atomic<int32_t> pid{0};
};

/// Shared control block at the head of the mapping.
struct SharedHeader {
    std::atomic<uint32_t> go{0};
    std::atomic<uint32_t> aborted{0};
    std::atomic<uint64_t> progress{0};
    std::atomic<int32_t> deadRank{-1};
    std::atomic<int32_t> deadPid{0};
    std::atomic<int32_t> deadSig{0};
    std::atomic<int64_t> messages{0};
    std::atomic<int64_t> bytes{0};
    std::atomic<int32_t> resultKind{0};
    std::atomic<int64_t> resultBits{0};
    std::atomic<uint32_t> resultSet{0};
};

/// SPSC byte-ring header; the data area follows the struct. `head` is
/// bytes ever produced, `tail` bytes ever consumed — free space is
/// capacity - (head - tail), and offsets wrap modulo capacity.
struct alignas(64) RingHdr {
    std::atomic<uint64_t> head{0};
    char pad0[64 - sizeof(std::atomic<uint64_t>)];
    std::atomic<uint64_t> tail{0};
    char pad1[64 - sizeof(std::atomic<uint64_t>)];
};

struct FrameHeader {
    uint32_t len = 0;  // payload bytes following this header
    int32_t src = 0;
    int32_t tag = 0;
    int32_t channel = 0;
};

void ringCopyIn(uint8_t* data, size_t cap, uint64_t at, const void* src, size_t n) {
    const size_t off = static_cast<size_t>(at % cap);
    const size_t first = std::min(n, cap - off);
    std::memcpy(data + off, src, first);
    if (first < n) std::memcpy(data, static_cast<const uint8_t*>(src) + first, n - first);
}

void ringCopyOut(const uint8_t* data, size_t cap, uint64_t at, void* dst, size_t n) {
    const size_t off = static_cast<size_t>(at % cap);
    const size_t first = std::min(n, cap - off);
    std::memcpy(dst, data + off, first);
    if (first < n) std::memcpy(static_cast<uint8_t*>(dst) + first, data, n - first);
}

bool writeAll(int fd, const void* buf, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(buf);
    while (n > 0) {
        const ssize_t w = ::write(fd, p, n);
        if (w < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        p += w;
        n -= static_cast<size_t>(w);
    }
    return true;
}

class ProcTransport final : public Transport {
public:
    explicit ProcTransport(int size) : size_(size) {}
    ~ProcTransport() override { releaseRun(); }

    TransportKind kindId() const noexcept override { return TransportKind::Proc; }

    void run(const std::function<void(int)>& body, int watchdogMs) override;
    void finishRun() override;

    void post(int dest, Message msg) override;
    Message take(int me, int src, int tag, int channel, int timeoutMs) override;
    void fillPayload(Message* msg, const void* buf, size_t bytes) override {
        msg->data.assign(static_cast<const uint8_t*>(buf),
                         static_cast<const uint8_t*>(buf) + bytes);
    }
    void recycle(std::vector<uint8_t>&&) override {}
    void barrier(int me) override;

    void publishResult(int kind, int64_t bits) override {
        hdr_->resultKind.store(kind, std::memory_order_relaxed);
        hdr_->resultBits.store(bits, std::memory_order_relaxed);
        hdr_->resultSet.store(1, std::memory_order_release);
    }
    bool takeResult(int* kind, int64_t* bits) override {
        if (!resultSet_) return false;
        resultSet_ = false;
        *kind = resultKind_;
        *bits = resultBits_;
        return true;
    }

    CommStats stats() const override { return total_; }
    bool watchdogFired() const noexcept override { return watchdogFired_.load(); }
    std::string peerDescription(int rank) const override;

private:
    struct ChildState {
        pid_t pid = -1;
        int fd = -1;  // parent end of the control socketpair
        bool reaped = false;
        bool ready = false;
        bool signaled = false;
        int exitCode = 0;
        int sig = 0;
        std::vector<uint8_t> buf;  // control-stream reassembly
    };

    // ---- setup / teardown ---------------------------------------------
    void setupRun();
    void releaseRun();

    RingHdr* ring(int src, int dest) const {
        return reinterpret_cast<RingHdr*>(ringBase_ +
                                          (static_cast<size_t>(src) * size_ + dest) *
                                              ringStride_);
    }
    uint8_t* ringData(RingHdr* r) const {
        return reinterpret_cast<uint8_t*>(r) + sizeof(RingHdr);
    }

    // ---- child side ----------------------------------------------------
    [[noreturn]] void childMain(int rank, const std::function<void(int)>& body);
    void deliverLocal(Message msg);
    void ringSend(int dest, const Message& msg);
    void socketSend(int dest, const Message& msg);
    void drainLoop();
    bool drainRings();
    bool drainSockets();
    void publishAbortLocally();
    [[noreturn]] void childAbortExit(const std::string& why);

    // ---- parent side ---------------------------------------------------
    void supervise(int watchdogMs);
    void parseControl(ChildState& c);
    std::string procDump() const;
    std::string deadChildReport() const;
    std::string rankStatus(int r) const;

    int size_;

    // Accumulated across runs (stats() contract: since construction).
    CommStats total_;
    std::atomic<bool> watchdogFired_{false};
    bool resultSet_ = false;
    int resultKind_ = 0;
    int64_t resultBits_ = 0;

    // Per-run shared mapping.
    SharedHeader* hdr_ = nullptr;
    RankCell* cells_ = nullptr;
    uint8_t* ringBase_ = nullptr;
    size_t ringBytes_ = 0;   // data bytes per directed ring
    size_t ringStride_ = 0;  // sizeof(RingHdr) + ringBytes_
    void* shm_ = nullptr;
    size_t shmLen_ = 0;
    std::string runDir_;
    std::string tracePath_;  // parent's trace destination at run start

    // Parent-side per-run state.
    std::vector<ChildState> children_;
    std::exception_ptr primaryErr_;
    std::exception_ptr secondaryErr_;

    // Child-side state (fresh copy-on-write after every fork).
    int childRank_ = -1;
    int ctlFd_ = -1;
    int listenFd_ = -1;
    std::vector<int> sendFd_;
    std::vector<int> connFds_;
    std::vector<std::vector<uint8_t>> connBufs_;
    std::mutex mbM_;
    std::condition_variable mbCv_;
    std::deque<Message> mb_;
    bool localAbort_ = false;
    std::string abortText_;
    std::atomic<bool> drainStop_{false};
    std::thread drainer_;
};

// ------------------------------------------------------------ setup

void ProcTransport::setupRun() {
    releaseRun();

    // Ring sizing: 256 KiB per directed pair, shrunk so the whole matrix
    // stays under 64 MiB at large rank counts (cluster-shaped worlds).
    size_t rb = 256u << 10;
    const size_t budget = 64u << 20;
    while (rb > 4096 && rb * static_cast<size_t>(size_) * size_ > budget) rb /= 2;
    ringBytes_ = rb;
    ringStride_ = sizeof(RingHdr) + ringBytes_;

    const size_t hdrEnd = alignUp(sizeof(SharedHeader), 64);
    const size_t cellsEnd = hdrEnd + alignUp(sizeof(RankCell) * size_, 64);
    shmLen_ = cellsEnd + ringStride_ * static_cast<size_t>(size_) * size_;
    shm_ = ::mmap(nullptr, shmLen_, PROT_READ | PROT_WRITE,
                  MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (shm_ == MAP_FAILED) {
        shm_ = nullptr;
        throw ExecError(format("proc transport: mmap of %zu shared bytes failed: %s", shmLen_,
                               std::strerror(errno)));
    }
    uint8_t* base = static_cast<uint8_t*>(shm_);
    hdr_ = new (base) SharedHeader();
    cells_ = reinterpret_cast<RankCell*>(base + hdrEnd);
    for (int r = 0; r < size_; ++r) new (cells_ + r) RankCell();
    ringBase_ = base + cellsEnd;
    for (int s = 0; s < size_; ++s)
        for (int d = 0; d < size_; ++d) new (ring(s, d)) RingHdr();

    char dir[] = "/tmp/wjproc.XXXXXX";
    if (!::mkdtemp(dir)) {
        throw ExecError(format("proc transport: mkdtemp failed: %s", std::strerror(errno)));
    }
    runDir_ = dir;
}

void ProcTransport::releaseRun() {
    for (ChildState& c : children_) {
        if (c.fd >= 0) ::close(c.fd);
    }
    children_.clear();
    if (shm_) {
        ::munmap(shm_, shmLen_);
        shm_ = nullptr;
        hdr_ = nullptr;
        cells_ = nullptr;
        ringBase_ = nullptr;
    }
    if (!runDir_.empty()) {
        for (int r = 0; r < size_; ++r) {
            ::unlink((runDir_ + "/r" + std::to_string(r) + ".sock").c_str());
        }
        ::rmdir(runDir_.c_str());
        runDir_.clear();
    }
}

// ------------------------------------------------------------ run (parent)

void ProcTransport::run(const std::function<void(int)>& body, int watchdogMs) {
    setupRun();
    watchdogFired_.store(false);
    resultSet_ = false;
    primaryErr_ = nullptr;
    secondaryErr_ = nullptr;
    tracePath_ = trace::Tracer::instance().isEnabled() ? trace::Tracer::instance().path()
                                                       : std::string();

    children_.resize(static_cast<size_t>(size_));
    for (int r = 0; r < size_; ++r) {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
            hdr_->aborted.store(1);
            throw ExecError(format("proc transport: socketpair failed: %s",
                                   std::strerror(errno)));
        }
        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(sv[0]);
            ::close(sv[1]);
            hdr_->aborted.store(1);
            // Children already forked will observe the abort and exit; the
            // supervisor below reaps them before we rethrow.
            primaryErr_ = std::make_exception_ptr(
                ExecError(format("proc transport: fork of rank %d failed: %s", r,
                                 std::strerror(errno))));
            children_.resize(static_cast<size_t>(r));
            break;
        }
        if (pid == 0) {
            // Child: keep only our control end; drop the parent ends of
            // every sibling forked so far so their EOFs stay meaningful.
            ::close(sv[0]);
            for (int k = 0; k < r; ++k) {
                if (children_[static_cast<size_t>(k)].fd >= 0) {
                    ::close(children_[static_cast<size_t>(k)].fd);
                }
            }
            childRank_ = r;
            ctlFd_ = sv[1];
            childMain(r, body);  // never returns
        }
        ::close(sv[1]);
        children_[static_cast<size_t>(r)].pid = pid;
        children_[static_cast<size_t>(r)].fd = sv[0];
        cells_[r].pid.store(static_cast<int32_t>(pid), std::memory_order_release);
        ::fcntl(sv[0], F_SETFL, O_NONBLOCK);
    }

    supervise(watchdogMs);

    // Fold this run's shared counters into the since-construction totals
    // (the proc transport always copies, so no pooled/zero-copy split).
    total_.messages += hdr_->messages.load(std::memory_order_relaxed);
    total_.bytes += hdr_->bytes.load(std::memory_order_relaxed);
    if (hdr_->resultSet.load(std::memory_order_acquire)) {
        resultSet_ = true;
        resultKind_ = hdr_->resultKind.load(std::memory_order_relaxed);
        resultBits_ = hdr_->resultBits.load(std::memory_order_relaxed);
    }

    std::exception_ptr err = primaryErr_ ? primaryErr_ : secondaryErr_;
    // Keep the mapping alive until finishRun() (trace merge) — releaseRun
    // happens at the next run() or destruction.
    if (err) std::rethrow_exception(err);
}

void ProcTransport::supervise(int watchdogMs) {
    using clock = std::chrono::steady_clock;
    bool goSent = false;
    bool graceArmed = false;
    clock::time_point graceDeadline{};

    // Watchdog sampling state (same two-sample rule as the threads
    // transport, driven from the supervisor loop).
    uint64_t lastProgress = ~uint64_t{0};
    bool stalledOnce = false;
    auto nextSample = clock::now() + std::chrono::milliseconds(
                                         watchdogMs > 0 ? std::max(1, watchdogMs / 2) : 0);

    auto allReaped = [&] {
        for (const ChildState& c : children_) {
            if (!c.reaped) return false;
        }
        return true;
    };

    while (!allReaped()) {
        // 1. Control traffic.
        std::vector<pollfd> fds;
        for (ChildState& c : children_) {
            if (c.fd >= 0) fds.push_back({c.fd, POLLIN, 0});
        }
        if (!fds.empty()) ::poll(fds.data(), fds.size(), 20);
        for (ChildState& c : children_) {
            if (c.fd < 0) continue;
            for (;;) {
                uint8_t tmp[4096];
                const ssize_t n = ::read(c.fd, tmp, sizeof tmp);
                if (n > 0) {
                    c.buf.insert(c.buf.end(), tmp, tmp + n);
                    continue;
                }
                if (n == 0) {  // EOF: child side closed (exit)
                    ::close(c.fd);
                    c.fd = -1;
                    break;
                }
                if (errno == EINTR) continue;
                break;  // EAGAIN
            }
            parseControl(c);
        }

        // 2. Reap.
        for (size_t i = 0; i < children_.size(); ++i) {
            ChildState& c = children_[i];
            if (c.reaped || c.pid < 0) continue;
            int status = 0;
            const pid_t got = ::waitpid(c.pid, &status, WNOHANG);
            if (got != c.pid) continue;
            c.reaped = true;
            if (WIFSIGNALED(status)) {
                c.signaled = true;
                c.sig = WTERMSIG(status);
                int32_t expect = -1;
                if (hdr_->deadRank.compare_exchange_strong(expect, static_cast<int32_t>(i))) {
                    hdr_->deadPid.store(static_cast<int32_t>(c.pid));
                    hdr_->deadSig.store(c.sig);
                }
                hdr_->aborted.store(1, std::memory_order_release);
                if (!primaryErr_) {
                    primaryErr_ = std::make_exception_ptr(ExecError(deadChildReport()));
                }
            } else if (WIFEXITED(status)) {
                c.exitCode = WEXITSTATUS(status);
                if (c.exitCode != 0) hdr_->aborted.store(1, std::memory_order_release);
            }
        }

        // 3. Start the world once every child bound its listener.
        if (!goSent) {
            bool allReady = true;
            for (const ChildState& c : children_) allReady = allReady && c.ready;
            if (allReady && !children_.empty()) {
                hdr_->go.store(1, std::memory_order_release);
                goSent = true;
            }
        }

        // 4. Stall watchdog.
        if (watchdogMs > 0 && goSent && !hdr_->aborted.load() && clock::now() >= nextSample) {
            nextSample = clock::now() + std::chrono::milliseconds(std::max(1, watchdogMs / 2));
            const uint64_t p = hdr_->progress.load(std::memory_order_relaxed);
            bool anyBlocked = false, allQuiet = true;
            for (int r = 0; r < size_; ++r) {
                if (children_[static_cast<size_t>(r)].reaped) continue;  // dead = quiet
                const int s = cells_[r].state.load(std::memory_order_acquire);
                if (s == kRankBlockedRecv || s == kRankBlockedBarrier) anyBlocked = true;
                else if (s != kRankDone) allQuiet = false;
            }
            const bool stalled = anyBlocked && allQuiet && p == lastProgress;
            if (stalled && stalledOnce) {
                watchdogFired_.store(true);
                if (!primaryErr_) {
                    primaryErr_ = std::make_exception_ptr(ExecError(format(
                        "MiniMPI watchdog: global stall — no progress for ~%d ms with every "
                        "live rank blocked (transport=proc); aborting world. Per-rank wait "
                        "state:%s",
                        watchdogMs, procDump().c_str())));
                }
                hdr_->aborted.store(1, std::memory_order_release);
            }
            stalledOnce = stalled;
            lastProgress = p;
        }

        // 5. Abort grace: children observe the flag and exit on their own;
        // anything still alive after the grace period is SIGKILLed.
        if (hdr_->aborted.load()) {
            if (!graceArmed) {
                graceArmed = true;
                graceDeadline = clock::now() + kAbortGrace;
            } else if (clock::now() >= graceDeadline) {
                for (ChildState& c : children_) {
                    if (!c.reaped && c.pid > 0) ::kill(c.pid, SIGKILL);
                }
                graceDeadline = clock::now() + kAbortGrace;
            }
        }
    }

    // Drain any control bytes that raced the exits, then close.
    for (ChildState& c : children_) {
        if (c.fd < 0) continue;
        for (;;) {
            uint8_t tmp[4096];
            const ssize_t n = ::read(c.fd, tmp, sizeof tmp);
            if (n > 0) {
                c.buf.insert(c.buf.end(), tmp, tmp + n);
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            break;
        }
        parseControl(c);
        ::close(c.fd);
        c.fd = -1;
    }

    // A child that died without managing an error report still fails the
    // run deterministically.
    if (!primaryErr_ && !secondaryErr_) {
        for (size_t i = 0; i < children_.size(); ++i) {
            const ChildState& c = children_[i];
            if (!c.signaled && c.exitCode != 0) {
                primaryErr_ = std::make_exception_ptr(ExecError(
                    format("proc transport: rank %zu (pid %d) exited with status %d without "
                           "reporting an error",
                           i, static_cast<int>(c.pid), c.exitCode)));
                break;
            }
        }
    }
}

void ProcTransport::parseControl(ChildState& c) {
    size_t at = 0;
    while (at < c.buf.size()) {
        const uint8_t op = c.buf[at];
        if (op == kCtlReady) {
            c.ready = true;
            ++at;
            continue;
        }
        if (op == kCtlDone) {
            ++at;
            continue;
        }
        if (op == kCtlExecError || op == kCtlUsageError) {
            if (c.buf.size() - at < 1 + sizeof(uint32_t)) break;  // partial
            uint32_t len = 0;
            std::memcpy(&len, c.buf.data() + at + 1, sizeof len);
            if (c.buf.size() - at < 1 + sizeof len + len) break;  // partial
            std::string text(reinterpret_cast<const char*>(c.buf.data() + at + 1 + sizeof len),
                             len);
            at += 1 + sizeof len + len;
            // Secondary errors ("world aborted" echoes from ranks that were
            // only collateral damage) must not mask the root cause.
            const bool secondary = text.find("MPI world aborted") != std::string::npos;
            auto err = op == kCtlUsageError
                           ? std::make_exception_ptr(UsageError(text))
                           : std::make_exception_ptr(ExecError(text));
            if (secondary) {
                if (!secondaryErr_) secondaryErr_ = std::move(err);
            } else if (!primaryErr_) {
                primaryErr_ = std::move(err);
            }
            continue;
        }
        ++at;  // unknown byte: skip (robustness over strictness here)
    }
    c.buf.erase(c.buf.begin(), c.buf.begin() + static_cast<ptrdiff_t>(at));
}

std::string ProcTransport::rankStatus(int r) const {
    const ChildState& c = children_[static_cast<size_t>(r)];
    if (c.signaled) {
        return format("pid %d, killed by signal %d (%s)", static_cast<int>(c.pid), c.sig,
                      strsignal(c.sig));
    }
    if (c.reaped) return format("pid %d, exited %d", static_cast<int>(c.pid), c.exitCode);
    return format("pid %d, running", static_cast<int>(c.pid));
}

std::string ProcTransport::procDump() const {
    std::string out;
    for (int r = 0; r < size_; ++r) {
        const int32_t depth = cells_[r].depth.load(std::memory_order_relaxed);
        switch (cells_[r].state.load(std::memory_order_acquire)) {
        case kRankBlockedRecv:
            out += format("\n  rank %d: blocked in recv(src=%s, tag=%d, %s channel), "
                          "mailbox depth %d [%s]",
                          r, srcName(cells_[r].src.load()).c_str(), cells_[r].tag.load(),
                          cells_[r].channel.load() == 0 ? "user" : "collective", depth,
                          rankStatus(r).c_str());
            break;
        case kRankBlockedBarrier:
            out += format("\n  rank %d: blocked in barrier, mailbox depth %d [%s]", r, depth,
                          rankStatus(r).c_str());
            break;
        case kRankDone:
            out += format("\n  rank %d: finished [%s]", r, rankStatus(r).c_str());
            break;
        default:
            out += format("\n  rank %d: running, mailbox depth %d [%s]", r, depth,
                          rankStatus(r).c_str());
            break;
        }
    }
    return out;
}

std::string ProcTransport::deadChildReport() const {
    const int r = hdr_->deadRank.load();
    const int pid = hdr_->deadPid.load();
    const int sig = hdr_->deadSig.load();
    return format("MiniMPI proc transport: rank %d (pid %d) died: killed by signal %d (%s) — "
                  "aborting world. Per-rank wait state:%s",
                  r, pid, sig, strsignal(sig), procDump().c_str());
}

std::string ProcTransport::peerDescription(int rank) const {
    if (!cells_ || rank < 0 || rank >= size_) return "";
    const int pid = cells_[rank].pid.load(std::memory_order_acquire);
    if (hdr_ && hdr_->deadRank.load() == rank) {
        return format("pid %d, killed by signal %d (%s)", pid, hdr_->deadSig.load(),
                      strsignal(hdr_->deadSig.load()));
    }
    const int st = cells_[rank].state.load(std::memory_order_acquire);
    return format("pid %d, %s", pid, st == kRankDone ? "finished" : "alive");
}

// ------------------------------------------------------------ child side

void ProcTransport::childMain(int rank, const std::function<void(int)>& body) {
    // The child inherited the parent's stdio buffers; anything the parent
    // printed-but-not-flushed before fork would otherwise be emitted again
    // by every rank at exit.
#ifdef __GLIBC__
    __fpurge(stdout);
#endif

    // Writes to peers that died mid-stream must surface as EPIPE, not kill
    // the whole child silently.
    ::signal(SIGPIPE, SIG_IGN);

    // WJ_FAULT kill rules deliver a REAL SIGKILL in a process rank — the
    // crash the checkpoint/restart machinery claims to survive.
    fault::FaultPlan::killWithSigkill(true);

    // Per-process span file: the parent merges them by rank at exit.
    if (!tracePath_.empty()) {
        trace::Tracer::instance().enable(tracePath_ + ".rank" + std::to_string(rank));
    }

    sendFd_.assign(static_cast<size_t>(size_), -1);
    connFds_.clear();
    connBufs_.clear();
    mb_.clear();
    localAbort_ = false;
    drainStop_.store(false);

    // Bind + listen BEFORE reporting ready: once the parent raises `go`,
    // any peer may connect for a large send.
    const std::string sockPath = runDir_ + "/r" + std::to_string(rank) + ".sock";
    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", sockPath.c_str());
    bool bound = listenFd_ >= 0 &&
                 ::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0 &&
                 ::listen(listenFd_, size_) == 0;
    if (bound) ::fcntl(listenFd_, F_SETFL, O_NONBLOCK);

    int exitCode = 0;
    if (!bound) {
        const std::string text = format("rank %d: proc transport could not bind %s: %s", rank,
                                        sockPath.c_str(), std::strerror(errno));
        hdr_->aborted.store(1, std::memory_order_release);
        const uint32_t len = static_cast<uint32_t>(text.size());
        uint8_t op = kCtlExecError;
        writeAll(ctlFd_, &op, 1);
        writeAll(ctlFd_, &len, sizeof len);
        writeAll(ctlFd_, text.data(), len);
        ::_exit(1);
    }

    uint8_t ready = kCtlReady;
    writeAll(ctlFd_, &ready, 1);
    while (!hdr_->go.load(std::memory_order_acquire)) {
        if (hdr_->aborted.load()) ::_exit(1);
        std::this_thread::sleep_for(std::chrono::microseconds(200));
    }

    drainer_ = std::thread([this] { drainLoop(); });

    std::string errText;
    uint8_t errOp = kCtlExecError;
    try {
        body(rank);
        cells_[rank].state.store(kRankDone, std::memory_order_release);
    } catch (const UsageError& e) {
        errOp = kCtlUsageError;
        errText = e.what();
    } catch (const std::exception& e) {
        errText = e.what();
    } catch (...) {
        errText = format("rank %d: unknown exception", rank);
    }

    if (!errText.empty()) {
        exitCode = 1;
        // Wake the peers first, then tell the parent why.
        hdr_->aborted.store(1, std::memory_order_release);
        const uint32_t len = static_cast<uint32_t>(errText.size());
        writeAll(ctlFd_, &errOp, 1);
        writeAll(ctlFd_, &len, sizeof len);
        writeAll(ctlFd_, errText.data(), len);
    } else {
        uint8_t done = kCtlDone;
        writeAll(ctlFd_, &done, 1);
    }

    drainStop_.store(true);
    if (drainer_.joinable()) drainer_.join();

    if (!tracePath_.empty()) trace::Tracer::instance().flush();
    std::fflush(nullptr);
    // _exit, not exit: the child inherited the parent's atexit stack
    // (bench JSON writers, tracer flush to the PARENT's path) and must not
    // run it.
    ::_exit(exitCode);
}

void ProcTransport::deliverLocal(Message msg) {
    {
        std::lock_guard<std::mutex> lock(mbM_);
        mb_.push_back(std::move(msg));
    }
    cells_[childRank_].depth.fetch_add(1, std::memory_order_relaxed);
    hdr_->progress.fetch_add(1, std::memory_order_relaxed);
    mbCv_.notify_all();
}

void ProcTransport::childAbortExit(const std::string& why) {
    // Unrecoverable transport-level failure inside a rank: report and die;
    // the parent turns this into the world's error.
    throw ExecError(why);
}

void ProcTransport::ringSend(int dest, const Message& msg) {
    RingHdr* r = ring(childRank_, dest);
    uint8_t* data = ringData(r);
    FrameHeader fh;
    fh.len = static_cast<uint32_t>(msg.data.size());
    fh.src = msg.src;
    fh.tag = msg.tag;
    fh.channel = msg.channel;
    const size_t need = sizeof fh + msg.data.size();
    int spins = 0;
    for (;;) {
        const uint64_t head = r->head.load(std::memory_order_relaxed);
        const uint64_t tail = r->tail.load(std::memory_order_acquire);
        if (ringBytes_ - static_cast<size_t>(head - tail) >= need) {
            ringCopyIn(data, ringBytes_, head, &fh, sizeof fh);
            ringCopyIn(data, ringBytes_, head + sizeof fh, msg.data.data(), msg.data.size());
            r->head.store(head + need, std::memory_order_release);
            return;
        }
        // Ring full: the receiver's drainer frees space continuously unless
        // it is gone. A finished rank stops draining — drop quietly, the
        // message is unobservable. A dead world aborts the send.
        if (hdr_->aborted.load()) {
            childAbortExit(format(
                "MPI world aborted (rank %d blocked sending to rank %d, transport=proc)",
                childRank_, dest));
        }
        if (cells_[dest].state.load(std::memory_order_acquire) == kRankDone) return;
        if (++spins < 256) {
            std::this_thread::yield();
        } else {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
}

void ProcTransport::socketSend(int dest, const Message& msg) {
    int& fd = sendFd_[static_cast<size_t>(dest)];
    if (fd < 0) {
        const std::string path = runDir_ + "/r" + std::to_string(dest) + ".sock";
        for (int attempt = 0;; ++attempt) {
            fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            std::snprintf(addr.sun_path, sizeof addr.sun_path, "%s", path.c_str());
            if (fd >= 0 && ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
                break;
            }
            if (fd >= 0) ::close(fd);
            fd = -1;
            if (cells_[dest].state.load(std::memory_order_acquire) == kRankDone) return;
            if (hdr_->aborted.load() || attempt > 500) {
                childAbortExit(format("rank %d: proc transport could not connect to rank %d "
                                      "(%s), transport=proc",
                                      childRank_, dest, std::strerror(errno)));
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    FrameHeader fh;
    fh.len = static_cast<uint32_t>(msg.data.size());
    fh.src = msg.src;
    fh.tag = msg.tag;
    fh.channel = msg.channel;
    if (!writeAll(fd, &fh, sizeof fh) ||
        !writeAll(fd, msg.data.data(), msg.data.size())) {
        ::close(fd);
        fd = -1;
        if (cells_[dest].state.load(std::memory_order_acquire) == kRankDone) return;
        childAbortExit(format(
            "rank %d: proc transport lost the socket to rank %d (%s; peer %s)", childRank_,
            dest, std::strerror(errno), peerDescription(dest).c_str()));
    }
}

void ProcTransport::post(int dest, Message msg) {
    if (dest < 0 || dest >= size_) {
        throw ExecError(format("MPI send to invalid rank %d (from rank %d, tag %d)", dest,
                               msg.src, msg.tag));
    }
    // Barrier traffic exists only on this transport (the threads barrier is
    // a condvar), so it is exempt from traffic accounting AND from fault
    // message rules — otherwise stats() and WJ_FAULT counting could never
    // replay identically across transports.
    const bool barrierMsg = msg.channel == 1 && msg.tag >= kTagBarrierBase;
    if (!barrierMsg) {
        hdr_->messages.fetch_add(1, std::memory_order_relaxed);
        hdr_->bytes.fetch_add(static_cast<int64_t>(msg.data.size()),
                              std::memory_order_relaxed);
        static auto& userBytes = trace::Metrics::instance().counter("comm.bytes.user");
        static auto& sysBytes = trace::Metrics::instance().counter("comm.bytes.collective");
        static auto& msgs = trace::Metrics::instance().counter("comm.messages");
        (msg.channel == 0 ? userBytes : sysBytes).add(static_cast<int64_t>(msg.data.size()));
        msgs.inc();
    }
    bool duplicate = false;
    if (!barrierMsg && fault::FaultPlan::active()) {
        switch (fault::FaultPlan::instance().onMessage(msg.src, dest, msg.tag, msg.data)) {
        case fault::MsgFate::Drop: return;
        case fault::MsgFate::Duplicate: duplicate = true; break;
        case fault::MsgFate::Deliver: break;
        }
    }
    if (dest == childRank_) {
        if (duplicate) deliverLocal(msg);
        deliverLocal(std::move(msg));
        return;
    }
    const size_t need = sizeof(FrameHeader) + msg.data.size();
    const int copies = duplicate ? 2 : 1;
    for (int i = 0; i < copies; ++i) {
        if (need <= ringBytes_ / 2) {
            ringSend(dest, msg);
        } else {
            socketSend(dest, msg);
        }
    }
}

bool ProcTransport::drainRings() {
    bool got = false;
    for (int s = 0; s < size_; ++s) {
        if (s == childRank_) continue;
        RingHdr* r = ring(s, childRank_);
        const uint8_t* data = ringData(r);
        for (;;) {
            const uint64_t head = r->head.load(std::memory_order_acquire);
            uint64_t tail = r->tail.load(std::memory_order_relaxed);
            if (tail == head) break;
            FrameHeader fh;
            ringCopyOut(data, ringBytes_, tail, &fh, sizeof fh);
            Message msg;
            msg.src = fh.src;
            msg.tag = fh.tag;
            msg.channel = fh.channel;
            msg.data.resize(fh.len);
            ringCopyOut(data, ringBytes_, tail + sizeof fh, msg.data.data(), fh.len);
            r->tail.store(tail + sizeof fh + fh.len, std::memory_order_release);
            deliverLocal(std::move(msg));
            got = true;
        }
    }
    return got;
}

bool ProcTransport::drainSockets() {
    bool got = false;
    // Accept pending large-payload connections.
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) break;
        ::fcntl(fd, F_SETFL, O_NONBLOCK);
        connFds_.push_back(fd);
        connBufs_.emplace_back();
    }
    for (size_t i = 0; i < connFds_.size(); ++i) {
        if (connFds_[i] < 0) continue;
        std::vector<uint8_t>& buf = connBufs_[i];
        for (;;) {
            uint8_t tmp[1 << 16];
            const ssize_t n = ::read(connFds_[i], tmp, sizeof tmp);
            if (n > 0) {
                buf.insert(buf.end(), tmp, tmp + n);
                continue;
            }
            if (n == 0) {
                ::close(connFds_[i]);
                connFds_[i] = -1;
                break;
            }
            if (errno == EINTR) continue;
            break;  // EAGAIN
        }
        size_t at = 0;
        while (buf.size() - at >= sizeof(FrameHeader)) {
            FrameHeader fh;
            std::memcpy(&fh, buf.data() + at, sizeof fh);
            if (buf.size() - at < sizeof fh + fh.len) break;
            Message msg;
            msg.src = fh.src;
            msg.tag = fh.tag;
            msg.channel = fh.channel;
            msg.data.assign(buf.begin() + static_cast<ptrdiff_t>(at + sizeof fh),
                            buf.begin() + static_cast<ptrdiff_t>(at + sizeof fh + fh.len));
            at += sizeof fh + fh.len;
            deliverLocal(std::move(msg));
            got = true;
        }
        if (at > 0) buf.erase(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(at));
    }
    return got;
}

void ProcTransport::publishAbortLocally() {
    std::string text;
    const int dead = hdr_->deadRank.load();
    if (dead >= 0) {
        text = format("MPI world aborted: rank %d (pid %d) died, killed by signal %d (%s)",
                      dead, hdr_->deadPid.load(), hdr_->deadSig.load(),
                      strsignal(hdr_->deadSig.load()));
    } else {
        text = "MPI world aborted by another rank";
    }
    {
        std::lock_guard<std::mutex> lock(mbM_);
        if (localAbort_) return;
        localAbort_ = true;
        abortText_ = std::move(text);
    }
    mbCv_.notify_all();
}

void ProcTransport::drainLoop() {
    int idle = 0;
    for (;;) {
        bool got = drainRings();
        got = drainSockets() || got;
        if (hdr_->aborted.load(std::memory_order_acquire)) publishAbortLocally();
        if (drainStop_.load(std::memory_order_acquire)) return;
        if (got) {
            idle = 0;
        } else if (++idle < 64) {
            std::this_thread::yield();
        } else {
            std::this_thread::sleep_for(std::chrono::microseconds(100));
        }
    }
}

Message ProcTransport::take(int me, int src, int tag, int channel, int timeoutMs) {
    if (src != kAnySource && (src < 0 || src >= size_)) {
        throw ExecError(format("rank %d: MPI recv from invalid rank %d (tag %d)", me, src, tag));
    }
    RankCell& cell = cells_[me];
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
    bool timedOut = false;
    std::unique_lock<std::mutex> lock(mbM_);
    for (;;) {
        if (localAbort_) {
            throw ExecError(format("%s (rank %d was in recv src=%s tag=%d, transport=proc)",
                                   abortText_.c_str(), me, srcName(src).c_str(), tag));
        }
        auto it = std::find_if(mb_.begin(), mb_.end(), [&](const Message& m) {
            return m.channel == channel && m.tag == tag && (src == kAnySource || m.src == src);
        });
        if (it != mb_.end()) {
            Message msg = std::move(*it);
            mb_.erase(it);
            cell.depth.fetch_sub(1, std::memory_order_relaxed);
            hdr_->progress.fetch_add(1, std::memory_order_relaxed);
            return msg;
        }
        if (timedOut) {
            const std::string peer =
                src == kAnySource ? std::string() : ", peer " + peerDescription(src);
            throw ExecError(format(
                "MPI recv timeout at rank %d after %d ms (src=%s, tag=%d, transport=proc%s)",
                me, timeoutMs, srcName(src).c_str(), tag, peer.c_str()));
        }
        cell.src.store(src, std::memory_order_relaxed);
        cell.tag.store(tag, std::memory_order_relaxed);
        cell.channel.store(channel, std::memory_order_relaxed);
        cell.state.store(kRankBlockedRecv, std::memory_order_release);
        if (timeoutMs < 0) {
            mbCv_.wait(lock);
        } else if (mbCv_.wait_until(lock, deadline) == std::cv_status::timeout) {
            timedOut = true;  // one more pass over the queue before throwing
        }
        cell.state.store(kRankRunning, std::memory_order_release);
    }
}

/// Dissemination barrier: ceil(log2(n)) rounds; in round k, rank r signals
/// (r + 2^k) mod n and waits for (r - 2^k) mod n, each round on its own
/// system tag. After the last round every rank has transitively heard from
/// every other. FIFO per (src, tag) keeps back-to-back barriers from
/// cross-matching.
void ProcTransport::barrier(int me) {
    if (size_ == 1) {
        hdr_->progress.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    cells_[me].state.store(kRankBlockedBarrier, std::memory_order_release);
    uint8_t token = 1;
    int round = 0;
    for (int dist = 1; dist < size_; dist <<= 1, ++round) {
        const int to = (me + dist) % size_;
        const int from = (me - dist % size_ + size_) % size_;
        Message msg;
        msg.src = me;
        msg.tag = kTagBarrierBase + round;
        msg.channel = 1;
        msg.data.assign(&token, &token + 1);
        post(to, std::move(msg));
        Message got = take(me, from, kTagBarrierBase + round, 1, -1);
        (void)got;
        cells_[me].state.store(kRankBlockedBarrier, std::memory_order_release);
    }
    cells_[me].state.store(kRankRunning, std::memory_order_release);
}

// ------------------------------------------------------------ trace merge

void ProcTransport::finishRun() {
    if (tracePath_.empty()) return;
    std::vector<std::string> rankFiles;
    for (int r = 0; r < size_; ++r) {
        const std::string f = tracePath_ + ".rank" + std::to_string(r);
        if (::access(f.c_str(), R_OK) == 0) rankFiles.push_back(f);
    }
    if (!rankFiles.empty()) trace::mergeProcessTraces(tracePath_, rankFiles);
}

} // namespace

std::unique_ptr<Transport> makeProcTransport(int size) {
    return std::make_unique<ProcTransport>(size);
}

} // namespace wj::minimpi
