// ThreadTransport: the original in-process MiniMPI path — ranks as OS
// threads, tag-matched mailboxes under mutex+condvar, zero-copy / pooled
// payloads, a generation-counted condvar barrier, and the two-sample stall
// watchdog. This is the fast path; the process transport trades its speed
// for real address-space isolation.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "minimpi/minimpi.h"
#include "minimpi/transport.h"
#include "support/diagnostics.h"
#include "support/strings.h"
#include "trace/metrics.h"

namespace wj::minimpi {

namespace {

std::string srcName(int src) {
    return src == kAnySource ? std::string("ANY") : std::to_string(src);
}

class ThreadTransport final : public Transport {
public:
    explicit ThreadTransport(int size)
        : size_(size), boxes_(static_cast<size_t>(std::max(size, 1))),
          waits_(static_cast<size_t>(std::max(size, 1))) {}

    TransportKind kindId() const noexcept override { return TransportKind::Threads; }

    void run(const std::function<void(int)>& body, int watchdogMs) override;

    void post(int dest, Message msg) override;
    Message take(int me, int src, int tag, int channel, int timeoutMs) override;
    void fillPayload(Message* msg, const void* buf, size_t bytes) override;
    void recycle(std::vector<uint8_t>&& payload) override { pool_.release(std::move(payload)); }
    void barrier(int me) override;

    void publishResult(int kind, int64_t bits) override {
        resultKind_.store(kind, std::memory_order_relaxed);
        resultBits_.store(bits, std::memory_order_relaxed);
        resultSet_.store(true, std::memory_order_release);
    }
    bool takeResult(int* kind, int64_t* bits) override {
        if (!resultSet_.exchange(false, std::memory_order_acquire)) return false;
        *kind = resultKind_.load(std::memory_order_relaxed);
        *bits = resultBits_.load(std::memory_order_relaxed);
        return true;
    }

    CommStats stats() const override {
        CommStats s;
        s.messages = messages_;
        s.bytes = bytes_;
        s.pooledMessages = pooledMessages_;
        s.pooledBytes = pooledBytes_;
        s.zeroCopyMessages = zeroCopyMessages_;
        s.zeroCopyBytes = zeroCopyBytes_;
        return s;
    }
    bool watchdogFired() const noexcept override { return watchdogFired_.load(); }

private:
    /// Size-bucketed freelist of payload vectors. Bounded: at most
    /// kMaxCachedBytes of capacity is retained; oversize or surplus
    /// buffers are simply dropped (freed).
    class BufferPool {
    public:
        std::vector<uint8_t> acquire(size_t bytes);
        void release(std::vector<uint8_t>&& buf);

    private:
        static constexpr size_t kMaxCachedBytes = 64u << 20;
        std::mutex m_;
        std::vector<std::vector<uint8_t>> free_;
        size_t cachedBytes_ = 0;
    };

    struct Mailbox {
        std::mutex m;
        std::condition_variable cv;
        std::deque<Message> q;
    };

    /// Watchdog-visible wait state of one rank thread. All fields are
    /// atomics because the watchdog samples them from its own thread.
    struct RankWait {
        std::atomic<int> state{kRankRunning};
        std::atomic<int> src{0};
        std::atomic<int> tag{0};
        std::atomic<int> channel{0};
    };

    void abort() noexcept;

    /// Per-rank diagnostic dump for the watchdog's abort error.
    std::string stallReport(int quantumMs);

    int size_;
    std::vector<Mailbox> boxes_;
    std::vector<RankWait> waits_;

    std::mutex barrierM_;
    std::condition_variable barrierCv_;
    int barrierCount_ = 0;
    int64_t barrierGen_ = 0;

    std::atomic<bool> watchdogFired_{false};
    /// Bumped by every post, successful take, and barrier release; the
    /// watchdog declares a stall only when this stands still for a quantum
    /// while every live rank is blocked.
    std::atomic<uint64_t> progress_{0};

    std::atomic<bool> aborted_{false};
    std::atomic<int64_t> messages_{0};
    std::atomic<int64_t> bytes_{0};
    std::atomic<int64_t> pooledMessages_{0};
    std::atomic<int64_t> pooledBytes_{0};
    std::atomic<int64_t> zeroCopyMessages_{0};
    std::atomic<int64_t> zeroCopyBytes_{0};

    std::atomic<int> resultKind_{0};
    std::atomic<int64_t> resultBits_{0};
    std::atomic<bool> resultSet_{false};

    BufferPool pool_;
};

// ------------------------------------------------------------- buffer pool

std::vector<uint8_t> ThreadTransport::BufferPool::acquire(size_t bytes) {
    {
        std::lock_guard<std::mutex> lock(m_);
        // Smallest cached buffer that fits, searched from the back so the
        // most recently released (cache-warm) candidates win ties.
        size_t best = free_.size();
        for (size_t i = free_.size(); i-- > 0;) {
            if (free_[i].capacity() < bytes) continue;
            if (best == free_.size() || free_[i].capacity() < free_[best].capacity()) best = i;
        }
        if (best != free_.size()) {
            std::vector<uint8_t> buf = std::move(free_[best]);
            free_.erase(free_.begin() + static_cast<ptrdiff_t>(best));
            cachedBytes_ -= buf.capacity();
            buf.clear();
            return buf;
        }
    }
    std::vector<uint8_t> buf;
    // Round capacity up to the next power of two so repeated traffic at
    // nearby sizes lands in the same size class.
    size_t cap = World::kPooledThreshold;
    while (cap < bytes) cap *= 2;
    buf.reserve(cap);
    return buf;
}

void ThreadTransport::BufferPool::release(std::vector<uint8_t>&& buf) {
    if (buf.capacity() < World::kPooledThreshold) return;
    std::lock_guard<std::mutex> lock(m_);
    if (cachedBytes_ + buf.capacity() > kMaxCachedBytes) return;  // drop: bounded cache
    cachedBytes_ += buf.capacity();
    free_.push_back(std::move(buf));
}

// --------------------------------------------------------------- data plane

/// Fills a Message payload from a raw region: large payloads ride a
/// recycled pool buffer (no allocation on the steady state), small ones a
/// plain fresh vector.
void ThreadTransport::fillPayload(Message* msg, const void* buf, size_t bytes) {
    if (bytes >= World::kPooledThreshold) {
        msg->data = pool_.acquire(bytes);
        msg->data.resize(bytes);
        std::memcpy(msg->data.data(), buf, bytes);
        msg->origin = kOriginPooled;
    } else {
        msg->data.assign(static_cast<const uint8_t*>(buf),
                         static_cast<const uint8_t*>(buf) + bytes);
    }
}

void ThreadTransport::post(int dest, Message msg) {
    if (dest < 0 || dest >= size_) {
        throw ExecError(format("MPI send to invalid rank %d (from rank %d, tag %d)", dest,
                               msg.src, msg.tag));
    }
    // Traffic accounting lives here, not in Comm::send, so collective
    // internals (bcast/allreduce via sendSys) count toward bytesSent() —
    // the perf model's communication-volume input — exactly like user
    // point-to-point traffic.
    messages_ += 1;
    bytes_ += static_cast<int64_t>(msg.data.size());
    {
        static auto& userBytes = trace::Metrics::instance().counter("comm.bytes.user");
        static auto& sysBytes = trace::Metrics::instance().counter("comm.bytes.collective");
        static auto& msgs = trace::Metrics::instance().counter("comm.messages");
        (msg.channel == 0 ? userBytes : sysBytes).add(static_cast<int64_t>(msg.data.size()));
        msgs.inc();
    }
    if (msg.origin == kOriginPooled) {
        pooledMessages_ += 1;
        pooledBytes_ += static_cast<int64_t>(msg.data.size());
    } else if (msg.origin == kOriginMoved) {
        zeroCopyMessages_ += 1;
        zeroCopyBytes_ += static_cast<int64_t>(msg.data.size());
    }
    bool duplicate = false;
    if (fault::FaultPlan::active()) {
        // The injector models the link: it may corrupt or delay the payload
        // in flight, deliver it twice, or lose it entirely.
        switch (fault::FaultPlan::instance().onMessage(msg.src, dest, msg.tag, msg.data)) {
        case fault::MsgFate::Drop: return;
        case fault::MsgFate::Duplicate: duplicate = true; break;
        case fault::MsgFate::Deliver: break;
        }
    }
    Mailbox& box = boxes_[static_cast<size_t>(dest)];
    {
        std::lock_guard<std::mutex> lock(box.m);
        box.q.push_back(msg);
        if (duplicate) box.q.push_back(std::move(msg));
    }
    progress_.fetch_add(1, std::memory_order_relaxed);
    // Notifying after the unlock is safe: a receiver can only be between
    // its predicate check and its wait while holding box.m, which the
    // enqueue above also required — so the message is either seen by the
    // check or the wakeup arrives after the wait began.
    box.cv.notify_all();
}

Message ThreadTransport::take(int me, int src, int tag, int channel, int timeoutMs) {
    if (src != kAnySource && (src < 0 || src >= size_)) {
        throw ExecError(format("rank %d: MPI recv from invalid rank %d (tag %d)", me, src, tag));
    }
    Mailbox& box = boxes_[static_cast<size_t>(me)];
    RankWait& w = waits_[static_cast<size_t>(me)];
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeoutMs);
    bool timedOut = false;
    std::unique_lock<std::mutex> lock(box.m);
    for (;;) {
        if (aborted_.load()) {
            throw ExecError(format(
                "MPI world aborted by another rank (rank %d was in recv src=%s tag=%d)", me,
                srcName(src).c_str(), tag));
        }
        auto it = std::find_if(box.q.begin(), box.q.end(), [&](const Message& m) {
            return m.channel == channel && m.tag == tag && (src == kAnySource || m.src == src);
        });
        if (it != box.q.end()) {
            Message msg = std::move(*it);
            box.q.erase(it);
            progress_.fetch_add(1, std::memory_order_relaxed);
            return msg;
        }
        if (timedOut) {
            throw ExecError(format(
                "MPI recv timeout at rank %d after %d ms (src=%s, tag=%d, transport=threads)",
                me, timeoutMs, srcName(src).c_str(), tag));
        }
        // Publish what this rank is waiting for, then block: the watchdog
        // reads these fields to build its per-rank stall dump.
        w.src.store(src, std::memory_order_relaxed);
        w.tag.store(tag, std::memory_order_relaxed);
        w.channel.store(channel, std::memory_order_relaxed);
        w.state.store(kRankBlockedRecv, std::memory_order_release);
        if (timeoutMs < 0) {
            box.cv.wait(lock);
        } else if (box.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
            timedOut = true;  // one more pass over the queue before throwing
        }
        w.state.store(kRankRunning, std::memory_order_release);
    }
}

void ThreadTransport::barrier(int me) {
    std::unique_lock<std::mutex> lock(barrierM_);
    const int64_t gen = barrierGen_;
    if (++barrierCount_ == size_) {
        barrierCount_ = 0;
        ++barrierGen_;
        progress_.fetch_add(1, std::memory_order_relaxed);
        barrierCv_.notify_all();
        return;
    }
    RankWait& w = waits_[static_cast<size_t>(me)];
    w.state.store(kRankBlockedBarrier, std::memory_order_release);
    barrierCv_.wait(lock, [&] { return barrierGen_ != gen || aborted_.load(); });
    w.state.store(kRankRunning, std::memory_order_release);
    if (aborted_.load()) {
        throw ExecError(format("MPI world aborted by another rank (rank %d was in barrier)",
                               me));
    }
}

void ThreadTransport::abort() noexcept {
    aborted_.store(true);
    progress_.fetch_add(1, std::memory_order_relaxed);
    // Every notification below is issued while holding the mutex its
    // waiters wait under. Without the lock, a rank that has just evaluated
    // its wait predicate (seeing aborted_ == false) but not yet blocked
    // would miss the wakeup and hang forever — the notifier must serialize
    // with the check-then-wait step, which only the mutex provides.
    for (auto& box : boxes_) {
        std::lock_guard<std::mutex> lock(box.m);
        box.cv.notify_all();
    }
    {
        std::lock_guard<std::mutex> lock(barrierM_);
        barrierCv_.notify_all();
    }
}

std::string ThreadTransport::stallReport(int quantumMs) {
    std::string out = format(
        "MiniMPI watchdog: global stall — no progress for ~%d ms with every live rank blocked "
        "(transport=threads); aborting world. Per-rank wait state:",
        quantumMs);
    for (int r = 0; r < size_; ++r) {
        RankWait& w = waits_[static_cast<size_t>(r)];
        size_t depth;
        {
            std::lock_guard<std::mutex> lock(boxes_[static_cast<size_t>(r)].m);
            depth = boxes_[static_cast<size_t>(r)].q.size();
        }
        switch (w.state.load(std::memory_order_acquire)) {
        case kRankBlockedRecv:
            out += format("\n  rank %d: blocked in recv(src=%s, tag=%d, %s channel), "
                          "mailbox depth %zu",
                          r, srcName(w.src.load()).c_str(), w.tag.load(),
                          w.channel.load() == 0 ? "user" : "collective", depth);
            break;
        case kRankBlockedBarrier:
            out += format("\n  rank %d: blocked in barrier, mailbox depth %zu", r, depth);
            break;
        case kRankDone:
            out += format("\n  rank %d: finished", r);
            break;
        default:
            out += format("\n  rank %d: running, mailbox depth %zu", r, depth);
            break;
        }
    }
    return out;
}

void ThreadTransport::run(const std::function<void(int)>& body, int watchdogMs) {
    // Reset per-run state FIRST: an aborted previous run leaves undelivered
    // messages in the mailboxes and possibly a partial barrier count; a
    // reused World must not let this run consume the dead run's state.
    for (auto& box : boxes_) {
        std::lock_guard<std::mutex> lock(box.m);
        box.q.clear();
    }
    {
        std::lock_guard<std::mutex> lock(barrierM_);
        barrierCount_ = 0;
    }
    for (auto& w : waits_) w.state.store(kRankRunning, std::memory_order_relaxed);
    progress_.store(0, std::memory_order_relaxed);
    watchdogFired_.store(false);
    aborted_.store(false);
    resultSet_.store(false);

    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(size_));
    std::mutex errM;
    std::exception_ptr firstErr;

    for (int r = 0; r < size_; ++r) {
        threads.emplace_back([&, r] {
            try {
                body(r);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(errM);
                    if (!firstErr) firstErr = std::current_exception();
                }
                abort();
            }
            waits_[static_cast<size_t>(r)].state.store(kRankDone, std::memory_order_release);
        });
    }

    // Stall watchdog: samples twice per quantum; fires only after two
    // consecutive samples in which the progress counter stood still and
    // every rank was blocked (or finished) — i.e. the world cannot advance
    // on its own. Disabled with quantum 0.
    std::thread watchdog;
    std::mutex wdM;
    std::condition_variable wdCv;
    bool wdStop = false;
    const int quantum = watchdogMs;
    if (quantum > 0) {
        watchdog = std::thread([&] {
            std::unique_lock<std::mutex> lk(wdM);
            uint64_t lastProgress = ~uint64_t{0};
            bool stalledOnce = false;
            const auto tick = std::chrono::milliseconds(std::max(1, quantum / 2));
            for (;;) {
                if (wdCv.wait_for(lk, tick, [&] { return wdStop; })) return;
                if (aborted_.load()) return;
                const uint64_t p = progress_.load(std::memory_order_relaxed);
                bool anyBlocked = false, allQuiet = true;
                for (int r = 0; r < size_; ++r) {
                    const int s = waits_[static_cast<size_t>(r)].state.load(
                        std::memory_order_acquire);
                    if (s == kRankBlockedRecv || s == kRankBlockedBarrier) anyBlocked = true;
                    else if (s != kRankDone) allQuiet = false;
                }
                const bool stalled = anyBlocked && allQuiet && p == lastProgress;
                if (stalled && stalledOnce) {
                    watchdogFired_.store(true);
                    auto err = std::make_exception_ptr(ExecError(stallReport(quantum)));
                    {
                        std::lock_guard<std::mutex> lock(errM);
                        if (!firstErr) firstErr = std::move(err);
                    }
                    abort();
                    return;
                }
                stalledOnce = stalled;
                lastProgress = p;
            }
        });
    }

    for (auto& t : threads) t.join();
    if (watchdog.joinable()) {
        {
            std::lock_guard<std::mutex> lock(wdM);
            wdStop = true;
        }
        wdCv.notify_all();
        watchdog.join();
    }
    if (firstErr) std::rethrow_exception(firstErr);
}

} // namespace

std::unique_ptr<Transport> makeThreadTransport(int size) {
    return std::make_unique<ThreadTransport>(size);
}

} // namespace wj::minimpi
