// Transport: the address-space strategy under MiniMPI's World/Comm facade.
//
// The paper's generated code runs under mpirun, where every rank owns a
// private address space and the MPI library decides how bytes cross the
// gap. MiniMPI grew up with exactly one strategy — ranks as OS threads in
// one process, messages through shared tag-matched mailboxes — which is
// the fastest possible "interconnect" but makes every fault-tolerance
// claim gentler than reality: a "killed" rank is a cooperative throw, the
// watchdog never meets a genuinely dead peer, and checkpoints never face a
// real SIGKILL.
//
// This interface splits the strategy from the semantics:
//
//   * ThreadTransport (thread_transport.cpp) — the original in-process
//     path: unbounded mailboxes, condvar blocking, the zero-copy /
//     buffer-pool payload strategy, a condition-variable barrier, and the
//     in-thread stall watchdog. The fast path, bit-for-bit as before.
//   * ProcTransport (proc_transport.cpp) — ranks are forked child
//     processes. Point-to-point bytes travel through single-producer/
//     single-consumer byte rings in anonymous MAP_SHARED memory (one ring
//     per ordered (src,dest) pair, condvar-free, spin-with-backoff);
//     payloads too large for a ring fall back to Unix-domain stream
//     sockets. A parent supervisor reaps children with waitpid, so a rank
//     that dies by real SIGKILL is reported with its pid and signal, and
//     the same two-sample stall watchdog runs against shared-memory wait
//     states.
//
// The semantic layer (Comm: tag matching, FIFO per source, collectives
// layered on point-to-point, fault hooks) lives above this interface in
// minimpi.cpp and is identical for both transports — that is the
// determinism contract that lets tests compare checksums across
// transports bitwise.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace wj::minimpi {

/// Matches any source rank in recv().
inline constexpr int kAnySource = -1;

/// Which address-space strategy a World uses.
enum class TransportKind { Threads, Proc };

/// $WJ_TRANSPORT ("threads" | "proc"), defaulting to Threads. Throws
/// UsageError on any other value.
TransportKind defaultTransportKind();

/// $WJ_NP when set and positive, else `fallback` — how `wjrun -np N`
/// communicates the rank count to examples it launches.
int configuredRanks(int fallback);

/// Traffic accounting snapshot (World::stats()). `bytes` counts every
/// payload byte posted; the pooled/zeroCopy splits say how those bytes
/// travelled on the threads transport, so benches can report how much was
/// actually memcpy'd:
///   copied      = plain assign into a fresh vector (small messages),
///   pooled      = one memcpy into a recycled pool buffer (large messages:
///                 no allocation, and the buffer returns to the pool at
///                 recv), and
///   zero-copy   = the caller's vector moved straight into the mailbox.
/// The process transport always crosses address spaces (ring or socket
/// copy), so it reports every message as copied.
struct CommStats {
    int64_t messages = 0;
    int64_t bytes = 0;
    int64_t pooledMessages = 0;
    int64_t pooledBytes = 0;
    int64_t zeroCopyMessages = 0;
    int64_t zeroCopyBytes = 0;
    /// Bytes that crossed the mailbox via at least one send-side memcpy.
    int64_t copiedBytes() const noexcept { return bytes - zeroCopyBytes; }
};

/// How a message payload was produced on the send side (threads-transport
/// zero-copy accounting; the process transport always copies).
enum Origin : uint8_t { kOriginCopied = 0, kOriginPooled = 1, kOriginMoved = 2 };

struct Message {
    int src = 0;
    int tag = 0;
    int channel = 0;  // 0 = user point-to-point, 1 = collective internals
    uint8_t origin = kOriginCopied;
    std::vector<uint8_t> data;
};

/// Watchdog-visible wait states of a rank (shared by both transports'
/// per-rank stall dumps).
inline constexpr int kRankRunning = 0;
inline constexpr int kRankBlockedRecv = 1;
inline constexpr int kRankBlockedBarrier = 2;
inline constexpr int kRankDone = 3;

class Transport {
public:
    virtual ~Transport() = default;

    virtual TransportKind kindId() const noexcept = 0;
    const char* kind() const noexcept {
        return kindId() == TransportKind::Proc ? "proc" : "threads";
    }

    /// Runs `body(rank)` once per rank — on dedicated threads (threads
    /// transport) or in forked child processes (proc transport). Blocks
    /// until every rank finished or the world aborted, then rethrows the
    /// first rank error / dead-child report / watchdog stall report.
    /// `watchdogMs` is the stall quantum (0 disables).
    virtual void run(const std::function<void(int)>& body, int watchdogMs) = 0;

    // ---- data plane (called from a rank's own thread/process) ----------
    /// Enqueues `msg` for `dest`. Accounting and fault injection happen
    /// here so collective-internal traffic is counted like user traffic.
    virtual void post(int dest, Message msg) = 0;
    /// Blocks until a message matching (src|ANY, tag, channel) arrives for
    /// rank `me`; FIFO per (src, tag, channel). `timeoutMs < 0` waits
    /// forever, otherwise throws ExecError after the deadline.
    virtual Message take(int me, int src, int tag, int channel, int timeoutMs) = 0;
    /// Payload setup for raw-region sends (threads: pool buffers at or
    /// above the pooled threshold; proc: plain copy).
    virtual void fillPayload(Message* msg, const void* buf, size_t bytes) = 0;
    /// Returns a drained payload to the transport (threads: buffer pool).
    virtual void recycle(std::vector<uint8_t>&& payload) = 0;
    /// Collective barrier over all ranks for rank `me`.
    virtual void barrier(int me) = 0;

    // ---- result slot ---------------------------------------------------
    /// Publishes rank 0's primitive result so the launching process can
    /// read it after run() — the threads transport stores it in a member,
    /// the process transport writes it to shared memory (lambda captures
    /// cannot cross the fork boundary). `kind`/`bits` encoding is the
    /// caller's (see JitCode::invokeWith).
    virtual void publishResult(int kind, int64_t bits) = 0;
    /// Reads and clears the published result; false when none was set.
    virtual bool takeResult(int* kind, int64_t* bits) = 0;

    // ---- introspection -------------------------------------------------
    virtual CommStats stats() const = 0;
    virtual bool watchdogFired() const noexcept = 0;
    /// Human-readable peer identity for error dumps: "" on the threads
    /// transport, "pid 1234 (running)" / "pid 1234 (killed by signal 9)"
    /// on the process transport.
    virtual std::string peerDescription(int rank) const { (void)rank; return ""; }
    /// Post-run hook on the launching process (the proc transport merges
    /// per-child trace files here, after the parent's own flush).
    virtual void finishRun() {}
};

std::unique_ptr<Transport> makeThreadTransport(int size);
std::unique_ptr<Transport> makeProcTransport(int size);

} // namespace wj::minimpi
