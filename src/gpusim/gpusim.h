// GpuSim: a CUDA-like device substrate.
//
// The paper evaluates on NVIDIA M2050 GPUs; this machine has none, so
// WootinC provides an execution-faithful simulator of the CUDA constructs
// the translated code uses (DESIGN.md, substitution table):
//
//   * a SEPARATE DEVICE MEMORY SPACE: device allocations come from the
//     Device's own allocator; memcpyH2D/D2H validate that pointers live on
//     the correct side, so code that would crash on a real GPU (passing a
//     host pointer to a kernel, dereferencing a device pointer from host
//     code paths that we check) fails loudly here too;
//   * kernel launches over a grid×block thread geometry with
//     threadIdx/blockIdx/blockDim/gridDim coordinates;
//   * __syncthreads(): threads of a block run as cooperatively-scheduled
//     fibers (ucontext) that rendezvous at barriers, which also lets GpuSim
//     DETECT barrier divergence (some threads of a block exiting while
//     others wait) — undefined behaviour on real hardware, an error here;
//   * dynamic shared memory per block (the @Shared / extern __shared__
//     model), sized by the launch configuration.
//
// Kernels without barriers take a fast path: no fiber setup, and the
// blocks of the grid — independent by construction in CUDA unless a
// kernel synchronizes, which a needsSync-free kernel cannot — fan out
// across the WJ_THREADS pool (runtime/threadpool.h), each chunk with its
// own private per-block shared buffer. The JIT knows statically whether a
// kernel can reach syncthreads and passes that flag to launch().
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

namespace wj::gpusim {

struct Dim3 {
    int x = 1, y = 1, z = 1;
    int64_t count() const noexcept {
        return static_cast<int64_t>(x) * y * z;
    }
};

class Device;
struct Fiber;

/// Per-logical-thread context handed to kernels. Generated C code reads the
/// coordinate fields through the wjrt_gpu_* accessors.
struct ThreadCtx {
    Dim3 threadIdx, blockIdx, blockDim, gridDim;
    float* shared = nullptr;     ///< block's dynamic shared buffer (f32 view)
    int64_t sharedFloats = 0;    ///< number of floats in `shared`
    Fiber* fiber = nullptr;      ///< non-null on the barrier-capable path
    Device* device = nullptr;
};

/// Kernel entry: the JIT generates one thunk per kernel specialization that
/// unpacks `args` and runs the kernel body for this thread.
using KernelFn = void (*)(ThreadCtx*, void*);

/// One simulated GPU. Not thread-safe; in MPI runs each rank owns one
/// Device (one GPU per node, as in the paper's Section 4.1 setup).
class Device {
public:
    explicit Device(int id = 0);
    ~Device();
    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    int id() const noexcept { return id_; }

    /// Allocates `bytes` of device memory. Alignment suits any primitive.
    void* malloc(int64_t bytes);
    /// Frees a pointer previously returned by malloc. Double/foreign free
    /// throws.
    void free(void* p);
    /// True if `p` points into (the start of) a live device allocation.
    bool owns(const void* p) const noexcept;

    /// Host-to-device copy; dst must be device memory, src must not be.
    void memcpyH2D(void* dst, const void* src, int64_t bytes);
    /// Device-to-host copy; src must be device memory, dst must not be.
    void memcpyD2H(void* dst, const void* src, int64_t bytes);

    /// Launches `grid.count()` blocks of `block.count()` threads.
    /// `needsSync=false` uses the fast sequential path and makes
    /// syncthreads an error; `needsSync=true` runs each block's threads as
    /// fibers with barrier support.
    void launch(KernelFn k, void* args, Dim3 grid, Dim3 block, int64_t sharedBytes,
                bool needsSync);

    // ---- instrumentation
    int64_t bytesAllocated() const noexcept { return bytesLive_; }
    int64_t peakBytes() const noexcept { return bytesPeak_; }
    int64_t kernelsLaunched() const noexcept { return launches_; }
    int64_t threadsExecuted() const noexcept { return threads_; }

private:
    void launchFast(KernelFn k, void* args, Dim3 grid, Dim3 block, float* shared,
                    int64_t sharedFloats);
    void launchFibered(KernelFn k, void* args, Dim3 grid, Dim3 block, float* shared,
                       int64_t sharedFloats);

    int id_;
    std::unordered_map<void*, int64_t> live_;
    int64_t bytesLive_ = 0;
    int64_t bytesPeak_ = 0;
    int64_t launches_ = 0;
    int64_t threads_ = 0;
};

/// Block barrier; callable only from kernels launched with needsSync=true.
void syncThreads(ThreadCtx* tc);

} // namespace wj::gpusim
