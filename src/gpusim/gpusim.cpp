#include "gpusim/gpusim.h"

#include <ucontext.h>

#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <vector>

#include "runtime/threadpool.h"
#include "support/diagnostics.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace wj::gpusim {

// ------------------------------------------------------------------- fibers

namespace {
constexpr size_t kFiberStackBytes = 256 * 1024;
constexpr int64_t kMaxBlockThreads = 1024;  // CUDA's per-block limit
} // namespace

/// Cooperative fiber running one logical GPU thread of a barrier-using block.
struct Fiber {
    ucontext_t ctx{};
    ucontext_t* scheduler = nullptr;
    std::vector<char> stack;
    ThreadCtx tc;
    KernelFn kernel = nullptr;
    void* args = nullptr;
    bool done = false;
    bool atBarrier = false;
};

namespace {

thread_local Fiber* g_currentFiber = nullptr;

extern "C" void wjGpusimTrampoline() {
    Fiber* f = g_currentFiber;
    f->kernel(&f->tc, f->args);
    f->done = true;
    swapcontext(&f->ctx, f->scheduler);
}

} // namespace

void syncThreads(ThreadCtx* tc) {
    if (!tc || !tc->fiber) {
        throw ExecError("syncthreads() in a kernel launched without barrier support "
                        "(translator should have set needsSync)");
    }
    Fiber* f = tc->fiber;
    f->atBarrier = true;
    swapcontext(&f->ctx, f->scheduler);
}

// ------------------------------------------------------------------- Device

Device::Device(int id) : id_(id) {}

Device::~Device() {
    // Paper: "garbage collection ... [is] developers' responsibility"; we
    // still release on teardown so long test runs don't leak host RAM.
    for (auto& [p, sz] : live_) std::free(p);
}

void* Device::malloc(int64_t bytes) {
    if (bytes < 0) throw ExecError("gpu malloc of negative size");
    void* p = std::malloc(static_cast<size_t>(bytes ? bytes : 1));
    if (!p) throw ExecError("device out of memory");
    live_.emplace(p, bytes);
    bytesLive_ += bytes;
    bytesPeak_ = std::max(bytesPeak_, bytesLive_);
    return p;
}

void Device::free(void* p) {
    auto it = live_.find(p);
    if (it == live_.end()) throw ExecError("gpu free of a pointer not allocated on this device");
    bytesLive_ -= it->second;
    std::free(p);
    live_.erase(it);
}

bool Device::owns(const void* p) const noexcept {
    return live_.count(const_cast<void*>(p)) != 0;
}

void Device::memcpyH2D(void* dst, const void* src, int64_t bytes) {
    if (!owns(dst)) throw ExecError("memcpyH2D: destination is not device memory");
    if (owns(src)) throw ExecError("memcpyH2D: source is device memory (use D2D/D2H)");
    std::memcpy(dst, src, static_cast<size_t>(bytes));
}

void Device::memcpyD2H(void* dst, const void* src, int64_t bytes) {
    if (!owns(const_cast<void*>(src))) throw ExecError("memcpyD2H: source is not device memory");
    if (owns(dst)) throw ExecError("memcpyD2H: destination is device memory");
    std::memcpy(dst, src, static_cast<size_t>(bytes));
}

void Device::launch(KernelFn k, void* args, Dim3 grid, Dim3 block, int64_t sharedBytes,
                    bool needsSync) {
    if (grid.count() <= 0 || block.count() <= 0) {
        throw ExecError("kernel launch with empty grid or block");
    }
    if (block.count() > kMaxBlockThreads) {
        throw ExecError("block of " + std::to_string(block.count()) + " threads exceeds the " +
                        std::to_string(kMaxBlockThreads) + "-thread limit");
    }
    if (sharedBytes < 0) throw ExecError("negative shared memory size");
    ++launches_;
    threads_ += grid.count() * block.count();
    trace::Span span("gpu", needsSync ? "launch.fibered" : "launch.fast",
                     "blocks", grid.count(), "block_threads", block.count());
    {
        static auto& launches = trace::Metrics::instance().counter("gpu.launches");
        static auto& threads = trace::Metrics::instance().counter("gpu.threads");
        launches.inc();
        threads.add(grid.count() * block.count());
    }

    const int64_t sharedFloats = sharedBytes / static_cast<int64_t>(sizeof(float));
    std::vector<float> shared(static_cast<size_t>(sharedFloats), 0.0f);
    if (needsSync) {
        launchFibered(k, args, grid, block, shared.data(), sharedFloats);
    } else {
        launchFast(k, args, grid, block, shared.data(), sharedFloats);
    }
}

namespace {

/// parallelFor context for the barrier-free path: blocks of a grid are
/// independent by construction (CUDA blocks may not communicate without
/// grid-wide cooperation, which needsSync-free kernels cannot express), so
/// the flattened block range fans out across the WJ_THREADS pool. Each
/// chunk carries a private ThreadCtx and a private shared-memory buffer —
/// shared memory is per-block state, never cross-block.
struct FastLaunch {
    KernelFn k;
    void* args;
    Dim3 grid, block;
    int64_t sharedFloats;
    Device* device;
};

void wjGpusimFastChunk(int64_t lo, int64_t hi, void* ctx) {
    const FastLaunch& L = *static_cast<const FastLaunch*>(ctx);
    std::vector<float> shared(static_cast<size_t>(L.sharedFloats));
    ThreadCtx tc;
    tc.gridDim = L.grid;
    tc.blockDim = L.block;
    tc.shared = shared.data();
    tc.sharedFloats = L.sharedFloats;
    tc.device = L.device;
    for (int64_t b = lo; b < hi; ++b) {
        const int bx = static_cast<int>(b % L.grid.x);
        const int by = static_cast<int>((b / L.grid.x) % L.grid.y);
        const int bz = static_cast<int>(b / (static_cast<int64_t>(L.grid.x) * L.grid.y));
        tc.blockIdx = {bx, by, bz};
        // Shared memory is per-block: reset between blocks.
        std::memset(shared.data(), 0, static_cast<size_t>(L.sharedFloats) * sizeof(float));
        for (int tz = 0; tz < L.block.z; ++tz)
            for (int ty = 0; ty < L.block.y; ++ty)
                for (int tx = 0; tx < L.block.x; ++tx) {
                    tc.threadIdx = {tx, ty, tz};
                    L.k(&tc, L.args);
                }
    }
}

} // namespace

void Device::launchFast(KernelFn k, void* args, Dim3 grid, Dim3 block, float* shared,
                        int64_t sharedFloats) {
    (void)shared;  // each block chunk allocates its own per-block buffer
    FastLaunch L{k, args, grid, block, sharedFloats, this};
    runtime::ThreadPool::instance().parallelFor(0, grid.count(), wjGpusimFastChunk, &L);
}

// swapcontext has setjmp-like semantics and GCC's -Wclobbered cannot see
// that the arming loop's locals are dead before the first context switch.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wclobbered"
void Device::launchFibered(KernelFn k, void* args, Dim3 grid, Dim3 block, float* shared,
                           int64_t sharedFloats) {
    const int64_t nThreads = block.count();
    std::vector<Fiber> fibers(static_cast<size_t>(nThreads));
    ucontext_t scheduler;

    for (int bz = 0; bz < grid.z; ++bz)
        for (int by = 0; by < grid.y; ++by)
            for (int bx = 0; bx < grid.x; ++bx) {
                std::memset(shared, 0, static_cast<size_t>(sharedFloats) * sizeof(float));
                // Arm one fiber per thread of this block. A single flat loop
                // keeps no induction state live across swapcontext (which
                // has setjmp-like clobber semantics).
                for (int64_t i = 0; i < nThreads; ++i) {
                    Fiber& f = fibers[static_cast<size_t>(i)];
                    const int tx = static_cast<int>(i % block.x);
                    const int ty = static_cast<int>((i / block.x) % block.y);
                    const int tz = static_cast<int>(i / (static_cast<int64_t>(block.x) * block.y));
                    f.stack.resize(kFiberStackBytes);
                    f.scheduler = &scheduler;
                    f.kernel = k;
                    f.args = args;
                    f.done = false;
                    f.atBarrier = false;
                    f.tc.threadIdx = {tx, ty, tz};
                    f.tc.blockIdx = {bx, by, bz};
                    f.tc.blockDim = block;
                    f.tc.gridDim = grid;
                    f.tc.shared = shared;
                    f.tc.sharedFloats = sharedFloats;
                    f.tc.fiber = &f;
                    f.tc.device = this;
                    if (getcontext(&f.ctx) != 0) throw ExecError("getcontext failed");
                    f.ctx.uc_stack.ss_sp = f.stack.data();
                    f.ctx.uc_stack.ss_size = f.stack.size();
                    f.ctx.uc_link = &scheduler;
                    makecontext(&f.ctx, wjGpusimTrampoline, 0);
                }
                // Round-robin: each pass runs every live fiber to its next
                // barrier or to completion; a pass boundary IS the barrier.
                int64_t remaining = nThreads;
                while (remaining > 0) {
                    int64_t reached = 0;
                    int64_t finished = 0;
                    for (auto& f : fibers) {
                        if (f.done) continue;
                        g_currentFiber = &f;
                        swapcontext(&scheduler, &f.ctx);
                        if (f.done) {
                            ++finished;
                        } else if (f.atBarrier) {
                            f.atBarrier = false;
                            ++reached;
                        } else {
                            panic("fiber yielded without barrier or completion");
                        }
                    }
                    if (reached != 0 && finished != 0) {
                        throw ExecError(
                            "barrier divergence: some threads of a block exited while others "
                            "called syncthreads (undefined behaviour in CUDA)");
                    }
                    remaining -= finished;
                }
            }
}

#pragma GCC diagnostic pop

} // namespace wj::gpusim
