// The intra-rank worker pool behind wjrt_parallel_for and GpuSim's
// block-parallel fast path.
//
// The paper's hybrid runs place one MPI rank per node and fill the node's
// cores with threads. WootinC mirrors that: MiniMPI ranks are OS threads,
// and each rank fans loop iterations out to this process-wide pool. The
// pool is persistent (workers are created once and reused across JIT
// invocations — test_parallel asserts this) and sized by WJ_THREADS.
//
// Determinism contract: parallelFor splits [lo, hi) into at most
// `threads()` *static contiguous chunks* — chunk boundaries depend only on
// the range and the thread count, never on scheduling. Because the
// translator only dispatches loops whose iterations have disjoint write
// sets, every memory cell is written by the same iteration — hence the
// same value — regardless of how chunks map to workers, so results are
// bitwise-identical to the serial loop for every WJ_THREADS value.
//
// Nesting and rank-safety: a parallelFor issued from inside a worker (a
// nested proven-parallel loop, or two MiniMPI ranks racing for the pool)
// runs inline and serial on the caller. onWorkerThread() lets the runtime
// assert that comm/checkpoint intrinsics only execute on a rank's main
// thread — the parallelizer must never have let them into a loop body.
#pragma once

#include <atomic>
#include <cstdint>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace wj::runtime {

class ThreadPool {
public:
    /// The process-wide pool (workers are lazily created on first parallel
    /// dispatch and reused until process exit).
    static ThreadPool& instance();

    /// True on a pool worker thread, inside its body callback.
    static bool onWorkerThread() noexcept;

    /// Target thread count: max(1, $WJ_THREADS), re-read on every call so
    /// tests and wjc --threads can change it between invocations.
    static int configuredThreads();

    using Body = void (*)(int64_t lo, int64_t hi, void* ctx);

    /// Runs body over [lo, hi) split into static contiguous chunks, one per
    /// thread; the caller executes chunk 0 itself and the call returns only
    /// when every chunk finished. An exception thrown by any chunk (e.g. a
    /// wjrt_trap bounds guard) is rethrown here, first-thrower-wins.
    /// Serial inline when hi - lo < 2, threads() == 1, or nested.
    void parallelFor(int64_t lo, int64_t hi, Body body, void* ctx);

    /// Dispatches that actually fanned out (≥ 2 chunks) — pool-reuse tests.
    int64_t dispatches() const noexcept;
    /// Workers ever created; stable across invocations at a fixed
    /// WJ_THREADS, proving the pool persists instead of respawning.
    int64_t workersSpawned() const noexcept;

    ~ThreadPool();

private:
    ThreadPool() = default;
    void ensureWorkers(int want);  // callers hold m_
    void workerMain(int slot);

    struct Job {
        Body body = nullptr;
        void* ctx = nullptr;
        int64_t lo = 0, hi = 0;
        int chunks = 0;     // chunk 0 is the caller's
        int64_t gen = 0;    // generation tag workers wake on
        int traceRank = -1; // dispatching rank, for worker-chunk spans
    };

    std::mutex m_;
    /// One dispatch owns the workers at a time; a losing rank runs its
    /// range inline and serial instead of blocking (results are identical
    /// either way — see the determinism contract above).
    std::atomic<bool> busy_{false};
    std::condition_variable wake_;  // workers wait for a new generation
    std::condition_variable done_;  // caller waits for pending_ == 0
    std::vector<std::thread> workers_;
    Job job_;
    int64_t gen_ = 0;
    int pending_ = 0;
    bool stop_ = false;
    std::exception_ptr error_;
    int64_t dispatches_ = 0;
    int64_t spawned_ = 0;
};

/// Chunk `i` of `chunks` over [lo, hi): the deterministic static split
/// shared by the pool and its tests.
inline void staticChunk(int64_t lo, int64_t hi, int chunks, int i, int64_t* clo, int64_t* chi) {
    const int64_t n = hi - lo;
    *clo = lo + n * i / chunks;
    *chi = lo + n * (i + 1) / chunks;
}

} // namespace wj::runtime
