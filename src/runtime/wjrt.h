/* wjrt: the C ABI runtime for WootinC-generated code.
 *
 * The JIT's output is plain C (paper, Section 3.3). At load time (dlopen)
 * it resolves these symbols from the host executable, the same way the
 * paper's generated code resolves MPI_* / cuda* library symbols. The MPI
 * functions bind to the MiniMPI substrate and the GPU functions to GpuSim,
 * through per-thread rank bindings installed by the invoking host (see
 * runtime/context.h). There is no per-call wrapper logic beyond the bind —
 * "no runtime penalties are involved" (Section 3, Multiplatform).
 *
 * This header is included both by the C++ runtime implementation and by the
 * GENERATED C CODE, so it must stay C99-clean.
 */
#ifndef WJ_WJRT_H
#define WJ_WJRT_H

#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

/* ------------------------------------------------------------------ arrays
 * The only heap data type in translated code (all other objects are inlined
 * into stack structs). `data` points at len*elem_size bytes; `flags` bit 0
 * marks device-resident payloads. Element accesses in generated code are
 * raw pointer arithmetic with NO bounds checks, per the paper.
 */
typedef struct wj_array {
    int64_t len;
    int32_t elem_size;
    int32_t flags; /* bit 0: payload lives in device memory */
} wj_array;

struct wj_array_full {
    wj_array hdr;
    void* data;
};

#define WJ_ARRAY_DEVICE 1
/* Bit 1: structure-of-arrays payload. The array's element class was split
 * by the translator's AoS->SoA layout pass (WJ_SOA=1): elem_size is the
 * PACKED sum of the class's primitive field sizes and the payload holds one
 * contiguous lane region per field — field k's region starts at
 * data + len * pre_k, where pre_k is the packed byte offset of the fields
 * preceding it (size-sorted, so every region is naturally aligned for any
 * len). Total payload is still len * elem_size bytes, so free / range
 * comparisons need no special casing; the typed f32 comm/checkpoint entry
 * points trap on the flag because an SoA payload is not a flat f32 lane. */
#define WJ_ARRAY_SOA 2

/* Payload pointer. */
static inline void* wj_array_data(const wj_array* a) {
    return ((const struct wj_array_full*)a)->data;
}

/* Host array allocation (zero-initialized) and explicit free — the paper's
 * WootinJ.free; there is no garbage collector on the translated side. */
wj_array* wjrt_alloc_array(int64_t len, int32_t elem_size);
/* SoA allocation: identical storage contract to wjrt_alloc_array (same
 * header layout, zero fill, AllocScope reclamation) with WJ_ARRAY_SOA set.
 * elem_size is the packed per-element byte count described above. */
wj_array* wjrt_alloc_soa(int64_t len, int32_t elem_size);
void wjrt_free_array(wj_array* a);

/* --------------------------------------------------------------------- MPI
 * Direct bindings onto the current rank's MiniMPI communicator. Without a
 * binding (plain jit(), no mpirun) rank()/size() report a 1-rank world and
 * the communication calls trap.
 */
int32_t wjrt_mpi_rank(void);
int32_t wjrt_mpi_size(void);
void wjrt_mpi_barrier(void);
void wjrt_mpi_send_f32(const wj_array* buf, int32_t off, int32_t n, int32_t dest, int32_t tag);
void wjrt_mpi_recv_f32(wj_array* buf, int32_t off, int32_t n, int32_t src, int32_t tag);
void wjrt_mpi_sendrecv_f32(const wj_array* sbuf, int32_t soff, int32_t n, int32_t dest,
                           wj_array* rbuf, int32_t roff, int32_t src, int32_t tag);
void wjrt_mpi_bcast_f32(wj_array* buf, int32_t off, int32_t n, int32_t root);
double wjrt_mpi_allreduce_sum_f64(double v);
double wjrt_mpi_allreduce_max_f64(double v);
/* Nonblocking receive: registers the receive and returns a request id; the
 * matching copy happens at wjrt_mpi_wait (sends are buffered, so the data
 * is already in flight — semantics match a rendezvous-free MPI_Irecv). */
int32_t wjrt_mpi_irecv_f32(wj_array* buf, int32_t off, int32_t n, int32_t src, int32_t tag);
void wjrt_mpi_wait(int32_t request);

/* ------------------------------------------------------------- GPU (host)
 * Bindings onto the current rank's GpuSim device (one GPU per node).
 */
wj_array* wjrt_gpu_alloc_f32(int32_t n);
void wjrt_gpu_free(wj_array* a);
void wjrt_gpu_memcpy_h2d_f32(wj_array* dst, const wj_array* src, int32_t n);
void wjrt_gpu_memcpy_d2h_f32(wj_array* dst, const wj_array* src, int32_t n);
void wjrt_gpu_memcpy_h2d_off_f32(wj_array* dst, int32_t dst_off, const wj_array* src,
                                 int32_t src_off, int32_t n);
void wjrt_gpu_memcpy_d2h_off_f32(wj_array* dst, int32_t dst_off, const wj_array* src,
                                 int32_t src_off, int32_t n);

/* A kernel thunk receives the opaque thread context plus a pointer to the
 * packed launch arguments the host side of the generated code built. */
typedef struct wjrt_gpu_tctx wjrt_gpu_tctx;
typedef void (*wjrt_gpu_kernel)(wjrt_gpu_tctx*, void*);

void wjrt_gpu_launch(wjrt_gpu_kernel k, void* args, int32_t gx, int32_t gy, int32_t gz,
                     int32_t bx, int32_t by, int32_t bz, int64_t shared_bytes,
                     int32_t needs_sync);

/* ----------------------------------------------------------- GPU (device) */
int32_t wjrt_gpu_tidx_x(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_tidx_y(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_tidx_z(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_bidx_x(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_bidx_y(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_bidx_z(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_bdim_x(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_bdim_y(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_bdim_z(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_gdim_x(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_gdim_y(const wjrt_gpu_tctx* t);
int32_t wjrt_gpu_gdim_z(const wjrt_gpu_tctx* t);
void wjrt_gpu_sync(wjrt_gpu_tctx* t);
/* The block's dynamic shared buffer viewed as a float array (@Shared). The
 * returned header is thread-local; its payload is the block's shared mem. */
wj_array* wjrt_gpu_shared_f32(wjrt_gpu_tctx* t);

/* ------------------------------------------------------------ parallel-for
 * Intra-rank loop parallelism. The translator outlines a loop body the
 * dataflow analyses proved free of loop-carried dependences into a
 * `wjrt_pf_body` over a half-open iteration range and dispatches it here.
 * The runtime splits [lo, hi) into static contiguous chunks on the
 * persistent WJ_THREADS pool (chunk boundaries depend only on the range
 * and thread count, so the disjoint writes land identically for every
 * thread count — bitwise-equal to the serial loop). Nested or 1-thread
 * dispatches degrade to a plain inline call.
 */
typedef void (*wjrt_pf_body)(int64_t lo, int64_t hi, void* ctx);
void wjrt_parallel_for(int64_t lo, int64_t hi, wjrt_pf_body body, void* ctx);

/* Emitted in the serial else-branch of a CondParallel loop: the runtime
 * pointer-distinctness guard failed (aliasing buffers), so the loop ran
 * serially. Feeds the "parallel.guard.fallbacks" metric. */
void wjrt_guard_fallback(void);

/* ------------------------------------------------------------------- simd
 * Runtime overlap guard for CondVectorizable loops (WJ_SIMD; see the
 * proveVectors pass in src/analysis/). The simd branch of the generated
 * code hoists restrict-qualified element pointers, which is only valid
 * when the two payloads occupy disjoint byte ranges; the else branch runs
 * the plain scalar loop. Returns 1 when [data, data+len*elem_size) of the
 * two arrays do not overlap (null payloads count as disjoint). */
int32_t wjrt_ranges_disjoint(const wj_array* a, const wj_array* b);

/* Emitted in the scalar else-branch of a CondVectorizable loop: the range
 * guard failed, so the lanes ran scalar. Feeds "simd.guard.fallbacks". */
void wjrt_simd_fallback(void);

/* ------------------------------------------------------- parallel-reduce
 * Deterministic reduction dispatch for loops the prover classified
 * ParallelReduce (`acc = acc op f(i)` chains). The translator outlines the
 * body into a `wjrt_reduce_body` that folds one contiguous chunk [lo, hi)
 * into a per-chunk partial record (accumulators start at the operator's
 * exact identity: -0.0 for +, 1.0 for *, +/-inf for min/max).
 *
 * Unlike wjrt_parallel_for's thread-count-sized split, the chunk grid here
 * is fixed: K = min(n, WJRT_REDUCE_MAX_CHUNKS) chunks via the same
 * staticChunk() boundaries at every WJ_THREADS value. The partial records
 * are disjoint (no races), and the generated code combines them in chunk
 * order 0..K-1 replaying the source's operand order — so the result is
 * bitwise-identical at every thread count. With n <= K every chunk is a
 * single iteration and the ordered combine IS the serial fold, making the
 * parallel result bitwise-equal to the serial one as well; beyond that the
 * grouping (not the order) changes, which reassociates float add/mul but
 * stays deterministic and exact for min/max and long.
 *
 * Returns K (0 when the range is empty: the caller keeps the identity).
 * `partials` must hold WJRT_REDUCE_MAX_CHUNKS records of `slot` bytes. */
#define WJRT_REDUCE_MAX_CHUNKS 64
typedef void (*wjrt_reduce_body)(int64_t lo, int64_t hi, void* ctx, void* partial);
int32_t wjrt_parallel_reduce(int64_t lo, int64_t hi, wjrt_reduce_body body, void* ctx,
                             void* partials, int64_t slot);

/* -------------------------------------------------------------------- misc */
void wjrt_print_i64(int64_t v);
void wjrt_print_f64(double v);
/* Fatal runtime error from generated code (e.g. MPI use without a world). */
void wjrt_trap(const char* msg);

/* -------------------------------------- checkpoint/restart (src/fault/) */
/* Snapshot buf[0..n) for the calling rank under (slot, iter); a no-op
 * unless the host armed the CheckpointStore. The store CRC-checks the
 * payload and keeps the last two generations per (rank, slot). */
void wjrt_ckpt_save_f32(const wj_array* buf, int32_t n, int32_t slot, int32_t iter);
/* Restore the resolved consistent snapshot for (rank, slot) into buf.
 * Returns the checkpointed iteration, or -1 to start from scratch. */
int32_t wjrt_ckpt_load_f32(wj_array* buf, int32_t n, int32_t slot);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* WJ_WJRT_H */
