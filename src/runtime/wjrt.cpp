#include "runtime/wjrt.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "fault/checkpoint.h"
#include "runtime/context.h"
#include "runtime/threadpool.h"
#include "support/diagnostics.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace wj::runtime {

namespace {
thread_local minimpi::Comm* g_comm = nullptr;
thread_local gpusim::Device* g_device = nullptr;
} // namespace

/// Active AllocScope's log (null outside an invoke — e.g. on simulated
/// kernel threads, whose allocations stay untracked as before). Referenced
/// by the extern "C" allocator below, hence not in the anonymous namespace.
thread_local std::vector<wj_array*>* g_allocLog = nullptr;

RankScope::RankScope(minimpi::Comm* comm, gpusim::Device* device)
    : prevComm_(g_comm), prevDevice_(g_device) {
    g_comm = comm;
    g_device = device;
}

RankScope::~RankScope() {
    g_comm = prevComm_;
    g_device = prevDevice_;
}

minimpi::Comm* currentComm() noexcept { return g_comm; }
gpusim::Device* currentDevice() noexcept { return g_device; }

AllocScope::AllocScope() : prevLog_(g_allocLog) { g_allocLog = &log_; }

AllocScope::~AllocScope() {
    g_allocLog = static_cast<std::vector<wj_array*>*>(prevLog_);
    for (wj_array* a : log_) {
        std::free(reinterpret_cast<wj_array_full*>(a)->data);
        std::free(a);
    }
}

} // namespace wj::runtime

using wj::ExecError;
using wj::gpusim::Device;
using wj::gpusim::ThreadCtx;

namespace {

/// Comm and checkpoint intrinsics must run on the rank's MAIN thread: the
/// fault injector and the watchdog count operations per rank in program
/// order, and pool workers carry no rank binding anyway. The loop
/// parallelizer refuses loops containing these intrinsics, so tripping
/// this guard means a translator bug, not a user error.
void requireMainThread(const char* what) {
    if (wj::runtime::ThreadPool::onWorkerThread()) {
        throw ExecError(std::string(what) +
                        " on a pool worker thread — comm/ckpt intrinsics are only legal on "
                        "the rank's main thread (parallelized loop must not contain them)");
    }
}

wj::minimpi::Comm& comm() {
    requireMainThread("MPI operation");
    auto* c = wj::runtime::currentComm();
    if (!c) throw ExecError("MPI call without an MPI world (invoke via jit4mpi/set4MPI)");
    return *c;
}

Device& device() {
    auto* d = wj::runtime::currentDevice();
    if (!d) throw ExecError("GPU call without a bound device");
    return *d;
}

float* f32At(const wj_array* a, int32_t off) {
    // The typed f32 entry points address the payload as one flat float
    // lane; an SoA payload (per-field regions) is not that. proveLayout
    // boxes any class whose elements reach an intrinsic, so this trap is a
    // runtime backstop, not a reachable path of a verified translation.
    if (a->flags & WJ_ARRAY_SOA) {
        throw ExecError("f32 view of an SoA (structure-of-arrays) payload");
    }
    return static_cast<float*>(wj_array_data(a)) + off;
}

wj_array_full* full(wj_array* a) { return reinterpret_cast<wj_array_full*>(a); }

} // namespace

extern "C" {

wj_array* wjrt_alloc_array(int64_t len, int32_t elem_size) {
    if (len < 0) throw ExecError("negative array length");
    auto* a = static_cast<wj_array_full*>(std::malloc(sizeof(wj_array_full)));
    if (!a) throw ExecError("out of memory");
    a->hdr.len = len;
    a->hdr.elem_size = elem_size;
    a->hdr.flags = 0;
    a->data = std::calloc(static_cast<size_t>(len ? len : 1), static_cast<size_t>(elem_size));
    if (!a->data) {
        std::free(a);
        throw ExecError("out of memory");
    }
    if (wj::runtime::g_allocLog) wj::runtime::g_allocLog->push_back(&a->hdr);
    return &a->hdr;
}

wj_array* wjrt_alloc_soa(int64_t len, int32_t elem_size) {
    // Same storage contract as wjrt_alloc_array (header layout, zero fill,
    // AllocScope reclamation) — the flag is the only difference. The zeroed
    // payload makes every field lane read 0, bit-identical to the AoS
    // calloc'd default element.
    wj_array* a = wjrt_alloc_array(len, elem_size);
    a->flags |= WJ_ARRAY_SOA;
    return a;
}

void wjrt_free_array(wj_array* a) {
    if (!a) return;
    if (a->flags & WJ_ARRAY_DEVICE) throw ExecError("WootinJ.free on a device array (use cuda.free)");
    if (auto* log = wj::runtime::g_allocLog) {
        auto it = std::find(log->begin(), log->end(), a);
        if (it != log->end()) log->erase(it);
    }
    std::free(full(a)->data);
    std::free(a);
}

/* ---------------------------------------------------------------- MPI */

int32_t wjrt_mpi_rank(void) {
    requireMainThread("MPI.rank");
    auto* c = wj::runtime::currentComm();
    return c ? c->rank() : 0;
}

int32_t wjrt_mpi_size(void) {
    requireMainThread("MPI.size");
    auto* c = wj::runtime::currentComm();
    return c ? c->size() : 1;
}

void wjrt_mpi_barrier(void) { comm().barrier(); }

void wjrt_mpi_send_f32(const wj_array* buf, int32_t off, int32_t n, int32_t dest, int32_t tag) {
    comm().sendF32(f32At(buf, off), n, dest, tag);
}

void wjrt_mpi_recv_f32(wj_array* buf, int32_t off, int32_t n, int32_t src, int32_t tag) {
    comm().recvF32(f32At(buf, off), n, src, tag);
}

void wjrt_mpi_sendrecv_f32(const wj_array* sbuf, int32_t soff, int32_t n, int32_t dest,
                           wj_array* rbuf, int32_t roff, int32_t src, int32_t tag) {
    comm().sendrecv(f32At(sbuf, soff), sizeof(float) * static_cast<size_t>(n), dest,
                    f32At(rbuf, roff), sizeof(float) * static_cast<size_t>(n), src, tag);
}

void wjrt_mpi_bcast_f32(wj_array* buf, int32_t off, int32_t n, int32_t root) {
    comm().bcast(f32At(buf, off), sizeof(float) * static_cast<size_t>(n), root);
}

namespace {

struct PendingRecv {
    wj_array* buf;
    int32_t off, n, src, tag;
    bool done;
};
thread_local std::vector<PendingRecv> g_pending;

} // namespace

int32_t wjrt_mpi_irecv_f32(wj_array* buf, int32_t off, int32_t n, int32_t src, int32_t tag) {
    comm();  // validate a world is bound before deferring
    g_pending.push_back({buf, off, n, src, tag, false});
    return static_cast<int32_t>(g_pending.size() - 1);
}

void wjrt_mpi_wait(int32_t request) {
    if (request < 0 || static_cast<size_t>(request) >= g_pending.size()) {
        throw ExecError("MPI.wait on an unknown request");
    }
    PendingRecv& r = g_pending[static_cast<size_t>(request)];
    if (r.done) throw ExecError("MPI.wait on an already-completed request");
    comm().recvF32(f32At(r.buf, r.off), r.n, r.src, r.tag);
    r.done = true;
    // Compact fully-drained tables so ids stay small across steps.
    bool allDone = true;
    for (const auto& p : g_pending) allDone = allDone && p.done;
    if (allDone) g_pending.clear();
}

double wjrt_mpi_allreduce_sum_f64(double v) { return comm().allreduceSum(v); }

double wjrt_mpi_allreduce_max_f64(double v) { return comm().allreduceMax(v); }

/* ----------------------------------------------------------- GPU (host) */

wj_array* wjrt_gpu_alloc_f32(int32_t n) {
    auto* a = static_cast<wj_array_full*>(std::malloc(sizeof(wj_array_full)));
    if (!a) throw ExecError("out of memory");
    a->hdr.len = n;
    a->hdr.elem_size = sizeof(float);
    a->hdr.flags = WJ_ARRAY_DEVICE;
    a->data = device().malloc(static_cast<int64_t>(n) * static_cast<int64_t>(sizeof(float)));
    return &a->hdr;
}

void wjrt_gpu_free(wj_array* a) {
    if (!a) return;
    if (!(a->flags & WJ_ARRAY_DEVICE)) throw ExecError("cuda.free on a host array");
    device().free(full(a)->data);
    std::free(a);
}

void wjrt_gpu_memcpy_h2d_f32(wj_array* dst, const wj_array* src, int32_t n) {
    device().memcpyH2D(wj_array_data(dst), wj_array_data(src),
                       static_cast<int64_t>(n) * static_cast<int64_t>(sizeof(float)));
}

void wjrt_gpu_memcpy_d2h_f32(wj_array* dst, const wj_array* src, int32_t n) {
    device().memcpyD2H(wj_array_data(dst), wj_array_data(src),
                       static_cast<int64_t>(n) * static_cast<int64_t>(sizeof(float)));
}

void wjrt_gpu_memcpy_h2d_off_f32(wj_array* dst, int32_t dst_off, const wj_array* src,
                                 int32_t src_off, int32_t n) {
    if (!(dst->flags & WJ_ARRAY_DEVICE) || (src->flags & WJ_ARRAY_DEVICE)) {
        throw ExecError("memcpyH2DOff: expected device destination and host source");
    }
    device().memcpyH2D(wj_array_data(dst), f32At(src, src_off), 0);  // ownership check
    std::memcpy(f32At(dst, dst_off), f32At(src, src_off),
                sizeof(float) * static_cast<size_t>(n));
}

void wjrt_gpu_memcpy_d2h_off_f32(wj_array* dst, int32_t dst_off, const wj_array* src,
                                 int32_t src_off, int32_t n) {
    if ((dst->flags & WJ_ARRAY_DEVICE) || !(src->flags & WJ_ARRAY_DEVICE)) {
        throw ExecError("memcpyD2HOff: expected host destination and device source");
    }
    device().memcpyD2H(f32At(dst, dst_off), wj_array_data(src), 0);  // ownership check
    std::memcpy(f32At(dst, dst_off), f32At(src, src_off),
                sizeof(float) * static_cast<size_t>(n));
}

void wjrt_gpu_launch(wjrt_gpu_kernel k, void* args, int32_t gx, int32_t gy, int32_t gz,
                     int32_t bx, int32_t by, int32_t bz, int64_t shared_bytes,
                     int32_t needs_sync) {
    device().launch(reinterpret_cast<wj::gpusim::KernelFn>(k), args, {gx, gy, gz}, {bx, by, bz},
                    shared_bytes, needs_sync != 0);
}

/* --------------------------------------------------------- GPU (device) */

#define WJ_TC(t) (reinterpret_cast<const ThreadCtx*>(t))

int32_t wjrt_gpu_tidx_x(const wjrt_gpu_tctx* t) { return WJ_TC(t)->threadIdx.x; }
int32_t wjrt_gpu_tidx_y(const wjrt_gpu_tctx* t) { return WJ_TC(t)->threadIdx.y; }
int32_t wjrt_gpu_tidx_z(const wjrt_gpu_tctx* t) { return WJ_TC(t)->threadIdx.z; }
int32_t wjrt_gpu_bidx_x(const wjrt_gpu_tctx* t) { return WJ_TC(t)->blockIdx.x; }
int32_t wjrt_gpu_bidx_y(const wjrt_gpu_tctx* t) { return WJ_TC(t)->blockIdx.y; }
int32_t wjrt_gpu_bidx_z(const wjrt_gpu_tctx* t) { return WJ_TC(t)->blockIdx.z; }
int32_t wjrt_gpu_bdim_x(const wjrt_gpu_tctx* t) { return WJ_TC(t)->blockDim.x; }
int32_t wjrt_gpu_bdim_y(const wjrt_gpu_tctx* t) { return WJ_TC(t)->blockDim.y; }
int32_t wjrt_gpu_bdim_z(const wjrt_gpu_tctx* t) { return WJ_TC(t)->blockDim.z; }
int32_t wjrt_gpu_gdim_x(const wjrt_gpu_tctx* t) { return WJ_TC(t)->gridDim.x; }
int32_t wjrt_gpu_gdim_y(const wjrt_gpu_tctx* t) { return WJ_TC(t)->gridDim.y; }
int32_t wjrt_gpu_gdim_z(const wjrt_gpu_tctx* t) { return WJ_TC(t)->gridDim.z; }

void wjrt_gpu_sync(wjrt_gpu_tctx* t) { wj::gpusim::syncThreads(reinterpret_cast<ThreadCtx*>(t)); }

wj_array* wjrt_gpu_shared_f32(wjrt_gpu_tctx* t) {
    // One header per OS thread; its payload aliases the block's shared
    // buffer. Valid until the next wjrt_gpu_shared_f32 on this thread with a
    // different block — which is fine, kernels re-fetch it per call.
    thread_local wj_array_full hdr;
    ThreadCtx* c = reinterpret_cast<ThreadCtx*>(t);
    hdr.hdr.len = c->sharedFloats;
    hdr.hdr.elem_size = sizeof(float);
    hdr.hdr.flags = WJ_ARRAY_DEVICE;
    hdr.data = c->shared;
    return &hdr.hdr;
}

/* ---------------------------------------------------------- parallel-for */

void wjrt_parallel_for(int64_t lo, int64_t hi, wjrt_pf_body body, void* ctx) {
    wj::runtime::ThreadPool::instance().parallelFor(lo, hi, body, ctx);
}

void wjrt_guard_fallback(void) {
    static auto& fallbacks =
        wj::trace::Metrics::instance().counter("parallel.guard.fallbacks");
    fallbacks.inc();
    wj::trace::instant("pool", "guard.fallback");
}

/* ------------------------------------------------------------------- simd */

int32_t wjrt_ranges_disjoint(const wj_array* a, const wj_array* b) {
    if (!a || !b) return 1;
    const char* ad = static_cast<const char*>(wj_array_data(a));
    const char* bd = static_cast<const char*>(wj_array_data(b));
    if (!ad || !bd) return 1;
    const char* ae = ad + static_cast<uint64_t>(a->len) * static_cast<uint32_t>(a->elem_size);
    const char* be = bd + static_cast<uint64_t>(b->len) * static_cast<uint32_t>(b->elem_size);
    return (ae <= bd || be <= ad) ? 1 : 0;
}

void wjrt_simd_fallback(void) {
    static auto& fallbacks = wj::trace::Metrics::instance().counter("simd.guard.fallbacks");
    fallbacks.inc();
    wj::trace::instant("pool", "simd.guard.fallback");
}

/* ------------------------------------------------------- parallel-reduce */

namespace {

struct ReduceCtx {
    wjrt_reduce_body body;
    void* ctx;
    char* partials;
    int64_t slot;
    int64_t lo, hi;
    int chunks;
};

/// Pool body over the chunk grid: folds each chunk index in [clo, chi)
/// into its own partial record. Chunk boundaries come from the same
/// staticChunk() split at a FIXED chunk count, so the records are
/// identical for every WJ_THREADS value.
void reduceDriver(int64_t clo, int64_t chi, void* rcv) {
    const ReduceCtx& rc = *static_cast<const ReduceCtx*>(rcv);
    for (int64_t c = clo; c < chi; ++c) {
        int64_t a = 0, b = 0;
        wj::runtime::staticChunk(rc.lo, rc.hi, rc.chunks, static_cast<int>(c), &a, &b);
        rc.body(a, b, rc.ctx, rc.partials + c * rc.slot);
    }
}

} // namespace

int32_t wjrt_parallel_reduce(int64_t lo, int64_t hi, wjrt_reduce_body body, void* ctx,
                             void* partials, int64_t slot) {
    const int64_t n = hi - lo;
    if (n <= 0) return 0;
    const int chunks = static_cast<int>(n < WJRT_REDUCE_MAX_CHUNKS ? n : WJRT_REDUCE_MAX_CHUNKS);
    ReduceCtx rc{body, ctx, static_cast<char*>(partials), slot, lo, hi, chunks};
    wj::runtime::ThreadPool::instance().parallelFor(0, chunks, reduceDriver, &rc);
    static auto& dispatches =
        wj::trace::Metrics::instance().counter("parallel.reduce.dispatches");
    dispatches.inc();
    return chunks;
}

/* ------------------------------------------------------------------ misc */

void wjrt_print_i64(int64_t v) { std::printf("%lld\n", static_cast<long long>(v)); }

void wjrt_print_f64(double v) { std::printf("%.9g\n", v); }

void wjrt_trap(const char* msg) { throw ExecError(std::string("translated code trapped: ") + msg); }

/* -------------------------------------------------------- checkpointing */

void wjrt_ckpt_save_f32(const wj_array* buf, int32_t n, int32_t slot, int32_t iter) {
    requireMainThread("ckptSaveF32");
    if (buf->flags & WJ_ARRAY_SOA) throw ExecError("ckptSaveF32 on an SoA payload");
    if (n < 0 || n > buf->len) {
        throw ExecError("ckptSaveF32: length " + std::to_string(n) + " exceeds array of " +
                        std::to_string(buf->len));
    }
    wj::fault::CheckpointStore::instance().save(wjrt_mpi_rank(), slot, iter,
                                                static_cast<const float*>(wj_array_data(buf)), n);
}

int32_t wjrt_ckpt_load_f32(wj_array* buf, int32_t n, int32_t slot) {
    requireMainThread("ckptLoadF32");
    if (buf->flags & WJ_ARRAY_SOA) throw ExecError("ckptLoadF32 on an SoA payload");
    if (n < 0 || n > buf->len) {
        throw ExecError("ckptLoadF32: length " + std::to_string(n) + " exceeds array of " +
                        std::to_string(buf->len));
    }
    return static_cast<int32_t>(wj::fault::CheckpointStore::instance().load(
        wjrt_mpi_rank(), slot, static_cast<float*>(wj_array_data(buf)), n));
}

} // extern "C"
