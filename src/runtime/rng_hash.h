/* Stateless counter-based random generator shared by every execution
 * platform. The interpreter ("JVM"), the JIT-generated C code, and the C++
 * baseline programs all inline this exact function, so a Generator seeded
 * with (seed, index) produces bit-identical data everywhere — the property
 * the differential tests rely on.
 *
 * C-compatible: the code generator pastes this header into generated C. */
#ifndef WJ_RNG_HASH_H
#define WJ_RNG_HASH_H

#include <stdint.h>

static inline float wj_rng_hash_f32(int32_t seed, int32_t idx) {
    uint64_t z = (((uint64_t)(uint32_t)seed) << 32) ^ (uint32_t)idx;
    z += 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return (float)(z >> 40) * 0x1.0p-24f;
}

#endif /* WJ_RNG_HASH_H */
