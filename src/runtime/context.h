// Host-side binding of wjrt_* calls to the substrates.
//
// When JitCode::invoke() runs translated code under an N-rank MiniMPI world,
// each rank thread installs a RankScope binding its Comm and its GpuSim
// Device before calling the generated entry function — the moral equivalent
// of the process environment `mpirun` would give each real MPI process.
#pragma once

#include <vector>

#include "gpusim/gpusim.h"
#include "minimpi/minimpi.h"

struct wj_array;

namespace wj::runtime {

/// RAII: binds this thread's wjrt context; restores the previous binding on
/// destruction (bindings can nest, e.g. tests driving multiple worlds).
class RankScope {
public:
    RankScope(minimpi::Comm* comm, gpusim::Device* device);
    ~RankScope();
    RankScope(const RankScope&) = delete;
    RankScope& operator=(const RankScope&) = delete;

private:
    minimpi::Comm* prevComm_;
    gpusim::Device* prevDevice_;
};

/// Current thread's bindings (null when none installed).
minimpi::Comm* currentComm() noexcept;
gpusim::Device* currentDevice() noexcept;

/// RAII: tracks every host array the translated code allocates through
/// wjrt_alloc_array on this thread and frees the survivors on destruction.
/// Sound because an entry function returns only primitives and WJ statics
/// are constants — nothing allocated during an invoke outlives it. Also
/// covers the trap path (bounds guard, negative length), where the
/// generated C has no unwind cleanup of its own.
class AllocScope {
public:
    AllocScope();
    ~AllocScope();
    AllocScope(const AllocScope&) = delete;
    AllocScope& operator=(const AllocScope&) = delete;

private:
    void* prevLog_;  // the enclosing scope's log (scopes can nest)
    std::vector<wj_array*> log_;
};

} // namespace wj::runtime
