// Host-side binding of wjrt_* calls to the substrates.
//
// When JitCode::invoke() runs translated code under an N-rank MiniMPI world,
// each rank thread installs a RankScope binding its Comm and its GpuSim
// Device before calling the generated entry function — the moral equivalent
// of the process environment `mpirun` would give each real MPI process.
#pragma once

#include "gpusim/gpusim.h"
#include "minimpi/minimpi.h"

namespace wj::runtime {

/// RAII: binds this thread's wjrt context; restores the previous binding on
/// destruction (bindings can nest, e.g. tests driving multiple worlds).
class RankScope {
public:
    RankScope(minimpi::Comm* comm, gpusim::Device* device);
    ~RankScope();
    RankScope(const RankScope&) = delete;
    RankScope& operator=(const RankScope&) = delete;

private:
    minimpi::Comm* prevComm_;
    gpusim::Device* prevDevice_;
};

/// Current thread's bindings (null when none installed).
minimpi::Comm* currentComm() noexcept;
gpusim::Device* currentDevice() noexcept;

} // namespace wj::runtime
