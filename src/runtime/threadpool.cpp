#include "runtime/threadpool.h"

#include <algorithm>
#include <cstdlib>

#include <unistd.h>

#include "trace/metrics.h"
#include "trace/trace.h"

namespace wj::runtime {

namespace {
thread_local bool g_onWorker = false;
} // namespace

ThreadPool& ThreadPool::instance() {
    // Leaked on purpose: worker threads may outlive static destructors of
    // translation units that still hold the JIT'ed code calling into them.
    static ThreadPool* pool = new ThreadPool();
    // Fork safety for the proc MPI transport: a forked child inherits the
    // pool object but none of its worker threads, so dispatching on the
    // stale pool would hang. Detect the pid change and hand out a fresh
    // pool (the parent's shell is leaked — the child's address space is
    // disposable by construction).
    static pid_t owner = ::getpid();
    if (::getpid() != owner) {
        pool = new ThreadPool();
        owner = ::getpid();
    }
    return *pool;
}

bool ThreadPool::onWorkerThread() noexcept { return g_onWorker; }

int ThreadPool::configuredThreads() {
    if (const char* v = std::getenv("WJ_THREADS"); v && *v) {
        return std::max(1, std::atoi(v));
    }
    return 1;
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto& t : workers_) t.join();
}

void ThreadPool::ensureWorkers(int want) {
    while (static_cast<int>(workers_.size()) < want) {
        const int slot = static_cast<int>(workers_.size());
        workers_.emplace_back([this, slot] { workerMain(slot); });
        ++spawned_;
    }
}

void ThreadPool::workerMain(int slot) {
    g_onWorker = true;
    int64_t seen = 0;
    std::unique_lock<std::mutex> lock(m_);
    for (;;) {
        wake_.wait(lock, [&] { return stop_ || (gen_ != seen && slot < job_.chunks - 1); });
        if (stop_) return;
        seen = gen_;
        const Job job = job_;
        lock.unlock();
        // Worker `slot` owns chunk slot+1; the dispatching caller runs
        // chunk 0 concurrently.
        int64_t clo, chi;
        staticChunk(job.lo, job.hi, job.chunks, slot + 1, &clo, &chi);
        std::exception_ptr err;
        try {
            if (clo < chi) {
                // Workers carry no rank binding of their own; tag the chunk
                // span with the dispatching rank so Perfetto groups it under
                // the rank that issued the loop.
                trace::setThreadRank(job.traceRank);
                trace::Span span("pool", "chunk", "lo", clo, "hi", chi,
                                 "slot", slot + 1);
                job.body(clo, chi, job.ctx);
            }
        } catch (...) {
            err = std::current_exception();
        }
        trace::setThreadRank(-1);
        lock.lock();
        if (err && !error_) error_ = err;
        if (--pending_ == 0) done_.notify_all();
    }
}

void ThreadPool::parallelFor(int64_t lo, int64_t hi, Body body, void* ctx) {
    if (hi <= lo) return;
    const int64_t n = hi - lo;
    const int threads = static_cast<int>(std::min<int64_t>(configuredThreads(), n));
    static auto& dispatchCount = trace::Metrics::instance().counter("pool.dispatches");
    static auto& inlineCount = trace::Metrics::instance().counter("pool.dispatches.inline");
    trace::Span span("pool", "parallelFor", "n", n, "threads", threads);
    if (threads <= 1 || g_onWorker) {
        inlineCount.inc();
        span.arg(1, "threads", 1);
        body(lo, hi, ctx);
        return;
    }
    // Another rank's dispatch is in flight: don't queue behind it (the
    // owner may hold the workers for a whole compute region) — run inline.
    bool expected = false;
    if (!busy_.compare_exchange_strong(expected, true)) {
        inlineCount.inc();
        span.arg(1, "threads", 1);
        body(lo, hi, ctx);
        return;
    }
    dispatchCount.inc();
    std::unique_lock<std::mutex> lock(m_);
    ensureWorkers(threads - 1);
    job_ = {body, ctx, lo, hi, threads, ++gen_, trace::threadRank()};
    pending_ = threads - 1;
    error_ = nullptr;
    ++dispatches_;
    lock.unlock();
    wake_.notify_all();

    int64_t clo, chi;
    staticChunk(lo, hi, threads, 0, &clo, &chi);
    std::exception_ptr callerErr;
    try {
        if (clo < chi) body(clo, chi, ctx);
    } catch (...) {
        callerErr = std::current_exception();
    }

    lock.lock();
    done_.wait(lock, [&] { return pending_ == 0; });
    std::exception_ptr err = callerErr ? callerErr : error_;
    error_ = nullptr;
    lock.unlock();
    busy_.store(false);
    if (err) std::rethrow_exception(err);
}

int64_t ThreadPool::dispatches() const noexcept {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(m_));
    return dispatches_;
}

int64_t ThreadPool::workersSpawned() const noexcept {
    std::lock_guard<std::mutex> lock(const_cast<std::mutex&>(m_));
    return spawned_;
}

} // namespace wj::runtime
